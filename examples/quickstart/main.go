// Quickstart: count distinct users in a click stream with ExaLogLog.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"exaloglog"
)

func main() {
	// 2^12 = 4096 registers of 28 bits each: 14 KiB total, ~0.57 %
	// standard error, valid up to distinct counts of ~1.8·10^19.
	sketch := exaloglog.New(12)

	// Simulate a click stream: 100 000 events from 25 000 distinct users.
	// Duplicates never change the state (idempotency), so only the number
	// of distinct users matters.
	for event := 0; event < 100000; event++ {
		userID := event % 25000
		sketch.AddString(fmt.Sprintf("user-%d", userID))
	}

	estimate := sketch.Estimate()
	fmt.Printf("distinct users:  ≈ %.0f (true: 25000, off by %+.2f %%)\n",
		estimate, (estimate/25000-1)*100)
	fmt.Printf("sketch size:     %d bytes (a hash set would need megabytes)\n",
		sketch.SizeBytes())

	// Sketches serialize to a flat byte slice — cheap to store or ship.
	data, err := sketch.MarshalBinary()
	if err != nil {
		panic(err)
	}
	restored, err := exaloglog.FromBinary(data)
	if err != nil {
		panic(err)
	}
	fmt.Printf("after round-trip: ≈ %.0f (bit-identical state, %d bytes serialized)\n",
		restored.Estimate(), len(data))
}
