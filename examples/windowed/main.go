// Sliding-window distinct counting served by the cluster: the paper's
// introduction motivates ExaLogLog with port-scan/DDoS detection over
// IP traffic — "how many distinct ports did this source touch in the
// last N seconds?" — and the windowed keyspace pushes that workload
// into the storage nodes. Three in-process nodes form a sharded,
// replicated cluster; collectors WADD flow records (with their own
// timestamps — the store never consults a wall clock) through
// whichever node is closest, and a detector WCOUNTs any node for any
// window. Owners hold slice-rings of mergeable sketches, so a count
// scatter-gathers the rings and merges them slot-wise — lossless, like
// every ExaLogLog merge.
//
// Run with:
//
//	go run ./examples/windowed
package main

import (
	"fmt"
	"math/rand"
	"time"

	"exaloglog"
	"exaloglog/cluster"
	"exaloglog/server"
)

const (
	precision = 11
	scanner   = "10.9.8.7" // the source that sweeps the port space
	benign    = "192.0.2.5"
)

func main() {
	// Bring up a 3-node cluster with replica factor 2. All nodes share
	// the sketch configuration AND the window geometry: 1-second
	// slices, 120 of them — windows up to 2 minutes, 1-second edges.
	cfg := exaloglog.Config{T: 2, D: 20, P: precision}
	var nodes []*cluster.Node
	for i := 1; i <= 3; i++ {
		n, err := cluster.NewNode(fmt.Sprintf("n%d", i), cfg, 2)
		if err != nil {
			panic(err)
		}
		if err := n.Store().SetWindowConfig(time.Second, 120); err != nil {
			panic(err)
		}
		if err := n.Start("127.0.0.1:0"); err != nil {
			panic(err)
		}
		defer n.Close()
		if i > 1 {
			if err := n.Join(nodes[0].Addr()); err != nil {
				panic(err)
			}
		}
		nodes = append(nodes, n)
	}
	fmt.Printf("3-node cluster up (replicas=2, window 1s x 120), seed at %s\n\n", nodes[0].Addr())

	// Two wire clients standing in for two collector sites.
	collectors := make([]*server.Client, 2)
	for i := range collectors {
		c, err := server.Dial(nodes[i].Addr())
		if err != nil {
			panic(err)
		}
		defer c.Close()
		collectors[i] = c
	}

	// Replay 90 seconds of traffic. The benign host keeps talking to a
	// handful of ports the whole time; the scanner sweeps thousands of
	// distinct ports, but only during seconds 60-75.
	rng := rand.New(rand.NewSource(7))
	start := time.Date(2026, 7, 26, 12, 0, 0, 0, time.UTC)
	for sec := 0; sec < 90; sec++ {
		ts := start.Add(time.Duration(sec) * time.Second).UnixMilli()
		for f := 0; f < 40; f++ {
			c := collectors[(sec+f)%len(collectors)]
			if _, err := c.WAdd("ports:"+benign, ts, fmt.Sprintf("port-%d", 8000+rng.Intn(6))); err != nil {
				panic(err)
			}
			if sec >= 60 && sec < 75 {
				if _, err := c.WAdd("ports:"+scanner, ts, fmt.Sprintf("port-%d", rng.Intn(65536))); err != nil {
					panic(err)
				}
			}
		}
	}

	// The detector asks a third node — one nobody wrote through. Counts
	// are evaluated at stream time, so the answers are reproducible.
	detector, err := server.Dial(nodes[2].Addr())
	if err != nil {
		panic(err)
	}
	defer detector.Close()

	fmt.Println("distinct ports touched, per sliding 15s window (threshold 500):")
	for sec := 15; sec <= 90; sec += 15 {
		at := start.Add(time.Duration(sec-1) * time.Second).UnixMilli()
		for _, src := range []string{benign, scanner} {
			n, err := detector.WCountAt("ports:"+src, 15*time.Second, at)
			if err != nil {
				panic(err)
			}
			flag := ""
			if n >= 500 {
				flag = "  << PORT SCAN"
			}
			fmt.Printf("  t=%2ds  %-12s %6d%s\n", sec, src, n, flag)
		}
	}

	// WINFO shows the merged ring across all owners, including the
	// drop counter for records that arrived older than the ring span.
	if _, err := collectors[0].WAdd("ports:"+scanner, start.Add(-time.Hour).UnixMilli(), "too-old"); err != nil {
		panic(err)
	}
	info, err := detector.WInfo("ports:" + scanner)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nWINFO ports:%s →\n  %s\n", scanner, info)
	fmt.Println("\n(dropped counts the too-old record once — replica rings merge with")
	fmt.Println(" max-dropped so retries stay idempotent; slice-granular window edges")
	fmt.Println(" mean a 15s query covers 15-16s of traffic — the trade the bucketed")
	fmt.Println(" design makes for constant-time inserts and lossless merges)")
}
