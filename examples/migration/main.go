// Migration: reduce sketch precision without losing mergeability with
// older records (Section 4.2 of the paper).
//
// A fleet has been recording daily sketches at high precision (p=12).
// Storage pressure forces a move to p=8 with fewer indicator bits (d=16).
// Reducibility makes old and new records compatible: reducing an old
// sketch gives exactly the state that direct recording at the lower
// parameters would have produced, so merges across the migration boundary
// stay lossless.
//
// Run with:
//
//	go run ./examples/migration
package main

import (
	"fmt"

	"exaloglog"
	"exaloglog/internal/hashing"
)

func main() {
	oldCfg := exaloglog.Config{T: 2, D: 20, P: 12}
	newCfg := exaloglog.Config{T: 2, D: 16, P: 8}

	// Day 1 and 2 were recorded with the old configuration.
	day1, _ := exaloglog.NewWithConfig(oldCfg)
	day2, _ := exaloglog.NewWithConfig(oldCfg)
	fill(day1, 0, 40000)     // users 0..39999
	fill(day2, 30000, 80000) // users 30000..79999 (overlaps day 1)

	// Day 3 is recorded with the new, smaller configuration.
	day3, _ := exaloglog.NewWithConfig(newCfg)
	fill(day3, 70000, 120000) // users 70000..119999

	fmt.Printf("day1: %6d bytes (old config p=%d d=%d)\n", day1.SizeBytes(), oldCfg.P, oldCfg.D)
	fmt.Printf("day3: %6d bytes (new config p=%d d=%d)\n", day3.SizeBytes(), newCfg.P, newCfg.D)

	// Weekly rollup across the migration boundary: MergeCompatible
	// reduces everything to the common parameters and merges.
	week, err := exaloglog.MergeCompatible(day1, day2)
	if err != nil {
		panic(err)
	}
	week, err = exaloglog.MergeCompatible(week, day3)
	if err != nil {
		panic(err)
	}

	est := week.Estimate()
	fmt.Printf("weekly distinct users: ≈ %.0f (true 120000, off by %+.2f %%)\n",
		est, (est/120000-1)*100)

	// Losslessness check: direct recording of all three days at the new
	// parameters gives the identical state.
	direct, _ := exaloglog.NewWithConfig(newCfg)
	fill(direct, 0, 80000)
	fill(direct, 70000, 120000)
	a, _ := week.MarshalBinary()
	b, _ := direct.MarshalBinary()
	fmt.Printf("reduced+merged state == direct low-precision state: %v\n", string(a) == string(b))
}

func fill(s *exaloglog.Sketch, from, to int) {
	for u := from; u < to; u++ {
		s.AddHash(hashing.Wy64Uint64(uint64(u), 0))
	}
}
