// A Redis-style sketch service: PFADD / PFCOUNT / PFMERGE over TCP,
// backed by ExaLogLog instead of HyperLogLog — same commands, 43 % less
// memory per key (paper Section 1).
//
// The example starts an in-process server on a random port, populates
// per-day visitor sketches from three application shards, and answers
// union queries over days — then moves a sketch between "machines" with
// DUMP/RESTORE to show that the serialized form is portable.
//
// Run with:
//
//	go run ./examples/sketchserver
package main

import (
	"fmt"

	"exaloglog"
	"exaloglog/server"
)

func main() {
	store, err := server.NewStore(exaloglog.Config{T: 2, D: 20, P: 12})
	if err != nil {
		panic(err)
	}
	srv := server.NewServer(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("sketch server listening on %s\n\n", srv.Addr())

	c, err := server.Dial(srv.Addr())
	if err != nil {
		panic(err)
	}
	defer c.Close()

	// Three shards report the visitors they saw; overlap between days is
	// deduplicated by the sketch union.
	for shard := 0; shard < 3; shard++ {
		for day := 0; day < 2; day++ {
			key := fmt.Sprintf("visitors:day%d", day)
			batch := make([]string, 0, 1000)
			for i := 0; i < 5000; i++ {
				// Each day has 15k distinct visitors (5k per shard);
				// day 1 shares 7.5k of them with day 0.
				id := shard*5000 + i
				if day == 1 {
					id += 7500
				}
				batch = append(batch, fmt.Sprintf("visitor-%d", id))
				if len(batch) == 1000 {
					if _, err := c.PFAdd(key, batch...); err != nil {
						panic(err)
					}
					batch = batch[:0]
				}
			}
		}
	}

	day0, _ := c.PFCount("visitors:day0")
	day1, _ := c.PFCount("visitors:day1")
	both, _ := c.PFCount("visitors:day0", "visitors:day1")
	fmt.Printf("PFCOUNT visitors:day0            → %d (true 15000)\n", day0)
	fmt.Printf("PFCOUNT visitors:day1            → %d (true 15000)\n", day1)
	fmt.Printf("PFCOUNT day0 day1 (union)        → %d (true 22500, overlap deduplicated)\n", both)

	// Persist the union under its own key.
	if err := c.PFMerge("visitors:week", "visitors:day0", "visitors:day1"); err != nil {
		panic(err)
	}
	week, _ := c.PFCount("visitors:week")
	fmt.Printf("PFMERGE week day0 day1; PFCOUNT  → %d\n\n", week)

	// Ship the sketch to another process: DUMP is just the 8-byte header
	// plus the dense register array (fast, Section 5.3).
	blob, err := c.Dump("visitors:week")
	if err != nil {
		panic(err)
	}
	if err := c.Restore("visitors:week-copy", blob); err != nil {
		panic(err)
	}
	copied, _ := c.PFCount("visitors:week-copy")
	fmt.Printf("DUMP → %d bytes; RESTORE → PFCOUNT %d (identical)\n", len(blob), copied)

	keys, _ := c.Keys()
	fmt.Printf("KEYS → %v\n", keys)
}
