// Audience-overlap analysis: ExaLogLog sketches only support unions
// (merge), but |A ∩ B| = |A| + |B| − |A ∪ B| turns three cheap estimates
// into an intersection estimate — the classic sketch-based overlap
// pattern used in ad-tech and analytics (one of the application families
// the paper's introduction cites). The similarity package wraps the
// inclusion–exclusion arithmetic, clamping, and error guidance.
//
// Run with:
//
//	go run ./examples/intersection
package main

import (
	"fmt"

	"exaloglog"
	"exaloglog/similarity"
)

func main() {
	const p = 13 // ~0.4 % standard error per estimate

	// Two overlapping audiences: 200k saw campaign A, 150k saw campaign
	// B, 60k saw both.
	campaignA := exaloglog.New(p)
	campaignB := exaloglog.New(p)
	for u := 0; u < 200000; u++ {
		campaignA.AddUint64(uint64(u))
	}
	for u := 140000; u < 290000; u++ {
		campaignB.AddUint64(uint64(u))
	}

	e, err := similarity.Analyze(campaignA, campaignB)
	if err != nil {
		panic(err)
	}

	fmt.Printf("campaign A reach:    ≈ %8.0f (true 200000)\n", e.CountA)
	fmt.Printf("campaign B reach:    ≈ %8.0f (true 150000)\n", e.CountB)
	fmt.Printf("combined reach:      ≈ %8.0f (true 290000)\n", e.Union)
	fmt.Printf("overlap (incl-excl): ≈ %8.0f (true  60000, off by %+.1f %%)\n",
		e.Intersection, (e.Intersection/60000-1)*100)
	fmt.Printf("Jaccard similarity:  ≈ %.4f ± %.4f (true 0.2069)\n",
		e.Jaccard, e.JaccardError())
	fmt.Printf("share of A also in B: ≈ %.1f %% (true 30 %%)\n", 100*e.ContainmentAinB)
	fmt.Println()
	fmt.Println("note: the intersection error scales with the union size, not the")
	fmt.Println("intersection size — small overlaps of large sets need higher precision.")
}
