// GROUP BY APPROX_COUNT_DISTINCT on a partitioned columnar table — the
// analytical-data-store scenario the paper's introduction opens with
// ("the query languages of many data stores offer special commands for
// approximate distinct counting").
//
// The example loads a synthetic web-events table, runs a grouped
// distinct-user query with both the ELL-based approximate engine and the
// exact hash-set engine, and then demonstrates mergeable rollups: per-day
// materialized sketches that answer a weekly query without re-scanning.
//
// Run with:
//
//	go run ./examples/analytics
package main

import (
	"fmt"

	"exaloglog/aggdb"
)

func main() {
	schema := aggdb.Schema{
		{Name: "country", Type: aggdb.TypeString},
		{Name: "day", Type: aggdb.TypeInt},
		{Name: "user", Type: aggdb.TypeInt},
	}
	table, err := aggdb.NewTable(schema, 8) // 8 partitions, scanned in parallel
	if err != nil {
		panic(err)
	}

	// 300 000 events: users 0..59999, each browsing on several days from
	// a home country. User→country assignment is skewed.
	countries := []string{"at", "de", "us", "jp"}
	share := []int{10000, 20000, 25000, 5000} // distinct users per country
	user := 0
	for ci, c := range countries {
		for u := 0; u < share[ci]; u++ {
			for visit := 0; visit < 5; visit++ {
				day := (u + visit) % 7
				if err := table.Append(c, day, user); err != nil {
					panic(err)
				}
			}
			user++
		}
	}
	fmt.Printf("table: %d rows in %d partitions\n\n", table.NumRows(), table.NumPartitions())

	// SELECT country, COUNT(DISTINCT user) FROM events GROUP BY country.
	approx, err := table.DistinctCount(aggdb.DistinctQuery{
		GroupBy: []string{"country"}, Of: "user", Precision: 12,
	})
	if err != nil {
		panic(err)
	}
	exact, err := table.DistinctCount(aggdb.DistinctQuery{
		GroupBy: []string{"country"}, Of: "user", Exact: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-10s %-12s %-12s %s\n", "country", "approx", "exact", "error")
	for i := range approx {
		fmt.Printf("%-10v %-12.0f %-12.0f %+.2f %%\n",
			approx[i].Key[0], approx[i].Count, exact[i].Count,
			(approx[i].Count/exact[i].Count-1)*100)
	}

	// The same query through the SQL front-end.
	res, err := table.ExecuteSQL("events",
		"SELECT country, APPROX_COUNT_DISTINCT(user) FROM events WHERE day >= 3 GROUP BY country", 12)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nSELECT country, APPROX_COUNT_DISTINCT(user) FROM events WHERE day >= 3 GROUP BY country")
	fmt.Print(res.Format())

	// Mergeable rollups: materialize per-day sketches once ...
	byDay, err := table.MaterializeDistinct([]string{"day"}, "user", 12)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nper-day rollup: %d groups, %d bytes of sketches\n",
		byDay.NumGroups(), byDay.SizeBytes())
	// ... then any union query is a sketch merge, no rescan. Users appear
	// on 5 days each, so the weekly union deduplicates heavily.
	fmt.Printf("distinct users day 0:      ≈ %.0f\n", byDay.Count(0))
	fmt.Printf("distinct users whole week: ≈ %.0f (true: 60000; NOT the sum of days)\n",
		byDay.Total())
}
