// Distributed counting: shard a stream over workers, merge their sketches,
// and get the same answer as a single counter — the mergeability and
// reproducibility properties that make ExaLogLog suitable for distributed
// systems (Section 1 of the paper).
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"sync"

	"exaloglog"
)

const (
	workers      = 8
	eventsPerDay = 400000
	distinctIPs  = 120000
	precision    = 11
)

func main() {
	// Each worker counts the IPs it happens to receive. Elements are
	// routed arbitrarily (here round-robin) — overlap between workers is
	// fine because merging is idempotent.
	sketches := make([]*exaloglog.Sketch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := exaloglog.New(precision)
			for e := w; e < eventsPerDay; e += workers {
				ip := ipFor(e % distinctIPs)
				s.AddString(ip)
			}
			sketches[w] = s
		}(w)
	}
	wg.Wait()

	// The coordinator merges all partial sketches. Merge order does not
	// matter; the result is exactly the sketch of the unified stream.
	total := exaloglog.New(precision)
	for _, s := range sketches {
		if err := total.Merge(s); err != nil {
			panic(err)
		}
	}
	est := total.Estimate()
	fmt.Printf("merged %d worker sketches (%d bytes each)\n", workers, total.SizeBytes())
	fmt.Printf("distinct IPs: ≈ %.0f (true: %d, off by %+.2f %%)\n",
		est, distinctIPs, (est/distinctIPs-1)*100)

	// Reproducibility: a single sketch fed the whole stream in any order
	// has the exact same register state.
	single := exaloglog.New(precision)
	for e := eventsPerDay - 1; e >= 0; e-- {
		single.AddString(ipFor(e % distinctIPs))
	}
	a, _ := total.MarshalBinary()
	b, _ := single.MarshalBinary()
	fmt.Printf("merged state == single-stream state: %v\n", string(a) == string(b))
}

// ipFor deterministically maps an ID to a fake IPv4 string.
func ipFor(id int) string {
	return fmt.Sprintf("10.%d.%d.%d", id>>16&255, id>>8&255, id&255)
}
