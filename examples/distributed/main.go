// Distributed counting with the cluster subsystem: three in-process
// nodes form a sharded, replicated sketch cluster; writers talk to
// whichever node is closest, readers ask any node, and everyone sees the
// same estimate — the commutative, idempotent mergeability that makes
// ExaLogLog suitable for distributed systems (Section 1 of the paper),
// now server-side instead of client-side.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"sync"

	"exaloglog"
	"exaloglog/cluster"
)

const (
	writers      = 8
	eventsPerDay = 400000
	distinctIPs  = 120000
	precision    = 11
)

func main() {
	// Bring up a 3-node cluster with replica factor 2: every key lives on
	// two nodes, and any node answers for any key.
	cfg := exaloglog.Config{T: 2, D: 20, P: precision}
	var nodes []*cluster.Node
	for i := 1; i <= 3; i++ {
		n, err := cluster.NewNode(fmt.Sprintf("n%d", i), cfg, 2)
		if err != nil {
			panic(err)
		}
		if err := n.Start("127.0.0.1:0"); err != nil {
			panic(err)
		}
		defer n.Close()
		if i > 1 {
			if err := n.Join(nodes[0].Addr()); err != nil {
				panic(err)
			}
		}
		nodes = append(nodes, n)
	}
	fmt.Printf("3-node cluster up (replicas=2), seed at %s\n", nodes[0].Addr())

	// Each writer streams its share of the day's events into the cluster
	// through a different node. Routing is arbitrary — overlap between
	// writers is fine because merging is idempotent.
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := nodes[w%len(nodes)]
			batch := make([]string, 0, 512)
			flush := func() {
				if len(batch) == 0 {
					return
				}
				if _, err := node.Add("ips:today", batch...); err != nil {
					panic(err)
				}
				batch = batch[:0]
			}
			for e := w; e < eventsPerDay; e += writers {
				batch = append(batch, ipFor(e%distinctIPs))
				if len(batch) == cap(batch) {
					flush()
				}
			}
			flush()
		}(w)
	}
	wg.Wait()

	// Every node reports the same estimate: counts scatter-gather the
	// owners' serialized sketches and merge them at the coordinator.
	for _, n := range nodes {
		est, err := n.Count("ips:today")
		if err != nil {
			panic(err)
		}
		fmt.Printf("node %s: distinct IPs ≈ %.0f (true: %d, off by %+.2f %%)\n",
			n.ID(), est, distinctIPs, (est/distinctIPs-1)*100)
	}

	// Reproducibility: a single local sketch fed the whole stream gives
	// the exact same estimate as the cluster's merged answer.
	single := exaloglog.New(precision)
	for e := 0; e < eventsPerDay; e++ {
		single.AddString(ipFor(e % distinctIPs))
	}
	clusterEst, err := nodes[1].Count("ips:today")
	if err != nil {
		panic(err)
	}
	fmt.Printf("cluster estimate == single-sketch estimate: %v\n", clusterEst == single.Estimate())

	// A node can leave gracefully: it drains its sketches to the new
	// owners (re-sending blobs is always safe) and the estimate survives.
	if err := nodes[2].Leave(); err != nil {
		panic(err)
	}
	est, err := nodes[0].Count("ips:today")
	if err != nil {
		panic(err)
	}
	fmt.Printf("after node n3 left: distinct IPs ≈ %.0f (unchanged: %v)\n",
		est, est == clusterEst)
}

// ipFor deterministically maps an ID to a fake IPv4 string.
func ipFor(id int) string {
	return fmt.Sprintf("10.%d.%d.%d", id>>16&255, id>>8&255, id&255)
}
