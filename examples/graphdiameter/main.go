// Approximate graph neighborhood function and effective diameter with
// HyperANF on ExaLogLog sketches — the graph-analysis application of the
// paper's introduction (reference [7]).
//
// The neighborhood function N(r) counts node pairs within distance r.
// HyperANF keeps one mergeable distinct-count sketch per node and expands
// the radius by merging neighbor sketches; with ELL each counter needs
// 43 % less memory than the HyperLogLog counters HyperANF originally
// used — the difference between fitting a billion-node graph in RAM or
// not.
//
// Run with:
//
//	go run ./examples/graphdiameter
package main

import (
	"fmt"

	"exaloglog"
	"exaloglog/graph"
)

func main() {
	// A preferential-attachment graph: the heavy-tailed degree
	// distribution of web and social graphs, where small-world behavior
	// (effective diameter ~ log n) is expected.
	const nodes = 2000
	g := graph.PreferentialAttachment(nodes, 3, 42)
	fmt.Printf("graph: %d nodes, %d directed edges\n", g.NumNodes(), g.NumEdges())

	cfg := exaloglog.Config{T: 2, D: 20, P: 8} // 896 bytes per node
	res, err := graph.ApproxNeighborhood(g, cfg, graph.Options{})
	if err != nil {
		panic(err)
	}

	exact := graph.ExactNeighborhood(g, 0)
	fmt.Printf("\n%-4s %-14s %-14s %s\n", "r", "approx N(r)", "exact N(r)", "error")
	for r := 0; r < len(res.N) && r < len(exact); r++ {
		fmt.Printf("%-4d %-14.0f %-14.0f %+.2f %%\n",
			r, res.N[r], exact[r], (res.N[r]/exact[r]-1)*100)
	}

	fmt.Printf("\neffective diameter (90 %%): %.2f\n", res.EffectiveDiameter(0.9))
	fmt.Printf("average distance:          %.2f\n", res.AverageDistance())
	fmt.Printf("sketch memory:             %d KiB total (%d bytes/node)\n",
		nodes*cfg.SizeBytes()/1024, cfg.SizeBytes())
	fmt.Printf("converged after %d hop expansions\n", res.Iterations)
}
