// Sparse mode: track millions of mostly-small per-key cardinalities
// without allocating dense register arrays up front (Section 4.3 of the
// paper). Hash tokens of v+6 bits are collected per key; only keys that
// grow past the break-even point are converted to dense sketches, and the
// distinct count can be estimated straight from the tokens at any time.
//
// Run with:
//
//	go run ./examples/sparse
package main

import (
	"fmt"

	"exaloglog"
	"exaloglog/internal/hashing"
)

func main() {
	// v=26 gives 32-bit tokens, large enough for every practical dense
	// configuration (p+t <= 26).
	const v = 26
	denseCfg := exaloglog.Config{T: 2, D: 20, P: 10}

	// A per-customer distinct-URL counter: most customers touch a
	// handful of URLs, a few touch millions.
	customers := map[string]int{
		"small-shop": 12,
		"mid-size":   4200,
		"whale":      300000,
	}

	for name, urls := range customers {
		tokens, err := exaloglog.NewTokenSet(v)
		if err != nil {
			panic(err)
		}
		dense, _ := exaloglog.NewWithConfig(denseCfg)
		denseBytes := dense.SizeBytes()

		converted := false
		var converted2 *exaloglog.Sketch
		for u := 0; u < urls; u++ {
			h := hashing.WyString(fmt.Sprintf("%s/url/%d", name, u), 0)
			if !converted {
				tokens.AddHash(h)
				if tokens.SizeBytes() >= denseBytes {
					// Break-even: switch to the dense representation.
					// The conversion is lossless — the dense sketch is
					// identical to direct insertion.
					s, err := tokens.ToSketch(denseCfg)
					if err != nil {
						panic(err)
					}
					converted2 = s
					converted = true
				}
			} else {
				converted2.AddHash(h)
			}
		}

		if converted {
			fmt.Printf("%-12s dense   %7d bytes  ≈ %9.0f distinct (true %d)\n",
				name, converted2.SizeBytes(), converted2.Estimate(), urls)
		} else {
			fmt.Printf("%-12s sparse  %7d bytes  ≈ %9.0f distinct (true %d, %d tokens)\n",
				name, tokens.SizeBytes(), tokens.EstimateML(), urls, tokens.Len())
		}
	}
}
