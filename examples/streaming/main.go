// Streaming analytics with the martingale estimator: when a stream is
// processed by a single consumer and no merging is needed, the martingale
// (HIP) estimator gives the same accuracy with 33 % less memory than the
// best mergeable configuration (Section 3.3, Figure 5 of the paper).
//
// This example monitors distinct flows (src, dst, port) in a synthetic
// packet stream and reports the running cardinality with its error,
// side by side for the martingale and ML configurations.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"

	"exaloglog"
	"exaloglog/internal/hashing"
)

func main() {
	// Martingale-optimal configuration: ELL(2,16), 24-bit registers.
	mart := exaloglog.NewMartingale(10)
	// Mergeable baseline at the same precision for comparison.
	ml := exaloglog.New(10)

	fmt.Printf("martingale sketch: %d bytes   ML sketch: %d bytes\n\n",
		mart.SizeBytes(), ml.SizeBytes())
	fmt.Printf("%12s %14s %14s %14s\n", "packets", "true flows", "martingale", "ML")

	flows := 0
	packet := 0
	for _, burst := range []struct{ newFlows, repeats int }{
		{1000, 50},
		{9000, 20},
		{40000, 5},
		{150000, 2},
	} {
		for f := 0; f < burst.newFlows; f++ {
			flowID := flows + f
			h := hashing.Wy64Uint64(uint64(flowID), 7)
			for r := 0; r <= burst.repeats; r++ {
				// Re-seeing a flow never changes either sketch.
				mart.AddHash(h)
				ml.AddHash(h)
				packet++
			}
		}
		flows += burst.newFlows
		fmt.Printf("%12d %14d %14.0f %14.0f\n",
			packet, flows, mart.Estimate(), ml.Estimate())
	}

	fmt.Printf("\nstate-change probability is now %.6f — each new flow costs O(1)\n",
		mart.StateChangeProbability())
	fmt.Println("note: the martingale estimate is only valid for this single stream;")
	fmt.Println("merging disables it and falls back to ML estimation.")
}
