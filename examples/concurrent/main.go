// Concurrent counting without locks: the 32-bit-aligned ELL(2,24)
// registers let many goroutines insert simultaneously with
// compare-and-swap, exactly the deployment Section 2.4 of the paper
// motivates for this configuration.
//
// Run with:
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"runtime"
	"sync"

	"exaloglog"
	"exaloglog/internal/hashing"
)

func main() {
	sketch := exaloglog.NewAtomic(12)

	workers := runtime.GOMAXPROCS(0)
	const eventsPerWorker = 500000
	const distinctUsers = 150000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Workers insert overlapping slices of the user space —
			// contention on the same registers is resolved by CAS, and
			// duplicates across workers are free by idempotency.
			for e := 0; e < eventsPerWorker; e++ {
				user := (e*7 + w*13) % distinctUsers
				sketch.AddHash(hashing.Wy64Uint64(uint64(user), 0))
			}
		}(w)
	}
	wg.Wait()

	est := sketch.Estimate()
	fmt.Printf("%d goroutines inserted %d events concurrently, no locks\n",
		workers, workers*eventsPerWorker)
	fmt.Printf("distinct users: ≈ %.0f (true %d, off by %+.2f %%)\n",
		est, distinctUsers, (est/distinctUsers-1)*100)

	// A snapshot is an ordinary sketch: mergeable, serializable.
	snap := sketch.Snapshot()
	data, _ := snap.MarshalBinary()
	fmt.Printf("snapshot: %d bytes serialized, mergeable like any sketch\n", len(data))
}
