// Port-scan detection over a sliding window — the attack-detection
// application of the paper's introduction (references [9], [11]).
//
// A ScanDetector keeps one sliding-window ExaLogLog counter per source
// host and flags hosts that contact an unusual number of distinct
// destination ports. 200 normal hosts browse a handful of services while
// one scanner sweeps the port range; the detector flags exactly the
// scanner using ~1 KiB of sketch memory per tracked host.
//
// Run with:
//
//	go run ./examples/portscan
package main

import (
	"fmt"
	"time"

	"exaloglog"
	"exaloglog/window"
)

func main() {
	// Per-host sliding window: 10 slices of 1 s, flag at >= 100 distinct
	// ports. Precision p=6 (64 registers, 224 bytes) is plenty: the
	// threshold only needs ~13 % accuracy.
	cfg := exaloglog.Config{T: 2, D: 20, P: 6}
	det, err := window.NewScanDetector(cfg, time.Second, 10, 100)
	if err != nil {
		panic(err)
	}

	start := time.Date(2026, 6, 13, 9, 0, 0, 0, time.UTC)
	rng := uint64(1)
	next := func(n uint64) uint64 { // tiny xorshift for the simulation
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}

	// 5 seconds of traffic, 1000 flows per millisecond tick.
	const scanner = 666
	for tick := 0; tick < 5000; tick++ {
		ts := start.Add(time.Duration(tick) * time.Millisecond)
		// Normal hosts 0..199 talk to ports 80, 443, 8080.
		host := next(200)
		port := []uint64{80, 443, 8080}[next(3)]
		det.Observe(ts, host, port)
		// The scanner probes a fresh port every other flow.
		if tick%2 == 0 {
			det.Observe(ts, scanner, 1024+uint64(tick/2))
		}
	}

	now := start.Add(5 * time.Second)
	fmt.Printf("tracked hosts: %d\n", det.TrackedEntities())
	fmt.Printf("scanner score: ≈ %.0f distinct ports (true: 2500)\n", det.Score(now, scanner))
	fmt.Printf("normal host score: ≈ %.0f distinct ports (true: 3)\n\n", det.Score(now, 7))

	findings := det.Suspicious(now)
	fmt.Println("hosts over threshold:")
	for _, f := range findings {
		fmt.Printf("  host %d: ≈ %.0f distinct ports in the last 10 s\n", f.Entity, f.Score)
	}
	if len(findings) == 1 && findings[0].Entity == scanner {
		fmt.Println("\n✓ exactly the scanner was flagged")
	}
}
