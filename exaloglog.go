// Package exaloglog implements ExaLogLog (ELL), a space-efficient,
// practical data structure for approximate distinct counting up to the
// exa-scale, as described in
//
//	Otmar Ertl. "ExaLogLog: Space-Efficient and Practical Approximate
//	Distinct Counting up to the Exa-Scale." EDBT 2025.
//
// Like HyperLogLog, ExaLogLog is commutative, idempotent, mergeable and
// reducible, has a constant-time insert operation, and supports distinct
// counts up to ~1.8·10^19. Unlike HyperLogLog it needs up to 43 % less
// space for the same estimation error (memory-variance product 3.67 vs
// 6.45 for 6-bit HLL).
//
// # Quick start
//
//	sketch := exaloglog.New(12) // 2^12 registers, ~0.6 % standard error
//	sketch.AddString("alice")
//	sketch.AddString("bob")
//	sketch.AddString("alice") // duplicates never change the state
//	fmt.Println(sketch.Estimate()) // ≈ 2
//
// # Choosing a configuration
//
// New uses the paper's most space-efficient configuration ELL(t=2, d=20).
// NewWithConfig gives access to the other recommended parameterizations:
//
//   - Config{T:2, D:20, P:p} — best space efficiency (MVP 3.67)
//   - Config{T:2, D:24, P:p} — 32-bit registers, fastest access (MVP 3.78)
//   - Config{T:1, D: 9, P:p} — 16-bit registers (MVP 3.90)
//   - Config{T:2, D:16, P:p} — best with martingale estimation (MVP 2.77)
//
// The special cases ELL(0,0), ELL(0,1) and ELL(0,2) are exactly
// HyperLogLog, ExtendedHyperLogLog and UltraLogLog.
//
// # Distributed use
//
// Sketches with identical parameters merge losslessly ([Sketch.Merge]); the
// result is the same as if one sketch had seen the union of both streams.
// Sketches whose parameters differ (but share t) can still be combined
// after reduction ([MergeCompatible], [Sketch.ReduceTo]).
//
// # Single-stream use
//
// When data is not distributed, enable martingale (HIP) estimation with
// [Sketch.EnableMartingale] before inserting; it lowers the estimation
// error at equal memory by roughly 20 % (and by 33 % when also switching
// to the D=16 configuration).
//
// # Sparse mode
//
// For sketches that usually stay almost empty, collect compact hash tokens
// first ([NewTokenSet]) and convert to a dense sketch at the break-even
// point ([TokenSet.ToSketch]), or estimate straight from the tokens.
package exaloglog

import (
	"exaloglog/internal/core"
)

// Sketch is an ExaLogLog sketch. See the package documentation for usage.
//
// The zero value is not usable; create sketches with New, NewWithConfig or
// FromBinary. Sketches are not safe for concurrent mutation.
type Sketch = core.Sketch

// Config holds the ExaLogLog parameters (T, D, P). See the package
// documentation for recommended values.
type Config = core.Config

// TokenSet collects sparse-mode hash tokens (Section 4.3 of the paper).
type TokenSet = core.TokenSet

// Coefficients are the sufficient statistics (α, β) of the ExaLogLog
// log-likelihood function; exposed for estimator research and tooling.
type Coefficients = core.Coefficients

// Interval is a confidence interval around a distinct-count estimate,
// returned by [Sketch.EstimateWithBounds].
type Interval = core.Interval

// Parameter bounds.
const (
	MinPrecision = core.MinP
	MaxPrecision = core.MaxP
)

// New returns a sketch with the paper's most space-efficient configuration
// ELL(t=2, d=20) and 2^p registers. The relative standard error of the
// estimate is about 1.25 %·2^((8-p)/2): p=8 → 2.3 %, p=12 → 0.57 %.
// The sketch occupies exactly 2^p·28/8 bytes.
func New(p int) *Sketch {
	return core.MustNew(core.RecommendedML(p))
}

// NewWithConfig returns a sketch with an explicit parameterization.
func NewWithConfig(cfg Config) (*Sketch, error) {
	return core.New(cfg)
}

// NewMartingale returns a sketch with the martingale-optimal configuration
// ELL(t=2, d=16) and martingale estimation already enabled. Use this for
// single-stream (non-distributed) counting; do not merge into it.
func NewMartingale(p int) *Sketch {
	s := core.MustNew(core.RecommendedMartingale(p))
	if err := s.EnableMartingale(); err != nil {
		panic(err) // unreachable: the sketch is empty
	}
	return s
}

// FromBinary reconstructs a sketch serialized with Sketch.MarshalBinary.
func FromBinary(data []byte) (*Sketch, error) {
	return core.FromBinary(data)
}

// AtomicSketch is a lock-free sketch for concurrent insertion, using the
// 32-bit-aligned ELL(2,24) registers the paper recommends for
// compare-and-swap updates (Section 2.4).
type AtomicSketch = core.AtomicSketch

// NewAtomic returns a lock-free concurrent sketch with ELL(2,24)
// configuration and 2^p registers. Multiple goroutines may call AddHash /
// Add / AddString simultaneously without locking; Snapshot materializes a
// regular Sketch for estimation, merging and serialization.
func NewAtomic(p int) *AtomicSketch {
	s, err := core.NewAtomic(core.RecommendedFast(p))
	if err != nil {
		panic(err) // unreachable: RecommendedFast always has 32-bit registers
	}
	return s
}

// MergeCompatible merges two sketches that share the T parameter but may
// differ in D and P, reducing both to common parameters first. Neither
// input is modified.
func MergeCompatible(a, b *Sketch) (*Sketch, error) {
	return core.MergeCompatible(a, b)
}

// NewTokenSet creates a sparse-mode token collection with parameter v
// (token size v+6 bits). Tokens can feed any sketch with P+T <= v; v=26
// (32-bit tokens) accommodates every practical configuration.
func NewTokenSet(v int) (*TokenSet, error) {
	return core.NewTokenSet(v)
}

// Token32List is the plain-32-bit-array sparse mode the paper singles out
// for v=26: tokens live in a []uint32 deduplicated by sorting, at 4 bytes
// per distinct token. The zero value is ready to use.
type Token32List = core.Token32List

// NewToken32List creates an empty 32-bit token list.
func NewToken32List() *Token32List { return core.NewToken32List() }

// TokenSetFromBinary reconstructs a token collection serialized with
// TokenSet.MarshalBinary or Token32List.MarshalBinary.
func TokenSetFromBinary(data []byte) (*TokenSet, error) {
	return core.TokenSetFromBinary(data)
}

// Hybrid is a sketch that starts in sparse (hash-token) mode and converts
// itself to a dense sketch at the break-even point — ideal when many
// sketches are kept and most stay small.
type Hybrid = core.Hybrid

// NewHybrid returns a hybrid sparse→dense sketch that densifies into the
// given configuration (which must satisfy P+T <= 26).
func NewHybrid(cfg Config) (*Hybrid, error) {
	return core.NewHybrid(cfg)
}

// TokenFromHash compresses a 64-bit hash into a (v+6)-bit token.
func TokenFromHash(h uint64, v int) uint64 { return core.TokenFromHash(h, v) }

// HashFromToken reconstructs a representative 64-bit hash from a token.
func HashFromToken(w uint64, v int) uint64 { return core.HashFromToken(w, v) }
