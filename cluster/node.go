package cluster

import (
	"encoding/base64"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exaloglog/internal/compress"
	"exaloglog/internal/core"
	"exaloglog/server"
	"exaloglog/window"
)

// Node is one member of a sketch cluster. It embeds a server.Store and
// server.Server, overriding PFADD / PFCOUNT / PFMERGE / WADD / WCOUNT /
// WINFO / DEL / KEYS with cluster-wide semantics and adding CLUSTER
// subcommands:
//
//	CLUSTER INFO                       → +id=.. addr=.. e=.. v=.. replicas=.. nodes=.. keys=.. rebal=..
//	CLUSTER MAP                        → +v2 <epoch> <version> <coordinator> <replicas> <id>=<addr> ...
//	CLUSTER JOIN <id> <addr>           → +OK e=.. v=.. c=.. (claims an epoch, adds the node, broadcasts)
//	                                     or +SUPERSEDED e=.. v=.. c=.. (a rival map won; the triple is the winner's)
//	CLUSTER LEAVE <id>                 → +OK e=.. v=.. c=.. / +SUPERSEDED e=.. v=.. c=.. (as JOIN, removing the node)
//	CLUSTER SETMAP <v2 payload>        → +OK (install if newer under the epoch order, delta-rebalance)
//	CLUSTER EPOCH <epoch> <coord>      → +GRANTED <epoch> / +DENIED <highest> (epoch claim; internal)
//	CLUSTER SYNC                       → +OK (one anti-entropy round: pull peer maps, adopt/spread the newest)
//	CLUSTER GOSSIP <g1 digest>         → +<g1 digest> (push-pull failure-detector exchange; internal)
//	CLUSTER HEALTH                     → +round=.. quorum=.. member=.. <id>=<state>,hb=..,heard=..,sus=.. ...
//	CLUSTER REBALANCE                  → +OK (full re-push of local sketches to their owners)
//	CLUSTER LPFADD <key> <el>...       → :1/:0 (local add; internal replication verb)
//	CLUSTER MLPFADD <g> <key> <n> <el>... ×g → +<g × '0'/'1'> (batched local adds; internal)
//	CLUSTER MLADD <g> <group>... ×g    → +<g tokens> (batched mixed plain/windowed local adds; internal)
//	CLUSTER LWADD <key> <ts> <el>...   → :<accepted> (local windowed add; internal)
//	CLUSTER LDEL <key>                 → :1/:0 (local delete; internal)
//	CLUSTER LEXPIREAT <key> <ms>       → :1/:0 (local absolute-deadline arm; internal, see lifecycle.go)
//	CLUSTER LDEADLINE <key>            → :<ms> (local deadline read; internal)
//	CLUSTER LPERSIST <key>             → :1/:0 (local deadline clear; internal)
//	CLUSTER LKEYS                      → +<keys> (local keys; internal)
//	CLUSTER ABSORB <key> <base64> [ms] → +OK (merge a sketch blob — and expiry deadline — into key; internal)
//	CLUSTER XFER BEGIN|FRAME|END ...   → streaming bulk-transfer transport (internal; see transfer.go)
//
// It also overrides EXPIRE / PEXPIRE / TTL / PERSIST with cluster-wide
// semantics: the coordinator computes the absolute deadline once and
// replicates that instant to every owner (see lifecycle.go).
//
// Any node answers any command: writes are forwarded to all of the key's
// owners (chosen by the consistent-hash ring), and counts scatter DUMP
// requests to the owners and merge the serialized sketches locally.
// DUMP / RESTORE / INFO / SAVE remain node-local, which is exactly what
// the scatter-gather path relies on.
//
// Membership mutations are fenced by epochs (see Map): the coordinator
// first wins a fresh epoch from a majority of the current members, so
// concurrent JOIN/LEAVEs through different coordinators converge to
// one map. The current map is mirrored into the store's metadata blob,
// which snapshots persist — a restarted node remembers its cluster and
// Rejoin re-enters it without any seed address.
type Node struct {
	id    string
	store *server.Store
	srv   *server.Server
	peers *pool

	pushes     atomic.Uint64 // cumulative rebalance ABSORB messages sent
	autoLeaves atomic.Uint64 // quorum-backed evictions this node coordinated

	digestRounds  atomic.Uint64 // digest anti-entropy peer-rounds initiated
	digestRepairs atomic.Uint64 // divergent keys shipped by digest repair

	// strict gates the -MOVED answer path: when set, public single-key
	// data verbs for keys this node does not own are redirected instead
	// of forwarded (see SetStrictRouting). Off by default — coordinator
	// mode, where any node answers any command, stays the default.
	strict       atomic.Bool
	movedReplies atomic.Uint64 // -MOVED redirects sent to misrouted clients
	mapRefetches atomic.Uint64 // CLUSTER MAP replies served (client refetches + syncs)

	// mutateMu serializes membership mutations coordinated BY THIS
	// node (claim → mint → install → broadcast), so two JOINs arriving
	// at the same coordinator cannot claim successive epochs and then
	// mint rival maps from the same parent — losing one silently.
	// Mutations coordinated elsewhere need no lock; epochs fence them.
	mutateMu sync.Mutex

	mu           sync.RWMutex
	cmap         *Map
	grantedEpoch uint64 // highest epoch granted to a coordinator or seen in a map
	grantedTo    string // coordinator holding grantedEpoch ("" if from a map/fast-forward)

	// gsp is the gossip failure detector (see gossip.go). Its lock is
	// ordered strictly after mu and mutateMu: detector code may read
	// the map, map code never touches detector state.
	gsp gossipState

	// xfer is the streaming bulk-transfer transport state (see
	// transfer.go): sender counters and the receiver session table.
	xfer transferState
}

// ErrSuperseded is returned (wrapped) by Join when the mutation was
// overtaken by a newer map before it could stick — the operator must
// inspect the cluster and re-issue if still wanted.
var ErrSuperseded = errors.New("membership mutation superseded by a newer map")

const (
	// epochClaimAttempts bounds how often one claim re-proposes after
	// being outbid before giving up.
	epochClaimAttempts = 6
	// mutateAttempts bounds how often JOIN/LEAVE retries when newer
	// maps keep landing between its claim and its install.
	mutateAttempts = 6
)

// NewNode creates a cluster node with the given ID (no whitespace or
// '='), sketch configuration and replica factor. Call Start to begin
// serving, then optionally Join to enter an existing cluster.
func NewNode(id string, cfg core.Config, replicas int) (*Node, error) {
	if !validID(id) {
		return nil, fmt.Errorf("cluster: invalid node ID %q", id)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("cluster: replica factor %d < 1", replicas)
	}
	store, err := server.NewStore(cfg)
	if err != nil {
		return nil, err
	}
	n := &Node{id: id, store: store, peers: newPool()}
	n.xfer.sess = make(map[string]*xferSession)
	// Every pooled peer command runs under a deadline, so a black-holed
	// peer surfaces as a transport error (suspicion fuel) instead of
	// hanging a forward forever. SetPeerTimeout tunes it (elld
	// -peer-timeout).
	n.peers.setTimeout(defaultPeerTimeout)
	n.gsp.cfg = GossipConfig{Fanout: defaultFanout, SuspectAfter: defaultSuspectAfter}
	n.gsp.peers = make(map[string]*peerState)
	n.gsp.evictedAt = make(map[string]uint64)
	// Any successful peer command is liveness evidence; feed it to the
	// failure detector so steady traffic keeps refuting suspicion.
	n.peers.alive = n.markAlive
	n.srv = server.NewServer(store)
	n.srv.Handle("PFADD", n.handlePFAdd)
	n.srv.Handle("PFCOUNT", n.handlePFCount)
	n.srv.Handle("PFMERGE", n.handlePFMerge)
	n.srv.Handle("WADD", n.handleWAdd)
	n.srv.Handle("WCOUNT", n.handleWCount)
	n.srv.Handle("WINFO", n.handleWInfo)
	n.srv.Handle("DEL", n.handleDel)
	n.srv.Handle("EXPIRE", n.handleExpire)
	n.srv.Handle("PEXPIRE", n.handlePExpire)
	n.srv.Handle("TTL", n.handleTTL)
	n.srv.Handle("PERSIST", n.handlePersist)
	n.srv.Handle("KEYS", n.handleKeys)
	n.srv.Handle("CLUSTER", n.handleCluster)
	n.cmap = NewMap(replicas) // empty until Start learns the bound address
	return n, nil
}

// SetSnapshotPath enables the SAVE command on this node's server,
// writing snapshots of the local store to path. Call before Start.
func (n *Node) SetSnapshotPath(path string) { n.srv.SetSnapshotPath(path) }

// Start listens on addr (port 0 picks a free port) and initializes the
// cluster map: to the membership persisted in the store's snapshot
// metadata when one exists and records this node (a restart — call
// Rejoin next to re-announce), otherwise to a fresh single-node
// cluster of this node.
func (n *Node) Start(addr string) error {
	if err := n.srv.Listen(addr); err != nil {
		return err
	}
	actual := n.srv.Addr()
	// A persisted map may record a stale address for this node (it
	// came back on a different port). That is harmless — every
	// internal path routes to self by ID, never by address — and
	// Rejoin announces the real address under a claimed epoch.
	m := n.persistedMap()
	n.mu.Lock()
	if m == nil {
		m = NewMap(n.cmap.Replicas, Member{ID: n.id, Addr: actual})
	}
	n.cmap = m
	if m.Epoch > n.grantedEpoch {
		n.grantedEpoch, n.grantedTo = m.Epoch, m.Coordinator
	}
	n.store.SetMeta([]byte(m.Encode()))
	n.mu.Unlock()
	return nil
}

// persistedMap decodes the membership map persisted in the store's
// snapshot metadata. It returns nil when there is none, it is corrupt,
// or it does not record this node (a foreign snapshot).
func (n *Node) persistedMap() *Map {
	meta := n.store.Meta()
	if len(meta) == 0 {
		return nil
	}
	m, err := DecodeMap(strings.Fields(string(meta)))
	if err != nil || !m.Has(n.id) {
		return nil
	}
	return m
}

// Rejoin re-enters the cluster recorded in this node's persisted map
// (typically loaded from a snapshot before Start) without any seed
// address: it Joins through the first reachable recorded peer, which
// re-announces this node's address and pulls the cluster's current
// map. A single-node recorded map is already "rejoined". Use it in
// place of Join when restarting a node whose snapshot survived.
func (n *Node) Rejoin() error {
	var errs []error
	for _, mem := range n.currentMap().Members() {
		if mem.ID == n.id {
			continue
		}
		if err := n.Join(mem.Addr); err != nil {
			errs = append(errs, err)
			continue
		}
		return nil
	}
	if len(errs) == 0 {
		return nil // single-node cluster: nothing to rejoin
	}
	// No peer could coordinate the join. If this node came back on a
	// NEW address, the peers' epoch quorum may need its own vote (a
	// 2-node cluster: the peer's claim targets the dead recorded
	// address and can never win) — coordinate the re-announce locally
	// instead: the self-grant plus any reachable peer's grant can
	// still make quorum, and the broadcast carries the address out.
	if n.currentMap().Addr(n.id) != n.Addr() {
		if reply := n.handleJoin(n.id, n.Addr()); strings.HasPrefix(reply, "+OK") {
			return nil
		}
	}
	return fmt.Errorf("cluster: rejoin: no recorded peer reachable: %w", errors.Join(errs...))
}

// Join enters the cluster that seedAddr is a member of: the seed adds
// this node to its map and broadcasts the new map to every member
// (including this node), each of which rebalances before replying. When
// Join returns nil the whole cluster has converged on the new map.
func (n *Node) Join(seedAddr string) error {
	// Use a dedicated connection, NOT the peer pool: the seed answers
	// JOIN only after broadcasting SETMAP to this node, whose handler
	// rebalances — and rebalance may push ABSORB back to the seed. If the
	// pending JOIN held the pooled client's lock, that ABSORB would wait
	// on it forever: a distributed deadlock whenever a node with local
	// data (e.g. restored from snapshot) joins on a fresh address.
	if h := n.peers.hook; h != nil { // fault hook covers the out-of-pool join connection too
		if err := h(seedAddr, []string{"CLUSTER", "JOIN", n.id, n.Addr()}); err != nil {
			return fmt.Errorf("cluster: join via %s: %w", seedAddr, err)
		}
	}
	seed, err := server.Dial(seedAddr)
	if err != nil {
		return fmt.Errorf("cluster: join via %s: %w", seedAddr, err)
	}
	defer seed.Close()
	reply, err := seed.Do("CLUSTER", "JOIN", n.id, n.Addr())
	if err != nil {
		return fmt.Errorf("cluster: join via %s: %w", seedAddr, err)
	}
	if strings.HasPrefix(reply, "SUPERSEDED") {
		return fmt.Errorf("cluster: join via %s: %w (winner %s)",
			seedAddr, ErrSuperseded, strings.TrimSpace(strings.TrimPrefix(reply, "SUPERSEDED")))
	}
	if !strings.HasPrefix(reply, "OK") {
		return fmt.Errorf("cluster: join via %s: unexpected reply %q", seedAddr, reply)
	}
	// Pull the seed's map explicitly: on an idempotent re-join (this node
	// was already a member, e.g. it restarted) the seed does not
	// re-broadcast, so without this a restarted node would keep its stale
	// self-only map. The follow-up rebalance pushes any locally restored
	// sketches to their current owners.
	mreply, err := seed.Do("CLUSTER", "MAP")
	if err != nil {
		return fmt.Errorf("cluster: fetch map via %s: %w", seedAddr, err)
	}
	m, err := DecodeMap(strings.Fields(mreply))
	if err != nil {
		return fmt.Errorf("cluster: fetch map via %s: %w", seedAddr, err)
	}
	if err := n.installAndRebalance(m); err != nil {
		return fmt.Errorf("cluster: rebalance after join: %w", err)
	}
	return nil
}

// Leave gracefully exits the cluster: this node claims a fresh epoch,
// drains every local sketch to its new owners (safe to re-send —
// merging is idempotent), then broadcasts the shrunken map to the
// remaining members.
func (n *Node) Leave() error {
	n.mutateMu.Lock()
	defer n.mutateMu.Unlock()
	for attempt := 0; attempt < mutateAttempts; attempt++ {
		if !n.currentMap().Has(n.id) {
			// Already off the map — possibly from a previous Leave
			// that failed AFTER installing the self-excluded map.
			// Finish the hand-off idempotently instead of reporting
			// instant success: drain whatever is still local and
			// re-tell the members (no-ops when all done).
			if err := n.drainStrays(); err != nil {
				return fmt.Errorf("cluster: drain before leave: %w", err)
			}
			return n.broadcast(n.currentMap(), nil)
		}
		epoch, err := n.claimEpoch()
		if err != nil {
			return fmt.Errorf("cluster: leave: %w", err)
		}
		cur := n.currentMap()
		if !cur.Has(n.id) {
			continue // someone else removed us mid-claim: drain via the loop top
		}
		newMap := cur.withoutNode(n.id, epoch, n.id)
		prev, changed := n.swapMap(newMap)
		if !changed {
			continue // a newer map landed between claim and install; retry
		}
		if err := n.rebalance(prev, newMap); err != nil {
			return fmt.Errorf("cluster: drain before leave: %w", err)
		}
		if err := n.broadcast(newMap, nil); err != nil {
			return fmt.Errorf("cluster: announce leave: %w", err)
		}
		return nil
	}
	return errors.New("cluster: leave kept losing to concurrent membership changes")
}

// Close shuts down the node's server and peer connections.
func (n *Node) Close() error {
	n.peers.closeAll()
	return n.srv.Close()
}

// ID returns the node's cluster ID.
func (n *Node) ID() string { return n.id }

// Addr returns the node's listen address ("" before Start).
func (n *Node) Addr() string { return n.srv.Addr() }

// Store exposes the node's local sketch store, e.g. for snapshot
// load/save around restarts.
func (n *Node) Store() *server.Store { return n.store }

// Map returns the node's current cluster map. Treat it as read-only.
func (n *Node) Map() *Map { return n.currentMap() }

// SetStrictRouting toggles the smart-client answer path: when enabled,
// a public single-key data verb (PFADD, WADD, WCOUNT, WINFO, DEL,
// EXPIRE, PEXPIRE, TTL, PERSIST, and single-key PFCOUNT) whose key this
// node does not own is answered with
//
//	-MOVED e=<epoch> <id>=<addr>
//
// naming the primary owner under this node's current map, instead of
// being forwarded on the client's behalf. ClusterClient follows the
// redirect; dumb clients see it as an error. Multi-key reads (PFCOUNT
// with several keys, PFMERGE, KEYS) are always served — they are
// scatter-gathers with no single owner to point at. Internal forwards
// (the CLUSTER L*/MLPFADD/ABSORB verbs) are exempt by construction:
// they bypass the public handlers entirely, so a replica can never
// bounce a replication write into a redirect loop. Off by default;
// safe to toggle at runtime.
func (n *Node) SetStrictRouting(on bool) { n.strict.Store(on) }

// moved returns the -MOVED redirect line for key when strict routing is
// on and this node is not among the key's owners. The epoch tag lets
// clients ignore redirects older than the map they already hold.
func (n *Node) moved(key string) (string, bool) {
	if !n.strict.Load() {
		return "", false
	}
	m := n.currentMap()
	owners := m.Owners(key)
	if len(owners) == 0 {
		return "", false
	}
	for _, o := range owners {
		if o.ID == n.id {
			return "", false
		}
	}
	n.movedReplies.Add(1)
	return fmt.Sprintf("-MOVED e=%d %s=%s", m.Epoch, owners[0].ID, owners[0].Addr), true
}

func (n *Node) currentMap() *Map {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.cmap
}

// swapMap installs m if it supersedes the current map under the
// (Epoch, Version, Coordinator) order, mirroring it into the store's
// snapshot metadata and fast-forwarding the node's epoch watermark. It
// returns the map that was current before the call and whether it
// changed.
func (n *Node) swapMap(m *Map) (prev *Map, changed bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !m.Newer(n.cmap) {
		return n.cmap, false
	}
	prev, n.cmap = n.cmap, m
	if m.Epoch > n.grantedEpoch {
		n.grantedEpoch, n.grantedTo = m.Epoch, m.Coordinator
	}
	n.store.SetMeta([]byte(m.Encode()))
	return prev, true
}

// installAndRebalance swaps in m and, if it superseded the current
// map, runs the delta rebalance for the transition.
func (n *Node) installAndRebalance(m *Map) error {
	prev, changed := n.swapMap(m)
	if !changed {
		return nil
	}
	return n.rebalance(prev, m)
}

// grantEpoch is this node's vote in an epoch claim: e is granted iff
// it is above every epoch this node has granted or seen in a map, or
// is a re-request by the coordinator already holding it (idempotent
// retry). highest is the node's watermark after the call, which a
// denied coordinator uses to fast-forward its next proposal.
func (n *Node) grantEpoch(e uint64, coordinator string) (ok bool, highest uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e > n.grantedEpoch {
		n.grantedEpoch, n.grantedTo = e, coordinator
		return true, e
	}
	if e == n.grantedEpoch && coordinator == n.grantedTo {
		return true, e
	}
	return false, n.grantedEpoch
}

// observeEpoch fast-forwards the epoch watermark to e (learned from a
// denial) without granting it to anyone.
func (n *Node) observeEpoch(e uint64) {
	n.mu.Lock()
	if e > n.grantedEpoch {
		n.grantedEpoch, n.grantedTo = e, ""
	}
	n.mu.Unlock()
}

// nextEpochProposal picks the next epoch to claim: one past everything
// this node has seen.
func (n *Node) nextEpochProposal() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	e := n.cmap.Epoch
	if n.grantedEpoch > e {
		e = n.grantedEpoch
	}
	return e + 1
}

// claimEpoch wins a fresh epoch from a quorum (majority) of the
// current members, retrying with higher proposals when outbid. Because
// any two majorities intersect, at most one coordinator can win a
// given epoch while a quorum is reachable — the fencing that keeps
// concurrent JOIN/LEAVEs from minting rival maps at the same epoch.
//
// Every vote (grant or denial) also carries the voter's current map;
// the newest one is adopted before claimEpoch returns, so the
// coordinator mints its mutation from the freshest map any reachable
// member holds — a rival's just-installed, not-yet-broadcast map is
// picked up here instead of being silently overwritten at a higher
// epoch. Only a mutation whose minting coordinator is unreachable
// during the whole claim can still be superseded (see the single-
// partition limits in Map's doc).
func (n *Node) claimEpoch() (uint64, error) {
	var lastErr error
	for attempt := 0; attempt < epochClaimAttempts; attempt++ {
		if attempt > 0 {
			// Deterministic per-node stagger: coordinators that keep
			// outbidding each other back off by different amounts and
			// separate instead of livelocking.
			time.Sleep(time.Duration(attempt)*4*time.Millisecond +
				time.Duration(hash64(n.id)%7)*time.Millisecond)
		}
		propose := n.nextEpochProposal()
		members := n.currentMap().Members()
		quorum := len(members)/2 + 1
		var (
			mu      sync.Mutex
			grants  int
			highest uint64
			newest  *Map
			wg      sync.WaitGroup
		)
		tally := func(granted bool, h uint64, m *Map) {
			mu.Lock()
			defer mu.Unlock()
			if granted {
				grants++
			}
			if h > highest {
				highest = h
			}
			if m != nil && m.Newer(newest) {
				newest = m
			}
		}
		for _, mem := range members {
			if mem.ID == n.id {
				ok, h := n.grantEpoch(propose, n.id)
				tally(ok, h, nil)
				continue
			}
			wg.Add(1)
			go func(addr string) {
				defer wg.Done()
				reply, err := n.peers.do(addr, "CLUSTER", "EPOCH", strconv.FormatUint(propose, 10), n.id)
				if err != nil {
					return // unreachable peer: no vote
				}
				fields := strings.Fields(reply)
				if len(fields) < 2 {
					return
				}
				h, _ := strconv.ParseUint(fields[1], 10, 64)
				m, _ := DecodeMap(fields[2:]) // best-effort; nil on older peers
				tally(fields[0] == "GRANTED", h, m)
			}(mem.Addr)
		}
		wg.Wait()
		if newest != nil && newest.Newer(n.currentMap()) {
			if err := n.installAndRebalance(newest); err != nil {
				lastErr = err
				continue
			}
		}
		if grants >= quorum {
			return propose, nil
		}
		n.observeEpoch(highest)
		lastErr = fmt.Errorf("cluster: epoch %d claim won %d/%d votes (quorum %d)",
			propose, grants, len(members), quorum)
	}
	return 0, lastErr
}

// Sync is one anti-entropy round: fetch every peer's map, adopt the
// newest (delta-rebalancing if it changed), and re-broadcast the
// winner when any peer was behind. Driven periodically (elld does) it
// heals nodes that missed a SETMAP broadcast — a restarted node, or
// either side of a healed partition — without a consensus dependency.
func (n *Node) Sync() error {
	local := n.currentMap()
	members := local.Members()
	maps := make([]*Map, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, mem := range members {
		if mem.ID == n.id {
			continue
		}
		wg.Add(1)
		go func(i int, mem Member) {
			defer wg.Done()
			reply, err := n.peers.do(mem.Addr, "CLUSTER", "MAP")
			if err != nil {
				errs[i] = fmt.Errorf("cluster: sync map from %s: %w", mem.ID, err)
				return
			}
			m, err := DecodeMap(strings.Fields(reply))
			if err != nil {
				errs[i] = fmt.Errorf("cluster: sync map from %s: %w", mem.ID, err)
				return
			}
			maps[i] = m
		}(i, mem)
	}
	wg.Wait()
	best := local
	for _, m := range maps {
		if m != nil && m.Newer(best) {
			best = m
		}
	}
	if best.Newer(local) {
		if err := n.installAndRebalance(best); err != nil {
			errs = append(errs, err)
		}
	}
	// Push the winner only to the peers observed behind it — every
	// node runs Sync, so spraying all members would cost O(N²)
	// messages per tick for a single laggard.
	setmap := append([]string{"CLUSTER", "SETMAP"}, strings.Fields(best.Encode())...)
	var pushWG sync.WaitGroup
	pushErrs := make([]error, len(members))
	for i, m := range maps {
		if m == nil || !best.Newer(m) {
			continue
		}
		pushWG.Add(1)
		go func(i int, addr string) {
			defer pushWG.Done()
			_, pushErrs[i] = n.peers.do(addr, setmap...)
		}(i, members[i].Addr)
	}
	pushWG.Wait()
	errs = append(errs, pushErrs...)
	if err := n.drainStrays(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// drainStrays pushes local sketches this node does not own under the
// current map to their owners, then drops them — e.g. a write that
// landed here under a stale map after this node's rebalance already
// handed the key off. Free when there are no strays (the common case),
// so Sync can run it every round.
func (n *Node) drainStrays() error {
	m := n.currentMap()
	stray := false
	for _, key := range n.store.Keys() {
		if !slices.Contains(m.ownerIDs(key), n.id) {
			stray = true
			break
		}
	}
	if !stray {
		return nil
	}
	// rebalance with old == cur pushes nothing for owned keys (their
	// owner-set delta is empty) and full-pushes + drops exactly the
	// strays.
	return n.rebalance(m, m)
}

// broadcast sends SETMAP to every member of m except this node, plus any
// extra addresses (e.g. a node just removed from the map, best-effort so
// it learns to drain). Peers rebalance before replying, so a nil return
// means the cluster has converged. Extra-address errors are ignored.
func (n *Node) broadcast(m *Map, extraAddrs []string) error {
	tokens := strings.Fields(m.Encode())
	args := append([]string{"CLUSTER", "SETMAP"}, tokens...)
	var wg sync.WaitGroup
	members := m.Members()
	errs := make([]error, len(members))
	for i, mem := range members {
		if mem.ID == n.id {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			_, errs[i] = n.peers.do(addr, args...)
		}(i, mem.Addr)
	}
	for _, addr := range extraAddrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			n.peers.do(addr, args...)
		}(addr)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// validToken guards the Go API against values the line protocol cannot
// carry: an element with whitespace would be added whole locally but
// split into several elements (or injected as a command) on remote
// owners, silently breaking the replicas-are-identical invariant.
func validToken(kind, s string) error {
	if s == "" || strings.ContainsAny(s, " \t\r\n") {
		return fmt.Errorf("cluster: %s %q must be non-empty and free of whitespace", kind, s)
	}
	return nil
}

func validKeys(keys []string) error {
	for _, k := range keys {
		if err := validToken("key", k); err != nil {
			return err
		}
	}
	return nil
}

// withStaleMapRetry runs op against the current map and, when it fails
// while a strictly newer map was installed concurrently, re-resolves
// once against the fresh map. This is the server-side mirror of the
// smart client's redirect budget: a forward that lands on a just-
// evicted owner mid-rebalance gets one second chance against the map
// that evicted it, instead of surfacing a transport error the caller
// would have to retry anyway. Bounded at one re-resolve — a second
// concurrent map change surfaces its error as before.
func (n *Node) withStaleMapRetry(op func(m *Map) error) error {
	m := n.currentMap()
	err := op(m)
	if err == nil {
		return nil
	}
	if cur := n.currentMap(); cur != m && cur.Newer(m) {
		return op(cur)
	}
	return err
}

// Add inserts elements into key on every owner node; it reports whether
// any owner's sketch changed. All owners receive the same elements, so
// replicas stay byte-identical (insertion order does not matter — the
// paper's reproducibility property). Keys and elements must be non-empty
// and whitespace-free (the line protocol's token rule).
func (n *Node) Add(key string, elements ...string) (bool, error) {
	if err := validToken("key", key); err != nil {
		return false, err
	}
	if len(elements) == 0 {
		// Reject before queueing: a zero-element group would fail the
		// whole MLPFADD batch it gets coalesced into, not just this call.
		return false, errors.New("cluster: Add needs at least one element")
	}
	for _, e := range elements {
		if err := validToken("element", e); err != nil {
			return false, err
		}
	}
	var changed bool
	err := n.withStaleMapRetry(func(m *Map) error {
		var err error
		changed, err = n.addWith(m, key, elements)
		return err
	})
	return changed, err
}

// addWith is Add's fan-out against one specific map; re-sending to an
// owner that already applied the elements is harmless (sketch inserts
// are idempotent), which is what makes the stale-map retry safe.
func (n *Node) addWith(m *Map, key string, elements []string) (bool, error) {
	owners := m.Owners(key)
	if len(owners) == 0 {
		return false, errors.New("cluster: empty cluster map (node not started?)")
	}
	changed := make([]bool, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o Member) {
			defer wg.Done()
			if o.ID == n.id {
				changed[i], errs[i] = n.store.Add(key, elements...)
				return
			}
			// Batched forwarding: concurrent Adds to the same owner
			// coalesce into one pipelined CLUSTER MLPFADD round trip.
			changed[i], errs[i] = n.peers.batchAdd(o.Addr, key, elements)
		}(i, o)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return false, err
	}
	for _, c := range changed {
		if c {
			return true, nil
		}
	}
	return false, nil
}

// Count estimates the distinct count of the union of keys cluster-wide:
// every owner's copy of every key is fetched as a serialized sketch and
// merged locally. Fetching all replicas (not just primaries) is free
// correctness-wise — merging duplicates is idempotent — and masks a
// replica that missed a write.
func (n *Node) Count(keys ...string) (float64, error) {
	if err := validKeys(keys); err != nil {
		return 0, err
	}
	var acc *core.Sketch
	err := n.withStaleMapRetry(func(m *Map) error {
		var err error
		acc, err = n.gather(m, keys)
		return err
	})
	if err != nil {
		return 0, err
	}
	if acc == nil {
		return 0, nil
	}
	return acc.Estimate(), nil
}

// ownerBlob is one owner's serialized copy of one key, as collected by
// gatherOwnerBlobs.
type ownerBlob struct {
	key     string
	ownerID string
	blob    []byte
}

// gatherOwnerBlobs fetches every owner's copy of every key as a
// serialized value blob. The DUMPs are batched per owner — all of an
// owner's keys go out as one pipelined request — so a multi-key fetch
// costs one round trip per owner, not one per (key, owner) pair.
// Owners are queried concurrently; missing keys are skipped. Both the
// plain (gather) and windowed (gatherWindows) scatter-gathers sit on
// this one scaffold and differ only in how they decode and merge.
// maxGatherBlobBytes caps the decoded size of a single DUMPZ reply. A
// compressed blob can legitimately expand past the line-protocol cap,
// so this mirrors the window package's largest wire ring rather than
// the frame limit.
const maxGatherBlobBytes = 1 << 28

// isUnknownCommand reports whether err is a peer's well-formed "-ERR
// unknown command ..." reply — the signature of a pre-codec peer that
// doesn't speak DUMPZ.
func isUnknownCommand(err error) bool {
	return server.IsReplyErr(err) && strings.Contains(err.Error(), "unknown command")
}

func (n *Node) gatherOwnerBlobs(m *Map, keys []string) ([]ownerBlob, error) {
	type ownerJobs struct {
		owner Member
		keys  []string
	}
	var owners []*ownerJobs
	byID := make(map[string]*ownerJobs)
	for _, key := range keys {
		for _, o := range m.Owners(key) {
			oj, ok := byID[o.ID]
			if !ok {
				oj = &ownerJobs{owner: o}
				byID[o.ID] = oj
				owners = append(owners, oj)
			}
			oj.keys = append(oj.keys, key)
		}
	}
	blobs := make([][]ownerBlob, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, oj := range owners {
		wg.Add(1)
		go func(i int, oj *ownerJobs) {
			defer wg.Done()
			got := make([]ownerBlob, 0, len(oj.keys))
			if oj.owner.ID == n.id {
				for _, key := range oj.keys {
					if blob, ok := n.store.Dump(key); ok {
						got = append(got, ownerBlob{key, oj.owner.ID, blob})
					}
				}
				blobs[i] = got
				return
			}
			// Prefer the compressed dump: an 8-key scatter-gather count
			// moves a fraction of the raw register bytes. A peer from
			// before the codec answers "unknown command" — re-fetch that
			// owner's batch with plain DUMP (and remember nothing: the
			// next gather probes again, so an upgraded peer is picked up).
			compressed := true
			cmds := make([][]string, len(oj.keys))
			for j, key := range oj.keys {
				cmds[j] = []string{"DUMPZ", key}
			}
			results, err := n.peers.pipeline(oj.owner.Addr, cmds)
			if err != nil {
				errs[i] = fmt.Errorf("cluster: dump from %s: %w", oj.owner.ID, err)
				return
			}
			if len(results) > 0 && isUnknownCommand(results[0].Err) {
				compressed = false
				for j, key := range oj.keys {
					cmds[j] = []string{"DUMP", key}
				}
				if results, err = n.peers.pipeline(oj.owner.Addr, cmds); err != nil {
					errs[i] = fmt.Errorf("cluster: dump from %s: %w", oj.owner.ID, err)
					return
				}
			}
			for j, res := range results {
				if errors.Is(res.Err, server.ErrNoSuchKey) {
					continue
				}
				if res.Err != nil {
					errs[i] = fmt.Errorf("cluster: dump %q from %s: %w", oj.keys[j], oj.owner.ID, res.Err)
					return
				}
				blob, err := base64.StdEncoding.DecodeString(res.Value)
				if err != nil {
					errs[i] = fmt.Errorf("cluster: dump %q from %s: %w", oj.keys[j], oj.owner.ID, err)
					return
				}
				if compressed {
					if blob, err = compress.DecodeBlob(blob, maxGatherBlobBytes); err != nil {
						errs[i] = fmt.Errorf("cluster: dump %q from %s: %w", oj.keys[j], oj.owner.ID, err)
						return
					}
				}
				got = append(got, ownerBlob{oj.keys[j], oj.owner.ID, blob})
			}
			blobs[i] = got
		}(i, oj)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	var out []ownerBlob
	for _, group := range blobs {
		out = append(out, group...)
	}
	return out, nil
}

// gather fetches every owner's sketch for every key (one pipelined
// batch per owner, see gatherOwnerBlobs) and merges them into one
// sketch (nil if no key exists anywhere). A windowed key surfaces the
// store's WRONGTYPE error rather than merging garbage.
func (n *Node) gather(m *Map, keys []string) (*core.Sketch, error) {
	blobs, err := n.gatherOwnerBlobs(m, keys)
	if err != nil {
		return nil, err
	}
	var acc *core.Sketch
	for _, b := range blobs {
		if window.IsSerialized(b.blob) {
			return nil, fmt.Errorf("cluster: sketch %q from %s: %w", b.key, b.ownerID, server.ErrWrongType)
		}
		sk, err := core.FromBinary(b.blob)
		if err != nil {
			return nil, fmt.Errorf("cluster: sketch %q from %s: %w", b.key, b.ownerID, err)
		}
		if acc == nil {
			acc = sk
			continue
		}
		if acc.Config() == sk.Config() {
			if err := acc.Merge(sk); err != nil {
				return nil, err
			}
			continue
		}
		merged, err := core.MergeCompatible(acc, sk)
		if err != nil {
			return nil, err
		}
		acc = merged
	}
	return acc, nil
}

// WindowAdd inserts elements observed at the unix-millisecond
// timestamp ts into the windowed key on every owner node; it returns
// how many elements the primary owner accepted (replicas see the same
// elements and timestamps, so their rings stay identical — slice
// assignment is a pure function of the timestamp). Keys and elements
// must be non-empty and whitespace-free (the line protocol's token
// rule). Every node must share one window geometry (elld's
// -window-slice/-window-slices), like the sketch configuration.
func (n *Node) WindowAdd(key string, tsMillis int64, elements ...string) (int, error) {
	if err := validToken("key", key); err != nil {
		return 0, err
	}
	if len(elements) == 0 {
		return 0, errors.New("cluster: WindowAdd needs at least one element")
	}
	for _, e := range elements {
		if err := validToken("element", e); err != nil {
			return 0, err
		}
	}
	var accepted int
	err := n.withStaleMapRetry(func(m *Map) error {
		var err error
		accepted, err = n.windowAddWith(m, key, tsMillis, elements)
		return err
	})
	return accepted, err
}

// windowAddWith is WindowAdd's fan-out against one specific map;
// re-sending is harmless (slice merges are idempotent, slice assignment
// is a pure function of the timestamp), making the stale-map retry safe.
func (n *Node) windowAddWith(m *Map, key string, tsMillis int64, elements []string) (int, error) {
	owners := m.Owners(key)
	if len(owners) == 0 {
		return 0, errors.New("cluster: empty cluster map (node not started?)")
	}
	accepted := make([]int, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o Member) {
			defer wg.Done()
			if o.ID == n.id {
				accepted[i], errs[i] = n.store.WindowAdd(key, time.UnixMilli(tsMillis), elements...)
				return
			}
			// Batched forwarding: concurrent WindowAdds (and plain Adds)
			// to the same owner coalesce into one pipelined CLUSTER MLADD
			// round trip. The LWADD single-shot verb remains for
			// compatibility but this path no longer uses it.
			accepted[i], errs[i] = n.peers.batchWAdd(o.Addr, key, tsMillis, elements)
		}(i, o)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return 0, err
	}
	return accepted[0], nil
}

// WindowCount estimates the distinct count the windowed key observed
// over the window ending at tsMillis (0: the newest timestamp any
// owner observed) — cluster-wide: every owner's ring is fetched as a
// slot-wise DUMP and merged slice by slice at this coordinator, so the
// union is exact at slice granularity. Fetching all replicas is free
// correctness-wise (slice merges are idempotent) and masks a replica
// that missed a write.
func (n *Node) WindowCount(key string, win time.Duration, tsMillis int64) (float64, error) {
	if win <= 0 {
		return 0, fmt.Errorf("cluster: window %v must be positive", win)
	}
	if err := validToken("key", key); err != nil {
		return 0, err
	}
	var acc *window.Counter
	err := n.withStaleMapRetry(func(m *Map) error {
		var err error
		acc, err = n.gatherWindows(m, []string{key})
		return err
	})
	if err != nil {
		return 0, err
	}
	if acc == nil {
		return 0, nil
	}
	now := acc.Latest()
	if tsMillis != 0 {
		now = time.UnixMilli(tsMillis)
	}
	if now.IsZero() {
		return 0, nil
	}
	return acc.Estimate(now, win), nil
}

// WindowInfo describes the cluster-wide merged ring of the windowed
// key (geometry, newest timestamp, summed Dropped statistic, full-span
// estimate). A key no owner holds is server.ErrNoSuchKey.
func (n *Node) WindowInfo(key string) (string, error) {
	if err := validToken("key", key); err != nil {
		return "", err
	}
	var acc *window.Counter
	err := n.withStaleMapRetry(func(m *Map) error {
		var err error
		acc, err = n.gatherWindows(m, []string{key})
		return err
	})
	if err != nil {
		return "", err
	}
	if acc == nil {
		return "", fmt.Errorf("cluster: %w", server.ErrNoSuchKey)
	}
	return acc.Describe(), nil
}

// gatherWindows is gather's windowed sibling on the same
// gatherOwnerBlobs scaffold: every owner's copy arrives as a slot-wise
// window DUMP and the rings merge slice by slice into one counter (nil
// if no key exists anywhere). A plain-sketch key surfaces the store's
// WRONGTYPE error rather than merging garbage.
func (n *Node) gatherWindows(m *Map, keys []string) (*window.Counter, error) {
	blobs, err := n.gatherOwnerBlobs(m, keys)
	if err != nil {
		return nil, err
	}
	var acc *window.Counter
	for _, b := range blobs {
		if !window.IsSerialized(b.blob) {
			return nil, fmt.Errorf("cluster: window dump %q from %s: %w", b.key, b.ownerID, server.ErrWrongType)
		}
		c, err := window.FromBinary(b.blob)
		if err != nil {
			return nil, fmt.Errorf("cluster: window dump %q from %s: %w", b.key, b.ownerID, err)
		}
		if acc == nil {
			acc = c
			continue
		}
		if err := acc.Merge(c); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// MergeKeys stores the cluster-wide union of the source keys (and dest's
// current value) at dest, replicated to all of dest's owners.
func (n *Node) MergeKeys(dest string, sources ...string) error {
	if err := validKeys(append([]string{dest}, sources...)); err != nil {
		return err
	}
	m := n.currentMap()
	acc, err := n.gather(m, append(append([]string{}, sources...), dest))
	if err != nil {
		return err
	}
	if acc == nil {
		acc = core.MustNew(n.store.Config())
	}
	blob, err := acc.MarshalBinary()
	if err != nil {
		return err
	}
	return n.absorbAll(m.Owners(dest), dest, blob)
}

// absorbAll merges blob into key on every given owner.
func (n *Node) absorbAll(owners []Member, key string, blob []byte) error {
	b64 := base64.StdEncoding.EncodeToString(blob)
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o Member) {
			defer wg.Done()
			if o.ID == n.id {
				errs[i] = n.store.MergeBlob(key, blob)
				return
			}
			_, errs[i] = n.peers.do(o.Addr, "CLUSTER", "ABSORB", key, b64)
		}(i, o)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Del removes key from all of its owners; it reports whether any owner
// had it.
func (n *Node) Del(key string) (bool, error) {
	if err := validToken("key", key); err != nil {
		return false, err
	}
	var existed bool
	err := n.withStaleMapRetry(func(m *Map) error {
		var err error
		existed, err = n.delWith(m, key)
		return err
	})
	return existed, err
}

// delWith is Del's fan-out against one specific map; deleting an
// already-deleted key is a no-op, so the stale-map retry is safe.
func (n *Node) delWith(m *Map, key string) (bool, error) {
	owners := m.Owners(key)
	existed := make([]bool, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o Member) {
			defer wg.Done()
			if o.ID == n.id {
				existed[i] = n.store.Delete(key)
				return
			}
			reply, err := n.peers.do(o.Addr, "CLUSTER", "LDEL", key)
			errs[i] = err
			existed[i] = reply == "1"
		}(i, o)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return false, err
	}
	for _, e := range existed {
		if e {
			return true, nil
		}
	}
	return false, nil
}

// AllKeys returns the union of every member's local keys, sorted.
func (n *Node) AllKeys() ([]string, error) {
	m := n.currentMap()
	members := m.Members()
	results := make([][]string, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, mem := range members {
		wg.Add(1)
		go func(i int, mem Member) {
			defer wg.Done()
			if mem.ID == n.id {
				results[i] = n.store.Keys()
				return
			}
			reply, err := n.peers.do(mem.Addr, "CLUSTER", "LKEYS")
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = strings.Fields(reply)
		}(i, mem)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	seen := make(map[string]struct{})
	for _, keys := range results {
		for _, k := range keys {
			seen[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// --- protocol handlers -------------------------------------------------

func (n *Node) handlePFAdd(args []string) string {
	if len(args) < 2 {
		return "-ERR PFADD needs a key and at least one element"
	}
	if reply, ok := n.moved(args[0]); ok {
		return reply
	}
	changed, err := n.Add(args[0], args[1:]...)
	if err != nil {
		return "-ERR " + err.Error()
	}
	if changed {
		return ":1"
	}
	return ":0"
}

func (n *Node) handlePFCount(args []string) string {
	if len(args) < 1 {
		return "-ERR PFCOUNT needs at least one key"
	}
	// Only the single-key form is redirectable: a multi-key count is a
	// scatter-gather with no single owner to point the client at.
	if len(args) == 1 {
		if reply, ok := n.moved(args[0]); ok {
			return reply
		}
	}
	v, err := n.Count(args...)
	if err != nil {
		return "-ERR " + err.Error()
	}
	return fmt.Sprintf(":%d", int64(v+0.5))
}

func (n *Node) handlePFMerge(args []string) string {
	if len(args) < 2 {
		return "-ERR PFMERGE needs a destination and at least one source"
	}
	if err := n.MergeKeys(args[0], args[1:]...); err != nil {
		return "-ERR " + err.Error()
	}
	return "+OK"
}

func (n *Node) handleWAdd(args []string) string {
	if len(args) < 3 {
		return "-ERR WADD needs a key, a unix-millisecond timestamp and at least one element"
	}
	ts, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return "-ERR WADD timestamp must be an integer (unix milliseconds)"
	}
	if reply, ok := n.moved(args[0]); ok {
		return reply
	}
	accepted, err := n.WindowAdd(args[0], ts, args[2:]...)
	if err != nil {
		return "-ERR " + err.Error()
	}
	return ":" + strconv.Itoa(accepted)
}

func (n *Node) handleWCount(args []string) string {
	if len(args) < 2 || len(args) > 3 {
		return "-ERR WCOUNT needs a key and a window duration (plus an optional unix-millisecond timestamp)"
	}
	win, err := time.ParseDuration(args[1])
	if err != nil || win <= 0 {
		return "-ERR WCOUNT window must be a positive duration like 30s or 5m"
	}
	var ts int64
	if len(args) == 3 {
		if ts, err = strconv.ParseInt(args[2], 10, 64); err != nil {
			return "-ERR WCOUNT timestamp must be an integer (unix milliseconds)"
		}
	}
	if reply, ok := n.moved(args[0]); ok {
		return reply
	}
	v, err := n.WindowCount(args[0], win, ts)
	if err != nil {
		return "-ERR " + err.Error()
	}
	return ":" + strconv.FormatInt(int64(v+0.5), 10)
}

func (n *Node) handleWInfo(args []string) string {
	if len(args) != 1 {
		return "-ERR WINFO needs exactly one key"
	}
	if reply, ok := n.moved(args[0]); ok {
		return reply
	}
	info, err := n.WindowInfo(args[0])
	if errors.Is(err, server.ErrNoSuchKey) {
		// Verbatim, so clients map it back to ErrNoSuchKey.
		return "-ERR " + server.ErrNoSuchKey.Error()
	}
	if err != nil {
		return "-ERR " + err.Error()
	}
	return "+" + info
}

func (n *Node) handleDel(args []string) string {
	if len(args) != 1 {
		return "-ERR DEL needs exactly one key"
	}
	if reply, ok := n.moved(args[0]); ok {
		return reply
	}
	existed, err := n.Del(args[0])
	if err != nil {
		return "-ERR " + err.Error()
	}
	if existed {
		return ":1"
	}
	return ":0"
}

func (n *Node) handleKeys(args []string) string {
	keys, err := n.AllKeys()
	if err != nil {
		return "-ERR " + err.Error()
	}
	return "+" + strings.Join(keys, " ")
}

func (n *Node) handleCluster(args []string) string {
	if len(args) == 0 {
		return "-ERR CLUSTER needs a subcommand"
	}
	sub := strings.ToUpper(args[0])
	rest := args[1:]
	switch sub {
	case "INFO":
		m := n.currentMap()
		return fmt.Sprintf("+id=%s addr=%s e=%d v=%d replicas=%d nodes=%d keys=%d rebal=%d",
			n.id, n.Addr(), m.Epoch, m.Version, m.Replicas, m.Len(), n.store.Len(), n.pushes.Load())
	case "MAP":
		// Counted as a refetch: under strict routing this is the verb
		// stale smart clients issue after a -MOVED, so moved_replies vs
		// map_refetches shows whether redirects are converging.
		n.mapRefetches.Add(1)
		return "+" + n.currentMap().Encode()
	case "JOIN":
		if len(rest) != 2 {
			return "-ERR CLUSTER JOIN needs an ID and an address"
		}
		return n.handleJoin(rest[0], rest[1])
	case "LEAVE":
		if len(rest) != 1 {
			return "-ERR CLUSTER LEAVE needs a node ID"
		}
		return n.handleLeave(rest[0])
	case "SETMAP":
		m, err := DecodeMap(rest)
		if err != nil {
			return "-ERR " + err.Error()
		}
		if err := n.installAndRebalance(m); err != nil {
			return "-ERR rebalance: " + err.Error()
		}
		return "+OK"
	case "EPOCH":
		if len(rest) != 2 {
			return "-ERR CLUSTER EPOCH needs an epoch and a coordinator ID"
		}
		e, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			return fmt.Sprintf("-ERR bad epoch %q", rest[0])
		}
		if !validID(rest[1]) {
			return fmt.Sprintf("-ERR invalid coordinator ID %q", rest[1])
		}
		// Either way the reply carries this node's current map, so the
		// claiming coordinator mints its mutation from the newest map
		// any voter has seen instead of a stale local parent.
		if ok, highest := n.grantEpoch(e, rest[1]); !ok {
			return fmt.Sprintf("+DENIED %d %s", highest, n.currentMap().Encode())
		}
		return fmt.Sprintf("+GRANTED %d %s", e, n.currentMap().Encode())
	case "SYNC":
		// Full operator-facing anti-entropy: converge maps, drain
		// strays, then run a digest round so replica divergence heals
		// without the full re-push CLUSTER REBALANCE would cost.
		if err := n.Sync(); err != nil {
			return "-ERR sync: " + err.Error()
		}
		if err := n.DigestSync(); err != nil {
			return "-ERR sync: " + err.Error()
		}
		return "+OK"
	case "DSUM":
		return n.handleDigestSum(rest)
	case "DKEYS":
		return n.handleDigestKeys(rest)
	case "GOSSIP":
		return n.handleGossip(rest)
	case "HEALTH":
		return n.handleHealth()
	case "STATS":
		return n.handleClusterStats(rest)
	case "REBALANCE":
		if err := n.repair(); err != nil {
			return "-ERR rebalance: " + err.Error()
		}
		return "+OK"
	case "LPFADD":
		if len(rest) < 2 {
			return "-ERR CLUSTER LPFADD needs a key and at least one element"
		}
		changed, err := n.store.Add(rest[0], rest[1:]...)
		if err != nil {
			return "-ERR " + err.Error()
		}
		if changed {
			return ":1"
		}
		return ":0"
	case "MLPFADD":
		return n.handleMLPFAdd(rest)
	case "MLADD":
		return n.handleMLAdd(rest)
	case "LWADD":
		if len(rest) < 3 {
			return "-ERR CLUSTER LWADD needs a key, a timestamp and at least one element"
		}
		ts, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			return fmt.Sprintf("-ERR bad CLUSTER LWADD timestamp %q", rest[1])
		}
		accepted, err := n.store.WindowAdd(rest[0], time.UnixMilli(ts), rest[2:]...)
		if err != nil {
			return "-ERR " + err.Error()
		}
		return ":" + strconv.Itoa(accepted)
	case "LDEL":
		if len(rest) != 1 {
			return "-ERR CLUSTER LDEL needs exactly one key"
		}
		if n.store.Delete(rest[0]) {
			return ":1"
		}
		return ":0"
	case "LEXPIREAT":
		if len(rest) != 2 {
			return "-ERR CLUSTER LEXPIREAT needs a key and a unix-millisecond deadline"
		}
		dl, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil || dl <= 0 || dl > server.MaxDeadlineMillis {
			return fmt.Sprintf("-ERR bad CLUSTER LEXPIREAT deadline %q", rest[1])
		}
		if n.store.ExpireAt(rest[0], dl) {
			return ":1"
		}
		return ":0"
	case "LDEADLINE":
		if len(rest) != 1 {
			return "-ERR CLUSTER LDEADLINE needs exactly one key"
		}
		dl, ok := n.store.DeadlineOf(rest[0])
		if !ok {
			// Verbatim, so the gather path maps it back to ErrNoSuchKey.
			return "-ERR " + server.ErrNoSuchKey.Error()
		}
		return ":" + strconv.FormatInt(dl, 10)
	case "LPERSIST":
		if len(rest) != 1 {
			return "-ERR CLUSTER LPERSIST needs exactly one key"
		}
		if n.store.Persist(rest[0]) {
			return ":1"
		}
		return ":0"
	case "LKEYS":
		return "+" + strings.Join(n.store.Keys(), " ")
	case "ABSORB":
		// The optional third argument is the source entry's expiry
		// deadline (unix milliseconds, 0 = none): rebalance and the
		// transfer degrade path send it so a key's lifetime travels
		// with its registers. The 2-arg form (no deadline to impose)
		// stays valid — PFMERGE's absorbAll uses it.
		if len(rest) != 2 && len(rest) != 3 {
			return "-ERR CLUSTER ABSORB needs a key, a base64 payload and an optional deadline"
		}
		blob, err := base64.StdEncoding.DecodeString(rest[1])
		if err != nil {
			return "-ERR bad base64: " + err.Error()
		}
		var deadline int64
		if len(rest) == 3 {
			deadline, err = strconv.ParseInt(rest[2], 10, 64)
			if err != nil || deadline < 0 || deadline > server.MaxDeadlineMillis {
				return fmt.Sprintf("-ERR bad CLUSTER ABSORB deadline %q", rest[2])
			}
		}
		if err := n.store.MergeBlobDeadline(rest[0], blob, deadline); err != nil {
			return "-ERR " + err.Error()
		}
		return "+OK"
	case "XFER":
		return n.handleXfer(rest)
	default:
		return "-ERR unknown CLUSTER subcommand " + sub
	}
}

// handleMLPFAdd executes a batched local-add: g groups, each a key, an
// element count, and that many elements (counted framing, so keys and
// elements need no reserved separator token). The reply is '+' followed
// by one byte per group, in order — '0'/'1' for the changed-bit, 'E'
// for a group whose add failed (a WRONGTYPE key) — what lets many
// concurrent forwarded PFADDs share one round trip yet each learn its
// own outcome. One bad group must NOT fail the whole batch: the other
// groups belong to unrelated callers coalesced by the group-commit
// batcher, and earlier groups have already been applied. Only framing
// corruption (which poisons everything after it) aborts with -ERR.
func (n *Node) handleMLPFAdd(rest []string) string {
	if len(rest) < 1 {
		return "-ERR CLUSTER MLPFADD needs a group count"
	}
	g, err := strconv.Atoi(rest[0])
	// Each group needs at least 3 tokens (key, count, one element), so
	// a count beyond (len(rest)-1)/3 cannot be satisfied — reject it
	// before sizing any allocation by it (wire input is untrusted).
	if err != nil || g < 1 || g > (len(rest)-1)/3 {
		return fmt.Sprintf("-ERR bad CLUSTER MLPFADD group count %q", rest[0])
	}
	bits := make([]byte, 0, g)
	i := 1
	for gi := 0; gi < g; gi++ {
		if len(rest)-i < 2 {
			return "-ERR truncated CLUSTER MLPFADD group"
		}
		key := rest[i]
		cnt, err := strconv.Atoi(rest[i+1])
		if err != nil || cnt < 1 {
			return fmt.Sprintf("-ERR bad CLUSTER MLPFADD element count %q", rest[i+1])
		}
		i += 2
		if len(rest)-i < cnt {
			return "-ERR truncated CLUSTER MLPFADD group"
		}
		changed, err := n.store.Add(key, rest[i:i+cnt]...)
		switch {
		case err != nil:
			bits = append(bits, 'E')
		case changed:
			bits = append(bits, '1')
		default:
			bits = append(bits, '0')
		}
		i += cnt
	}
	if i != len(rest) {
		return "-ERR trailing tokens after CLUSTER MLPFADD groups"
	}
	return "+" + string(bits)
}

// handleMLAdd is handleMLPFAdd's mixed-verb successor: one batch may
// carry plain PFADD groups and windowed WADD groups interleaved, so the
// group-commit batcher no longer has to segregate (or serialize) the
// two write kinds. Framing per group:
//
//	p <key> <count> <element>...        (plain add)
//	w <key> <ts> <count> <element>...   (windowed add, unix-ms timestamp)
//
// The reply is '+' followed by one space-separated token per group, in
// order: a plain group answers its changed-bit ('0'/'1'), a windowed
// group its accepted count, and either kind answers 'E' when its add
// failed (e.g. WRONGTYPE). As with MLPFADD, one bad group must not fail
// the whole batch — the groups belong to unrelated coalesced callers —
// and only framing corruption aborts with -ERR.
func (n *Node) handleMLAdd(rest []string) string {
	if len(rest) < 1 {
		return "-ERR CLUSTER MLADD needs a group count"
	}
	g, err := strconv.Atoi(rest[0])
	// Each group needs at least 4 tokens (type, key, count, one
	// element), so a count beyond (len(rest)-1)/4 cannot be satisfied —
	// reject before sizing any allocation by it (wire input is
	// untrusted).
	if err != nil || g < 1 || g > (len(rest)-1)/4 {
		return fmt.Sprintf("-ERR bad CLUSTER MLADD group count %q", rest[0])
	}
	toks := make([]string, 0, g)
	i := 1
	for gi := 0; gi < g; gi++ {
		if len(rest)-i < 1 {
			return "-ERR truncated CLUSTER MLADD group"
		}
		switch rest[i] {
		case "p":
			if len(rest)-i < 3 {
				return "-ERR truncated CLUSTER MLADD group"
			}
			key := rest[i+1]
			cnt, err := strconv.Atoi(rest[i+2])
			if err != nil || cnt < 1 {
				return fmt.Sprintf("-ERR bad CLUSTER MLADD element count %q", rest[i+2])
			}
			i += 3
			if len(rest)-i < cnt {
				return "-ERR truncated CLUSTER MLADD group"
			}
			changed, err := n.store.Add(key, rest[i:i+cnt]...)
			switch {
			case err != nil:
				toks = append(toks, "E")
			case changed:
				toks = append(toks, "1")
			default:
				toks = append(toks, "0")
			}
			i += cnt
		case "w":
			if len(rest)-i < 4 {
				return "-ERR truncated CLUSTER MLADD group"
			}
			key := rest[i+1]
			ts, err := strconv.ParseInt(rest[i+2], 10, 64)
			if err != nil {
				return fmt.Sprintf("-ERR bad CLUSTER MLADD timestamp %q", rest[i+2])
			}
			cnt, err := strconv.Atoi(rest[i+3])
			if err != nil || cnt < 1 {
				return fmt.Sprintf("-ERR bad CLUSTER MLADD element count %q", rest[i+3])
			}
			i += 4
			if len(rest)-i < cnt {
				return "-ERR truncated CLUSTER MLADD group"
			}
			accepted, err := n.store.WindowAdd(key, time.UnixMilli(ts), rest[i:i+cnt]...)
			if err != nil {
				toks = append(toks, "E")
			} else {
				toks = append(toks, strconv.Itoa(accepted))
			}
			i += cnt
		default:
			return fmt.Sprintf("-ERR bad CLUSTER MLADD group type %q", rest[i])
		}
	}
	if i != len(rest) {
		return "-ERR trailing tokens after CLUSTER MLADD groups"
	}
	return "+" + strings.Join(toks, " ")
}

// joinOutcome renders the final JOIN reply by re-reading the current
// map: +OK when the mutation is reflected in it (whoever minted it),
// +SUPERSEDED with the winning map's ordering triple when a rival map
// erased the mutation before the handler could return — the feedback
// channel that turns the epoch order's deterministic-but-silent losses
// into something an operator (or Join caller) can act on. A node that
// re-enters after an auto-eviction is told so.
func (n *Node) joinOutcome(id, addr string) string {
	m := n.currentMap()
	if m.Addr(id) != addr {
		return "+SUPERSEDED " + m.Triple()
	}
	return "+OK " + m.Triple() + n.rejoinNote(id)
}

// rejoinNote returns " rejoined-after-eviction=e<epoch>" when this node
// auto-evicted id earlier and id is now coming back, else "". The
// record is consumed: the note is delivered once.
func (n *Node) rejoinNote(id string) string {
	n.gsp.mu.Lock()
	defer n.gsp.mu.Unlock()
	if e, ok := n.gsp.evictedAt[id]; ok {
		delete(n.gsp.evictedAt, id)
		return fmt.Sprintf(" rejoined-after-eviction=e%d", e)
	}
	return ""
}

func (n *Node) handleJoin(id, addr string) string {
	if !validID(id) {
		return fmt.Sprintf("-ERR invalid node ID %q", id)
	}
	if strings.ContainsAny(addr, " \t\r\n=") || addr == "" {
		return fmt.Sprintf("-ERR invalid node address %q", addr)
	}
	n.mutateMu.Lock()
	defer n.mutateMu.Unlock()
	for attempt := 0; attempt < mutateAttempts; attempt++ {
		if m := n.currentMap(); m.Addr(id) == addr {
			return "+OK " + m.Triple() + n.rejoinNote(id) // idempotent re-join
		}
		epoch, err := n.claimEpoch()
		if err != nil {
			return "-ERR claim epoch: " + err.Error()
		}
		cur := n.currentMap() // re-read: the freshest map wins the race with other coordinators
		if cur.Addr(id) == addr {
			return "+OK " + cur.Triple() + n.rejoinNote(id)
		}
		newMap := cur.withNode(id, addr, epoch, n.id)
		prev, changed := n.swapMap(newMap)
		if !changed {
			continue // a newer map landed between claim and install; retry
		}
		if err := n.broadcast(newMap, nil); err != nil {
			return "-ERR broadcast: " + err.Error()
		}
		if err := n.rebalance(prev, newMap); err != nil {
			return "-ERR rebalance: " + err.Error()
		}
		return n.joinOutcome(id, addr)
	}
	return "+SUPERSEDED " + n.currentMap().Triple()
}

// leaveOutcome is joinOutcome's LEAVE counterpart: +OK when id is gone
// from the current map, +SUPERSEDED with the winner's triple when a
// rival map re-established it.
func (n *Node) leaveOutcome(id string) string {
	m := n.currentMap()
	if m.Has(id) {
		return "+SUPERSEDED " + m.Triple()
	}
	return "+OK " + m.Triple()
}

func (n *Node) handleLeave(id string) string {
	n.mutateMu.Lock()
	defer n.mutateMu.Unlock()
	for attempt := 0; attempt < mutateAttempts; attempt++ {
		if m := n.currentMap(); !m.Has(id) {
			return "+OK " + m.Triple() // idempotent re-leave
		}
		epoch, err := n.claimEpoch()
		if err != nil {
			return "-ERR claim epoch: " + err.Error()
		}
		cur := n.currentMap()
		if !cur.Has(id) {
			return "+OK " + cur.Triple()
		}
		oldAddr := cur.Addr(id)
		newMap := cur.withoutNode(id, epoch, n.id)
		prev, changed := n.swapMap(newMap)
		if !changed {
			continue
		}
		// Tell the departing node too (best-effort: it may be dead) so a
		// live leaver drains its keys to the remaining owners.
		if err := n.broadcast(newMap, []string{oldAddr}); err != nil {
			return "-ERR broadcast: " + err.Error()
		}
		if err := n.rebalance(prev, newMap); err != nil {
			return "-ERR rebalance: " + err.Error()
		}
		return n.leaveOutcome(id)
	}
	return "+SUPERSEDED " + n.currentMap().Triple()
}

// RebalancePushes returns the cumulative number of per-(key, owner)
// pushes this node's rebalances have planned — the cost observable that
// shows a membership change moving only its delta, not every key. (The
// pushes themselves travel framed over the transfer stream; see
// TransferStats for the resulting message counts.)
func (n *Node) RebalancePushes() uint64 { return n.pushes.Load() }

// SetPeerTimeout bounds every pooled peer command (forwards,
// scatter-gather, gossip, map broadcasts) with one I/O deadline per
// command: dials, writes and reply reads past d fail as TRANSPORT
// errors, dropping the cached connection and feeding the failure
// detector — a black-holed peer can no longer hang an operation
// forever. It applies to connections dialed after the call (elld sets
// it before Start); d ≤ 0 disables deadlines. The transfer stream has
// its own deadline, TransferConfig.Timeout.
func (n *Node) SetPeerTimeout(d time.Duration) { n.peers.setTimeout(d) }

// setFaultHook installs f as this node's outbound fault hook (nil
// disables). Every outgoing peer command — pool traffic and the
// dedicated Join connection — consults it first; a non-nil error
// aborts the send, simulating a partition or delaying a message. Test
// harness support: set before Start, never while serving.
func (n *Node) setFaultHook(f func(addr string, parts []string) error) { n.peers.hook = f }
