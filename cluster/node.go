package cluster

import (
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"exaloglog/internal/core"
	"exaloglog/server"
)

// Node is one member of a sketch cluster. It embeds a server.Store and
// server.Server, overriding PFADD / PFCOUNT / PFMERGE / DEL / KEYS with
// cluster-wide semantics and adding CLUSTER subcommands:
//
//	CLUSTER INFO                       → +id=.. addr=.. v=.. replicas=.. nodes=.. keys=..
//	CLUSTER MAP                        → +<version> <replicas> <id>=<addr> ...
//	CLUSTER JOIN <id> <addr>           → +OK v=<version> (adds the node, broadcasts the map)
//	CLUSTER LEAVE <id>                 → +OK v=<version> (removes the node, broadcasts)
//	CLUSTER SETMAP <version> <replicas> <id>=<addr>... → +OK (install if newer, rebalance)
//	CLUSTER LPFADD <key> <el>...       → :1/:0 (local add; internal replication verb)
//	CLUSTER LDEL <key>                 → :1/:0 (local delete; internal)
//	CLUSTER LKEYS                      → +<keys> (local keys; internal)
//	CLUSTER ABSORB <key> <base64>      → +OK (merge a sketch blob into key; internal)
//
// Any node answers any command: writes are forwarded to all of the key's
// owners (chosen by the consistent-hash ring), and counts scatter DUMP
// requests to the owners and merge the serialized sketches locally.
// DUMP / RESTORE / INFO / SAVE remain node-local, which is exactly what
// the scatter-gather path relies on.
type Node struct {
	id    string
	store *server.Store
	srv   *server.Server
	peers *pool

	mu   sync.RWMutex
	cmap *Map
}

// NewNode creates a cluster node with the given ID (no whitespace or
// '='), sketch configuration and replica factor. Call Start to begin
// serving, then optionally Join to enter an existing cluster.
func NewNode(id string, cfg core.Config, replicas int) (*Node, error) {
	if !validID(id) {
		return nil, fmt.Errorf("cluster: invalid node ID %q", id)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("cluster: replica factor %d < 1", replicas)
	}
	store, err := server.NewStore(cfg)
	if err != nil {
		return nil, err
	}
	n := &Node{id: id, store: store, peers: newPool()}
	n.srv = server.NewServer(store)
	n.srv.Handle("PFADD", n.handlePFAdd)
	n.srv.Handle("PFCOUNT", n.handlePFCount)
	n.srv.Handle("PFMERGE", n.handlePFMerge)
	n.srv.Handle("DEL", n.handleDel)
	n.srv.Handle("KEYS", n.handleKeys)
	n.srv.Handle("CLUSTER", n.handleCluster)
	n.cmap = NewMap(replicas) // empty until Start learns the bound address
	return n, nil
}

// SetSnapshotPath enables the SAVE command on this node's server,
// writing snapshots of the local store to path. Call before Start.
func (n *Node) SetSnapshotPath(path string) { n.srv.SetSnapshotPath(path) }

// Start listens on addr (port 0 picks a free port) and initializes the
// cluster map to a single-node cluster of this node.
func (n *Node) Start(addr string) error {
	if err := n.srv.Listen(addr); err != nil {
		return err
	}
	n.mu.Lock()
	n.cmap = NewMap(n.cmap.Replicas, Member{ID: n.id, Addr: n.srv.Addr()})
	n.mu.Unlock()
	return nil
}

// Join enters the cluster that seedAddr is a member of: the seed adds
// this node to its map and broadcasts the new map to every member
// (including this node), each of which rebalances before replying. When
// Join returns nil the whole cluster has converged on the new map.
func (n *Node) Join(seedAddr string) error {
	// Use a dedicated connection, NOT the peer pool: the seed answers
	// JOIN only after broadcasting SETMAP to this node, whose handler
	// rebalances — and rebalance may push ABSORB back to the seed. If the
	// pending JOIN held the pooled client's lock, that ABSORB would wait
	// on it forever: a distributed deadlock whenever a node with local
	// data (e.g. restored from snapshot) joins on a fresh address.
	seed, err := server.Dial(seedAddr)
	if err != nil {
		return fmt.Errorf("cluster: join via %s: %w", seedAddr, err)
	}
	defer seed.Close()
	reply, err := seed.Do("CLUSTER", "JOIN", n.id, n.Addr())
	if err != nil {
		return fmt.Errorf("cluster: join via %s: %w", seedAddr, err)
	}
	if !strings.HasPrefix(reply, "OK") {
		return fmt.Errorf("cluster: join via %s: unexpected reply %q", seedAddr, reply)
	}
	// Pull the seed's map explicitly: on an idempotent re-join (this node
	// was already a member, e.g. it restarted) the seed does not
	// re-broadcast, so without this a restarted node would keep its stale
	// self-only map. The follow-up rebalance pushes any locally restored
	// sketches to their current owners.
	mreply, err := seed.Do("CLUSTER", "MAP")
	if err != nil {
		return fmt.Errorf("cluster: fetch map via %s: %w", seedAddr, err)
	}
	m, err := DecodeMap(strings.Fields(mreply))
	if err != nil {
		return fmt.Errorf("cluster: fetch map via %s: %w", seedAddr, err)
	}
	if n.swapMap(m) {
		if err := n.rebalance(m); err != nil {
			return fmt.Errorf("cluster: rebalance after join: %w", err)
		}
	}
	return nil
}

// Leave gracefully exits the cluster: this node first drains every local
// sketch to its new owners (safe to re-send — merging is idempotent),
// then broadcasts the shrunken map to the remaining members.
func (n *Node) Leave() error {
	m := n.currentMap()
	if !m.Has(n.id) {
		return nil
	}
	newMap := m.withoutNode(n.id)
	n.swapMap(newMap)
	if err := n.rebalance(newMap); err != nil {
		return fmt.Errorf("cluster: drain before leave: %w", err)
	}
	if err := n.broadcast(newMap, nil); err != nil {
		return fmt.Errorf("cluster: announce leave: %w", err)
	}
	return nil
}

// Close shuts down the node's server and peer connections.
func (n *Node) Close() error {
	n.peers.closeAll()
	return n.srv.Close()
}

// ID returns the node's cluster ID.
func (n *Node) ID() string { return n.id }

// Addr returns the node's listen address ("" before Start).
func (n *Node) Addr() string { return n.srv.Addr() }

// Store exposes the node's local sketch store, e.g. for snapshot
// load/save around restarts.
func (n *Node) Store() *server.Store { return n.store }

// Map returns the node's current cluster map. Treat it as read-only.
func (n *Node) Map() *Map { return n.currentMap() }

func (n *Node) currentMap() *Map {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.cmap
}

// swapMap installs m if it is newer than the current map; it reports
// whether the map changed.
func (n *Node) swapMap(m *Map) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Version <= n.cmap.Version {
		return false
	}
	n.cmap = m
	return true
}

// broadcast sends SETMAP to every member of m except this node, plus any
// extra addresses (e.g. a node just removed from the map, best-effort so
// it learns to drain). Peers rebalance before replying, so a nil return
// means the cluster has converged. Extra-address errors are ignored.
func (n *Node) broadcast(m *Map, extraAddrs []string) error {
	tokens := strings.Fields(m.Encode())
	args := append([]string{"CLUSTER", "SETMAP"}, tokens...)
	var wg sync.WaitGroup
	members := m.Members()
	errs := make([]error, len(members))
	for i, mem := range members {
		if mem.ID == n.id {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			_, errs[i] = n.peers.do(addr, args...)
		}(i, mem.Addr)
	}
	for _, addr := range extraAddrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			n.peers.do(addr, args...)
		}(addr)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// validToken guards the Go API against values the line protocol cannot
// carry: an element with whitespace would be added whole locally but
// split into several elements (or injected as a command) on remote
// owners, silently breaking the replicas-are-identical invariant.
func validToken(kind, s string) error {
	if s == "" || strings.ContainsAny(s, " \t\r\n") {
		return fmt.Errorf("cluster: %s %q must be non-empty and free of whitespace", kind, s)
	}
	return nil
}

func validKeys(keys []string) error {
	for _, k := range keys {
		if err := validToken("key", k); err != nil {
			return err
		}
	}
	return nil
}

// Add inserts elements into key on every owner node; it reports whether
// any owner's sketch changed. All owners receive the same elements, so
// replicas stay byte-identical (insertion order does not matter — the
// paper's reproducibility property). Keys and elements must be non-empty
// and whitespace-free (the line protocol's token rule).
func (n *Node) Add(key string, elements ...string) (bool, error) {
	if err := validToken("key", key); err != nil {
		return false, err
	}
	for _, e := range elements {
		if err := validToken("element", e); err != nil {
			return false, err
		}
	}
	owners := n.currentMap().Owners(key)
	if len(owners) == 0 {
		return false, errors.New("cluster: empty cluster map (node not started?)")
	}
	changed := make([]bool, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o Member) {
			defer wg.Done()
			if o.ID == n.id {
				changed[i] = n.store.Add(key, elements...)
				return
			}
			reply, err := n.peers.do(o.Addr, append([]string{"CLUSTER", "LPFADD", key}, elements...)...)
			errs[i] = err
			changed[i] = reply == "1"
		}(i, o)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return false, err
	}
	for _, c := range changed {
		if c {
			return true, nil
		}
	}
	return false, nil
}

// Count estimates the distinct count of the union of keys cluster-wide:
// every owner's copy of every key is fetched as a serialized sketch and
// merged locally. Fetching all replicas (not just primaries) is free
// correctness-wise — merging duplicates is idempotent — and masks a
// replica that missed a write.
func (n *Node) Count(keys ...string) (float64, error) {
	if err := validKeys(keys); err != nil {
		return 0, err
	}
	acc, err := n.gather(n.currentMap(), keys)
	if err != nil {
		return 0, err
	}
	if acc == nil {
		return 0, nil
	}
	return acc.Estimate(), nil
}

// gather fetches every owner's sketch for every key and merges them into
// one sketch (nil if no key exists anywhere).
func (n *Node) gather(m *Map, keys []string) (*core.Sketch, error) {
	type job struct {
		key   string
		owner Member
	}
	var jobs []job
	for _, key := range keys {
		for _, o := range m.Owners(key) {
			jobs = append(jobs, job{key, o})
		}
	}
	sketches := make([]*core.Sketch, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			var blob []byte
			if j.owner.ID == n.id {
				var ok bool
				if blob, ok = n.store.Dump(j.key); !ok {
					return
				}
			} else {
				reply, err := n.peers.do(j.owner.Addr, "DUMP", j.key)
				if errors.Is(err, server.ErrNoSuchKey) {
					return
				}
				if err != nil {
					errs[i] = fmt.Errorf("cluster: dump %q from %s: %w", j.key, j.owner.ID, err)
					return
				}
				if blob, err = base64.StdEncoding.DecodeString(reply); err != nil {
					errs[i] = fmt.Errorf("cluster: dump %q from %s: %w", j.key, j.owner.ID, err)
					return
				}
			}
			sk, err := core.FromBinary(blob)
			if err != nil {
				errs[i] = fmt.Errorf("cluster: sketch %q from %s: %w", j.key, j.owner.ID, err)
				return
			}
			sketches[i] = sk
		}(i, j)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	var acc *core.Sketch
	for _, sk := range sketches {
		if sk == nil {
			continue
		}
		if acc == nil {
			acc = sk
			continue
		}
		merged, err := core.MergeCompatible(acc, sk)
		if err != nil {
			return nil, err
		}
		acc = merged
	}
	return acc, nil
}

// MergeKeys stores the cluster-wide union of the source keys (and dest's
// current value) at dest, replicated to all of dest's owners.
func (n *Node) MergeKeys(dest string, sources ...string) error {
	if err := validKeys(append([]string{dest}, sources...)); err != nil {
		return err
	}
	m := n.currentMap()
	acc, err := n.gather(m, append(append([]string{}, sources...), dest))
	if err != nil {
		return err
	}
	if acc == nil {
		acc = core.MustNew(n.store.Config())
	}
	blob, err := acc.MarshalBinary()
	if err != nil {
		return err
	}
	return n.absorbAll(m.Owners(dest), dest, blob)
}

// absorbAll merges blob into key on every given owner.
func (n *Node) absorbAll(owners []Member, key string, blob []byte) error {
	b64 := base64.StdEncoding.EncodeToString(blob)
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o Member) {
			defer wg.Done()
			if o.ID == n.id {
				errs[i] = n.store.MergeBlob(key, blob)
				return
			}
			_, errs[i] = n.peers.do(o.Addr, "CLUSTER", "ABSORB", key, b64)
		}(i, o)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Del removes key from all of its owners; it reports whether any owner
// had it.
func (n *Node) Del(key string) (bool, error) {
	if err := validToken("key", key); err != nil {
		return false, err
	}
	owners := n.currentMap().Owners(key)
	existed := make([]bool, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o Member) {
			defer wg.Done()
			if o.ID == n.id {
				existed[i] = n.store.Delete(key)
				return
			}
			reply, err := n.peers.do(o.Addr, "CLUSTER", "LDEL", key)
			errs[i] = err
			existed[i] = reply == "1"
		}(i, o)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return false, err
	}
	for _, e := range existed {
		if e {
			return true, nil
		}
	}
	return false, nil
}

// AllKeys returns the union of every member's local keys, sorted.
func (n *Node) AllKeys() ([]string, error) {
	m := n.currentMap()
	members := m.Members()
	results := make([][]string, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, mem := range members {
		wg.Add(1)
		go func(i int, mem Member) {
			defer wg.Done()
			if mem.ID == n.id {
				results[i] = n.store.Keys()
				return
			}
			reply, err := n.peers.do(mem.Addr, "CLUSTER", "LKEYS")
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = strings.Fields(reply)
		}(i, mem)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	seen := make(map[string]struct{})
	for _, keys := range results {
		for _, k := range keys {
			seen[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// --- protocol handlers -------------------------------------------------

func (n *Node) handlePFAdd(args []string) string {
	if len(args) < 2 {
		return "-ERR PFADD needs a key and at least one element"
	}
	changed, err := n.Add(args[0], args[1:]...)
	if err != nil {
		return "-ERR " + err.Error()
	}
	if changed {
		return ":1"
	}
	return ":0"
}

func (n *Node) handlePFCount(args []string) string {
	if len(args) < 1 {
		return "-ERR PFCOUNT needs at least one key"
	}
	v, err := n.Count(args...)
	if err != nil {
		return "-ERR " + err.Error()
	}
	return fmt.Sprintf(":%d", int64(v+0.5))
}

func (n *Node) handlePFMerge(args []string) string {
	if len(args) < 2 {
		return "-ERR PFMERGE needs a destination and at least one source"
	}
	if err := n.MergeKeys(args[0], args[1:]...); err != nil {
		return "-ERR " + err.Error()
	}
	return "+OK"
}

func (n *Node) handleDel(args []string) string {
	if len(args) != 1 {
		return "-ERR DEL needs exactly one key"
	}
	existed, err := n.Del(args[0])
	if err != nil {
		return "-ERR " + err.Error()
	}
	if existed {
		return ":1"
	}
	return ":0"
}

func (n *Node) handleKeys(args []string) string {
	keys, err := n.AllKeys()
	if err != nil {
		return "-ERR " + err.Error()
	}
	return "+" + strings.Join(keys, " ")
}

func (n *Node) handleCluster(args []string) string {
	if len(args) == 0 {
		return "-ERR CLUSTER needs a subcommand"
	}
	sub := strings.ToUpper(args[0])
	rest := args[1:]
	switch sub {
	case "INFO":
		m := n.currentMap()
		return fmt.Sprintf("+id=%s addr=%s v=%d replicas=%d nodes=%d keys=%d",
			n.id, n.Addr(), m.Version, m.Replicas, m.Len(), n.store.Len())
	case "MAP":
		return "+" + n.currentMap().Encode()
	case "JOIN":
		if len(rest) != 2 {
			return "-ERR CLUSTER JOIN needs an ID and an address"
		}
		return n.handleJoin(rest[0], rest[1])
	case "LEAVE":
		if len(rest) != 1 {
			return "-ERR CLUSTER LEAVE needs a node ID"
		}
		return n.handleLeave(rest[0])
	case "SETMAP":
		m, err := DecodeMap(rest)
		if err != nil {
			return "-ERR " + err.Error()
		}
		if n.swapMap(m) {
			if err := n.rebalance(m); err != nil {
				return "-ERR rebalance: " + err.Error()
			}
		}
		return "+OK"
	case "LPFADD":
		if len(rest) < 2 {
			return "-ERR CLUSTER LPFADD needs a key and at least one element"
		}
		if n.store.Add(rest[0], rest[1:]...) {
			return ":1"
		}
		return ":0"
	case "LDEL":
		if len(rest) != 1 {
			return "-ERR CLUSTER LDEL needs exactly one key"
		}
		if n.store.Delete(rest[0]) {
			return ":1"
		}
		return ":0"
	case "LKEYS":
		return "+" + strings.Join(n.store.Keys(), " ")
	case "ABSORB":
		if len(rest) != 2 {
			return "-ERR CLUSTER ABSORB needs a key and a base64 payload"
		}
		blob, err := base64.StdEncoding.DecodeString(rest[1])
		if err != nil {
			return "-ERR bad base64: " + err.Error()
		}
		if err := n.store.MergeBlob(rest[0], blob); err != nil {
			return "-ERR " + err.Error()
		}
		return "+OK"
	default:
		return "-ERR unknown CLUSTER subcommand " + sub
	}
}

func (n *Node) handleJoin(id, addr string) string {
	if !validID(id) {
		return fmt.Sprintf("-ERR invalid node ID %q", id)
	}
	if strings.ContainsAny(addr, " \t\r\n=") || addr == "" {
		return fmt.Sprintf("-ERR invalid node address %q", addr)
	}
	m := n.currentMap()
	if m.Addr(id) == addr {
		return fmt.Sprintf("+OK v=%d", m.Version) // idempotent re-join
	}
	newMap := m.withNode(id, addr)
	n.swapMap(newMap)
	if err := n.broadcast(newMap, nil); err != nil {
		return "-ERR broadcast: " + err.Error()
	}
	if err := n.rebalance(newMap); err != nil {
		return "-ERR rebalance: " + err.Error()
	}
	return fmt.Sprintf("+OK v=%d", newMap.Version)
}

func (n *Node) handleLeave(id string) string {
	m := n.currentMap()
	if !m.Has(id) {
		return fmt.Sprintf("+OK v=%d", m.Version) // idempotent re-leave
	}
	oldAddr := m.Addr(id)
	newMap := m.withoutNode(id)
	n.swapMap(newMap)
	// Tell the departing node first (best-effort: it may be dead) so a
	// live leaver drains its keys to the remaining owners.
	if err := n.broadcast(newMap, []string{oldAddr}); err != nil {
		return "-ERR broadcast: " + err.Error()
	}
	if err := n.rebalance(newMap); err != nil {
		return "-ERR rebalance: " + err.Error()
	}
	return fmt.Sprintf("+OK v=%d", newMap.Version)
}
