package cluster

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"exaloglog/server"
)

// TestMLPFAddWire drives the batched internal add verb over the wire:
// counted framing, per-group changed bits, and strict framing errors.
func TestMLPFAddWire(t *testing.T) {
	nodes := startCluster(t, 1, 1)
	c, err := server.Dial(nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	reply, err := c.Do("CLUSTER", "MLPFADD", "2", "k1", "2", "a", "b", "k2", "1", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != 2 || strings.Trim(reply, "01") != "" {
		t.Fatalf("MLPFADD reply %q, want two changed-bits", reply)
	}
	n1, err := nodes[0].Count("k1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n1-2) > 0.5 {
		t.Errorf("k1 count = %f, want ≈2", n1)
	}
	n2, err := nodes[0].Count("k2")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n2-1) > 0.5 {
		t.Errorf("k2 count = %f, want ≈1", n2)
	}
	// Re-sending the identical batch changes nothing: all bits 0.
	reply, err = c.Do("CLUSTER", "MLPFADD", "2", "k1", "2", "a", "b", "k2", "1", "c")
	if err != nil {
		t.Fatal(err)
	}
	if reply != "00" {
		t.Errorf("idempotent re-send reply %q, want 00", reply)
	}

	for _, bad := range [][]string{
		{"CLUSTER", "MLPFADD"},                              // no group count
		{"CLUSTER", "MLPFADD", "x"},                         // bad group count
		{"CLUSTER", "MLPFADD", "0"},                         // zero groups
		{"CLUSTER", "MLPFADD", "9000000000000000000"},       // absurd count: must not allocate by it
		{"CLUSTER", "MLPFADD", "3", "k", "1", "a"},          // count beyond what tokens can satisfy
		{"CLUSTER", "MLPFADD", "1", "k"},                    // missing element count
		{"CLUSTER", "MLPFADD", "1", "k", "2", "a"},          // truncated elements
		{"CLUSTER", "MLPFADD", "1", "k", "q", "a"},          // bad element count
		{"CLUSTER", "MLPFADD", "1", "k", "1", "a", "extra"}, // trailing tokens
	} {
		if _, err := c.Do(bad...); err == nil {
			t.Errorf("malformed %v accepted", bad)
		}
	}
	// The malformed lines must not have taken the server down.
	if _, err := c.Do("PING"); err != nil {
		t.Fatalf("server unusable after malformed MLPFADD: %v", err)
	}
}

// TestAddNoElements: a zero-element Add is rejected up front — queued
// into a batch it would fail every unrelated coalesced write.
func TestAddNoElements(t *testing.T) {
	nodes := startCluster(t, 2, 2)
	if _, err := nodes[0].Add("key"); err == nil {
		t.Fatal("Add with no elements succeeded")
	}
	if _, err := nodes[0].Add("key", "el"); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedAddConvergence fires many concurrent Adds through one
// coordinator — exercising the per-peer MLPFADD batcher — and checks
// that every replica of every key converges to the same sketch state,
// observable as identical counts through every node.
func TestBatchedAddConvergence(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	const (
		workers = 8
		perW    = 300
		keys    = 7
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("conv-%d", i%keys)
				if _, err := nodes[0].Add(key, fmt.Sprintf("w%d-e%d", w, i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Per-key counts must agree exactly across nodes (replicas are
	// byte-identical, and Count unions all owner copies).
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("conv-%d", k)
		ref, err := nodes[0].Count(key)
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range nodes[1:] {
			got, err := n.Count(key)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Errorf("key %s: node %d count %f != node 0 count %f", key, i+1, got, ref)
			}
		}
	}
	// The union across all keys ≈ every element inserted.
	all := make([]string, keys)
	for k := range all {
		all[k] = fmt.Sprintf("conv-%d", k)
	}
	total, err := nodes[2].Count(all...)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(workers * perW)
	if rel := math.Abs(total-want) / want; rel > 0.10 {
		t.Errorf("union count = %.0f, want ≈%.0f", total, want)
	}
}
