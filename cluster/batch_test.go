package cluster

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"exaloglog/server"
)

// TestMLPFAddWire drives the batched internal add verb over the wire:
// counted framing, per-group changed bits, and strict framing errors.
func TestMLPFAddWire(t *testing.T) {
	nodes := startCluster(t, 1, 1)
	c, err := server.Dial(nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	reply, err := c.Do("CLUSTER", "MLPFADD", "2", "k1", "2", "a", "b", "k2", "1", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != 2 || strings.Trim(reply, "01") != "" {
		t.Fatalf("MLPFADD reply %q, want two changed-bits", reply)
	}
	n1, err := nodes[0].Count("k1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n1-2) > 0.5 {
		t.Errorf("k1 count = %f, want ≈2", n1)
	}
	n2, err := nodes[0].Count("k2")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n2-1) > 0.5 {
		t.Errorf("k2 count = %f, want ≈1", n2)
	}
	// Re-sending the identical batch changes nothing: all bits 0.
	reply, err = c.Do("CLUSTER", "MLPFADD", "2", "k1", "2", "a", "b", "k2", "1", "c")
	if err != nil {
		t.Fatal(err)
	}
	if reply != "00" {
		t.Errorf("idempotent re-send reply %q, want 00", reply)
	}

	for _, bad := range [][]string{
		{"CLUSTER", "MLPFADD"},                              // no group count
		{"CLUSTER", "MLPFADD", "x"},                         // bad group count
		{"CLUSTER", "MLPFADD", "0"},                         // zero groups
		{"CLUSTER", "MLPFADD", "9000000000000000000"},       // absurd count: must not allocate by it
		{"CLUSTER", "MLPFADD", "3", "k", "1", "a"},          // count beyond what tokens can satisfy
		{"CLUSTER", "MLPFADD", "1", "k"},                    // missing element count
		{"CLUSTER", "MLPFADD", "1", "k", "2", "a"},          // truncated elements
		{"CLUSTER", "MLPFADD", "1", "k", "q", "a"},          // bad element count
		{"CLUSTER", "MLPFADD", "1", "k", "1", "a", "extra"}, // trailing tokens
	} {
		if _, err := c.Do(bad...); err == nil {
			t.Errorf("malformed %v accepted", bad)
		}
	}
	// The malformed lines must not have taken the server down.
	if _, err := c.Do("PING"); err != nil {
		t.Fatalf("server unusable after malformed MLPFADD: %v", err)
	}
}

// TestMLAddWire drives the mixed group-commit verb over the wire: plain
// ("p") and windowed ("w") groups interleave in one batch, the reply
// carries one token per group in order, a WRONGTYPE group answers 'E'
// without poisoning its neighbors, and framing corruption is -ERR.
func TestMLAddWire(t *testing.T) {
	nodes := startCluster(t, 1, 1)
	c, err := server.Dial(nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	reply, err := c.Do("CLUSTER", "MLADD", "3",
		"p", "pk", "2", "a", "b",
		"w", "wk", "1700000000000", "2", "x", "y",
		"p", "pk", "1", "c")
	if err != nil {
		t.Fatal(err)
	}
	if toks := strings.Fields(reply); len(toks) != 3 || toks[0] != "1" || toks[1] != "2" || toks[2] != "1" {
		t.Fatalf("MLADD reply %q, want tokens [1 2 1]", reply)
	}
	if n, err := nodes[0].Count("pk"); err != nil || math.Abs(n-3) > 0.5 {
		t.Errorf("pk count = %f, %v; want ≈3", n, err)
	}
	// Idempotent re-send: plain bit 0, windowed re-accepts (window
	// semantics count accepted inserts, not changed state).
	reply, err = c.Do("CLUSTER", "MLADD", "1", "p", "pk", "2", "a", "b")
	if err != nil || reply != "0" {
		t.Fatalf("idempotent plain re-send reply %q, %v; want 0", reply, err)
	}

	// A windowed group aimed at the plain key (and vice versa) answers
	// 'E' in place; the unrelated groups in the batch still land.
	reply, err = c.Do("CLUSTER", "MLADD", "3",
		"w", "pk", "1700000000000", "1", "z",
		"p", "iso", "1", "q",
		"p", "wk", "1", "z")
	if err != nil {
		t.Fatal(err)
	}
	if toks := strings.Fields(reply); len(toks) != 3 || toks[0] != "E" || toks[1] != "1" || toks[2] != "E" {
		t.Fatalf("wrong-type isolation reply %q, want tokens [E 1 E]", reply)
	}
	if n, err := nodes[0].Count("iso"); err != nil || n < 0.5 {
		t.Errorf("group coalesced next to a WRONGTYPE neighbor was lost (count %f, %v)", n, err)
	}

	for _, bad := range [][]string{
		{"CLUSTER", "MLADD"},                                             // no group count
		{"CLUSTER", "MLADD", "x"},                                        // bad group count
		{"CLUSTER", "MLADD", "0"},                                        // zero groups
		{"CLUSTER", "MLADD", "9000000000000000000"},                      // absurd count: must not allocate by it
		{"CLUSTER", "MLADD", "2", "p", "k", "1", "a"},                    // count beyond what tokens can satisfy
		{"CLUSTER", "MLADD", "1", "q", "k", "1", "a"},                    // unknown group type
		{"CLUSTER", "MLADD", "1", "p", "k"},                              // missing element count
		{"CLUSTER", "MLADD", "1", "p", "k", "2", "a"},                    // truncated elements
		{"CLUSTER", "MLADD", "1", "p", "k", "q", "a"},                    // bad element count
		{"CLUSTER", "MLADD", "1", "w", "k", "nope", "1", "a"},            // bad timestamp
		{"CLUSTER", "MLADD", "1", "w", "k", "1700000000000", "2", "a"},   // truncated windowed elements
		{"CLUSTER", "MLADD", "1", "p", "k", "1", "a", "extra", "extra2"}, // trailing tokens
	} {
		if _, err := c.Do(bad...); err == nil {
			t.Errorf("malformed %v accepted", bad)
		}
	}
	if _, err := c.Do("PING"); err != nil {
		t.Fatalf("server unusable after malformed MLADD: %v", err)
	}
}

// TestAddNoElements: a zero-element Add is rejected up front — queued
// into a batch it would fail every unrelated coalesced write.
func TestAddNoElements(t *testing.T) {
	nodes := startCluster(t, 2, 2)
	if _, err := nodes[0].Add("key"); err == nil {
		t.Fatal("Add with no elements succeeded")
	}
	if _, err := nodes[0].Add("key", "el"); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedAddConvergence fires many concurrent Adds through one
// coordinator — exercising the per-peer MLPFADD batcher — and checks
// that every replica of every key converges to the same sketch state,
// observable as identical counts through every node.
func TestBatchedAddConvergence(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	const (
		workers = 8
		perW    = 300
		keys    = 7
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("conv-%d", i%keys)
				if _, err := nodes[0].Add(key, fmt.Sprintf("w%d-e%d", w, i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Per-key counts must agree exactly across nodes (replicas are
	// byte-identical, and Count unions all owner copies).
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("conv-%d", k)
		ref, err := nodes[0].Count(key)
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range nodes[1:] {
			got, err := n.Count(key)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Errorf("key %s: node %d count %f != node 0 count %f", key, i+1, got, ref)
			}
		}
	}
	// The union across all keys ≈ every element inserted.
	all := make([]string, keys)
	for k := range all {
		all[k] = fmt.Sprintf("conv-%d", k)
	}
	total, err := nodes[2].Count(all...)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(workers * perW)
	if rel := math.Abs(total-want) / want; rel > 0.10 {
		t.Errorf("union count = %.0f, want ≈%.0f", total, want)
	}
}

// TestMixedBatchedAddConvergence fires concurrent plain Adds AND
// windowed WindowAdds through one coordinator: both kinds coalesce into
// the same per-peer MLADD batches (no second serialized batch stream),
// every write lands exactly once, and both plain counts and window
// estimates agree across all replicas.
func TestMixedBatchedAddConvergence(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	const (
		workers = 8
		perW    = 200
		baseTS  = int64(1_700_000_000_000)
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				el := fmt.Sprintf("w%d-e%d", w, i)
				if w%2 == 0 {
					if _, err := nodes[0].Add("mixed-plain", el); err != nil {
						errs <- err
						return
					}
				} else {
					if _, err := nodes[0].WindowAdd("mixed-win", baseTS+int64(i), el); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	refPlain, err := nodes[0].Count("mixed-plain")
	if err != nil {
		t.Fatal(err)
	}
	refWin, err := nodes[0].WindowCount("mixed-win", time.Minute, baseTS+perW)
	if err != nil {
		t.Fatal(err)
	}
	if refPlain < 0.9*float64(workers/2*perW) {
		t.Errorf("plain count %f lost writes (want ≈%d)", refPlain, workers/2*perW)
	}
	if refWin < 0.9*float64(workers/2*perW) {
		t.Errorf("window estimate %f lost writes (want ≈%d)", refWin, workers/2*perW)
	}
	for i, n := range nodes[1:] {
		if got, err := n.Count("mixed-plain"); err != nil || got != refPlain {
			t.Errorf("node %d plain count %f, %v != %f", i+1, got, err, refPlain)
		}
		if got, err := n.WindowCount("mixed-win", time.Minute, baseTS+perW); err != nil || got != refWin {
			t.Errorf("node %d window estimate %f, %v != %f", i+1, got, err, refWin)
		}
	}
	// The coalescing actually happened through the shared MLADD batcher:
	// far fewer flushes than groups.
	var groups, batches uint64
	for _, n := range nodes {
		s := n.StatsCounters()
		groups += s.MLPFAddGroups
		batches += s.MLPFAddBatches
	}
	if groups == 0 || batches == 0 {
		t.Fatal("mixed load never exercised the group-commit batcher")
	}
	t.Logf("mixed batcher coalesced %d groups into %d MLADD flushes", groups, batches)
	if batches >= groups {
		t.Errorf("no coalescing: %d batches for %d groups", batches, groups)
	}
}
