package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnersDistinctAndDeterministic(t *testing.T) {
	r := newRing([]string{"a", "b", "c", "d"})
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.ownersOf(key, 3)
		if len(owners) != 3 {
			t.Fatalf("ownersOf(%q,3) = %v", key, owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner %q for %q", o, key)
			}
			seen[o] = true
		}
		again := r.ownersOf(key, 3)
		for j := range owners {
			if owners[j] != again[j] {
				t.Fatalf("ownersOf(%q) not deterministic: %v vs %v", key, owners, again)
			}
		}
	}
}

func TestRingFewerNodesThanReplicas(t *testing.T) {
	r := newRing([]string{"solo"})
	owners := r.ownersOf("k", 3)
	if len(owners) != 1 || owners[0] != "solo" {
		t.Fatalf("ownersOf = %v, want [solo]", owners)
	}
	if got := newRing(nil).ownersOf("k", 2); got != nil {
		t.Fatalf("empty ring ownersOf = %v, want nil", got)
	}
}

func TestRingBalance(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e"}
	r := newRing(ids)
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.ownersOf(fmt.Sprintf("key-%d", i), 1)[0]]++
	}
	fair := keys / len(ids)
	for _, id := range ids {
		if c := counts[id]; c < fair/2 || c > fair*2 {
			t.Errorf("node %s owns %d of %d keys (fair share %d): ring too skewed", id, c, keys, fair)
		}
	}
}

// TestRingStability: adding one node moves only the keys it now owns —
// keys staying put is the point of consistent hashing.
func TestRingStability(t *testing.T) {
	before := newRing([]string{"a", "b", "c"})
	after := newRing([]string{"a", "b", "c", "d"})
	const keys = 10000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		b := before.ownersOf(key, 1)[0]
		a := after.ownersOf(key, 1)[0]
		if b != a {
			if a != "d" {
				t.Fatalf("key %q moved %s → %s, not to the new node", key, b, a)
			}
			moved++
		}
	}
	// ~1/4 of keys should move to the new node; far more means poor stability.
	if moved > keys/2 {
		t.Errorf("%d of %d keys moved on join, want ≈ %d", moved, keys, keys/4)
	}
}

func TestMapEncodeDecodeRoundTrip(t *testing.T) {
	m := NewMap(2, Member{"n1", "127.0.0.1:7700"}, Member{"n2", "127.0.0.1:7701"})
	m2 := m.withNode("n3", "127.0.0.1:7702", 2, "n1")
	dec, err := DecodeMap([]string{"v2", "2", "2", "n1", "2",
		"n1=127.0.0.1:7700", "n2=127.0.0.1:7701", "n3=127.0.0.1:7702"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Encode() != m2.Encode() {
		t.Errorf("round trip mismatch:\n got %q\nwant %q", dec.Encode(), m2.Encode())
	}
	if dec.Epoch != 2 || dec.Version != 2 || dec.Coordinator != "n1" || dec.Replicas != 2 || dec.Len() != 3 {
		t.Errorf("decoded map %+v", dec)
	}
	// Owners agree between the original and the decoded map.
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		a, b := m2.Owners(key), dec.Owners(key)
		if len(a) != len(b) {
			t.Fatalf("owners differ for %q: %v vs %v", key, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("owners differ for %q: %v vs %v", key, a, b)
			}
		}
	}
}

func TestDecodeMapErrors(t *testing.T) {
	for _, tokens := range [][]string{
		nil,
		{"v2"},
		{"v2", "1", "1", "-"},
		{"1", "2", "n1=a:1"},                 // pre-epoch (v1) payload: rejected, not misparsed
		{"v1", "1", "1", "-", "2", "n1=a:1"}, // unknown tag
		{"v2", "x", "1", "-", "2", "n1=a:1"},
		{"v2", "1", "x", "-", "2", "n1=a:1"},
		{"v2", "1", "1", "co=ord", "2", "n1=a:1"},
		{"v2", "1", "1", "-", "0", "n1=a:1"},
		{"v2", "1", "1", "-", "-3", "n1=a:1"},
		{"v2", "99", "2", "-", "2"}, // no members: installing would orphan every key
		{"v2", "1", "2", "-", "2", "noequals"},
		{"v2", "1", "2", "-", "2", "=addr"},
		{"v2", "1", "2", "-", "2", "id="},
		{"v2", "1", "2", "-", "2", "id=a=b"},
		{"v2", "1", "2", "-", "2", "id=a:1", "id=a:2"}, // duplicate member
	} {
		if _, err := DecodeMap(tokens); err == nil {
			t.Errorf("DecodeMap(%v) succeeded, want error", tokens)
		}
	}
}
