package cluster

// Tests for the compressed transfer path (ELX3): the headline
// wire-bytes reduction on a 2000-key rebalance, the negotiate-down
// handshake against a pre-ELX3 receiver (zero data loss, zero per-key
// fallbacks), the per-frame compression skip for incompressible blobs,
// and the pooled frame-line scratch buffers' zero-alloc guarantee.

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"exaloglog/server"
)

// TestTransferCompressionReducesWireBytes: rebalancing 2000 sparse
// sketches onto a joining node must put at least 2× fewer payload
// bytes on the wire than the uncompressed framing would — the PR's
// acceptance fixture. (In practice near-empty sketches compress ~100×;
// 2× is the floor the counters must prove.)
func TestTransferCompressionReducesWireBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("2k-key compression fixture skipped in -short")
	}
	const total = 2000
	h := newHarnessCfg(t, 1, 2, &TransferConfig{MinStreamKeys: 1})
	keyName := func(k int) string { return fmt.Sprintf("zc-%d", k) }
	for k := 0; k < total; k++ {
		if _, err := h.node("n1").Add(keyName(k), "x"); err != nil {
			t.Fatal(err)
		}
	}
	h.start("n2", "127.0.0.1:0")

	sawZ := false
	var mu sync.Mutex
	h.setIntercept(func(id, addr string, parts []string) error {
		if len(parts) == 6 && parts[2] == "FRAME" && parts[5] == frameMagicZ {
			mu.Lock()
			sawZ = true
			mu.Unlock()
		}
		return nil
	})
	defer h.setIntercept(nil)

	if err := h.node("n2").Join(h.addr("n1")); err != nil {
		t.Fatal(err)
	}

	stats := sumTransferStats(h.running())
	if stats.BytesWire == 0 || stats.BytesPrecompress == 0 {
		t.Fatalf("compression counters never moved: pre=%d wire=%d", stats.BytesPrecompress, stats.BytesWire)
	}
	if stats.BytesPrecompress < 2*stats.BytesWire {
		t.Errorf("wire bytes %d vs %d precompress — less than the required 2× reduction",
			stats.BytesWire, stats.BytesPrecompress)
	}
	// The bytes-on-wire row CI's smoke step surfaces in its log.
	t.Logf("wire bytes: precompress=%d wire=%d ratio=%.1fx (%d keys)",
		stats.BytesPrecompress, stats.BytesWire,
		float64(stats.BytesPrecompress)/float64(stats.BytesWire), total)
	mu.Lock()
	z := sawZ
	mu.Unlock()
	if !z {
		t.Error("no ELX3 frame ever hit the wire — compression was never negotiated")
	}
	if stats.FallbackKeys != 0 {
		t.Errorf("%d keys degraded to per-key ABSORB", stats.FallbackKeys)
	}
	// Compression lost nothing: the joiner replicates every key.
	if got := h.node("n2").Store().Len(); got != total {
		t.Fatalf("joiner holds %d keys, want %d", got, total)
	}
	for k := 0; k < total; k += 83 {
		if got := mustCount(t, h.node("n2"), keyName(k)); int64(got+0.5) != 1 {
			t.Errorf("count %s = %v after compressed transfer, want ≈1", keyName(k), got)
		}
	}
}

// TestTransferNegotiatesDownToLegacyReceiver: a receiver running a
// pre-ELX3 build rejects the BEGIN handshake's c=1 token by arity
// (simulated by legacy mode, which mirrors the old parser exactly).
// The sender must fall back to uncompressed ELX2 frames on the SAME
// stream budget — no per-key fallback, no lost keys.
func TestTransferNegotiatesDownToLegacyReceiver(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-version negotiation harness skipped in -short")
	}
	const total = 600
	h := newHarnessCfg(t, 1, 2, &TransferConfig{MinStreamKeys: 1})
	keyName := func(k int) string { return fmt.Sprintf("lg-%d", k) }
	for k := 0; k < total; k++ {
		if _, err := h.node("n1").Add(keyName(k), "x", "y"); err != nil {
			t.Fatal(err)
		}
	}
	legacy := h.start("n2", "127.0.0.1:0")
	legacy.xfer.legacy.Store(true)

	var mu sync.Mutex
	var beginsWithC, beginsPlain int
	var badFrames []string
	h.setIntercept(func(id, addr string, parts []string) error {
		if len(parts) < 3 || parts[0] != "CLUSTER" || !strings.EqualFold(parts[1], "XFER") {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		switch parts[2] {
		case "BEGIN":
			if parts[len(parts)-1] == "c=1" {
				beginsWithC++
			} else {
				beginsPlain++
			}
		case "FRAME":
			// Every frame reaching a legacy receiver must be ELX2 — an
			// ELX3 frame would be data loss waiting to happen.
			if len(parts) == 6 && parts[5] != frameMagic {
				badFrames = append(badFrames, parts[5])
			}
		}
		return nil
	})
	defer h.setIntercept(nil)

	if err := legacy.Join(h.addr("n1")); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	withC, plain, bad := beginsWithC, beginsPlain, append([]string(nil), badFrames...)
	mu.Unlock()
	if withC == 0 {
		t.Error("sender never attempted the c=1 handshake")
	}
	if plain == 0 {
		t.Error("sender never negotiated down to an uncompressed stream")
	}
	if len(bad) != 0 {
		t.Errorf("%d non-ELX2 frames sent to a legacy receiver (magics %v)", len(bad), bad)
	}

	stats := sumTransferStats(h.running())
	if stats.FallbackKeys != 0 {
		t.Errorf("%d keys degraded to per-key ABSORB — negotiation must not burn the retry budget", stats.FallbackKeys)
	}
	if got := legacy.Store().Len(); got != total {
		t.Fatalf("legacy receiver holds %d keys, want %d", got, total)
	}
	for k := 0; k < total; k += 67 {
		if got := mustCount(t, legacy, keyName(k)); int64(got+0.5) != 2 {
			t.Errorf("count %s = %v on the legacy receiver, want ≈2", keyName(k), got)
		}
	}
}

// TestEncodeFrameCompressedSkipsIncompressible: blobs the codec cannot
// shrink (random bytes) must ship as a plain ELX2 frame — paying the
// ELX3 magic and per-blob container overhead for a <5% saving is a
// loss, and the receiver handles either magic transparently.
func TestEncodeFrameCompressedSkipsIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	items := make([]server.KeyBlob, 8)
	for i := range items {
		blob := make([]byte, 4096)
		rng.Read(blob)
		items[i] = server.KeyBlob{Key: fmt.Sprintf("rnd-%d", i), Blob: blob}
	}
	buf, pre := encodeFrameCompressed(items)
	if pre != frameSizeRaw(items) {
		t.Errorf("precompress size %d, want %d", pre, frameSizeRaw(items))
	}
	if !bytes.HasPrefix(buf, []byte(frameMagic)) {
		t.Errorf("incompressible frame carries magic %q, want %q", buf[:4], frameMagic)
	}
	// Sparse sketches DO flip the frame to ELX3, and it round-trips.
	sparse := make([]server.KeyBlob, 8)
	st, err := server.NewStore(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range sparse {
		key := fmt.Sprintf("sp-%d", i)
		if _, err := st.Add(key, fmt.Sprintf("el-%d", i)); err != nil {
			t.Fatal(err)
		}
		blob, _ := st.Dump(key)
		sparse[i] = server.KeyBlob{Key: key, Blob: blob, Deadline: int64(i) * 1000}
	}
	zbuf, zpre := encodeFrameCompressed(sparse)
	if !bytes.HasPrefix(zbuf, []byte(frameMagicZ)) {
		t.Fatalf("sparse frame carries magic %q, want %q", zbuf[:4], frameMagicZ)
	}
	if len(zbuf) >= zpre {
		t.Errorf("compressed frame is %d bytes for %d raw — no reduction", len(zbuf), zpre)
	}
	got, err := decodeFrame(zbuf)
	if err != nil {
		t.Fatalf("decode of a compressed frame: %v", err)
	}
	if len(got) != len(sparse) {
		t.Fatalf("decoded %d records, want %d", len(got), len(sparse))
	}
	for i := range sparse {
		if got[i].Key != sparse[i].Key || got[i].Deadline != sparse[i].Deadline ||
			!bytes.Equal(got[i].Blob, sparse[i].Blob) {
			t.Errorf("record %d did not round-trip through ELX3", i)
		}
	}
}

// TestFrameLineScratchZeroAlloc: assembling a frame line into a warmed
// pooled scratch buffer must not allocate — the sender's steady state
// re-uses one buffer per stream, whatever the frame count.
func TestFrameLineScratchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is not meaningful under the race detector")
	}
	items := []server.KeyBlob{
		{Key: "k1", Blob: bytes.Repeat([]byte{3}, 1500)},
		{Key: "k2", Blob: bytes.Repeat([]byte{9}, 900), Deadline: 12345},
	}
	raw := encodeFrame(items)
	bufp := lineScratch.Get().(*[]byte)
	defer lineScratch.Put(bufp)
	*bufp = appendFrameLine((*bufp)[:0], "sid-warmup", 1, raw) // size the buffer once
	seq := uint64(2)
	avg := testing.AllocsPerRun(200, func() {
		*bufp = appendFrameLine((*bufp)[:0], "sid-warmup", seq, raw)
		seq++
	})
	if avg != 0 {
		t.Errorf("appendFrameLine allocates %.2f per frame with a warmed scratch buffer, want 0", avg)
	}
	// The assembled line is still correct after the pooling dance.
	want := "CLUSTER XFER FRAME sid-warmup " +
		fmt.Sprint(seq-1) + " " + base64.StdEncoding.EncodeToString(raw)
	if got := string(*bufp); got != want {
		t.Errorf("pooled frame line diverged from the reference encoding:\n got %q\nwant %q", got[:60], want[:60])
	}
}
