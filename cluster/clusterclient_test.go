package cluster

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exaloglog/internal/core"
	"exaloglog/server"
)

// findKeyWhere returns a deterministic key whose owner-ID set under m
// satisfies pred. The consistent-hash ring is a pure function of the
// member IDs, so the search (and thus the whole test) is reproducible.
func findKeyWhere(t *testing.T, m *Map, pred func(ids []string) bool) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if pred(m.ownerIDs(k)) {
			return k
		}
	}
	t.Fatal("no key with the wanted ownership found")
	return ""
}

// TestPoolClassifiesByTransport is the satellite-1 regression: any
// parsed reply line — success, a novel -ERR, a -MOVED redirect, a
// missing key — keeps the pooled connection and counts as liveness
// evidence; only transport failures drop it. Before the fix, an
// unrecognized error reply tore down a healthy connection AND withheld
// the alive() signal, feeding spurious suspicion into the failure
// detector about a peer that had just answered.
func TestPoolClassifiesByTransport(t *testing.T) {
	store, err := server.NewStore(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewServer(store)
	srv.Handle("WEIRD", func(args []string) string { return "-ERR totally novel failure" })
	srv.Handle("BOUNCE", func(args []string) string { return "-MOVED e=9 nX=127.0.0.1:1" })
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	p := newPool()
	defer p.closeAll()
	var alive atomic.Int64
	p.alive = func(string) { alive.Add(1) }

	if _, err := p.do(addr, "PING"); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	first := p.conns[addr]
	p.mu.Unlock()

	if _, err := p.do(addr, "WEIRD"); err == nil || !server.IsReplyErr(err) {
		t.Fatalf("WEIRD: err = %v, want a reply-classified error", err)
	}
	if _, err := p.do(addr, "BOUNCE"); err == nil {
		t.Fatal("BOUNCE: expected an error")
	} else if _, ok := server.AsMoved(err); !ok {
		t.Fatalf("BOUNCE: err = %v, want MovedError", err)
	}
	if _, err := p.do(addr, "DUMP", "missing"); !errors.Is(err, server.ErrNoSuchKey) || !server.IsReplyErr(err) {
		t.Fatalf("DUMP missing: err = %v, want reply-classified ErrNoSuchKey", err)
	}

	p.mu.Lock()
	cur := p.conns[addr]
	p.mu.Unlock()
	if cur != first {
		t.Error("an error reply redialed a healthy connection")
	}
	if got := alive.Load(); got != 4 {
		t.Errorf("alive fired %d times, want 4 (every parsed reply is liveness evidence)", got)
	}

	// Transport failure is the only thing that drops the connection —
	// and it must NOT claim liveness credit.
	srv.Close()
	if _, err := p.do(addr, "PING"); err == nil || server.IsReplyErr(err) {
		t.Fatalf("dead server: err = %v, want a transport-grade error", err)
	}
	p.mu.Lock()
	_, cached := p.conns[addr]
	p.mu.Unlock()
	if cached {
		t.Error("transport failure left the dead connection cached")
	}
	if got := alive.Load(); got != 4 {
		t.Errorf("alive fired %d times after transport failure, want still 4", got)
	}
}

// TestStrictRoutingMoved covers the server half of the tentpole: under
// strict routing a non-owner bounces public single-key verbs with an
// epoch-tagged -MOVED naming the primary owner, keeps serving multi-key
// scatter-gathers, and stays in coordinator mode for everything when
// strict routing is off.
func TestStrictRoutingMoved(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	m := nodes[0].Map()
	key := findKeyWhere(t, m, func(ids []string) bool { return !slices.Contains(ids, "n1") })
	owners := m.Owners(key)

	c, err := server.Dial(nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Strict routing off (the default): the non-owner forwards.
	if _, err := c.Do("PFADD", key, "x"); err != nil {
		t.Fatalf("coordinator mode must forward: %v", err)
	}

	nodes[0].SetStrictRouting(true)
	verbs := [][]string{
		{"PFADD", key, "y"},
		{"PFCOUNT", key},
		{"WADD", key, "1700000000000", "y"},
		{"WCOUNT", key, "30s"},
		{"WINFO", key},
		{"DEL", key},
	}
	for _, parts := range verbs {
		_, err := c.Do(parts...)
		mv, ok := server.AsMoved(err)
		if !ok {
			t.Fatalf("%s on a non-owner: err = %v, want MOVED", parts[0], err)
		}
		if mv.Epoch != m.Epoch || mv.NodeID != owners[0].ID || mv.Addr != owners[0].Addr {
			t.Errorf("%s redirect = %+v, want e=%d %s=%s", parts[0], mv, m.Epoch, owners[0].ID, owners[0].Addr)
		}
	}
	if got := nodes[0].StatsCounters().MovedReplies; got != uint64(len(verbs)) {
		t.Errorf("moved_replies = %d, want %d", got, len(verbs))
	}

	// Multi-key PFCOUNT has no single owner to point at: always served.
	otherKey := findKeyWhere(t, m, func(ids []string) bool { return slices.Contains(ids, "n1") })
	if _, err := c.Do("PFCOUNT", key, otherKey); err != nil {
		t.Errorf("multi-key PFCOUNT under strict routing: %v", err)
	}
	// A key this node owns is served normally.
	if _, err := c.Do("PFADD", otherKey, "z"); err != nil {
		t.Errorf("owned key under strict routing: %v", err)
	}
}

// TestInternalForwardsExemptFromStrictRouting is the satellite-3 test:
// the internal replication verbs bypass the strict check entirely, so a
// replica can never -MOVED an internal forward — the classic redirect-
// loop bug in this design — even while a rebalance is reshuffling
// ownership under strict routing cluster-wide.
func TestInternalForwardsExemptFromStrictRouting(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	for _, n := range nodes {
		n.SetStrictRouting(true)
	}
	m := nodes[0].Map()
	key := findKeyWhere(t, m, func(ids []string) bool { return !slices.Contains(ids, "n1") })

	c, err := server.Dial(nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Every internal data verb is served by the non-owner n1 where the
	// public equivalent would bounce.
	internal := [][]string{
		{"CLUSTER", "LPFADD", key, "x"},
		{"CLUSTER", "MLPFADD", "1", key, "1", "x2"},
		{"CLUSTER", "MLADD", "1", "p", key, "1", "x3"},
		{"CLUSTER", "LEXPIREAT", key, "99999999999999"},
		{"CLUSTER", "LDEADLINE", key},
		{"CLUSTER", "LPERSIST", key},
		{"CLUSTER", "LWADD", key + "-w", "1700000000000", "x"},
		{"CLUSTER", "LDEL", key + "-w"},
		{"CLUSTER", "LKEYS"},
	}
	for _, parts := range internal {
		if _, err := c.Do(parts...); err != nil {
			t.Fatalf("internal %s %s on a non-owner bounced: %v", parts[0], parts[1], err)
		}
	}

	movedSum := func() uint64 {
		var sum uint64
		for _, n := range nodes {
			sum += n.StatsCounters().MovedReplies
		}
		return sum
	}
	before := movedSum()

	// A write burst through coordinator-mode forwarding (Node.Add fans
	// MLADD out to owners) while a join-triggered rebalance pushes
	// ABSORB blobs around — all internal traffic, none of it may bounce.
	for i := 0; i < 32; i++ {
		if _, err := nodes[i%3].Add(fmt.Sprintf("burst-%d", i), "el"); err != nil {
			t.Fatal(err)
		}
	}
	n4, err := NewNode("n4", testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	n4.SetStrictRouting(true)
	if err := n4.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n4.Close() })
	if err := n4.Join(nodes[0].Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 32; i < 64; i++ {
		if _, err := nodes[i%3].Add(fmt.Sprintf("burst-%d", i), "el"); err != nil {
			t.Fatal(err)
		}
	}
	if after := movedSum() + n4.StatsCounters().MovedReplies; after != before {
		t.Errorf("internal replication traffic drew %d -MOVED replies during rebalance", after-before)
	}
}

// TestForwardRetriesOnFreshMap is the satellite-2 test: a coordinator
// forward held on the wire while its target owner crashes and a new map
// is installed must re-resolve owners against the fresh map once,
// instead of surfacing the transport error. The gate-style hook makes
// the interleaving deterministic: the Add resolves owners under the old
// map, parks before dialing the doomed owner, and only proceeds after
// the crash and the map flip.
func TestForwardRetriesOnFreshMap(t *testing.T) {
	mk := func(id string) *Node {
		t.Helper()
		n, err := NewNode(id, testConfig(), 2)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n1, n2, n3 := mk("n1"), mk("n2"), mk("n3")

	var arm atomic.Bool
	var victimAddr atomic.Value // string
	victimAddr.Store("")
	arrived := make(chan struct{}, 1)
	release := make(chan struct{})
	n1.setFaultHook(func(addr string, parts []string) error {
		if arm.Load() && addr == victimAddr.Load().(string) &&
			len(parts) >= 2 && parts[0] == "CLUSTER" && parts[1] == "MLADD" {
			arrived <- struct{}{}
			<-release
		}
		return nil
	})

	for _, n := range []*Node{n1, n2, n3} {
		if err := n.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { n1.Close(); n2.Close(); n3.Close() })
	for _, n := range []*Node{n2, n3} {
		if err := n.Join(n1.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	// A key n1 does not own: its Add forwards to both remote owners.
	m := n1.Map()
	key := findKeyWhere(t, m, func(ids []string) bool { return !slices.Contains(ids, "n1") })
	owners := m.Owners(key)
	byID := map[string]*Node{"n2": n2, "n3": n3}
	victim := byID[owners[0].ID]
	victimAddr.Store(owners[0].Addr)
	arm.Store(true)

	done := make(chan error, 1)
	go func() {
		_, err := n1.Add(key, "survivor")
		done <- err
	}()
	<-arrived // the forward resolved owners under the OLD map and is parked
	arm.Store(false)

	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	next := m.withoutNode(victim.ID(), m.Epoch+1, "n1")
	if err := n1.installAndRebalance(next); err != nil {
		t.Fatal(err)
	}
	close(release) // the parked forward now dials a dead node and must retry

	if err := <-done; err != nil {
		t.Fatalf("Add must survive an owner crash mid-forward via the fresh map: %v", err)
	}
	// The retry landed the write under the new map.
	got, err := n1.Count(key)
	if err != nil {
		t.Fatal(err)
	}
	ref := core.MustNew(testConfig())
	ref.AddString("survivor")
	if got != ref.Estimate() {
		t.Errorf("count = %v, want %v — the retried write is missing", got, ref.Estimate())
	}
}

// TestClusterClientSingleHop drives the smart client against a fresh
// map: every op lands on an owner first try — zero redirects on either
// side — and the batch API keeps results in queue order.
func TestClusterClientSingleHop(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	for _, n := range nodes {
		n.SetStrictRouting(true)
	}
	cc, err := DialCluster(nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("sh-%d", i)
		changed, err := cc.Add(k, "a", "b")
		if err != nil {
			t.Fatalf("Add %s: %v", k, err)
		}
		if !changed {
			t.Errorf("Add %s reported unchanged", k)
		}
	}
	ref := core.MustNew(testConfig())
	ref.AddString("a")
	ref.AddString("b")
	want := int64(ref.Estimate() + 0.5)
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("sh-%d", i)
		got, err := cc.Count(k)
		if err != nil {
			t.Fatalf("Count %s: %v", k, err)
		}
		if got != want {
			t.Errorf("Count %s = %d, want %d", k, got, want)
		}
	}

	// Windowed verbs route the same way.
	const ts = int64(1700000000000)
	accepted, err := cc.WAdd("sh-win", ts, "x", "y")
	if err != nil || accepted != 2 {
		t.Fatalf("WAdd = %d, %v; want 2 accepted", accepted, err)
	}
	if got, err := cc.WCount("sh-win", time.Minute); err != nil || got != 2 {
		t.Fatalf("WCount = %d, %v; want 2", got, err)
	}

	if existed, err := cc.Del("sh-0"); err != nil || !existed {
		t.Fatalf("Del = %v, %v; want existed", existed, err)
	}
	if got, err := cc.Count("sh-0"); err != nil || got != 0 {
		t.Fatalf("Count after Del = %d, %v; want 0", got, err)
	}

	// A mixed batch fans out by key but returns results in queue order.
	b := cc.Batch()
	b.PFAdd("sh-1", "c")
	b.PFCount("sh-2")
	b.WCount("sh-win", time.Minute)
	b.Del("sh-3")
	results, err := b.Exec()
	if err != nil {
		t.Fatal(err)
	}
	wantVals := []string{"1", "2", "2", "1"}
	if len(results) != len(wantVals) {
		t.Fatalf("batch returned %d results, want %d", len(results), len(wantVals))
	}
	for i, r := range results {
		if r.Err != nil || r.Value != wantVals[i] {
			t.Errorf("batch result %d = %q/%v, want %q", i, r.Value, r.Err, wantVals[i])
		}
	}

	// Fresh map: not a single redirect anywhere.
	if s := cc.Stats(); s.Moved != 0 || s.Failovers != 0 {
		t.Errorf("client stats = %+v, want zero redirects/failovers on a fresh map", s)
	}
	var movedSum uint64
	for _, n := range nodes {
		movedSum += n.StatsCounters().MovedReplies
	}
	if movedSum != 0 {
		t.Errorf("nodes sent %d -MOVED replies to a fresh-mapped client", movedSum)
	}
}

// TestClusterClientFollowsMovedAfterRebalance grows the cluster behind
// the client's back: ops on keys whose owners moved must bounce once,
// drag the map forward (epoch order), and converge — no lost writes.
func TestClusterClientFollowsMovedAfterRebalance(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	for _, n := range nodes {
		n.SetStrictRouting(true)
	}
	cc, err := DialCluster(nodes[0].Addr(), nodes[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	cc.minRefetch = time.Millisecond

	const keys = 48
	key := func(i int) string { return fmt.Sprintf("mv-%d", i) }
	ref := make(map[string]*core.Sketch, keys)
	for i := 0; i < keys; i++ {
		ref[key(i)] = core.MustNew(testConfig())
	}
	for i := 0; i < keys; i++ {
		el := fmt.Sprintf("first-%d", i)
		ref[key(i)].AddString(el)
		if _, err := cc.Add(key(i), el); err != nil {
			t.Fatal(err)
		}
	}
	oldMap := cc.Map()

	// Grow the cluster; the client's map is now one epoch behind.
	n4, err := NewNode("n4", testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	n4.SetStrictRouting(true)
	if err := n4.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n4.Close() })
	if err := n4.Join(nodes[0].Addr()); err != nil {
		t.Fatal(err)
	}
	newMap := nodes[0].Map()

	// How many keys will bounce is a pure function of the ring: those
	// whose old primary is no longer an owner at all.
	expectBounce := 0
	for i := 0; i < keys; i++ {
		oldPrimary := oldMap.ownerIDs(key(i))[0]
		if !slices.Contains(newMap.ownerIDs(key(i)), oldPrimary) {
			expectBounce++
		}
	}

	for i := 0; i < keys; i++ {
		el := fmt.Sprintf("second-%d", i)
		ref[key(i)].AddString(el)
		if _, err := cc.Add(key(i), el); err != nil {
			t.Fatalf("Add %s against a stale map: %v", key(i), err)
		}
	}

	s := cc.Stats()
	if expectBounce > 0 {
		if s.Moved == 0 {
			t.Errorf("expected redirects for %d moved keys, client followed none", expectBounce)
		}
		if s.MapRefetches == 0 {
			t.Error("a -MOVED beyond the client's epoch must trigger a map refetch")
		}
		if got := cc.Map(); !got.Newer(oldMap) {
			t.Errorf("client map did not move forward (still e=%d v=%d)", got.Epoch, got.Version)
		}
	}

	// No lost writes: every key counts exactly its reference estimate.
	for i := 0; i < keys; i++ {
		got, err := nodes[0].Count(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != ref[key(i)].Estimate() {
			t.Errorf("count %s = %v, want %v", key(i), got, ref[key(i)].Estimate())
		}
	}
}

// TestClusterClientFailsOverOnDeadOwner crashes a key's primary after
// an operator LEAVE has made the survivors' map current: the client —
// still holding the old map — must fail over on the transport error,
// refetch, and converge on the surviving replica.
func TestClusterClientFailsOverOnDeadOwner(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	for _, n := range nodes {
		n.SetStrictRouting(true)
	}
	cc, err := DialCluster(nodes[0].Addr(), nodes[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	cc.minRefetch = time.Millisecond

	// A key whose primary is n3 — the node we will crash.
	m := nodes[0].Map()
	key := findKeyWhere(t, m, func(ids []string) bool { return ids[0] == "n3" })
	if _, err := cc.Add(key, "x"); err != nil {
		t.Fatal(err)
	}

	// Crash n3, then evict it through a survivor (epoch-fenced LEAVE,
	// survivors re-replicate). The client still routes by the old map.
	nodes[2].Close()
	c, err := server.Dial(nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do("CLUSTER", "LEAVE", "n3"); err != nil {
		t.Fatal(err)
	}

	got, err := cc.Count(key)
	if err != nil {
		t.Fatalf("Count after primary crash: %v", err)
	}
	ref := core.MustNew(testConfig())
	ref.AddString("x")
	if got != int64(ref.Estimate()+0.5) {
		t.Errorf("count = %d, want %d", got, int64(ref.Estimate()+0.5))
	}
	if s := cc.Stats(); s.Failovers == 0 {
		t.Errorf("client stats = %+v, want at least one transport failover", s)
	}
	if cur := cc.Map(); slices.Contains(cur.ownerIDs(key), "n3") {
		t.Error("client map still names the evicted node as an owner")
	}
}

// TestClusterClientMidRebalanceChaos is the satellite-4 chaos test: 64
// hot keys under concurrent batched load while a join reshuffles the
// ring. Every op must converge within the redirect budget (any budget
// exhaustion is a Result error and fails the test), no write may be
// lost, and moved_replies must go quiet once the map settles.
func TestClusterClientMidRebalanceChaos(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	for _, n := range nodes {
		n.SetStrictRouting(true)
	}
	cc, err := DialCluster(nodes[0].Addr(), nodes[1].Addr(), nodes[2].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	cc.minRefetch = time.Millisecond

	const hotKeys = 64
	key := func(i int) string { return fmt.Sprintf("hot-%d", ((i%hotKeys)+hotKeys)%hotKeys) }
	var refMu sync.Mutex
	ref := make(map[string]*core.Sketch, hotKeys)
	for i := 0; i < hotKeys; i++ {
		ref[key(i)] = core.MustNew(testConfig())
	}

	const workers = 4
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b := cc.Batch()
				els := make([]string, 16)
				for j := 0; j < 16; j++ {
					els[j] = fmt.Sprintf("el-%d-%d-%d", w, i, j)
					b.PFAdd(key(w*16+i*16+j), els[j])
				}
				results, err := b.Exec()
				if err != nil {
					errCh <- err
					return
				}
				for j, r := range results {
					if r.Err != nil {
						errCh <- fmt.Errorf("op %s: %w", key(w*16+i*16+j), r.Err)
						return
					}
				}
				refMu.Lock()
				for j, el := range els {
					ref[key(w*16+i*16+j)].AddString(el)
				}
				refMu.Unlock()
			}
		}(w)
	}

	// Mid-load: a 4th node joins — epoch bump, ring reshuffle, delta
	// rebalance — while the client keeps hammering the hot keys.
	time.Sleep(10 * time.Millisecond)
	n4, err := NewNode("n4", testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	n4.SetStrictRouting(true)
	if err := n4.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n4.Close() })
	if err := n4.Join(nodes[0].Addr()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(25 * time.Millisecond) // load keeps running against the settled map
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("an op failed to converge within the redirect budget: %v", err)
	default:
	}

	all := append(append([]*Node{}, nodes...), n4)
	movedSum := func() uint64 {
		var sum uint64
		for _, n := range all {
			sum += n.StatsCounters().MovedReplies
		}
		return sum
	}

	// Force the client onto the settled map (deterministic sync: the
	// rate limiter is bypassed by rewinding its clock), then assert
	// quiescence: a full sweep over every hot key draws zero new
	// -MOVED replies anywhere.
	cc.fetchMu.Lock()
	cc.lastFetch = time.Time{}
	cc.fetchMu.Unlock()
	cc.refetchMap(cc.Map().Epoch)
	if got, want := cc.Map().Epoch, n4.Map().Epoch; got != want {
		t.Fatalf("client map epoch %d after refetch, cluster at %d", got, want)
	}
	before := movedSum()
	for i := 0; i < hotKeys; i++ {
		if _, err := cc.Count(key(i)); err != nil {
			t.Fatalf("quiet-phase Count %s: %v", key(i), err)
		}
		el := fmt.Sprintf("quiet-%d", i)
		refMu.Lock()
		ref[key(i)].AddString(el)
		refMu.Unlock()
		if _, err := cc.Add(key(i), el); err != nil {
			t.Fatalf("quiet-phase Add %s: %v", key(i), err)
		}
	}
	if after := movedSum(); after != before {
		t.Errorf("moved_replies rose %d→%d after the map settled — not quiescent", before, after)
	}

	// No lost writes: every hot key matches its reference sketch.
	for i := 0; i < hotKeys; i++ {
		got, err := nodes[0].Count(key(i))
		if err != nil {
			t.Fatal(err)
		}
		refMu.Lock()
		want := ref[key(i)].Estimate()
		refMu.Unlock()
		if got != want {
			t.Errorf("count %s = %v, want %v — writes lost in the rebalance", key(i), got, want)
		}
	}
}
