package cluster

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"strconv"
	"strings"

	"exaloglog/internal/compress"
	"exaloglog/server"
)

// Digest anti-entropy: instead of probing replicas key by key, a node
// summarizes the replicated state it shares with one peer as 128
// per-shard digests (one XOR-fold of per-key content digests each, see
// server/digest.go) and ships only the keys of shards that disagree.
// On a converged cluster a full round is one DSUM message per peer —
// O(members) messages carrying O(shards) bytes — no matter how many
// keys the cluster holds; the old path (CLUSTER REBALANCE) re-pushed
// every key every time.
//
// Wire protocol (CLUSTER subcommands on the ordinary line protocol):
//
//	CLUSTER DSUM <peerID> e=<epoch>            → =<b64 digest vector> | -STALE e=<cur>
//	CLUSTER DKEYS <peerID> e=<epoch> <shards>  → =<b64 key digests>   | -STALE e=<cur>
//
// <peerID> is the REQUESTER's node ID: the responder folds only keys
// co-owned by both nodes under its current map, which is what makes
// the vectors comparable — each side digests the same key population.
// Both sides insist on the same map epoch (-STALE otherwise), since
// comparing digests across different ownership views would ship keys
// to nodes that no longer own them. <shards> is a comma-separated list
// of shard indices whose folded digests disagreed.
//
// Repair is push-only and merge-based: each node ships the divergent
// keys IT holds over the streaming transfer channel (one batched XFER
// stream, or per-key ABSORB below the stream threshold) and trusts the
// peer's own round for the reverse direction. Merging is idempotent
// and monotone, so concurrent repairs from both sides converge exactly
// like every other data movement in the cluster.
const (
	digestVecMagic  = "ELD1"
	digestKeysMagic = "ELK1"

	// maxDigestPayload caps a decoded digest payload: generous for
	// 65536 max-length keys, far below anything allocatable by a
	// hostile length claim.
	maxDigestPayload = 1 << 24
)

// encodeDigestVector packs per-shard digests as the ELD1 payload and
// returns it base64-wrapped (codec-compressed when that wins; a vector
// from a mostly-empty store is almost all zero bytes).
func encodeDigestVector(v []uint64) string {
	buf := make([]byte, 0, len(digestVecMagic)+binary.MaxVarintLen64+8*len(v))
	buf = append(buf, digestVecMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	for _, d := range v {
		buf = binary.LittleEndian.AppendUint64(buf, d)
	}
	return base64.StdEncoding.EncodeToString(compress.EncodeBlob(buf))
}

func decodeDigestVector(body string) ([]uint64, error) {
	raw, err := base64.StdEncoding.DecodeString(body)
	if err != nil {
		return nil, fmt.Errorf("cluster: digest vector: %w", err)
	}
	buf, err := compress.DecodeBlob(raw, maxDigestPayload)
	if err != nil {
		return nil, fmt.Errorf("cluster: digest vector: %w", err)
	}
	if len(buf) < len(digestVecMagic) || string(buf[:len(digestVecMagic)]) != digestVecMagic {
		return nil, errors.New("cluster: digest vector: bad magic")
	}
	rest := buf[len(digestVecMagic):]
	count, w := binary.Uvarint(rest)
	if w <= 0 || count != uint64(server.NumShards) || uint64(len(rest[w:])) != 8*count {
		return nil, errors.New("cluster: digest vector: bad shard count")
	}
	rest = rest[w:]
	out := make([]uint64, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(rest[8*i:])
	}
	return out, nil
}

// encodeKeyDigests packs per-key digests as the ELK1 payload,
// base64-wrapped and codec-compressed when that wins.
func encodeKeyDigests(kds []server.KeyDigest) string {
	size := len(digestKeysMagic) + binary.MaxVarintLen64
	for _, kd := range kds {
		size += binary.MaxVarintLen64 + len(kd.Key) + 8
	}
	buf := make([]byte, 0, size)
	buf = append(buf, digestKeysMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(kds)))
	for _, kd := range kds {
		buf = binary.AppendUvarint(buf, uint64(len(kd.Key)))
		buf = append(buf, kd.Key...)
		buf = binary.LittleEndian.AppendUint64(buf, kd.Digest)
	}
	return base64.StdEncoding.EncodeToString(compress.EncodeBlob(buf))
}

func decodeKeyDigests(body string) (map[string]uint64, error) {
	raw, err := base64.StdEncoding.DecodeString(body)
	if err != nil {
		return nil, fmt.Errorf("cluster: key digests: %w", err)
	}
	buf, err := compress.DecodeBlob(raw, maxDigestPayload)
	if err != nil {
		return nil, fmt.Errorf("cluster: key digests: %w", err)
	}
	if len(buf) < len(digestKeysMagic) || string(buf[:len(digestKeysMagic)]) != digestKeysMagic {
		return nil, errors.New("cluster: key digests: bad magic")
	}
	rest := buf[len(digestKeysMagic):]
	count, w := binary.Uvarint(rest)
	if w <= 0 {
		return nil, errors.New("cluster: key digests: truncated count")
	}
	rest = rest[w:]
	// Every record needs at least 9 bytes (1-byte key + digest): cap the
	// claimed count by the bytes present before trusting it.
	if count > uint64(len(rest))/9 {
		return nil, fmt.Errorf("cluster: key digests: implausible count %d for %d payload bytes", count, len(rest))
	}
	out := make(map[string]uint64, int(min(count, 4096)))
	for i := uint64(0); i < count; i++ {
		klen, w := binary.Uvarint(rest)
		if w <= 0 || klen == 0 || klen > uint64(len(rest[w:])) {
			return nil, errors.New("cluster: key digests: bad key length")
		}
		rest = rest[w:]
		key := string(rest[:klen])
		rest = rest[klen:]
		if len(rest) < 8 {
			return nil, errors.New("cluster: key digests: truncated digest")
		}
		out[key] = binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("cluster: key digests: %d trailing bytes", len(rest))
	}
	return out, nil
}

// coOwnedFilter accepts the keys whose owner set under m contains both
// this node and peerID — the key population a digest exchange between
// the two summarizes.
func (n *Node) coOwnedFilter(m *Map, peerID string) func(string) bool {
	return func(key string) bool {
		ids := m.ownerIDs(key)
		return slices.Contains(ids, n.id) && slices.Contains(ids, peerID)
	}
}

// parseDigestEpoch validates the requester ID and e=<epoch> tokens
// shared by DSUM and DKEYS, and enforces the epoch fence.
func (n *Node) parseDigestEpoch(rest []string) (peerID string, m *Map, errReply string) {
	if len(rest) < 2 || !strings.HasPrefix(rest[1], "e=") {
		return "", nil, "-ERR needs a requester ID and e=<epoch>"
	}
	if !validID(rest[0]) {
		return "", nil, fmt.Sprintf("-ERR invalid requester ID %q", rest[0])
	}
	epoch, err := strconv.ParseUint(strings.TrimPrefix(rest[1], "e="), 10, 64)
	if err != nil {
		return "", nil, "-ERR bad epoch " + rest[1]
	}
	m = n.currentMap()
	// Strict both-ways fence (unlike XFER's one-sided one): digests
	// computed under different maps cover different key populations, so
	// comparing them would only manufacture phantom divergence.
	if m.Epoch != epoch {
		return "", nil, fmt.Sprintf("-STALE e=%d", m.Epoch)
	}
	return rest[0], m, ""
}

// handleDigestSum serves CLUSTER DSUM (see the file comment).
func (n *Node) handleDigestSum(rest []string) string {
	peerID, m, errReply := n.parseDigestEpoch(rest)
	if errReply != "" {
		return errReply
	}
	if len(rest) != 2 {
		return "-ERR CLUSTER DSUM needs a requester ID and e=<epoch>"
	}
	return "=" + encodeDigestVector(n.store.ShardDigests(n.coOwnedFilter(m, peerID)))
}

// handleDigestKeys serves CLUSTER DKEYS (see the file comment).
func (n *Node) handleDigestKeys(rest []string) string {
	peerID, m, errReply := n.parseDigestEpoch(rest)
	if errReply != "" {
		return errReply
	}
	if len(rest) != 3 {
		return "-ERR CLUSTER DKEYS needs a requester ID, e=<epoch> and a shard list"
	}
	filter := n.coOwnedFilter(m, peerID)
	var kds []server.KeyDigest
	for _, tok := range strings.Split(rest[2], ",") {
		shard, err := strconv.Atoi(tok)
		if err != nil || shard < 0 || shard >= server.NumShards {
			return fmt.Sprintf("-ERR bad shard index %q", tok)
		}
		kds = append(kds, n.store.ShardKeyDigests(shard, filter)...)
	}
	return "=" + encodeKeyDigests(kds)
}

// errDigestStale marks a digest round the peer refused because its map
// epoch differs; the round is skipped and retried after maps converge.
var errDigestStale = errors.New("cluster: digest sync: map epochs differ")

// digestDo issues one digest request and decodes the =<base64> reply
// body, folding -STALE refusals into errDigestStale.
func (n *Node) digestDo(addr string, args ...string) (string, error) {
	reply, err := n.peers.do(addr, args...)
	if err != nil {
		if strings.Contains(err.Error(), "STALE") {
			return "", errDigestStale
		}
		return "", err
	}
	return reply, nil
}

// DigestSync runs one digest anti-entropy round against every peer:
// exchange per-shard digest vectors, narrow disagreeing shards to
// per-key digests, and ship the divergent keys this node holds over
// the streaming transfer channel. Peers whose map epoch differs are
// skipped silently — gossip/Sync converge maps first, and the next
// round covers them. Returns the first hard error encountered.
func (n *Node) DigestSync() error {
	m := n.currentMap()
	members := m.Members()
	var errs []error
	for _, mem := range members {
		if mem.ID == n.id {
			continue
		}
		if err := n.digestSyncPeer(m, mem); err != nil && !errors.Is(err, errDigestStale) {
			errs = append(errs, fmt.Errorf("cluster: digest sync with %s: %w", mem.ID, err))
		}
	}
	return errors.Join(errs...)
}

// digestSyncPeer is one peer's round of DigestSync.
func (n *Node) digestSyncPeer(m *Map, peer Member) error {
	filter := n.coOwnedFilter(m, peer.ID)
	local := n.store.ShardDigests(filter)
	epochTok := "e=" + strconv.FormatUint(m.Epoch, 10)
	n.digestRounds.Add(1)
	body, err := n.digestDo(peer.Addr, "CLUSTER", "DSUM", n.id, epochTok)
	if err != nil {
		return err
	}
	remote, err := decodeDigestVector(body)
	if err != nil {
		return err
	}
	var diff []string
	diffIdx := make(map[int]bool)
	for i := range local {
		if local[i] != remote[i] {
			diff = append(diff, strconv.Itoa(i))
			diffIdx[i] = true
		}
	}
	if len(diff) == 0 {
		return nil // converged: the whole round cost one message
	}
	body, err = n.digestDo(peer.Addr, "CLUSTER", "DKEYS", n.id, epochTok, strings.Join(diff, ","))
	if err != nil {
		return err
	}
	theirs, err := decodeKeyDigests(body)
	if err != nil {
		return err
	}
	// Ship every key this node holds in a disagreeing shard whose digest
	// the peer lacks or contradicts. Keys only THEY hold are their
	// round's job — push-only repair keeps both sides independent.
	var items []server.KeyBlob
	for shard := range diffIdx {
		for _, kd := range n.store.ShardKeyDigests(shard, filter) {
			if theirs[kd.Key] == kd.Digest {
				continue
			}
			if tb, ok := n.store.DumpTagged(kd.Key); ok {
				items = append(items, server.KeyBlob{Key: kd.Key, Blob: tb.Blob, Deadline: tb.Deadline})
			}
		}
	}
	if len(items) == 0 {
		return nil
	}
	cfg := n.transferConfig()
	var failed map[string]error
	if len(items) >= cfg.MinStreamKeys {
		failed = n.streamTo(peer.Addr, m.Epoch, items)
	} else {
		failed = n.absorbEach(peer.Addr, items)
	}
	n.digestRepairs.Add(uint64(len(items) - len(failed)))
	if len(failed) == 0 {
		return nil
	}
	errs := make([]error, 0, len(failed))
	for key, ferr := range failed {
		if errors.Is(ferr, errXferStale) {
			return errDigestStale // map moved mid-round: next round re-plans
		}
		errs = append(errs, fmt.Errorf("repair %q: %w", key, ferr))
	}
	return errors.Join(errs...)
}

// DigestSyncStats reports the cumulative digest anti-entropy counters:
// rounds is peer-rounds attempted (DSUM exchanges initiated), repaired
// is divergent keys successfully shipped.
func (n *Node) DigestSyncStats() (rounds, repaired uint64) {
	return n.digestRounds.Load(), n.digestRepairs.Load()
}
