package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"exaloglog/internal/core"
	"exaloglog/server"
)

const testP = 10

func testConfig() core.Config { return core.RecommendedML(testP) }

// startCluster spins up n in-process nodes with the given replica
// factor; nodes[0] is the seed. Cleanup closes all of them.
func startCluster(t *testing.T, n, replicas int) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := NewNode(fmt.Sprintf("n%d", i+1), testConfig(), replicas)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		if i > 0 {
			if err := node.Join(nodes[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		nodes[i] = node
	}
	return nodes
}

// TestClusterAcceptance is the scenario from the issue: a 3-node cluster
// with replica factor 2 where (1) a key written through node A is
// countable on nodes B and C with the same estimate, (2) after a node
// leaves and rebalance completes every key's estimate is unchanged, and
// (3) a cluster-wide union PFCOUNT equals the single-node result on the
// same data.
func TestClusterAcceptance(t *testing.T) {
	nodes := startCluster(t, 3, 2)

	// Reference: one plain sketch per key fed the same elements.
	ref := map[string]*core.Sketch{
		"visits:mon": core.MustNew(testConfig()),
		"visits:tue": core.MustNew(testConfig()),
	}
	for i := 0; i < 5000; i++ {
		el := fmt.Sprintf("user-%d", i)
		ref["visits:mon"].AddString(el)
		if _, err := nodes[0].Add("visits:mon", el); err != nil {
			t.Fatal(err)
		}
	}
	for i := 2500; i < 7500; i++ { // half-overlapping second key
		el := fmt.Sprintf("user-%d", i)
		ref["visits:tue"].AddString(el)
		if _, err := nodes[1].Add("visits:tue", el); err != nil {
			t.Fatal(err)
		}
	}

	// (1) Same estimate from every node, matching the reference sketch.
	for key, rs := range ref {
		want := rs.Estimate()
		for _, n := range nodes {
			got, err := n.Count(key)
			if err != nil {
				t.Fatalf("%s: count %q: %v", n.ID(), key, err)
			}
			if got != want {
				t.Errorf("%s: count %q = %v, want %v", n.ID(), key, got, want)
			}
		}
	}

	// (3) Cluster-wide union equals the single-node union on the same data.
	refUnion, err := core.MergeCompatible(ref["visits:mon"], ref["visits:tue"])
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		got, err := n.Count("visits:mon", "visits:tue")
		if err != nil {
			t.Fatal(err)
		}
		if got != refUnion.Estimate() {
			t.Errorf("%s: union count = %v, want %v", n.ID(), got, refUnion.Estimate())
		}
	}

	// Replica factor 2 holds: every key lives on exactly two nodes.
	for key := range ref {
		copies := 0
		for _, n := range nodes {
			if _, ok := n.Store().Dump(key); ok {
				copies++
			}
		}
		if copies != 2 {
			t.Errorf("key %q has %d local copies, want 2", key, copies)
		}
	}

	// (2) A node leaves gracefully; estimates are unchanged on survivors.
	if err := nodes[2].Leave(); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes[:2] {
		if got := n.Map().Len(); got != 2 {
			t.Fatalf("%s: map has %d nodes after leave, want 2", n.ID(), got)
		}
		for key, rs := range ref {
			got, err := n.Count(key)
			if err != nil {
				t.Fatalf("%s: count %q after leave: %v", n.ID(), key, err)
			}
			if got != rs.Estimate() {
				t.Errorf("%s: count %q after leave = %v, want %v", n.ID(), key, got, rs.Estimate())
			}
		}
		got, err := n.Count("visits:mon", "visits:tue")
		if err != nil {
			t.Fatal(err)
		}
		if got != refUnion.Estimate() {
			t.Errorf("%s: union after leave = %v, want %v", n.ID(), got, refUnion.Estimate())
		}
	}
	// The leaver drained everything.
	if got := nodes[2].Store().Len(); got != 0 {
		t.Errorf("left node still holds %d sketches, want 0", got)
	}
}

// TestClusterWireProtocol drives a 3-node cluster purely over TCP with
// the stock server.Client: any node answers any command.
func TestClusterWireProtocol(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	a, err := server.Dial(nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := server.Dial(nodes[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if _, err := a.PFAdd("k", "x", "y", "z"); err != nil {
		t.Fatal(err)
	}
	got, err := b.PFCount("k")
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("PFCount via node B = %d, want 3", got)
	}

	// KEYS is cluster-wide from any node.
	keys, err := b.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "k" {
		t.Errorf("Keys = %v, want [k]", keys)
	}

	// PFMERGE replicates the union to dest's owners.
	if _, err := a.PFAdd("k2", "z", "w"); err != nil {
		t.Fatal(err)
	}
	if err := b.PFMerge("u", "k", "k2"); err != nil {
		t.Fatal(err)
	}
	got, err = a.PFCount("u")
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("PFCount(u) = %d, want 4", got)
	}

	// CLUSTER INFO and CLUSTER MAP answer on every node.
	info, err := a.Do("CLUSTER", "INFO")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info, "nodes=3") || !strings.Contains(info, "replicas=2") {
		t.Errorf("CLUSTER INFO = %q, want nodes=3 replicas=2", info)
	}
	mreply, err := b.Do("CLUSTER", "MAP")
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeMap(strings.Fields(mreply))
	if err != nil {
		t.Fatalf("decode CLUSTER MAP %q: %v", mreply, err)
	}
	if m.Len() != 3 || m.Replicas != 2 {
		t.Errorf("CLUSTER MAP = %q, want 3 nodes replicas=2", mreply)
	}

	// DEL removes the key cluster-wide.
	if existed, err := b.Del("k"); err != nil || !existed {
		t.Fatalf("Del(k) = %v, %v, want true, nil", existed, err)
	}
	got, err = a.PFCount("k")
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("PFCount(k) after DEL = %d, want 0", got)
	}
}

// TestClusterLeaveViaWire removes a node with the admin verb (as if it
// had crashed); the surviving replica re-replicates every key so the
// replica factor is restored.
func TestClusterLeaveViaWire(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	for i := 0; i < 50; i++ {
		if _, err := nodes[0].Add(fmt.Sprintf("key-%d", i), "a", "b", "c"); err != nil {
			t.Fatal(err)
		}
	}
	c, err := server.Dial(nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Do("CLUSTER", "LEAVE", nodes[2].ID())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "OK") {
		t.Fatalf("CLUSTER LEAVE reply %q", reply)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		got, err := nodes[1].Count(key)
		if err != nil {
			t.Fatal(err)
		}
		if int64(got+0.5) != 3 {
			t.Errorf("count %q after leave = %v, want ≈3", key, got)
		}
		copies := 0
		for _, n := range nodes[:2] {
			if _, ok := n.Store().Dump(key); ok {
				copies++
			}
		}
		if copies != 2 {
			t.Errorf("key %q has %d copies on survivors, want 2", key, copies)
		}
	}
}

// TestClusterSingleNode: a one-node cluster behaves like a plain server.
func TestClusterSingleNode(t *testing.T) {
	nodes := startCluster(t, 1, 2)
	n := nodes[0]
	if _, err := n.Add("k", "a", "b"); err != nil {
		t.Fatal(err)
	}
	got, err := n.Count("k")
	if err != nil {
		t.Fatal(err)
	}
	if int64(got+0.5) != 2 {
		t.Errorf("Count = %v, want ≈2", got)
	}
	if m := n.Map(); m.Len() != 1 {
		t.Errorf("map size = %d, want 1", m.Len())
	}
}

// TestJoinIsIdempotent: re-joining with the same ID and address keeps
// the map stable.
func TestJoinIsIdempotent(t *testing.T) {
	nodes := startCluster(t, 2, 2)
	v := nodes[0].Map().Version
	if err := nodes[1].Join(nodes[0].Addr()); err != nil {
		t.Fatal(err)
	}
	if got := nodes[0].Map().Version; got != v {
		t.Errorf("map version changed %d → %d on idempotent re-join", v, got)
	}
}

// TestRejoinAfterRestartLearnsMap: a node that restarts (same ID, same
// address, fresh store) and re-joins hits the seed's idempotent-join
// path, which does not re-broadcast the map — the joiner must pull it
// itself or it would answer counts from its stale self-only view.
func TestRejoinAfterRestartLearnsMap(t *testing.T) {
	nodes := startCluster(t, 2, 1)
	for i := 0; i < 20; i++ {
		if _, err := nodes[0].Add(fmt.Sprintf("key-%d", i), "a", "b"); err != nil {
			t.Fatal(err)
		}
	}
	// Pick a key owned by n1 so it survives n2's restart with replicas=1.
	var key string
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%d", i)
		if owners := nodes[0].Map().Owners(k); owners[0].ID == "n1" {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key owned by n1")
	}

	addr := nodes[1].Addr()
	if err := nodes[1].Close(); err != nil {
		t.Fatal(err)
	}
	restarted, err := NewNode("n2", testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Start(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { restarted.Close() })
	if err := restarted.Join(nodes[0].Addr()); err != nil {
		t.Fatal(err)
	}
	if got := restarted.Map().Len(); got != 2 {
		t.Fatalf("restarted node's map has %d members, want 2 (stale self-only map?)", got)
	}
	got, err := restarted.Count(key)
	if err != nil {
		t.Fatal(err)
	}
	if int64(got+0.5) != 2 {
		t.Errorf("count %q via restarted node = %v, want ≈2", key, got)
	}
}

// TestJoinWithLocalData: a node that already holds sketches (e.g.
// restored from a snapshot) joins on a fresh address. The seed answers
// JOIN only after the joiner's SETMAP rebalance — which pushes blobs
// back to the seed — completes, so this deadlocks unless Join uses a
// connection separate from the peer pool.
func TestJoinWithLocalData(t *testing.T) {
	nodes := startCluster(t, 1, 2)
	joiner, err := NewNode("n2", testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.Close() })
	joiner.Store().Add("restored", "a", "b", "c")

	done := make(chan error, 1)
	go func() { done <- joiner.Join(nodes[0].Addr()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Join deadlocked with local data present")
	}
	got, err := nodes[0].Count("restored")
	if err != nil {
		t.Fatal(err)
	}
	if int64(got+0.5) != 3 {
		t.Errorf("count of restored key via seed = %v, want ≈3", got)
	}
}

// TestAddRejectsProtocolUnsafeTokens: keys/elements the line protocol
// cannot carry are rejected up front instead of silently diverging
// between local and remote owners.
func TestAddRejectsProtocolUnsafeTokens(t *testing.T) {
	nodes := startCluster(t, 1, 1)
	n := nodes[0]
	for _, c := range []struct{ key, el string }{
		{"k", "a b"}, {"k", ""}, {"bad key", "a"}, {"", "a"}, {"k", "a\nDEL k"},
	} {
		if _, err := n.Add(c.key, c.el); err == nil {
			t.Errorf("Add(%q, %q) succeeded, want error", c.key, c.el)
		}
	}
	if _, err := n.Count("bad key"); err == nil {
		t.Error("Count of whitespace key succeeded, want error")
	}
	if err := n.MergeKeys("dest", "bad src"); err == nil {
		t.Error("MergeKeys with whitespace source succeeded, want error")
	}
	if n.Store().Len() != 0 {
		t.Errorf("rejected adds created %d keys", n.Store().Len())
	}
}

// TestAbsorbIsIdempotent: re-sending the same blob never changes the
// estimate — the property rebalance safety rests on.
func TestAbsorbIsIdempotent(t *testing.T) {
	nodes := startCluster(t, 2, 1)
	if _, err := nodes[0].Add("k", "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	want, err := nodes[0].Count("k")
	if err != nil {
		t.Fatal(err)
	}
	// Find the owner's blob and absorb it into both nodes repeatedly.
	var blob []byte
	for _, n := range nodes {
		if b, ok := n.Store().Dump("k"); ok {
			blob = b
		}
	}
	if blob == nil {
		t.Fatal("no node holds k")
	}
	for i := 0; i < 3; i++ {
		for _, n := range nodes {
			if err := n.Store().MergeBlob("k", blob); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := nodes[1].Count("k")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("estimate drifted after redundant absorbs: %v → %v", want, got)
	}
}
