package cluster

// ClusterClient is the smart, single-hop client for a sketch cluster:
// it fetches the cluster map once (CLUSTER MAP), hashes keys against
// the consistent-hash ring locally, and sends each data command
// straight to an owner over a pooled, pipelined per-node connection —
// no coordinator hop, so a routed op costs one RTT instead of two and
// no single node carries everyone's forwarding load.
//
// Staleness is self-healing, Redis-Cluster style: nodes running strict
// routing (Node.SetStrictRouting) answer a misrouted single-key verb
// with
//
//	-MOVED e=<epoch> <id>=<addr>
//
// and the client follows the redirect, refetches the map when the
// redirect's epoch is ahead of its own (rate-limited and single-flight,
// so a thundering herd of stale clients issues one fetch), and fails
// over to the next replica on a transport error. Every op carries a
// bounded redirect budget, so a flapping rebalance degrades into an
// error instead of a livelock. Maps only ever move forward in the
// (Epoch, Version, Coordinator) order — a delayed old map can never
// regress the client's view.
//
// A ClusterClient is safe for concurrent use. Compare server.Client +
// a coordinator node: that path still works against any node (and is
// the only option for multi-key scatter-gathers through one
// connection), but pays the extra hop; see the README's "Smart
// clients" section for when to prefer which.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exaloglog/server"
)

const (
	// defaultRedirectBudget bounds how many redirect-or-failover hops
	// one op may take before it fails. Two map transitions plus a
	// replica failover fit comfortably; a livelocked rebalance does not.
	defaultRedirectBudget = 6
	// defaultMinRefetch rate-limits map refetches: within this window
	// after a fetch, further -MOVED replies follow their hint without
	// hitting the cluster for a new map again.
	defaultMinRefetch = 25 * time.Millisecond
)

// ClusterClient routes data commands straight to owner nodes. Create
// one with DialCluster, share it between goroutines, Close when done.
type ClusterClient struct {
	peers *pool
	seeds []string

	mu   sync.RWMutex
	cmap *Map

	// fetchMu single-flights map refetches; lastFetch (guarded by it)
	// rate-limits them to one per minRefetch window.
	fetchMu    sync.Mutex
	lastFetch  time.Time
	minRefetch time.Duration

	redirectBudget int

	moved     atomic.Uint64 // -MOVED redirects followed
	refetches atomic.Uint64 // map refetches performed
	failovers atomic.Uint64 // transport-error replica failovers
}

// ClientStats is a snapshot of a ClusterClient's routing counters —
// the client-side mirror of the node's moved_replies / map_refetches.
type ClientStats struct {
	Moved        uint64 // -MOVED redirects followed
	MapRefetches uint64 // map refetches performed
	Failovers    uint64 // transport-error replica failovers
}

// DialCluster connects to a cluster through any reachable seed node
// and fetches the initial map. The seeds are also the fallback for map
// refetches when every known member is unreachable.
func DialCluster(seeds ...string) (*ClusterClient, error) {
	if len(seeds) == 0 {
		return nil, errors.New("cluster: DialCluster needs at least one seed address")
	}
	cc := &ClusterClient{
		peers:          newPool(),
		seeds:          append([]string(nil), seeds...),
		minRefetch:     defaultMinRefetch,
		redirectBudget: defaultRedirectBudget,
	}
	m, err := cc.fetchMapFrom(cc.seeds)
	if err != nil {
		cc.peers.closeAll()
		return nil, fmt.Errorf("cluster: initial map fetch: %w", err)
	}
	cc.cmap = m
	return cc, nil
}

// Close closes every pooled connection.
func (cc *ClusterClient) Close() {
	cc.peers.closeAll()
}

// Map returns the client's current view of the cluster map.
func (cc *ClusterClient) Map() *Map {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.cmap
}

// Stats returns a snapshot of the client's routing counters.
func (cc *ClusterClient) Stats() ClientStats {
	return ClientStats{
		Moved:        cc.moved.Load(),
		MapRefetches: cc.refetches.Load(),
		Failovers:    cc.failovers.Load(),
	}
}

// install swaps in m if it supersedes the current map — forward-only,
// so a delayed fetch result can never regress the view.
func (cc *ClusterClient) install(m *Map) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if m.Newer(cc.cmap) {
		cc.cmap = m
	}
}

// fetchMapFrom asks each address in turn for CLUSTER MAP and returns
// the first successfully decoded map.
func (cc *ClusterClient) fetchMapFrom(addrs []string) (*Map, error) {
	var errs []error
	for _, addr := range addrs {
		reply, err := cc.peers.do(addr, "CLUSTER", "MAP")
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", addr, err))
			continue
		}
		m, err := DecodeMap(strings.Fields(reply))
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", addr, err))
			continue
		}
		return m, nil
	}
	return nil, errors.Join(errs...)
}

// refetchMap refreshes the map because an op saw evidence (a -MOVED at
// epoch beyond, or a dead owner) that the view at epoch seen is stale.
// Single-flight: concurrent callers serialize on fetchMu and all but
// the first find the work already done. Rate-limited: within
// minRefetch of the last fetch it is a no-op — redirect hints still
// route ops correctly in the meantime. Best-effort: a failed fetch
// leaves the current map in place.
func (cc *ClusterClient) refetchMap(seen uint64) {
	cc.fetchMu.Lock()
	defer cc.fetchMu.Unlock()
	if cc.Map().Epoch > seen {
		return // another caller already advanced past the stale view
	}
	if time.Since(cc.lastFetch) < cc.minRefetch {
		return
	}
	cc.lastFetch = time.Now()
	// Prefer current members (they hold the freshest map), fall back to
	// the dial seeds for the case where every known member is gone.
	members := cc.Map().Members()
	addrs := make([]string, 0, len(members)+len(cc.seeds))
	tried := make(map[string]bool, len(members)+len(cc.seeds))
	for _, mem := range members {
		if !tried[mem.Addr] {
			tried[mem.Addr] = true
			addrs = append(addrs, mem.Addr)
		}
	}
	for _, s := range cc.seeds {
		if !tried[s] {
			tried[s] = true
			addrs = append(addrs, s)
		}
	}
	m, err := cc.fetchMapFrom(addrs)
	if err != nil {
		return
	}
	cc.refetches.Add(1)
	cc.install(m)
}

// cop is one client op in flight: its wire command, routing key, and
// redirect state. res carries the final outcome.
type cop struct {
	parts    []string
	key      string
	res      server.Result
	done     bool
	tries    int    // redirect + failover hops consumed (budgeted)
	failover int    // replica index offset after transport errors
	hint     string // one-shot target address from a -MOVED reply
}

func (op *cop) fail(err error) {
	op.res = server.Result{Err: err}
	op.done = true
}

// run drives ops to completion in rounds: group the pending ops by
// target address, send each group as one pipelined batch (groups go
// out concurrently), then settle each reply — an answer (OK or any
// non-MOVED error reply) finishes the op, a -MOVED re-aims it at the
// named owner, a transport error fails it over to the next replica.
// Every hop consumes budget, so the loop is bounded: each round every
// pending op either finishes or spends one try, and an op out of tries
// fails.
func (cc *ClusterClient) run(ops []*cop) {
	for {
		m := cc.Map()
		groups := make(map[string][]*cop)
		for _, op := range ops {
			if op.done {
				continue
			}
			addr := op.hint
			op.hint = ""
			if addr == "" {
				owners := m.Owners(op.key)
				if len(owners) == 0 {
					op.fail(errors.New("cluster: empty cluster map"))
					continue
				}
				addr = owners[op.failover%len(owners)].Addr
			}
			groups[addr] = append(groups[addr], op)
		}
		if len(groups) == 0 {
			return
		}
		var wg sync.WaitGroup
		for addr, group := range groups {
			wg.Add(1)
			go func(addr string, group []*cop) {
				defer wg.Done()
				cmds := make([][]string, len(group))
				for i, op := range group {
					cmds[i] = op.parts
				}
				results, err := cc.peers.pipeline(addr, cmds)
				if err != nil {
					cc.failovers.Add(1)
					for _, op := range group {
						cc.spend(op, fmt.Errorf("cluster: %s unreachable: %w", addr, err))
						op.failover++
					}
					// The owner is likely gone for everyone; a fresh map
					// stops future ops from aiming at it at all.
					cc.refetchMap(m.Epoch)
					return
				}
				for i, op := range group {
					cc.settle(op, results[i], m)
				}
			}(addr, group)
		}
		wg.Wait()
	}
}

// settle records one reply for op. m is the map the round routed by.
func (cc *ClusterClient) settle(op *cop, res server.Result, m *Map) {
	mv, isMoved := server.AsMoved(res.Err)
	if !isMoved {
		// Any direct answer — success or an ordinary error reply — is
		// the op's final outcome.
		op.res = res
		op.done = true
		return
	}
	cc.moved.Add(1)
	cc.spend(op, fmt.Errorf("cluster: redirect budget exhausted: %w", mv))
	if op.done {
		return
	}
	op.hint = mv.Addr
	if mv.Epoch >= m.Epoch {
		// The redirecting node's map is at least as new as ours, yet we
		// misrouted — our view is stale. (A redirect at an OLDER epoch
		// is the node lagging behind us; following its one-shot hint is
		// harmless and the next round re-routes by our newer map.)
		cc.refetchMap(m.Epoch)
	}
}

// spend consumes one try of op's budget, failing it with err when the
// budget is exhausted.
func (cc *ClusterClient) spend(op *cop, err error) {
	op.tries++
	if op.tries > cc.redirectBudget {
		op.fail(err)
	}
}

// doOne runs a single-command batch and returns its reply.
func (cc *ClusterClient) doOne(key string, parts []string) (string, error) {
	op := &cop{parts: parts, key: key}
	cc.run([]*cop{op})
	return op.res.Value, op.res.Err
}

// Add inserts elements into key, routed directly to an owner; it
// reports whether the owner's sketch changed.
func (cc *ClusterClient) Add(key string, elements ...string) (bool, error) {
	if err := validAddArgs(key, elements); err != nil {
		return false, err
	}
	reply, err := cc.doOne(key, append(append(make([]string, 0, 2+len(elements)), "PFADD", key), elements...))
	if err != nil {
		return false, err
	}
	return reply == "1", nil
}

// Count returns the estimated distinct count of key, routed directly
// to an owner (which scatter-gathers the replica union server-side).
func (cc *ClusterClient) Count(key string) (int64, error) {
	if err := validToken("key", key); err != nil {
		return 0, err
	}
	reply, err := cc.doOne(key, []string{"PFCOUNT", key})
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(reply, 10, 64)
}

// WAdd inserts elements observed at the unix-millisecond timestamp ts
// into the windowed key, routed directly to an owner; it returns how
// many elements were accepted.
func (cc *ClusterClient) WAdd(key string, tsMillis int64, elements ...string) (int, error) {
	if err := validAddArgs(key, elements); err != nil {
		return 0, err
	}
	parts := make([]string, 0, 3+len(elements))
	parts = append(parts, "WADD", key, strconv.FormatInt(tsMillis, 10))
	reply, err := cc.doOne(key, append(parts, elements...))
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(reply)
}

// WCount returns the estimated distinct count the windowed key
// observed over the window ending at its newest timestamp.
func (cc *ClusterClient) WCount(key string, win time.Duration) (int64, error) {
	if err := validToken("key", key); err != nil {
		return 0, err
	}
	reply, err := cc.doOne(key, []string{"WCOUNT", key, win.String()})
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(reply, 10, 64)
}

// Del removes key from the cluster; it reports whether it existed.
func (cc *ClusterClient) Del(key string) (bool, error) {
	if err := validToken("key", key); err != nil {
		return false, err
	}
	reply, err := cc.doOne(key, []string{"DEL", key})
	if err != nil {
		return false, err
	}
	return reply == "1", nil
}

// Expire sets key's time-to-live (rounded up to whole seconds), routed
// directly to an owner, which computes the absolute deadline and
// replicates it; it reports whether the key existed.
func (cc *ClusterClient) Expire(key string, ttl time.Duration) (bool, error) {
	if err := validToken("key", key); err != nil {
		return false, err
	}
	secs := int64((ttl + time.Second - 1) / time.Second)
	if secs <= 0 {
		return false, fmt.Errorf("cluster: TTL %v must be positive", ttl)
	}
	reply, err := cc.doOne(key, []string{"EXPIRE", key, strconv.FormatInt(secs, 10)})
	if err != nil {
		return false, err
	}
	return reply == "1", nil
}

// PExpire is Expire at millisecond granularity.
func (cc *ClusterClient) PExpire(key string, ttl time.Duration) (bool, error) {
	if err := validToken("key", key); err != nil {
		return false, err
	}
	ms := ttl.Milliseconds()
	if ms <= 0 {
		return false, fmt.Errorf("cluster: TTL %v must be positive", ttl)
	}
	reply, err := cc.doOne(key, []string{"PEXPIRE", key, strconv.FormatInt(ms, 10)})
	if err != nil {
		return false, err
	}
	return reply == "1", nil
}

// TTL returns key's remaining time-to-live in whole seconds, following
// the Redis reply convention: -2 if the key does not exist, -1 if it
// exists but carries no deadline.
func (cc *ClusterClient) TTL(key string) (int64, error) {
	if err := validToken("key", key); err != nil {
		return 0, err
	}
	reply, err := cc.doOne(key, []string{"TTL", key})
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(reply, 10, 64)
}

// Persist removes key's expiry deadline; it reports whether one was
// removed.
func (cc *ClusterClient) Persist(key string) (bool, error) {
	if err := validToken("key", key); err != nil {
		return false, err
	}
	reply, err := cc.doOne(key, []string{"PERSIST", key})
	if err != nil {
		return false, err
	}
	return reply == "1", nil
}

func validAddArgs(key string, elements []string) error {
	if err := validToken("key", key); err != nil {
		return err
	}
	if len(elements) == 0 {
		return errors.New("cluster: add needs at least one element")
	}
	for _, e := range elements {
		if err := validToken("element", e); err != nil {
			return err
		}
	}
	return nil
}

// ClientBatch queues many single-key commands and executes them with
// one pipelined round trip per owner node — the smart-client analogue
// of server.Pipeline, except the batch fans out across the cluster by
// key instead of down one connection. Obtain one from Batch, queue
// with PFAdd/PFCount/WAdd/WCount/Del/Expire/TTL, then Exec. Not safe
// for concurrent use (the executing client is).
type ClientBatch struct {
	cc  *ClusterClient
	ops []*cop
	err error // first queueing error; reported by Exec
}

// Batch returns an empty command batch on this client.
func (cc *ClusterClient) Batch() *ClientBatch { return &ClientBatch{cc: cc} }

func (b *ClientBatch) add(key string, parts []string) {
	if b.err != nil {
		return
	}
	for _, p := range parts {
		if p == "" || strings.ContainsAny(p, " \t\r\n") {
			b.err = fmt.Errorf("cluster: token %q must be non-empty and free of whitespace", p)
			return
		}
	}
	b.ops = append(b.ops, &cop{parts: parts, key: key})
}

// PFAdd queues a PFADD key element... command.
func (b *ClientBatch) PFAdd(key string, elements ...string) {
	b.add(key, append(append(make([]string, 0, 2+len(elements)), "PFADD", key), elements...))
}

// PFCount queues a single-key PFCOUNT command.
func (b *ClientBatch) PFCount(key string) {
	b.add(key, []string{"PFCOUNT", key})
}

// WAdd queues a WADD key ts element... command (ts in unix
// milliseconds).
func (b *ClientBatch) WAdd(key string, tsMillis int64, elements ...string) {
	parts := make([]string, 0, 3+len(elements))
	parts = append(parts, "WADD", key, strconv.FormatInt(tsMillis, 10))
	b.add(key, append(parts, elements...))
}

// WCount queues a WCOUNT key window command.
func (b *ClientBatch) WCount(key string, win time.Duration) {
	b.add(key, []string{"WCOUNT", key, win.String()})
}

// Del queues a DEL key command.
func (b *ClientBatch) Del(key string) {
	b.add(key, []string{"DEL", key})
}

// Expire queues an EXPIRE key seconds command (ttl rounded up to whole
// seconds).
func (b *ClientBatch) Expire(key string, ttl time.Duration) {
	secs := int64((ttl + time.Second - 1) / time.Second)
	b.add(key, []string{"EXPIRE", key, strconv.FormatInt(secs, 10)})
}

// TTL queues a TTL key command.
func (b *ClientBatch) TTL(key string) {
	b.add(key, []string{"TTL", key})
}

// Len returns the number of queued commands.
func (b *ClientBatch) Len() int { return len(b.ops) }

// Exec routes and executes every queued command and returns one Result
// per command, in queue order. Per-command failures (including a
// redirect budget exhausted mid-rebalance) land in the individual
// Results; the returned error is non-nil only for a queueing error, in
// which case nothing was sent. Exec resets the batch for reuse.
func (b *ClientBatch) Exec() ([]server.Result, error) {
	ops, err := b.ops, b.err
	b.ops, b.err = nil, nil
	if err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return nil, nil
	}
	b.cc.run(ops)
	results := make([]server.Result, len(ops))
	for i, op := range ops {
		results[i] = op.res
	}
	return results, nil
}
