package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Member is one node of the cluster map.
type Member struct {
	ID   string
	Addr string
}

// Map is an immutable view of cluster membership: which nodes exist,
// where they listen, and how many replicas each key gets. Nodes
// exchange maps with the CLUSTER SETMAP verb; newer maps win, so a map
// change made on any node converges everywhere. Treat a Map as
// read-only once built — derive changed maps with withNode/withoutNode.
//
// # Epoch rules
//
// Maps are totally ordered by (Epoch, Version, Coordinator), compared
// in that order — see Newer. Every membership mutation goes through a
// coordinator that first wins a claim on a fresh epoch from a quorum
// (majority) of the current members (CLUSTER EPOCH, à la Redis
// Cluster's config epochs), then mints the new map at that epoch and
// broadcasts it. A node grants each epoch to at most one coordinator,
// and majorities intersect, so two concurrent JOIN/LEAVEs routed
// through different coordinators cannot both win the same epoch: one
// coordinator retries at a higher epoch. Claim replies carry each
// voter's current map and the coordinator adopts the newest before
// minting, so the later mutation builds on — rather than overwrites —
// a rival map that is still mid-broadcast, as long as some reachable
// member has installed it. Even when a partition lets equal-epoch maps
// escape (quorum unreachable), the Version and Coordinator tie-breaks
// still give every node the same winner, so reconciliation never
// stalls — convergence degrades, correctness does not.
//
// # Limits (single partition)
//
// Epoch fencing orders maps; it is not consensus. During a partition a
// majority side can keep mutating while the minority side serves its
// last map, and a minority-side mutation that cannot reach quorum
// fails. When the partition heals, the highest-epoch map wins
// everywhere (Sync/SETMAP) and the losing side's unmerged membership
// mutations — not its sketch data, which rebalance re-pushes — are
// discarded and must be re-issued. Likewise, a mutation whose
// coordinator becomes unreachable before any reachable member learns
// its map can be superseded by a later, higher-epoch mutation minted
// from an older parent, even though the coordinator replied OK. This
// buys convergence without a consensus dependency; it does not buy
// linearizable membership.
type Map struct {
	// Epoch is the fencing token: it increases on every membership
	// mutation and dominates the ordering.
	Epoch uint64
	// Version counts mutations within the map's lineage; it breaks
	// ties between equal-epoch maps (possible only when a claim could
	// not reach quorum).
	Version uint64
	// Coordinator is the ID of the node that minted this map ("" for
	// a node's initial self-map); it is the final, deterministic
	// tie-break.
	Coordinator string
	Replicas    int
	nodes       map[string]string // id → addr
	byAddr      map[string]string // addr → id (reverse index, built once)
	ring        *ring
}

// NewMap builds an epoch-1, version-1 map with the given replica factor
// and members. Replicas is clamped to at least 1.
func NewMap(replicas int, members ...Member) *Map {
	if replicas < 1 {
		replicas = 1
	}
	nodes := make(map[string]string, len(members))
	for _, m := range members {
		nodes[m.ID] = m.Addr
	}
	return build(1, 1, "", replicas, nodes)
}

func build(epoch, version uint64, coordinator string, replicas int, nodes map[string]string) *Map {
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	byAddr := make(map[string]string, len(nodes))
	for _, id := range ids {
		// Sorted iteration makes the winner deterministic should two
		// ids ever share an address (first id wins).
		if _, dup := byAddr[nodes[id]]; !dup {
			byAddr[nodes[id]] = id
		}
	}
	return &Map{
		Epoch:       epoch,
		Version:     version,
		Coordinator: coordinator,
		Replicas:    replicas,
		nodes:       nodes,
		byAddr:      byAddr,
		ring:        newRing(ids),
	}
}

// Newer reports whether m supersedes other under the total order
// (Epoch, Version, Coordinator). A nil other is always superseded.
// Equal maps are NOT newer, which makes re-delivered SETMAPs no-ops.
func (m *Map) Newer(other *Map) bool {
	if other == nil {
		return true
	}
	if m.Epoch != other.Epoch {
		return m.Epoch > other.Epoch
	}
	if m.Version != other.Version {
		return m.Version > other.Version
	}
	return m.Coordinator > other.Coordinator
}

// SupersededByTriple reports whether an ordering triple (epoch,
// version, coordinator) — e.g. one carried in a gossip digest, without
// its full map — supersedes m under the same total order as Newer.
func (m *Map) SupersededByTriple(epoch, version uint64, coordinator string) bool {
	if epoch != m.Epoch {
		return epoch > m.Epoch
	}
	if version != m.Version {
		return version > m.Version
	}
	return coordinator > m.Coordinator
}

// Triple renders m's ordering triple as reply fields: "e=<epoch>
// v=<version> c=<coordinator|->" — the form JOIN/LEAVE replies carry so
// an operator whose mutation lost can see the map that won.
func (m *Map) Triple() string {
	coord := m.Coordinator
	if coord == "" {
		coord = noCoordinator
	}
	return fmt.Sprintf("e=%d v=%d c=%s", m.Epoch, m.Version, coord)
}

// Members returns all members sorted by ID.
func (m *Map) Members() []Member {
	out := make([]Member, 0, len(m.nodes))
	for id, addr := range m.nodes {
		out = append(out, Member{ID: id, Addr: addr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of members.
func (m *Map) Len() int { return len(m.nodes) }

// Addr returns the address of node id ("" if absent).
func (m *Map) Addr(id string) string { return m.nodes[id] }

// Has reports whether node id is a member.
func (m *Map) Has(id string) bool { _, ok := m.nodes[id]; return ok }

// IDByAddr returns the member id listening on addr ("" if none) — an
// O(1) reverse lookup for callers on the data path (the failure
// detector turns per-command transport evidence into per-node
// liveness with it).
func (m *Map) IDByAddr(addr string) string { return m.byAddr[addr] }

// Owners returns the members owning key: the primary first, then up to
// Replicas-1 distinct replicas (fewer if the cluster is smaller).
func (m *Map) Owners(key string) []Member {
	ids := m.ring.ownersOf(key, m.Replicas)
	out := make([]Member, len(ids))
	for i, id := range ids {
		out[i] = Member{ID: id, Addr: m.nodes[id]}
	}
	return out
}

// ownerIDs returns just the IDs owning key, for cheap owner-set diffs.
func (m *Map) ownerIDs(key string) []string { return m.ring.ownersOf(key, m.Replicas) }

// withNode returns a new map minted by coordinator at epoch with node
// id added or re-addressed, at version+1.
func (m *Map) withNode(id, addr string, epoch uint64, coordinator string) *Map {
	nodes := make(map[string]string, len(m.nodes)+1)
	for k, v := range m.nodes {
		nodes[k] = v
	}
	nodes[id] = addr
	return build(epoch, m.Version+1, coordinator, m.Replicas, nodes)
}

// withoutNode returns a new map minted by coordinator at epoch with
// node id removed, at version+1.
func (m *Map) withoutNode(id string, epoch uint64, coordinator string) *Map {
	nodes := make(map[string]string, len(m.nodes))
	for k, v := range m.nodes {
		if k != id {
			nodes[k] = v
		}
	}
	return build(epoch, m.Version+1, coordinator, m.Replicas, nodes)
}

// mapWireTag versions the SETMAP payload; bumping the map schema means
// minting a new tag, so old nodes reject (rather than misparse) new
// payloads and vice versa.
const mapWireTag = "v2"

// noCoordinator is the wire spelling of an empty Coordinator (tokens
// cannot be empty).
const noCoordinator = "-"

// maxWireMembers caps how many members DecodeMap accepts; an
// adversarial payload cannot make a node build an absurd ring.
const maxWireMembers = 4096

// maxWireBytes caps the total encoded size DecodeMap accepts. It is
// far below the server snapshot reader's 1 MiB metadata limit, so any
// map a node can install is guaranteed to round-trip through the
// snapshot it is persisted in.
const maxWireBytes = 1 << 18

// Encode renders the map as space-separated protocol tokens:
//
//	v2 <epoch> <version> <coordinator|-> <replicas> <id>=<addr> [...]
//
// the payload of CLUSTER MAP replies and CLUSTER SETMAP commands. Node
// IDs, addresses and coordinator must not contain whitespace or '=';
// Node enforces this at join time. Members are emitted sorted by ID,
// so equal maps encode byte-identically.
func (m *Map) Encode() string {
	coord := m.Coordinator
	if coord == "" {
		coord = noCoordinator
	}
	parts := make([]string, 0, 5+len(m.nodes))
	parts = append(parts, mapWireTag,
		strconv.FormatUint(m.Epoch, 10),
		strconv.FormatUint(m.Version, 10),
		coord,
		strconv.Itoa(m.Replicas))
	for _, mem := range m.Members() {
		parts = append(parts, mem.ID+"="+mem.Addr)
	}
	return strings.Join(parts, " ")
}

// DecodeMap parses Encode's token form. It is deliberately strict — a
// corrupt or adversarial SETMAP payload must yield an error, never a
// panic or a degenerate map (see FuzzMapDecode).
func DecodeMap(tokens []string) (*Map, error) {
	if len(tokens) < 5 {
		return nil, fmt.Errorf("cluster: map needs tag, epoch, version, coordinator and replicas, got %d tokens", len(tokens))
	}
	total := len(tokens) // separators
	for _, tok := range tokens {
		total += len(tok)
	}
	if total > maxWireBytes {
		return nil, fmt.Errorf("cluster: map payload is %d bytes (limit %d)", total, maxWireBytes)
	}
	if tokens[0] != mapWireTag {
		return nil, fmt.Errorf("cluster: unsupported map payload tag %q (want %s)", tokens[0], mapWireTag)
	}
	epoch, err := strconv.ParseUint(tokens[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad map epoch %q", tokens[1])
	}
	version, err := strconv.ParseUint(tokens[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad map version %q", tokens[2])
	}
	coordinator := tokens[3]
	if coordinator == noCoordinator {
		coordinator = ""
	} else if !validID(coordinator) {
		return nil, fmt.Errorf("cluster: bad map coordinator %q", tokens[3])
	}
	replicas, err := strconv.Atoi(tokens[4])
	if err != nil || replicas < 1 || replicas > maxWireMembers {
		return nil, fmt.Errorf("cluster: bad replica factor %q", tokens[4])
	}
	memberTokens := tokens[5:]
	if len(memberTokens) > maxWireMembers {
		return nil, fmt.Errorf("cluster: map claims %d members (limit %d)", len(memberTokens), maxWireMembers)
	}
	nodes := make(map[string]string, len(memberTokens))
	for _, tok := range memberTokens {
		id, addr, ok := strings.Cut(tok, "=")
		if !ok || !validID(id) || addr == "" || strings.Contains(addr, "=") {
			return nil, fmt.Errorf("cluster: bad member token %q", tok)
		}
		if _, dup := nodes[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate member %q", id)
		}
		nodes[id] = addr
	}
	// A wire map with no members is always bogus — installing one would
	// make every key ownerless and rebalance could drop local data.
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: map has no members")
	}
	return build(epoch, version, coordinator, replicas, nodes), nil
}

// validID reports whether id is usable on the wire (non-empty, no
// whitespace, no '='; not starting with '~', which marks gossip
// eviction-record tokens).
func validID(id string) bool {
	return id != "" && id[0] != '~' && !strings.ContainsAny(id, " \t\r\n=")
}
