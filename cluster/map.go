package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Member is one node of the cluster map.
type Member struct {
	ID   string
	Addr string
}

// Map is an immutable, versioned view of cluster membership: which nodes
// exist, where they listen, and how many replicas each key gets. Nodes
// exchange maps with the CLUSTER SETMAP verb; higher versions win, so a
// map change made on any node converges everywhere. Treat a Map as
// read-only once built — derive changed maps with withNode/withoutNode.
//
// Limitation: membership changes are assumed to be serialized by the
// operator (one JOIN/LEAVE at a time). Two concurrent changes routed
// through different coordinators can mint equal-version maps with
// different members, and version-only reconciliation will not merge
// them — epoch-based conflict resolution (à la Redis Cluster) is a
// future step; see ROADMAP.md.
type Map struct {
	Version  uint64
	Replicas int
	nodes    map[string]string // id → addr
	ring     *ring
}

// NewMap builds a version-1 map with the given replica factor and
// members. Replicas is clamped to at least 1.
func NewMap(replicas int, members ...Member) *Map {
	if replicas < 1 {
		replicas = 1
	}
	nodes := make(map[string]string, len(members))
	for _, m := range members {
		nodes[m.ID] = m.Addr
	}
	return build(1, replicas, nodes)
}

func build(version uint64, replicas int, nodes map[string]string) *Map {
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return &Map{Version: version, Replicas: replicas, nodes: nodes, ring: newRing(ids)}
}

// Members returns all members sorted by ID.
func (m *Map) Members() []Member {
	out := make([]Member, 0, len(m.nodes))
	for id, addr := range m.nodes {
		out = append(out, Member{ID: id, Addr: addr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of members.
func (m *Map) Len() int { return len(m.nodes) }

// Addr returns the address of node id ("" if absent).
func (m *Map) Addr(id string) string { return m.nodes[id] }

// Has reports whether node id is a member.
func (m *Map) Has(id string) bool { _, ok := m.nodes[id]; return ok }

// Owners returns the members owning key: the primary first, then up to
// Replicas-1 distinct replicas (fewer if the cluster is smaller).
func (m *Map) Owners(key string) []Member {
	ids := m.ring.ownersOf(key, m.Replicas)
	out := make([]Member, len(ids))
	for i, id := range ids {
		out[i] = Member{ID: id, Addr: m.nodes[id]}
	}
	return out
}

// withNode returns a new map at version+1 with node id added or
// re-addressed.
func (m *Map) withNode(id, addr string) *Map {
	nodes := make(map[string]string, len(m.nodes)+1)
	for k, v := range m.nodes {
		nodes[k] = v
	}
	nodes[id] = addr
	return build(m.Version+1, m.Replicas, nodes)
}

// withoutNode returns a new map at version+1 with node id removed.
func (m *Map) withoutNode(id string) *Map {
	nodes := make(map[string]string, len(m.nodes))
	for k, v := range m.nodes {
		if k != id {
			nodes[k] = v
		}
	}
	return build(m.Version+1, m.Replicas, nodes)
}

// Encode renders the map as space-separated protocol tokens:
//
//	<version> <replicas> <id>=<addr> [<id>=<addr> ...]
//
// the payload of CLUSTER MAP replies and CLUSTER SETMAP commands. Node
// IDs and addresses must not contain whitespace or '='; Node enforces
// this at join time.
func (m *Map) Encode() string {
	parts := make([]string, 0, 2+len(m.nodes))
	parts = append(parts, strconv.FormatUint(m.Version, 10), strconv.Itoa(m.Replicas))
	for _, mem := range m.Members() {
		parts = append(parts, mem.ID+"="+mem.Addr)
	}
	return strings.Join(parts, " ")
}

// DecodeMap parses Encode's token form.
func DecodeMap(tokens []string) (*Map, error) {
	if len(tokens) < 2 {
		return nil, fmt.Errorf("cluster: map needs at least version and replicas, got %d tokens", len(tokens))
	}
	version, err := strconv.ParseUint(tokens[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad map version %q", tokens[0])
	}
	replicas, err := strconv.Atoi(tokens[1])
	if err != nil || replicas < 1 {
		return nil, fmt.Errorf("cluster: bad replica factor %q", tokens[1])
	}
	nodes := make(map[string]string, len(tokens)-2)
	for _, tok := range tokens[2:] {
		id, addr, ok := strings.Cut(tok, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad member token %q", tok)
		}
		nodes[id] = addr
	}
	// A wire map with no members is always bogus — installing one would
	// make every key ownerless and rebalance could drop local data.
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: map has no members")
	}
	return build(version, replicas, nodes), nil
}

// validID reports whether id is usable on the wire (non-empty, no
// whitespace, no '=').
func validID(id string) bool {
	return id != "" && !strings.ContainsAny(id, " \t\r\n=")
}
