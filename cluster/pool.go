package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exaloglog/server"
)

// pool caches one client connection per peer address. server.Client
// serializes concurrent commands on its connection, so scatter-gather
// fan-out across peers runs in parallel while same-peer commands queue.
// Connections that error are dropped and redialed on next use.
//
// Beyond single commands the pool offers two batched paths:
//
//   - pipeline sends a slice of commands in one write and reads the
//     replies in one batch (server.Pipeline) — used by the read
//     scatter-gather so N keys on one owner cost one round trip.
//   - batchAdd/batchWAdd coalesce concurrent per-key add requests —
//     plain and windowed mixed freely — to the same peer into a single
//     CLUSTER MLADD command (group commit): while one flush is on the
//     wire, every new request queues, and the next flush carries them
//     all.
//
// hook, when non-nil, is consulted before every outbound command; a
// non-nil return aborts the command with that error. It exists for the
// in-process test harness (simulated partitions and delays) and must
// be set before the owning node starts serving. pipeline consults the
// hook once per queued command (so per-verb partitions and delays see
// every logical command); the add batcher consults it once per flushed
// batch, with the combined MLADD command.
// alive, when non-nil, is invoked with the peer address after every
// successful command or pipeline — transport-level proof the peer is
// up, which the gossip failure detector folds in as heartbeat-grade
// evidence so ordinary traffic keeps refuting suspicion.
type pool struct {
	hook  func(addr string, parts []string) error
	alive func(addr string)
	mu    sync.Mutex
	conns map[string]*server.Client

	bmu     sync.Mutex
	batches map[string]*peerBatch

	// mlGroups/mlBatches count the group-commit coalescing: how many
	// per-key add groups went out, in how many MLADD flushes — the
	// CLUSTER STATS mlpfadd_* counters (groups/batches is the average
	// coalescing factor; the names predate the mixed batcher).
	mlGroups  atomic.Uint64
	mlBatches atomic.Uint64

	// timeoutNS is the per-command I/O deadline (nanoseconds; 0 = no
	// deadline) applied to every dialed connection: each Do/pipeline
	// write-read runs under it, so a black-holed peer fails as a
	// TRANSPORT error instead of hanging the caller. Atomic so
	// SetPeerTimeout can tune it at runtime; connections pick it up
	// when dialed.
	timeoutNS atomic.Int64
}

func newPool() *pool {
	return &pool{
		conns:   make(map[string]*server.Client),
		batches: make(map[string]*peerBatch),
	}
}

// defaultPeerTimeout is the pool's out-of-the-box per-command I/O
// deadline — generous, because it only needs to beat "forever": elld
// tightens it via -peer-timeout.
const defaultPeerTimeout = 10 * time.Second

func (p *pool) setTimeout(d time.Duration) { p.timeoutNS.Store(int64(d)) }

func (p *pool) timeout() time.Duration {
	d := time.Duration(p.timeoutNS.Load())
	if d < 0 {
		return 0
	}
	return d
}

func (p *pool) get(addr string) (*server.Client, error) {
	p.mu.Lock()
	if c, ok := p.conns[addr]; ok {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	t := p.timeout()
	c, err := server.DialTimeout(addr, t)
	if err != nil {
		return nil, err
	}
	c.SetOpTimeout(t)
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev, ok := p.conns[addr]; ok { // lost the dial race; keep the first
		c.Close()
		return prev, nil
	}
	p.conns[addr] = c
	return c, nil
}

func (p *pool) drop(addr string, c *server.Client) {
	p.mu.Lock()
	if p.conns[addr] == c {
		delete(p.conns, addr)
	}
	p.mu.Unlock()
	c.Close()
}

// do runs one command against addr, classifying the outcome by
// TRANSPORT, not by error kind: any parsed reply line — OK, a missing
// key, a WRONGTYPE value, an arity error, a -MOVED redirect — means
// the peer read the command and answered, so the pooled connection is
// healthy (the protocol is strictly one-reply-one-line, no desync
// possible) and the answer is liveness evidence for the failure
// detector. Only dial/read/write failures drop the cached connection
// for a redial on next use. Enumerating "benign" error replies here
// would be wrong twice over: a novel error reply would needlessly
// tear down a healthy connection, and — worse — feed the missing
// alive() into the detector as spurious suspicion of a peer that just
// answered.
func (p *pool) do(addr string, parts ...string) (string, error) {
	if p.hook != nil {
		if err := p.hook(addr, parts); err != nil {
			return "", err
		}
	}
	c, err := p.get(addr)
	if err != nil {
		return "", err
	}
	reply, err := c.Do(parts...)
	answered := err == nil || server.IsReplyErr(err)
	if !answered {
		p.drop(addr, c)
	} else if p.alive != nil {
		// Even an error reply proves the peer answered.
		p.alive(addr)
	}
	return reply, err
}

// pipeline sends cmds to addr as one pipelined batch and returns one
// Result per command. A transport-level failure drops the cached
// connection; per-command protocol errors (e.g. a missing key) land in
// the individual Results.
func (p *pool) pipeline(addr string, cmds [][]string) ([]server.Result, error) {
	if p.hook != nil {
		for _, parts := range cmds {
			if err := p.hook(addr, parts); err != nil {
				return nil, err
			}
		}
	}
	c, err := p.get(addr)
	if err != nil {
		return nil, err
	}
	pl := c.Pipeline()
	for _, parts := range cmds {
		pl.Do(parts...)
	}
	results, err := pl.Exec()
	if err != nil {
		p.drop(addr, c)
		return nil, err
	}
	if p.alive != nil {
		p.alive(addr)
	}
	return results, nil
}

// addReq is one queued remote add awaiting a batched flush — plain
// (PFADD-shaped) or, when windowed is set, a WADD carrying its
// unix-millisecond observation timestamp.
type addReq struct {
	key      string
	windowed bool
	ts       int64 // unix milliseconds; windowed groups only
	elements []string
	done     chan addResult
}

type addResult struct {
	changed  bool // plain groups: the owner's changed-bit
	accepted int  // windowed groups: how many elements the owner accepted
	err      error
}

// peerBatch is the per-peer group-commit queue for adds.
type peerBatch struct {
	mu       sync.Mutex
	pending  []*addReq
	flushing bool
}

func (p *pool) batchFor(addr string) *peerBatch {
	p.bmu.Lock()
	defer p.bmu.Unlock()
	b, ok := p.batches[addr]
	if !ok {
		b = &peerBatch{}
		p.batches[addr] = b
	}
	return b
}

// batchAdd queues a plain add of elements into key on the peer at addr
// and returns its result. Concurrent calls to the same peer coalesce:
// one caller becomes the flusher and drains the queue in MLADD batches
// (one write, one reply per batch) while later callers just park on
// their result channel — the cluster-side equivalent of the server's
// coalesced flush.
func (p *pool) batchAdd(addr, key string, elements []string) (bool, error) {
	res := p.enqueueAdd(addr, &addReq{key: key, elements: elements, done: make(chan addResult, 1)})
	return res.changed, res.err
}

// batchWAdd is batchAdd's windowed sibling: the request rides the same
// per-peer group-commit queue, so mixed PFADD/WADD load to one owner
// still coalesces into single MLADD round trips instead of splitting
// into two serialized batch streams.
func (p *pool) batchWAdd(addr, key string, tsMillis int64, elements []string) (int, error) {
	res := p.enqueueAdd(addr, &addReq{key: key, windowed: true, ts: tsMillis,
		elements: elements, done: make(chan addResult, 1)})
	return res.accepted, res.err
}

// enqueueAdd parks req on addr's group-commit queue and returns its
// result, electing the caller as flusher when none is running.
func (p *pool) enqueueAdd(addr string, req *addReq) addResult {
	b := p.batchFor(addr)
	b.mu.Lock()
	b.pending = append(b.pending, req)
	if b.flushing {
		b.mu.Unlock()
		return <-req.done
	}
	b.flushing = true
	b.mu.Unlock()
	for {
		b.mu.Lock()
		batch := b.pending
		if len(batch) == 0 {
			b.flushing = false
			b.mu.Unlock()
			break
		}
		b.pending = nil
		b.mu.Unlock()
		p.flushAdds(addr, batch)
	}
	return <-req.done
}

// flushAdds sends one MLADD carrying every queued group — plain and
// windowed interleaved — and fans the per-group results back out to the
// waiting callers. A group's 'E' outcome (the only per-group failure: a
// WRONGTYPE key) fails that caller alone; the neighbors coalesced into
// the batch are unaffected.
func (p *pool) flushAdds(addr string, batch []*addReq) {
	p.mlBatches.Add(1)
	p.mlGroups.Add(uint64(len(batch)))
	size := 3
	for _, r := range batch {
		size += 4 + len(r.elements)
	}
	parts := make([]string, 0, size)
	parts = append(parts, "CLUSTER", "MLADD", strconv.Itoa(len(batch)))
	for _, r := range batch {
		if r.windowed {
			parts = append(parts, "w", r.key, strconv.FormatInt(r.ts, 10), strconv.Itoa(len(r.elements)))
		} else {
			parts = append(parts, "p", r.key, strconv.Itoa(len(r.elements)))
		}
		parts = append(parts, r.elements...)
	}
	reply, err := p.do(addr, parts...)
	var toks []string
	if err == nil {
		toks = strings.Fields(reply)
		if len(toks) != len(batch) {
			err = fmt.Errorf("cluster: MLADD replied %d tokens for %d groups", len(toks), len(batch))
		}
	}
	for i, r := range batch {
		if err != nil {
			r.done <- addResult{err: err}
			continue
		}
		if toks[i] == "E" {
			r.done <- addResult{err: fmt.Errorf("cluster: add %q on %s: %w", r.key, addr, server.ErrWrongType)}
			continue
		}
		if r.windowed {
			accepted, perr := strconv.Atoi(toks[i])
			if perr != nil {
				r.done <- addResult{err: fmt.Errorf("cluster: MLADD windowed group replied %q", toks[i])}
				continue
			}
			r.done <- addResult{accepted: accepted}
			continue
		}
		r.done <- addResult{changed: toks[i] == "1"}
	}
}

func (p *pool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for addr, c := range p.conns {
		c.Close()
		delete(p.conns, addr)
	}
}
