package cluster

import (
	"errors"
	"sync"

	"exaloglog/server"
)

// pool caches one client connection per peer address. server.Client
// serializes concurrent commands on its connection, so scatter-gather
// fan-out across peers runs in parallel while same-peer commands queue.
// Connections that error are dropped and redialed on next use.
//
// hook, when non-nil, is consulted before every outbound command; a
// non-nil return aborts the command with that error. It exists for the
// in-process test harness (simulated partitions and delays) and must
// be set before the owning node starts serving.
type pool struct {
	hook  func(addr string, parts []string) error
	mu    sync.Mutex
	conns map[string]*server.Client
}

func newPool() *pool {
	return &pool{conns: make(map[string]*server.Client)}
}

func (p *pool) get(addr string) (*server.Client, error) {
	p.mu.Lock()
	if c, ok := p.conns[addr]; ok {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	c, err := server.Dial(addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev, ok := p.conns[addr]; ok { // lost the dial race; keep the first
		c.Close()
		return prev, nil
	}
	p.conns[addr] = c
	return c, nil
}

func (p *pool) drop(addr string, c *server.Client) {
	p.mu.Lock()
	if p.conns[addr] == c {
		delete(p.conns, addr)
	}
	p.mu.Unlock()
	c.Close()
}

// do runs one command against addr. On any error other than a missing
// key the cached connection is discarded so the next call redials —
// protocol errors don't require it, but redialing is always safe.
func (p *pool) do(addr string, parts ...string) (string, error) {
	if p.hook != nil {
		if err := p.hook(addr, parts); err != nil {
			return "", err
		}
	}
	c, err := p.get(addr)
	if err != nil {
		return "", err
	}
	reply, err := c.Do(parts...)
	if err != nil && !errors.Is(err, server.ErrNoSuchKey) {
		p.drop(addr, c)
	}
	return reply, err
}

func (p *pool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for addr, c := range p.conns {
		c.Close()
		delete(p.conns, addr)
	}
}
