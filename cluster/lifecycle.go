package cluster

// Cluster-wide keyspace lifecycle: the EXPIRE / PEXPIRE / TTL / PERSIST
// verbs forwarded to every owner of a key, plus the internal CLUSTER
// LEXPIREAT / LDEADLINE / LPERSIST replication verbs they ride on.
//
// The coordinator computes the absolute unix-millisecond deadline ONCE
// (from its own store clock) and forwards that instant — never the
// duration — so every replica arms the exact same expiry no matter how
// long forwarding took or how skewed the arrival order was. Replicas
// then expire independently and deterministically: nothing about expiry
// is ever gossiped, the shared deadline is the whole protocol.

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"exaloglog/server"
)

// ExpireAt sets key's absolute expiry deadline (unix milliseconds) on
// every owner node; it reports whether any owner had the key.
// Re-sending is harmless (arming the same deadline twice is a no-op in
// effect), which makes the stale-map retry safe.
func (n *Node) ExpireAt(key string, deadlineMillis int64) (bool, error) {
	if err := validToken("key", key); err != nil {
		return false, err
	}
	if deadlineMillis <= 0 || deadlineMillis > server.MaxDeadlineMillis {
		return false, fmt.Errorf("cluster: deadline %d out of range", deadlineMillis)
	}
	var existed bool
	err := n.withStaleMapRetry(func(m *Map) error {
		var err error
		existed, err = n.expireAtWith(m, key, deadlineMillis)
		return err
	})
	return existed, err
}

// Expire sets key's deadline ttl from now (this coordinator's store
// clock) on every owner; it reports whether any owner had the key.
func (n *Node) Expire(key string, ttl time.Duration) (bool, error) {
	if ttl <= 0 {
		return false, fmt.Errorf("cluster: TTL %v must be positive", ttl)
	}
	return n.ExpireAt(key, n.store.NowMillis()+ttl.Milliseconds())
}

// expireAtWith is ExpireAt's fan-out against one specific map.
func (n *Node) expireAtWith(m *Map, key string, deadlineMillis int64) (bool, error) {
	owners := m.Owners(key)
	if len(owners) == 0 {
		return false, errors.New("cluster: empty cluster map (node not started?)")
	}
	dl := strconv.FormatInt(deadlineMillis, 10)
	existed := make([]bool, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o Member) {
			defer wg.Done()
			if o.ID == n.id {
				existed[i] = n.store.ExpireAt(key, deadlineMillis)
				return
			}
			reply, err := n.peers.do(o.Addr, "CLUSTER", "LEXPIREAT", key, dl)
			errs[i] = err
			existed[i] = reply == "1"
		}(i, o)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return false, err
	}
	for _, e := range existed {
		if e {
			return true, nil
		}
	}
	return false, nil
}

// Deadline returns key's absolute expiry deadline in unix milliseconds
// (0 = none) as seen cluster-wide: every owner is asked, the key exists
// if any owner holds it, and the largest deadline wins — the same
// max-converges rule rebalance blobs merge under, so a replica that
// briefly lags an EXPIRE does not make TTL flap downward.
func (n *Node) Deadline(key string) (deadlineMillis int64, ok bool, err error) {
	if verr := validToken("key", key); verr != nil {
		return 0, false, verr
	}
	err = n.withStaleMapRetry(func(m *Map) error {
		var werr error
		deadlineMillis, ok, werr = n.deadlineWith(m, key)
		return werr
	})
	return deadlineMillis, ok, err
}

// deadlineWith is Deadline's gather against one specific map.
func (n *Node) deadlineWith(m *Map, key string) (int64, bool, error) {
	owners := m.Owners(key)
	if len(owners) == 0 {
		return 0, false, errors.New("cluster: empty cluster map (node not started?)")
	}
	deadlines := make([]int64, len(owners))
	found := make([]bool, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o Member) {
			defer wg.Done()
			if o.ID == n.id {
				deadlines[i], found[i] = n.store.DeadlineOf(key)
				return
			}
			reply, err := n.peers.do(o.Addr, "CLUSTER", "LDEADLINE", key)
			if errors.Is(err, server.ErrNoSuchKey) {
				return // this owner does not hold the key: a miss, not a failure
			}
			if err != nil {
				errs[i] = err
				return
			}
			deadlines[i], errs[i] = strconv.ParseInt(reply, 10, 64)
			found[i] = errs[i] == nil
		}(i, o)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return 0, false, err
	}
	var deadline int64
	exists := false
	for i := range owners {
		if !found[i] {
			continue
		}
		exists = true
		if deadlines[i] > deadline {
			deadline = deadlines[i]
		}
	}
	return deadline, exists, nil
}

// Persist removes key's expiry deadline on every owner node; it reports
// whether any owner removed one. Clearing an already-cleared deadline
// is a no-op, so the stale-map retry is safe.
func (n *Node) Persist(key string) (bool, error) {
	if err := validToken("key", key); err != nil {
		return false, err
	}
	var removed bool
	err := n.withStaleMapRetry(func(m *Map) error {
		var err error
		removed, err = n.persistWith(m, key)
		return err
	})
	return removed, err
}

// persistWith is Persist's fan-out against one specific map.
func (n *Node) persistWith(m *Map, key string) (bool, error) {
	owners := m.Owners(key)
	if len(owners) == 0 {
		return false, errors.New("cluster: empty cluster map (node not started?)")
	}
	removed := make([]bool, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o Member) {
			defer wg.Done()
			if o.ID == n.id {
				removed[i] = n.store.Persist(key)
				return
			}
			reply, err := n.peers.do(o.Addr, "CLUSTER", "LPERSIST", key)
			errs[i] = err
			removed[i] = reply == "1"
		}(i, o)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return false, err
	}
	for _, r := range removed {
		if r {
			return true, nil
		}
	}
	return false, nil
}

// --- protocol handlers -------------------------------------------------

// handleExpireVerb implements both EXPIRE (scale 1000: seconds) and
// PEXPIRE (scale 1: milliseconds): validate the TTL, compute the
// absolute deadline once on this coordinator, fan it out.
func (n *Node) handleExpireVerb(verb string, scale int64, args []string) string {
	if len(args) != 2 {
		return "-ERR " + verb + " needs a key and a TTL"
	}
	v, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil || v <= 0 || v > server.MaxTTLMillis/scale {
		return "-ERR " + verb + " TTL must be a positive integer"
	}
	if reply, ok := n.moved(args[0]); ok {
		return reply
	}
	existed, err := n.ExpireAt(args[0], n.store.NowMillis()+v*scale)
	if err != nil {
		return "-ERR " + err.Error()
	}
	if existed {
		return ":1"
	}
	return ":0"
}

func (n *Node) handleExpire(args []string) string {
	return n.handleExpireVerb("EXPIRE", 1000, args)
}

func (n *Node) handlePExpire(args []string) string {
	return n.handleExpireVerb("PEXPIRE", 1, args)
}

func (n *Node) handleTTL(args []string) string {
	if len(args) != 1 {
		return "-ERR TTL needs exactly one key"
	}
	if reply, ok := n.moved(args[0]); ok {
		return reply
	}
	dl, ok, err := n.Deadline(args[0])
	if err != nil {
		return "-ERR " + err.Error()
	}
	return server.TTLReply(dl, ok, n.store.NowMillis())
}

func (n *Node) handlePersist(args []string) string {
	if len(args) != 1 {
		return "-ERR PERSIST needs exactly one key"
	}
	if reply, ok := n.moved(args[0]); ok {
		return reply
	}
	removed, err := n.Persist(args[0])
	if err != nil {
		return "-ERR " + err.Error()
	}
	if removed {
		return ":1"
	}
	return ":0"
}
