package cluster

// An in-process multi-node cluster harness with injectable fault hooks
// — partition a node, delay a verb on the wire, crash a node and
// restart it from its snapshot — so membership races that would
// otherwise only surface in production are reproducible, deterministic
// enough to assert on, and run under `go test -race`.
//
// Failure detection is tested under a FAKE CLOCK: gossip time is a
// logical round counter advanced only by harness.tick, which gives
// every running node one Gossip turn per round in sorted-ID order.
// Nothing in the detector reads a wall clock, so a chaos test that
// says "crash, then 5 rounds pass" observes exactly the same suspicion
// and eviction sequence on every run — no sleeps, no flakes.

import (
	"fmt"
	"io"
	"net"
	"os"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exaloglog/internal/core"
	"exaloglog/server"
)

type harness struct {
	t        *testing.T
	replicas int
	dir      string
	xfer     *TransferConfig  // non-nil: applied to every started node
	clock    func() time.Time // non-nil: injected store clock (expiry tests)

	mu          sync.Mutex
	nodes       map[string]*Node         // running nodes by ID
	addrs       map[string]string        // id → last listen address (survives a crash)
	idByAddr    map[string]string        // reverse index for symmetric partitions
	partitioned map[string]bool          // node IDs currently cut off
	delays      map[string]time.Duration // CLUSTER subcommand → outbound delay
	gates       map[string]chan struct{} // "<id> <VERB>" → outbound blocks until closed
	intercept   func(id, addr string, parts []string) error
}

// newHarness boots n nodes (n1..nN, n1 the seed) with the given
// replica factor, each with a snapshot path and a fault hook.
func newHarness(t *testing.T, n, replicas int) *harness {
	t.Helper()
	return newHarnessCfg(t, n, replicas, nil)
}

// newHarnessCfg is newHarness with a TransferConfig applied to every
// node it starts — how the transfer chaos tests pin small frames,
// narrow windows and short timeouts without changing the defaults the
// other tests exercise.
func newHarnessCfg(t *testing.T, n, replicas int, xfer *TransferConfig) *harness {
	t.Helper()
	return newHarnessClock(t, n, replicas, xfer, nil)
}

// newHarnessClock is newHarnessCfg with an injected store clock: every
// node it starts (including crash-restarts) judges expiry deadlines
// against the given time source instead of the wall clock, so TTL chaos
// tests advance time explicitly and deterministically.
func newHarnessClock(t *testing.T, n, replicas int, xfer *TransferConfig, clock func() time.Time) *harness {
	t.Helper()
	h := &harness{
		t:           t,
		replicas:    replicas,
		dir:         t.TempDir(),
		xfer:        xfer,
		clock:       clock,
		nodes:       make(map[string]*Node),
		addrs:       make(map[string]string),
		idByAddr:    make(map[string]string),
		partitioned: make(map[string]bool),
		delays:      make(map[string]time.Duration),
		gates:       make(map[string]chan struct{}),
	}
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("n%d", i)
		node := h.start(id, "127.0.0.1:0")
		if i > 1 {
			if err := node.Join(h.addr("n1")); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Cleanup(h.closeAll)
	return h
}

// hookFor builds node id's outbound fault hook: traffic is dropped
// when either endpoint is partitioned, and CLUSTER subcommands with a
// configured delay sleep before being sent.
func (h *harness) hookFor(id string) func(addr string, parts []string) error {
	return func(addr string, parts []string) error {
		h.mu.Lock()
		blocked := h.partitioned[id] || h.partitioned[h.idByAddr[addr]]
		intercept := h.intercept
		var delay time.Duration
		var gate chan struct{}
		if len(parts) >= 2 && strings.EqualFold(parts[0], "CLUSTER") {
			delay = h.delays[strings.ToUpper(parts[1])]
			gate = h.gates[id+" "+strings.ToUpper(parts[1])]
		}
		h.mu.Unlock()
		if blocked {
			return fmt.Errorf("harness: network partition between %s and %s", id, addr)
		}
		if gate != nil {
			<-gate // parked until the test releases the gate
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if intercept != nil {
			return intercept(id, addr, parts)
		}
		return nil
	}
}

// setIntercept installs a per-message interceptor consulted (after the
// partition/gate/delay faults) with every outbound command of every
// node — the surgical fault: a test can fail or park exactly the Nth
// transfer frame, something the verb-granular faults cannot express.
// nil clears it.
func (h *harness) setIntercept(f func(id, addr string, parts []string) error) {
	h.mu.Lock()
	h.intercept = f
	h.mu.Unlock()
}

// stall replaces node id with a black hole: the node is crashed and its
// address re-bound to a listener that accepts connections and reads
// forever without ever replying — the pathological peer that, before
// I/O deadlines, hung every forward and rebalance touching it. Returns
// the stalled address.
func (h *harness) stall(id string) string {
	h.t.Helper()
	h.crash(id)
	addr := h.addr(id)
	var ln net.Listener
	var err error
	// The just-closed listener's port can take a moment to rebind.
	for attempt := 0; attempt < 50; attempt++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		h.t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(io.Discard, c) // consume everything, answer nothing
			}(c)
		}
	}()
	h.t.Cleanup(func() { ln.Close() })
	return addr
}

// gate parks every outbound CLUSTER <verb> from node id until the
// returned release is called — an ordering primitive: unlike delay it
// enforces a happens-before edge instead of racing a timer, which is
// what keeps interleaving tests deterministic.
func (h *harness) gate(id, verb string) (release func()) {
	ch := make(chan struct{})
	key := id + " " + strings.ToUpper(verb)
	h.mu.Lock()
	h.gates[key] = ch
	h.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.gates, key)
			h.mu.Unlock()
			close(ch)
		})
	}
}

// waitFor polls cond until it holds, failing the test after deadline.
// The poll is synchronization only — the asserted ordering comes from
// gates, not from how fast this loop spins.
func (h *harness) waitFor(deadline time.Duration, what string, cond func() bool) {
	h.t.Helper()
	end := time.Now().Add(deadline)
	for !cond() {
		if time.Now().After(end) {
			h.t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// start boots node id, loading its snapshot when one exists. listen is
// "127.0.0.1:0" for a fresh port or a recorded address on restart.
func (h *harness) start(id, listen string) *Node {
	h.t.Helper()
	n, err := NewNode(id, testConfig(), h.replicas)
	if err != nil {
		h.t.Fatal(err)
	}
	if h.clock != nil {
		// Before LoadFile: a snapshot load judges expired-on-disk records
		// against the store clock, which must already be the fake one.
		n.Store().SetClock(h.clock)
	}
	snap := h.snapPath(id)
	if _, err := os.Stat(snap); err == nil {
		if err := n.Store().LoadFile(snap); err != nil {
			h.t.Fatal(err)
		}
	}
	n.SetSnapshotPath(snap)
	n.setFaultHook(h.hookFor(id))
	n.SetGossipConfig(GossipConfig{Fanout: 2, SuspectAfter: testSuspectAfter})
	if h.xfer != nil {
		n.SetTransferConfig(*h.xfer)
	}
	// A just-crashed listener's port can take a moment to rebind.
	startErr := n.Start(listen)
	for attempt := 0; startErr != nil && attempt < 50; attempt++ {
		time.Sleep(20 * time.Millisecond)
		startErr = n.Start(listen)
	}
	if startErr != nil {
		h.t.Fatal(startErr)
	}
	h.mu.Lock()
	h.nodes[id] = n
	h.addrs[id] = n.Addr()
	h.idByAddr[n.Addr()] = id
	h.mu.Unlock()
	return n
}

// crash kills node id WITHOUT a final snapshot — whatever save wrote
// earlier is all a restart gets, like a real power loss.
func (h *harness) crash(id string) {
	h.mu.Lock()
	n := h.nodes[id]
	delete(h.nodes, id)
	h.mu.Unlock()
	if n != nil {
		n.Close()
	}
}

// save snapshots node id's store (sketches + cluster map), as elld's
// SIGTERM/SAVE path would.
func (h *harness) save(id string) {
	h.t.Helper()
	if err := h.node(id).Store().SaveFile(h.snapPath(id)); err != nil {
		h.t.Fatal(err)
	}
}

// restart brings a crashed node back on its old address from its last
// snapshot and lets it self-heal into the cluster — no seed address.
func (h *harness) restart(id string) *Node {
	h.t.Helper()
	h.mu.Lock()
	listen := h.addrs[id]
	h.mu.Unlock()
	n := h.start(id, listen)
	if err := n.Rejoin(); err != nil {
		h.t.Fatalf("rejoin %s: %v", id, err)
	}
	return n
}

// partition cuts node id off from all peer traffic (both directions)
// or reconnects it.
func (h *harness) partition(id string, cut bool) {
	h.mu.Lock()
	h.partitioned[id] = cut
	h.mu.Unlock()
}

// delay makes every node's outbound CLUSTER <verb> messages sleep d
// before sending (0 clears it).
func (h *harness) delay(verb string, d time.Duration) {
	h.mu.Lock()
	h.delays[strings.ToUpper(verb)] = d
	h.mu.Unlock()
}

// testSuspectAfter is the harness-wide suspicion window in gossip
// rounds: small enough to keep chaos tests fast, large enough that a
// single missed exchange cannot trip the detector.
const testSuspectAfter = 3

// tick is the fake clock: advance gossip time by `rounds` logical
// rounds, each giving every running node one Gossip turn in sorted-ID
// order. Returns the auto-evictions that occurred, as evicted-id →
// evicting coordinator. Deterministic — the only concurrency inside a
// round is each node's own fan-out, which the caller's turn blocks on.
func (h *harness) tick(rounds int) map[string]string {
	h.t.Helper()
	evicted := make(map[string]string)
	for r := 0; r < rounds; r++ {
		for _, n := range h.running() {
			for _, id := range n.Gossip() {
				evicted[id] = n.ID()
			}
		}
	}
	return evicted
}

func (h *harness) snapPath(id string) string { return h.dir + "/" + id + ".elss" }

func (h *harness) node(id string) *Node {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nodes[id]
}

func (h *harness) addr(id string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.addrs[id]
}

// running returns all live nodes sorted by ID.
func (h *harness) running() []*Node {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Node, 0, len(h.nodes))
	for _, n := range h.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// do runs one admin command against node id on a fresh operator
// connection (operator traffic bypasses the simulated partitions).
func (h *harness) do(id string, parts ...string) (string, error) {
	c, err := server.Dial(h.addr(id))
	if err != nil {
		return "", err
	}
	defer c.Close()
	return c.Do(parts...)
}

// converge drives Sync rounds until every running node holds a
// byte-identical map, failing the test after deadline. Returns the
// converged encoding.
func (h *harness) converge(deadline time.Duration) string {
	h.t.Helper()
	end := time.Now().Add(deadline)
	for {
		for _, n := range h.running() {
			n.Sync() // best-effort: unreachable peers just miss this round
		}
		encodings := make(map[string]bool)
		var enc string
		for _, n := range h.running() {
			enc = n.Map().Encode()
			encodings[enc] = true
		}
		if len(encodings) == 1 {
			return enc
		}
		if time.Now().After(end) {
			for _, n := range h.running() {
				h.t.Logf("  %s holds %s", n.ID(), n.Map().Encode())
			}
			h.t.Fatal("cluster maps failed to converge")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (h *harness) closeAll() {
	for _, n := range h.running() {
		n.Close()
	}
}

// --- tests -------------------------------------------------------------

// TestChaosConcurrentMembership: goroutines hammer JOIN/LEAVE through
// different coordinators (with SETMAP broadcasts artificially delayed
// so they overlap) while writers keep adding elements. Afterwards
// every node must hold a byte-identical map, and — because ExaLogLog
// merging is lossless — the cluster-wide count of every key must
// exactly equal a golden reference sketch fed the same elements; in
// particular it can never underestimate the exact distinct count.
func TestChaosConcurrentMembership(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness skipped in -short")
	}
	h := newHarness(t, 3, 2)
	h.delay("SETMAP", 2*time.Millisecond)
	defer h.delay("SETMAP", 0)

	churners := []string{"x1", "x2"}
	for _, id := range churners {
		h.start(id, "127.0.0.1:0")
	}
	coords := []string{"n1", "n2", "n3"}

	const keys = 24
	keyName := func(k int) string { return fmt.Sprintf("chaos-%d", k) }
	ref := make([]*core.Sketch, keys)
	exact := make([]map[string]bool, keys)
	for k := range ref {
		ref[k] = core.MustNew(testConfig())
		exact[k] = make(map[string]bool)
	}
	var refMu sync.Mutex

	var wg sync.WaitGroup
	for ci, id := range churners {
		wg.Add(1)
		go func(ci int, id string) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				// Errors are part of the chaos: epoch fencing may
				// refuse a claim mid-race; the next round retries.
				h.do(coords[(ci+round)%len(coords)], "CLUSTER", "JOIN", id, h.addr(id))
				h.do(coords[(ci+round+1)%len(coords)], "CLUSTER", "LEAVE", id)
			}
		}(ci, id)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				k := (w*120 + i) % keys
				el := fmt.Sprintf("el-%d-%d", w, i)
				node := h.node(coords[(w+i)%len(coords)])
				var err error
				for attempt := 0; attempt < 200; attempt++ {
					if _, err = node.Add(keyName(k), el); err == nil {
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
				if err != nil {
					t.Errorf("write %s→%s never succeeded: %v", el, keyName(k), err)
					continue
				}
				refMu.Lock()
				ref[k].AddString(el)
				exact[k][el] = true
				refMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	h.delay("SETMAP", 0)

	enc := h.converge(30 * time.Second)
	t.Logf("converged on %s", enc)

	allKeys := make([]string, keys)
	totalExact := 0
	for k := 0; k < keys; k++ {
		allKeys[k] = keyName(k)
		totalExact += len(exact[k])
	}
	for k := 0; k < keys; k++ {
		want := ref[k].Estimate()
		for _, n := range h.running() {
			got, err := n.Count(keyName(k))
			if err != nil {
				t.Fatalf("%s: count %s: %v", n.ID(), keyName(k), err)
			}
			if got != want {
				t.Errorf("%s: count %s = %v, want %v (exact %d) — writes lost or duplicated in churn",
					n.ID(), keyName(k), got, want, len(exact[k]))
			}
		}
	}
	union, err := h.node("n1").Count(allKeys...)
	if err != nil {
		t.Fatal(err)
	}
	if union < 0.9*float64(totalExact) {
		t.Errorf("union count %v underestimates the exact %d distinct writes", union, totalExact)
	}
}

// TestCrashRestartSelfHeals: a node is killed mid-rebalance (a join is
// in flight and its ABSORB pushes are delayed), restarted from its
// last snapshot with NO seed address, and must self-heal into the
// current epoch's map with every key still countable.
func TestCrashRestartSelfHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-restart harness skipped in -short")
	}
	h := newHarness(t, 3, 2)

	const keys = 40
	ref := make([]float64, keys)
	keyName := func(k int) string { return fmt.Sprintf("crash-%d", k) }
	for k := 0; k < keys; k++ {
		for e := 0; e < 5; e++ {
			if _, err := h.node("n1").Add(keyName(k), fmt.Sprintf("el-%d-%d", k, e)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Periodic snapshot point: n3 persists its sketches AND the
	// current 3-node map.
	h.save("n3")
	epochAtSave := h.node("n3").Map().Epoch
	// Writes after the snapshot exist on n3 only in memory — their
	// replica on the other owner must carry them across the crash.
	for k := 0; k < keys; k++ {
		if _, err := h.node("n2").Add(keyName(k), fmt.Sprintf("late-%d", k)); err != nil {
			t.Fatal(err)
		}
		ref[k] = mustCount(t, h.node("n1"), keyName(k))
	}

	// A join starts; its rebalance traffic is slowed so n3 dies while
	// the membership change is still propagating.
	h.start("x1", "127.0.0.1:0")
	// Slow both rebalance transports — the streams and the per-key path
	// they degrade to — so n3 dies while data is still moving.
	h.delay("ABSORB", 5*time.Millisecond)
	h.delay("XFER", 5*time.Millisecond)
	joinDone := make(chan struct{})
	go func() {
		defer close(joinDone)
		// The broadcast to the crashing n3 may fail — that is the point.
		h.do("n1", "CLUSTER", "JOIN", "x1", h.addr("x1"))
	}()
	time.Sleep(10 * time.Millisecond)
	h.crash("n3")
	<-joinDone
	h.delay("ABSORB", 0)
	h.delay("XFER", 0)

	// The survivors carry on and converge without n3.
	h.converge(15 * time.Second)
	if got := h.node("n1").Map().Len(); got != 4 {
		t.Fatalf("survivors' map has %d members, want 4 (n1 n2 n3 x1)", got)
	}

	// Restart n3 from its snapshot: no -join flag, just the persisted
	// map. It must land on the cluster's current epoch.
	n3 := h.restart("n3")
	enc := h.converge(15 * time.Second)
	if n3.Map().Encode() != enc {
		t.Fatalf("restarted node map %s diverges from cluster %s", n3.Map().Encode(), enc)
	}
	if n3.Map().Epoch <= epochAtSave {
		t.Errorf("restarted node stuck at snapshot epoch %d (cluster moved past %d)", n3.Map().Epoch, epochAtSave)
	}
	if !n3.Map().Has("x1") {
		t.Error("restarted node never learned about the node that joined while it was down")
	}
	// No lost keys: every count matches its pre-crash value, from
	// every node including the restarted one.
	for k := 0; k < keys; k++ {
		for _, n := range h.running() {
			got := mustCount(t, n, keyName(k))
			if got != ref[k] {
				t.Errorf("%s: count %s = %v, want %v after crash-restart", n.ID(), keyName(k), got, ref[k])
			}
		}
	}
}

// TestMinorityCoordinatorCannotMutate: with a majority of members
// unreachable, a JOIN through the minority side fails its epoch claim
// and changes nothing — the fencing that prevents split-brain
// membership. Healing the partition makes the same JOIN succeed.
func TestMinorityCoordinatorCannotMutate(t *testing.T) {
	h := newHarness(t, 3, 2)
	h.start("x1", "127.0.0.1:0")
	h.partition("n2", true)
	h.partition("n3", true)

	before := h.node("n1").Map().Encode()
	if reply, err := h.do("n1", "CLUSTER", "JOIN", "x1", h.addr("x1")); err == nil {
		t.Fatalf("JOIN through a minority coordinator succeeded: %q", reply)
	}
	if got := h.node("n1").Map().Encode(); got != before {
		t.Errorf("failed claim still mutated the map: %s → %s", before, got)
	}

	h.partition("n2", false)
	h.partition("n3", false)
	if _, err := h.do("n1", "CLUSTER", "JOIN", "x1", h.addr("x1")); err != nil {
		t.Fatalf("JOIN after heal: %v", err)
	}
	enc := h.converge(10 * time.Second)
	if !strings.Contains(enc, "x1=") {
		t.Errorf("converged map %s lacks the joined node", enc)
	}
}

// TestPartitionedNodeMissesBroadcastThenHeals: a node cut off during a
// membership change misses the SETMAP broadcast (the majority side
// proceeds); when the partition heals, Sync pulls it onto the newest
// map and every count survives.
func TestPartitionedNodeMissesBroadcastThenHeals(t *testing.T) {
	h := newHarness(t, 3, 2)
	const keys = 20
	keyName := func(k int) string { return fmt.Sprintf("part-%d", k) }
	ref := make([]float64, keys)
	for k := 0; k < keys; k++ {
		for e := 0; e < 3; e++ {
			if _, err := h.node("n2").Add(keyName(k), fmt.Sprintf("el-%d-%d", k, e)); err != nil {
				t.Fatal(err)
			}
		}
		ref[k] = mustCount(t, h.node("n1"), keyName(k))
	}

	h.partition("n3", true)
	h.start("x1", "127.0.0.1:0")
	// The claim reaches quorum (n1+n2) so the join lands on the
	// majority; the broadcast to n3 fails, surfacing as an error.
	h.do("n1", "CLUSTER", "JOIN", "x1", h.addr("x1"))
	if got := h.node("n1").Map().Len(); got != 4 {
		t.Fatalf("majority side map has %d members, want 4", got)
	}
	if got := h.node("n3").Map().Len(); got != 3 {
		t.Fatalf("partitioned node saw the broadcast (map has %d members)", got)
	}

	h.partition("n3", false)
	enc := h.converge(10 * time.Second)
	if h.node("n3").Map().Encode() != enc {
		t.Error("healed node still diverges")
	}
	for k := 0; k < keys; k++ {
		for _, n := range h.running() {
			if got := mustCount(t, n, keyName(k)); got != ref[k] {
				t.Errorf("%s: count %s = %v, want %v after heal", n.ID(), keyName(k), got, ref[k])
			}
		}
	}
}

// TestRestartOnNewAddressReannounces: a node that comes back on a
// different port must announce the new address itself — including the
// 2-node case where no peer can coordinate the join (the peer's epoch
// claim targets the dead recorded address and can never reach quorum),
// so Rejoin has to fall back to coordinating locally.
func TestRestartOnNewAddressReannounces(t *testing.T) {
	h := newHarness(t, 2, 2)
	if _, err := h.node("n1").Add("k", "a", "b"); err != nil {
		t.Fatal(err)
	}
	h.save("n2")
	oldAddr := h.addr("n2")
	h.crash("n2")
	n2 := h.start("n2", "127.0.0.1:0") // the old port is "taken"
	if n2.Addr() == oldAddr {
		t.Skip("OS handed back the same ephemeral port")
	}
	if err := n2.Rejoin(); err != nil {
		t.Fatalf("rejoin on a new address: %v", err)
	}
	enc := h.converge(10 * time.Second)
	if !strings.Contains(enc, "n2="+n2.Addr()) {
		t.Errorf("converged map %s does not record n2's new address %s", enc, n2.Addr())
	}
	for _, n := range h.running() {
		if got := mustCount(t, n, "k"); int64(got+0.5) != 2 {
			t.Errorf("%s: count k = %v after re-address, want ≈2", n.ID(), got)
		}
	}
}

// TestLeaveAfterBeingRemovedStillDrains: a node that was LEAVEd by an
// operator while partitioned still holds its data and believes it is a
// member; its own Leave must drain that data to the owners rather than
// report instant success because the map no longer lists it.
func TestLeaveAfterBeingRemovedStillDrains(t *testing.T) {
	h := newHarness(t, 3, 2)
	const keys = 15
	keyName := func(k int) string { return fmt.Sprintf("dr-%d", k) }
	ref := make([]float64, keys)
	for k := 0; k < keys; k++ {
		for e := 0; e < 4; e++ {
			if _, err := h.node("n3").Add(keyName(k), fmt.Sprintf("el-%d-%d", k, e)); err != nil {
				t.Fatal(err)
			}
		}
		ref[k] = mustCount(t, h.node("n1"), keyName(k))
	}
	h.partition("n3", true)
	// The LEAVE lands on the majority; the drain notification to n3 is
	// lost in the partition, so n3 keeps its sketches and a stale map.
	h.do("n1", "CLUSTER", "LEAVE", "n3")
	if h.node("n1").Map().Has("n3") {
		t.Fatal("majority side still lists n3")
	}
	if h.node("n3").Store().Len() == 0 {
		t.Fatal("partitioned n3 drained — the partition hook is leaky")
	}
	h.partition("n3", false)
	// n3's own graceful Leave: its epoch claim adopts the majority's
	// n3-less map from the vote replies, and the retry path must then
	// DRAIN, not declare victory because the map already excludes it.
	if err := h.node("n3").Leave(); err != nil {
		t.Fatalf("leave after being removed: %v", err)
	}
	if got := h.node("n3").Store().Len(); got != 0 {
		t.Errorf("left node still holds %d sketches, want 0", got)
	}
	for k := 0; k < keys; k++ {
		for _, id := range []string{"n1", "n2"} {
			if got := mustCount(t, h.node(id), keyName(k)); got != ref[k] {
				t.Errorf("%s: count %s = %v, want %v after drain", id, keyName(k), got, ref[k])
			}
		}
	}
}

// TestStaleSetmapIgnored: SETMAP applies the (Epoch, Version,
// Coordinator) order — a delayed stale map arriving after a newer one
// is a no-op, and equal-epoch rival maps resolve to the same winner on
// every node, so out-of-order delivery cannot roll membership back.
func TestStaleSetmapIgnored(t *testing.T) {
	h := newHarness(t, 2, 1)
	cur := h.node("n2").Map()

	older := cur.withNode("ghost", "127.0.0.1:1", cur.Epoch+1, "n1")
	newer := older.withoutNode("ghost", cur.Epoch+2, "n1")
	setmap := func(m *Map) {
		t.Helper()
		if _, err := h.do("n2", append([]string{"CLUSTER", "SETMAP"}, strings.Fields(m.Encode())...)...); err != nil {
			t.Fatal(err)
		}
	}
	setmap(newer) // the later mutation arrives first...
	setmap(older) // ...then the delayed stale one
	if got := h.node("n2").Map().Encode(); got != newer.Encode() {
		t.Fatalf("stale SETMAP rolled the map back: %s, want %s", got, newer.Encode())
	}

	// Equal-epoch rivals (only possible when a claim couldn't reach
	// quorum): the coordinator tie-break picks one winner, and
	// re-delivering the loser changes nothing.
	rivalA := newer.withNode("a", "127.0.0.1:1", newer.Epoch+1, "n1")
	rivalB := newer.withNode("b", "127.0.0.1:1", newer.Epoch+1, "n9")
	setmap(rivalA)
	setmap(rivalB) // n9 > n1: B wins
	setmap(rivalA) // loser re-delivered: still B
	if got := h.node("n2").Map().Encode(); got != rivalB.Encode() {
		t.Fatalf("equal-epoch tie not deterministic: %s, want %s", got, rivalB.Encode())
	}
}

// TestDeltaRebalanceMessageCount: a join must cost ABSORB messages
// proportional to the keys whose owner set changed, never the old
// O(keys×replicas) full re-push.
func TestDeltaRebalanceMessageCount(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-key rebalance accounting skipped in -short")
	}
	nodes := startCluster(t, 3, 2)
	const total = 1000
	keyName := func(k int) string { return fmt.Sprintf("delta-%d", k) }
	for k := 0; k < total; k++ {
		if _, err := nodes[0].Add(keyName(k), "x"); err != nil {
			t.Fatal(err)
		}
	}
	oldMap := nodes[0].Map()
	var before uint64
	for _, n := range nodes {
		before += n.RebalancePushes()
	}
	xferBefore := sumTransferStats(nodes)

	joiner, err := NewNode("n4", testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.Close() })
	if err := joiner.Join(nodes[0].Addr()); err != nil {
		t.Fatal(err)
	}
	newMap := nodes[0].Map()

	moved := 0
	for k := 0; k < total; k++ {
		oldIDs := slices.Clone(oldMap.ownerIDs(keyName(k)))
		newIDs := slices.Clone(newMap.ownerIDs(keyName(k)))
		slices.Sort(oldIDs)
		slices.Sort(newIDs)
		if !slices.Equal(oldIDs, newIDs) {
			moved++
		}
	}
	var after uint64
	for _, n := range append(slices.Clone(nodes), joiner) {
		after += n.RebalancePushes()
	}
	pushes := int(after - before)

	if moved == 0 || moved == total {
		t.Fatalf("owner-set diff degenerate: %d of %d keys moved", moved, total)
	}
	t.Logf("join moved %d/%d keys at a cost of %d ABSORB pushes", moved, total, pushes)
	// Each moved key is pushed by each prior holder to each owner it
	// gained — ≈ replicas × 1. Allow headroom, but stay far under the
	// old cost of re-pushing every key to every remote owner.
	if pushes > 3*moved {
		t.Errorf("join cost %d pushes for %d moved keys — rebalance is not delta-proportional", pushes, moved)
	}
	if pushes >= total*2 {
		t.Errorf("join re-pushed the whole store (%d pushes for %d keys)", pushes, total)
	}
	// The framed path: those pushes must have traveled as O(keys/batch)
	// frames, not one message per (key, owner) pair, with nothing
	// degrading to the per-key fallback on a healthy cluster.
	xferAfter := sumTransferStats(append(slices.Clone(nodes), joiner))
	frames := int(xferAfter.FramesSent - xferBefore.FramesSent)
	fallbacks := int(xferAfter.FallbackKeys - xferBefore.FallbackKeys)
	t.Logf("the %d pushes traveled as %d frames (%d fallback keys)", pushes, frames, fallbacks)
	if frames == 0 {
		t.Error("join rebalance sent no transfer frames — the streaming path is not in use")
	}
	if frames*8 > pushes {
		t.Errorf("join cost %d frames for %d pushes — frames are not batching O(keys/batch)", frames, pushes)
	}
	if fallbacks != 0 {
		t.Errorf("%d keys degraded to per-key ABSORB on a healthy cluster", fallbacks)
	}
	// The delta still replicated everything: spot-check counts.
	for k := 0; k < total; k += 101 {
		if got := mustCount(t, joiner, keyName(k)); int64(got+0.5) != 1 {
			t.Errorf("count %s = %v after delta rebalance, want ≈1", keyName(k), got)
		}
	}
}

// TestGossipAutoEvictsCrashedNode: a crashed node is suspected after
// SuspectAfter silent gossip rounds and auto-evicted once a quorum of
// members agrees — an epoch-fenced LEAVE no operator had to issue —
// and the survivors' maps converge with every count intact. Entirely
// fake-clock driven: the failure timeline is measured in rounds, not
// seconds.
func TestGossipAutoEvictsCrashedNode(t *testing.T) {
	h := newHarness(t, 3, 2)
	const keys = 20
	keyName := func(k int) string { return fmt.Sprintf("ev-%d", k) }
	ref := make([]float64, keys)
	for k := 0; k < keys; k++ {
		for e := 0; e < 4; e++ {
			if _, err := h.node("n1").Add(keyName(k), fmt.Sprintf("el-%d-%d", k, e)); err != nil {
				t.Fatal(err)
			}
		}
		ref[k] = mustCount(t, h.node("n1"), keyName(k))
	}

	h.tick(2) // healthy baseline: detector states exist, heartbeats flow
	h.crash("n3")

	// Inside the suspicion window nothing may happen: a detector that
	// evicts early would tear down nodes on any hiccup.
	if evs := h.tick(testSuspectAfter - 1); len(evs) != 0 {
		t.Fatalf("evicted %v before the suspicion window elapsed", evs)
	}
	for _, n := range h.running() {
		if !n.Map().Has("n3") {
			t.Fatalf("%s dropped n3 before the suspicion window elapsed", n.ID())
		}
	}

	// Past the window: suspicion forms, the bits cross via push-pull,
	// quorum (2 of 3) agrees, and some survivor coordinates the LEAVE.
	evs := h.tick(testSuspectAfter + 3)
	if evs["n3"] == "" {
		t.Fatal("crashed node was never auto-evicted")
	}
	enc := h.converge(10 * time.Second)
	if strings.Contains(enc, "n3=") {
		t.Fatalf("converged map %s still lists the crashed node", enc)
	}
	for k := 0; k < keys; k++ {
		for _, n := range h.running() {
			if got := mustCount(t, n, keyName(k)); got != ref[k] {
				t.Errorf("%s: count %s = %v, want %v after auto-evict", n.ID(), keyName(k), got, ref[k])
			}
		}
	}
}

// TestGossipMinorityCannotEvict: a node partitioned onto the minority
// side suspects everyone else but can never reach suspicion quorum
// (it cannot hear the other suspecters), so it never even attempts an
// eviction — and the epoch fence would refuse it if it did. The
// majority side meanwhile evicts the partitioned node; when the
// partition heals, the false-positive victim adopts the majority map,
// drains its keys to the current owners, and no data is lost.
func TestGossipMinorityCannotEvict(t *testing.T) {
	h := newHarness(t, 3, 2)
	const keys = 15
	keyName := func(k int) string { return fmt.Sprintf("mi-%d", k) }
	ref := make([]float64, keys)
	for k := 0; k < keys; k++ {
		for e := 0; e < 3; e++ {
			if _, err := h.node("n3").Add(keyName(k), fmt.Sprintf("el-%d-%d", k, e)); err != nil {
				t.Fatal(err)
			}
		}
		ref[k] = mustCount(t, h.node("n1"), keyName(k))
	}

	h.tick(2)
	h.partition("n3", true)
	beforeEnc := h.node("n3").Map().Encode()
	evs := h.tick(testSuspectAfter + 5)

	// The minority node: full of suspicion, empty of authority.
	for id, by := range evs {
		if by == "n3" {
			t.Fatalf("minority node evicted %s", id)
		}
	}
	if got := h.node("n3").Map().Encode(); got != beforeEnc {
		t.Fatalf("minority node mutated membership while partitioned: %s → %s", beforeEnc, got)
	}
	_, health := h.node("n3").Health()
	for _, mh := range health {
		if !mh.Self && !mh.Suspect {
			t.Errorf("partitioned n3 does not suspect silent peer %s", mh.ID)
		}
	}

	// The majority side evicted the silent n3.
	if evs["n3"] == "" {
		t.Fatal("majority side never evicted the partitioned node")
	}
	for _, id := range []string{"n1", "n2"} {
		if h.node(id).Map().Has("n3") {
			t.Fatalf("%s still lists the evicted node", id)
		}
	}

	// Heal: gossip tells n3 a newer map exists; the next rounds Sync it
	// onto the n3-less map and drain its sketches to the owners.
	h.partition("n3", false)
	h.tick(3)
	if h.node("n3").Map().Has("n3") {
		t.Error("healed false-positive victim still believes it is a member")
	}
	if got := h.node("n3").Store().Len(); got != 0 {
		t.Errorf("healed victim still holds %d sketches, want 0 (drained)", got)
	}
	for k := 0; k < keys; k++ {
		for _, id := range []string{"n1", "n2"} {
			if got := mustCount(t, h.node(id), keyName(k)); got != ref[k] {
				t.Errorf("%s: count %s = %v, want %v after heal", id, keyName(k), got, ref[k])
			}
		}
	}
}

// TestGossipEvictedNodeRejoinsCleanly: a node crashes, is auto-evicted,
// then restarts from its snapshot and re-enters through the normal
// JOIN path — which tells it it was evicted — and gets its keys back
// via the ordinary delta rebalance, converging byte-identically with
// the survivors.
func TestGossipEvictedNodeRejoinsCleanly(t *testing.T) {
	h := newHarness(t, 3, 2)
	const keys = 25
	keyName := func(k int) string { return fmt.Sprintf("rj-%d", k) }
	ref := make([]float64, keys)
	for k := 0; k < keys; k++ {
		for e := 0; e < 4; e++ {
			if _, err := h.node("n2").Add(keyName(k), fmt.Sprintf("el-%d-%d", k, e)); err != nil {
				t.Fatal(err)
			}
		}
		ref[k] = mustCount(t, h.node("n1"), keyName(k))
	}

	h.tick(2)
	h.save("n3") // last periodic snapshot before the crash
	h.crash("n3")
	evs := h.tick(testSuspectAfter + 4)
	evictor := evs["n3"]
	if evictor == "" {
		t.Fatal("crashed node was never auto-evicted")
	}
	h.converge(10 * time.Second)

	// Restart from the snapshot. Join through the evicting coordinator:
	// the JOIN succeeds AND carries the eviction feedback.
	n3 := h.start("n3", h.addr("n3"))
	reply, err := h.do(evictor, "CLUSTER", "JOIN", "n3", n3.Addr())
	if err != nil {
		t.Fatalf("rejoin after eviction: %v", err)
	}
	if !strings.HasPrefix(reply, "OK") || !strings.Contains(reply, "rejoined-after-eviction=e") {
		t.Errorf("rejoin reply %q does not tell the node it was evicted", reply)
	}
	if err := n3.Rejoin(); err != nil { // pull the map, rebalance local state
		t.Fatalf("rejoin: %v", err)
	}

	enc := h.converge(10 * time.Second)
	if n3.Map().Encode() != enc {
		t.Fatalf("rejoined node map %s diverges from cluster %s", n3.Map().Encode(), enc)
	}
	if n3.Store().Len() == 0 {
		t.Error("rejoined node received no data back from rebalance")
	}
	for k := 0; k < keys; k++ {
		for _, n := range h.running() {
			if got := mustCount(t, n, keyName(k)); got != ref[k] {
				t.Errorf("%s: count %s = %v, want %v after rejoin", n.ID(), keyName(k), got, ref[k])
			}
		}
	}
	// The feedback is delivered exactly once.
	if reply, err := h.do(evictor, "CLUSTER", "JOIN", "n3", n3.Addr()); err != nil {
		t.Fatal(err)
	} else if strings.Contains(reply, "rejoined-after-eviction") {
		t.Errorf("idempotent re-join reply %q repeats the consumed eviction note", reply)
	}
}

// TestEvictionRecordGossipsToAllMembers: the rejoined-after-eviction
// record is no longer a private note of the evicting coordinator — it
// piggybacks on gossip digests, so after a few rounds EVERY member
// holds it and whichever member coordinates the rejoin delivers the
// feedback. Once the node is back on the map the records are
// garbage-collected everywhere, so no member re-delivers stale
// feedback later. Fully fake-clock driven.
func TestEvictionRecordGossipsToAllMembers(t *testing.T) {
	h := newHarness(t, 3, 2)
	for k := 0; k < 10; k++ {
		if _, err := h.node("n1").Add(fmt.Sprintf("er-%d", k), "x", "y"); err != nil {
			t.Fatal(err)
		}
	}
	h.tick(2)
	h.save("n3")
	h.crash("n3")
	evs := h.tick(testSuspectAfter + 4)
	evictor := evs["n3"]
	if evictor == "" {
		t.Fatal("crashed node was never auto-evicted")
	}
	h.converge(10 * time.Second)

	// A few more rounds spread the record to the non-evicting survivor.
	h.tick(3)
	epoch := uint64(0)
	for _, n := range h.running() {
		n.gsp.mu.Lock()
		e, ok := n.gsp.evictedAt["n3"]
		n.gsp.mu.Unlock()
		if !ok {
			t.Fatalf("%s never learned the eviction record via gossip", n.ID())
		}
		if epoch == 0 {
			epoch = e
		} else if e != epoch {
			t.Fatalf("%s holds eviction epoch %d, others %d", n.ID(), e, epoch)
		}
	}

	// Rejoin through a member that did NOT coordinate the eviction: it
	// must deliver the feedback all the same.
	deliverer := ""
	for _, n := range h.running() {
		if n.ID() != evictor {
			deliverer = n.ID()
			break
		}
	}
	n3 := h.start("n3", h.addr("n3"))
	reply, err := h.do(deliverer, "CLUSTER", "JOIN", "n3", n3.Addr())
	if err != nil {
		t.Fatalf("rejoin via non-evictor %s: %v", deliverer, err)
	}
	want := fmt.Sprintf("rejoined-after-eviction=e%d", epoch)
	if !strings.HasPrefix(reply, "OK") || !strings.Contains(reply, want) {
		t.Errorf("rejoin reply %q via %s lacks %q", reply, deliverer, want)
	}
	if err := n3.Rejoin(); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	h.converge(10 * time.Second)

	// With n3 back on the map, the next gossip rounds GC every record —
	// a later idempotent re-join (through ANY member, including the
	// original evictor) must not repeat the consumed feedback.
	h.tick(2)
	for _, n := range h.running() {
		n.gsp.mu.Lock()
		_, ok := n.gsp.evictedAt["n3"]
		n.gsp.mu.Unlock()
		if ok {
			t.Errorf("%s still holds the eviction record after the rejoin", n.ID())
		}
	}
	for _, id := range []string{evictor, deliverer} {
		reply, err := h.do(id, "CLUSTER", "JOIN", "n3", n3.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(reply, "rejoined-after-eviction") {
			t.Errorf("idempotent re-join via %s repeats the consumed eviction note: %q", id, reply)
		}
	}
}

// TestGossipStaleSuspectorDoesNotCountTowardQuorum: suspicion asserted
// by a node that has since left the map is stale hearsay — the quorum
// check must count only CURRENT members, or a single live suspecter
// plus a ghost could evict a node no live majority suspects.
func TestGossipStaleSuspectorDoesNotCountTowardQuorum(t *testing.T) {
	h := newHarness(t, 3, 2)
	h.tick(2) // settle heartbeats so the injected state cannot be refuted by an hb advance
	h.partition("n3", true)

	// White-box injection: n1 suspects n3, and so does "ghost" — a
	// suspector that is not (any longer) a member. Two bits, but only
	// one from a live member: under quorum 2 this must not evict.
	n1 := h.node("n1")
	n1.gsp.mu.Lock()
	n1.gsp.peers["n3"].suspectedBy = map[string]bool{"n1": true, "ghost": true}
	n1.gsp.mu.Unlock()

	if evs := n1.Gossip(); len(evs) != 0 {
		t.Fatalf("ghost suspicion completed an eviction quorum: evicted %v", evs)
	}
	if !n1.Map().Has("n3") {
		t.Fatal("n3 was evicted on one live member's suspicion plus a ghost's")
	}
}

// TestGossipTransientPartitionDoesNotEvict: a partition shorter than
// the suspicion window must leave no trace — no eviction, no lingering
// suspicion once fresh heartbeats flow again. Pins the detector's
// tolerance as rounds, on the fake clock.
func TestGossipTransientPartitionDoesNotEvict(t *testing.T) {
	h := newHarness(t, 3, 2)
	h.tick(2)
	h.partition("n3", true)
	if evs := h.tick(testSuspectAfter - 1); len(evs) != 0 {
		t.Fatalf("transient partition evicted %v", evs)
	}
	h.partition("n3", false)
	if evs := h.tick(testSuspectAfter + 3); len(evs) != 0 {
		t.Fatalf("healed partition still evicted %v", evs)
	}
	for _, n := range h.running() {
		if n.Map().Len() != 3 {
			t.Fatalf("%s map shrank to %d members after a transient partition", n.ID(), n.Map().Len())
		}
		_, health := n.Health()
		for _, mh := range health {
			if mh.Suspect {
				t.Errorf("%s still suspects %s after heal", n.ID(), mh.ID)
			}
		}
	}
	// The wire view agrees: CLUSTER HEALTH reports every member alive.
	reply, err := h.do("n1", "CLUSTER", "HEALTH")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(reply, "suspect") || !strings.Contains(reply, "member=true") {
		t.Errorf("CLUSTER HEALTH %q reports suspicion after heal", reply)
	}
}

// TestSupersededJoinReportsWinner: two racing coordinators — one
// JOINing x1, one LEAVEing it — are serialized by the epoch fence, and
// the one whose mutation is erased before its handler returns replies
// +SUPERSEDED with the winning map's (Epoch, Version, Coordinator)
// instead of a silent +OK, closing the ROADMAP feedback gap. The
// interleaving is pinned with a gate (n1's rebalance pushes park until
// the rival LEAVE has landed), not with timers, so the race resolves
// the same way on every run.
func TestSupersededJoinReportsWinner(t *testing.T) {
	h := newHarness(t, 3, 2)
	const keys = 60 // enough keys that n1's join rebalance must push to x1
	for k := 0; k < keys; k++ {
		if _, err := h.node("n1").Add(fmt.Sprintf("sp-%d", k), "x", "y"); err != nil {
			t.Fatal(err)
		}
	}
	h.start("x1", "127.0.0.1:0")

	// Park n1's outbound rebalance pushes (both the transfer stream and
	// the per-key path small pushes take): its JOIN will claim, install,
	// broadcast (the other nodes rebalance freely) and then hang in its
	// own rebalance — handler still open, outcome not yet reported.
	releaseXfer := h.gate("n1", "XFER")
	releaseAbsorb := h.gate("n1", "ABSORB")
	release := func() { releaseXfer(); releaseAbsorb() }
	defer release()
	joinReply := make(chan string, 1)
	go func() {
		reply, err := h.do("n1", "CLUSTER", "JOIN", "x1", h.addr("x1"))
		if err != nil {
			reply = "ERR " + err.Error()
		}
		joinReply <- reply
	}()
	h.waitFor(10*time.Second, "join map on n2", func() bool { return h.node("n2").Map().Has("x1") })

	// The rival coordinator: n2 LEAVEs x1. Its claim adopts the join
	// map from the vote replies and mints a newer map without x1; the
	// broadcast installs that winner on n1 immediately (SETMAP is not
	// gated — only n1's subsequent pushes are).
	leaveReply := make(chan string, 1)
	go func() {
		reply, err := h.do("n2", "CLUSTER", "LEAVE", "x1")
		if err != nil {
			reply = "ERR " + err.Error()
		}
		leaveReply <- reply
	}()
	h.waitFor(10*time.Second, "winner map on n1", func() bool { return !h.node("n1").Map().Has("x1") })

	// Only now may n1 finish its join rebalance and report the outcome.
	release()
	reply := <-joinReply
	if !strings.HasPrefix(reply, "SUPERSEDED") {
		t.Fatalf("join reply %q, want SUPERSEDED (the LEAVE won before the join handler returned)", reply)
	}
	if !strings.Contains(reply, "c=n2") {
		t.Errorf("superseded reply %q does not name the winning coordinator n2", reply)
	}
	want := h.node("n1").Map().Triple()
	if got := strings.TrimSpace(strings.TrimPrefix(reply, "SUPERSEDED")); got != want {
		t.Errorf("superseded reply carries %q, want the winning triple %q", got, want)
	}
	if lr := <-leaveReply; !strings.HasPrefix(lr, "OK") {
		t.Errorf("winning LEAVE reply %q, want OK", lr)
	}
	enc := h.converge(10 * time.Second)
	if strings.Contains(enc, "x1=") {
		t.Errorf("converged map %s still lists x1 after the LEAVE won", enc)
	}
}

// storeClock is the fake time source TTL chaos tests inject through
// newHarnessClock: expiry is judged everywhere against this counter, so
// "the deadline passes" is an explicit, deterministic event.
type storeClock struct{ ms atomic.Int64 }

func newStoreClock(startMillis int64) *storeClock {
	c := &storeClock{}
	c.ms.Store(startMillis)
	return c
}

func (c *storeClock) now() time.Time          { return time.UnixMilli(c.ms.Load()) }
func (c *storeClock) advance(d time.Duration) { c.ms.Add(d.Milliseconds()) }

// TestTTLChaosDeterministicExpiry: keys with a replicated absolute
// deadline expire at the same instant on every replica — across a join
// rebalance (deadlines ride transfer frames) and a crash-restart from
// snapshot (deadlines ride snapshot records) — with no premature loss
// before the deadline and no ghost resurrection after it, while
// deadline-free keys are untouched. Entirely fake-clock driven.
func TestTTLChaosDeterministicExpiry(t *testing.T) {
	if testing.Short() {
		t.Skip("TTL chaos harness skipped in -short")
	}
	const base = int64(1_700_000_000_000)
	clk := newStoreClock(base)
	h := newHarnessClock(t, 3, 2, nil, clk.now)

	const (
		ttlKeys   = 16
		plainKeys = 6
		els       = 3
	)
	ttlName := func(k int) string { return fmt.Sprintf("ttl-%d", k) }
	plainName := func(k int) string { return fmt.Sprintf("keep-%d", k) }
	for k := 0; k < ttlKeys; k++ {
		for e := 0; e < els; e++ {
			if _, err := h.node("n1").Add(ttlName(k), fmt.Sprintf("el-%d-%d", k, e)); err != nil {
				t.Fatal(err)
			}
		}
	}
	plainRef := make([]float64, plainKeys)
	for k := 0; k < plainKeys; k++ {
		for e := 0; e < els; e++ {
			if _, err := h.node("n1").Add(plainName(k), fmt.Sprintf("pl-%d-%d", k, e)); err != nil {
				t.Fatal(err)
			}
		}
		plainRef[k] = mustCount(t, h.node("n1"), plainName(k))
	}

	// Arm one cluster-wide absolute deadline on every TTL key. The
	// coordinator forwards the instant, not the duration.
	deadline := base + (time.Minute).Milliseconds()
	ttlRef := make([]float64, ttlKeys)
	for k := 0; k < ttlKeys; k++ {
		existed, err := h.node("n1").ExpireAt(ttlName(k), deadline)
		if err != nil || !existed {
			t.Fatalf("ExpireAt %s: existed=%v err=%v", ttlName(k), existed, err)
		}
		ttlRef[k] = mustCount(t, h.node("n1"), ttlName(k))
	}
	// Every owner replica holds the byte-identical deadline and blob.
	assertOwnersArmed := func(when string) {
		t.Helper()
		m := h.node("n1").Map()
		for k := 0; k < ttlKeys; k++ {
			var refBlob []byte
			for _, id := range m.ownerIDs(ttlName(k)) {
				n := h.node(id)
				if n == nil {
					continue
				}
				dl, ok := n.Store().DeadlineOf(ttlName(k))
				if !ok || dl != deadline {
					t.Fatalf("%s: %s deadline on %s = (%d,%v), want %d", when, ttlName(k), id, dl, ok, deadline)
				}
				blob, ok := n.Store().Dump(ttlName(k))
				if !ok {
					t.Fatalf("%s: owner %s lost %s before the deadline", when, id, ttlName(k))
				}
				if refBlob == nil {
					refBlob = blob
				} else if string(blob) != string(refBlob) {
					t.Errorf("%s: %s replicas diverge on %s", when, ttlName(k), id)
				}
			}
		}
	}
	assertOwnersArmed("after EXPIREAT")

	// A join moves keys: deadlines must ride the transfer frames.
	h.start("x1", "127.0.0.1:0")
	if _, err := h.do("n1", "CLUSTER", "JOIN", "x1", h.addr("x1")); err != nil {
		t.Fatal(err)
	}
	h.converge(10 * time.Second)
	moved := 0
	for k := 0; k < ttlKeys; k++ {
		if slices.Contains(h.node("n1").Map().ownerIDs(ttlName(k)), "x1") {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("join moved no TTL keys onto x1 — the frame-deadline path is untested")
	}
	t.Logf("join moved %d/%d TTL keys onto x1", moved, ttlKeys)
	assertOwnersArmed("after join")

	// Crash-restart n2 from its snapshot: deadlines ride the records.
	h.save("n2")
	h.crash("n2")
	h.restart("n2")
	h.converge(10 * time.Second)
	assertOwnersArmed("after crash-restart")

	// Still before the deadline: nothing may be lost prematurely.
	for k := 0; k < ttlKeys; k++ {
		for _, n := range h.running() {
			if got := mustCount(t, n, ttlName(k)); got != ttlRef[k] {
				t.Errorf("%s: pre-deadline count %s = %v, want %v", n.ID(), ttlName(k), got, ttlRef[k])
			}
		}
	}

	// The deadline passes — everywhere at once, by construction.
	clk.advance(time.Minute + time.Second)
	for k := 0; k < ttlKeys; k++ {
		for _, n := range h.running() {
			if got := mustCount(t, n, ttlName(k)); got != 0 {
				t.Errorf("%s: expired key %s still counts %v", n.ID(), ttlName(k), got)
			}
		}
	}
	for k := 0; k < plainKeys; k++ {
		for _, n := range h.running() {
			if got := mustCount(t, n, plainName(k)); got != plainRef[k] {
				t.Errorf("%s: deadline-free key %s = %v, want %v after expiry", n.ID(), plainName(k), got, plainRef[k])
			}
		}
	}

	// Anti-entropy must not resurrect ghosts: repair re-pushes every
	// local sketch, but expired keys are skipped at the dump.
	for _, n := range h.running() {
		if err := n.repair(); err != nil {
			t.Fatalf("%s: repair: %v", n.ID(), err)
		}
	}
	h.tick(2)
	for k := 0; k < ttlKeys; k++ {
		for _, n := range h.running() {
			if got := mustCount(t, n, ttlName(k)); got != 0 {
				t.Errorf("%s: repair resurrected expired key %s (count %v)", n.ID(), ttlName(k), got)
			}
			if _, ok := n.Store().Dump(ttlName(k)); ok {
				t.Errorf("%s: store still dumps expired key %s", n.ID(), ttlName(k))
			}
		}
	}

	// A restart from the PRE-expiry snapshot after the deadline: the
	// loader must skip the expired-on-disk records, and the rebalance
	// that follows must not push them back.
	h.crash("n2")
	n2 := h.restart("n2")
	h.converge(10 * time.Second)
	for k := 0; k < ttlKeys; k++ {
		if _, ok := n2.Store().Dump(ttlName(k)); ok {
			t.Errorf("restart loaded expired key %s from the snapshot", ttlName(k))
		}
		if got := mustCount(t, n2, ttlName(k)); got != 0 {
			t.Errorf("post-restart count %s = %v, want 0", ttlName(k), got)
		}
	}
	for k := 0; k < plainKeys; k++ {
		if got := mustCount(t, n2, plainName(k)); got != plainRef[k] {
			t.Errorf("post-restart deadline-free key %s = %v, want %v", plainName(k), got, plainRef[k])
		}
	}
}

// TestGossipPiggybackHealsWithoutMapPull: a node that missed a SETMAP
// broadcast heals through the map payload piggybacked on ordinary
// gossip digests — zero CLUSTER MAP pull rounds, and at most a handful
// of targeted SETMAPs — instead of waiting for a full Sync. The test
// counts every message on the wire during the heal.
func TestGossipPiggybackHealsWithoutMapPull(t *testing.T) {
	h := newHarness(t, 3, 2)
	h.tick(2) // healthy baseline

	// n3 misses a join while partitioned.
	h.partition("n3", true)
	h.start("x1", "127.0.0.1:0")
	h.do("n1", "CLUSTER", "JOIN", "x1", h.addr("x1")) // broadcast to n3 fails: that is the point
	if !h.node("n1").Map().Has("x1") {
		t.Fatal("join did not land on the majority")
	}
	if h.node("n3").Map().Has("x1") {
		t.Fatal("partitioned n3 saw the broadcast — the partition hook is leaky")
	}

	// Heal, then count every message while ONLY gossip rounds run — no
	// converge, no Sync.
	h.partition("n3", false)
	var msgMu sync.Mutex
	var mapPulls, setmaps, gossips int
	var setmapBytes, gossipBytes int
	h.setIntercept(func(id, addr string, parts []string) error {
		if len(parts) < 2 || !strings.EqualFold(parts[0], "CLUSTER") {
			return nil
		}
		size := 0
		for _, p := range parts {
			size += len(p) + 1
		}
		msgMu.Lock()
		defer msgMu.Unlock()
		switch strings.ToUpper(parts[1]) {
		case "MAP":
			mapPulls++
		case "SETMAP":
			setmaps++
			setmapBytes += size
		case "GOSSIP":
			gossips++
			gossipBytes += size
		}
		return nil
	})
	h.tick(4)
	h.setIntercept(nil)

	enc := h.node("n1").Map().Encode()
	if got := h.node("n3").Map().Encode(); got != enc {
		t.Fatalf("gossip alone did not heal the stale map: n3 holds %s, cluster %s", got, enc)
	}
	if !h.node("n3").Map().Has("x1") {
		t.Fatal("healed n3 still does not list the joined node")
	}
	msgMu.Lock()
	defer msgMu.Unlock()
	t.Logf("heal cost: %d gossip msgs (%d B), %d targeted SETMAPs (%d B), %d MAP pulls",
		gossips, gossipBytes, setmaps, setmapBytes, mapPulls)
	if mapPulls != 0 {
		t.Errorf("heal fell back to %d CLUSTER MAP pull(s) — the piggyback did not carry the map", mapPulls)
	}
	if gossips == 0 {
		t.Error("no gossip traffic observed during the heal rounds")
	}
	// The laggard is healed by the first digests it touches; SETMAPs
	// stay targeted (no O(members) spray, no repeat after the heal).
	if setmaps > 8 {
		t.Errorf("heal broadcast %d SETMAPs — targeted push degraded to a spray", setmaps)
	}
}

// sumTransferStats adds up the bulk-transfer counters across nodes.
func sumTransferStats(nodes []*Node) TransferStats {
	var sum TransferStats
	for _, n := range nodes {
		s := n.TransferStats()
		sum.StreamsOpened += s.StreamsOpened
		sum.StreamsResumed += s.StreamsResumed
		sum.FramesSent += s.FramesSent
		sum.FrameRetries += s.FrameRetries
		sum.BytesMoved += s.BytesMoved
		sum.FallbackKeys += s.FallbackKeys
		sum.BytesPrecompress += s.BytesPrecompress
		sum.BytesWire += s.BytesWire
	}
	return sum
}

func mustCount(t *testing.T, n *Node, keys ...string) float64 {
	t.Helper()
	got, err := n.Count(keys...)
	if err != nil {
		t.Fatalf("%s: count %v: %v", n.ID(), keys, err)
	}
	return got
}
