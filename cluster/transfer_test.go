package cluster

// Tests for the streaming bulk-transfer transport (transfer.go): frame
// codec hardening (truncations, hostile length prefixes), the stall
// fault that I/O deadlines exist to beat, and the two headline chaos
// scenarios — a mid-stream connection drop and a receiver
// crash-restart-from-snapshot — both of which must RESUME from the
// last acked frame rather than restart from frame one, and converge
// with zero lost keys.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"exaloglog/server"
)

func TestFrameCodecRoundTrip(t *testing.T) {
	items := []server.KeyBlob{
		{Key: "a", Blob: []byte{1, 2, 3}},
		{Key: "key-2", Blob: []byte{}},
		{Key: "k3", Blob: bytes.Repeat([]byte{7}, 1000)},
	}
	enc := encodeFrame(items)
	got, err := decodeFrame(enc)
	if err != nil {
		t.Fatalf("decode of a valid frame: %v", err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d records, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i].Key != items[i].Key || !bytes.Equal(got[i].Blob, items[i].Blob) {
			t.Errorf("record %d: got %q/%d blob bytes, want %q/%d",
				i, got[i].Key, len(got[i].Blob), items[i].Key, len(items[i].Blob))
		}
	}
	// Every truncation must fail cleanly — the frame carries its record
	// count up front, so losing any tail byte is detectable.
	for i := 0; i < len(enc); i++ {
		if _, err := decodeFrame(enc[:i]); err == nil {
			t.Errorf("frame truncated to %d of %d bytes decoded without error", i, len(enc))
		}
	}
	// A hostile count must be rejected before it can size an allocation.
	huge := append([]byte(frameMagic), binary.AppendUvarint(nil, 1<<40)...)
	if _, err := decodeFrame(huge); err == nil {
		t.Error("frame claiming 2^40 records decoded without error")
	}
}

func FuzzTransferDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(frameMagic))
	valid := encodeFrame([]server.KeyBlob{
		{Key: "k", Blob: []byte("v")},
		{Key: "longer-key", Blob: bytes.Repeat([]byte{9}, 300)},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append([]byte(frameMagic), binary.AppendUvarint(nil, 1<<40)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := decodeFrame(data)
		if err != nil {
			return // rejected input: the only requirement is not panicking
		}
		// Anything that decodes must round-trip through the encoder.
		re, err := decodeFrame(encodeFrame(items))
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame: %v", err)
		}
		if len(re) != len(items) {
			t.Fatalf("round trip changed record count: %d → %d", len(items), len(re))
		}
		for i := range items {
			if re[i].Key != items[i].Key || !bytes.Equal(re[i].Blob, items[i].Blob) {
				t.Fatalf("round trip changed record %d", i)
			}
		}
	})
}

// TestStalledPeerTripsDeadline: a peer that accepts connections but
// never replies (the black-hole failure mode that used to hang
// forwards and rebalance forever) must now fail fast as a TRANSPORT
// error, feed the failure detector, get auto-evicted — and the
// rebalance onto the healthy replicas must complete with every count
// intact.
func TestStalledPeerTripsDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("stall-fault harness skipped in -short")
	}
	h := newHarnessCfg(t, 3, 2, &TransferConfig{
		Timeout:     250 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond,
		RetryBudget: 2,
	})
	const peerTimeout = 250 * time.Millisecond
	for _, n := range h.running() {
		n.SetPeerTimeout(peerTimeout)
	}

	const keys = 40
	keyName := func(k int) string { return fmt.Sprintf("st-%d", k) }
	ref := make([]float64, keys)
	for k := 0; k < keys; k++ {
		for e := 0; e < 3; e++ {
			if _, err := h.node("n1").Add(keyName(k), fmt.Sprintf("el-%d-%d", k, e)); err != nil {
				t.Fatal(err)
			}
		}
		ref[k] = mustCount(t, h.node("n1"), keyName(k))
	}
	h.tick(2) // healthy baseline: heartbeats flowing

	stalledAddr := h.stall("n3")

	// The deadline turns the black hole into a prompt transport error —
	// NOT a reply error (the peer never answered), and never a hang.
	start := time.Now()
	_, err := h.node("n1").peers.do(stalledAddr, "PING")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("command against a stalled peer returned no error")
	}
	if server.IsReplyErr(err) {
		t.Fatalf("stalled peer yielded a reply error (%v) — it answered?", err)
	}
	if elapsed > 20*peerTimeout {
		t.Fatalf("stalled peer held the command for %v — the deadline did not trip", elapsed)
	}

	// Silence (every exchange now times out) raises suspicion and,
	// past the window, a quorum-backed auto-eviction.
	evs := h.tick(testSuspectAfter + 5)
	if evs["n3"] == "" {
		t.Fatal("stalled node was never auto-evicted")
	}
	raised := false
	for _, n := range h.running() {
		if n.StatsCounters().SuspectsRaised > 0 {
			raised = true
		}
	}
	if !raised {
		t.Error("no survivor ever raised suspicion against the stalled peer")
	}

	enc := h.converge(15 * time.Second)
	if strings.Contains(enc, "n3=") {
		t.Fatalf("converged map %s still lists the stalled node", enc)
	}
	// The rebalance away from n3 completed via the healthy replicas.
	for k := 0; k < keys; k++ {
		for _, id := range []string{"n1", "n2"} {
			if got := mustCount(t, h.node(id), keyName(k)); got != ref[k] {
				t.Errorf("%s: count %s = %v, want %v after stall eviction", id, keyName(k), got, ref[k])
			}
		}
	}
}

// TestTransferResumesAfterMidStreamDrop: rebalancing ≥2000 keys onto a
// joining node survives an injected connection drop mid-stream — the
// sender redials and RESUMES from the last acked frame (the resume
// handshake's seq proves it), nothing degrades to the per-key path,
// and every key converges.
func TestTransferResumesAfterMidStreamDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("2k-key transfer chaos skipped in -short")
	}
	const (
		total  = 2200
		batch  = 64
		window = 2
		dropAt = 6
	)
	h := newHarnessCfg(t, 1, 2, &TransferConfig{
		BatchKeys:     batch,
		Window:        window,
		Timeout:       2 * time.Second,
		RetryBudget:   4,
		BackoffBase:   5 * time.Millisecond,
		MinStreamKeys: 1,
	})
	keyName := func(k int) string { return fmt.Sprintf("drop-%d", k) }
	for k := 0; k < total; k++ {
		if _, err := h.node("n1").Add(keyName(k), "x"); err != nil {
			t.Fatal(err)
		}
	}
	h.start("n2", "127.0.0.1:0")

	var mu sync.Mutex
	var begins []uint64
	var postFrames []uint64
	dropped := false
	h.setIntercept(func(id, addr string, parts []string) error {
		if len(parts) < 5 || parts[0] != "CLUSTER" || !strings.EqualFold(parts[1], "XFER") {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		switch parts[2] {
		case "BEGIN":
			seq, _ := strconv.ParseUint(strings.TrimPrefix(parts[4], "seq="), 10, 64)
			begins = append(begins, seq)
		case "FRAME":
			seq, _ := strconv.ParseUint(parts[4], 10, 64)
			if seq == dropAt && !dropped {
				dropped = true
				return fmt.Errorf("harness: injected connection drop at frame %d", dropAt)
			}
			if dropped {
				postFrames = append(postFrames, seq)
			}
		}
		return nil
	})
	defer h.setIntercept(nil)

	if err := h.node("n2").Join(h.addr("n1")); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	beginsCopy := append([]uint64(nil), begins...)
	postCopy := append([]uint64(nil), postFrames...)
	mu.Unlock()
	if len(beginsCopy) < 2 {
		t.Fatalf("saw %d XFER BEGINs, want ≥2 (initial + resume)", len(beginsCopy))
	}
	if beginsCopy[0] != 1 {
		t.Errorf("first stream began at seq %d, want 1", beginsCopy[0])
	}
	resumeSeq := beginsCopy[1]
	if resumeSeq <= 1 || resumeSeq > dropAt {
		t.Errorf("resume handshake asked for seq %d, want in (1, %d] — the stream restarted instead of resuming", resumeSeq, dropAt)
	}
	minPost := uint64(0)
	for _, s := range postCopy {
		if minPost == 0 || s < minPost {
			minPost = s
		}
	}
	if minPost <= 1 {
		t.Errorf("after the drop the first re-sent frame was %d — resumed from frame 0, not the last acked frame", minPost)
	}

	stats := sumTransferStats(h.running())
	if stats.StreamsResumed == 0 {
		t.Error("no stream recorded a resume")
	}
	if stats.FallbackKeys != 0 {
		t.Errorf("%d keys degraded to per-key ABSORB — the retry budget should have carried the stream", stats.FallbackKeys)
	}
	wantFrames := (total + batch - 1) / batch
	if got := int(stats.FramesSent); got > wantFrames+window+2 {
		t.Errorf("sent %d frames for %d keys (batch %d) — message count is not O(keys/batch)", got, total, batch)
	}

	// Zero lost keys: the joiner holds every replica and counts agree.
	if got := h.node("n2").Store().Len(); got != total {
		t.Fatalf("joiner holds %d keys, want %d", got, total)
	}
	for k := 0; k < total; k += 97 {
		for _, n := range h.running() {
			if got := mustCount(t, n, keyName(k)); int64(got+0.5) != 1 {
				t.Errorf("%s: count %s = %v after mid-stream drop, want ≈1", n.ID(), keyName(k), got)
			}
		}
	}
}

// TestTransferResumesAfterReceiverCrashRestart: the receiver of a
// ≥2000-key stream is crashed after k acked frames, restarted from a
// snapshot taken at that point, and the stream must resume at frame
// k+1 (not frame 1: the resume handshake and the first re-sent frame
// prove it), converge with zero lost keys, and stay within an
// O(keys/batch) message budget.
func TestTransferResumesAfterReceiverCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-restart transfer chaos skipped in -short")
	}
	const (
		total  = 2400
		batch  = 64
		stopAt = 6 // frames 1..stopAt-1 are acked when the receiver dies
		budget = 8
	)
	h := newHarnessCfg(t, 1, 2, &TransferConfig{
		BatchKeys:     batch,
		Window:        1, // stop-and-wait: the crash point is exactly stopAt-1 acked frames
		Timeout:       2 * time.Second,
		RetryBudget:   budget,
		BackoffBase:   25 * time.Millisecond,
		MinStreamKeys: 1,
	})
	keyName := func(k int) string { return fmt.Sprintf("cr-%d", k) }
	for k := 0; k < total; k++ {
		if _, err := h.node("n1").Add(keyName(k), "x"); err != nil {
			t.Fatal(err)
		}
	}
	h.start("n2", "127.0.0.1:0")

	parked := make(chan struct{})
	resumeCh := make(chan struct{})
	var mu sync.Mutex
	var begins []uint64
	var postFrames []uint64
	parkedOnce := false
	phase2 := false
	h.setIntercept(func(id, addr string, parts []string) error {
		if len(parts) < 5 || parts[0] != "CLUSTER" || !strings.EqualFold(parts[1], "XFER") {
			return nil
		}
		mu.Lock()
		switch parts[2] {
		case "BEGIN":
			seq, _ := strconv.ParseUint(strings.TrimPrefix(parts[4], "seq="), 10, 64)
			begins = append(begins, seq)
		case "FRAME":
			seq, _ := strconv.ParseUint(parts[4], 10, 64)
			if seq == stopAt && !parkedOnce {
				parkedOnce = true
				mu.Unlock()
				close(parked) // hand control to the test body for the crash
				<-resumeCh
				return fmt.Errorf("harness: receiver crashed under frame %d", stopAt)
			}
			if phase2 {
				postFrames = append(postFrames, seq)
			}
		}
		mu.Unlock()
		return nil
	})
	defer h.setIntercept(nil)

	joinDone := make(chan string, 1)
	go func() {
		reply, err := h.do("n1", "CLUSTER", "JOIN", "n2", h.addr("n2"))
		if err != nil {
			reply = "ERR " + err.Error()
		}
		joinDone <- reply
	}()

	<-parked
	// Frames 1..stopAt-1 are applied (window 1 ⇒ strict stop-and-wait).
	// Snapshot NOW — sketches plus the already-installed 2-node map —
	// then kill the receiver, as a periodic-snapshot-then-power-loss.
	h.save("n2")
	h.crash("n2")
	mu.Lock()
	phase2 = true
	mu.Unlock()
	close(resumeCh)
	// Restart from the snapshot on the old address. No Rejoin: the
	// persisted map already records the membership; the inbound stream
	// finds a fresh node that lost its session but kept its data.
	h.start("n2", h.addr("n2"))

	if reply := <-joinDone; !strings.HasPrefix(reply, "OK") {
		t.Fatalf("join across the receiver crash replied %q, want OK", reply)
	}
	// A Sync round flushes the pool connections that died with the old
	// n2 process (the pool drops a dead connection on first use and
	// redials on the next) and confirms the maps agree across the crash.
	h.converge(10 * time.Second)

	mu.Lock()
	beginsCopy := append([]uint64(nil), begins...)
	postCopy := append([]uint64(nil), postFrames...)
	mu.Unlock()
	if len(beginsCopy) < 2 {
		t.Fatalf("saw %d XFER BEGINs, want ≥2 (initial + resume)", len(beginsCopy))
	}
	if beginsCopy[0] != 1 {
		t.Errorf("first stream began at seq %d, want 1", beginsCopy[0])
	}
	for i, seq := range beginsCopy[1:] {
		if seq != stopAt {
			t.Errorf("resume handshake %d asked for seq %d, want %d (the first unacked frame)", i+1, seq, stopAt)
		}
	}
	minPost := uint64(0)
	for _, s := range postCopy {
		if minPost == 0 || s < minPost {
			minPost = s
		}
	}
	if minPost != stopAt {
		t.Errorf("first frame after the restart was %d, want %d — the stream must resume, not rewind", minPost, stopAt)
	}

	stats := sumTransferStats(h.running())
	if stats.StreamsResumed == 0 {
		t.Error("no stream recorded a resume")
	}
	if stats.FallbackKeys != 0 {
		t.Errorf("%d keys degraded to per-key ABSORB across the crash", stats.FallbackKeys)
	}
	wantFrames := (total + batch - 1) / batch
	if got := int(stats.FramesSent); got > wantFrames+budget+2 {
		t.Errorf("sent %d frames for %d keys (batch %d) — message count is not O(keys/batch)", got, total, batch)
	}

	// Zero lost keys, on both the sender and the restarted receiver.
	if got := h.node("n2").Store().Len(); got != total {
		t.Fatalf("restarted receiver holds %d keys, want %d", got, total)
	}
	for k := 0; k < total; k += 101 {
		for _, n := range h.running() {
			if got := mustCount(t, n, keyName(k)); int64(got+0.5) != 1 {
				t.Errorf("%s: count %s = %v after crash-restart, want ≈1", n.ID(), keyName(k), got)
			}
		}
	}
}
