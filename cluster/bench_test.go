package cluster

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"exaloglog/server"
)

// startBenchCluster brings up a 3-node, replica-2 cluster and a client
// connected to the first node; nodes[0] is the seed.
func startBenchCluster(b *testing.B) ([]*Node, *server.Client) {
	b.Helper()
	nodes := make([]*Node, 3)
	for i := range nodes {
		node, err := NewNode(fmt.Sprintf("n%d", i+1), testConfig(), 2)
		if err != nil {
			b.Fatal(err)
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { node.Close() })
		if i > 0 {
			if err := node.Join(nodes[0].Addr()); err != nil {
				b.Fatal(err)
			}
		}
		nodes[i] = node
	}
	c, err := server.Dial(nodes[0].Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return nodes, c
}

// BenchmarkClusterRoutedPFAdd measures wire-level PFADD through one node
// of a 3-node cluster: each op is routed to the key's two owners and
// replicated before the reply.
func BenchmarkClusterRoutedPFAdd(b *testing.B) {
	_, c := startBenchCluster(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("key-%d", i%64)
		if _, err := c.PFAdd(key, fmt.Sprintf("el-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkClusterBatchedPFAdd measures concurrent Node.Add calls
// through one coordinator of a 3-node cluster: the per-peer batcher
// coalesces the forwards to each owner into pipelined CLUSTER MLPFADD
// batches, so k concurrent adds to the same owner share one round trip
// instead of paying k.
func BenchmarkClusterBatchedPFAdd(b *testing.B) {
	nodes, _ := startBenchCluster(b)
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := gid.Add(1)
		i := 0
		for pb.Next() {
			key := fmt.Sprintf("g%d-key-%d", g, i%16)
			if _, err := nodes[0].Add(key, fmt.Sprintf("el-%d", i)); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkClusterFanoutPFCount measures wire-level PFCOUNT of an
// 8-key union through one node: every key's owner sketches are fetched
// with DUMP and merged at the coordinator.
func BenchmarkClusterFanoutPFCount(b *testing.B) {
	nodes, c := startBenchCluster(b)
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		for j := 0; j < 1000; j++ {
			if _, err := nodes[0].Add(keys[i], fmt.Sprintf("el-%d-%d", i, j)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PFCount(keys...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkClusterRoutedWAdd measures wire-level WADD through one node
// of a 3-node cluster: each op carries an explicit timestamp and is
// forwarded to the key's two owners before the reply.
func BenchmarkClusterRoutedWAdd(b *testing.B) {
	_, c := startBenchCluster(b)
	const base = int64(1_750_000_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("wkey-%d", i%64)
		if _, err := c.WAdd(key, base+int64(i)*13, fmt.Sprintf("el-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkClusterWindowCount measures the windowed scatter-gather:
// WCOUNT through one node fetches every owner's slot-wise ring DUMP
// and merges the rings slice by slice at the coordinator.
func BenchmarkClusterWindowCount(b *testing.B) {
	nodes, c := startBenchCluster(b)
	const base = int64(1_750_000_000_000)
	for s := 0; s < 30; s++ {
		for e := 0; e < 100; e++ {
			if _, err := nodes[0].WindowAdd("wkey", base+int64(s)*1000, fmt.Sprintf("el-%d-%d", s, e)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.WCountAt("wkey", 30*time.Second, base+29_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkRebalance measures one full membership round trip — a
// fourth node joining and then leaving a 3-node, replica-2 cluster
// holding 512 keys. The delta-aware rebalance moves only keys whose
// owner set changed, which is what keeps this flat-ish as stores grow.
func BenchmarkRebalance(b *testing.B) {
	nodes, _ := startBenchCluster(b)
	for i := 0; i < 512; i++ {
		if _, err := nodes[0].Add(fmt.Sprintf("key-%d", i), "x"); err != nil {
			b.Fatal(err)
		}
	}
	n4, err := NewNode("n4", testConfig(), 2)
	if err != nil {
		b.Fatal(err)
	}
	if err := n4.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { n4.Close() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n4.Join(nodes[0].Addr()); err != nil {
			b.Fatal(err)
		}
		if err := n4.Leave(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	all := append(nodes, n4)
	b.ReportMetric(float64(sumPushes(all...))/float64(b.N), "pushes/op")
	// The pushes travel framed: frames/op stays O(keys/batch), far under
	// the one-message-per-push cost of the per-key path. The two bytes
	// columns are the compression ledger — wireB/op is what actually
	// crossed the network, preB/op what the uncompressed framing would
	// have cost.
	stats := sumTransferStats(all)
	b.ReportMetric(float64(stats.FramesSent)/float64(b.N), "frames/op")
	b.ReportMetric(float64(stats.BytesPrecompress)/float64(b.N), "preB/op")
	b.ReportMetric(float64(stats.BytesWire)/float64(b.N), "wireB/op")
}

func sumPushes(nodes ...*Node) uint64 {
	var total uint64
	for _, n := range nodes {
		total += n.RebalancePushes()
	}
	return total
}

// BenchmarkRingOwners isolates the routing cost: key → N owners on the
// consistent-hash ring.
func BenchmarkRingOwners(b *testing.B) {
	m := NewMap(2,
		Member{"n1", "a:1"}, Member{"n2", "a:2"}, Member{"n3", "a:3"},
		Member{"n4", "a:4"}, Member{"n5", "a:5"})
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if owners := m.Owners(keys[i%len(keys)]); len(owners) != 2 {
			b.Fatal("bad owners")
		}
	}
}
