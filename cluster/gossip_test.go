package cluster

import (
	"strings"
	"testing"
)

// TestDigestRoundTrip pins the gossip wire format: encode → decode →
// encode is byte-stable, and the suspicion mark survives.
func TestDigestRoundTrip(t *testing.T) {
	d := &digest{
		Sender:      "n1",
		Epoch:       7,
		Version:     12,
		Coordinator: "n2",
		Entries: []digestEntry{
			{ID: "n1", HB: 41},
			{ID: "n2", HB: 39, Suspect: true},
			{ID: "n3", HB: 0},
		},
	}
	enc := d.encode()
	got, err := decodeDigest(strings.Fields(enc))
	if err != nil {
		t.Fatalf("decode %q: %v", enc, err)
	}
	if got.encode() != enc {
		t.Fatalf("round trip not stable: %q → %q", enc, got.encode())
	}
	if !got.Entries[1].Suspect || got.Entries[0].Suspect {
		t.Errorf("suspicion bits lost in %q", enc)
	}
	// The empty coordinator spells as "-" like the map codec.
	d.Coordinator = ""
	got, err = decodeDigest(strings.Fields(d.encode()))
	if err != nil || got.Coordinator != "" {
		t.Errorf("empty coordinator round trip: %+v, %v", got, err)
	}

	// Eviction records ride along as "~id=epoch" tokens and round-trip.
	d.Evictions = []evictionRecord{{ID: "n7", Epoch: 9}, {ID: "n8", Epoch: 11}}
	enc = d.encode()
	if !strings.Contains(enc, "~n7=9") || !strings.Contains(enc, "~n8=11") {
		t.Fatalf("encoded digest %q lacks the eviction records", enc)
	}
	got, err = decodeDigest(strings.Fields(enc))
	if err != nil {
		t.Fatalf("decode %q: %v", enc, err)
	}
	if len(got.Evictions) != 2 || got.Evictions[0] != d.Evictions[0] || got.Evictions[1] != d.Evictions[1] {
		t.Errorf("eviction records lost: %+v", got.Evictions)
	}
	if got.encode() != enc {
		t.Errorf("round trip with records not stable: %q → %q", enc, got.encode())
	}
}

// TestDigestDecodeRejects enumerates hostile payload shapes that must
// come back as errors, never panics or accepted garbage.
func TestDigestDecodeRejects(t *testing.T) {
	cases := []string{
		"",
		"g1",
		"g1 n1 1 1",                           // missing coordinator
		"v2 n1 1 1 -",                         // wrong tag (a map payload)
		"g1 bad=id 1 1 -",                     // '=' in sender
		"g1 n1 x 1 -",                         // non-numeric epoch
		"g1 n1 1 x -",                         // non-numeric version
		"g1 n1 1 1 'c d'",                     // whitespace cannot reach tokens, but '=' can
		"g1 n1 1 1 - n2",                      // entry without '='
		"g1 n1 1 1 - n2=abc",                  // non-numeric heartbeat
		"g1 n1 1 1 - n2=1! n2=2",              // duplicate entry
		"g1 n1 1 1 - n2=!",                    // suspicion mark with no heartbeat
		"g1 n1 1 1 - n2=18446744073709551616", // uint64 overflow
		"g1 n1 1 1 - ~",                       // bare eviction mark
		"g1 n1 1 1 - ~x",                      // eviction record without '='
		"g1 n1 1 1 - ~x=abc",                  // non-numeric eviction epoch
		"g1 n1 1 1 - ~x=1! ",                  // suspicion mark is not valid in records
		"g1 n1 1 1 - ~x=1 ~x=2",               // duplicate eviction record
		"g1 n1 1 1 - ~~x=1",                   // '~' cannot start an id
		"g1 ~n1 1 1 -",                        // '~' cannot start the sender either
	}
	for _, payload := range cases {
		if d, err := decodeDigest(strings.Fields(payload)); err == nil {
			t.Errorf("decodeDigest(%q) accepted: %+v", payload, d)
		}
	}
}

// TestDigestDecodeCaps: a hostile digest cannot make a node allocate
// beyond the shared wire caps.
func TestDigestDecodeCaps(t *testing.T) {
	tokens := []string{"g1", "n1", "1", "1", "-"}
	for i := 0; i <= maxWireMembers; i++ {
		tokens = append(tokens, "m"+itoa(i)+"=1")
	}
	if _, err := decodeDigest(tokens); err == nil {
		t.Fatalf("digest with %d entries accepted (limit %d)", maxWireMembers+1, maxWireMembers)
	}
	huge := []string{"g1", "n1", "1", "1", "-", "x=" + strings.Repeat("9", maxWireBytes)}
	if _, err := decodeDigest(huge); err == nil {
		t.Fatal("oversized digest accepted")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// FuzzGossipDecode mirrors FuzzMapDecode for the gossip payload: no
// input may panic the decoder, and anything it accepts must re-encode
// to a byte-stable, re-decodable form — two nodes must never disagree
// about one digest.
func FuzzGossipDecode(f *testing.F) {
	f.Add("g1 n1 3 7 n2 n1=41 n2=39! n3=0")
	f.Add("g1 n1 18446744073709551615 0 - x=18446744073709551615!")
	f.Add("g1 n9 1 1 n9")
	f.Add("v2 1 1 - 2 n1=a")
	f.Add("")
	f.Add("g1 n1 1 1 - a=1! a=2")
	f.Add("g1 n1 1 1 - a=1!!")
	f.Add("g1 n1 3 7 n2 n1=41 n3=0 ~n4=3 ~n5=9")
	f.Add("g1 n1 1 1 - ~a=1 b=2")
	f.Add("g1 n1 1 1 - ~~a=1")
	f.Fuzz(func(t *testing.T, payload string) {
		tokens := strings.Fields(payload)
		d, err := decodeDigest(tokens)
		if err != nil {
			return // rejected cleanly
		}
		if !validID(d.Sender) {
			t.Fatalf("decodeDigest(%q) accepted invalid sender %q", payload, d.Sender)
		}
		if len(d.Entries) > maxWireMembers {
			t.Fatalf("decodeDigest(%q) exceeded the entry cap", payload)
		}
		enc := d.encode()
		d2, err := decodeDigest(strings.Fields(enc))
		if err != nil {
			t.Fatalf("re-decode of %q (from %q) failed: %v", enc, payload, err)
		}
		if d2.encode() != enc {
			t.Fatalf("encode not stable: %q → %q", enc, d2.encode())
		}
	})
}

// TestEvictionRecordCap: decommissioned nodes never rejoin to consume
// their record, so the remembered-eviction set must stay bounded —
// newest epochs win, the oldest record makes way, and a record older
// than everything already held is ignored.
func TestEvictionRecordCap(t *testing.T) {
	g := &gossipState{evictedAt: make(map[string]uint64)}
	for i := 0; i < maxEvictionRecords+50; i++ {
		g.recordEvictionLocked(itoa(i), uint64(i+1))
	}
	if len(g.evictedAt) != maxEvictionRecords {
		t.Fatalf("record set grew to %d (cap %d)", len(g.evictedAt), maxEvictionRecords)
	}
	// The survivors are the newest epochs.
	for i := 50; i < maxEvictionRecords+50; i++ {
		if g.evictedAt[itoa(i)] != uint64(i+1) {
			t.Fatalf("recent record %d missing or wrong: %d", i, g.evictedAt[itoa(i)])
		}
	}
	// An incoming record older than everything held is dropped, not
	// swapped in.
	g.recordEvictionLocked("ancient", 1)
	if _, ok := g.evictedAt["ancient"]; ok {
		t.Error("oldest-of-all record displaced a newer one")
	}
	// Refreshing a known id keeps the higher epoch and does not grow.
	g.recordEvictionLocked(itoa(60), 999)
	if g.evictedAt[itoa(60)] != 999 || len(g.evictedAt) != maxEvictionRecords {
		t.Error("refresh of a known record misbehaved")
	}
}

// TestGossipWireExchange drives one CLUSTER GOSSIP round trip over the
// real protocol: the reply must be the receiver's digest, and the
// receiver must have recorded the pushed heartbeats.
func TestGossipWireExchange(t *testing.T) {
	nodes := startCluster(t, 2, 1)
	// Let each node establish detector state.
	nodes[0].Gossip()
	nodes[1].Gossip()

	d := &digest{
		Sender: nodes[0].ID(),
		Epoch:  nodes[0].Map().Epoch, Version: nodes[0].Map().Version,
		Coordinator: nodes[0].Map().Coordinator,
		Entries:     []digestEntry{{ID: nodes[0].ID(), HB: 99}},
	}
	reply, err := nodes[0].peers.do(nodes[1].Addr(),
		append([]string{"CLUSTER", "GOSSIP"}, strings.Fields(d.encode())...)...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeDigest(strings.Fields(reply))
	if err != nil {
		t.Fatalf("reply %q is not a digest: %v", reply, err)
	}
	if got.Sender != nodes[1].ID() {
		t.Errorf("reply digest sender %q, want %q", got.Sender, nodes[1].ID())
	}
	_, health := nodes[1].Health()
	for _, mh := range health {
		if mh.ID == nodes[0].ID() && mh.HB != 99 {
			t.Errorf("receiver recorded hb=%d for %s, want 99", mh.HB, nodes[0].ID())
		}
	}
}

// TestHealthReportsSuspects: the detector's view is observable — after
// rounds with an unreachable peer, Health and CLUSTER HEALTH both show
// the suspicion (unit-level companion to the harness chaos tests).
func TestHealthReportsSuspects(t *testing.T) {
	nodes := startCluster(t, 2, 1)
	nodes[0].SetGossipConfig(GossipConfig{SuspectAfter: 2})
	nodes[1].Close() // silence n2 without any LEAVE
	for i := 0; i < 4; i++ {
		nodes[0].Gossip()
	}
	_, health := nodes[0].Health()
	found := false
	for _, mh := range health {
		if mh.ID == nodes[1].ID() {
			found = true
			if !mh.Suspect || mh.Suspectors < 1 || mh.SinceHeard < 2 {
				t.Errorf("health for silent peer = %+v, want suspect", mh)
			}
		}
	}
	if !found {
		t.Fatal("silent peer missing from health report")
	}
	// No eviction: quorum of a 2-node map is 2 and only n1 suspects.
	if !nodes[0].Map().Has(nodes[1].ID()) {
		t.Error("a lone suspecter evicted its only peer — quorum violated")
	}
}
