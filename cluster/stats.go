package cluster

// Cluster-level observability: the CLUSTER STATS verb and the
// Prometheus rendering of the counters the cluster layer keeps on top
// of the per-verb server stats — gossip rounds, suspicions raised,
// auto-LEAVE evictions, MLPFADD group-commit coalescing, and rebalance
// pushes. CLUSTER STATS ALL fans the same question out to every member
// through the peer pool, which doubles as liveness evidence: a
// metrics-polling operator keeps the failure detector fed (see
// pool.alive).

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"exaloglog/server"
)

// ClusterStats is a snapshot of the cluster-layer counters of one node.
// The server-level per-verb stats live in Node.Server().Stats().
type ClusterStats struct {
	GossipRounds   uint64 // detector rounds this node has run
	SuspectsRaised uint64 // alive→suspect transitions in this node's own judgment
	AutoLeaves     uint64 // quorum-backed evictions this node coordinated
	MLPFAddGroups  uint64 // per-key add groups coalesced into MLPFADD batches
	MLPFAddBatches uint64 // MLPFADD batches flushed
	RebalPushes    uint64 // cumulative rebalance per-(key,owner) pushes planned
	MovedReplies   uint64 // -MOVED redirects sent to misrouted clients (strict routing)
	MapRefetches   uint64 // CLUSTER MAP replies served (client refetches + syncs)

	// Bulk-transfer transport counters (see transfer.go).
	XferStreams      uint64 // XFER streams opened
	XferResumed      uint64 // streams resumed after a timeout/drop
	XferFrames       uint64 // frames sent (re-sends included)
	XferFrameRetries uint64 // frames re-sent on resumed streams
	XferBytes        uint64 // payload bytes framed
	XferFallbacks    uint64 // keys degraded to per-key ABSORB

	// Wire-codec and digest anti-entropy counters (see transfer.go
	// and digestsync.go). Precompress vs wire is the compression
	// ledger: their ratio is the transport's achieved reduction.
	XferBytesPrecompress uint64 // frame payload bytes before the codec ran
	XferBytesWire        uint64 // frame payload bytes actually framed onto the wire
	SyncDigestRounds     uint64 // digest anti-entropy rounds completed
	SyncKeysRepaired     uint64 // divergent keys re-shipped by digest rounds
}

// StatsCounters returns a snapshot of this node's cluster-layer
// counters.
func (n *Node) StatsCounters() ClusterStats {
	g := &n.gsp
	g.mu.Lock()
	rounds, raised := g.round, g.suspectsRaised
	g.mu.Unlock()
	return ClusterStats{
		GossipRounds:   rounds,
		SuspectsRaised: raised,
		AutoLeaves:     n.autoLeaves.Load(),
		MLPFAddGroups:  n.peers.mlGroups.Load(),
		MLPFAddBatches: n.peers.mlBatches.Load(),
		RebalPushes:    n.pushes.Load(),
		MovedReplies:   n.movedReplies.Load(),
		MapRefetches:   n.mapRefetches.Load(),

		XferStreams:      n.xfer.streams.Load(),
		XferResumed:      n.xfer.resumed.Load(),
		XferFrames:       n.xfer.frames.Load(),
		XferFrameRetries: n.xfer.retries.Load(),
		XferBytes:        n.xfer.bytes.Load(),
		XferFallbacks:    n.xfer.fallbacks.Load(),

		XferBytesPrecompress: n.xfer.preBytes.Load(),
		XferBytesWire:        n.xfer.wireBytes.Load(),
		SyncDigestRounds:     n.digestRounds.Load(),
		SyncKeysRepaired:     n.digestRepairs.Load(),
	}
}

// statsBody renders this node's CLUSTER STATS reply body (no type
// sigil): a cluster-counter row, then the server's STATS rows. The rows
// are newline-joined here and folded to "; " by the server's one-line
// reply rule, so split on "; " to get them back.
func (n *Node) statsBody() string {
	c := n.StatsCounters()
	// New counters are appended at the end of the row: consumers parse
	// k=v pairs by name, but prefix-matching tests and scripts stay
	// stable that way.
	return fmt.Sprintf(
		"node=%s gossip_rounds=%d suspects_raised=%d auto_leaves=%d mlpfadd_groups=%d mlpfadd_batches=%d rebal_pushes=%d moved_replies=%d map_refetches=%d xfer_streams=%d xfer_resumed=%d xfer_frames=%d xfer_frame_retries=%d xfer_bytes=%d xfer_fallbacks=%d xfer_bytes_precompress=%d xfer_bytes_wire=%d sync_digest_rounds=%d sync_keys_repaired=%d\n%s",
		n.id, c.GossipRounds, c.SuspectsRaised, c.AutoLeaves,
		c.MLPFAddGroups, c.MLPFAddBatches, c.RebalPushes,
		c.MovedReplies, c.MapRefetches,
		c.XferStreams, c.XferResumed, c.XferFrames,
		c.XferFrameRetries, c.XferBytes, c.XferFallbacks,
		c.XferBytesPrecompress, c.XferBytesWire,
		c.SyncDigestRounds, c.SyncKeysRepaired,
		n.srv.StatsText())
}

// handleClusterStats serves CLUSTER STATS [ALL]: this node's cluster
// counters plus its per-verb server stats, or — with ALL — every
// member's, fetched through the peer pool (so the polls themselves feed
// the failure detector) and newline-joined in member order. An
// unreachable member contributes an err= row instead of failing the
// whole reply: an operator polling stats mid-partition still wants the
// reachable side.
func (n *Node) handleClusterStats(rest []string) string {
	switch {
	case len(rest) == 0:
		return "+" + n.statsBody()
	case len(rest) == 1 && strings.EqualFold(rest[0], "ALL"):
		members := n.currentMap().Members()
		rows := make([]string, len(members))
		var wg sync.WaitGroup
		for i, mem := range members {
			if mem.ID == n.id {
				rows[i] = n.statsBody()
				continue
			}
			wg.Add(1)
			go func(i int, mem Member) {
				defer wg.Done()
				reply, err := n.peers.do(mem.Addr, "CLUSTER", "STATS")
				if err != nil {
					rows[i] = fmt.Sprintf("node=%s err=%q", mem.ID, err.Error())
					return
				}
				rows[i] = reply
			}(i, mem)
		}
		wg.Wait()
		return "+" + strings.Join(rows, "\n")
	default:
		return "-ERR CLUSTER STATS takes at most one argument: ALL"
	}
}

// WriteMetrics writes the node's cluster-layer counters in Prometheus
// text exposition format. elld's /metrics listener emits this after the
// server's per-verb metrics, so one scrape covers both layers.
func (n *Node) WriteMetrics(w io.Writer) {
	c := n.StatsCounters()
	fmt.Fprintf(w, "# TYPE ell_cluster_gossip_rounds_total counter\nell_cluster_gossip_rounds_total %d\n", c.GossipRounds)
	fmt.Fprintf(w, "# TYPE ell_cluster_suspects_raised_total counter\nell_cluster_suspects_raised_total %d\n", c.SuspectsRaised)
	fmt.Fprintf(w, "# TYPE ell_cluster_auto_leaves_total counter\nell_cluster_auto_leaves_total %d\n", c.AutoLeaves)
	fmt.Fprintf(w, "# TYPE ell_cluster_mlpfadd_groups_total counter\nell_cluster_mlpfadd_groups_total %d\n", c.MLPFAddGroups)
	fmt.Fprintf(w, "# TYPE ell_cluster_mlpfadd_batches_total counter\nell_cluster_mlpfadd_batches_total %d\n", c.MLPFAddBatches)
	fmt.Fprintf(w, "# TYPE ell_cluster_rebalance_pushes_total counter\nell_cluster_rebalance_pushes_total %d\n", c.RebalPushes)
	fmt.Fprintf(w, "# TYPE ell_cluster_moved_replies_total counter\nell_cluster_moved_replies_total %d\n", c.MovedReplies)
	fmt.Fprintf(w, "# TYPE ell_cluster_map_refetches_total counter\nell_cluster_map_refetches_total %d\n", c.MapRefetches)
	fmt.Fprintf(w, "# TYPE ell_cluster_xfer_streams_total counter\nell_cluster_xfer_streams_total %d\n", c.XferStreams)
	fmt.Fprintf(w, "# TYPE ell_cluster_xfer_resumed_total counter\nell_cluster_xfer_resumed_total %d\n", c.XferResumed)
	fmt.Fprintf(w, "# TYPE ell_cluster_xfer_frames_total counter\nell_cluster_xfer_frames_total %d\n", c.XferFrames)
	fmt.Fprintf(w, "# TYPE ell_cluster_xfer_frame_retries_total counter\nell_cluster_xfer_frame_retries_total %d\n", c.XferFrameRetries)
	fmt.Fprintf(w, "# TYPE ell_cluster_xfer_bytes_total counter\nell_cluster_xfer_bytes_total %d\n", c.XferBytes)
	fmt.Fprintf(w, "# TYPE ell_cluster_xfer_fallback_keys_total counter\nell_cluster_xfer_fallback_keys_total %d\n", c.XferFallbacks)
	fmt.Fprintf(w, "# TYPE ell_cluster_xfer_bytes_precompress_total counter\nell_cluster_xfer_bytes_precompress_total %d\n", c.XferBytesPrecompress)
	fmt.Fprintf(w, "# TYPE ell_cluster_xfer_bytes_wire_total counter\nell_cluster_xfer_bytes_wire_total %d\n", c.XferBytesWire)
	fmt.Fprintf(w, "# TYPE ell_cluster_sync_digest_rounds_total counter\nell_cluster_sync_digest_rounds_total %d\n", c.SyncDigestRounds)
	fmt.Fprintf(w, "# TYPE ell_cluster_sync_keys_repaired_total counter\nell_cluster_sync_keys_repaired_total %d\n", c.SyncKeysRepaired)
}

// Server exposes the node's embedded server, e.g. for its Stats core
// or the Prometheus writer.
func (n *Node) Server() *server.Server { return n.srv }
