package cluster

import (
	"encoding/base64"
	"errors"
	"sync"
)

// rebalance reconciles this node's local sketches with cluster map m:
// every local sketch is pushed (CLUSTER ABSORB, i.e. merge-not-replace)
// to each of its owners under m, and sketches this node no longer owns
// are deleted once every owner has a copy. Re-pushing a blob an owner
// already holds is a no-op merge, so rebalance is idempotent — it can be
// rerun after any partial failure, and concurrent rebalances of
// different nodes cannot corrupt each other (the paper's commutative,
// idempotent merge is what makes this protocol trivially safe).
//
// A node absent from m (it is leaving) owns nothing, so rebalance drains
// it: every sketch is pushed to its owners and dropped locally.
func (n *Node) rebalance(m *Map) error {
	blobs := n.store.DumpAll()
	type push struct {
		key  string
		addr string
		b64  string
	}
	var pushes []push
	keep := make(map[string]bool, len(blobs))
	for key, blob := range blobs {
		owners := m.Owners(key)
		if len(owners) == 0 {
			keep[key] = true // ownerless key (degenerate map): never drop data
			continue
		}
		b64 := base64.StdEncoding.EncodeToString(blob)
		for _, o := range owners {
			if o.ID == n.id {
				keep[key] = true
				continue
			}
			pushes = append(pushes, push{key, o.Addr, b64})
		}
	}
	errsByKey := make(map[string]error, len(blobs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 16) // bound concurrent pushes
	for _, p := range pushes {
		wg.Add(1)
		sem <- struct{}{}
		go func(p push) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := n.peers.do(p.addr, "CLUSTER", "ABSORB", p.key, p.b64); err != nil {
				mu.Lock()
				if errsByKey[p.key] == nil {
					errsByKey[p.key] = err
				}
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	var errs []error
	for key := range blobs {
		if err := errsByKey[key]; err != nil {
			errs = append(errs, err)
			continue // don't drop a key we failed to hand off
		}
		if !keep[key] {
			n.store.Delete(key)
		}
	}
	return errors.Join(errs...)
}
