package cluster

import (
	"encoding/base64"
	"errors"
	"slices"
	"strconv"
	"strings"
	"sync"

	"exaloglog/server"
)

// rebalanceReplans bounds how often one rebalance re-plans against a
// fresher map after a receiver's -STALE refusal before surfacing the
// error (each iteration adopts a strictly newer epoch, so the loop
// cannot cycle — the bound only caps churn during a membership storm).
const rebalanceReplans = 3

// rebalance reconciles this node's local sketches with the membership
// transition old→cur. It is delta-aware: a key is pushed only to
// owners it GAINED in the transition — owners that already held it
// under old are not re-sent — so a membership change costs messages
// proportional to the keys whose owner set actually changed, not
// O(keys×replicas). Two cases fall back to a full push of the key to
// every owner under cur:
//
//   - old is nil (repair / unknown provenance, e.g. data restored from
//     a snapshot or an operator-issued CLUSTER REBALANCE), and
//   - this node did not own the key under old (a stray copy, e.g. from
//     a drain that previously failed half-way) — cur's owners may
//     never have seen it.
//
// Pushes travel over the streaming bulk-transfer transport (see
// transfer.go): one framed, resumable stream per gaining peer, with
// per-key CLUSTER ABSORB both as the small-push fast path and as the
// degraded path once a stream's retry budget is spent. Either way the
// receiver merges rather than replaces, so re-sending a blob an owner
// already holds is a no-op merge and rebalance stays idempotent — it
// can be rerun after any partial failure, and concurrent rebalances of
// different nodes cannot corrupt each other (the paper's commutative,
// idempotent merge is what makes the whole protocol trivially safe).
//
// Receivers are epoch-fenced: a peer whose map has already moved past
// cur refuses the stream with -STALE, and rebalance then adopts the
// newest map its peers hold and re-plans the SAME old→ transition
// against it (bounded by rebalanceReplans) — keys bound for a dead
// epoch are re-routed instead of lost or misdelivered.
//
// A node absent from cur (it is leaving) owns nothing, so rebalance
// drains it: every local sketch is pushed to its new owners and
// dropped locally once every push for that key succeeded.
func (n *Node) rebalance(old, cur *Map) error {
	err := n.rebalanceOnce(old, cur)
	for replan := 0; replan < rebalanceReplans && errors.Is(err, errXferStale); replan++ {
		newest := n.newestPeerMap(cur)
		if newest == nil || !newest.Newer(cur) {
			break // fence tripped but no newer map visible yet; surface the error
		}
		n.swapMap(newest)
		cur = n.currentMap()
		err = n.rebalanceOnce(old, cur)
	}
	return err
}

// rebalanceOnce is one planning+push pass of rebalance against a fixed
// transition; see rebalance for the protocol it is part of.
func (n *Node) rebalanceOnce(old, cur *Map) error {
	blobs := n.store.DumpAllTagged()
	byAddr := make(map[string][]server.KeyBlob)
	keep := make(map[string]bool, len(blobs))
	pushes := 0
	for key, tagged := range blobs {
		owners := cur.Owners(key)
		if len(owners) == 0 {
			keep[key] = true // ownerless key (degenerate map): never drop data
			continue
		}
		// oldOwners is non-nil only when this node owned the key under
		// old; then owners already present under old are skipped.
		var oldOwners []string
		if old != nil {
			if ids := old.ownerIDs(key); slices.Contains(ids, n.id) {
				oldOwners = ids
			}
		}
		for _, o := range owners {
			if o.ID == n.id {
				keep[key] = true
				continue
			}
			if oldOwners != nil && slices.Contains(oldOwners, o.ID) {
				continue // delta: this owner held the key before the transition
			}
			byAddr[o.Addr] = append(byAddr[o.Addr], server.KeyBlob{Key: key, Blob: tagged.Blob, Deadline: tagged.Deadline})
			pushes++
		}
	}
	n.pushes.Add(uint64(pushes))
	cfg := n.transferConfig()
	errsByKey := make(map[string]error, len(blobs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for addr, items := range byAddr {
		wg.Add(1)
		go func(addr string, items []server.KeyBlob) {
			defer wg.Done()
			var failed map[string]error
			if len(items) >= cfg.MinStreamKeys {
				failed = n.streamTo(addr, cur.Epoch, items)
			} else {
				failed = n.absorbEach(addr, items)
			}
			if len(failed) == 0 {
				return
			}
			mu.Lock()
			for key, err := range failed {
				if errsByKey[key] == nil {
					errsByKey[key] = err
				}
			}
			mu.Unlock()
		}(addr, items)
	}
	wg.Wait()
	var errs []error
	stale := false
	for key, tagged := range blobs {
		if err := errsByKey[key]; err != nil {
			// Collapse the fan-out of a -STALE refusal (every key of the
			// refused stream carries it) into one marker error for the
			// re-plan loop; other failures surface per key.
			if errors.Is(err, errXferStale) {
				stale = true
			} else {
				errs = append(errs, err)
			}
			continue // don't drop a key we failed to hand off
		}
		if !keep[key] {
			// Conditional delete: a write that landed after the dump
			// was NOT in the pushed blob — keep the key as a stray and
			// let the next rebalance/Sync hand the fresh state off.
			n.store.DeleteIfUnchanged(key, tagged)
		}
	}
	if stale {
		errs = append(errs, errXferStale)
	}
	return errors.Join(errs...)
}

// absorbEach pushes items to addr one CLUSTER ABSORB per key — the
// path for pushes too small to amortize a stream's handshake, and the
// building block streamTo degrades to. It returns the keys that failed.
func (n *Node) absorbEach(addr string, items []server.KeyBlob) map[string]error {
	var failed map[string]error
	for _, it := range items {
		b64 := base64.StdEncoding.EncodeToString(it.Blob)
		if _, err := n.peers.do(addr, "CLUSTER", "ABSORB", it.Key, b64, strconv.FormatInt(it.Deadline, 10)); err != nil {
			if failed == nil {
				failed = make(map[string]error)
			}
			failed[it.Key] = err
		}
	}
	return failed
}

// newestPeerMap fetches the map of every member of m and returns the
// newest one seen (nil if no peer answered) — how a sender whose
// stream was -STALE-refused finds the map that superseded its own.
func (n *Node) newestPeerMap(m *Map) *Map {
	members := m.Members()
	maps := make([]*Map, len(members))
	var wg sync.WaitGroup
	for i, mem := range members {
		if mem.ID == n.id {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			reply, err := n.peers.do(addr, "CLUSTER", "MAP")
			if err != nil {
				return
			}
			if got, err := DecodeMap(strings.Fields(reply)); err == nil {
				maps[i] = got
			}
		}(i, mem.Addr)
	}
	wg.Wait()
	var best *Map
	for _, got := range maps {
		if got != nil && got.Newer(best) {
			best = got
		}
	}
	return best
}

// repair re-pushes every local sketch to all of its current owners —
// the pre-delta full rebalance, kept as an anti-entropy tool (the
// CLUSTER REBALANCE verb) for healing replica divergence after crashes
// or partitions.
func (n *Node) repair() error { return n.rebalance(nil, n.currentMap()) }
