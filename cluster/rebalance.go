package cluster

import (
	"encoding/base64"
	"errors"
	"slices"
	"sync"
)

// rebalance reconciles this node's local sketches with the membership
// transition old→cur. It is delta-aware: a key is pushed only to
// owners it GAINED in the transition — owners that already held it
// under old are not re-sent — so a membership change costs messages
// proportional to the keys whose owner set actually changed, not
// O(keys×replicas). Two cases fall back to a full push of the key to
// every owner under cur:
//
//   - old is nil (repair / unknown provenance, e.g. data restored from
//     a snapshot or an operator-issued CLUSTER REBALANCE), and
//   - this node did not own the key under old (a stray copy, e.g. from
//     a drain that previously failed half-way) — cur's owners may
//     never have seen it.
//
// Pushes use CLUSTER ABSORB (merge-not-replace): re-sending a blob an
// owner already holds is a no-op merge, so rebalance stays idempotent
// — it can be rerun after any partial failure, and concurrent
// rebalances of different nodes cannot corrupt each other (the paper's
// commutative, idempotent merge is what makes this protocol trivially
// safe).
//
// A node absent from cur (it is leaving) owns nothing, so rebalance
// drains it: every local sketch is pushed to its new owners and
// dropped locally once every push for that key succeeded.
func (n *Node) rebalance(old, cur *Map) error {
	blobs := n.store.DumpAllTagged()
	type push struct {
		key  string
		addr string
		b64  string
	}
	var pushes []push
	keep := make(map[string]bool, len(blobs))
	for key, tagged := range blobs {
		owners := cur.Owners(key)
		if len(owners) == 0 {
			keep[key] = true // ownerless key (degenerate map): never drop data
			continue
		}
		// oldOwners is non-nil only when this node owned the key under
		// old; then owners already present under old are skipped.
		var oldOwners []string
		if old != nil {
			if ids := old.ownerIDs(key); slices.Contains(ids, n.id) {
				oldOwners = ids
			}
		}
		b64 := ""
		for _, o := range owners {
			if o.ID == n.id {
				keep[key] = true
				continue
			}
			if oldOwners != nil && slices.Contains(oldOwners, o.ID) {
				continue // delta: this owner held the key before the transition
			}
			if b64 == "" {
				b64 = base64.StdEncoding.EncodeToString(tagged.Blob)
			}
			pushes = append(pushes, push{key, o.Addr, b64})
		}
	}
	n.pushes.Add(uint64(len(pushes)))
	errsByKey := make(map[string]error, len(blobs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 16) // bound concurrent pushes
	for _, p := range pushes {
		wg.Add(1)
		sem <- struct{}{}
		go func(p push) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := n.peers.do(p.addr, "CLUSTER", "ABSORB", p.key, p.b64); err != nil {
				mu.Lock()
				if errsByKey[p.key] == nil {
					errsByKey[p.key] = err
				}
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	var errs []error
	for key, tagged := range blobs {
		if err := errsByKey[key]; err != nil {
			errs = append(errs, err)
			continue // don't drop a key we failed to hand off
		}
		if !keep[key] {
			// Conditional delete: a write that landed after the dump
			// was NOT in the pushed blob — keep the key as a stray and
			// let the next rebalance/Sync hand the fresh state off.
			n.store.DeleteIfUnchanged(key, tagged)
		}
	}
	return errors.Join(errs...)
}

// repair re-pushes every local sketch to all of its current owners —
// the pre-delta full rebalance, kept as an anti-entropy tool (the
// CLUSTER REBALANCE verb) for healing replica divergence after crashes
// or partitions.
func (n *Node) repair() error { return n.rebalance(nil, n.currentMap()) }
