package cluster

import (
	"fmt"
	"strings"
	"testing"
)

// TestClusterStatsReportsCounters: CLUSTER STATS returns the node's own
// counter row plus the per-verb serving stats, and CLUSTER STATS ALL
// fans out to every member — with the poll itself visible in the
// batcher/verb counters it reports.
func TestClusterStatsReportsCounters(t *testing.T) {
	h := newHarness(t, 3, 2)
	for k := 0; k < 20; k++ {
		if _, err := h.node("n1").Add(fmt.Sprintf("st-%d", k), "a", "b"); err != nil {
			t.Fatal(err)
		}
	}
	h.tick(2)

	reply, err := h.do("n2", "CLUSTER", "STATS")
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(reply, "; ")
	if !strings.HasPrefix(rows[0], "node=n2 gossip_rounds=") {
		t.Fatalf("CLUSTER STATS first row %q, want the n2 counter row", rows[0])
	}
	if !strings.Contains(rows[0], "mlpfadd_groups=") || !strings.Contains(rows[0], "auto_leaves=0") {
		t.Errorf("counter row %q lacks batcher/eviction counters", rows[0])
	}
	if !strings.Contains(rows[0], "xfer_streams=") || !strings.Contains(rows[0], "xfer_fallbacks=") {
		t.Errorf("counter row %q lacks the bulk-transfer counters", rows[0])
	}
	if !strings.Contains(reply, "uptime_ms=") {
		t.Errorf("CLUSTER STATS %q lacks the serving summary row", reply)
	}

	all, err := h.do("n1", "CLUSTER", "STATS", "ALL")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"n1", "n2", "n3"} {
		if !strings.Contains(all, "node="+id+" ") {
			t.Errorf("CLUSTER STATS ALL lacks the row for %s", id)
		}
	}
	if _, err := h.do("n1", "CLUSTER", "STATS", "BOGUS"); err == nil {
		t.Error("CLUSTER STATS BOGUS accepted")
	}

	// The gossip rounds driven above are visible.
	c := h.node("n2").StatsCounters()
	if c.GossipRounds == 0 {
		t.Error("gossip_rounds = 0 after ticking the fake clock")
	}
	if c.SuspectsRaised != 0 || c.AutoLeaves != 0 {
		t.Errorf("healthy cluster raised %d suspects / %d auto-leaves", c.SuspectsRaised, c.AutoLeaves)
	}
}

// TestMetricsPollingCountsAsLiveness: CLUSTER STATS round trips run
// through the peer pool, whose alive callback feeds the failure
// detector (markAlive) — so a peer whose gossip digests are all lost
// but which keeps answering metrics polls must never be suspected.
// The control half proves the same silence WITHOUT polls does raise
// suspicion, so the test cannot pass vacuously.
func TestMetricsPollingCountsAsLiveness(t *testing.T) {
	// Gossip digests are blackholed in both directions; every other
	// cluster command (JOIN, SETMAP, STATS, ...) flows normally.
	dropGossip := func(addr string, parts []string) error {
		if len(parts) >= 2 && strings.EqualFold(parts[0], "CLUSTER") && strings.EqualFold(parts[1], "GOSSIP") {
			return fmt.Errorf("test: gossip digest blackholed")
		}
		return nil
	}
	boot := func(id string) *Node {
		t.Helper()
		n, err := NewNode(id, testConfig(), 2)
		if err != nil {
			t.Fatal(err)
		}
		n.setFaultHook(dropGossip)
		n.SetGossipConfig(GossipConfig{Fanout: 2, SuspectAfter: testSuspectAfter})
		if err := n.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	suspected := func(n *Node, peer string) bool {
		t.Helper()
		_, members := n.Health()
		for _, mh := range members {
			if mh.ID == peer {
				return mh.Suspect
			}
		}
		t.Fatalf("%s not in %s's health view", peer, n.ID())
		return false
	}

	// Control: digests lost, no other traffic → suspicion after the window.
	a := boot("a1")
	b := boot("b1")
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < testSuspectAfter+1; r++ {
		a.Gossip()
		b.Gossip()
	}
	if !suspected(a, "b1") {
		t.Fatal("control: digest-silent peer was never suspected — the polling half below proves nothing")
	}
	if c := a.StatsCounters(); c.SuspectsRaised == 0 {
		t.Error("control: suspects_raised counter did not move on an alive→suspect transition")
	}

	// Same silence, but now a polls b's CLUSTER STATS through its peer
	// pool every round — transport-level proof of life.
	c := boot("c1")
	d := boot("d1")
	if err := d.Join(c.Addr()); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < testSuspectAfter+3; r++ {
		if _, err := c.peers.do(d.Addr(), "CLUSTER", "STATS"); err != nil {
			t.Fatalf("round %d: metrics poll: %v", r, err)
		}
		c.Gossip()
		d.Gossip()
	}
	if suspected(c, "d1") {
		t.Error("metrics-polled peer was suspected despite answering every poll")
	}
	if cs := c.StatsCounters(); cs.SuspectsRaised != 0 {
		t.Errorf("polling node raised %d suspects, want 0", cs.SuspectsRaised)
	}
	if !c.Map().Has("d1") {
		t.Error("polled peer fell off the map")
	}
}
