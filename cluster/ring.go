// Package cluster turns the single-node server package into a sharded,
// replicated sketch cluster. A versioned cluster map with a
// consistent-hash ring assigns every key to N owner nodes; any node
// accepts any command, forwarding writes to the key's owners and
// answering distinct-count queries by scatter-gathering serialized
// sketches and merging them locally. Because ExaLogLog merging is
// commutative and idempotent (paper Section 1), replicas may be written
// redundantly and blobs re-sent at will — rebalancing after membership
// changes is just "push your copy to whoever owns it now".
//
// Wire-wise the cluster layers CLUSTER subcommands onto the server line
// protocol and overrides PFADD / PFCOUNT / PFMERGE / DEL / KEYS with
// cluster-wide semantics, so any existing client pointed at any node
// sees one logical store.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerNode is the number of virtual nodes each member contributes
// to the ring. More virtual nodes smooth the key distribution at the
// cost of a larger sorted ring; 64 keeps the per-node share within a few
// percent of fair for small clusters.
const vnodesPerNode = 64

// ring is an immutable consistent-hash ring over a set of node IDs.
type ring struct {
	hashes []uint64 // sorted virtual-node hashes
	owners []string // owners[i] is the node owning hashes[i]
}

// hash64 hashes s with FNV-1a and a splitmix64 finalizer: plain FNV over
// short, similar strings ("n1#0", "n1#1", …) leaves the high bits
// correlated, which skews the ring badly; the finalizer restores
// avalanche.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds a ring from node IDs. IDs must be unique.
func newRing(ids []string) *ring {
	r := &ring{
		hashes: make([]uint64, 0, len(ids)*vnodesPerNode),
		owners: make([]string, 0, len(ids)*vnodesPerNode),
	}
	type vnode struct {
		h  uint64
		id string
	}
	vns := make([]vnode, 0, len(ids)*vnodesPerNode)
	for _, id := range ids {
		for i := 0; i < vnodesPerNode; i++ {
			vns = append(vns, vnode{hash64(fmt.Sprintf("%s#%d", id, i)), id})
		}
	}
	sort.Slice(vns, func(i, j int) bool {
		if vns[i].h != vns[j].h {
			return vns[i].h < vns[j].h
		}
		return vns[i].id < vns[j].id // deterministic on (vanishingly rare) collisions
	})
	for _, v := range vns {
		r.hashes = append(r.hashes, v.h)
		r.owners = append(r.owners, v.id)
	}
	return r
}

// ownersOf returns up to n distinct node IDs owning key, walking
// clockwise from the key's hash. With fewer than n nodes, all nodes are
// returned. The first ID is the key's primary.
func (r *ring) ownersOf(key string, n int) []string {
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		id := r.owners[(start+i)%len(r.hashes)]
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}
