package cluster

// Gossip-based failure detection with epoch-fenced auto-LEAVE.
//
// Each node keeps a heartbeat counter it increments once per gossip
// round and a per-peer record of the highest heartbeat it has seen and
// when (in rounds of its own logical clock) that evidence last
// advanced. One round — Node.Gossip — pushes a digest (node id →
// heartbeat, plus a piggybacked suspicion bit and the sender's map
// ordering triple) to a few peers chosen round-robin, and processes the
// digest each peer sends back, so liveness information spreads
// epidemically in O(log N) rounds.
//
// A peer whose evidence has not advanced for SuspectAfter rounds
// becomes SUSPECT locally; the suspicion bit travels with every digest,
// so suspicions accumulate per node across the cluster. Only when this
// node itself suspects a peer AND a quorum (majority of the current
// map, counting this node) is known to agree does it coordinate an
// auto-LEAVE — which goes through the same epoch claim as an operator
// LEAVE, so eviction obeys the (Epoch, Version, Coordinator) order and
// a minority partition can never evict the majority: its suspicion
// count cannot reach quorum (it cannot hear the other suspecters), and
// even a bug that tried would fail the epoch claim.
//
// Time is logical: nothing in this file reads a wall clock. The driver
// — elld's -gossip-interval ticker in production, the test harness's
// fake clock in chaos tests — advances it by calling Gossip, which is
// what makes every failure-detection test deterministic.

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// GossipConfig tunes the failure detector. The zero value is replaced
// by defaults (Fanout 2, SuspectAfter 5) in NewNode.
type GossipConfig struct {
	// Fanout is how many peers one Gossip round pushes a digest to.
	Fanout int
	// SuspectAfter is how many rounds a peer's heartbeat may stall
	// before this node suspects it. With an interval of I the detection
	// latency is roughly (SuspectAfter+2)·I: the timeout plus a round
	// or two for suspicions to meet quorum.
	SuspectAfter int
}

const (
	defaultFanout       = 2
	defaultSuspectAfter = 5
)

// peerState is this node's evidence about one cluster member.
type peerState struct {
	hb          uint64          // highest heartbeat counter seen
	lastAlive   uint64          // local round when evidence last advanced
	suspectedBy map[string]bool // member ids currently asserting suspicion
}

// gossipState is the detector state machine; it has its own lock,
// taken strictly after (never around) node-level locks.
type gossipState struct {
	mu       sync.Mutex
	cfg      GossipConfig
	round    uint64 // local logical clock, advanced only by Gossip
	selfHB   uint64 // own heartbeat counter
	peers    map[string]*peerState
	cursor   int  // round-robin position for fanout target selection
	needSync bool // a digest revealed a newer map triple; Sync next round

	// suspectsRaised counts alive→suspect transitions in this node's
	// own judgment (re-asserting an existing suspicion does not count)
	// — the CLUSTER STATS suspects_raised counter.
	suspectsRaised uint64

	// evictedAt records auto-evictions (id → epoch of the eviction
	// map), so a JOIN that brings the node back can tell it what
	// happened. Records are seeded on the evicting coordinator and
	// piggybacked on gossip digests ("~id=epoch" tokens), so ANY member
	// — not just the coordinator — can deliver the rejoin feedback no
	// matter which node the returning member joins through. A record is
	// consumed by the member that delivers it and garbage-collected
	// everywhere else as soon as the evicted id is back on the map.
	// Nodes that never rejoin cannot grow this without bound: the set
	// is capped at maxEvictionRecords, evicting the lowest-epoch
	// (oldest) record first.
	evictedAt map[string]uint64
}

// maxEvictionRecords bounds the remembered auto-evictions per node —
// and with them the "~id=epoch" tokens per digest. Decommissioned
// nodes never rejoin to consume their record, so without a cap a
// churny fleet would accrete digest weight forever. When the cap is
// hit, the record of the OLDEST eviction (lowest epoch, id tie-break)
// makes way: the feedback is best-effort operator courtesy, and the
// recent evictions are the ones someone is likely to rejoin.
const maxEvictionRecords = 64

// recordEvictionLocked inserts or refreshes an eviction record,
// enforcing the size cap; g.mu held.
func (g *gossipState) recordEvictionLocked(id string, epoch uint64) {
	if cur, ok := g.evictedAt[id]; ok {
		if epoch > cur {
			g.evictedAt[id] = epoch
		}
		return
	}
	if len(g.evictedAt) >= maxEvictionRecords {
		victim, victimEpoch := "", uint64(0)
		for vid, ve := range g.evictedAt {
			if victim == "" || ve < victimEpoch || (ve == victimEpoch && vid < victim) {
				victim, victimEpoch = vid, ve
			}
		}
		if victimEpoch >= epoch {
			return // the incoming record is the oldest of them all: drop it instead
		}
		delete(g.evictedAt, victim)
	}
	g.evictedAt[id] = epoch
}

// SetGossipConfig overrides the failure-detector tuning. Call before
// the node starts gossiping; zero fields keep their defaults.
func (n *Node) SetGossipConfig(cfg GossipConfig) {
	n.gsp.mu.Lock()
	defer n.gsp.mu.Unlock()
	if cfg.Fanout > 0 {
		n.gsp.cfg.Fanout = cfg.Fanout
	}
	if cfg.SuspectAfter > 0 {
		n.gsp.cfg.SuspectAfter = cfg.SuspectAfter
	}
}

// markAlive is direct liveness evidence from transport level: any
// successful reply from addr proves the peer behind it is up. The pool
// calls it on every completed command, so a cluster under steady
// traffic never false-suspects a responsive peer even if its gossip
// digests are delayed.
func (n *Node) markAlive(addr string) {
	id := n.currentMap().IDByAddr(addr)
	if id == "" || id == n.id {
		return
	}
	g := &n.gsp
	g.mu.Lock()
	if st, ok := g.peers[id]; ok {
		st.lastAlive = g.round
		delete(st.suspectedBy, n.id)
	}
	g.mu.Unlock()
}

// Gossip runs one failure-detection round: advance the logical clock
// and own heartbeat, time out silent peers into SUSPECT, exchange
// digests with Fanout round-robin peers, and coordinate an epoch-fenced
// auto-LEAVE for any peer this node suspects once a quorum of members
// is known to agree. It returns the ids it evicted this round (usually
// none). Unreachable gossip targets are simply skipped — that silence
// is itself the signal the detector feeds on.
func (n *Node) Gossip() []string {
	g := &n.gsp

	// A previous round learned (from a digest triple) that some peer
	// holds a newer map; pull it before acting on stale membership.
	g.mu.Lock()
	syncFirst := g.needSync
	g.needSync = false
	g.mu.Unlock()
	if syncFirst {
		n.Sync() // best-effort: a failed sync just retries next round
	}

	m := n.currentMap()
	members := m.Members()

	g.mu.Lock()
	g.round++
	g.selfHB++
	// Reconcile detector state with the current map: new members get a
	// fresh grace period (lastAlive = now), departed members are
	// forgotten so their state cannot leak into a later rejoin.
	for _, mem := range members {
		if mem.ID == n.id {
			continue
		}
		if _, ok := g.peers[mem.ID]; !ok {
			g.peers[mem.ID] = &peerState{lastAlive: g.round, suspectedBy: make(map[string]bool)}
		}
	}
	for id := range g.peers {
		if !m.Has(id) {
			delete(g.peers, id)
		}
	}
	// An eviction record for a node that is back on the map has been
	// delivered (the JOIN path consumes it on whichever member
	// coordinated the rejoin): forget it everywhere else, so a later
	// unrelated JOIN cannot re-deliver stale feedback.
	for id := range g.evictedAt {
		if m.Has(id) {
			delete(g.evictedAt, id)
		}
	}
	// Timeout: a peer whose evidence stalled for SuspectAfter rounds is
	// suspect in this node's own judgment.
	for _, st := range g.peers {
		if g.round-st.lastAlive >= uint64(g.cfg.SuspectAfter) && !st.suspectedBy[n.id] {
			st.suspectedBy[n.id] = true
			g.suspectsRaised++
		}
	}
	digest := n.buildDigestLocked(m)
	targets := n.pickTargetsLocked(members)
	g.mu.Unlock()

	// Push-pull exchange. Each reply carries the target's digest, which
	// may deliver the suspicion bits that complete a quorum below — and,
	// when the target's map supersedes ours, the full map piggybacked as
	// an "@map" payload, healing us in the same round trip with no Sync.
	payload := append([]string{"CLUSTER", "GOSSIP"}, strings.Fields(digest)...)
	for _, addr := range targets {
		reply, err := n.peers.do(addr, payload...)
		if err != nil {
			continue // silent peer: the timeout above is the accounting
		}
		d, err := decodeDigest(strings.Fields(reply))
		if err != nil {
			continue
		}
		n.installDigestMap(d)
		n.processDigest(d, true)
		// The reply's triple shows the replier behind our map: push the
		// full map now, one targeted SETMAP, instead of leaving the
		// laggard to discover it and pull a full Sync round.
		if cur := n.currentMap(); tripleBehind(cur, d.Epoch, d.Version, d.Coordinator) {
			n.peers.do(addr, append([]string{"CLUSTER", "SETMAP"}, strings.Fields(cur.Encode())...)...)
		}
	}

	// Eviction: only for peers this node independently suspects, and
	// only once a majority of the current map is known to agree. The
	// LEAVE itself is epoch-fenced, so this can never outrun a quorum.
	quorum := m.Len()/2 + 1
	var candidates []string
	g.mu.Lock()
	for id, st := range g.peers {
		if !st.suspectedBy[n.id] {
			continue
		}
		// Count only suspicion from CURRENT members: a bit asserted by
		// a node that has since left the map is stale hearsay, and
		// counting it could let fewer than a live majority evict.
		agreeing := 0
		for suspector := range st.suspectedBy {
			if m.Has(suspector) {
				agreeing++
			}
		}
		if agreeing >= quorum {
			candidates = append(candidates, id)
		}
	}
	g.mu.Unlock()
	sort.Strings(candidates)
	var evicted []string
	for _, id := range candidates {
		if !n.currentMap().Has(id) {
			continue // a rival detector beat us to it
		}
		if reply := n.handleLeave(id); strings.HasPrefix(reply, "+OK") {
			epoch := n.currentMap().Epoch
			g.mu.Lock()
			g.recordEvictionLocked(id, epoch)
			g.mu.Unlock()
			n.autoLeaves.Add(1)
			evicted = append(evicted, id)
		}
	}
	return evicted
}

// buildDigestLocked renders this node's current digest; g.mu held.
func (n *Node) buildDigestLocked(m *Map) string {
	g := &n.gsp
	coord := m.Coordinator
	if coord == "" {
		coord = noCoordinator
	}
	parts := make([]string, 0, 5+m.Len()+len(g.evictedAt))
	parts = append(parts, gossipWireTag, n.id,
		strconv.FormatUint(m.Epoch, 10),
		strconv.FormatUint(m.Version, 10),
		coord)
	for _, mem := range m.Members() {
		if mem.ID == n.id {
			parts = append(parts, mem.ID+"="+strconv.FormatUint(g.selfHB, 10))
			continue
		}
		st := g.peers[mem.ID]
		if st == nil {
			continue
		}
		tok := mem.ID + "=" + strconv.FormatUint(st.hb, 10)
		if st.suspectedBy[n.id] {
			tok += suspectMark
		}
		parts = append(parts, tok)
	}
	// Piggyback the eviction records, sorted for determinism. An old
	// (pre-record) decoder reads "~id=epoch" as a heartbeat entry for
	// the unknown member "~id" and skips it — tolerated, not misread.
	if len(g.evictedAt) > 0 {
		ids := make([]string, 0, len(g.evictedAt))
		for id := range g.evictedAt {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			parts = append(parts, evictionMark+id+"="+strconv.FormatUint(g.evictedAt[id], 10))
		}
	}
	return strings.Join(parts, " ")
}

// pickTargetsLocked chooses up to Fanout peer addresses round-robin
// over the sorted member list — deterministic, and over enough rounds
// every peer is contacted equally often. g.mu held.
func (n *Node) pickTargetsLocked(members []Member) []string {
	g := &n.gsp
	var others []Member
	for _, mem := range members {
		if mem.ID != n.id {
			others = append(others, mem)
		}
	}
	if len(others) == 0 {
		return nil
	}
	k := g.cfg.Fanout
	if k > len(others) {
		k = len(others)
	}
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, others[(g.cursor+i)%len(others)].Addr)
	}
	g.cursor = (g.cursor + k) % len(others)
	return out
}

// processDigest folds one received digest into the detector state:
// direct contact with the sender, heartbeat advances (which refute all
// outstanding suspicion of that peer), and the sender's suspicion bits.
//
// fromReply distinguishes how a superseding map triple is handled. A
// digest that arrived as a gossip REPLY should have piggybacked the
// full map (installDigestMap already installed it); if it did not —
// size-capped — the needSync fallback queues a full Sync. A digest
// PUSHED at us never queues a Sync: our reply carries our (stale)
// triple back, and the pusher answers it with a targeted SETMAP — the
// delta path that keeps a single laggard from costing O(members) MAP
// pulls.
func (n *Node) processDigest(d *digest, fromReply bool) {
	m := n.currentMap()
	g := &n.gsp
	g.mu.Lock()
	defer g.mu.Unlock()
	senderIsMember := m.Has(d.Sender)
	if st, ok := g.peers[d.Sender]; ok {
		// Hearing from the sender at all is as good as a heartbeat.
		st.lastAlive = g.round
		delete(st.suspectedBy, n.id)
	}
	for _, e := range d.Entries {
		if e.ID == n.id {
			continue // our own liveness is not in question here
		}
		st, ok := g.peers[e.ID]
		if !ok {
			continue // not in our map (yet); Sync will reconcile
		}
		if e.HB > st.hb {
			st.hb = e.HB
			st.lastAlive = g.round
			// Fresh evidence of life refutes every outstanding
			// suspicion; peers that still disagree will re-assert.
			st.suspectedBy = make(map[string]bool)
		}
		// Suspicion is a member's privilege: a digest from a node not on
		// our map (evicted, or ahead of a membership change we haven't
		// learned) may still prove ITS liveness, but its opinion of
		// others must not count toward an eviction quorum.
		if !senderIsMember {
			continue
		}
		if e.Suspect {
			st.suspectedBy[d.Sender] = true
		} else {
			delete(st.suspectedBy, d.Sender)
		}
	}
	// Eviction records spread like the suspicion bits — member-only, so
	// a node evicted from the map cannot plant history. A record about a
	// node currently ON our map is stale (it already rejoined); a later
	// eviction at a higher epoch supersedes an older record.
	if senderIsMember {
		for _, r := range d.Evictions {
			if r.ID == n.id || m.Has(r.ID) {
				continue
			}
			g.recordEvictionLocked(r.ID, r.Epoch)
		}
	}
	if fromReply && d.MapPayload == nil && m.SupersededByTriple(d.Epoch, d.Version, d.Coordinator) {
		g.needSync = true
	}
}

// installDigestMap installs a full map piggybacked on a gossip digest
// (no-op without a payload, or when the payload is not newer). It runs
// OUTSIDE g.mu — installing triggers a rebalance — and callers invoke
// it BEFORE processDigest so a superseding triple whose map already
// arrived does not also queue a Sync. Best-effort: a failed rebalance
// leaves strays for the next Sync/drain to heal, as everywhere else.
func (n *Node) installDigestMap(d *digest) {
	if d.MapPayload == nil || !d.MapPayload.Newer(n.currentMap()) {
		return
	}
	n.installAndRebalance(d.MapPayload)
}

// tripleBehind reports whether the ordering triple (epoch, version,
// coordinator) is strictly OLDER than m — i.e. whoever sent it needs m.
func tripleBehind(m *Map, epoch, version uint64, coordinator string) bool {
	if m.SupersededByTriple(epoch, version, coordinator) {
		return false // the triple is ahead of m (or incomparable-newer)
	}
	return m.Epoch != epoch || m.Version != version || m.Coordinator != coordinator
}

// handleGossip is the CLUSTER GOSSIP wire handler: fold the pushed
// digest in and reply with ours (push-pull), so one round trip moves
// information both ways. When the pusher's map triple is strictly
// behind this node's, the reply additionally piggybacks the full map as
// an "@map" payload — the one-round-trip heal that replaces the old
// "set needSync, pull every member's map next round" behavior.
func (n *Node) handleGossip(rest []string) string {
	d, err := decodeDigest(rest)
	if err != nil {
		return "-ERR " + err.Error()
	}
	n.installDigestMap(d)
	n.processDigest(d, false)
	m := n.currentMap()
	n.gsp.mu.Lock()
	reply := n.buildDigestLocked(m)
	n.gsp.mu.Unlock()
	if tripleBehind(m, d.Epoch, d.Version, d.Coordinator) {
		if enc := m.Encode(); len(reply)+len(mapMark)+len(enc)+2 <= maxWireBytes {
			reply += " " + mapMark + " " + enc
		}
	}
	return "+" + reply
}

// MemberHealth is one member's state as seen by this node's detector.
type MemberHealth struct {
	ID         string
	Self       bool
	Suspect    bool   // this node's own judgment
	HB         uint64 // highest heartbeat seen (own counter for Self)
	SinceHeard uint64 // rounds since evidence last advanced (0 for Self)
	Suspectors int    // members known to currently suspect this one
}

// Health reports the detector's view of every current member, sorted
// by ID, plus the local round counter. A node evicted from its own map
// reports only itself, un-membered.
func (n *Node) Health() (round uint64, members []MemberHealth) {
	m := n.currentMap()
	g := &n.gsp
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, mem := range m.Members() {
		if mem.ID == n.id {
			members = append(members, MemberHealth{ID: n.id, Self: true, HB: g.selfHB})
			continue
		}
		st := g.peers[mem.ID]
		if st == nil {
			members = append(members, MemberHealth{ID: mem.ID})
			continue
		}
		members = append(members, MemberHealth{
			ID:         mem.ID,
			Suspect:    st.suspectedBy[n.id],
			HB:         st.hb,
			SinceHeard: g.round - st.lastAlive,
			Suspectors: len(st.suspectedBy),
		})
	}
	return g.round, members
}

// handleHealth renders Health for the CLUSTER HEALTH verb:
//
//	+round=<r> quorum=<q> member=<bool> <id>=<alive|suspect|self>,hb=<n>,heard=<n>,sus=<n> ...
//
// Fields after a member's first '=' are comma-separated k=v pairs; the
// id itself may contain neither '=' nor whitespace (validID), so the
// first '=' is an unambiguous split point.
func (n *Node) handleHealth() string {
	round, members := n.Health()
	m := n.currentMap()
	parts := make([]string, 0, 3+len(members))
	parts = append(parts,
		"round="+strconv.FormatUint(round, 10),
		"quorum="+strconv.Itoa(m.Len()/2+1),
		"member="+strconv.FormatBool(m.Has(n.id)))
	for _, mh := range members {
		state := "alive"
		switch {
		case mh.Self:
			state = "self"
		case mh.Suspect:
			state = "suspect"
		}
		parts = append(parts, fmt.Sprintf("%s=%s,hb=%d,heard=%d,sus=%d",
			mh.ID, state, mh.HB, mh.SinceHeard, mh.Suspectors))
	}
	return "+" + strings.Join(parts, " ")
}

// --- wire format -------------------------------------------------------

// gossipWireTag versions the digest payload, like mapWireTag for maps.
const gossipWireTag = "g1"

// suspectMark is appended to a digest entry's heartbeat when the sender
// currently suspects that member. '!' cannot appear inside the decimal
// heartbeat, so the entry stays unambiguous.
const suspectMark = "!"

// evictionMark prefixes an eviction-record token ("~id=epoch"). A
// valid member id may itself start with '~', but such an id can never
// appear as an entry in the same digest as a record for it — records
// are only carried for ids OFF the map — and a pre-record decoder
// reads the token as an unknown member's heartbeat and skips it.
const evictionMark = "~"

// mapMark separates the digest's entry tokens from an optional
// piggybacked full-map payload: everything after it is a Map.Encode
// token stream. The marker contains no '=', so a pre-payload decoder
// errors on it (rejecting the digest) rather than misreading map tokens
// as heartbeat entries.
const mapMark = "@map"

// digestEntry is one member's row in a gossip digest.
type digestEntry struct {
	ID      string
	HB      uint64
	Suspect bool
}

// evictionRecord is one piggybacked auto-eviction fact: id was evicted
// by the map minted at Epoch and has not rejoined yet.
type evictionRecord struct {
	ID    string
	Epoch uint64
}

// digest is the decoded CLUSTER GOSSIP payload:
//
//	g1 <sender> <epoch> <version> <coordinator|-> <id>=<hb>[!] ... ~<id>=<epoch> ... [@map <v2 map tokens>]
//
// The (epoch, version, coordinator) triple is the sender's map
// ordering, enough for the receiver to know WHETHER it is behind. The
// trailing "~id=epoch" tokens are auto-eviction records (see
// gossipState). A gossip REPLY whose sender's map supersedes the
// pusher's additionally piggybacks the full map after an "@map" marker
// — the map delta rides the digest exchange itself, so a node that
// missed a broadcast heals in one round trip instead of pulling every
// member's map through a Sync round.
type digest struct {
	Sender      string
	Epoch       uint64
	Version     uint64
	Coordinator string
	Entries     []digestEntry
	Evictions   []evictionRecord
	MapPayload  *Map // piggybacked full map (nil when absent)
}

// decodeDigest parses the gossip payload strictly: like DecodeMap it
// must reject (never panic on, never over-allocate for) a corrupt or
// hostile payload — see FuzzGossipDecode. Size caps are shared with the
// map codec: at most maxWireMembers entries and maxWireBytes total.
func decodeDigest(tokens []string) (*digest, error) {
	if len(tokens) < 5 {
		return nil, fmt.Errorf("cluster: gossip digest needs tag, sender, epoch, version and coordinator, got %d tokens", len(tokens))
	}
	total := len(tokens)
	for _, tok := range tokens {
		total += len(tok)
	}
	if total > maxWireBytes {
		return nil, fmt.Errorf("cluster: gossip digest is %d bytes (limit %d)", total, maxWireBytes)
	}
	if tokens[0] != gossipWireTag {
		return nil, fmt.Errorf("cluster: unsupported gossip payload tag %q (want %s)", tokens[0], gossipWireTag)
	}
	if !validID(tokens[1]) {
		return nil, fmt.Errorf("cluster: bad gossip sender %q", tokens[1])
	}
	epoch, err := strconv.ParseUint(tokens[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad gossip epoch %q", tokens[2])
	}
	version, err := strconv.ParseUint(tokens[3], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad gossip version %q", tokens[3])
	}
	coordinator := tokens[4]
	if coordinator == noCoordinator {
		coordinator = ""
	} else if !validID(coordinator) {
		return nil, fmt.Errorf("cluster: bad gossip coordinator %q", tokens[4])
	}
	entryTokens := tokens[5:]
	var mapTokens []string
	if i := slices.Index(entryTokens, mapMark); i >= 0 {
		mapTokens = entryTokens[i+1:]
		entryTokens = entryTokens[:i]
	}
	if len(entryTokens) > maxWireMembers {
		return nil, fmt.Errorf("cluster: gossip digest claims %d entries (limit %d)", len(entryTokens), maxWireMembers)
	}
	d := &digest{
		Sender:      tokens[1],
		Epoch:       epoch,
		Version:     version,
		Coordinator: coordinator,
		Entries:     make([]digestEntry, 0, len(entryTokens)),
	}
	seen := make(map[string]bool, len(entryTokens))
	seenEv := map[string]bool{}
	for _, tok := range entryTokens {
		if rec, ok := strings.CutPrefix(tok, evictionMark); ok {
			id, es, ok := strings.Cut(rec, "=")
			if !ok || !validID(id) {
				return nil, fmt.Errorf("cluster: bad gossip eviction record %q", tok)
			}
			if seenEv[id] {
				return nil, fmt.Errorf("cluster: duplicate gossip eviction record %q", id)
			}
			seenEv[id] = true
			e, err := strconv.ParseUint(es, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad gossip eviction epoch in %q", tok)
			}
			d.Evictions = append(d.Evictions, evictionRecord{ID: id, Epoch: e})
			continue
		}
		id, hbs, ok := strings.Cut(tok, "=")
		if !ok || !validID(id) {
			return nil, fmt.Errorf("cluster: bad gossip entry %q", tok)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate gossip entry %q", id)
		}
		seen[id] = true
		suspect := strings.HasSuffix(hbs, suspectMark)
		if suspect {
			hbs = strings.TrimSuffix(hbs, suspectMark)
		}
		hb, err := strconv.ParseUint(hbs, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad gossip heartbeat in %q", tok)
		}
		d.Entries = append(d.Entries, digestEntry{ID: id, HB: hb, Suspect: suspect})
	}
	if mapTokens != nil {
		m, err := DecodeMap(mapTokens)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad gossip map payload: %w", err)
		}
		d.MapPayload = m
	}
	return d, nil
}

// encode renders the digest back to its token form (the inverse of
// decodeDigest; used by tests to pin round-trip stability).
func (d *digest) encode() string {
	coord := d.Coordinator
	if coord == "" {
		coord = noCoordinator
	}
	parts := make([]string, 0, 5+len(d.Entries)+len(d.Evictions))
	parts = append(parts, gossipWireTag, d.Sender,
		strconv.FormatUint(d.Epoch, 10),
		strconv.FormatUint(d.Version, 10),
		coord)
	for _, e := range d.Entries {
		tok := e.ID + "=" + strconv.FormatUint(e.HB, 10)
		if e.Suspect {
			tok += suspectMark
		}
		parts = append(parts, tok)
	}
	for _, r := range d.Evictions {
		parts = append(parts, evictionMark+r.ID+"="+strconv.FormatUint(r.Epoch, 10))
	}
	if d.MapPayload != nil {
		parts = append(parts, mapMark)
		parts = append(parts, strings.Fields(d.MapPayload.Encode())...)
	}
	return strings.Join(parts, " ")
}
