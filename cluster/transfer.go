package cluster

import (
	"bufio"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exaloglog/internal/compress"
	"exaloglog/server"
)

// This file is the streaming bulk-transfer transport used by rebalance,
// Sync's stray drain and post-eviction data return. Instead of one
// CLUSTER ABSORB round trip per (key, owner) pair, a sender opens one
// dedicated connection per peer, frames N tagged key blobs per message,
// keeps a bounded window of frames in flight, and resumes from the last
// cumulatively acked frame after any timeout or connection drop. The
// protocol leans entirely on the paper's merge property: re-delivering
// a frame is an idempotent re-merge, so at-least-once is exactly-once
// in effect and resume needs no receiver-side undo log.
//
// Wire protocol (all lines ride the ordinary line protocol, under the
// CLUSTER verb, so the server needs no second listener):
//
//	CLUSTER XFER BEGIN e=<epoch> sid=<sid> seq=<n> → +OK seq=<resume> | -STALE e=<cur>
//	CLUSTER XFER FRAME <sid> <seq> <base64 frame>  → +ACK <cum>       | -STALE e=<cur> | -ERR ...
//	CLUSTER XFER END <sid> <keys> <bytes>          → +OK keys=.. bytes=.. | -ERR checksum ...
//
// The receiver tracks one session per sid: <cum> is the highest
// contiguously applied frame, duplicates (seq ≤ cum) are acked without
// re-applying, and gaps are rejected — the sender's resume handshake
// (BEGIN with seq = last acked + 1) re-synchronizes both sides after a
// redial. Sessions are epoch-fenced: a receiver whose map has moved to
// a newer epoch refuses the stream with -STALE and the sender re-plans
// its rebalance against the fresh map instead of delivering keys to an
// owner that may no longer own them.
//
// Failure ladder: every frame write and ack read runs under
// TransferConfig.Timeout; on a timeout or drop the sender backs off
// (jittered exponential), redials and resumes; after RetryBudget
// attempts it degrades to the per-key CLUSTER ABSORB path — so bulk
// transfer can only ever be as unreliable as the pre-existing protocol,
// never less reliable.

// frameMagic tags the binary frame format ("ELX2": ExaLogLog Xfer v2,
// which carries each record's expiry deadline so a key's lifetime rides
// rebalance with its registers). frameMagicV1 frames — no deadline
// field — are still decoded, with every deadline read as 0.
//
// frameMagicZ ("ELX3") is ELX2 with every record blob run through the
// wire codec (internal/compress EncodeBlob): sparse sketches shrink by
// orders of magnitude. A sender only emits ELX3 after the receiver
// granted compression in the BEGIN handshake (c=1), and skips it per
// frame when the codec wins too little; a receiver decodes all three
// magics unconditionally — the frame is self-describing.
const (
	frameMagic   = "ELX2"
	frameMagicV1 = "ELX1"
	frameMagicZ  = "ELX3"
)

const (
	// maxFrameKeys bounds the per-frame key count a config can ask for.
	maxFrameKeys = 1 << 16
	// maxFrameBytes keeps an encoded+base64 frame safely under the line
	// protocol's 16MB line cap.
	maxFrameBytes = 8 << 20
	// maxXferSessions caps the receiver's session table; the oldest
	// session is evicted first (a sender whose session was evicted
	// mid-stream sees "unknown session" and falls back to per-key
	// ABSORB, so the cap degrades service, never correctness).
	maxXferSessions = 256
	// maxXferBackoff caps the exponential retry backoff.
	maxXferBackoff = 2 * time.Second
)

// TransferConfig tunes the streaming bulk-transfer transport. Zero
// fields keep their defaults (the SetGossipConfig convention).
type TransferConfig struct {
	// BatchKeys is the maximum number of keys per frame (elld
	// -xfer-batch).
	BatchKeys int
	// FrameBytes soft-caps the per-frame payload: a frame closes early
	// once its raw size passes this (a single oversized blob still
	// travels alone).
	FrameBytes int
	// Window is the maximum number of unacked frames in flight (elld
	// -xfer-window).
	Window int
	// Timeout bounds every dial, frame write and ack read (elld
	// -peer-timeout).
	Timeout time.Duration
	// RetryBudget is how many times a broken stream redials and resumes
	// before degrading to per-key ABSORB.
	RetryBudget int
	// BackoffBase seeds the jittered exponential backoff between
	// stream retries.
	BackoffBase time.Duration
	// MinStreamKeys is the smallest push that opens a stream; smaller
	// pushes use per-key ABSORB directly (a one-key handshake+frame+end
	// exchange would cost more round trips than it saves).
	MinStreamKeys int
	// NoCompress disables the ELX3 compressed frame format (elld
	// -xfer-compress=false). The zero value — compression on — keeps
	// the zero-fields-keep-defaults convention.
	NoCompress bool
}

func defaultTransferConfig() TransferConfig {
	return TransferConfig{
		BatchKeys:     64,
		FrameBytes:    1 << 20,
		Window:        8,
		Timeout:       5 * time.Second,
		RetryBudget:   4,
		BackoffBase:   50 * time.Millisecond,
		MinStreamKeys: 4,
	}
}

// SetTransferConfig applies c to this node's bulk-transfer transport;
// zero fields keep their defaults. Safe to call at runtime; in-flight
// streams finish under the config they started with.
func (n *Node) SetTransferConfig(c TransferConfig) {
	d := defaultTransferConfig()
	if c.BatchKeys <= 0 {
		c.BatchKeys = d.BatchKeys
	}
	if c.BatchKeys > maxFrameKeys {
		c.BatchKeys = maxFrameKeys
	}
	if c.FrameBytes <= 0 {
		c.FrameBytes = d.FrameBytes
	}
	if c.FrameBytes > maxFrameBytes {
		c.FrameBytes = maxFrameBytes
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.Timeout <= 0 {
		c.Timeout = d.Timeout
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = d.RetryBudget
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = d.BackoffBase
	}
	if c.MinStreamKeys <= 0 {
		c.MinStreamKeys = d.MinStreamKeys
	}
	n.xfer.cfg.Store(&c)
}

func (n *Node) transferConfig() TransferConfig {
	if c := n.xfer.cfg.Load(); c != nil {
		return *c
	}
	return defaultTransferConfig()
}

// transferState is the per-node bulk-transfer state: sender-side
// counters and the receiver-side session table. It lives as one field
// on Node so node.go stays focused on membership.
type transferState struct {
	cfg atomic.Pointer[TransferConfig]
	sid atomic.Uint64 // sender: next stream ID suffix

	streams   atomic.Uint64 // streams opened (BEGIN handshakes accepted)
	resumed   atomic.Uint64 // streams that resumed after a broken attempt
	frames    atomic.Uint64 // frames written (including re-sent ones)
	retries   atomic.Uint64 // frames re-sent on a resumed stream
	bytes     atomic.Uint64 // payload (blob) bytes framed
	fallbacks atomic.Uint64 // keys degraded to per-key ABSORB
	preBytes  atomic.Uint64 // frame bytes before compression (ELX2-equivalent)
	wireBytes atomic.Uint64 // frame bytes actually written (pre-base64)

	// legacy makes this node's receiver behave like a pre-ELX3 build —
	// BEGIN rejects the c= token by arity and compressed frames are
	// refused — so mixed-version negotiation is testable in-process.
	legacy atomic.Bool

	mu    sync.Mutex
	sess  map[string]*xferSession
	clock uint64 // logical LRU clock for session eviction
}

// xferSession is the receiver's per-sid resume state.
type xferSession struct {
	mu     sync.Mutex
	epoch  uint64 // epoch the sender is streaming under (re-checked per frame)
	origin uint64 // first seq this incarnation of the session saw
	cum    uint64 // highest contiguously applied frame
	keys   uint64 // keys merged so far
	bytes  uint64 // blob bytes merged so far
	touch  uint64 // LRU clock value of the last access
}

// TransferStats is a snapshot of the bulk-transfer counters — the
// xfer_* fields of CLUSTER STATS and the ell_cluster_xfer_*_total
// Prometheus rows.
type TransferStats struct {
	StreamsOpened    uint64 // XFER streams opened
	StreamsResumed   uint64 // streams resumed after a timeout/drop
	FramesSent       uint64 // frames written, re-sends included
	FrameRetries     uint64 // frames re-sent on resumed streams
	BytesMoved       uint64 // payload bytes framed
	FallbackKeys     uint64 // keys that degraded to per-key ABSORB
	BytesPrecompress uint64 // frame bytes before compression (ELX2-equivalent)
	BytesWire        uint64 // frame bytes actually written, pre-base64
}

// TransferStats returns this node's cumulative bulk-transfer counters.
func (n *Node) TransferStats() TransferStats {
	return TransferStats{
		StreamsOpened:    n.xfer.streams.Load(),
		StreamsResumed:   n.xfer.resumed.Load(),
		FramesSent:       n.xfer.frames.Load(),
		FrameRetries:     n.xfer.retries.Load(),
		BytesMoved:       n.xfer.bytes.Load(),
		FallbackKeys:     n.xfer.fallbacks.Load(),
		BytesPrecompress: n.xfer.preBytes.Load(),
		BytesWire:        n.xfer.wireBytes.Load(),
	}
}

// --- frame codec -------------------------------------------------------

// encodeFrame serializes items as one transfer frame: the magic,
// a uvarint record count, then per record a length-prefixed key, a
// uvarint expiry deadline (unix milliseconds, 0 = none) and a
// length-prefixed blob.
func encodeFrame(items []server.KeyBlob) []byte {
	size := len(frameMagic) + binary.MaxVarintLen64
	for _, it := range items {
		size += 3*binary.MaxVarintLen64 + len(it.Key) + len(it.Blob)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, frameMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = binary.AppendUvarint(buf, uint64(len(it.Key)))
		buf = append(buf, it.Key...)
		buf = binary.AppendUvarint(buf, uint64(it.Deadline))
		buf = binary.AppendUvarint(buf, uint64(len(it.Blob)))
		buf = append(buf, it.Blob...)
	}
	return buf
}

// uvarintLen returns how many bytes binary.AppendUvarint emits for v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// frameSizeRaw is the exact size of encodeFrame(items) without building
// it — the "bytes before compression" number the xfer_bytes_precompress
// counter and the bench columns report.
func frameSizeRaw(items []server.KeyBlob) int {
	size := len(frameMagic) + uvarintLen(uint64(len(items)))
	for _, it := range items {
		size += uvarintLen(uint64(len(it.Key))) + len(it.Key) +
			uvarintLen(uint64(it.Deadline)) +
			uvarintLen(uint64(len(it.Blob))) + len(it.Blob)
	}
	return size
}

// encodeFrameCompressed serializes items as an ELX3 frame — ELX2 with
// each record blob run through the wire codec. When the codec saves
// less than ~5% over the whole frame it returns a plain ELX2 frame
// instead (the ratio is poor for dense sketches; spending decoder CPU
// for nothing helps nobody). pre is the ELX2-equivalent size either way.
func encodeFrameCompressed(items []server.KeyBlob) (buf []byte, pre int) {
	pre = frameSizeRaw(items)
	zblobs := make([][]byte, len(items))
	zTotal, rawTotal := 0, 0
	for i, it := range items {
		zblobs[i] = compress.EncodeBlob(it.Blob)
		zTotal += len(zblobs[i])
		rawTotal += len(it.Blob)
	}
	if zTotal*20 >= rawTotal*19 { // under 5% saved: not worth the magic switch
		return encodeFrame(items), pre
	}
	size := len(frameMagicZ) + binary.MaxVarintLen64
	for i, it := range items {
		size += 3*binary.MaxVarintLen64 + len(it.Key) + len(zblobs[i])
	}
	buf = make([]byte, 0, size)
	buf = append(buf, frameMagicZ...)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for i, it := range items {
		buf = binary.AppendUvarint(buf, uint64(len(it.Key)))
		buf = append(buf, it.Key...)
		buf = binary.AppendUvarint(buf, uint64(it.Deadline))
		buf = binary.AppendUvarint(buf, uint64(len(zblobs[i])))
		buf = append(buf, zblobs[i]...)
	}
	return buf, pre
}

// decodeFrame parses one transfer frame. Wire input is untrusted, so
// every claimed length is capped by the bytes actually present BEFORE
// it sizes an allocation or a slice (the window.FromBinary rule): the
// record count must be satisfiable by the payload (each record needs at
// least three bytes), the prealloc is additionally clamped, and key and
// blob lengths are checked against the remaining buffer.
func decodeFrame(buf []byte) ([]server.KeyBlob, error) {
	if len(buf) < len(frameMagic) {
		return nil, errors.New("cluster: xfer frame: bad magic")
	}
	magic := string(buf[:len(frameMagic)])
	if magic != frameMagic && magic != frameMagicV1 && magic != frameMagicZ {
		return nil, errors.New("cluster: xfer frame: bad magic")
	}
	withDeadline := magic != frameMagicV1
	compressed := magic == frameMagicZ
	rest := buf[len(frameMagic):]
	next := func() (uint64, bool) {
		v, w := binary.Uvarint(rest)
		if w <= 0 {
			return 0, false
		}
		rest = rest[w:]
		return v, true
	}
	count, ok := next()
	if !ok {
		return nil, errors.New("cluster: xfer frame: truncated record count")
	}
	if count == 0 || count > uint64(len(rest))/3 {
		return nil, fmt.Errorf("cluster: xfer frame: implausible record count %d for %d payload bytes", count, len(rest))
	}
	items := make([]server.KeyBlob, 0, int(min(count, 4096)))
	for i := uint64(0); i < count; i++ {
		klen, ok := next()
		if !ok || klen == 0 || klen > uint64(len(rest)) {
			return nil, errors.New("cluster: xfer frame: bad key length")
		}
		key := string(rest[:klen])
		rest = rest[klen:]
		var deadline int64
		if withDeadline {
			dl, ok := next()
			if !ok || dl > uint64(server.MaxDeadlineMillis) {
				return nil, errors.New("cluster: xfer frame: bad deadline")
			}
			deadline = int64(dl)
		}
		blen, ok := next()
		if !ok || blen > uint64(len(rest)) {
			return nil, errors.New("cluster: xfer frame: bad blob length")
		}
		blob := rest[:blen:blen]
		rest = rest[blen:]
		if compressed {
			// The per-blob cap mirrors the frame cap: a compressed record
			// may legitimately expand well past its wire size, but never
			// past what an uncompressed frame could have carried.
			dec, err := compress.DecodeBlob(blob, maxFrameBytes)
			if err != nil {
				return nil, fmt.Errorf("cluster: xfer frame record %d: %w", i, err)
			}
			blob = dec
		}
		items = append(items, server.KeyBlob{Key: key, Blob: blob, Deadline: deadline})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("cluster: xfer frame: %d trailing bytes", len(rest))
	}
	return items, nil
}

// --- sender ------------------------------------------------------------

// errXferStale marks a stream the receiver refused because its map has
// moved to a newer epoch: the right response is to re-plan the whole
// rebalance against the fresh map, not to retry or fall back per key.
var errXferStale = errors.New("cluster: xfer stream refused: receiver map epoch is newer")

// errXferReject marks a reply-level rejection (an -ERR line): the
// receiver is reachable and answered, so redialing the same stream
// cannot help — degrade straight to per-key ABSORB.
var errXferReject = errors.New("cluster: xfer stream rejected by receiver")

// errXferNoCompress reports that the receiver did not grant the c=1
// compression request (an old build rejects the token by arity; a new
// one simply omits the grant). The caller rebuilds its frames in the
// ELX2 format and streams again — negotiation, not failure, so it
// consumes no retry-budget attempt.
var errXferNoCompress = errors.New("cluster: xfer receiver declined compression")

// xferFrame is one pre-encoded outbound frame: its binary payload
// (base64-encoded into pooled scratch at write time), the ELX2-
// equivalent size for the compression counters, the items it carries
// (kept for the per-key fallback path) and their raw blob byte count.
type xferFrame struct {
	raw       []byte
	rawPre    int
	items     []server.KeyBlob
	blobBytes int
}

// buildFrames groups items into frames of at most cfg.BatchKeys keys
// and roughly cfg.FrameBytes payload bytes each (always at least one
// item per frame), and returns the frames plus the key/byte totals the
// XFER END checksum carries. With compressed set the frames use the
// ELX3 format (per frame, only where the codec actually wins).
func buildFrames(items []server.KeyBlob, cfg TransferConfig, compressed bool) (frames []xferFrame, totKeys, totBytes uint64) {
	for i := 0; i < len(items); {
		j, raw := i, 0
		for j < len(items) && j-i < cfg.BatchKeys {
			sz := len(items[j].Key) + len(items[j].Blob)
			if j > i && raw+sz > cfg.FrameBytes {
				break
			}
			raw += sz
			j++
		}
		batch := items[i:j]
		blobBytes := 0
		for _, it := range batch {
			blobBytes += len(it.Blob)
		}
		var payload []byte
		var pre int
		if compressed {
			payload, pre = encodeFrameCompressed(batch)
		} else {
			payload = encodeFrame(batch)
			pre = len(payload)
		}
		frames = append(frames, xferFrame{
			raw:       payload,
			rawPre:    pre,
			items:     batch,
			blobBytes: blobBytes,
		})
		totKeys += uint64(len(batch))
		totBytes += uint64(blobBytes)
		i = j
	}
	return frames, totKeys, totBytes
}

// lineScratch pools the per-stream scratch buffer frame lines are
// assembled (and base64-encoded) into, so a steady stream of frames
// allocates no per-frame wire buffers on the sender; the receiver
// borrows from the same pool for its base64 text copy. frameScratch
// pools the receiver's binary decode target separately (the two are
// alive at the same time).
var (
	lineScratch  = sync.Pool{New: func() any { return new([]byte) }}
	frameScratch = sync.Pool{New: func() any { return new([]byte) }}
)

// appendFrameLine assembles one "CLUSTER XFER FRAME <sid> <seq> <b64>"
// line (no trailing newline) into dst and returns it, growing dst only
// when the frame outgrows every previous tenant of the buffer.
func appendFrameLine(dst []byte, sid string, seq uint64, raw []byte) []byte {
	dst = append(dst, "CLUSTER XFER FRAME "...)
	dst = append(dst, sid...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, seq, 10)
	dst = append(dst, ' ')
	n := base64.StdEncoding.EncodedLen(len(raw))
	dst = slices.Grow(dst, n)
	base64.StdEncoding.Encode(dst[len(dst):len(dst)+n], raw)
	return dst[:len(dst)+n]
}

// xferBackoff is the pause before retry attempt (1-based): exponential
// in the attempt, capped, with full jitter in [d/2, d] so retrying
// senders de-synchronize instead of thundering against a recovering
// peer.
func xferBackoff(base time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d > maxXferBackoff || d <= 0 {
		d = maxXferBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// parseXferReply splits a raw reply line into its body, mapping -STALE
// to errXferStale and any other error line to errXferReject.
func parseXferReply(line string) (string, error) {
	if line == "" {
		return "", fmt.Errorf("%w: empty reply", errXferReject)
	}
	switch line[0] {
	case '+':
		return line[1:], nil
	case '-':
		if strings.HasPrefix(line[1:], "STALE") {
			return "", fmt.Errorf("%w (%s)", errXferStale, line[1:])
		}
		return "", fmt.Errorf("%w: %s", errXferReject, line[1:])
	default:
		return "", fmt.Errorf("%w: unexpected reply %q", errXferReject, line)
	}
}

// streamTo pushes items to the peer at addr over one transfer stream
// under the given map epoch, retrying and resuming per the node's
// TransferConfig and degrading to per-key CLUSTER ABSORB once the
// retry budget is spent. It returns nil when every key landed, or a
// map of key → error for the keys that did not. A -STALE refusal marks
// every key with errXferStale so the caller re-plans against the fresh
// map instead of retrying blindly.
func (n *Node) streamTo(addr string, epoch uint64, items []server.KeyBlob) map[string]error {
	cfg := n.transferConfig()
	useC := !cfg.NoCompress
	frames, totKeys, totBytes := buildFrames(items, cfg, useC)
	sid := fmt.Sprintf("%s.%d", n.id, n.xfer.sid.Add(1))
	var acked, sent uint64 // frames cumulatively acked / highest frame written
	for attempt := 0; attempt <= cfg.RetryBudget; attempt++ {
		if attempt > 0 {
			time.Sleep(xferBackoff(cfg.BackoffBase, attempt))
		}
		err := n.runStream(addr, epoch, sid, frames, totKeys, totBytes, &acked, &sent, attempt > 0, useC, cfg)
		if errors.Is(err, errXferNoCompress) {
			// Negotiated down: the receiver cannot take ELX3. Rebuild the
			// unsent frames in the ELX2 format and stream again — same
			// grouping, so frame numbering (and any acked prefix) holds.
			useC = false
			frames, totKeys, totBytes = buildFrames(items, cfg, false)
			attempt--
			continue
		}
		if err == nil {
			if n.peers.alive != nil {
				n.peers.alive(addr) // a completed stream is liveness evidence
			}
			return nil
		}
		if errors.Is(err, errXferStale) {
			out := make(map[string]error, len(items))
			for _, it := range items {
				out[it.Key] = err
			}
			return out
		}
		if errors.Is(err, errXferReject) {
			break // the receiver answered and said no; redialing cannot help
		}
	}
	// Degrade gracefully: everything past the last acked frame goes out
	// over the pre-existing per-key path, so bulk transfer is never less
	// reliable than the protocol it replaced.
	out := make(map[string]error)
	for i := int(acked); i < len(frames); i++ {
		for _, it := range frames[i].items {
			n.xfer.fallbacks.Add(1)
			b64 := base64.StdEncoding.EncodeToString(it.Blob)
			dl := strconv.FormatInt(it.Deadline, 10)
			if _, err := n.peers.do(addr, "CLUSTER", "ABSORB", it.Key, b64, dl); err != nil {
				out[it.Key] = err
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// runStream is one connection attempt of streamTo: dial, BEGIN
// handshake (resuming from *acked+1), windowed frame writes with
// cumulative ack reads, END checksum. Every write and read runs under
// cfg.Timeout; progress is reported back through *acked and *sent so
// the next attempt resumes instead of restarting.
func (n *Node) runStream(addr string, epoch uint64, sid string, frames []xferFrame, totKeys, totBytes uint64, acked, sent *uint64, resume, wantC bool, cfg TransferConfig) error {
	// The harness fault hook sees every logical protocol step BEFORE its
	// I/O (like pool.do), so simulated partitions and gates apply to
	// streams without real sockets hanging under them.
	consult := func(parts ...string) error {
		if h := n.peers.hook; h != nil {
			return h(addr, parts)
		}
		return nil
	}
	beginHook := []string{"CLUSTER", "XFER", "BEGIN", "sid=" + sid, "seq=" + strconv.FormatUint(*acked+1, 10)}
	if wantC {
		beginHook = append(beginHook, "c=1")
	}
	if err := consult(beginHook...); err != nil {
		return err
	}
	// A dedicated connection, NOT the peer pool: a stream holds its
	// connection for many round trips and must not block unrelated
	// forwarded commands behind it (nor deadlock with a rebalance
	// running on the receiver — the Join lesson).
	conn, err := net.DialTimeout("tcp", addr, cfg.Timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 4096)
	w := bufio.NewWriterSize(conn, 128*1024)
	writeLine := func(line string) error {
		conn.SetWriteDeadline(time.Now().Add(cfg.Timeout))
		if _, err := w.WriteString(line); err != nil {
			return err
		}
		return w.WriteByte('\n')
	}
	readLine := func() (string, error) {
		if err := w.Flush(); err != nil {
			return "", err
		}
		// Per-reply budget: a long stream is not one deadline.
		conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
		line, err := r.ReadString('\n')
		if err != nil {
			return "", err
		}
		return strings.TrimRight(line, "\r\n"), nil
	}

	begin := fmt.Sprintf("CLUSTER XFER BEGIN e=%d sid=%s seq=%d", epoch, sid, *acked+1)
	if wantC {
		begin += " c=1"
	}
	if err := writeLine(begin); err != nil {
		return err
	}
	line, err := readLine()
	if err != nil {
		return err
	}
	body, err := parseXferReply(line)
	if err != nil {
		if wantC && errors.Is(err, errXferReject) {
			// An old receiver rejects the c= token by arity. Negotiate
			// down: the caller re-streams without compression, where a
			// repeat rejection is a real one.
			return errXferNoCompress
		}
		return err
	}
	fields := strings.Fields(body)
	if len(fields) < 2 || len(fields) > 3 || fields[0] != "OK" || !strings.HasPrefix(fields[1], "seq=") {
		return fmt.Errorf("%w: unexpected XFER BEGIN reply %q", errXferReject, line)
	}
	if wantC && (len(fields) != 3 || fields[2] != "c=1") {
		// The receiver answered BEGIN but did not grant compression.
		return errXferNoCompress
	}
	start, perr := strconv.ParseUint(strings.TrimPrefix(fields[1], "seq="), 10, 64)
	if perr != nil {
		return fmt.Errorf("%w: bad resume seq in %q", errXferReject, line)
	}
	if start > *acked+1 {
		// The receiver's session holds more than we saw acked (our last
		// attempt died after the apply but before the ack arrived).
		// The receiver is authoritative — skip what it already has.
		*acked = start - 1
	}
	n.xfer.streams.Add(1)
	if resume {
		n.xfer.resumed.Add(1)
	}

	lp := lineScratch.Get().(*[]byte)
	defer func() {
		lineScratch.Put(lp)
	}()
	writeFrameLine := func(seq uint64, f xferFrame) error {
		*lp = appendFrameLine((*lp)[:0], sid, seq, f.raw)
		conn.SetWriteDeadline(time.Now().Add(cfg.Timeout))
		if _, err := w.Write(*lp); err != nil {
			return err
		}
		return w.WriteByte('\n')
	}

	total := uint64(len(frames))
	next := *acked + 1
	unread := 0 // replies outstanding: every written frame produces exactly one
	for *acked < total {
		for next <= total && unread < cfg.Window {
			f := frames[next-1]
			seqStr := strconv.FormatUint(next, 10)
			// The trailing magic token tells the hook which frame format
			// is about to hit the wire (ELX2/ELX3) without shipping the
			// payload through it.
			if err := consult("CLUSTER", "XFER", "FRAME", sid, seqStr, string(f.raw[:4])); err != nil {
				return err
			}
			if err := writeFrameLine(next, f); err != nil {
				return err
			}
			n.xfer.frames.Add(1)
			n.xfer.bytes.Add(uint64(f.blobBytes))
			n.xfer.preBytes.Add(uint64(f.rawPre))
			n.xfer.wireBytes.Add(uint64(len(f.raw)))
			if next <= *sent {
				n.xfer.retries.Add(1) // re-sent on a resumed stream
			} else {
				*sent = next
			}
			next++
			unread++
		}
		line, err := readLine()
		if err != nil {
			return err
		}
		unread--
		body, err := parseXferReply(line)
		if err != nil {
			return err
		}
		af := strings.Fields(body)
		if len(af) != 2 || af[0] != "ACK" {
			return fmt.Errorf("%w: unexpected XFER FRAME reply %q", errXferReject, line)
		}
		cum, perr := strconv.ParseUint(af[1], 10, 64)
		if perr != nil {
			return fmt.Errorf("%w: bad ack in %q", errXferReject, line)
		}
		if cum > *acked {
			*acked = cum
		}
		if cum+1 > next {
			next = cum + 1
		}
	}
	for unread > 0 { // drain acks still in flight past the last frame
		if _, err := readLine(); err != nil {
			return err
		}
		unread--
	}
	if err := consult("CLUSTER", "XFER", "END", sid); err != nil {
		return err
	}
	if err := writeLine(fmt.Sprintf("CLUSTER XFER END %s %d %d", sid, totKeys, totBytes)); err != nil {
		return err
	}
	if line, err = readLine(); err != nil {
		return err
	}
	_, err = parseXferReply(line)
	return err
}

// --- receiver ----------------------------------------------------------

// xferSessionFor returns the session for sid, creating it with the
// given start sequence when absent (LRU-evicting the stalest session
// over the table cap). origin records the first seq this incarnation
// saw: a receiver that restarted mid-stream starts a fresh session at
// the sender's resume point, and END then skips the strict whole-stream
// checksum (it never saw the early frames — the sketch merge on the
// restored snapshot, not the tally, carries correctness there).
func (n *Node) xferSessionFor(sid string, startSeq uint64) *xferSession {
	x := &n.xfer
	x.mu.Lock()
	defer x.mu.Unlock()
	x.clock++
	if s, ok := x.sess[sid]; ok {
		s.touch = x.clock
		return s
	}
	if len(x.sess) >= maxXferSessions {
		var oldest string
		var oldestTouch uint64
		for id, s := range x.sess {
			if oldest == "" || s.touch < oldestTouch {
				oldest, oldestTouch = id, s.touch
			}
		}
		delete(x.sess, oldest)
	}
	s := &xferSession{origin: startSeq, cum: startSeq - 1, touch: x.clock}
	x.sess[sid] = s
	return s
}

func (n *Node) lookupXferSession(sid string) (*xferSession, bool) {
	x := &n.xfer
	x.mu.Lock()
	defer x.mu.Unlock()
	s, ok := x.sess[sid]
	if ok {
		x.clock++
		s.touch = x.clock
	}
	return s, ok
}

func (n *Node) dropXferSession(sid string) {
	x := &n.xfer
	x.mu.Lock()
	delete(x.sess, sid)
	x.mu.Unlock()
}

// handleXfer serves the receiver side of the transfer protocol (the
// CLUSTER XFER subcommands; see the file comment for the wire format).
func (n *Node) handleXfer(rest []string) string {
	if len(rest) == 0 {
		return "-ERR CLUSTER XFER needs BEGIN, FRAME or END"
	}
	switch strings.ToUpper(rest[0]) {
	case "BEGIN":
		return n.handleXferBegin(rest[1:])
	case "FRAME":
		return n.handleXferFrame(rest[1:])
	case "END":
		return n.handleXferEnd(rest[1:])
	default:
		return "-ERR unknown CLUSTER XFER subcommand " + rest[0]
	}
}

func (n *Node) handleXferBegin(args []string) string {
	// The optional trailing c=1 token asks for ELX3 compressed frames;
	// the grant is echoed in the reply. A legacy-mode receiver (and any
	// pre-ELX3 build, whose arity check this mirrors) rejects the token
	// wholesale — the sender then negotiates down to ELX2.
	wantC := false
	if !n.xfer.legacy.Load() && len(args) == 4 && args[3] == "c=1" {
		wantC = true
		args = args[:3]
	}
	if len(args) != 3 || !strings.HasPrefix(args[0], "e=") ||
		!strings.HasPrefix(args[1], "sid=") || !strings.HasPrefix(args[2], "seq=") {
		return "-ERR CLUSTER XFER BEGIN needs e=<epoch> sid=<id> seq=<n>"
	}
	epoch, err := strconv.ParseUint(strings.TrimPrefix(args[0], "e="), 10, 64)
	if err != nil {
		return "-ERR bad XFER epoch " + args[0]
	}
	sid := strings.TrimPrefix(args[1], "sid=")
	seq, err := strconv.ParseUint(strings.TrimPrefix(args[2], "seq="), 10, 64)
	if err != nil || sid == "" || seq == 0 {
		return "-ERR bad XFER sid/seq"
	}
	// Epoch fence: a sender streaming under an older map may be pushing
	// keys to an owner that no longer owns them. Refuse; the sender
	// re-plans against the newer map. (A sender AHEAD of us is fine —
	// its map will reach us via SETMAP/Sync, and accepting extra keys
	// early is harmless: strays drain.)
	if cur := n.currentMap(); cur.Epoch > epoch {
		return fmt.Sprintf("-STALE e=%d", cur.Epoch)
	}
	s := n.xferSessionFor(sid, seq)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch = epoch
	// The session is authoritative about what it already applied: the
	// reply tells the sender where to (re)start, which both resumes
	// broken streams and skips frames whose ack was lost in flight.
	// The compression grant is only echoed when asked for, so an old
	// sender's strict two-field reply parse keeps working.
	if wantC {
		return fmt.Sprintf("+OK seq=%d c=1", s.cum+1)
	}
	return fmt.Sprintf("+OK seq=%d", s.cum+1)
}

func (n *Node) handleXferFrame(args []string) string {
	if len(args) != 3 {
		return "-ERR CLUSTER XFER FRAME needs a session, a sequence number and a payload"
	}
	sid := args[0]
	seq, err := strconv.ParseUint(args[1], 10, 64)
	if err != nil || seq == 0 {
		return fmt.Sprintf("-ERR bad XFER frame seq %q", args[1])
	}
	s, ok := n.lookupXferSession(sid)
	if !ok {
		return "-ERR xfer: unknown session " + sid
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check the fence per frame: the map can move mid-stream, and a
	// long stream must not keep landing keys under a dead epoch.
	if cur := n.currentMap(); cur.Epoch > s.epoch {
		return fmt.Sprintf("-STALE e=%d", cur.Epoch)
	}
	if seq <= s.cum {
		// Duplicate delivery after a resume: already merged (merging is
		// idempotent anyway), just re-ack.
		return "+ACK " + strconv.FormatUint(s.cum, 10)
	}
	if seq != s.cum+1 {
		return fmt.Sprintf("-ERR xfer: frame gap (have %d, got %d)", s.cum, seq)
	}
	// Decode into pooled scratch: the base64 text is copied into one
	// pooled buffer (strings can't feed base64.Decode directly) and
	// decoded into another, so a steady frame stream allocates no
	// per-frame receive buffers. The decoded items may alias the pooled
	// buffer; AbsorbBatch's merge paths copy everything they keep, so
	// both buffers are reusable the moment it returns.
	b64p := lineScratch.Get().(*[]byte)
	rawp := frameScratch.Get().(*[]byte)
	defer func() {
		lineScratch.Put(b64p)
		frameScratch.Put(rawp)
	}()
	*b64p = append((*b64p)[:0], args[2]...)
	need := base64.StdEncoding.DecodedLen(len(*b64p))
	*rawp = slices.Grow((*rawp)[:0], need)
	nDec, err := base64.StdEncoding.Decode((*rawp)[:need], *b64p)
	if err != nil {
		return "-ERR xfer: bad base64: " + err.Error()
	}
	raw := (*rawp)[:nDec]
	if n.xfer.legacy.Load() && len(raw) >= len(frameMagicZ) && string(raw[:len(frameMagicZ)]) == frameMagicZ {
		// Legacy mode refuses compressed frames like a pre-ELX3 build's
		// magic check would.
		return "-ERR cluster: xfer frame: bad magic"
	}
	items, err := decodeFrame(raw)
	if err != nil {
		return "-ERR " + err.Error()
	}
	keys, bytes, err := n.store.AbsorbBatch(items)
	if err != nil {
		// A partially merged frame is safe (merges are idempotent; the
		// sender re-delivers), but cum must NOT advance past it.
		return "-ERR xfer: " + err.Error()
	}
	s.cum = seq
	s.keys += uint64(keys)
	s.bytes += uint64(bytes)
	return "+ACK " + strconv.FormatUint(s.cum, 10)
}

func (n *Node) handleXferEnd(args []string) string {
	if len(args) != 3 {
		return "-ERR CLUSTER XFER END needs a session, a key count and a byte count"
	}
	sid := args[0]
	wantKeys, err1 := strconv.ParseUint(args[1], 10, 64)
	wantBytes, err2 := strconv.ParseUint(args[2], 10, 64)
	if err1 != nil || err2 != nil {
		return "-ERR bad XFER END checksum"
	}
	s, ok := n.lookupXferSession(sid)
	if !ok {
		return "-ERR xfer: unknown session " + sid
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n.dropXferSession(sid) // END always closes the session, pass or fail
	// The strict whole-stream tally only holds when this session saw the
	// stream from frame 1; after a receiver restart the session begins
	// at the resume point and the earlier frames' tally lives in the
	// lost session (their DATA is safe — merged into the snapshot or
	// re-delivered idempotently — only the count is unknowable).
	if s.origin == 1 && (s.keys != wantKeys || s.bytes != wantBytes) {
		return fmt.Sprintf("-ERR xfer: checksum mismatch (got keys=%d bytes=%d, want keys=%d bytes=%d)",
			s.keys, s.bytes, wantKeys, wantBytes)
	}
	return fmt.Sprintf("+OK keys=%d bytes=%d", s.keys, s.bytes)
}
