package cluster

import (
	"fmt"
	"strings"
	"testing"
)

// TestMapOrdering pins the (Epoch, Version, Coordinator) total order
// that SETMAP conflict resolution rests on: every pair of distinct
// maps has exactly one winner, and a map never supersedes itself.
func TestMapOrdering(t *testing.T) {
	mk := func(epoch, version uint64, coord string) *Map {
		return build(epoch, version, coord, 2, map[string]string{"n1": "a:1"})
	}
	cases := []struct {
		name string
		a, b *Map
		want bool // a.Newer(b)
	}{
		{"higher epoch wins", mk(3, 1, "n1"), mk(2, 9, "n9"), true},
		{"lower epoch loses", mk(2, 9, "n9"), mk(3, 1, "n1"), false},
		{"same epoch, higher version wins", mk(2, 5, "n1"), mk(2, 4, "n9"), true},
		{"same epoch+version, coordinator breaks tie", mk(2, 4, "n9"), mk(2, 4, "n1"), true},
		{"identical triple is not newer", mk(2, 4, "n1"), mk(2, 4, "n1"), false},
		{"anything beats nil", mk(0, 0, ""), nil, true},
	}
	for _, c := range cases {
		if got := c.a.Newer(c.b); got != c.want {
			t.Errorf("%s: Newer = %v, want %v", c.name, got, c.want)
		}
		// Antisymmetry on distinct maps: exactly one direction wins.
		if c.b != nil && c.a.Newer(c.b) && c.b.Newer(c.a) {
			t.Errorf("%s: both directions claim to be newer", c.name)
		}
	}
}

// TestMapMutationsAdvanceOrder: withNode/withoutNode at a claimed epoch
// always supersede their parent, and encode/decode preserves the
// ordering triple exactly.
func TestMapMutationsAdvanceOrder(t *testing.T) {
	m := NewMap(2, Member{"n1", "a:1"}, Member{"n2", "a:2"})
	added := m.withNode("n3", "a:3", m.Epoch+1, "n2")
	if !added.Newer(m) || added.Epoch != m.Epoch+1 || added.Version != m.Version+1 || added.Coordinator != "n2" {
		t.Fatalf("withNode did not advance the order: %q → %q", m.Encode(), added.Encode())
	}
	removed := added.withoutNode("n1", added.Epoch+1, "n3")
	if !removed.Newer(added) || removed.Has("n1") || removed.Len() != 2 {
		t.Fatalf("withoutNode did not advance the order: %q → %q", added.Encode(), removed.Encode())
	}
	dec, err := DecodeMap(strings.Fields(removed.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epoch != removed.Epoch || dec.Version != removed.Version || dec.Coordinator != removed.Coordinator {
		t.Errorf("round trip lost the ordering triple: %q vs %q", dec.Encode(), removed.Encode())
	}
	if dec.Newer(removed) || removed.Newer(dec) {
		t.Error("round-tripped map compares unequal to its source")
	}
}

// FuzzMapDecode: a corrupt or adversarial SETMAP payload must never
// panic a node, and anything DecodeMap accepts must re-encode to a
// byte-stable, re-decodable form (otherwise two nodes could disagree
// about one map).
func FuzzMapDecode(f *testing.F) {
	f.Add("v2 1 1 - 2 n1=127.0.0.1:7700 n2=127.0.0.1:7701")
	f.Add("v2 18446744073709551615 0 n9 1 x=y")
	f.Add("v2 3 7 n1 4096 a=b")
	f.Add("1 2 n1=a:1 n2=a:2") // pre-epoch v1 payload
	f.Add("")
	f.Add("v2 1 1 - 2 id=a=b")
	f.Add("v2 1 1 - 2 dup=a dup=b")
	f.Add("v2 -1 1 - 2 n1=a")
	f.Fuzz(func(t *testing.T, payload string) {
		tokens := strings.Fields(payload)
		m, err := DecodeMap(tokens)
		if err != nil {
			return // rejected cleanly — that's fine
		}
		if m.Len() == 0 || m.Replicas < 1 {
			t.Fatalf("DecodeMap(%q) accepted a degenerate map: %+v", payload, m)
		}
		// Whatever was accepted must route without panicking.
		if owners := m.Owners("some-key"); len(owners) == 0 {
			t.Fatalf("accepted map owns nothing: %q", payload)
		}
		enc := m.Encode()
		m2, err := DecodeMap(strings.Fields(enc))
		if err != nil {
			t.Fatalf("re-decode of %q (from %q) failed: %v", enc, payload, err)
		}
		if m2.Encode() != enc {
			t.Fatalf("encode not stable: %q → %q", enc, m2.Encode())
		}
	})
}

// TestEncodeCanonical: equal maps built in different ways encode
// byte-identically — the property the harness's convergence check and
// the snapshot metadata both rely on.
func TestEncodeCanonical(t *testing.T) {
	a := NewMap(2, Member{"b", "a:2"}, Member{"a", "a:1"}, Member{"c", "a:3"})
	b := NewMap(2, Member{"c", "a:3"}, Member{"a", "a:1"}, Member{"b", "a:2"})
	if a.Encode() != b.Encode() {
		t.Errorf("member insertion order leaked into the encoding:\n%q\n%q", a.Encode(), b.Encode())
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		ao, bo := a.ownerIDs(key), b.ownerIDs(key)
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("owners differ for %q: %v vs %v", key, ao, bo)
			}
		}
	}
}
