package cluster

// End-to-end tests for the windowed workload through the cluster:
// WADD forwarded to every owner, WCOUNT scatter-gathering slot-wise
// ring DUMPs and merging them at the coordinator. All timestamps are
// explicit — the window subsystem is clockless by design, so these
// tests are deterministic fake-clock tests: the same stream yields the
// same slices, merges and estimates on every run, and windowed
// estimates are checked for EXACT equality against a local reference
// ring fed the same elements (slice merging is lossless).

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"exaloglog/server"
	"exaloglog/window"
)

// streamMS is the fixed stream epoch for the windowed cluster tests.
const streamMS = int64(1_750_000_000_000)

func dialNode(t *testing.T, n *Node) *server.Client {
	t.Helper()
	c, err := server.Dial(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClusterWindowedEndToEnd: a port-scan-shaped stream WADDed through
// different nodes is countable through ANY node, for any window, with
// exactly the estimate a single local ring would give — forwarded adds
// reach every owner, and the coordinator's slot-wise merge of the
// owners' rings loses nothing.
func TestClusterWindowedEndToEnd(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	clients := []*server.Client{dialNode(t, nodes[0]), dialNode(t, nodes[1]), dialNode(t, nodes[2])}

	ref, err := window.New(testConfig(), time.Second, 60)
	if err != nil {
		t.Fatal(err)
	}
	const slices, perSlice = 10, 30
	for s := 0; s < slices; s++ {
		ts := streamMS + int64(s)*1000
		for e := 0; e < perSlice; e++ {
			el := fmt.Sprintf("src-%d-%d", s, e)
			// Writes rotate over the nodes: any node forwards to the owners.
			accepted, err := clients[(s+e)%len(clients)].WAdd("scan:host9", ts, el)
			if err != nil {
				t.Fatal(err)
			}
			if accepted != 1 {
				t.Fatalf("WADD accepted %d of 1 in-span elements", accepted)
			}
			ref.AddString(time.UnixMilli(ts), el)
		}
	}

	nowMS := streamMS + int64(slices-1)*1000
	for _, c := range clients {
		for _, w := range []time.Duration{time.Second, 3 * time.Second, 30 * time.Second} {
			got, err := c.WCountAt("scan:host9", w, nowMS)
			if err != nil {
				t.Fatal(err)
			}
			want := int64(ref.Estimate(time.UnixMilli(nowMS), w) + 0.5)
			if got != want {
				t.Errorf("WCOUNT %v = %d, want %d — slot-wise merge must equal a local ring", w, got, want)
			}
		}
		// Default now (the newest timestamp any owner observed) matches
		// the explicit form.
		defGot, err := c.WCount("scan:host9", 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		expGot, _ := c.WCountAt("scan:host9", 3*time.Second, nowMS)
		if defGot != expGot {
			t.Errorf("WCOUNT default now = %d, explicit = %d", defGot, expGot)
		}
	}

	// The window slides: querying 30s past the burst leaves only what
	// was added since.
	if _, err := clients[0].WAdd("scan:host9", nowMS+60_000, "late-straggler"); err != nil {
		t.Fatal(err)
	}
	got, err := clients[1].WCountAt("scan:host9", 3*time.Second, nowMS+60_000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("slid window counts %d, want 1", got)
	}

	// WINFO aggregates the owners' rings; Dropped merges as the MAX of
	// the owner copies — each replica of the key dropped the same one
	// insert, so the merged view reports 1, not replicas×1 (and the
	// merge stays idempotent for replication retries).
	if _, err := clients[0].WAdd("scan:host9", streamMS-7_200_000, "ancient"); err != nil {
		t.Fatal(err)
	}
	info, err := clients[2].WInfo("scan:host9")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info, "dropped=1") || !strings.Contains(info, "slices=60") {
		t.Errorf("cluster WINFO %q lacks the merged drop count or geometry", info)
	}
	if _, err := clients[0].WInfo("no-such-window"); !errors.Is(err, server.ErrNoSuchKey) {
		t.Errorf("WINFO of a missing key: %v, want ErrNoSuchKey", err)
	}

	// Typed verbs stay typed through the cluster overrides, both ways.
	if _, err := clients[0].PFAdd("plain", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := clients[1].PFCount("scan:host9"); !errors.Is(err, server.ErrWrongType) {
		t.Errorf("cluster PFCOUNT on a windowed key: %v, want ErrWrongType", err)
	}
	if _, err := clients[2].WAdd("plain", streamMS, "x"); !errors.Is(err, server.ErrWrongType) {
		t.Errorf("cluster WADD on a plain key: %v, want ErrWrongType", err)
	}
	if _, err := clients[0].WCount("plain", time.Second); !errors.Is(err, server.ErrWrongType) {
		t.Errorf("cluster WCOUNT on a plain key: %v, want ErrWrongType", err)
	}
	// A multi-owner failure (errors.Join of both replicas' WRONGTYPE)
	// must still be ONE wire line: the connections stay in sync and the
	// very next command on each sees its own reply.
	for i, c := range clients {
		if err := c.Ping(); err != nil {
			t.Fatalf("client %d desynchronized after wrongtype replies: %v", i, err)
		}
	}
}

// TestMLPFAddWrongTypeGroupDoesNotPoisonBatch: with the typed keyspace
// a batched-add group CAN fail (WRONGTYPE); its outcome must be the
// per-group 'E' byte, not a batch-level -ERR — the other groups belong
// to unrelated callers coalesced by the group-commit batcher and their
// adds have already been applied.
func TestMLPFAddWrongTypeGroupDoesNotPoisonBatch(t *testing.T) {
	nodes := startCluster(t, 1, 1)
	if _, err := nodes[0].Store().WindowAdd("wkey", time.UnixMilli(streamMS), "x"); err != nil {
		t.Fatal(err)
	}
	c := dialNode(t, nodes[0])
	reply, err := c.Do("CLUSTER", "MLPFADD", "3", "wkey", "1", "a", "pkey", "1", "b", "wkey", "1", "c")
	if err != nil {
		t.Fatalf("whole batch failed on one wrongtype group: %v", err)
	}
	if reply != "E1E" {
		t.Fatalf("MLPFADD reply %q, want E1E (per-group outcomes)", reply)
	}
	// The healthy group landed.
	if n, err := nodes[0].Store().Count("pkey"); err != nil || int64(n+0.5) != 1 {
		t.Errorf("healthy group not applied: %v, %v", n, err)
	}
	// The batcher maps 'E' back to a per-caller ErrWrongType, so a
	// forwarded Add through the pool reports the right error too.
	if _, err := nodes[0].peers.batchAdd(nodes[0].Addr(), "wkey", []string{"z"}); !errors.Is(err, server.ErrWrongType) {
		t.Errorf("batched add to a windowed key: %v, want ErrWrongType", err)
	}
}

// TestPoolKeepsConnectionOnWrongType: WRONGTYPE is a routine reply of
// the typed keyspace, not a transport failure — the pooled connection
// must survive it (no redial churn on the hot forward path) and the
// reply must count as liveness evidence.
func TestPoolKeepsConnectionOnWrongType(t *testing.T) {
	nodes := startCluster(t, 2, 1)
	n1, n2 := nodes[0], nodes[1]
	if _, err := n2.Store().WindowAdd("wkey", time.UnixMilli(streamMS), "x"); err != nil {
		t.Fatal(err)
	}
	// Prime the pooled connection and remember its identity.
	if _, err := n1.peers.do(n2.Addr(), "PING"); err != nil {
		t.Fatal(err)
	}
	n1.peers.mu.Lock()
	before := n1.peers.conns[n2.Addr()]
	n1.peers.mu.Unlock()
	if before == nil {
		t.Fatal("no pooled connection after PING")
	}
	if _, err := n1.peers.do(n2.Addr(), "CLUSTER", "LPFADD", "wkey", "y"); !errors.Is(err, server.ErrWrongType) {
		t.Fatalf("LPFADD on a windowed key: %v, want ErrWrongType", err)
	}
	n1.peers.mu.Lock()
	after := n1.peers.conns[n2.Addr()]
	n1.peers.mu.Unlock()
	if after != before {
		t.Error("pool dropped the connection on a WRONGTYPE reply")
	}
}

// TestClusterWindowedRebalance: windowed keys ride the ordinary
// membership machinery — a join moves them to their new owners with
// slot-wise ABSORB merges, a leave drains them — and every windowed
// estimate is unchanged afterwards, from every surviving node.
func TestClusterWindowedRebalance(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	const keys = 24
	keyName := func(k int) string { return fmt.Sprintf("win-%d", k) }
	for k := 0; k < keys; k++ {
		for s := 0; s < 5; s++ {
			for e := 0; e < 6; e++ {
				ts := streamMS + int64(s)*1000
				if _, err := nodes[k%3].WindowAdd(keyName(k), ts, fmt.Sprintf("el-%d-%d-%d", k, s, e)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	nowMS := streamMS + 4_000
	ref := make([]float64, keys)
	for k := 0; k < keys; k++ {
		v, err := nodes[0].WindowCount(keyName(k), 5*time.Second, nowMS)
		if err != nil {
			t.Fatal(err)
		}
		if v < 1 {
			t.Fatalf("key %s counts %v before the membership churn", keyName(k), v)
		}
		ref[k] = v
	}

	// Join: the delta rebalance must ship window rings (slot-wise
	// blobs) to the owners the keys gained.
	joiner, err := NewNode("n4", testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.Close() })
	if err := joiner.Join(nodes[0].Addr()); err != nil {
		t.Fatal(err)
	}
	if joiner.Store().Len() == 0 {
		t.Error("no windowed keys moved to the joining node")
	}
	for k := 0; k < keys; k++ {
		for _, n := range append([]*Node{joiner}, nodes...) {
			got, err := n.WindowCount(keyName(k), 5*time.Second, nowMS)
			if err != nil {
				t.Fatalf("%s: %v", n.ID(), err)
			}
			if got != ref[k] {
				t.Errorf("%s: count %s = %v after join, want %v", n.ID(), keyName(k), got, ref[k])
			}
		}
	}

	// Leave: the departing node drains its rings to the remaining owners.
	if err := joiner.Leave(); err != nil {
		t.Fatal(err)
	}
	if got := joiner.Store().Len(); got != 0 {
		t.Errorf("left node still holds %d keys", got)
	}
	for k := 0; k < keys; k++ {
		for _, n := range nodes {
			got, err := n.WindowCount(keyName(k), 5*time.Second, nowMS)
			if err != nil {
				t.Fatalf("%s: %v", n.ID(), err)
			}
			if got != ref[k] {
				t.Errorf("%s: count %s = %v after leave, want %v", n.ID(), keyName(k), got, ref[k])
			}
		}
	}
}
