package cluster

// Tests for digest anti-entropy (digestsync.go): the ELD1/ELK1 payload
// codecs, the epoch fence, and the two headline properties — a
// CONVERGED cluster pays O(members) messages per round regardless of
// key count, and a diverged replica is repaired by shipping only the
// keys that actually differ.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"exaloglog/server"
)

func TestDigestVectorRoundTrip(t *testing.T) {
	v := make([]uint64, server.NumShards)
	for i := range v {
		v[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	got, err := decodeDigestVector(encodeDigestVector(v))
	if err != nil {
		t.Fatalf("decode of a valid vector: %v", err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("shard %d digest changed: %#x → %#x", i, v[i], got[i])
		}
	}
	// A vector with the wrong shard count must be rejected: comparing
	// digests across different shard geometries is meaningless.
	if _, err := decodeDigestVector(encodeDigestVector(v[:10])); err == nil {
		t.Error("10-shard vector accepted")
	}
	if _, err := decodeDigestVector("not base64!!"); err == nil {
		t.Error("non-base64 vector accepted")
	}
	if _, err := decodeDigestVector(""); err == nil {
		t.Error("empty vector accepted")
	}
}

func TestKeyDigestsRoundTrip(t *testing.T) {
	kds := []server.KeyDigest{
		{Key: "a", Digest: 1},
		{Key: "visits:2026-08-07", Digest: 0xdeadbeefcafef00d},
		{Key: strings.Repeat("k", 500), Digest: 0},
	}
	got, err := decodeKeyDigests(encodeKeyDigests(kds))
	if err != nil {
		t.Fatalf("decode of valid key digests: %v", err)
	}
	if len(got) != len(kds) {
		t.Fatalf("decoded %d key digests, want %d", len(got), len(kds))
	}
	for _, kd := range kds {
		if got[kd.Key] != kd.Digest {
			t.Errorf("key %q digest %#x, want %#x", kd.Key, got[kd.Key], kd.Digest)
		}
	}
	// The empty set is a valid reply (a shard can be all strays).
	if got, err := decodeKeyDigests(encodeKeyDigests(nil)); err != nil || len(got) != 0 {
		t.Errorf("empty key digests: got %v, %v", got, err)
	}
	if _, err := decodeKeyDigests("###"); err == nil {
		t.Error("non-base64 key digests accepted")
	}
}

// TestDigestHandlersEpochFence: DSUM and DKEYS refuse a requester whose
// map epoch differs with -STALE — digests computed under different
// ownership views cover different key populations, so comparing them
// would manufacture phantom divergence.
func TestDigestHandlersEpochFence(t *testing.T) {
	h := newHarness(t, 2, 2)
	n := h.node("n1")
	cur := n.currentMap().Epoch
	wrong := fmt.Sprintf("e=%d", cur+7)
	for _, args := range [][]string{
		{"CLUSTER", "DSUM", "n2", wrong},
		{"CLUSTER", "DKEYS", "n2", wrong, "0,1"},
	} {
		_, err := h.do("n1", args...)
		if err == nil || !strings.Contains(err.Error(), "STALE") {
			t.Errorf("%s with wrong epoch: err = %v, want -STALE", args[1], err)
		}
	}
	// The right epoch answers with a payload.
	reply, err := h.do("n1", "CLUSTER", "DSUM", "n2", fmt.Sprintf("e=%d", cur))
	if err != nil {
		t.Fatalf("DSUM at the current epoch: %v", err)
	}
	if _, err := decodeDigestVector(reply); err != nil {
		t.Fatalf("DSUM reply did not decode: %v", err)
	}
	if _, err := h.do("n1", "CLUSTER", "DKEYS", "bad id", fmt.Sprintf("e=%d", cur), "0"); err == nil {
		t.Error("invalid requester ID accepted")
	}
	if _, err := h.do("n1", "CLUSTER", "DKEYS", "n2", fmt.Sprintf("e=%d", cur), "999"); err == nil {
		t.Error("out-of-range shard index accepted")
	}
}

// TestDigestSyncConvergedMessageCount: on a converged cluster a full
// digest round from one node is ONE DSUM message per peer — O(members),
// not O(keys) — with no key-digest fetches and no data movement at all.
func TestDigestSyncConvergedMessageCount(t *testing.T) {
	const keys = 300
	h := newHarness(t, 3, 2)
	for k := 0; k < keys; k++ {
		if _, err := h.node("n1").Add(fmt.Sprintf("dg-%d", k), "x", "y"); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	counts := map[string]int{}
	h.setIntercept(func(id, addr string, parts []string) error {
		if len(parts) >= 2 && strings.EqualFold(parts[0], "CLUSTER") {
			mu.Lock()
			counts[strings.ToUpper(parts[1])]++
			mu.Unlock()
		}
		return nil
	})
	defer h.setIntercept(nil)

	if err := h.node("n1").DigestSync(); err != nil {
		t.Fatalf("digest sync on a converged cluster: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if got, want := counts["DSUM"], 2; got != want {
		t.Errorf("converged round sent %d DSUM messages, want %d (one per peer)", got, want)
	}
	for _, verb := range []string{"DKEYS", "XFER", "ABSORB", "LPFADD", "MLPFADD"} {
		if counts[verb] != 0 {
			t.Errorf("converged round sent %d %s messages, want 0", counts[verb], verb)
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total >= keys/10 {
		t.Errorf("converged round cost %d messages for %d keys — not O(members)", total, keys)
	}
	if _, repaired := h.node("n1").DigestSyncStats(); repaired != 0 {
		t.Errorf("converged round repaired %d keys, want 0", repaired)
	}
}

// TestDigestSyncRepairsDivergence: keys silently lost by one replica
// (a rolled-back disk, a dropped replication write) are found by digest
// comparison and re-shipped — and ONLY the divergent keys move, over
// one batched stream, not a full re-push of the keyspace.
func TestDigestSyncRepairsDivergence(t *testing.T) {
	const keys = 60
	lost := map[string]bool{"dv-3": true, "dv-17": true, "dv-29": true, "dv-41": true, "dv-55": true}
	h := newHarnessCfg(t, 2, 2, &TransferConfig{MinStreamKeys: 1})
	ref := make(map[string]float64, keys)
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("dv-%d", k)
		if _, err := h.node("n1").Add(key, "a", "b", "c"); err != nil {
			t.Fatal(err)
		}
		ref[key] = mustCount(t, h.node("n1"), key)
	}
	for key := range lost {
		if !h.node("n2").Store().Delete(key) {
			t.Fatalf("fixture: %s was not on n2", key)
		}
	}

	var mu sync.Mutex
	counts := map[string]int{}
	h.setIntercept(func(id, addr string, parts []string) error {
		if len(parts) >= 2 && strings.EqualFold(parts[0], "CLUSTER") {
			mu.Lock()
			counts[strings.ToUpper(parts[1])]++
			mu.Unlock()
		}
		return nil
	})
	defer h.setIntercept(nil)

	if err := h.node("n1").DigestSync(); err != nil {
		t.Fatalf("digest sync over diverged replicas: %v", err)
	}

	// Every lost key is back on n2 with its full count.
	for key := range lost {
		if _, ok := h.node("n2").Store().Dump(key); !ok {
			t.Errorf("%s still missing from n2 after digest repair", key)
		}
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("dv-%d", k)
		// n2's LOCAL copy must carry the full count — the cluster-wide
		// union would mask a hole by borrowing n1's replica.
		got, err := h.node("n2").Store().Count(key)
		if err != nil {
			t.Errorf("n2: count %s after repair: %v", key, err)
			continue
		}
		if got != ref[key] {
			t.Errorf("n2: local count %s = %v after repair, want %v", key, got, ref[key])
		}
	}
	if _, repaired := h.node("n1").DigestSyncStats(); repaired != uint64(len(lost)) {
		t.Errorf("repaired counter = %d, want %d", repaired, len(lost))
	}

	mu.Lock()
	dsum, dkeys := counts["DSUM"], counts["DKEYS"]
	mu.Unlock()
	if dsum != 1 || dkeys != 1 {
		t.Errorf("round sent %d DSUM + %d DKEYS, want 1 + 1 (narrow, then fetch once)", dsum, dkeys)
	}

	// The round after the repair is silent again: digests agree.
	mu.Lock()
	clear(counts)
	mu.Unlock()
	if err := h.node("n1").DigestSync(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if counts["DKEYS"] != 0 || counts["XFER"] != 0 {
		t.Errorf("post-repair round still moved data: %v", counts)
	}
}

// TestDigestSyncBidirectional: divergence in BOTH directions (each
// replica holds elements the other missed) converges after each side
// runs its own push-only round — merge is idempotent and monotone, so
// the union wins on both.
func TestDigestSyncBidirectional(t *testing.T) {
	h := newHarnessCfg(t, 2, 2, &TransferConfig{MinStreamKeys: 1})
	if _, err := h.node("n1").Add("bi", "shared"); err != nil {
		t.Fatal(err)
	}
	// Local-only writes, bypassing replication: each store diverges.
	if _, err := h.node("n1").Store().Add("bi", "only-on-n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.node("n2").Store().Add("bi", "only-on-n2"); err != nil {
		t.Fatal(err)
	}
	if err := h.node("n1").DigestSync(); err != nil {
		t.Fatal(err)
	}
	if err := h.node("n2").DigestSync(); err != nil {
		t.Fatal(err)
	}
	c1, err := h.node("n1").Store().Count("bi")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := h.node("n2").Store().Count("bi")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("replicas still disagree after both rounds: n1=%v n2=%v", c1, c2)
	}
	if int64(c1+0.5) != 3 {
		t.Errorf("union count = %v, want ≈3 — a divergent element was lost", c1)
	}
}

// TestDigestSyncChaosUnderLoad: delete a slice of keys from one replica
// of a 3-node cluster, then let EVERY node run a digest round (the
// deployment shape: each node's ticker fires independently). The
// cluster must converge to the union, with a total message budget far
// below one message per key — the whole point of digest anti-entropy.
func TestDigestSyncChaosUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("digest chaos skipped in -short")
	}
	const keys = 500
	h := newHarnessCfg(t, 3, 2, &TransferConfig{MinStreamKeys: 4})
	ref := make(map[string]float64, keys)
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("dc-%d", k)
		if _, err := h.node("n1").Add(key, "a", "b"); err != nil {
			t.Fatal(err)
		}
		ref[key] = mustCount(t, h.node("n1"), key)
	}
	// n2 loses every 9th key it holds (it only replicates ~2/3 of the
	// keyspace at replicas=2, so track which deletions landed).
	var droppedKeys []string
	for k := 0; k < keys; k += 9 {
		key := fmt.Sprintf("dc-%d", k)
		if h.node("n2").Store().Delete(key) {
			droppedKeys = append(droppedKeys, key)
		}
	}
	if len(droppedKeys) == 0 {
		t.Fatal("fixture: n2 held none of the dropped keys")
	}

	var mu sync.Mutex
	total := 0
	h.setIntercept(func(id, addr string, parts []string) error {
		mu.Lock()
		total++
		mu.Unlock()
		return nil
	})
	defer h.setIntercept(nil)

	for _, n := range h.running() {
		if err := n.DigestSync(); err != nil {
			t.Fatalf("%s digest round: %v", n.ID(), err)
		}
	}

	for _, key := range droppedKeys {
		got, err := h.node("n2").Store().Count(key)
		if err != nil {
			t.Errorf("n2: %s still missing after chaos repair: %v", key, err)
			continue
		}
		if got != ref[key] {
			t.Errorf("n2: local count %s = %v after chaos repair, want %v", key, got, ref[key])
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// 3 nodes × 2 peers: 6 DSUM, a handful of DKEYS and stream messages
	// for the diverged shards. A per-key protocol would need ≥500.
	if total >= keys/2 {
		t.Errorf("full-cluster repair cost %d messages for %d keys — digest rounds should be far below O(keys)", total, keys)
	}
	var rounds, repaired uint64
	for _, n := range h.running() {
		r, k := n.DigestSyncStats()
		rounds += r
		repaired += k
	}
	if rounds == 0 {
		t.Error("no node recorded a digest round")
	}
	if repaired < uint64(len(droppedKeys)) {
		t.Errorf("cluster repaired %d keys, want ≥ %d (every dropped key re-shipped)", repaired, len(droppedKeys))
	}
}
