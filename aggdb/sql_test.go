package aggdb

import (
	"math"
	"strings"
	"testing"
)

// sqlTable builds the events table used throughout the SQL tests: 100
// users per country, each visiting on days 0..4.
func sqlTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable(eventsSchema, 4)
	if err != nil {
		t.Fatal(err)
	}
	user := int64(0)
	for _, c := range []string{"at", "de", "us"} {
		for u := 0; u < 100; u++ {
			user++
			for day := 0; day < 5; day++ {
				if err := tbl.Append(c, day, user); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return tbl
}

func TestSQLGroupBy(t *testing.T) {
	tbl := sqlTable(t)
	res, err := tbl.ExecuteSQL("events",
		"SELECT country, COUNT(DISTINCT user) FROM events GROUP BY country EXACT", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Count != 100 {
			t.Errorf("group %v count %.0f, want 100", r.Key, r.Count)
		}
	}
	if res.Columns[0] != "country" || !strings.Contains(res.Columns[1], "user") {
		t.Errorf("columns %v", res.Columns)
	}
}

func TestSQLApproxSynonym(t *testing.T) {
	tbl := sqlTable(t)
	res, err := tbl.ExecuteSQL("events",
		"select country, approx_count_distinct(user) from events group by country", 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if math.Abs(r.Count-100) > 3 {
			t.Errorf("group %v approx %.0f, want ≈100", r.Key, r.Count)
		}
	}
}

func TestSQLWhere(t *testing.T) {
	tbl := sqlTable(t)
	cases := []struct {
		query string
		want  float64
	}{
		{"SELECT COUNT(DISTINCT user) FROM events WHERE country = 'at' EXACT", 100},
		{"SELECT COUNT(DISTINCT user) FROM events WHERE country != 'at' EXACT", 200},
		{"SELECT COUNT(DISTINCT user) FROM events WHERE country <> 'at' EXACT", 200},
		{"SELECT COUNT(DISTINCT user) FROM events WHERE day < 0 EXACT", 0},
		{"SELECT COUNT(DISTINCT user) FROM events WHERE day >= 0 EXACT", 300},
		{"SELECT COUNT(DISTINCT user) FROM events WHERE country = 'de' AND user <= 150 EXACT", 50},
		{"SELECT COUNT(DISTINCT day) FROM events WHERE day != 2 EXACT", 4},
	}
	for _, c := range cases {
		res, err := tbl.ExecuteSQL("events", c.query, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.query, err)
		}
		var got float64
		if len(res.Rows) > 0 {
			got = res.Rows[0].Count
		}
		if got != c.want {
			t.Errorf("%s = %.0f, want %.0f", c.query, got, c.want)
		}
	}
}

func TestSQLMultiGroupBy(t *testing.T) {
	tbl := sqlTable(t)
	res, err := tbl.ExecuteSQL("events",
		"SELECT country, day, COUNT(DISTINCT user) FROM events GROUP BY country, day EXACT", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 {
		t.Fatalf("got %d rows, want 15", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Count != 100 {
			t.Errorf("group %v count %.0f, want 100", r.Key, r.Count)
		}
	}
}

func TestSQLErrors(t *testing.T) {
	tbl := sqlTable(t)
	for _, q := range []string{
		"",                                      // empty
		"SELECT FROM events",                    // no items
		"SELECT COUNT(user) FROM events",        // COUNT without DISTINCT
		"SELECT COUNT(DISTINCT user) FROM nope", // wrong table
		"SELECT COUNT(DISTINCT ghost) FROM events",                          // unknown column
		"SELECT country, COUNT(DISTINCT user) FROM events",                  // select without group by
		"SELECT day, COUNT(DISTINCT user) FROM events GROUP BY country",     // mismatch
		"SELECT COUNT(DISTINCT user) FROM events WHERE country < 'at'",      // string inequality
		"SELECT COUNT(DISTINCT user) FROM events WHERE day = 'x'",           // type mismatch
		"SELECT COUNT(DISTINCT user) FROM events WHERE country = 3",         // type mismatch
		"SELECT COUNT(DISTINCT user) FROM events trailing garbage",          // trailing tokens
		"SELECT COUNT(DISTINCT user FROM events",                            // missing paren
		"SELECT COUNT(DISTINCT user) FROM events WHERE day ==> 3",           // bad operator
		"SELECT COUNT(DISTINCT user) FROM events WHERE day = 'unterminated", // bad literal
		"SELECT COUNT(DISTINCT user) FROM events GROUP BY",                  // missing group col
	} {
		if _, err := tbl.ExecuteSQL("events", q, 0); err == nil {
			t.Errorf("query accepted: %s", q)
		}
	}
}

func TestSQLOrderByLimit(t *testing.T) {
	// Skewed groups: at=100, de=50, us=10 distinct users.
	tbl, err := NewTable(eventsSchema, 2)
	if err != nil {
		t.Fatal(err)
	}
	user := int64(0)
	for _, cs := range []struct {
		c string
		n int
	}{{"at", 100}, {"de", 50}, {"us", 10}} {
		for u := 0; u < cs.n; u++ {
			user++
			if err := tbl.Append(cs.c, 0, user); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := tbl.ExecuteSQL("events",
		"SELECT country, COUNT(DISTINCT user) FROM events GROUP BY country ORDER BY COUNT DESC LIMIT 2 EXACT", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("LIMIT 2 returned %d rows", len(res.Rows))
	}
	if res.Rows[0].Key[0] != "at" || res.Rows[0].Count != 100 {
		t.Errorf("top row %v %.0f, want at 100", res.Rows[0].Key, res.Rows[0].Count)
	}
	if res.Rows[1].Key[0] != "de" || res.Rows[1].Count != 50 {
		t.Errorf("second row %v %.0f, want de 50", res.Rows[1].Key, res.Rows[1].Count)
	}
	// ORDER BY a group column ascending.
	res, err = tbl.ExecuteSQL("events",
		"SELECT country, COUNT(DISTINCT user) FROM events GROUP BY country ORDER BY country ASC EXACT", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Key[0] != "at" || res.Rows[2].Key[0] != "us" {
		t.Errorf("ascending order wrong: %v", res.Rows)
	}
	// Errors.
	for _, q := range []string{
		"SELECT country, COUNT(DISTINCT user) FROM events GROUP BY country ORDER BY day EXACT",
		"SELECT country, COUNT(DISTINCT user) FROM events GROUP BY country LIMIT x EXACT",
		"SELECT country, COUNT(DISTINCT user) FROM events GROUP BY country ORDER country EXACT",
	} {
		if _, err := tbl.ExecuteSQL("events", q, 0); err == nil {
			t.Errorf("query accepted: %s", q)
		}
	}
}

func TestSQLFormat(t *testing.T) {
	tbl := sqlTable(t)
	res, err := tbl.ExecuteSQL("events",
		"SELECT country, COUNT(DISTINCT user) FROM events GROUP BY country EXACT", 0)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	if !strings.Contains(out, "country") || !strings.Contains(out, "at") || !strings.Contains(out, "100") {
		t.Errorf("Format output malformed:\n%s", out)
	}
}

func TestSQLLexerEdgeCases(t *testing.T) {
	// Negative numbers and two-char operators.
	tbl := sqlTable(t)
	res, err := tbl.ExecuteSQL("events",
		"SELECT COUNT(DISTINCT user) FROM events WHERE day >= -1 EXACT", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Count != 300 {
		t.Errorf("count %.0f, want 300", res.Rows[0].Count)
	}
	if _, err := lexSQL("day @ 3"); err == nil {
		t.Error("lexer accepted @")
	}
}
