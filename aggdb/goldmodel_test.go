package aggdb

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"exaloglog/internal/hashing"
)

// TestQuickExactEngineMatchesMap cross-checks the exact query engine
// against an independent map-based reference over random tables.
func TestQuickExactEngineMatchesMap(t *testing.T) {
	schema := Schema{
		{Name: "g", Type: TypeInt},
		{Name: "v", Type: TypeInt},
	}
	err := quick.Check(func(rows []struct{ G, V uint8 }, parts uint8) bool {
		numParts := int(parts)%7 + 1
		tbl, err := NewTable(schema, numParts)
		if err != nil {
			return false
		}
		ref := make(map[int64]map[int64]struct{})
		for _, r := range rows {
			g, v := int64(r.G%5), int64(r.V)
			if err := tbl.Append(g, v); err != nil {
				return false
			}
			if ref[g] == nil {
				ref[g] = make(map[int64]struct{})
			}
			ref[g][v] = struct{}{}
		}
		results, err := tbl.DistinctCount(DistinctQuery{GroupBy: []string{"g"}, Of: "v", Exact: true})
		if err != nil {
			return false
		}
		if len(results) != len(ref) {
			return false
		}
		for _, res := range results {
			g := res.Key[0].(int64)
			if int(res.Count) != len(ref[g]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestApproxTracksExactOverScales sweeps per-group cardinalities over
// three orders of magnitude and requires the approximate engine to stay
// within a 6-sigma band of the exact engine.
func TestApproxTracksExactOverScales(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep is slow")
	}
	schema := Schema{
		{Name: "g", Type: TypeString},
		{Name: "v", Type: TypeInt},
	}
	tbl, err := NewTable(schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{"tiny": 10, "small": 1000, "large": 100000}
	id := int64(0)
	for g, n := range sizes {
		for i := 0; i < n; i++ {
			id++
			if err := tbl.Append(g, id); err != nil {
				t.Fatal(err)
			}
		}
	}
	const p = 12 // stderr ≈ 0.6 %
	results, err := tbl.DistinctCount(DistinctQuery{GroupBy: []string{"g"}, Of: "v", Precision: p})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		want := float64(sizes[r.Key[0].(string)])
		if rel := math.Abs(r.Count-want) / want; rel > 0.04 {
			t.Errorf("group %v: approx %.0f, want %.0f (err %.2f%%)", r.Key, r.Count, want, 100*rel)
		}
	}
}

// TestConcurrentQueries runs many queries against one table from multiple
// goroutines (tables are safe for concurrent reads).
func TestConcurrentQueries(t *testing.T) {
	tbl := buildEvents(t, 8, []string{"at", "de"}, 500, 2, 7)
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		go func(w int) {
			q := DistinctQuery{GroupBy: []string{"country"}, Of: "user", Precision: 10, Exact: w%2 == 0}
			results, err := tbl.DistinctCount(q)
			if err == nil && len(results) != 2 {
				err = fmt.Errorf("got %d groups", len(results))
			}
			errs <- err
		}(w)
	}
	for w := 0; w < 16; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSketchReuseAcrossQueries: the sketches returned by one query merge
// with sketches from an independent query over different data.
func TestSketchReuseAcrossQueries(t *testing.T) {
	mk := func(lo, hi int) *Table {
		tbl, _ := NewTable(Schema{{Name: "v", Type: TypeInt}}, 2)
		for i := lo; i < hi; i++ {
			_ = tbl.Append(int64(i))
		}
		return tbl
	}
	a, _ := mk(0, 4000).DistinctCount(DistinctQuery{Of: "v", Precision: 11})
	b, _ := mk(2000, 6000).DistinctCount(DistinctQuery{Of: "v", Precision: 11})
	if err := a[0].Sketch.Merge(b[0].Sketch); err != nil {
		t.Fatal(err)
	}
	got := a[0].Sketch.Estimate()
	if rel := math.Abs(got-6000) / 6000; rel > 0.05 {
		t.Errorf("cross-query union %.0f, want ≈6000", got)
	}
}

// TestHashQuality sanity-checks that distinct int64 values hash to
// distinct 64-bit values in practice (no systematic collisions that the
// engine would silently absorb).
func TestHashQuality(t *testing.T) {
	seen := make(map[uint64]struct{}, 100000)
	for i := int64(0); i < 100000; i++ {
		h := hashing.Wy64Uint64(uint64(i), 0)
		if _, dup := seen[h]; dup {
			t.Fatalf("hash collision at %d", i)
		}
		seen[h] = struct{}{}
	}
}
