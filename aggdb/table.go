// Package aggdb is a small in-memory columnar analytics engine whose
// distinct-count aggregation runs on ExaLogLog sketches.
//
// The paper's introduction motivates ELL with the APPROX_COUNT_DISTINCT
// commands of analytical data stores (Timescale, Redis, Oracle, Snowflake,
// BigQuery, DuckDB, ...). This package reproduces that setting end to end:
// a partitioned columnar table, a GROUP BY ... COUNT(DISTINCT col) query
// that aggregates per partition in parallel and merges the per-group
// sketches — exactly the mergeability use case of Section 1 — plus
// materialized sketch rollups that answer repeated queries without
// re-scanning and merge across tables for distributed aggregation. An
// exact hash-set execution mode provides ground truth for tests and for
// the accuracy experiments.
package aggdb

import (
	"fmt"
)

// Type is a column type.
type Type int

// Supported column types.
const (
	TypeString Type = iota
	TypeInt
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "STRING"
	case TypeInt:
		return "INT"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema []Column

// columnIndex returns the position of the named column, or an error.
func (s Schema) columnIndex(name string) (int, error) {
	for i, c := range s {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("aggdb: unknown column %q", name)
}

// partition holds a horizontal slice of the table in columnar layout.
type partition struct {
	strs map[int][]string // column index -> values (string columns)
	ints map[int][]int64  // column index -> values (int columns)
	rows int
}

func newPartition(schema Schema) *partition {
	p := &partition{strs: make(map[int][]string), ints: make(map[int][]int64)}
	for i, c := range schema {
		switch c.Type {
		case TypeString:
			p.strs[i] = nil
		case TypeInt:
			p.ints[i] = nil
		}
	}
	return p
}

// Table is a partitioned, append-only columnar table.
//
// Appends are routed round-robin across partitions; queries scan
// partitions in parallel. A Table is safe for concurrent reads but not for
// concurrent Append.
type Table struct {
	schema     Schema
	partitions []*partition
	nextPart   int
	rows       int
}

// NewTable creates an empty table with the given schema, split into
// numPartitions horizontal partitions (>= 1).
func NewTable(schema Schema, numPartitions int) (*Table, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("aggdb: empty schema")
	}
	seen := make(map[string]bool, len(schema))
	for _, c := range schema {
		if c.Name == "" {
			return nil, fmt.Errorf("aggdb: column with empty name")
		}
		if c.Type != TypeString && c.Type != TypeInt {
			return nil, fmt.Errorf("aggdb: column %q has unsupported type %v", c.Name, c.Type)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("aggdb: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	if numPartitions < 1 {
		return nil, fmt.Errorf("aggdb: need at least 1 partition, got %d", numPartitions)
	}
	t := &Table{schema: schema, partitions: make([]*partition, numPartitions)}
	for i := range t.partitions {
		t.partitions[i] = newPartition(schema)
	}
	return t, nil
}

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the total number of appended rows.
func (t *Table) NumRows() int { return t.rows }

// NumPartitions returns the partition count.
func (t *Table) NumPartitions() int { return len(t.partitions) }

// Append adds one row. Values must match the schema: string for
// TypeString columns, int64 (or int) for TypeInt columns.
func (t *Table) Append(values ...any) error {
	if len(values) != len(t.schema) {
		return fmt.Errorf("aggdb: got %d values, schema has %d columns", len(values), len(t.schema))
	}
	p := t.partitions[t.nextPart]
	for i, c := range t.schema {
		switch c.Type {
		case TypeString:
			s, ok := values[i].(string)
			if !ok {
				return fmt.Errorf("aggdb: column %q wants string, got %T", c.Name, values[i])
			}
			p.strs[i] = append(p.strs[i], s)
		case TypeInt:
			switch v := values[i].(type) {
			case int64:
				p.ints[i] = append(p.ints[i], v)
			case int:
				p.ints[i] = append(p.ints[i], int64(v))
			default:
				return fmt.Errorf("aggdb: column %q wants int64, got %T", c.Name, values[i])
			}
		}
	}
	p.rows++
	t.rows++
	t.nextPart = (t.nextPart + 1) % len(t.partitions)
	return nil
}

// RowView is a cursor positioned on one row during a scan; predicate
// functions receive it to read column values.
type RowView struct {
	part *partition
	row  int
}

// String returns the value of string column index col.
func (r RowView) String(col int) string { return r.part.strs[col][r.row] }

// Int returns the value of int column index col.
func (r RowView) Int(col int) int64 { return r.part.ints[col][r.row] }
