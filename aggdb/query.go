package aggdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
)

// DistinctQuery describes SELECT GroupBy..., COUNT(DISTINCT Of) FROM t
// [WHERE Where] GROUP BY GroupBy.
type DistinctQuery struct {
	// GroupBy lists the grouping columns (may be empty for a global
	// aggregate).
	GroupBy []string
	// Of is the column whose distinct values are counted.
	Of string
	// Where optionally filters rows before aggregation.
	Where func(RowView) bool
	// Precision is the sketch precision p (default 12). Higher costs more
	// memory per group, lower is less accurate.
	Precision int
	// Exact switches to exact hash-set execution (ground truth; memory
	// grows linearly with per-group distinct counts).
	Exact bool
}

// GroupResult is one output row of a distinct-count query.
type GroupResult struct {
	// Key holds the group-by column values in GroupBy order (empty for a
	// global aggregate).
	Key []any
	// Count is the (approximate or exact) distinct count.
	Count float64
	// Sketch is the group's merged ELL sketch (nil in exact mode); it can
	// be merged with results from other tables or stored as a rollup.
	Sketch *core.Sketch
}

// DistinctCount executes a GROUP BY COUNT(DISTINCT) query. Partitions are
// scanned concurrently; the per-partition, per-group sketches are merged
// pairwise afterwards (the mergeability property of Section 1). Results
// are sorted by group key for determinism.
func (t *Table) DistinctCount(q DistinctQuery) ([]GroupResult, error) {
	plan, err := t.plan(q)
	if err != nil {
		return nil, err
	}
	// Scan partitions in parallel.
	partGroups := make([]map[string]*groupAgg, len(t.partitions))
	var wg sync.WaitGroup
	for pi, part := range t.partitions {
		wg.Add(1)
		go func(pi int, part *partition) {
			defer wg.Done()
			partGroups[pi] = plan.scanPartition(part)
		}(pi, part)
	}
	wg.Wait()

	// Merge partition results into the first non-empty map.
	merged := make(map[string]*groupAgg)
	for _, groups := range partGroups {
		for key, agg := range groups {
			if dst, ok := merged[key]; ok {
				if err := dst.merge(agg); err != nil {
					return nil, err
				}
			} else {
				merged[key] = agg
			}
		}
	}

	out := make([]GroupResult, 0, len(merged))
	keys := make([]string, 0, len(merged))
	for key := range merged {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		agg := merged[key]
		res := GroupResult{Key: agg.key}
		if q.Exact {
			res.Count = float64(len(agg.exact))
		} else {
			res.Count = agg.sketch.Estimate()
			res.Sketch = agg.sketch
		}
		out = append(out, res)
	}
	return out, nil
}

// queryPlan is a resolved query: column indices instead of names.
type queryPlan struct {
	table     *Table
	groupCols []int
	ofCol     int
	ofType    Type
	where     func(RowView) bool
	cfg       core.Config
	exact     bool
}

// plan resolves column names and validates the query.
func (t *Table) plan(q DistinctQuery) (*queryPlan, error) {
	p := &queryPlan{table: t, where: q.Where, exact: q.Exact}
	for _, name := range q.GroupBy {
		idx, err := t.schema.columnIndex(name)
		if err != nil {
			return nil, err
		}
		p.groupCols = append(p.groupCols, idx)
	}
	idx, err := t.schema.columnIndex(q.Of)
	if err != nil {
		return nil, err
	}
	p.ofCol = idx
	p.ofType = t.schema[idx].Type
	prec := q.Precision
	if prec == 0 {
		prec = 12
	}
	p.cfg = core.RecommendedML(prec)
	if err := p.cfg.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// groupAgg accumulates one group's state.
type groupAgg struct {
	key    []any
	sketch *core.Sketch
	exact  map[uint64]struct{}
}

func (g *groupAgg) merge(other *groupAgg) error {
	if g.exact != nil {
		for h := range other.exact {
			g.exact[h] = struct{}{}
		}
		return nil
	}
	return g.sketch.Merge(other.sketch)
}

// scanPartition filters and aggregates one partition.
func (p *queryPlan) scanPartition(part *partition) map[string]*groupAgg {
	groups := make(map[string]*groupAgg)
	var keyBuf strings.Builder
	for row := 0; row < part.rows; row++ {
		rv := RowView{part: part, row: row}
		if p.where != nil && !p.where(rv) {
			continue
		}
		keyBuf.Reset()
		for _, col := range p.groupCols {
			switch p.table.schema[col].Type {
			case TypeString:
				s := part.strs[col][row]
				keyBuf.WriteString(strconv.Itoa(len(s)))
				keyBuf.WriteByte(':')
				keyBuf.WriteString(s)
			case TypeInt:
				keyBuf.WriteString(strconv.FormatInt(part.ints[col][row], 10))
				keyBuf.WriteByte(';')
			}
		}
		key := keyBuf.String()
		agg, ok := groups[key]
		if !ok {
			agg = &groupAgg{key: p.keyValues(part, row)}
			if p.exact {
				agg.exact = make(map[uint64]struct{})
			} else {
				agg.sketch = core.MustNew(p.cfg)
			}
			groups[key] = agg
		}
		h := p.hashOf(part, row)
		if p.exact {
			agg.exact[h] = struct{}{}
		} else {
			agg.sketch.AddHash(h)
		}
	}
	return groups
}

// hashOf hashes the counted column's value of the given row.
func (p *queryPlan) hashOf(part *partition, row int) uint64 {
	if p.ofType == TypeString {
		return hashing.WyString(part.strs[p.ofCol][row], 0)
	}
	return hashing.Wy64Uint64(uint64(part.ints[p.ofCol][row]), 0)
}

// keyValues materializes the group-by values of a row.
func (p *queryPlan) keyValues(part *partition, row int) []any {
	if len(p.groupCols) == 0 {
		return nil
	}
	vals := make([]any, len(p.groupCols))
	for i, col := range p.groupCols {
		if p.table.schema[col].Type == TypeString {
			vals[i] = part.strs[col][row]
		} else {
			vals[i] = part.ints[col][row]
		}
	}
	return vals
}

// FormatResults renders query results as an aligned text table — the
// "same rows the paper reports" convention used by the cmd/ binaries.
func FormatResults(groupBy []string, of string, results []GroupResult) string {
	var b strings.Builder
	for _, g := range groupBy {
		fmt.Fprintf(&b, "%-16s", g)
	}
	fmt.Fprintf(&b, "approx_distinct(%s)\n", of)
	for _, r := range results {
		for _, v := range r.Key {
			fmt.Fprintf(&b, "%-16v", v)
		}
		fmt.Fprintf(&b, "%.0f\n", r.Count)
	}
	return b.String()
}
