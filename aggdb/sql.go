package aggdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// This file adds a small SQL front-end over the distinct-count engine, so
// the analytical-store scenario of the paper's introduction can be
// exercised with the syntax those stores actually offer:
//
//	SELECT country, APPROX_COUNT_DISTINCT(user)
//	FROM events
//	WHERE day >= 3 AND country != 'jp'
//	GROUP BY country
//
// The supported grammar (case-insensitive keywords):
//
//	query   := SELECT items FROM ident [WHERE conj] [GROUP BY idents]
//	           [ORDER BY (COUNT | ident) [ASC | DESC]] [LIMIT integer]
//	items   := (ident ",")* agg
//	agg     := (APPROX_COUNT_DISTINCT | COUNT) "(" [DISTINCT] ident ")"
//	conj    := cmp (AND cmp)*
//	cmp     := ident op literal
//	op      := = | != | <> | < | <= | > | >=
//	literal := integer | 'string'
//
// COUNT(DISTINCT col) and APPROX_COUNT_DISTINCT(col) are synonyms; both
// run on ELL sketches. Appending EXACT after the query switches to the
// exact hash-set engine (ground truth).

// SQLResult is the outcome of ExecuteSQL: column headers plus rows.
type SQLResult struct {
	Columns []string
	Rows    []GroupResult
}

// Format renders the result as an aligned text table.
func (r SQLResult) Format() string {
	var b strings.Builder
	for _, c := range r.Columns {
		fmt.Fprintf(&b, "%-18s", c)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		for _, v := range row.Key {
			fmt.Fprintf(&b, "%-18v", v)
		}
		fmt.Fprintf(&b, "%.0f\n", row.Count)
	}
	return b.String()
}

// ExecuteSQL parses and runs a distinct-count query against the table.
// The table name in FROM is checked against name. precision selects the
// sketch precision p (0 means the engine default).
func (t *Table) ExecuteSQL(name, query string, precision int) (SQLResult, error) {
	stmt, err := parseSQL(query)
	if err != nil {
		return SQLResult{}, err
	}
	if !strings.EqualFold(stmt.from, name) {
		return SQLResult{}, fmt.Errorf("aggdb: unknown table %q (have %q)", stmt.from, name)
	}
	// The non-aggregate select items must match GROUP BY exactly.
	if len(stmt.selectCols) != len(stmt.groupBy) {
		return SQLResult{}, fmt.Errorf("aggdb: selected columns %v must match GROUP BY %v", stmt.selectCols, stmt.groupBy)
	}
	for i := range stmt.selectCols {
		if !strings.EqualFold(stmt.selectCols[i], stmt.groupBy[i]) {
			return SQLResult{}, fmt.Errorf("aggdb: selected column %q not in GROUP BY position %d", stmt.selectCols[i], i)
		}
	}
	where, err := t.compileWhere(stmt.filters)
	if err != nil {
		return SQLResult{}, err
	}
	rows, err := t.DistinctCount(DistinctQuery{
		GroupBy:   stmt.groupBy,
		Of:        stmt.aggCol,
		Where:     where,
		Precision: precision,
		Exact:     stmt.exact,
	})
	if err != nil {
		return SQLResult{}, err
	}
	if err := stmt.order(rows); err != nil {
		return SQLResult{}, err
	}
	if stmt.limit >= 0 && stmt.limit < len(rows) {
		rows = rows[:stmt.limit]
	}
	cols := append([]string(nil), stmt.groupBy...)
	agg := "approx_count_distinct(" + stmt.aggCol + ")"
	if stmt.exact {
		agg = "count(distinct " + stmt.aggCol + ")"
	}
	cols = append(cols, agg)
	return SQLResult{Columns: cols, Rows: rows}, nil
}

// sqlStmt is the parsed form of a query.
type sqlStmt struct {
	selectCols []string
	aggCol     string
	from       string
	filters    []sqlFilter
	groupBy    []string
	orderBy    string // "" = group-key order; "COUNT" = the aggregate
	orderDesc  bool
	limit      int // -1 = no limit
	exact      bool
}

// order sorts rows according to the ORDER BY clause (stable, so ties keep
// the deterministic group-key order).
func (s *sqlStmt) order(rows []GroupResult) error {
	if s.orderBy == "" {
		return nil
	}
	var key func(GroupResult) any
	if strings.EqualFold(s.orderBy, "COUNT") {
		key = func(r GroupResult) any { return r.Count }
	} else {
		idx := -1
		for i, col := range s.groupBy {
			if strings.EqualFold(col, s.orderBy) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("aggdb: ORDER BY column %q is not in GROUP BY", s.orderBy)
		}
		key = func(r GroupResult) any { return r.Key[idx] }
	}
	less := func(a, b any) bool {
		switch x := a.(type) {
		case float64:
			return x < b.(float64)
		case int64:
			return x < b.(int64)
		case string:
			return x < b.(string)
		default:
			return false
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := key(rows[i]), key(rows[j])
		if s.orderDesc {
			return less(b, a)
		}
		return less(a, b)
	})
	return nil
}

type sqlFilter struct {
	col string
	op  string
	// one of the two is set, matching the column type at compile time
	strVal string
	intVal int64
	isStr  bool
}

// compileWhere turns the filter list into a predicate closure bound to
// column indices.
func (t *Table) compileWhere(filters []sqlFilter) (func(RowView) bool, error) {
	if len(filters) == 0 {
		return nil, nil
	}
	type bound struct {
		col    int
		typ    Type
		op     string
		strVal string
		intVal int64
	}
	bounds := make([]bound, len(filters))
	for i, f := range filters {
		idx, err := t.schema.columnIndex(f.col)
		if err != nil {
			return nil, err
		}
		typ := t.schema[idx].Type
		if typ == TypeString && !f.isStr {
			return nil, fmt.Errorf("aggdb: column %q is STRING but compared to a number", f.col)
		}
		if typ == TypeInt && f.isStr {
			return nil, fmt.Errorf("aggdb: column %q is INT but compared to a string", f.col)
		}
		if typ == TypeString && f.op != "=" && f.op != "!=" {
			return nil, fmt.Errorf("aggdb: operator %q not supported for STRING column %q", f.op, f.col)
		}
		bounds[i] = bound{col: idx, typ: typ, op: f.op, strVal: f.strVal, intVal: f.intVal}
	}
	return func(r RowView) bool {
		for _, b := range bounds {
			var ok bool
			if b.typ == TypeString {
				v := r.String(b.col)
				ok = (b.op == "=") == (v == b.strVal)
			} else {
				v := r.Int(b.col)
				switch b.op {
				case "=":
					ok = v == b.intVal
				case "!=":
					ok = v != b.intVal
				case "<":
					ok = v < b.intVal
				case "<=":
					ok = v <= b.intVal
				case ">":
					ok = v > b.intVal
				case ">=":
					ok = v >= b.intVal
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}, nil
}

// --- lexer ---

type sqlToken struct {
	kind sqlTokKind
	text string
}

type sqlTokKind int

const (
	tokIdent sqlTokKind = iota
	tokNumber
	tokString
	tokSymbol
	tokEOF
)

func lexSQL(s string) ([]sqlToken, error) {
	var out []sqlToken
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j == len(s) {
				return nil, fmt.Errorf("aggdb: unterminated string literal")
			}
			out = append(out, sqlToken{tokString, s[i+1 : j]})
			i = j + 1
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(s) && unicode.IsDigit(rune(s[i+1]))):
			j := i + 1
			for j < len(s) && unicode.IsDigit(rune(s[j])) {
				j++
			}
			out = append(out, sqlToken{tokNumber, s[i:j]})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			out = append(out, sqlToken{tokIdent, s[i:j]})
			i = j
		case strings.ContainsRune("(),", c):
			out = append(out, sqlToken{tokSymbol, string(c)})
			i++
		case strings.ContainsRune("=!<>", c):
			j := i + 1
			if j < len(s) && (s[j] == '=' || (c == '<' && s[j] == '>')) {
				j++
			}
			out = append(out, sqlToken{tokSymbol, s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("aggdb: unexpected character %q", c)
		}
	}
	return append(out, sqlToken{kind: tokEOF}), nil
}

// --- parser ---

type sqlParser struct {
	toks []sqlToken
	pos  int
}

func (p *sqlParser) peek() sqlToken { return p.toks[p.pos] }

func (p *sqlParser) next() sqlToken {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *sqlParser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("aggdb: expected %s near %q", kw, p.peek().text)
	}
	return nil
}

func (p *sqlParser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("aggdb: expected %q near %q", sym, t.text)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("aggdb: expected identifier near %q", t.text)
	}
	return t.text, nil
}

func parseSQL(query string) (*sqlStmt, error) {
	toks, err := lexSQL(query)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	stmt := &sqlStmt{limit: -1}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	// Select items: idents until the aggregate.
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("aggdb: expected column or aggregate near %q", t.text)
		}
		up := strings.ToUpper(t.text)
		if up == "APPROX_COUNT_DISTINCT" || up == "COUNT" {
			p.pos++
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			if up == "COUNT" {
				if err := p.expectKeyword("DISTINCT"); err != nil {
					return nil, fmt.Errorf("aggdb: only COUNT(DISTINCT col) is supported")
				}
			} else {
				p.keyword("DISTINCT") // optional
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.aggCol = col
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			break
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.selectCols = append(stmt.selectCols, col)
		if err := p.expectSymbol(","); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.from = from
	if p.keyword("WHERE") {
		for {
			f, err := p.parseFilter()
			if err != nil {
				return nil, err
			}
			stmt.filters = append(stmt.filters, f)
			if !p.keyword("AND") {
				break
			}
		}
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.groupBy = append(stmt.groupBy, col)
			if t := p.peek(); t.kind == tokSymbol && t.text == "," {
				p.pos++
				continue
			}
			break
		}
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.orderBy = col
		switch {
		case p.keyword("DESC"):
			stmt.orderDesc = true
		case p.keyword("ASC"):
		}
	}
	if p.keyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("aggdb: LIMIT needs an integer, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("aggdb: bad LIMIT %q", t.text)
		}
		stmt.limit = n
	}
	stmt.exact = p.keyword("EXACT")
	if t := p.next(); t.kind != tokEOF {
		return nil, fmt.Errorf("aggdb: unexpected trailing input near %q", t.text)
	}
	return stmt, nil
}

func (p *sqlParser) parseFilter() (sqlFilter, error) {
	col, err := p.ident()
	if err != nil {
		return sqlFilter{}, err
	}
	opTok := p.next()
	if opTok.kind != tokSymbol {
		return sqlFilter{}, fmt.Errorf("aggdb: expected comparison operator near %q", opTok.text)
	}
	op := opTok.text
	if op == "<>" {
		op = "!="
	}
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return sqlFilter{}, fmt.Errorf("aggdb: unsupported operator %q", op)
	}
	lit := p.next()
	switch lit.kind {
	case tokNumber:
		v, err := strconv.ParseInt(lit.text, 10, 64)
		if err != nil {
			return sqlFilter{}, fmt.Errorf("aggdb: bad number %q", lit.text)
		}
		return sqlFilter{col: col, op: op, intVal: v}, nil
	case tokString:
		return sqlFilter{col: col, op: op, strVal: lit.text, isStr: true}, nil
	default:
		return sqlFilter{}, fmt.Errorf("aggdb: expected literal near %q", lit.text)
	}
}
