package aggdb

import (
	"fmt"
	"testing"
)

// benchTable builds a 200k-row events table with 4 groups.
func benchTable(b *testing.B, parts int) *Table {
	b.Helper()
	tbl, err := NewTable(Schema{
		{Name: "country", Type: TypeString},
		{Name: "user", Type: TypeInt},
	}, parts)
	if err != nil {
		b.Fatal(err)
	}
	countries := []string{"at", "de", "us", "jp"}
	for i := 0; i < 200000; i++ {
		if err := tbl.Append(countries[i%4], int64(i%50000)); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// BenchmarkDistinctQueryApprox measures the full scan+aggregate+merge
// pipeline of the sketch engine at several partition counts.
func BenchmarkDistinctQueryApprox(b *testing.B) {
	for _, parts := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			tbl := benchTable(b, parts)
			q := DistinctQuery{GroupBy: []string{"country"}, Of: "user", Precision: 12}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tbl.DistinctCount(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistinctQueryExact is the hash-set baseline: same scan, exact
// per-group sets. Compare allocated bytes/op against the approx engine.
func BenchmarkDistinctQueryExact(b *testing.B) {
	tbl := benchTable(b, 4)
	q := DistinctQuery{GroupBy: []string{"country"}, Of: "user", Exact: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.DistinctCount(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRollupQuery measures answering from a materialized rollup
// (no table scan).
func BenchmarkRollupQuery(b *testing.B) {
	tbl := benchTable(b, 4)
	r, err := tbl.MaterializeDistinct([]string{"country"}, "user", 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Count("at")
	}
}
