package aggdb

import (
	"encoding/binary"
	"fmt"
	"sort"

	"exaloglog/internal/core"
)

// Rollup is a materialized GROUP BY COUNT(DISTINCT) result: one ELL sketch
// per group, answerable without re-scanning the table and mergeable with
// rollups built over other tables (shards, time ranges, ...). This is the
// pre-aggregation pattern the paper's mergeability property enables in
// analytical stores: nightly per-day rollups merge into weekly or monthly
// distinct counts at query time.
type Rollup struct {
	groupBy []string
	of      string
	cfg     core.Config
	groups  map[string]*rollupGroup
}

type rollupGroup struct {
	key    []any
	sketch *core.Sketch
}

// MaterializeDistinct scans the table once and builds a rollup of
// COUNT(DISTINCT of) per groupBy combination.
func (t *Table) MaterializeDistinct(groupBy []string, of string, precision int) (*Rollup, error) {
	results, err := t.DistinctCount(DistinctQuery{GroupBy: groupBy, Of: of, Precision: precision})
	if err != nil {
		return nil, err
	}
	r := &Rollup{
		groupBy: append([]string(nil), groupBy...),
		of:      of,
		groups:  make(map[string]*rollupGroup, len(results)),
	}
	for _, g := range results {
		r.cfg = g.Sketch.Config()
		r.groups[rollupKey(g.Key)] = &rollupGroup{key: g.Key, sketch: g.Sketch}
	}
	if r.cfg == (core.Config{}) {
		prec := precision
		if prec == 0 {
			prec = 12
		}
		r.cfg = core.RecommendedML(prec)
	}
	return r, nil
}

// rollupKey encodes group values unambiguously.
func rollupKey(vals []any) string {
	b := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		switch x := v.(type) {
		case string:
			b = binary.AppendUvarint(b, uint64(len(x))<<1)
			b = append(b, x...)
		case int64:
			b = binary.AppendUvarint(b, 1)
			b = binary.LittleEndian.AppendUint64(b, uint64(x))
		default:
			panic(fmt.Sprintf("aggdb: unsupported key type %T", v))
		}
	}
	return string(b)
}

// NumGroups returns the number of materialized groups.
func (r *Rollup) NumGroups() int { return len(r.groups) }

// Count returns the distinct-count estimate for the given group key values
// (in groupBy order), or 0 if the group does not exist.
func (r *Rollup) Count(key ...any) float64 {
	g, ok := r.groups[rollupKey(normalizeKey(key))]
	if !ok {
		return 0
	}
	return g.sketch.Estimate()
}

// normalizeKey converts int to int64 so lookups accept both.
func normalizeKey(key []any) []any {
	out := make([]any, len(key))
	for i, v := range key {
		if x, ok := v.(int); ok {
			out[i] = int64(x)
		} else {
			out[i] = v
		}
	}
	return out
}

// Total returns the distinct count across all groups — a sketch union, so
// elements appearing under several groups are counted once.
func (r *Rollup) Total() float64 {
	var acc *core.Sketch
	for _, g := range r.groups {
		if acc == nil {
			acc = g.sketch.Clone()
			continue
		}
		if err := acc.Merge(g.sketch); err != nil {
			panic(err) // unreachable: one rollup has one configuration
		}
	}
	if acc == nil {
		return 0
	}
	return acc.Estimate()
}

// Merge folds another rollup (same groupBy, of, and sketch configuration)
// into r. Groups present in either side appear in the result; shared
// groups merge losslessly.
func (r *Rollup) Merge(other *Rollup) error {
	if len(r.groupBy) != len(other.groupBy) || r.of != other.of {
		return fmt.Errorf("aggdb: rollup shapes differ: GROUP BY %v/%v vs %v/%v", r.groupBy, r.of, other.groupBy, other.of)
	}
	for i := range r.groupBy {
		if r.groupBy[i] != other.groupBy[i] {
			return fmt.Errorf("aggdb: rollup group-by columns differ: %v vs %v", r.groupBy, other.groupBy)
		}
	}
	if r.cfg != other.cfg {
		return fmt.Errorf("aggdb: rollup sketch configs differ: %+v vs %+v", r.cfg, other.cfg)
	}
	for key, og := range other.groups {
		if g, ok := r.groups[key]; ok {
			if err := g.sketch.Merge(og.sketch); err != nil {
				return err
			}
		} else {
			r.groups[key] = &rollupGroup{key: og.key, sketch: og.sketch.Clone()}
		}
	}
	return nil
}

// Results returns all groups sorted by key, in the same shape as
// Table.DistinctCount.
func (r *Rollup) Results() []GroupResult {
	keys := make([]string, 0, len(r.groups))
	for k := range r.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]GroupResult, 0, len(keys))
	for _, k := range keys {
		g := r.groups[k]
		out = append(out, GroupResult{Key: g.key, Count: g.sketch.Estimate(), Sketch: g.sketch})
	}
	return out
}

// SizeBytes returns the total sketch memory of the rollup.
func (r *Rollup) SizeBytes() int {
	total := 0
	for _, g := range r.groups {
		total += g.sketch.SizeBytes()
	}
	return total
}
