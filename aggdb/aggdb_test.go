package aggdb

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// eventsSchema is the running example: web events with a country, a day
// number and a user id.
var eventsSchema = Schema{
	{Name: "country", Type: TypeString},
	{Name: "day", Type: TypeInt},
	{Name: "user", Type: TypeInt},
}

// buildEvents appends usersPerCountry distinct users per country, each
// appearing `repeats` times, spread over the given days.
func buildEvents(t *testing.T, parts int, countries []string, usersPerCountry, repeats, days int) *Table {
	t.Helper()
	tbl, err := NewTable(eventsSchema, parts)
	if err != nil {
		t.Fatal(err)
	}
	user := int64(0)
	for _, c := range countries {
		for u := 0; u < usersPerCountry; u++ {
			user++
			for rep := 0; rep < repeats; rep++ {
				day := (u + rep) % days
				if err := tbl.Append(c, day, user); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return tbl
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(Schema{}, 1); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewTable(Schema{{Name: "", Type: TypeInt}}, 1); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewTable(Schema{{Name: "a", Type: Type(9)}}, 1); err == nil {
		t.Error("bad type accepted")
	}
	if _, err := NewTable(Schema{{Name: "a", Type: TypeInt}, {Name: "a", Type: TypeInt}}, 1); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewTable(eventsSchema, 0); err == nil {
		t.Error("zero partitions accepted")
	}
}

func TestAppendValidation(t *testing.T) {
	tbl, _ := NewTable(eventsSchema, 2)
	if err := tbl.Append("us", 1); err == nil {
		t.Error("short row accepted")
	}
	if err := tbl.Append(1, 2, 3); err == nil {
		t.Error("wrong type for string column accepted")
	}
	if err := tbl.Append("us", "monday", int64(3)); err == nil {
		t.Error("wrong type for int column accepted")
	}
	if err := tbl.Append("us", 1, int64(3)); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := tbl.Append("us", int64(1), 3); err != nil {
		t.Errorf("int for int64 rejected: %v", err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tbl.NumRows())
	}
}

func TestExactMatchesTruth(t *testing.T) {
	tbl := buildEvents(t, 4, []string{"at", "de", "us"}, 500, 3, 7)
	results, err := tbl.DistinctCount(DistinctQuery{GroupBy: []string{"country"}, Of: "user", Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d groups, want 3", len(results))
	}
	for _, r := range results {
		if r.Count != 500 {
			t.Errorf("group %v exact count %.0f, want 500", r.Key, r.Count)
		}
		if r.Sketch != nil {
			t.Error("exact mode returned a sketch")
		}
	}
}

func TestApproxCloseToExact(t *testing.T) {
	tbl := buildEvents(t, 4, []string{"at", "de", "us"}, 2000, 2, 7)
	results, err := tbl.DistinctCount(DistinctQuery{GroupBy: []string{"country"}, Of: "user", Precision: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if rel := math.Abs(r.Count-2000) / 2000; rel > 0.05 {
			t.Errorf("group %v approx %.0f, want ≈2000 (err %.1f%%)", r.Key, r.Count, 100*rel)
		}
		if r.Sketch == nil {
			t.Error("approx mode returned no sketch")
		}
	}
}

func TestGlobalAggregate(t *testing.T) {
	tbl := buildEvents(t, 3, []string{"at", "de"}, 1000, 2, 7)
	results, err := tbl.DistinctCount(DistinctQuery{Of: "user", Precision: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("global aggregate returned %d rows", len(results))
	}
	want := 2000.0
	if rel := math.Abs(results[0].Count-want) / want; rel > 0.05 {
		t.Errorf("global distinct %.0f, want ≈%.0f", results[0].Count, want)
	}
}

func TestMultiColumnGroupBy(t *testing.T) {
	tbl := buildEvents(t, 2, []string{"at", "de"}, 50, 4, 2)
	results, err := tbl.DistinctCount(DistinctQuery{
		GroupBy: []string{"country", "day"}, Of: "user", Exact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d groups, want 4 (2 countries x 2 days)", len(results))
	}
	// Each (country, day) group must have a 2-element key and results
	// must be sorted deterministically.
	for _, r := range results {
		if len(r.Key) != 2 {
			t.Fatalf("group key %v, want 2 values", r.Key)
		}
	}
}

func TestWhereFilter(t *testing.T) {
	tbl, _ := NewTable(eventsSchema, 2)
	for u := 0; u < 100; u++ {
		_ = tbl.Append("at", u%10, int64(u))
	}
	dayIdx, _ := tbl.Schema().columnIndex("day")
	results, err := tbl.DistinctCount(DistinctQuery{
		Of:    "user",
		Where: func(r RowView) bool { return r.Int(dayIdx) < 5 },
		Exact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Count != 50 {
		t.Errorf("filtered count %.0f, want 50", results[0].Count)
	}
}

func TestUnknownColumns(t *testing.T) {
	tbl := buildEvents(t, 1, []string{"at"}, 5, 1, 1)
	if _, err := tbl.DistinctCount(DistinctQuery{Of: "nope"}); err == nil {
		t.Error("unknown Of column accepted")
	}
	if _, err := tbl.DistinctCount(DistinctQuery{GroupBy: []string{"nope"}, Of: "user"}); err == nil {
		t.Error("unknown group-by column accepted")
	}
	if _, err := tbl.DistinctCount(DistinctQuery{Of: "user", Precision: 99}); err == nil {
		t.Error("invalid precision accepted")
	}
}

// TestPartitionInvariance: the same data distributed over different
// partition counts must give identical sketch states (merge losslessness).
func TestPartitionInvariance(t *testing.T) {
	counts := make([]float64, 0, 3)
	for _, parts := range []int{1, 3, 8} {
		tbl := buildEvents(t, parts, []string{"at"}, 3000, 2, 7)
		results, err := tbl.DistinctCount(DistinctQuery{Of: "user", Precision: 10})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, results[0].Count)
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Fatalf("estimates differ across partitionings: %v", counts)
	}
}

// TestStringDistinct counts distinct values of a string column.
func TestStringDistinct(t *testing.T) {
	tbl, _ := NewTable(Schema{{Name: "word", Type: TypeString}}, 2)
	words := []string{"a", "b", "c", "a", "b", "a"}
	for _, w := range words {
		_ = tbl.Append(w)
	}
	results, err := tbl.DistinctCount(DistinctQuery{Of: "word", Precision: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(results[0].Count-3) > 0.5 {
		t.Errorf("distinct words %.2f, want ≈3", results[0].Count)
	}
}

// TestGroupKeyAmbiguity guards the key encoding: groups ("ab","c") and
// ("a","bc") must stay distinct.
func TestGroupKeyAmbiguity(t *testing.T) {
	schema := Schema{
		{Name: "x", Type: TypeString},
		{Name: "y", Type: TypeString},
		{Name: "v", Type: TypeInt},
	}
	tbl, _ := NewTable(schema, 1)
	_ = tbl.Append("ab", "c", int64(1))
	_ = tbl.Append("a", "bc", int64(2))
	results, err := tbl.DistinctCount(DistinctQuery{GroupBy: []string{"x", "y"}, Of: "v", Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d groups, want 2 (key encoding collision)", len(results))
	}
}

func TestRollupBasics(t *testing.T) {
	tbl := buildEvents(t, 4, []string{"at", "de"}, 1000, 2, 7)
	r, err := tbl.MaterializeDistinct([]string{"country"}, "user", 12)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d, want 2", r.NumGroups())
	}
	for _, c := range []string{"at", "de"} {
		if got := r.Count(c); math.Abs(got-1000)/1000 > 0.05 {
			t.Errorf("rollup count %q = %.0f, want ≈1000", c, got)
		}
	}
	if got := r.Count("xx"); got != 0 {
		t.Errorf("missing group count %g, want 0", got)
	}
	// Users are disjoint across countries: total ≈ 2000.
	if got := r.Total(); math.Abs(got-2000)/2000 > 0.05 {
		t.Errorf("rollup total %.0f, want ≈2000", got)
	}
	if r.SizeBytes() == 0 {
		t.Error("rollup reports zero size")
	}
}

// TestRollupMergeAcrossShards: a rollup built per shard and merged must
// match a rollup over the union table (overlapping users counted once).
func TestRollupMergeAcrossShards(t *testing.T) {
	schema := eventsSchema
	shard1, _ := NewTable(schema, 2)
	shard2, _ := NewTable(schema, 2)
	union, _ := NewTable(schema, 2)
	// Users 0..2999 on shard1, 2000..4999 on shard2 (1000 overlap).
	for u := 0; u < 3000; u++ {
		_ = shard1.Append("at", u%7, int64(u))
		_ = union.Append("at", u%7, int64(u))
	}
	for u := 2000; u < 5000; u++ {
		_ = shard2.Append("at", u%7, int64(u))
		_ = union.Append("at", u%7, int64(u))
	}
	r1, err := shard1.MaterializeDistinct([]string{"country"}, "user", 12)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := shard2.MaterializeDistinct([]string{"country"}, "user", 12)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := union.MaterializeDistinct([]string{"country"}, "user", 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Merge(r2); err != nil {
		t.Fatal(err)
	}
	got, want := r1.Count("at"), ru.Count("at")
	if got != want {
		t.Fatalf("merged rollup %.2f != union rollup %.2f (merge must be lossless)", got, want)
	}
	if rel := math.Abs(got-5000) / 5000; rel > 0.05 {
		t.Errorf("merged estimate %.0f, want ≈5000", got)
	}
}

func TestRollupMergeValidation(t *testing.T) {
	tbl := buildEvents(t, 1, []string{"at"}, 10, 1, 1)
	a, _ := tbl.MaterializeDistinct([]string{"country"}, "user", 10)
	b, _ := tbl.MaterializeDistinct([]string{"day"}, "user", 10)
	if err := a.Merge(b); err == nil {
		t.Error("merging rollups with different group-by accepted")
	}
	c, _ := tbl.MaterializeDistinct([]string{"country"}, "user", 11)
	if err := a.Merge(c); err == nil {
		t.Error("merging rollups with different precision accepted")
	}
	d, _ := tbl.MaterializeDistinct([]string{"country"}, "day", 10)
	if err := a.Merge(d); err == nil {
		t.Error("merging rollups with different Of accepted")
	}
}

func TestRollupResultsSorted(t *testing.T) {
	tbl := buildEvents(t, 2, []string{"de", "at", "us"}, 10, 1, 1)
	r, err := tbl.MaterializeDistinct([]string{"country"}, "user", 10)
	if err != nil {
		t.Fatal(err)
	}
	results := r.Results()
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	var prev string
	for _, g := range results {
		cur := fmt.Sprint(g.Key)
		if cur < prev {
			t.Fatalf("results not sorted: %q after %q", cur, prev)
		}
		prev = cur
	}
}

func TestFormatResults(t *testing.T) {
	tbl := buildEvents(t, 1, []string{"at"}, 5, 1, 1)
	results, _ := tbl.DistinctCount(DistinctQuery{GroupBy: []string{"country"}, Of: "user", Exact: true})
	out := FormatResults([]string{"country"}, "user", results)
	if !strings.Contains(out, "approx_distinct(user)") || !strings.Contains(out, "at") {
		t.Errorf("FormatResults output malformed:\n%s", out)
	}
}
