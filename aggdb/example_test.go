package aggdb_test

import (
	"fmt"

	"exaloglog/aggdb"
)

// Run a grouped approximate distinct-count query through the SQL
// front-end.
func ExampleTable_ExecuteSQL() {
	table, err := aggdb.NewTable(aggdb.Schema{
		{Name: "country", Type: aggdb.TypeString},
		{Name: "user", Type: aggdb.TypeInt},
	}, 4)
	if err != nil {
		panic(err)
	}
	for u := 0; u < 3000; u++ {
		country := "at"
		if u >= 1000 {
			country = "de"
		}
		if err := table.Append(country, u); err != nil {
			panic(err)
		}
	}
	res, err := table.ExecuteSQL("events",
		"SELECT country, COUNT(DISTINCT user) FROM events GROUP BY country EXACT", 0)
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Format())
	// Output:
	// country           count(distinct user)
	// at                1000
	// de                2000
}
