package window

import (
	"sort"
	"time"

	"exaloglog/internal/core"
)

// ScanDetector flags entities that touch an unusually large number of
// distinct targets within a sliding window — the port-scan / DDoS
// detection pattern of the paper's introduction (references [9], [11]):
// a port scanner contacts many distinct ports, a DDoS victim is contacted
// by many distinct sources. One sliding-window Counter is kept per entity;
// idle entities are evicted once their whole ring has expired, so memory
// is bounded by the number of recently active entities.
//
// A ScanDetector is not safe for concurrent use.
type ScanDetector struct {
	cfg       core.Config
	slice     time.Duration
	numSlices int
	threshold float64

	counters map[uint64]*entityState
	// evictEvery controls how often (in observations) the idle-entity
	// sweep runs.
	evictEvery int
	sinceSweep int
}

type entityState struct {
	counter  *Counter
	lastSeen time.Time
}

// NewScanDetector returns a detector that flags entities whose distinct
// target count over the window slice·numSlices reaches threshold.
// The sketch configuration cfg controls the memory/accuracy trade-off per
// entity; a small precision (p=4..6) is typical since thresholds are
// coarse.
func NewScanDetector(cfg core.Config, slice time.Duration, numSlices int, threshold float64) (*ScanDetector, error) {
	// Validate by constructing a probe counter.
	if _, err := New(cfg, slice, numSlices); err != nil {
		return nil, err
	}
	return &ScanDetector{
		cfg:        cfg,
		slice:      slice,
		numSlices:  numSlices,
		threshold:  threshold,
		counters:   make(map[uint64]*entityState),
		evictEvery: 4096,
	}, nil
}

// Observe records that entity touched target at time ts.
func (d *ScanDetector) Observe(ts time.Time, entity, target uint64) {
	st, ok := d.counters[entity]
	if !ok {
		c, err := New(d.cfg, d.slice, d.numSlices)
		if err != nil {
			panic(err) // unreachable: config validated in NewScanDetector
		}
		st = &entityState{counter: c}
		d.counters[entity] = st
	}
	st.counter.AddUint64(ts, target)
	if ts.After(st.lastSeen) {
		st.lastSeen = ts
	}
	if d.sinceSweep++; d.sinceSweep >= d.evictEvery {
		d.sinceSweep = 0
		d.evict(ts)
	}
}

// Score returns the estimated distinct-target count of entity over the
// full window ending at now (0 if the entity is unknown or expired).
func (d *ScanDetector) Score(now time.Time, entity uint64) float64 {
	st, ok := d.counters[entity]
	if !ok {
		return 0
	}
	return st.counter.Estimate(now, st.counter.Span())
}

// Suspicious returns the entities whose windowed distinct-target estimate
// reaches the threshold, sorted by descending score.
func (d *ScanDetector) Suspicious(now time.Time) []Finding {
	var out []Finding
	for e, st := range d.counters {
		if score := st.counter.Estimate(now, st.counter.Span()); score >= d.threshold {
			out = append(out, Finding{Entity: e, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	return out
}

// Finding is one flagged entity with its estimated distinct-target count.
type Finding struct {
	Entity uint64
	Score  float64
}

// TrackedEntities returns how many entities currently hold state.
func (d *ScanDetector) TrackedEntities() int { return len(d.counters) }

// evict drops entities whose last observation is older than the ring span
// (their windowed count is necessarily zero).
func (d *ScanDetector) evict(now time.Time) {
	span := d.slice * time.Duration(d.numSlices)
	for e, st := range d.counters {
		if now.Sub(st.lastSeen) > span {
			delete(d.counters, e)
		}
	}
}
