package window

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"exaloglog/internal/core"
)

// Serialization: a Counter marshals slot-wise — a fixed magic, the
// sketch configuration and ring geometry, then one record per live
// slice (slice index + the slice sketch's own binary form). Empty
// slots are skipped, so a mostly idle window costs almost nothing on
// the wire. The format is what lets a sketch server DUMP windowed
// keys, replicate them with idempotent merges, and scatter-gather
// window queries slot-wise (merging rings, not collapsed union
// sketches, so the receiver can still answer any sub-window).
//
// Format:
//
//	bytes 0-3  magic "ELW1"
//	bytes 4-6  sketch configuration: t, d, p
//	uvarint    slice duration in nanoseconds
//	uvarint    number of slices in the ring
//	uvarint    dropped counter
//	uvarint    latest timestamp (unix nanoseconds, 0 = none)
//	uvarint    number of live slice records
//	per record:
//	  uvarint  slice index
//	  uvarint  sketch blob length, then the core sketch blob
//
// The magic deliberately shares its first two bytes with the core
// sketch format ("EL" + version byte 1) while remaining unambiguous:
// byte 2 is 'W' here and 0x01 there, so a reader holding an unknown
// blob can cheaply tell a plain sketch from a window ring.
const (
	// Magic is the 4-byte prefix of every serialized Counter.
	Magic = "ELW1"

	// decode caps: a corrupt or hostile blob must be rejected before it
	// can drive an absurd allocation (mirrors the cluster wire codecs).
	maxWireSlices    = 1 << 16
	maxWireSliceBlob = 1 << 26
	// maxWireRingBytes bounds slices × per-slice-sketch size BEFORE the
	// ring is allocated: the geometry comes from the (hostile) header,
	// not from the blob length, so a ~30-byte blob claiming p=26 ×
	// 65536 slices must not drive a multi-TB allocation.
	maxWireRingBytes = 1 << 28
)

// IsSerialized reports whether data looks like a serialized Counter
// (it carries the window magic). It does not validate the remainder.
func IsSerialized(data []byte) bool {
	return len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic
}

// MarshalBinary serializes the counter slot-wise.
func (c *Counter) MarshalBinary() ([]byte, error) {
	var scratch [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, 64)
	buf = append(buf, Magic...)
	buf = append(buf, byte(c.cfg.T), byte(c.cfg.D), byte(c.cfg.P))
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf = append(buf, scratch[:n]...)
	}
	putUvarint(uint64(c.slice))
	putUvarint(uint64(len(c.slots)))
	putUvarint(c.dropped)
	putUvarint(uint64(c.latest))
	live := 0
	for i := range c.slots {
		if c.slots[i].index >= 0 {
			live++
		}
	}
	putUvarint(uint64(live))
	for i := range c.slots {
		s := &c.slots[i]
		if s.index < 0 {
			continue
		}
		putUvarint(uint64(s.index))
		blob, err := s.sketch.MarshalBinary()
		if err != nil {
			return nil, err // unreachable: sketch MarshalBinary cannot fail
		}
		putUvarint(uint64(len(blob)))
		buf = append(buf, blob...)
	}
	return buf, nil
}

// FromBinary reconstructs a Counter from MarshalBinary's output. It is
// deliberately strict: corrupt or adversarial input yields an error,
// never a panic, an over-allocation, or a degenerate ring (see
// FuzzWindowDecode).
func FromBinary(data []byte) (*Counter, error) {
	if !IsSerialized(data) {
		return nil, fmt.Errorf("window: bad magic in %d-byte blob", len(data))
	}
	if len(data) < len(Magic)+3 {
		return nil, fmt.Errorf("window: truncated configuration header")
	}
	cfg := core.Config{
		T: int(data[len(Magic)]),
		D: int(data[len(Magic)+1]),
		P: int(data[len(Magic)+2]),
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("window: blob configuration: %w", err)
	}
	rest := data[len(Magic)+3:]
	next := func(what string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("window: truncated %s", what)
		}
		rest = rest[n:]
		return v, nil
	}
	sliceNS, err := next("slice duration")
	if err != nil {
		return nil, err
	}
	numSlices, err := next("slice count")
	if err != nil {
		return nil, err
	}
	if numSlices < 2 || numSlices > maxWireSlices {
		return nil, fmt.Errorf("window: blob claims %d slices (want 2..%d)", numSlices, maxWireSlices)
	}
	dropped, err := next("dropped counter")
	if err != nil {
		return nil, err
	}
	latest, err := next("latest timestamp")
	if err != nil {
		return nil, err
	}
	live, err := next("record count")
	if err != nil {
		return nil, err
	}
	if live > numSlices {
		return nil, fmt.Errorf("window: blob claims %d live records for a %d-slice ring", live, numSlices)
	}
	slice := time.Duration(sliceNS)
	if slice <= 0 {
		return nil, fmt.Errorf("window: blob slice duration %d out of range", sliceNS)
	}
	// The ring is allocated eagerly (one sketch per slot), so bound the
	// claimed total size before New — the header is untrusted input.
	if ringBytes := uint64(cfg.SizeBytes()) * numSlices; ringBytes > maxWireRingBytes {
		return nil, fmt.Errorf("window: blob claims a %d-byte ring (limit %d)", ringBytes, maxWireRingBytes)
	}
	// Slice indexes and the latest timestamp must stay inside the range
	// live inserts can produce (AddHash's maxUnixSec guard): a decoded
	// idx near 2^62 would set maxIndex so high that every future real
	// add counts as dropped — one poisoned blob bricking the key.
	maxIdx := uint64(math.MaxInt64) / sliceNS
	if latest > uint64(math.MaxInt64) {
		return nil, fmt.Errorf("window: blob latest timestamp %d out of range", latest)
	}
	c, err := New(cfg, slice, int(numSlices))
	if err != nil {
		return nil, err
	}
	for r := uint64(0); r < live; r++ {
		idxU, err := next("slice index")
		if err != nil {
			return nil, err
		}
		if idxU > maxIdx {
			return nil, fmt.Errorf("window: slice index %d out of range for slice %v", idxU, slice)
		}
		idx := int64(idxU)
		blobLen, err := next("sketch blob length")
		if err != nil {
			return nil, err
		}
		if blobLen > maxWireSliceBlob || blobLen > uint64(len(rest)) {
			return nil, fmt.Errorf("window: slice blob length %d exceeds input", blobLen)
		}
		sk, err := core.FromBinary(rest[:blobLen])
		if err != nil {
			return nil, fmt.Errorf("window: slice %d sketch: %w", idx, err)
		}
		rest = rest[blobLen:]
		if sk.Config() != cfg {
			return nil, fmt.Errorf("window: slice %d configuration %+v differs from ring %+v", idx, sk.Config(), cfg)
		}
		s := &c.slots[int(idx%int64(numSlices))]
		if s.index >= 0 {
			return nil, fmt.Errorf("window: slice indexes %d and %d collide in a %d-slice ring", s.index, idx, numSlices)
		}
		s.index = idx
		s.sketch = sk
		if idx > c.maxIndex {
			c.maxIndex = idx
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("window: %d trailing bytes after the last record", len(rest))
	}
	c.dropped = dropped
	c.latest = int64(latest)
	return c, nil
}

// Describe renders the counter's observable state as space-free
// key=value fields — the body of the sketch server's WINFO reply:
//
//	slice=1s slices=60 span=1m0s latest=<unix ms, 0 if none> dropped=<n> bytes=<n> estimate=<full-span estimate>
func (c *Counter) Describe() string {
	latestMS := int64(0)
	if c.latest != 0 {
		latestMS = c.latest / int64(time.Millisecond)
	}
	return fmt.Sprintf("slice=%s slices=%d span=%s latest=%d dropped=%d bytes=%d estimate=%.1f",
		c.slice, len(c.slots), c.Span(), latestMS, c.dropped,
		c.MemoryFootprint(), c.Estimate(c.Latest(), c.Span()))
}
