package window_test

import (
	"fmt"
	"time"

	"exaloglog"
	"exaloglog/window"
)

// Count distinct users over the last minute, refreshed continuously.
func ExampleCounter() {
	c, err := window.New(exaloglog.Config{T: 2, D: 20, P: 10}, time.Second, 60)
	if err != nil {
		panic(err)
	}
	start := time.Date(2026, 6, 13, 12, 0, 0, 0, time.UTC)
	// 90 seconds of traffic: user u is active in second u/100.
	for u := 0; u < 9000; u++ {
		ts := start.Add(time.Duration(u/100) * time.Second)
		c.AddUint64(ts, uint64(u))
	}
	now := start.Add(89 * time.Second)
	last60 := c.Estimate(now, time.Minute) // users 3000..8999 → 6000
	fmt.Printf("last minute within 5%% of 6000: %v\n", last60 > 5700 && last60 < 6300)
	// Output:
	// last minute within 5% of 6000: true
}
