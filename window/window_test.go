package window

import (
	"math"
	"testing"
	"time"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
)

var t0 = time.Date(2026, 6, 13, 12, 0, 0, 0, time.UTC)

func newCounter(t *testing.T, p int, slice time.Duration, slices int) *Counter {
	t.Helper()
	c, err := New(core.Config{T: 2, D: 20, P: p}, slice, slices)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	good := core.Config{T: 2, D: 20, P: 8}
	if _, err := New(core.Config{T: 9, D: 20, P: 8}, time.Second, 4); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(good, 0, 4); err == nil {
		t.Error("zero slice duration accepted")
	}
	if _, err := New(good, time.Second, 1); err == nil {
		t.Error("single slice accepted")
	}
	c, err := New(good, time.Second, 60)
	if err != nil {
		t.Fatal(err)
	}
	if c.Span() != time.Minute {
		t.Errorf("Span = %v, want 1m", c.Span())
	}
}

// TestWindowAccuracy streams distinct elements at a constant rate and
// checks windowed estimates against the exact sliding count.
func TestWindowAccuracy(t *testing.T) {
	const (
		perSlice = 2000
		slices   = 10
	)
	c := newCounter(t, 10, time.Second, slices)
	state := uint64(1)
	// Fill all 10 slices with perSlice fresh distinct elements each.
	for s := 0; s < slices; s++ {
		ts := t0.Add(time.Duration(s) * time.Second)
		for i := 0; i < perSlice; i++ {
			c.AddHash(ts, hashing.SplitMix64(&state))
		}
	}
	now := t0.Add(time.Duration(slices-1) * time.Second)
	for w := 1; w <= slices; w++ {
		want := float64(w * perSlice)
		got := c.Estimate(now, time.Duration(w)*time.Second)
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("window %ds: estimate %.0f, want %.0f (rel err %.1f%%)", w, got, want, 100*rel)
		}
	}
}

// TestExpiry: elements older than the window must stop contributing.
func TestExpiry(t *testing.T) {
	c := newCounter(t, 8, time.Second, 4)
	state := uint64(7)
	for i := 0; i < 5000; i++ {
		c.AddHash(t0, hashing.SplitMix64(&state))
	}
	if got := c.Estimate(t0, time.Second); got < 4000 {
		t.Fatalf("fresh estimate %.0f too low", got)
	}
	// Advance 4 slices: t0's slice leaves every window.
	later := t0.Add(4 * time.Second)
	c.AddHash(later, hashing.SplitMix64(&state)) // rotate the ring
	if got := c.Estimate(later, 2*time.Second); got > 100 {
		t.Fatalf("expired elements still visible: estimate %.0f", got)
	}
}

// TestLateArrivals: elements within the ring span land in their proper
// slice; older ones are dropped and counted.
func TestLateArrivals(t *testing.T) {
	c := newCounter(t, 8, time.Second, 4)
	now := t0.Add(10 * time.Second)
	c.AddUint64(now, 1)
	// 2 slices late: still within the 4-slice ring.
	c.AddUint64(now.Add(-2*time.Second), 2)
	if c.Dropped() != 0 {
		t.Fatalf("in-span late arrival dropped")
	}
	// 5 slices late: beyond the ring.
	c.AddUint64(now.Add(-5*time.Second), 3)
	if c.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", c.Dropped())
	}
	// The in-span late element must appear in a 3-slice window but not in
	// a 1-slice window.
	if got := c.Estimate(now, 3*time.Second); math.Abs(got-2) > 0.5 {
		t.Errorf("3s window estimate %.2f, want ≈2", got)
	}
	if got := c.Estimate(now, time.Second); math.Abs(got-1) > 0.5 {
		t.Errorf("1s window estimate %.2f, want ≈1", got)
	}
}

// TestRingSpanBoundary pins the out-of-order acceptance boundary: with
// the newest slice at index N in an S-slice ring, an element at slice
// N-(S-1) is the oldest representable one and must land in its slot,
// while an element exactly one slice older — distance S, precisely the
// ring span — must be dropped and counted, never wrap around into a
// live slot and pollute a fresh slice.
func TestRingSpanBoundary(t *testing.T) {
	const slices = 4
	c := newCounter(t, 8, time.Second, slices)
	now := t0.Add(100 * time.Second)
	c.AddUint64(now, 1)

	// Distance slices-1: the oldest in-span slice. Accepted.
	oldest := now.Add(-(slices - 1) * time.Second)
	c.AddUint64(oldest, 2)
	if c.Dropped() != 0 {
		t.Fatalf("element at ring-span edge (distance %d slices) dropped", slices-1)
	}
	if got := c.Estimate(now, slices*time.Second); math.Abs(got-2) > 0.5 {
		t.Errorf("full-span estimate %.2f after edge insert, want ≈2", got)
	}

	// Distance slices: exactly the ring span. Dropped, and the slot it
	// would wrap onto (now's own slot) must be untouched.
	atSpan := now.Add(-slices * time.Second)
	c.AddUint64(atSpan, 3)
	if c.Dropped() != 1 {
		t.Fatalf("Dropped = %d after an exactly-span-old insert, want 1", c.Dropped())
	}
	if got := c.Estimate(now, time.Second); math.Abs(got-1) > 0.5 {
		t.Errorf("newest-slice estimate %.2f — the dropped element wrapped into a live slot", got)
	}

	// The boundary moves with the ring: once the newest slice advances,
	// the previously-oldest representable slice falls exactly at the
	// span and is dropped on arrival.
	c.AddUint64(now.Add(time.Second), 4)
	c.AddUint64(oldest, 5) // distance is now exactly `slices` again
	if c.Dropped() != 2 {
		t.Errorf("Dropped = %d after the boundary advanced, want 2", c.Dropped())
	}
}

// TestPreEpochTimestampIsDroppedNotPanic: timestamps before the unix
// epoch (or so large the nanosecond conversion overflows negative)
// yield a negative slice index; they must be counted as dropped, never
// reach the slot arithmetic (a negative modulus would index out of
// range), and never move Latest. Timestamps arrive from the wire, so
// this is reachable by any client.
func TestPreEpochTimestampIsDroppedNotPanic(t *testing.T) {
	c := newCounter(t, 8, time.Second, 4)
	hostile := []time.Time{
		time.Unix(-5, 0),                       // pre-epoch
		time.Unix(0, -5_000_000_000),           // negative nanoseconds
		time.UnixMilli(-9_000_000_000_000),     // far pre-epoch
		time.UnixMilli(9_000_000_000_000_000),  // UnixNano overflow
		time.UnixMilli(-9_000_000_000_000_000), // overflow that wraps POSITIVE — must not poison maxIndex
	}
	for _, ts := range hostile {
		c.AddUint64(ts, 1)
	}
	if got := c.Dropped(); got != uint64(len(hostile)) {
		t.Errorf("Dropped = %d for %d unrepresentable timestamps, want all dropped", got, len(hostile))
	}
	if !c.Latest().IsZero() {
		t.Errorf("unrepresentable timestamps moved Latest to %v", c.Latest())
	}
	c.AddUint64(t0, 2) // the counter still works normally afterwards
	if got := c.Estimate(t0, time.Second); math.Abs(got-1) > 0.5 {
		t.Errorf("estimate %.2f after recovery, want ≈1", got)
	}
}

// TestLatestTracksNewestTimestamp: Latest is the counter's logical
// "now" — it advances with the newest insert, ignores older ones, and
// starts at the zero time.
func TestLatestTracksNewestTimestamp(t *testing.T) {
	c := newCounter(t, 8, time.Second, 4)
	if !c.Latest().IsZero() {
		t.Fatalf("fresh counter Latest = %v, want zero", c.Latest())
	}
	c.AddUint64(t0, 1)
	c.AddUint64(t0.Add(-time.Second), 2) // older: must not move Latest back
	if got := c.Latest(); !got.Equal(t0) {
		t.Errorf("Latest = %v, want %v", got, t0)
	}
	later := t0.Add(3 * time.Second)
	c.AddUint64(later, 3)
	if got := c.Latest(); !got.Equal(later) {
		t.Errorf("Latest = %v, want %v", got, later)
	}
}

// TestMergeCounters: merging one counter into another is exactly
// replaying its insertions — same estimates per window, max Latest,
// idempotent Dropped — and geometry or configuration mismatches are
// errors.
func TestMergeCounters(t *testing.T) {
	a := newCounter(t, 10, time.Second, 6)
	b := newCounter(t, 10, time.Second, 6)
	ref := newCounter(t, 10, time.Second, 6)
	state := uint64(42)
	for s := 0; s < 6; s++ {
		ts := t0.Add(time.Duration(s) * time.Second)
		for i := 0; i < 300; i++ {
			h := hashing.SplitMix64(&state)
			ref.AddHash(ts, h)
			if (s+i)%2 == 0 {
				a.AddHash(ts, h)
			} else {
				b.AddHash(ts, h)
			}
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	now := t0.Add(5 * time.Second)
	for w := 1; w <= 6; w++ {
		win := time.Duration(w) * time.Second
		if got, want := a.Estimate(now, win), ref.Estimate(now, win); got != want {
			t.Errorf("window %v: merged estimate %.2f != replayed %.2f (merge must be lossless)", win, got, want)
		}
	}
	if !a.Latest().Equal(ref.Latest()) {
		t.Errorf("merged Latest %v, want %v", a.Latest(), ref.Latest())
	}

	// Merge is idempotent, Dropped included: re-merging the same ring
	// (a replication retry) must change nothing.
	b.AddHash(t0.Add(-time.Hour), 99) // one genuine drop in b
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	wantDropped, wantEst := a.Dropped(), a.Estimate(now, a.Span())
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Dropped() != wantDropped {
		t.Errorf("re-merge inflated Dropped %d → %d (must be idempotent)", wantDropped, a.Dropped())
	}
	if got := a.Estimate(now, a.Span()); got != wantEst {
		t.Errorf("re-merge moved the estimate %v → %v", wantEst, got)
	}

	other, _ := New(core.Config{T: 2, D: 20, P: 8}, time.Second, 6)
	if err := a.Merge(other); err == nil {
		t.Error("merge across sketch configurations accepted")
	}
	geom := newCounter(t, 10, 2*time.Second, 6)
	if err := a.Merge(geom); err == nil {
		t.Error("merge across slice durations accepted")
	}
}

// TestDuplicatesWithinWindow: re-inserting the same element in the same
// slice never inflates the count.
func TestDuplicatesWithinWindow(t *testing.T) {
	c := newCounter(t, 8, time.Second, 4)
	for i := 0; i < 1000; i++ {
		c.AddString(t0, "the-same-element")
	}
	if got := c.Estimate(t0, time.Second); math.Abs(got-1) > 0.5 {
		t.Fatalf("estimate %.2f for one duplicated element", got)
	}
}

// TestDuplicateAcrossSlices: the same element in two slices is counted
// once per window that covers both (sketch union is idempotent).
func TestDuplicateAcrossSlices(t *testing.T) {
	c := newCounter(t, 8, time.Second, 4)
	c.AddString(t0, "x")
	c.AddString(t0.Add(time.Second), "x")
	now := t0.Add(time.Second)
	if got := c.Estimate(now, 2*time.Second); math.Abs(got-1) > 0.5 {
		t.Fatalf("union estimate %.2f, want ≈1", got)
	}
}

func TestEstimateEdgeCases(t *testing.T) {
	c := newCounter(t, 8, time.Second, 4)
	if got := c.Estimate(t0, time.Second); got != 0 {
		t.Errorf("empty counter estimate %g", got)
	}
	if got := c.Estimate(t0, -time.Second); got != 0 {
		t.Errorf("negative window estimate %g", got)
	}
	c.AddUint64(t0, 1)
	// Oversized window is capped at Span, not an error.
	if got := c.Estimate(t0, time.Hour); math.Abs(got-1) > 0.5 {
		t.Errorf("capped window estimate %g, want ≈1", got)
	}
	iv, err := c.EstimateWithBounds(t0, time.Second, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lower > iv.Estimate || iv.Upper < iv.Estimate {
		t.Errorf("malformed interval %+v", iv)
	}
}

// TestSketchMergeAcrossCounters: windows from two shards merge into a
// union estimate (distributed collection).
func TestSketchMergeAcrossCounters(t *testing.T) {
	a := newCounter(t, 10, time.Second, 4)
	b := newCounter(t, 10, time.Second, 4)
	state := uint64(55)
	shared := make([]uint64, 3000)
	for i := range shared {
		shared[i] = hashing.SplitMix64(&state)
	}
	// Shard A sees the shared set plus 2000 extra; shard B sees the shared
	// set plus 1000 extra.
	for _, h := range shared {
		a.AddHash(t0, h)
		b.AddHash(t0, h)
	}
	for i := 0; i < 2000; i++ {
		a.AddHash(t0, hashing.SplitMix64(&state))
	}
	for i := 0; i < 1000; i++ {
		b.AddHash(t0, hashing.SplitMix64(&state))
	}
	sa := a.Sketch(t0, time.Second)
	sb := b.Sketch(t0, time.Second)
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	want := 6000.0
	if got := sa.Estimate(); math.Abs(got-want)/want > 0.10 {
		t.Fatalf("union estimate %.0f, want ≈%.0f", got, want)
	}
}

func TestScanDetector(t *testing.T) {
	d, err := NewScanDetector(core.Config{T: 2, D: 20, P: 6}, time.Second, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	const scanner, normal = 0xBAD, 0x600D
	// The scanner touches 500 distinct ports; the normal host touches 3
	// ports repeatedly.
	for i := 0; i < 500; i++ {
		ts := t0.Add(time.Duration(i) * 10 * time.Millisecond)
		d.Observe(ts, scanner, uint64(1000+i))
		d.Observe(ts, normal, uint64(80+i%3))
	}
	now := t0.Add(5 * time.Second)
	findings := d.Suspicious(now)
	if len(findings) != 1 || findings[0].Entity != scanner {
		t.Fatalf("Suspicious = %+v, want only the scanner", findings)
	}
	if s := d.Score(now, scanner); s < 300 {
		t.Errorf("scanner score %.0f too low", s)
	}
	if s := d.Score(now, normal); s > 10 {
		t.Errorf("normal host score %.0f too high", s)
	}
	if s := d.Score(now, 0xDEAD); s != 0 {
		t.Errorf("unknown entity score %g", s)
	}
}

// TestScanDetectorEviction: idle entities are dropped once their window
// has fully expired.
func TestScanDetectorEviction(t *testing.T) {
	d, err := NewScanDetector(core.Config{T: 2, D: 20, P: 4}, time.Second, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	d.evictEvery = 1 // sweep on every observation for the test
	for e := uint64(0); e < 100; e++ {
		d.Observe(t0, e, 1)
	}
	if got := d.TrackedEntities(); got != 100 {
		t.Fatalf("TrackedEntities = %d, want 100", got)
	}
	// One entity stays active far in the future; the rest expire.
	d.Observe(t0.Add(time.Minute), 0, 2)
	if got := d.TrackedEntities(); got != 1 {
		t.Fatalf("after expiry TrackedEntities = %d, want 1", got)
	}
}

func TestScanDetectorValidation(t *testing.T) {
	if _, err := NewScanDetector(core.Config{T: 2, D: 20, P: 99}, time.Second, 4, 10); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestMemoryFootprint(t *testing.T) {
	c := newCounter(t, 8, time.Second, 8)
	// 8 slices of 256·28/8 = 896-byte sketches plus overhead.
	if got := c.MemoryFootprint(); got < 8*896 || got > 8*896+8*256 {
		t.Errorf("MemoryFootprint = %d, outside plausible range", got)
	}
}
