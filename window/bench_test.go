package window

import (
	"testing"
	"time"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
)

// BenchmarkWindowInsert measures the steady-state cost of a sliding-window
// insertion: one sketch insert plus the ring bookkeeping.
func BenchmarkWindowInsert(b *testing.B) {
	c, err := New(core.RecommendedML(11), time.Second, 60)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(2026, 6, 13, 0, 0, 0, 0, time.UTC)
	state := uint64(1)
	hashes := make([]uint64, 1<<16)
	for i := range hashes {
		hashes[i] = hashing.SplitMix64(&state)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := base.Add(time.Duration(i) * time.Microsecond)
		c.AddHash(ts, hashes[i&(1<<16-1)])
	}
}

// BenchmarkWindowEstimate measures a full-window query (merge of all 60
// slices plus one ML estimation).
func BenchmarkWindowEstimate(b *testing.B) {
	c, err := New(core.RecommendedML(11), time.Second, 60)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(2026, 6, 13, 0, 0, 0, 0, time.UTC)
	state := uint64(1)
	for i := 0; i < 600000; i++ {
		ts := base.Add(time.Duration(i) * 100 * time.Microsecond)
		c.AddHash(ts, hashing.SplitMix64(&state))
	}
	now := base.Add(time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Estimate(now, time.Minute)
	}
}

// BenchmarkDetectorObserve measures the per-flow cost of the scan
// detector with a realistic population of tracked hosts.
func BenchmarkDetectorObserve(b *testing.B) {
	d, err := NewScanDetector(core.Config{T: 2, D: 20, P: 6}, time.Second, 10, 100)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(2026, 6, 13, 0, 0, 0, 0, time.UTC)
	state := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := base.Add(time.Duration(i) * time.Microsecond)
		h := hashing.SplitMix64(&state)
		d.Observe(ts, h%1000, h>>32%64)
	}
}
