package window

import (
	"bytes"
	"testing"
	"time"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
)

func testCfg() core.Config { return core.Config{T: 2, D: 20, P: 8} }

// TestSerializeRoundTrip: marshal → unmarshal preserves every
// observable — per-window estimates, Dropped, Latest, geometry — and a
// second marshal is byte-identical.
func TestSerializeRoundTrip(t *testing.T) {
	c := newCounter(t, 10, time.Second, 8)
	state := uint64(9)
	for s := 0; s < 10; s++ { // more slices than the ring: forces rotation
		ts := t0.Add(time.Duration(s) * time.Second)
		for i := 0; i < 200; i++ {
			c.AddHash(ts, hashing.SplitMix64(&state))
		}
	}
	c.AddHash(t0.Add(-time.Hour), 1) // one drop

	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !IsSerialized(blob) {
		t.Fatal("marshaled blob does not carry the window magic")
	}
	got, err := FromBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	now := c.Latest()
	for w := 1; w <= 8; w++ {
		win := time.Duration(w) * time.Second
		if a, b := c.Estimate(now, win), got.Estimate(now, win); a != b {
			t.Errorf("window %v: estimate %.2f != %.2f after round trip", win, a, b)
		}
	}
	if got.Dropped() != c.Dropped() {
		t.Errorf("Dropped %d != %d after round trip", got.Dropped(), c.Dropped())
	}
	if !got.Latest().Equal(c.Latest()) {
		t.Errorf("Latest %v != %v after round trip", got.Latest(), c.Latest())
	}
	if got.SliceDuration() != c.SliceDuration() || got.NumSlices() != c.NumSlices() || got.Config() != c.Config() {
		t.Error("geometry or configuration lost in round trip")
	}
	blob2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("re-marshal is not byte-stable")
	}
}

// TestSerializeEmptyCounter: a counter with no insertions round-trips
// (the configuration travels in the header, not in slice records).
func TestSerializeEmptyCounter(t *testing.T) {
	c := newCounter(t, 8, 250*time.Millisecond, 4)
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSlices() != 4 || got.SliceDuration() != 250*time.Millisecond {
		t.Errorf("empty round trip geometry %v×%d", got.SliceDuration(), got.NumSlices())
	}
	if !got.Latest().IsZero() || got.Dropped() != 0 {
		t.Error("empty round trip invented state")
	}
}

// TestFromBinaryRejects enumerates hostile blob shapes that must come
// back as errors, never panics or degenerate rings.
func TestFromBinaryRejects(t *testing.T) {
	c := newCounter(t, 8, time.Second, 4)
	c.AddUint64(t0, 1)
	good, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("ELX1"), good[4:]...),
		"plain sketch":    func() []byte { b, _ := c.Sketch(t0, time.Second).MarshalBinary(); return b }(),
		"truncated":       good[:len(good)-2],
		"header only":     good[:len(Magic)],
		"bad config":      append([]byte("ELW1\x63\x63\x63"), good[7:]...),
		"trailing":        append(append([]byte(nil), good...), 0),
		"zero slices":     {'E', 'L', 'W', '1', 2, 20, 8, 1, 0, 0, 0, 0},
		"absurd slices":   {'E', 'L', 'W', '1', 2, 20, 8, 1, 0xff, 0xff, 0x7f, 0, 0, 0},
		"live over ring":  {'E', 'L', 'W', '1', 2, 20, 8, 1, 4, 0, 0, 9},
		"zero slice dur":  {'E', 'L', 'W', '1', 2, 20, 8, 0, 4, 0, 0, 0},
		"huge slice blob": {'E', 'L', 'W', '1', 2, 20, 8, 1, 4, 0, 0, 1, 1, 0xff, 0xff, 0xff, 0xff, 0x7f},
		// ~14 bytes claiming p=18 × 65535 slices (~60 GB of ring): the
		// geometry must be rejected BEFORE any slot allocation happens —
		// the blob, not its header, has to pay for what it claims.
		"huge ring claim": {'E', 'L', 'W', '1', 2, 20, 18, 1, 0xff, 0xff, 0x03, 0, 0, 0},
		// A slice index past what any representable timestamp can produce
		// would poison maxIndex so every future real add counts as
		// dropped; same for a latest timestamp with the top bit set.
		"huge slice index": {'E', 'L', 'W', '1', 2, 20, 8, 1, 4, 0, 0, 1,
			0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01},
		"huge latest": {'E', 'L', 'W', '1', 2, 20, 8, 1, 4, 0,
			0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 0},
	}
	for name, blob := range cases {
		if got, err := FromBinary(blob); err == nil {
			t.Errorf("%s blob accepted: %+v", name, got)
		}
	}
}

// FuzzWindowDecode mirrors the cluster codecs' fuzz targets: no input
// may panic the decoder, and anything it accepts must re-encode to a
// byte-stable, re-decodable form — two nodes must never disagree about
// one serialized window.
func FuzzWindowDecode(f *testing.F) {
	c, _ := New(testCfg(), time.Second, 4)
	c.AddUint64(t0, 7)
	c.AddUint64(t0.Add(time.Second), 8)
	if blob, err := c.MarshalBinary(); err == nil {
		f.Add(blob)
	}
	f.Add([]byte("ELW1"))
	f.Add([]byte("ELW1\x02\x14\x08\x01\x04\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := FromBinary(data)
		if err != nil {
			return // rejected cleanly
		}
		if got.NumSlices() < 2 || got.NumSlices() > maxWireSlices {
			t.Fatalf("accepted a %d-slice ring", got.NumSlices())
		}
		enc, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted blob failed: %v", err)
		}
		again, err := FromBinary(enc)
		if err != nil {
			t.Fatalf("re-decode of re-marshal failed: %v", err)
		}
		enc2, err := again.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("marshal not byte-stable across a decode cycle")
		}
	})
}
