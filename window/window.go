// Package window provides approximate distinct counting over sliding time
// windows, built from mergeable ExaLogLog sketches.
//
// Sliding-window distinct counting is one of the motivating applications of
// the paper's introduction (port-scan and DDoS detection in IP traffic,
// references [9] and [11]). The approach here is the standard bucketed
// one: time is divided into fixed slices, each slice owns its own ELL
// sketch, and a window query merges the sketches of the slices that
// overlap the window. This preserves every ELL property the paper
// emphasizes — inserts stay constant-time, slices merge losslessly, and
// duplicate elements within a slice never change state — at the cost of
// slice-granular window edges: a query for the last W seconds actually
// covers between W and W+slice seconds of data.
package window

import (
	"fmt"
	"math"
	"time"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
)

// Counter counts distinct elements over a sliding time window.
//
// A Counter is a ring of numSlices ExaLogLog sketches, each covering one
// slice of wall-clock time. Timestamps are supplied by the caller, which
// keeps the Counter deterministic and testable; feed time.Now() for live
// use. Timestamps may arrive slightly out of order; elements older than
// the ring span are counted in Dropped and ignored.
//
// A Counter is not safe for concurrent use.
type Counter struct {
	cfg      core.Config
	slice    time.Duration
	slots    []slot
	maxIndex int64 // newest slice index seen so far
	latest   int64 // newest timestamp seen, unix nanoseconds (0 = none)
	dropped  uint64
}

type slot struct {
	index  int64 // slice index currently stored, -1 if empty
	sketch *core.Sketch
}

// New returns a sliding-window counter with the given sketch
// configuration, slice duration and number of slices. The maximum
// queryable window is slice·numSlices.
func New(cfg core.Config, slice time.Duration, numSlices int) (*Counter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if slice <= 0 {
		return nil, fmt.Errorf("window: slice duration %v must be positive", slice)
	}
	if numSlices < 2 {
		return nil, fmt.Errorf("window: need at least 2 slices, got %d", numSlices)
	}
	c := &Counter{cfg: cfg, slice: slice, slots: make([]slot, numSlices), maxIndex: -1}
	for i := range c.slots {
		c.slots[i] = slot{index: -1, sketch: core.MustNew(cfg)}
	}
	return c, nil
}

// Span returns the maximum window the counter can answer, slice·numSlices.
func (c *Counter) Span() time.Duration { return c.slice * time.Duration(len(c.slots)) }

// SliceDuration returns the granularity of window edges.
func (c *Counter) SliceDuration() time.Duration { return c.slice }

// Dropped returns how many insertions were discarded because their
// timestamp was older than the ring span.
func (c *Counter) Dropped() uint64 { return c.dropped }

// Config returns the sketch configuration the counter's slices use.
func (c *Counter) Config() core.Config { return c.cfg }

// NumSlices returns the number of slices in the ring.
func (c *Counter) NumSlices() int { return len(c.slots) }

// Latest returns the newest timestamp any insertion carried (the
// counter's logical "now" — useful as the default query time for
// deterministic, clockless callers). The zero time means no insertion
// has been seen.
func (c *Counter) Latest() time.Time {
	if c.latest == 0 {
		return time.Time{}
	}
	return time.Unix(0, c.latest)
}

// MemoryFootprint returns the approximate total in-memory size in bytes.
func (c *Counter) MemoryFootprint() int {
	per := c.slots[0].sketch.MemoryFootprint()
	return len(c.slots)*(per+24) + 64
}

// sliceIndex maps a timestamp to its slice index.
func (c *Counter) sliceIndex(ts time.Time) int64 {
	return ts.UnixNano() / int64(c.slice)
}

// Add inserts a byte-slice element observed at ts.
func (c *Counter) Add(ts time.Time, element []byte) {
	c.AddHash(ts, hashing.Wy64(element, 0))
}

// AddString inserts a string element observed at ts.
func (c *Counter) AddString(ts time.Time, element string) {
	c.AddHash(ts, hashing.WyString(element, 0))
}

// AddUint64 inserts a 64-bit integer element observed at ts.
func (c *Counter) AddUint64(ts time.Time, element uint64) {
	c.AddHash(ts, hashing.Wy64Uint64(element, 0))
}

// maxUnixSec bounds the timestamps a Counter can represent: UnixNano —
// which slice indexing and Latest are built on — is only defined for
// seconds in roughly ±292 years around 1970; beyond that the
// conversion WRAPS, which would either panic the slot arithmetic
// (wrap-negative) or poison the ring with a far-future maxIndex that
// silently drops all real traffic (wrap-positive).
const maxUnixSec = int64(math.MaxInt64 / int64(time.Second))

// AddHash inserts an element by its 64-bit hash, observed at ts.
func (c *Counter) AddHash(ts time.Time, h uint64) {
	if sec := ts.Unix(); sec <= -maxUnixSec || sec >= maxUnixSec {
		// Outside UnixNano's defined range: unrepresentable. Timestamps
		// arrive from the wire, so this is load-bearing, not defensive.
		c.dropped++
		return
	}
	idx := c.sliceIndex(ts)
	if idx < 0 {
		// Pre-epoch: representable as a time, not as a ring slice (a
		// negative modulus would index out of range).
		c.dropped++
		return
	}
	if ns := ts.UnixNano(); ns > c.latest {
		c.latest = ns
	}
	if idx > c.maxIndex {
		c.maxIndex = idx
	} else if c.maxIndex-idx >= int64(len(c.slots)) {
		c.dropped++ // older than the ring span
		return
	}
	s := &c.slots[int(idx%int64(len(c.slots)))]
	if s.index != idx {
		if s.index > idx {
			// The slot already holds a newer slice; the element is too
			// old to be representable.
			c.dropped++
			return
		}
		s.sketch.Reset()
		s.index = idx
	}
	s.sketch.AddHash(h)
}

// Merge folds other into c slot-wise: slices with the same index merge
// their sketches losslessly and newer slices advance the ring. Slices
// already older than the merged ring's span are skipped silently —
// they are expired data no queryable window could see, not dropped
// inserts. Dropped resolves to the MAX of the two counters, not the
// sum: replicas of one stream drop the same inserts, and taking the
// max is what keeps the whole merge idempotent — re-merging the same
// ring (a replication retry, an anti-entropy re-send) changes nothing,
// the property cluster rebalance relies on. (The cost: merging rings
// of genuinely disjoint streams under-reports their combined drops;
// Dropped is a diagnostic, idempotency is an invariant.) Both counters
// must share the sketch configuration, slice duration and slice count.
// Merging is commutative and idempotent at the slice level, which is
// what lets distributed collectors ship whole windows instead of raw
// events.
func (c *Counter) Merge(other *Counter) error {
	if c.cfg != other.cfg {
		return fmt.Errorf("window: merge of different sketch configurations %+v and %+v", c.cfg, other.cfg)
	}
	if c.slice != other.slice || len(c.slots) != len(other.slots) {
		return fmt.Errorf("window: merge of different ring geometries %v×%d and %v×%d",
			c.slice, len(c.slots), other.slice, len(other.slots))
	}
	for i := range other.slots {
		s := &other.slots[i]
		if s.index < 0 {
			continue
		}
		c.mergeSlice(s.index, s.sketch)
	}
	if other.latest > c.latest {
		c.latest = other.latest
	}
	if other.dropped > c.dropped {
		c.dropped = other.dropped
	}
	return nil
}

// mergeSlice folds one slice sketch into the ring at slice index idx,
// with the same advance rules as AddHash; expired slices are skipped
// without touching Dropped (see Merge).
func (c *Counter) mergeSlice(idx int64, sk *core.Sketch) {
	if idx < 0 {
		return // in-memory rings and the decoder only hold idx >= 0; defensive
	}
	if idx > c.maxIndex {
		c.maxIndex = idx
	} else if c.maxIndex-idx >= int64(len(c.slots)) {
		return // already expired in the merged ring
	}
	s := &c.slots[int(idx%int64(len(c.slots)))]
	if s.index != idx {
		if s.index > idx {
			return // the slot holds a newer slice (defensive; see AddHash)
		}
		s.sketch.Reset()
		s.index = idx
	}
	if err := s.sketch.Merge(sk); err != nil {
		panic(err) // unreachable: configurations checked by Merge
	}
}

// Estimate returns the approximate number of distinct elements observed in
// the window (now-window, now]. The window is rounded up to whole slices
// and capped at Span.
func (c *Counter) Estimate(now time.Time, window time.Duration) float64 {
	merged := c.merged(now, window)
	if merged == nil {
		return 0
	}
	return merged.Estimate()
}

// EstimateWithBounds is Estimate plus a confidence interval (see
// core.Sketch.EstimateWithBounds).
func (c *Counter) EstimateWithBounds(now time.Time, window time.Duration, confidence float64) (core.Interval, error) {
	merged := c.merged(now, window)
	if merged == nil {
		merged = core.MustNew(c.cfg)
	}
	return merged.EstimateWithBounds(confidence)
}

// merged returns the union sketch of all live slices overlapping
// (now-window, now], or nil if none do.
func (c *Counter) merged(now time.Time, window time.Duration) *core.Sketch {
	if window <= 0 {
		return nil
	}
	if window > c.Span() {
		window = c.Span()
	}
	nowIdx := c.sliceIndex(now)
	n := int64((window + c.slice - 1) / c.slice) // slices covered, rounded up
	oldest := nowIdx - n + 1
	var acc *core.Sketch
	for i := range c.slots {
		s := &c.slots[i]
		if s.index < oldest || s.index > nowIdx {
			continue
		}
		if acc == nil {
			acc = s.sketch.Clone()
			continue
		}
		if err := acc.Merge(s.sketch); err != nil {
			panic(err) // unreachable: all slices share one configuration
		}
	}
	return acc
}

// Sketch returns the union sketch over the window — for callers that want
// to merge windows across counters (e.g. per-shard counters in a
// distributed collector). Returns an empty sketch if no slice overlaps.
func (c *Counter) Sketch(now time.Time, window time.Duration) *core.Sketch {
	if m := c.merged(now, window); m != nil {
		return m
	}
	return core.MustNew(c.cfg)
}
