package window

import (
	"math"
	"testing"
	"time"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
)

// The gold-model test replays a random event stream (random values from a
// bounded universe, random slice-granular timestamps including late
// arrivals) into both the Counter and an exact reference that mirrors the
// Counter's documented semantics: slice-aligned windows, ring-capacity
// drops. Estimates must track the exact counts within the sketch's error
// band throughout.

type goldModel struct {
	numSlices int
	slice     time.Duration
	maxIndex  int64
	// perSlice[index] = set of values in that slice.
	perSlice map[int64]map[uint64]struct{}
	dropped  uint64
}

func newGoldModel(slice time.Duration, numSlices int) *goldModel {
	return &goldModel{
		numSlices: numSlices,
		slice:     slice,
		maxIndex:  -1,
		perSlice:  make(map[int64]map[uint64]struct{}),
	}
}

func (g *goldModel) add(ts time.Time, v uint64) {
	idx := ts.UnixNano() / int64(g.slice)
	if idx > g.maxIndex {
		g.maxIndex = idx
	} else if g.maxIndex-idx >= int64(g.numSlices) {
		g.dropped++
		return
	}
	set, ok := g.perSlice[idx]
	if !ok {
		set = make(map[uint64]struct{})
		g.perSlice[idx] = set
	}
	set[v] = struct{}{}
}

func (g *goldModel) count(now time.Time, window time.Duration) int {
	if window <= 0 {
		return 0
	}
	if max := g.slice * time.Duration(g.numSlices); window > max {
		window = max
	}
	nowIdx := now.UnixNano() / int64(g.slice)
	n := int64((window + g.slice - 1) / g.slice)
	union := make(map[uint64]struct{})
	for idx := nowIdx - n + 1; idx <= nowIdx; idx++ {
		// Slices overwritten by newer ring occupants are gone.
		if g.maxIndex-idx >= int64(g.numSlices) {
			continue
		}
		for v := range g.perSlice[idx] {
			union[v] = struct{}{}
		}
	}
	return len(union)
}

func TestGoldModelRandomStream(t *testing.T) {
	const (
		numSlices = 8
		universe  = 5000
		events    = 60000
	)
	c, err := New(core.Config{T: 2, D: 20, P: 11}, time.Second, numSlices)
	if err != nil {
		t.Fatal(err)
	}
	gold := newGoldModel(time.Second, numSlices)
	base := time.Date(2026, 6, 13, 0, 0, 0, 0, time.UTC)
	state := uint64(2026)
	cursor := base
	for e := 0; e < events; e++ {
		// Time advances irregularly; 10 % of events are late by 0-11
		// slices (some beyond the ring → dropped by both models).
		r := hashing.SplitMix64(&state)
		cursor = cursor.Add(time.Duration(r%2000) * 100 * time.Microsecond)
		ts := cursor
		if r%10 == 0 {
			ts = ts.Add(-time.Duration(hashing.SplitMix64(&state)%12) * time.Second)
		}
		v := hashing.SplitMix64(&state) % universe
		c.AddUint64(ts, v)
		gold.add(ts, hashing.Wy64Uint64(v, 0))

		if e%5000 != 4999 {
			continue
		}
		for _, w := range []time.Duration{time.Second, 3 * time.Second, 8 * time.Second} {
			exact := float64(gold.count(cursor, w))
			got := c.Estimate(cursor, w)
			if exact == 0 {
				if got != 0 {
					t.Fatalf("event %d window %v: estimate %.1f, exact 0", e, w, got)
				}
				continue
			}
			// p=11 → ~0.8 % stderr; allow 6 sigma plus small-n slack.
			if rel := math.Abs(got-exact) / exact; rel > 0.05+10/exact {
				t.Fatalf("event %d window %v: estimate %.0f, exact %.0f (err %.1f%%)",
					e, w, got, exact, 100*rel)
			}
		}
	}
	if c.Dropped() != gold.dropped {
		t.Fatalf("Dropped = %d, gold model dropped %d", c.Dropped(), gold.dropped)
	}
}
