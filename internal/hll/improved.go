package hll

import "math"

// EstimateImprovedRawHistogram implements the improved raw estimator of
// Ertl, "New cardinality estimation algorithms for HyperLogLog sketches"
// (reference [18] of the ExaLogLog paper):
//
//	n̂ = (α∞ · m²) / (m·σ(C₀/m) + Σ_{k=1}^{q} C_k·2^-k + m·τ(1-C_{q+1}/m)·2^-q)
//
// with α∞ = 1/(2 ln 2), q = 64-p, and the σ/τ series below. Unlike the
// original Flajolet estimator it needs no empirical correction constants
// or hard range switches, which removes the estimation spike near
// n ≈ 2.5m that HLLL inherits (Section 5.2 of the paper).
func EstimateImprovedRawHistogram(histo []int32, p int) float64 {
	m := float64(int(1) << uint(p))
	q := 64 - p
	if int(histo[0]) == int(1)<<uint(p) {
		return 0
	}
	denom := m * sigma(float64(histo[0])/m)
	for k := 1; k <= q; k++ {
		denom += float64(histo[k]) * math.Exp2(-float64(k))
	}
	cq1 := float64(histo[q+1])
	denom += m * tau(1-cq1/m) * math.Exp2(-float64(q))
	alphaInf := 0.5 / math.Ln2
	return alphaInf * m * m / denom
}

// sigma evaluates σ(x) = x + Σ_{k>=1} x^(2^k)·2^(k-1) for x ∈ [0, 1).
func sigma(x float64) float64 {
	if x == 1 {
		return math.Inf(1)
	}
	y := 1.0
	z := x
	for {
		x *= x
		zPrev := z
		z += x * y
		y += y
		if z == zPrev {
			return z
		}
	}
}

// tau evaluates τ(x) = (1/3)·(1 - x - Σ_{k>=1} (1-x^(2^-k))²·2^-k) for
// x ∈ [0, 1].
func tau(x float64) float64 {
	if x == 0 || x == 1 {
		return 0
	}
	y := 1.0
	z := 1 - x
	for {
		x = math.Sqrt(x)
		zPrev := z
		y *= 0.5
		d := 1 - x
		z -= d * d * y
		if z == zPrev {
			return z / 3
		}
	}
}

// EstimateImproved returns the improved raw estimate for a Dense6 sketch.
func (s *Dense6) EstimateImproved() float64 {
	return EstimateImprovedRawHistogram(s.histogram(), s.p)
}

// EstimateImproved returns the improved raw estimate for a Dense8 sketch.
func (s *Dense8) EstimateImproved() float64 {
	return EstimateImprovedRawHistogram(s.histogram(), s.p)
}

// EstimateImproved returns the improved raw estimate for a Dense4 sketch.
func (s *Dense4) EstimateImproved() float64 {
	return EstimateImprovedRawHistogram(s.histogram(), s.p)
}
