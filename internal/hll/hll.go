// Package hll implements the HyperLogLog baselines that the paper's
// evaluation compares ExaLogLog against (Table 2, Figures 10-11):
//
//   - Dense8: one byte per register, the simplest layout
//     ("HLL, 8-bit registers" row).
//   - Dense6: the standard 6-bit packed layout of Heule et al.
//     ("HLL, 6-bit registers" row), supporting counts up to 2^64.
//   - Dense4: a DataSketches-style 4-bit layout storing register values
//     relative to a global offset, with out-of-range values kept in an
//     exception map ("HLL, 4-bit registers" row). Inserts are amortized
//     constant but O(m) in the worst case when the offset advances.
//
// All variants share the update rule of Algorithm 1 of the paper: a 64-bit
// hash is split into a p-bit register index and the update value
// k = nlz(masked hash) - p + 1 ∈ [1, 65-p]; registers keep the maximum.
//
// Two estimators are provided: the original Flajolet estimator with
// small-range (linear counting) correction, used by the DataSketches-like
// rows, and an Ertl-style maximum-likelihood estimator (the "HLL ML
// estimator" row) built on the unified likelihood shape the paper derives
// (HLL is the special case ELL(0,0), Section 2.5).
package hll

import (
	"fmt"
	"math"
	"math/bits"

	"exaloglog/internal/bitpack"
	"exaloglog/internal/core"
	"exaloglog/internal/zeta"
)

// MinP and MaxP bound the precision parameter.
const (
	MinP = 2
	MaxP = 26
)

// splitHash computes the register index and update value of Algorithm 1.
func splitHash(h uint64, p int) (idx int, k uint8) {
	idx = int(h >> uint(64-p))
	masked := h &^ (^uint64(0) << uint(64-p))
	k = uint8(bits.LeadingZeros64(masked) - p + 1)
	return idx, k
}

// Dense6 is a HyperLogLog sketch with densely packed 6-bit registers.
type Dense6 struct {
	p    int
	regs *bitpack.Array
}

// NewDense6 creates an empty 6-bit HLL sketch with 2^p registers.
func NewDense6(p int) (*Dense6, error) {
	if p < MinP || p > MaxP {
		return nil, fmt.Errorf("hll: p=%d out of range [%d, %d]", p, MinP, MaxP)
	}
	return &Dense6{p: p, regs: bitpack.New(1<<uint(p), 6)}, nil
}

// Precision returns p.
func (s *Dense6) Precision() int { return s.p }

// NumRegisters returns 2^p.
func (s *Dense6) NumRegisters() int { return 1 << uint(s.p) }

// AddHash inserts an element by its 64-bit hash (Algorithm 1).
func (s *Dense6) AddHash(h uint64) {
	idx, k := splitHash(h, s.p)
	if uint64(k) > s.regs.Get(idx) {
		s.regs.Set(idx, uint64(k))
	}
}

// Register returns register i.
func (s *Dense6) Register(i int) uint8 { return uint8(s.regs.Get(i)) }

// Merge folds other into s (register-wise maximum).
func (s *Dense6) Merge(other *Dense6) error {
	if s.p != other.p {
		return fmt.Errorf("hll: cannot merge p=%d with p=%d", s.p, other.p)
	}
	for i := 0; i < s.NumRegisters(); i++ {
		if v := other.regs.Get(i); v > s.regs.Get(i) {
			s.regs.Set(i, v)
		}
	}
	return nil
}

// Estimate returns the corrected original estimator (see estimateRaw).
func (s *Dense6) Estimate() float64 {
	return estimateRaw(s.histogram(), s.p)
}

// EstimateML returns the Ertl-style maximum-likelihood estimate.
func (s *Dense6) EstimateML() float64 {
	return estimateML(s.histogram(), s.p)
}

func (s *Dense6) histogram() []int32 {
	histo := make([]int32, 66-s.p)
	for i := 0; i < s.NumRegisters(); i++ {
		histo[s.regs.Get(i)]++
	}
	return histo
}

// SizeBytes returns the packed register size: ceil(6m/8) bytes.
func (s *Dense6) SizeBytes() int { return s.regs.SizeBytes() }

// MemoryFootprint approximates total allocated bytes.
func (s *Dense6) MemoryFootprint() int { return s.SizeBytes() + 64 }

// MarshalBinary serializes the register array (plain copy).
func (s *Dense6) MarshalBinary() ([]byte, error) {
	out := make([]byte, 1+s.regs.SizeBytes())
	out[0] = byte(s.p)
	copy(out[1:], s.regs.Bytes())
	return out, nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (s *Dense6) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("hll: empty data")
	}
	p := int(data[0])
	if p < MinP || p > MaxP {
		return fmt.Errorf("hll: bad precision %d", p)
	}
	regs, err := bitpack.FromBytes(data[1:], 1<<uint(p), 6)
	if err != nil {
		return err
	}
	s.p = p
	s.regs = regs
	return nil
}

// Dense8 is a HyperLogLog sketch with one byte per register. It trades
// 25 % more space than Dense6 for the fastest possible register access.
type Dense8 struct {
	p    int
	regs []uint8
}

// NewDense8 creates an empty 8-bit HLL sketch with 2^p registers.
func NewDense8(p int) (*Dense8, error) {
	if p < MinP || p > MaxP {
		return nil, fmt.Errorf("hll: p=%d out of range [%d, %d]", p, MinP, MaxP)
	}
	return &Dense8{p: p, regs: make([]uint8, 1<<uint(p))}, nil
}

// Precision returns p.
func (s *Dense8) Precision() int { return s.p }

// NumRegisters returns 2^p.
func (s *Dense8) NumRegisters() int { return len(s.regs) }

// AddHash inserts an element by its 64-bit hash.
func (s *Dense8) AddHash(h uint64) {
	idx, k := splitHash(h, s.p)
	if k > s.regs[idx] {
		s.regs[idx] = k
	}
}

// Register returns register i.
func (s *Dense8) Register(i int) uint8 { return s.regs[i] }

// Merge folds other into s.
func (s *Dense8) Merge(other *Dense8) error {
	if s.p != other.p {
		return fmt.Errorf("hll: cannot merge p=%d with p=%d", s.p, other.p)
	}
	for i, v := range other.regs {
		if v > s.regs[i] {
			s.regs[i] = v
		}
	}
	return nil
}

// Estimate returns the corrected original estimator.
func (s *Dense8) Estimate() float64 {
	return estimateRaw(s.histogram(), s.p)
}

// EstimateML returns the Ertl-style maximum-likelihood estimate.
func (s *Dense8) EstimateML() float64 {
	return estimateML(s.histogram(), s.p)
}

func (s *Dense8) histogram() []int32 {
	histo := make([]int32, 66-s.p)
	for _, r := range s.regs {
		histo[r]++
	}
	return histo
}

// SizeBytes returns m bytes.
func (s *Dense8) SizeBytes() int { return len(s.regs) }

// MemoryFootprint approximates total allocated bytes.
func (s *Dense8) MemoryFootprint() int { return len(s.regs) + 48 }

// MarshalBinary serializes the register array.
func (s *Dense8) MarshalBinary() ([]byte, error) {
	out := make([]byte, 1+len(s.regs))
	out[0] = byte(s.p)
	copy(out[1:], s.regs)
	return out, nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (s *Dense8) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("hll: empty data")
	}
	p := int(data[0])
	if p < MinP || p > MaxP || len(data)-1 != 1<<uint(p) {
		return fmt.Errorf("hll: bad payload")
	}
	s.p = p
	s.regs = append([]uint8(nil), data[1:]...)
	return nil
}

// EstimateRawHistogram exposes the corrected original estimator for other
// register-histogram-based sketches (HyperLogLogLog reuses it; its reported
// estimation spike near n ≈ 2.5m stems from this estimator's hard switch
// out of linear counting).
func EstimateRawHistogram(histo []int32, p int) float64 {
	return estimateRaw(histo, p)
}

// EstimateMLHistogram exposes the ML estimator for other sketches with
// HLL-equivalent register content.
func EstimateMLHistogram(histo []int32, p int) float64 {
	return estimateML(histo, p)
}

// estimateRaw is the original HyperLogLog estimator of Flajolet et al.
// with the small-range linear-counting correction of Heule et al. The
// large-range correction is unnecessary with 64-bit hashes.
func estimateRaw(histo []int32, p int) float64 {
	m := float64(int(1) << uint(p))
	var alpha float64
	switch {
	case p == 4:
		alpha = 0.673
	case p == 5:
		alpha = 0.697
	case p == 6:
		alpha = 0.709
	default:
		alpha = 0.7213 / (1 + 1.079/m)
	}
	sum := 0.0
	for k, c := range histo {
		if c > 0 {
			sum += float64(c) * math.Exp2(-float64(k))
		}
	}
	e := alpha * m * m / sum
	if zeros := histo[0]; e <= 2.5*m && zeros > 0 {
		// Linear counting.
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// estimateML computes the maximum-likelihood estimate for an HLL register
// histogram using the unified likelihood machinery: HLL is ELL(0,0), so
// the coefficients are α = Σ ω(u) with ω(u) = 2^-min(u,64-p)·(1+max(0,
// u-(64-p))) ... computed exactly like Algorithm 3 with t=0, d=0, and the
// same Newton solver applies. A first-order bias correction with
// c = ln(2)·3·ζ(3,2)/ζ(2,2)² is applied (equation (4) with b=2, d=0).
func estimateML(histo []int32, p int) float64 {
	cap64 := 64 - p
	beta := make([]int32, cap64)
	var alphaScaled uint64 // α·2^(64-p), exact
	var aHi uint64
	for u, c := range histo {
		if c == 0 {
			continue
		}
		phi := u
		if phi > cap64 {
			phi = cap64
		}
		if u >= 1 {
			beta[phi-1] += c
		}
		// ω(u) = (1+φ(u)-u)/2^φ(u); scaled by 2^(64-p).
		num := uint64(1 + phi - u)
		contrib := num << uint(cap64-phi)
		lo, carry := bits.Add64(alphaScaled, contrib*uint64(c), 0)
		alphaScaled = lo
		aHi += carry
		// contrib*c can overflow only if all registers are empty and
		// m = 2^26; the histogram bounds c by m <= 2^26 and contrib by
		// 2^62, so accumulate in 128 bits to stay exact.
	}
	alpha := math.Ldexp(float64(aHi), p) + math.Ldexp(float64(alphaScaled), p-64)
	m := float64(int(1) << uint(p))
	raw := core.SolveML(core.Coefficients{Alpha: alpha, Beta: beta, Lo: 1}, m)
	return raw / (1 + hllBiasC/m)
}

// hllBiasC is the first-order ML bias constant of equation (4) at b=2,
// d=0: ln2·(1+2)·ζ(3,2)/ζ(2,2)².
var hllBiasC = math.Ln2 * 3 * zeta.Hurwitz(3, 2) / (zeta.Hurwitz(2, 2) * zeta.Hurwitz(2, 2))
