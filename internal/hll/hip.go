package hll

import (
	"fmt"
	"math"
)

// HIP adds martingale (historic inverse probability) estimation to an
// 8-bit HyperLogLog sketch, mirroring what the Apache DataSketches HLL
// implementations maintain during insertion. It makes estimation
// essentially free (a field read) and reduces the error from 1.04/√m to
// ≈ 0.836/√m, at the cost of being valid only for a single unmerged
// stream — the same trade-off as ExaLogLog's martingale mode.
type HIP struct {
	s *Dense8
	// estimate is the running HIP estimate; mu is the current state-change
	// probability Σ 2^-r_i / m, maintained incrementally.
	estimate float64
	mu       float64
}

// NewHIP creates an empty 8-bit HLL sketch with HIP tracking.
func NewHIP(p int) (*HIP, error) {
	s, err := NewDense8(p)
	if err != nil {
		return nil, err
	}
	return &HIP{s: s, mu: 1}, nil
}

// Precision returns p.
func (h *HIP) Precision() int { return h.s.Precision() }

// AddHash inserts an element by its 64-bit hash, updating the estimate
// whenever the state changes.
func (h *HIP) AddHash(hash uint64) {
	idx, k := splitHash(hash, h.s.p)
	old := h.s.regs[idx]
	if k <= old {
		return
	}
	h.estimate += 1 / h.mu
	m := float64(len(h.s.regs))
	h.mu -= (math.Exp2(-float64(old)) - math.Exp2(-float64(k))) / m
	h.s.regs[idx] = k
}

// Estimate returns the running HIP estimate.
func (h *HIP) Estimate() float64 { return h.estimate }

// EstimateML returns the ML estimate of the underlying registers (valid
// even after merging the underlying sketch elsewhere).
func (h *HIP) EstimateML() float64 { return h.s.EstimateML() }

// Sketch exposes the underlying register sketch (for merging into
// ML-estimated aggregates; doing so invalidates no state here, but the
// HIP estimate of course only covers this stream).
func (h *HIP) Sketch() *Dense8 { return h.s }

// MemoryFootprint approximates total allocated bytes.
func (h *HIP) MemoryFootprint() int { return h.s.MemoryFootprint() + 16 }

// StateChangeProbability returns the current μ.
func (h *HIP) StateChangeProbability() float64 { return h.mu }

// Merge is rejected: HIP estimation is single-stream by construction.
func (h *HIP) Merge(*HIP) error {
	return fmt.Errorf("hll: HIP sketches cannot be merged; use the ML path on the underlying registers")
}
