package hll

import (
	"math"
	"testing"
)

func TestSigmaTauBasics(t *testing.T) {
	if !math.IsInf(sigma(1), 1) {
		t.Error("σ(1) must be +Inf")
	}
	if sigma(0) != 0 {
		t.Errorf("σ(0) = %g", sigma(0))
	}
	// σ(x) >= x and is increasing.
	prev := 0.0
	for x := 0.05; x < 1; x += 0.05 {
		v := sigma(x)
		if v < x {
			t.Errorf("σ(%g) = %g < x", x, v)
		}
		if v <= prev {
			t.Errorf("σ not increasing at %g", x)
		}
		prev = v
	}
	if tau(0) != 0 || tau(1) != 0 {
		t.Error("τ must vanish at 0 and 1")
	}
	for x := 0.1; x < 1; x += 0.1 {
		if v := tau(x); v < 0 || v > 1 {
			t.Errorf("τ(%g) = %g out of range", x, v)
		}
	}
}

func TestImprovedEstimatorAccuracy(t *testing.T) {
	// Accurate across five orders of magnitude with one code path — no
	// range-switch needed.
	for _, n := range []int{10, 100, 1000, 10000, 300000} {
		s, _ := NewDense6(10)
		r := rng(int64(n) * 3)
		for i := 0; i < n; i++ {
			s.AddHash(r.Uint64())
		}
		got := s.EstimateImproved()
		if relErr := math.Abs(got-float64(n)) / float64(n); relErr > 0.17 {
			t.Errorf("n=%d: improved estimate %.1f (rel err %.3f)", n, got, relErr)
		}
	}
	s, _ := NewDense6(8)
	if got := s.EstimateImproved(); got != 0 {
		t.Errorf("empty sketch: %g", got)
	}
}

// TestImprovedSmoothAtTransition: the original estimator switches hard
// from linear counting at n ≈ 2.5m, creating the error spike the paper
// attributes to HLLL (Figure 10). The improved estimator has no switch;
// verify it beats the original exactly in that region.
func TestImprovedSmoothAtTransition(t *testing.T) {
	const p = 10
	m := 1 << p
	n := int(2.5 * float64(m)) // the transition point
	const runs = 80
	var seRaw, seImp float64
	for run := 0; run < runs; run++ {
		s, _ := NewDense6(p)
		r := rng(int64(run)*37 + 11)
		for i := 0; i < n; i++ {
			s.AddHash(r.Uint64())
		}
		er := s.Estimate()/float64(n) - 1
		ei := s.EstimateImproved()/float64(n) - 1
		seRaw += er * er
		seImp += ei * ei
	}
	if seImp >= seRaw {
		t.Errorf("improved MSE %.6f not below original %.6f at the transition region",
			seImp/runs, seRaw/runs)
	}
}

func TestImprovedOnAllLayouts(t *testing.T) {
	r := rng(13)
	s6, _ := NewDense6(8)
	s8, _ := NewDense8(8)
	s4, _ := NewDense4(8)
	for i := 0; i < 20000; i++ {
		h := r.Uint64()
		s6.AddHash(h)
		s8.AddHash(h)
		s4.AddHash(h)
	}
	// Identical registers → identical estimates.
	e6, e8, e4 := s6.EstimateImproved(), s8.EstimateImproved(), s4.EstimateImproved()
	if e6 != e8 || e6 != e4 {
		t.Errorf("layouts disagree: %.3f %.3f %.3f", e6, e8, e4)
	}
}
