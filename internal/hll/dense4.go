package hll

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Dense4 is a DataSketches-style HyperLogLog with 4-bit registers. Each
// register stores its value relative to a global offset; values that do
// not fit into the nibble range [0, 14] are kept in an exception map
// (value 15 marks an exception). When every register exceeds the current
// offset the offset advances and all registers are rewritten — this is why
// the insert operation is only amortized constant and O(m) in the worst
// case, the trade-off the paper points out for compressed-register
// designs (Section 1.1).
type Dense4 struct {
	p          int
	offset     uint8
	nibbles    []uint8 // two registers per byte
	exceptions map[int]uint8
	// belowCount counts registers whose relative value is 0; when it hits
	// zero the offset can advance.
	belowCount int
}

const d4Exception = 15

// NewDense4 creates an empty 4-bit HLL sketch with 2^p registers.
func NewDense4(p int) (*Dense4, error) {
	if p < MinP || p > MaxP {
		return nil, fmt.Errorf("hll: p=%d out of range [%d, %d]", p, MinP, MaxP)
	}
	m := 1 << uint(p)
	return &Dense4{
		p:          p,
		nibbles:    make([]uint8, m/2),
		exceptions: make(map[int]uint8),
		belowCount: m,
	}, nil
}

// Precision returns p.
func (s *Dense4) Precision() int { return s.p }

// NumRegisters returns 2^p.
func (s *Dense4) NumRegisters() int { return 1 << uint(s.p) }

func (s *Dense4) nibble(i int) uint8 {
	b := s.nibbles[i>>1]
	if i&1 == 0 {
		return b & 0x0f
	}
	return b >> 4
}

func (s *Dense4) setNibble(i int, v uint8) {
	b := s.nibbles[i>>1]
	if i&1 == 0 {
		b = b&0xf0 | v
	} else {
		b = b&0x0f | v<<4
	}
	s.nibbles[i>>1] = b
}

// Register returns the absolute value of register i.
func (s *Dense4) Register(i int) uint8 {
	n := s.nibble(i)
	if n == d4Exception {
		return s.exceptions[i]
	}
	return s.offset + n
}

// AddHash inserts an element by its 64-bit hash.
func (s *Dense4) AddHash(h uint64) {
	idx, k := splitHash(h, s.p)
	s.update(idx, k)
}

func (s *Dense4) update(idx int, k uint8) {
	cur := s.Register(idx)
	if k <= cur {
		return
	}
	old := s.nibble(idx)
	rel := int(k) - int(s.offset)
	if rel >= d4Exception {
		s.exceptions[idx] = k
		s.setNibble(idx, d4Exception)
	} else {
		s.setNibble(idx, uint8(rel))
		delete(s.exceptions, idx)
	}
	if old == 0 {
		s.belowCount--
		if s.belowCount == 0 {
			s.advanceOffset()
		}
	}
}

// advanceOffset raises the global offset to the minimum register value and
// rewrites every nibble — the O(m) step.
func (s *Dense4) advanceOffset() {
	m := s.NumRegisters()
	minVal := s.Register(0)
	for i := 1; i < m; i++ {
		if v := s.Register(i); v < minVal {
			minVal = v
		}
	}
	if minVal <= s.offset {
		// Cannot advance (some exception below offset+1 — impossible by
		// construction, but keep the counter consistent).
		s.recountBelow()
		return
	}
	newOff := minVal
	for i := 0; i < m; i++ {
		v := s.Register(i)
		rel := int(v) - int(newOff)
		if rel >= d4Exception {
			s.exceptions[i] = v
			s.setNibble(i, d4Exception)
		} else {
			s.setNibble(i, uint8(rel))
			delete(s.exceptions, i)
		}
	}
	s.offset = newOff
	s.recountBelow()
}

func (s *Dense4) recountBelow() {
	s.belowCount = 0
	for i := 0; i < s.NumRegisters(); i++ {
		if s.nibble(i) == 0 {
			s.belowCount++
		}
	}
}

// Merge folds other into s (register-wise maximum of absolute values).
func (s *Dense4) Merge(other *Dense4) error {
	if s.p != other.p {
		return fmt.Errorf("hll: cannot merge p=%d with p=%d", s.p, other.p)
	}
	for i := 0; i < s.NumRegisters(); i++ {
		if v := other.Register(i); v > 0 {
			s.update(i, v)
		}
	}
	return nil
}

func (s *Dense4) histogram() []int32 {
	histo := make([]int32, 66-s.p)
	for i := 0; i < s.NumRegisters(); i++ {
		histo[s.Register(i)]++
	}
	return histo
}

// Estimate returns the corrected original estimator.
func (s *Dense4) Estimate() float64 { return estimateRaw(s.histogram(), s.p) }

// EstimateML returns the Ertl-style maximum-likelihood estimate.
func (s *Dense4) EstimateML() float64 { return estimateML(s.histogram(), s.p) }

// SizeBytes returns the nibble array plus the exception entries.
func (s *Dense4) SizeBytes() int {
	return len(s.nibbles) + 5*len(s.exceptions) // 4-byte key + 1-byte value
}

// MemoryFootprint approximates total allocated bytes, including map
// overhead (~48 bytes per bucket-eight entries plus header).
func (s *Dense4) MemoryFootprint() int {
	mapOverhead := 48 + len(s.exceptions)*16
	return len(s.nibbles) + mapOverhead + 64
}

// MarshalBinary serializes offset, nibbles, and sorted exceptions.
func (s *Dense4) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 2+len(s.nibbles)+5*len(s.exceptions)+4)
	out = append(out, byte(s.p), s.offset)
	out = append(out, s.nibbles...)
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(len(s.exceptions)))
	out = append(out, buf[:]...)
	keys := make([]int, 0, len(s.exceptions))
	for k := range s.exceptions {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		binary.LittleEndian.PutUint32(buf[:], uint32(k))
		out = append(out, buf[:]...)
		out = append(out, s.exceptions[k])
	}
	return out, nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (s *Dense4) UnmarshalBinary(data []byte) error {
	if len(data) < 2 {
		return fmt.Errorf("hll: dense4 data too short")
	}
	p := int(data[0])
	if p < MinP || p > MaxP {
		return fmt.Errorf("hll: bad precision %d", p)
	}
	m := 1 << uint(p)
	need := 2 + m/2 + 4
	if len(data) < need {
		return fmt.Errorf("hll: dense4 data too short for p=%d", p)
	}
	s.p = p
	s.offset = data[1]
	s.nibbles = append([]uint8(nil), data[2:2+m/2]...)
	nExc := int(binary.LittleEndian.Uint32(data[2+m/2:]))
	pos := 2 + m/2 + 4
	if len(data) != pos+5*nExc {
		return fmt.Errorf("hll: dense4 exception section malformed")
	}
	s.exceptions = make(map[int]uint8, nExc)
	for i := 0; i < nExc; i++ {
		k := int(binary.LittleEndian.Uint32(data[pos:]))
		s.exceptions[k] = data[pos+4]
		pos += 5
	}
	s.recountBelow()
	return nil
}
