package hll

import (
	"math"
	"testing"
)

func TestHIPBasics(t *testing.T) {
	h, err := NewHIP(10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Estimate() != 0 || h.StateChangeProbability() != 1 {
		t.Fatal("fresh HIP sketch not pristine")
	}
	h.AddHash(12345)
	if got := h.Estimate(); got != 1 {
		t.Errorf("estimate after first insert = %g, want exactly 1", got)
	}
	if h.Precision() != 10 {
		t.Errorf("precision %d", h.Precision())
	}
	if _, err := NewHIP(1); err == nil {
		t.Error("accepted p=1")
	}
	if err := h.Merge(nil); err == nil {
		t.Error("HIP merge must be rejected")
	}
}

func TestHIPAccuracy(t *testing.T) {
	h, _ := NewHIP(10)
	r := rng(61)
	const n = 100000
	for i := 0; i < n; i++ {
		h.AddHash(r.Uint64())
	}
	if relErr := math.Abs(h.Estimate()-n) / n; relErr > 0.12 {
		t.Errorf("HIP estimate %.0f (rel err %.3f)", h.Estimate(), relErr)
	}
	// ML on the same registers must also work.
	if relErr := math.Abs(h.EstimateML()-n) / n; relErr > 0.15 {
		t.Errorf("ML estimate %.0f", h.EstimateML())
	}
}

func TestHIPIdempotent(t *testing.T) {
	h, _ := NewHIP(8)
	r := rng(62)
	hashes := make([]uint64, 1000)
	for i := range hashes {
		hashes[i] = r.Uint64()
		h.AddHash(hashes[i])
	}
	before := h.Estimate()
	for _, v := range hashes {
		h.AddHash(v)
	}
	if h.Estimate() != before {
		t.Error("duplicates changed the HIP estimate")
	}
}

// TestHIPBeatsRawOnAverage: HIP's theoretical error is ≈ 0.836/√m vs the
// raw estimator's 1.04/√m; verify the ordering over repeated runs.
func TestHIPBeatsRawOnAverage(t *testing.T) {
	const runs = 60
	const n = 20000
	var seHIP, seRaw float64
	for run := 0; run < runs; run++ {
		h, _ := NewHIP(8)
		r := rng(int64(run)*997 + 13)
		for i := 0; i < n; i++ {
			h.AddHash(r.Uint64())
		}
		eh := h.Estimate()/n - 1
		er := h.Sketch().Estimate()/n - 1
		seHIP += eh * eh
		seRaw += er * er
	}
	if seHIP >= seRaw {
		t.Errorf("HIP mean squared error %.6f not below raw %.6f", seHIP/runs, seRaw/runs)
	}
}
