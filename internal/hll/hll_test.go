package hll

import (
	"math"
	"math/rand"
	"testing"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestSplitHash(t *testing.T) {
	// Algorithm 1: index from the top p bits, update value
	// nlz(masked) - p + 1.
	idx, k := splitHash(0, 10)
	if idx != 0 {
		t.Errorf("idx = %d, want 0", idx)
	}
	if k != 65-10 {
		t.Errorf("k = %d, want %d (all-zero hash saturates)", k, 65-10)
	}
	idx, k = splitHash(^uint64(0), 10)
	if idx != 1023 {
		t.Errorf("idx = %d, want 1023", idx)
	}
	if k != 1 {
		t.Errorf("k = %d, want 1", k)
	}
	// A hash with the bit right below the index set: k = 1.
	_, k = splitHash(uint64(1)<<53, 10)
	if k != 1 {
		t.Errorf("k = %d, want 1", k)
	}
	// One level deeper: k = 2.
	_, k = splitHash(uint64(1)<<52, 10)
	if k != 2 {
		t.Errorf("k = %d, want 2", k)
	}
}

func TestDense6Basics(t *testing.T) {
	s, err := NewDense6(10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegisters() != 1024 || s.SizeBytes() != 768 {
		t.Errorf("m=%d size=%d, want 1024 and 768", s.NumRegisters(), s.SizeBytes())
	}
	// p=11 → 1536 bytes, matching Table 2's 6-bit HLL serialized size
	// (DataSketches reports 1577 with header overhead).
	s11, _ := NewDense6(11)
	if s11.SizeBytes() != 1536 {
		t.Errorf("p=11 size = %d, want 1536", s11.SizeBytes())
	}
	if _, err := NewDense6(1); err == nil {
		t.Error("accepted p=1")
	}
}

func TestEstimateAccuracyAllVariants(t *testing.T) {
	// All three layouts must agree with the true count within ~5σ
	// (σ = 1.04/√m ≈ 3.3 % at p=10).
	for _, n := range []int{100, 1000, 50000} {
		r6, _ := NewDense6(10)
		r8, _ := NewDense8(10)
		r4, _ := NewDense4(10)
		r := rng(int64(n))
		for i := 0; i < n; i++ {
			h := r.Uint64()
			r6.AddHash(h)
			r8.AddHash(h)
			r4.AddHash(h)
		}
		for name, est := range map[string]float64{
			"dense6":    r6.Estimate(),
			"dense8":    r8.Estimate(),
			"dense4":    r4.Estimate(),
			"dense6-ML": r6.EstimateML(),
			"dense8-ML": r8.EstimateML(),
			"dense4-ML": r4.EstimateML(),
		} {
			if relErr := math.Abs(est-float64(n)) / float64(n); relErr > 0.17 {
				t.Errorf("%s at n=%d: estimate %.1f (rel err %.3f)", name, n, est, relErr)
			}
		}
	}
}

func TestVariantsSeeSameRegisters(t *testing.T) {
	// Feeding identical hashes, the absolute register values of all three
	// layouts must agree everywhere.
	r6, _ := NewDense6(8)
	r8, _ := NewDense8(8)
	r4, _ := NewDense4(8)
	r := rng(7)
	for i := 0; i < 20000; i++ {
		h := r.Uint64()
		r6.AddHash(h)
		r8.AddHash(h)
		r4.AddHash(h)
	}
	for i := 0; i < r6.NumRegisters(); i++ {
		v6 := r6.Register(i)
		v8 := r8.Register(i)
		v4 := r4.Register(i)
		if v6 != v8 || v6 != v4 {
			t.Fatalf("register %d: dense6=%d dense8=%d dense4=%d", i, v6, v8, v4)
		}
	}
	// With n >> m the 4-bit variant must have advanced its offset.
	if r4.offset == 0 {
		t.Error("dense4 offset never advanced at n >> m")
	}
}

func TestDense4OffsetAdvanceKeepsValues(t *testing.T) {
	s, _ := NewDense4(4)
	ref, _ := NewDense8(4)
	r := rng(9)
	for i := 0; i < 100000; i++ {
		h := r.Uint64()
		s.AddHash(h)
		ref.AddHash(h)
		if i%9973 == 0 {
			for j := 0; j < s.NumRegisters(); j++ {
				if s.Register(j) != ref.Register(j) {
					t.Fatalf("after %d inserts register %d: dense4=%d ref=%d (offset=%d)",
						i+1, j, s.Register(j), ref.Register(j), s.offset)
				}
			}
		}
	}
}

func TestIdempotentAndCommutative(t *testing.T) {
	r := rng(11)
	hashes := make([]uint64, 500)
	for i := range hashes {
		hashes[i] = r.Uint64()
	}
	a, _ := NewDense6(8)
	for _, h := range hashes {
		a.AddHash(h)
	}
	b, _ := NewDense6(8)
	r.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })
	for _, h := range hashes {
		b.AddHash(h)
		b.AddHash(h) // duplicates
	}
	for i := 0; i < a.NumRegisters(); i++ {
		if a.Register(i) != b.Register(i) {
			t.Fatalf("register %d differs after shuffle+duplicates", i)
		}
	}
}

func TestMergeEqualsUnifiedStream(t *testing.T) {
	r := rng(13)
	a6, _ := NewDense6(8)
	b6, _ := NewDense6(8)
	u6, _ := NewDense6(8)
	a4, _ := NewDense4(8)
	b4, _ := NewDense4(8)
	u4, _ := NewDense4(8)
	for i := 0; i < 3000; i++ {
		h := r.Uint64()
		a6.AddHash(h)
		u6.AddHash(h)
		a4.AddHash(h)
		u4.AddHash(h)
	}
	for i := 0; i < 4000; i++ {
		h := r.Uint64()
		b6.AddHash(h)
		u6.AddHash(h)
		b4.AddHash(h)
		u4.AddHash(h)
	}
	if err := a6.Merge(b6); err != nil {
		t.Fatal(err)
	}
	if err := a4.Merge(b4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a6.NumRegisters(); i++ {
		if a6.Register(i) != u6.Register(i) {
			t.Fatalf("dense6 register %d: merged %d, unified %d", i, a6.Register(i), u6.Register(i))
		}
		if a4.Register(i) != u4.Register(i) {
			t.Fatalf("dense4 register %d: merged %d, unified %d", i, a4.Register(i), u4.Register(i))
		}
	}
	other, _ := NewDense6(9)
	if err := a6.Merge(other); err == nil {
		t.Error("merge accepted different p")
	}
}

func TestSerializationRoundTrips(t *testing.T) {
	r := rng(17)
	s6, _ := NewDense6(7)
	s8, _ := NewDense8(7)
	s4, _ := NewDense4(7)
	for i := 0; i < 5000; i++ {
		h := r.Uint64()
		s6.AddHash(h)
		s8.AddHash(h)
		s4.AddHash(h)
	}
	d6, _ := s6.MarshalBinary()
	var t6 Dense6
	if err := t6.UnmarshalBinary(d6); err != nil {
		t.Fatal(err)
	}
	d8, _ := s8.MarshalBinary()
	var t8 Dense8
	if err := t8.UnmarshalBinary(d8); err != nil {
		t.Fatal(err)
	}
	d4, _ := s4.MarshalBinary()
	var t4 Dense4
	if err := t4.UnmarshalBinary(d4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s6.NumRegisters(); i++ {
		if t6.Register(i) != s6.Register(i) || t8.Register(i) != s8.Register(i) || t4.Register(i) != s4.Register(i) {
			t.Fatalf("register %d lost in round trip", i)
		}
	}
	// Corrupt data must be rejected.
	if err := new(Dense6).UnmarshalBinary(nil); err == nil {
		t.Error("dense6 accepted empty data")
	}
	if err := new(Dense4).UnmarshalBinary([]byte{30, 0}); err == nil {
		t.Error("dense4 accepted bad precision")
	}
}

func TestLinearCountingSmallRange(t *testing.T) {
	// With n << m the raw estimator must hand over to linear counting and
	// be nearly exact.
	s, _ := NewDense6(12)
	r := rng(19)
	for i := 0; i < 10; i++ {
		s.AddHash(r.Uint64())
	}
	if got := s.Estimate(); math.Abs(got-10) > 1 {
		t.Errorf("small-range estimate %.2f, want ≈10", got)
	}
}

func TestMLMoreAccurateThanRawOnAverage(t *testing.T) {
	// Aggregate squared errors over repeated runs; Ertl's ML estimator
	// should not be worse than the corrected raw estimator.
	const runs = 40
	const n = 5000
	var seRaw, seML float64
	for run := 0; run < runs; run++ {
		s, _ := NewDense6(8)
		r := rng(int64(run)*31 + 5)
		for i := 0; i < n; i++ {
			s.AddHash(r.Uint64())
		}
		er := s.Estimate()/n - 1
		em := s.EstimateML()/n - 1
		seRaw += er * er
		seML += em * em
	}
	if seML > seRaw*1.15 {
		t.Errorf("ML mean squared error %.6f vs raw %.6f; ML should not be worse", seML/runs, seRaw/runs)
	}
}

func TestDense4SizeSmallerThanDense6(t *testing.T) {
	s4, _ := NewDense4(11)
	s6, _ := NewDense6(11)
	r := rng(23)
	for i := 0; i < 1000000/10; i++ {
		h := r.Uint64()
		s4.AddHash(h)
		s6.AddHash(h)
	}
	if s4.SizeBytes() >= s6.SizeBytes() {
		t.Errorf("dense4 size %d not below dense6 %d", s4.SizeBytes(), s6.SizeBytes())
	}
}
