package core

import (
	"math"
	"testing"
)

// TestRegisterPMFSumsToOne: the PMF over all reachable register values
// must total 1 for various n (validates Section 3.1 against Algorithm 2's
// state space, including the always-set phantom bit).
func TestRegisterPMFSumsToOne(t *testing.T) {
	for _, cfg := range []Config{
		{T: 0, D: 0, P: 4},
		{T: 0, D: 2, P: 4},
		{T: 1, D: 3, P: 4},
		{T: 2, D: 6, P: 2},
	} {
		for _, n := range []float64{1, 10, 1000, 1e6, 1e12} {
			total := cfg.RegisterPMF(0, n)
			kmax := int64(cfg.MaxUpdateValue())
			for u := int64(1); u <= kmax; u++ {
				nBits := int64(cfg.D)
				if u-1 < nBits {
					nBits = u - 1
				}
				base := uint64(u) << uint(cfg.D)
				if u <= int64(cfg.D) {
					base |= uint64(1) << uint(int64(cfg.D)-u)
				}
				for mask := uint64(0); mask < uint64(1)<<uint(nBits); mask++ {
					r := base | mask<<uint(int64(cfg.D)-nBits)
					total += cfg.RegisterPMF(r, n)
				}
			}
			if math.Abs(total-1) > 1e-9 {
				t.Errorf("cfg %+v n=%g: ΣPMF = %.12f, want 1", cfg, n, total)
			}
		}
	}
}

// TestRegisterPMFMatchesEmpirical compares the analytic PMF with observed
// register frequencies over many simulated sketches.
func TestRegisterPMFMatchesEmpirical(t *testing.T) {
	cfg := Config{T: 1, D: 2, P: 4}
	const n = 200
	const runs = 2000
	counts := map[uint64]int{}
	for run := 0; run < runs; run++ {
		s := MustNew(cfg)
		fillRandom(s, n, int64(run)*131+7)
		for i := 0; i < cfg.NumRegisters(); i++ {
			counts[s.Register(i)]++
		}
	}
	totalObs := float64(runs * cfg.NumRegisters())
	// Check all register values with expected probability > 1 %.
	checked := 0
	for r, c := range counts {
		pObs := float64(c) / totalObs
		pTheory := cfg.RegisterPMF(r, n)
		if pTheory < 0.01 {
			continue
		}
		checked++
		if math.Abs(pObs-pTheory)/pTheory > 0.1 {
			t.Errorf("register value %#x: observed %.4f, theory %.4f", r, pObs, pTheory)
		}
	}
	if checked < 5 {
		t.Errorf("only %d register values had non-negligible probability; test too weak", checked)
	}
	// Impossible states (phantom bit cleared) must never be observed and
	// must have zero probability.
	for r := range counts {
		if cfg.RegisterPMF(r, n) == 0 {
			t.Errorf("observed register value %#x has zero theoretical probability", r)
		}
	}
}

// TestRegisterEntropyProperties: entropy is positive once the sketch can
// be non-empty, bounded by the register width, and the dense encoding
// leaves compression headroom (the Section 6 observation).
func TestRegisterEntropyProperties(t *testing.T) {
	cfg := Config{T: 0, D: 2, P: 6} // ULL
	width := float64(cfg.RegisterWidth())
	for _, n := range []float64{100, 10000, 1e8} {
		h := cfg.RegisterEntropy(n)
		if h <= 0 || h >= width {
			t.Errorf("n=%g: entropy %.3f outside (0, %g)", n, h, width)
		}
	}
	// At n around m the entropy should be far below the 8 dense bits —
	// this is why ULL compresses well with standard algorithms.
	if h := cfg.RegisterEntropy(64); h > 6 {
		t.Errorf("entropy %.2f at n=m leaves too little headroom", h)
	}
}

func TestRegisterEntropyPanicsOnLargeD(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for d > 16")
		}
	}()
	(Config{T: 2, D: 20, P: 4}).RegisterEntropy(100)
}
