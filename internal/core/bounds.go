package core

import (
	"fmt"
	"math"

	"exaloglog/internal/mvp"
)

// Interval is a two-sided confidence interval around a distinct-count
// estimate.
type Interval struct {
	Estimate float64
	Lower    float64
	Upper    float64
	// Confidence is the nominal coverage probability, e.g. 0.95.
	Confidence float64
}

// EstimateWithBounds returns the sketch's best estimate together with a
// confidence interval at the given nominal coverage (0 < confidence < 1).
//
// The interval is derived from the theoretical relative standard error
// σ = sqrt(MVP/((6+t+d)·m)) (Section 5.1), using the asymptotic normality
// of the ML estimator (and of the martingale estimator, whose smaller MVP
// of equation (6) is used automatically when martingale tracking is
// enabled). Since the estimation error is relative, n̂ ≈ n·(1+ε), the
// bounds divide rather than subtract: [n̂/(1+zσ), n̂/(1-zσ)]. For very
// small estimates the error is far below σ (Figure 8), so the interval is
// conservative there.
func (s *Sketch) EstimateWithBounds(confidence float64) (Interval, error) {
	if !(confidence > 0 && confidence < 1) {
		return Interval{}, fmt.Errorf("exaloglog: confidence %v outside (0, 1)", confidence)
	}
	est := s.Estimate()
	sigma := s.RelativeStandardError()
	z := math.Sqrt2 * math.Erfinv(confidence)
	iv := Interval{Estimate: est, Confidence: confidence}
	iv.Lower = est / (1 + z*sigma)
	if z*sigma >= 1 {
		iv.Upper = math.Inf(1)
	} else {
		iv.Upper = est / (1 - z*sigma)
	}
	return iv, nil
}

// RelativeStandardError returns the theoretical asymptotic relative
// standard error of the sketch's estimator: sqrt(MVP/((6+t+d)·m)) with the
// MVP of equation (3) for ML estimation or equation (6) when martingale
// tracking is enabled.
func (s *Sketch) RelativeStandardError() float64 {
	return mvp.TheoreticalRMSE(s.cfg.T, s.cfg.D, s.cfg.P, s.martingale)
}
