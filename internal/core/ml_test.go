package core

import (
	"math"
	"testing"
)

// logLikelihood evaluates ln L of equation (15) directly — the oracle used
// to validate the Newton solver.
func logLikelihood(c Coefficients, m, n float64) float64 {
	ll := -n / m * c.Alpha
	for j, b := range c.Beta {
		if b > 0 {
			u := float64(c.Lo + j)
			ll += float64(b) * math.Log(-math.Expm1(-n/(m*math.Exp2(u))))
		}
	}
	return ll
}

func fillRandom(s *Sketch, n int, seed int64) {
	r := rng(seed)
	for i := 0; i < n; i++ {
		s.AddHash(r.Uint64())
	}
}

func TestEstimateEmpty(t *testing.T) {
	for _, cfg := range testConfigs {
		s := MustNew(cfg)
		if got := s.EstimateML(); got != 0 {
			t.Errorf("cfg %+v: empty estimate = %g, want 0", cfg, got)
		}
	}
}

func TestEstimateSmallExact(t *testing.T) {
	// For a handful of elements the ML estimate should be very close to
	// exact (the paper observes near-zero error for small n).
	for _, cfg := range []Config{{T: 2, D: 20, P: 8}, {T: 1, D: 9, P: 10}, {T: 0, D: 2, P: 10}} {
		for _, n := range []int{1, 2, 3, 5, 10} {
			s := MustNew(cfg)
			fillRandom(s, n, int64(n)*31+7)
			got := s.EstimateML()
			if math.Abs(got-float64(n)) > 0.25*float64(n)+1.0 {
				t.Errorf("cfg %+v: n=%d estimated as %.2f", cfg, n, got)
			}
		}
	}
}

// TestEstimateAccuracy checks that for a range of distinct counts the ML
// estimate stays within ~5 standard errors of the truth (per the
// theoretical RMSE sqrt(MVP/((q+d)m)) of Section 5.1).
func TestEstimateAccuracy(t *testing.T) {
	cases := []struct {
		cfg      Config
		relTol   float64 // ≈ 5x theoretical RMSE
		distinct []int
	}{
		{Config{T: 2, D: 20, P: 8}, 0.12, []int{100, 1000, 10000}},
		{Config{T: 2, D: 24, P: 8}, 0.12, []int{100, 1000, 10000}},
		{Config{T: 1, D: 9, P: 8}, 0.12, []int{500, 5000}},
		{Config{T: 0, D: 2, P: 10}, 0.12, []int{1000, 20000}},
		{Config{T: 0, D: 0, P: 10}, 0.14, []int{1000, 20000}},
	}
	for _, c := range cases {
		for _, n := range c.distinct {
			s := MustNew(c.cfg)
			fillRandom(s, n, int64(n)+42)
			got := s.EstimateML()
			if relErr := math.Abs(got-float64(n)) / float64(n); relErr > c.relTol {
				t.Errorf("cfg %+v n=%d: estimate %.1f (rel err %.3f > %.3f)", c.cfg, n, got, relErr, c.relTol)
			}
		}
	}
}

// TestNewtonSolverMaximizesLikelihood validates Algorithm 8 against the
// oracle: perturbing the solver's root by ±1 % must not increase ln L.
func TestNewtonSolverMaximizesLikelihood(t *testing.T) {
	for _, cfg := range testConfigs {
		for _, n := range []int{3, 17, 100, 1000} {
			s := MustNew(cfg)
			fillRandom(s, n, int64(n)*13+int64(cfg.P))
			c := s.mlCoefficients()
			m := float64(cfg.NumRegisters())
			nHat := SolveML(c, m)
			if nHat <= 0 {
				t.Fatalf("cfg %+v n=%d: nonpositive estimate %g", cfg, n, nHat)
			}
			ll := logLikelihood(c, m, nHat)
			for _, f := range []float64{0.99, 1.01, 0.9, 1.1} {
				if other := logLikelihood(c, m, nHat*f); other > ll+1e-9 {
					t.Errorf("cfg %+v n=%d: lnL(%.4g·%.2f) = %.12f > lnL at root %.12f",
						cfg, n, nHat, f, other, ll)
				}
			}
		}
	}
}

// TestMLCoefficientsAlphaBounds: α must lie in (0, m] for any non-saturated
// state, and equal exactly m for an empty sketch (each register
// contributes ω(0) = 1, and the -(n/m)·α term of (15) then reproduces
// Σ_i ln ρ_reg(0|n) = -n).
func TestMLCoefficientsAlphaBounds(t *testing.T) {
	for _, cfg := range testConfigs {
		m := float64(cfg.NumRegisters())
		s := MustNew(cfg)
		c := s.mlCoefficients()
		if c.Alpha != m {
			t.Errorf("cfg %+v: empty-sketch α = %.17g, want exactly m = %g", cfg, c.Alpha, m)
		}
		fillRandom(s, 5000, 99)
		c = s.mlCoefficients()
		if c.Alpha <= 0 || c.Alpha > m {
			t.Errorf("cfg %+v: α = %g out of (0, %g]", cfg, c.Alpha, m)
		}
	}
}

// TestMLCoefficientsAlphaEqualsMu: the α' accumulator of Algorithm 3 and
// the martingale's scaled state-change probability μ·2^64 are the same sum
// of per-register hInt values, so α = μ·m holds exactly.
func TestMLCoefficientsAlphaEqualsMu(t *testing.T) {
	cfg := Config{T: 2, D: 16, P: 6}
	s := MustNew(cfg)
	if err := s.EnableMartingale(); err != nil {
		t.Fatal(err)
	}
	fillRandom(s, 3000, 5)
	c := s.mlCoefficients()
	mu := s.StateChangeProbability()
	m := float64(cfg.NumRegisters())
	if math.Abs(c.Alpha-mu*m) > 1e-9 {
		t.Errorf("α = %.17g but μ·m = %.17g; they must coincide", c.Alpha, mu*m)
	}
}

func TestBiasCorrectionShrinksEstimate(t *testing.T) {
	s := MustNew(Config{T: 2, D: 20, P: 4})
	fillRandom(s, 1000, 11)
	raw := s.EstimateMLUncorrected()
	corrected := s.EstimateML()
	if corrected >= raw {
		t.Errorf("bias correction did not shrink the estimate: raw %.2f, corrected %.2f", raw, corrected)
	}
	// The correction factor is (1+c/m)^-1 with c ≈ 0.8-2; for p=4 the
	// shrinkage should be on the order of a few percent but below 20 %.
	ratio := corrected / raw
	if ratio < 0.8 || ratio >= 1 {
		t.Errorf("correction ratio %.4f out of plausible range", ratio)
	}
}

func TestEstimateSaturated(t *testing.T) {
	// A fully saturated sketch (all registers at their maximum content)
	// has α = 0 and an infinite ML estimate.
	cfg := Config{T: 0, D: 2, P: 2}
	s := MustNew(cfg)
	maxReg := cfg.MaxUpdateValue()<<uint(cfg.D) | (uint64(1)<<uint(cfg.D) - 1)
	for i := 0; i < cfg.NumRegisters(); i++ {
		s.setRegister(i, maxReg)
	}
	if got := s.EstimateMLUncorrected(); !math.IsInf(got, 1) {
		t.Errorf("saturated sketch estimate = %g, want +Inf", got)
	}
}

func TestEstimatePrefersMartingale(t *testing.T) {
	s := MustNew(Config{T: 2, D: 16, P: 8})
	if err := s.EnableMartingale(); err != nil {
		t.Fatal(err)
	}
	fillRandom(s, 500, 3)
	if s.Estimate() != s.EstimateMartingale() {
		t.Error("Estimate() should return the martingale estimate when enabled")
	}
	other := MustNew(Config{T: 2, D: 16, P: 8})
	if err := s.Merge(other); err != nil {
		t.Fatal(err)
	}
	if s.MartingaleEnabled() {
		t.Error("merge must disable martingale estimation")
	}
	if math.IsNaN(s.Estimate()) {
		t.Error("Estimate() after merge should fall back to ML")
	}
}

// TestNewtonIterationCount asserts Appendix A's convergence claim: the
// Newton iteration never needs more than 10 steps, and on average takes
// 5-7, across configurations and distinct counts.
func TestNewtonIterationCount(t *testing.T) {
	totalIters, solves := 0, 0
	for _, cfg := range testConfigs {
		for _, n := range []int{1, 10, 100, 1000, 10000} {
			s := MustNew(cfg)
			fillRandom(s, n, int64(n)*7+int64(cfg.D))
			_, iters := SolveMLCounted(s.mlCoefficients(), float64(cfg.NumRegisters()))
			if iters > 10 {
				t.Errorf("cfg %+v n=%d: %d Newton iterations, paper bound is 10", cfg, n, iters)
			}
			totalIters += iters
			solves++
		}
	}
	if avg := float64(totalIters) / float64(solves); avg > 8 {
		t.Errorf("average Newton iterations %.1f, expected 5-7", avg)
	}
}

func TestSolveMLDegenerateInputs(t *testing.T) {
	// All-zero β → 0.
	c := Coefficients{Alpha: 1, Beta: make([]int32, 10), Lo: 3}
	if got := SolveML(c, 16); got != 0 {
		t.Errorf("all-zero β: got %g, want 0", got)
	}
	// Single β term: closed-form root x = β/(α·2^u).
	c = Coefficients{Alpha: 0.5, Beta: []int32{0, 4, 0}, Lo: 3}
	m := 8.0
	got := SolveML(c, m)
	want := m * math.Exp2(4) * math.Log1p(4.0/(0.5*math.Exp2(4)))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("single-term root: got %.12f, want %.12f", got, want)
	}
}
