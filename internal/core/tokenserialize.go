package core

import (
	"encoding/binary"
	"fmt"
)

// Token serialization: sparse-mode state must travel between nodes just
// like dense sketches (a collector may still be below the break-even
// point when it reports). Tokens are serialized in ascending order,
// bit-packed at exactly v+6 bits each — the paper's sparse-mode space
// accounting — behind a small header:
//
//	bytes 0-1  magic "ET"
//	byte  2    format version (1)
//	byte  3    v
//	uvarint    token count
//	packed     count·(v+6) bits, LSB-first, ascending token order
const (
	tokenMagic0, tokenMagic1 = 'E', 'T'
	tokenFormatVersion       = 1
)

// MarshalBinary serializes the token set (deterministically: tokens are
// sorted). The payload is Len()·(v+6) bits plus a few header bytes.
func (ts *TokenSet) MarshalBinary() ([]byte, error) {
	return marshalTokens(ts.v, ts.Tokens()), nil
}

// UnmarshalBinary restores a token set serialized by MarshalBinary (of
// either TokenSet or Token32List), replacing the receiver's contents.
func (ts *TokenSet) UnmarshalBinary(data []byte) error {
	v, tokens, err := unmarshalTokens(data)
	if err != nil {
		return err
	}
	ts.v = v
	ts.tokens = make(map[uint64]struct{}, len(tokens))
	for _, w := range tokens {
		ts.tokens[w] = struct{}{}
	}
	return nil
}

// TokenSetFromBinary constructs a token set from serialized data.
func TokenSetFromBinary(data []byte) (*TokenSet, error) {
	ts := &TokenSet{}
	if err := ts.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return ts, nil
}

// MarshalBinary serializes the token list in the same format as
// TokenSet.MarshalBinary with v = 26.
func (tl *Token32List) MarshalBinary() ([]byte, error) {
	tl.Len()
	tokens := make([]uint64, len(tl.buf))
	for i, w := range tl.buf {
		tokens[i] = uint64(w)
	}
	return marshalTokens(Token32V, tokens), nil
}

// UnmarshalBinary restores a token list. The serialized v must be 26.
func (tl *Token32List) UnmarshalBinary(data []byte) error {
	v, tokens, err := unmarshalTokens(data)
	if err != nil {
		return err
	}
	if v != Token32V {
		return fmt.Errorf("exaloglog: token data has v=%d, Token32List needs v=%d", v, Token32V)
	}
	tl.buf = make([]uint32, len(tokens))
	for i, w := range tokens {
		tl.buf[i] = uint32(w)
	}
	tl.sorted = len(tl.buf)
	return nil
}

// marshalTokens packs sorted tokens at v+6 bits each.
func marshalTokens(v int, tokens []uint64) []byte {
	width := uint(v + 6)
	header := make([]byte, 4, 4+binary.MaxVarintLen64+(len(tokens)*int(width)+7)/8)
	header[0], header[1] = tokenMagic0, tokenMagic1
	header[2] = tokenFormatVersion
	header[3] = byte(v)
	out := binary.AppendUvarint(header, uint64(len(tokens)))
	var acc byte
	var nbits uint // bits currently buffered in acc, < 8
	for _, w := range tokens {
		rem := width
		for rem > 0 {
			take := 8 - nbits
			if take > rem {
				take = rem
			}
			acc |= byte(w&(1<<take-1)) << nbits
			w >>= take
			rem -= take
			nbits += take
			if nbits == 8 {
				out = append(out, acc)
				acc, nbits = 0, 0
			}
		}
	}
	if nbits > 0 {
		out = append(out, acc)
	}
	return out
}

// unmarshalTokens reverses marshalTokens, validating sizes and ordering.
func unmarshalTokens(data []byte) (v int, tokens []uint64, err error) {
	if len(data) < 4 {
		return 0, nil, fmt.Errorf("exaloglog: token data too short (%d bytes)", len(data))
	}
	if data[0] != tokenMagic0 || data[1] != tokenMagic1 {
		return 0, nil, fmt.Errorf("exaloglog: bad token magic %q", data[:2])
	}
	if data[2] != tokenFormatVersion {
		return 0, nil, fmt.Errorf("exaloglog: unsupported token format version %d", data[2])
	}
	v = int(data[3])
	if v < TokenMinV || v > TokenMaxV {
		return 0, nil, fmt.Errorf("exaloglog: token parameter v=%d out of range [%d, %d]", v, TokenMinV, TokenMaxV)
	}
	count, n := binary.Uvarint(data[4:])
	if n <= 0 {
		return 0, nil, fmt.Errorf("exaloglog: bad token count varint")
	}
	body := data[4+n:]
	width := uint(v + 6)
	need := (count*uint64(width) + 7) / 8
	if uint64(len(body)) != need {
		return 0, nil, fmt.Errorf("exaloglog: token payload is %d bytes, want %d for %d tokens", len(body), need, count)
	}
	const maxTokens = 1 << 32
	if count > maxTokens {
		return 0, nil, fmt.Errorf("exaloglog: token count %d exceeds limit", count)
	}
	tokens = make([]uint64, 0, count)
	var acc byte
	var nbits uint // bits still unread in acc
	pos := 0
	var prev uint64
	for i := uint64(0); i < count; i++ {
		var w uint64
		var got uint
		for got < width {
			if nbits == 0 {
				acc = body[pos]
				pos++
				nbits = 8
			}
			take := nbits
			if take > width-got {
				take = width - got
			}
			w |= uint64(acc&(1<<take-1)) << got
			acc >>= take
			nbits -= take
			got += take
		}
		if i > 0 && w <= prev {
			return 0, nil, fmt.Errorf("exaloglog: tokens not strictly ascending at index %d", i)
		}
		prev = w
		tokens = append(tokens, w)
	}
	return v, tokens, nil
}
