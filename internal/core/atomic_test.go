package core

import (
	"math"
	"sync"
	"testing"
)

func TestAtomicRequires32BitRegisters(t *testing.T) {
	if _, err := NewAtomic(Config{T: 2, D: 20, P: 8}); err == nil {
		t.Error("accepted 28-bit registers")
	}
	if _, err := NewAtomic(Config{T: 2, D: 24, P: 8}); err != nil {
		t.Errorf("rejected ELL(2,24): %v", err)
	}
	// Any width-32 combination works, e.g. t=0, d=26.
	if _, err := NewAtomic(Config{T: 0, D: 26, P: 8}); err != nil {
		t.Errorf("rejected ELL(0,26): %v", err)
	}
}

// TestAtomicMatchesSequential: concurrent insertion of a fixed element set
// must land in exactly the state sequential insertion produces, because
// register updates are monotone joins applied via CAS.
func TestAtomicMatchesSequential(t *testing.T) {
	cfg := Config{T: 2, D: 24, P: 8}
	r := rng(101)
	hashes := make([]uint64, 100000)
	for i := range hashes {
		hashes[i] = r.Uint64()
	}

	seq := MustNew(cfg)
	for _, h := range hashes {
		seq.AddHash(h)
	}

	atom, err := NewAtomic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Overlapping stripes so the same registers race.
			for i := w; i < len(hashes); i += workers {
				atom.AddHash(hashes[i])
			}
			for i := 0; i < len(hashes); i += 17 {
				atom.AddHash(hashes[i]) // duplicates from every worker
			}
		}(w)
	}
	wg.Wait()

	snap := atom.Snapshot()
	if string(snap.RegisterBytes()) != string(seq.RegisterBytes()) {
		t.Fatal("concurrent state differs from sequential state")
	}
	if est := atom.Estimate(); math.Abs(est-float64(len(hashes)))/float64(len(hashes)) > 0.15 {
		t.Errorf("estimate %.0f for n=%d", est, len(hashes))
	}
}

func TestAtomicAddVariants(t *testing.T) {
	cfg := Config{T: 2, D: 24, P: 6}
	atom, err := NewAtomic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := MustNew(cfg)
	atom.Add([]byte("x"))
	atom.AddString("y")
	plain.Add([]byte("x"))
	plain.AddString("y")
	if string(atom.Snapshot().RegisterBytes()) != string(plain.RegisterBytes()) {
		t.Error("Add/AddString disagree with the plain sketch")
	}
	if atom.SizeBytes() != 4*cfg.NumRegisters() {
		t.Errorf("SizeBytes %d", atom.SizeBytes())
	}
	if atom.Config() != cfg {
		t.Errorf("Config %+v", atom.Config())
	}
}

// TestAtomicSnapshotMergeable: snapshots integrate with the rest of the
// API (merge with a plain sketch of the same configuration).
func TestAtomicSnapshotMergeable(t *testing.T) {
	cfg := Config{T: 2, D: 24, P: 6}
	atom, _ := NewAtomic(cfg)
	plain := MustNew(cfg)
	union := MustNew(cfg)
	r := rng(103)
	for i := 0; i < 2000; i++ {
		h := r.Uint64()
		atom.AddHash(h)
		union.AddHash(h)
	}
	for i := 0; i < 3000; i++ {
		h := r.Uint64()
		plain.AddHash(h)
		union.AddHash(h)
	}
	snap := atom.Snapshot()
	if err := snap.Merge(plain); err != nil {
		t.Fatal(err)
	}
	if string(snap.RegisterBytes()) != string(union.RegisterBytes()) {
		t.Error("snapshot merge differs from unified stream")
	}
}
