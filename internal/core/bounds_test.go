package core

import (
	"math"
	"testing"

	"exaloglog/internal/hashing"
)

func TestEstimateWithBoundsValidation(t *testing.T) {
	s := MustNew(RecommendedML(6))
	for _, bad := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := s.EstimateWithBounds(bad); err == nil {
			t.Errorf("confidence %v should be rejected", bad)
		}
	}
	if _, err := s.EstimateWithBounds(0.95); err != nil {
		t.Errorf("confidence 0.95 rejected: %v", err)
	}
}

func TestBoundsOrdering(t *testing.T) {
	s := MustNew(RecommendedML(8))
	state := uint64(17)
	for i := 0; i < 10000; i++ {
		s.AddHash(hashing.SplitMix64(&state))
	}
	iv, err := s.EstimateWithBounds(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !(iv.Lower < iv.Estimate && iv.Estimate < iv.Upper) {
		t.Fatalf("interval not ordered: %+v", iv)
	}
	// Higher confidence must widen the interval.
	iv90, _ := s.EstimateWithBounds(0.90)
	if iv90.Upper-iv90.Lower >= iv.Upper-iv.Lower {
		t.Fatalf("99%% interval (%g) not wider than 90%% (%g)",
			iv.Upper-iv.Lower, iv90.Upper-iv90.Lower)
	}
}

func TestBoundsInfiniteUpper(t *testing.T) {
	// At p=2 with an extreme confidence, z·σ can exceed 1; the upper bound
	// must then degrade gracefully to +Inf rather than turn negative.
	s := MustNew(Config{T: 2, D: 20, P: 2})
	state := uint64(3)
	for i := 0; i < 100; i++ {
		s.AddHash(hashing.SplitMix64(&state))
	}
	iv, err := s.EstimateWithBounds(0.999999)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Upper < iv.Estimate {
		t.Fatalf("upper bound %g below estimate %g", iv.Upper, iv.Estimate)
	}
}

// TestBoundsCoverage empirically checks the nominal coverage of the 95 %
// interval at an intermediate distinct count, where the estimator error is
// in its asymptotic regime (Figure 8 shows perfect agreement with theory
// there). With 400 runs and true coverage >= 0.95 the failure probability
// of the 0.88 acceptance threshold is negligible.
func TestBoundsCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage simulation is slow")
	}
	const (
		runs = 400
		n    = 20000
		conf = 0.95
	)
	covered := 0
	state := uint64(20240615)
	for r := 0; r < runs; r++ {
		s := MustNew(RecommendedML(8))
		for i := 0; i < n; i++ {
			s.AddHash(hashing.SplitMix64(&state))
		}
		iv, err := s.EstimateWithBounds(conf)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Lower <= n && n <= iv.Upper {
			covered++
		}
	}
	if frac := float64(covered) / runs; frac < 0.88 {
		t.Fatalf("95%% interval covered the truth in only %.1f%% of %d runs", 100*frac, runs)
	}
}

func TestRelativeStandardError(t *testing.T) {
	// ELL(2,20,8): sqrt(3.67/(28·256)) ≈ 2.26 %.
	s := MustNew(RecommendedML(8))
	got := s.RelativeStandardError()
	if got < 0.020 || got > 0.026 {
		t.Fatalf("RelativeStandardError = %g, want ≈ 0.0226", got)
	}
	// Martingale mode must report the smaller equation-(6) error.
	m := MustNew(RecommendedMartingale(8))
	if err := m.EnableMartingale(); err != nil {
		t.Fatal(err)
	}
	if m.RelativeStandardError() >= got {
		t.Fatalf("martingale stderr %g not below ML stderr %g", m.RelativeStandardError(), got)
	}
}
