package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testConfigs covers the paper's recommended configurations plus the
// special cases HLL/EHLL/ULL and some odd widths.
var testConfigs = []Config{
	{T: 0, D: 0, P: 4},  // HLL
	{T: 0, D: 1, P: 4},  // EHLL
	{T: 0, D: 2, P: 6},  // ULL
	{T: 1, D: 9, P: 5},  // ELL(1,9), 16-bit registers
	{T: 2, D: 16, P: 6}, // ELL(2,16), 24-bit registers
	{T: 2, D: 20, P: 4}, // ELL(2,20), 28-bit registers
	{T: 2, D: 24, P: 6}, // ELL(2,24), 32-bit registers
	{T: 2, D: 6, P: 2},  // Figure 3's example, 14-bit registers
	{T: 3, D: 5, P: 8},  // larger t
}

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestConfigValidate(t *testing.T) {
	for _, cfg := range testConfigs {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %+v should be valid: %v", cfg, err)
		}
	}
	invalid := []Config{
		{T: -1, D: 0, P: 4},
		{T: 7, D: 0, P: 4},
		{T: 0, D: -1, P: 4},
		{T: 0, D: 52, P: 4}, // width 58 > 57
		{T: 0, D: 0, P: 1},
		{T: 0, D: 0, P: 27},
	}
	for _, cfg := range invalid {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
}

func TestConfigDerivedValues(t *testing.T) {
	// Figure 3's example: p=2, t=2, d=6 → 4 registers of 14 bits.
	cfg := Config{T: 2, D: 6, P: 2}
	if got := cfg.NumRegisters(); got != 4 {
		t.Errorf("NumRegisters = %d, want 4", got)
	}
	if got := cfg.RegisterWidth(); got != 14 {
		t.Errorf("RegisterWidth = %d, want 14", got)
	}
	// Max update value (65-p-t)·2^t = 61·4 = 244.
	if got := cfg.MaxUpdateValue(); got != 244 {
		t.Errorf("MaxUpdateValue = %d, want 244", got)
	}
	// Table 2 sizes: ELL(2,20,p=8) = 896 bytes, ELL(2,24,p=8) = 1024.
	if got := (Config{T: 2, D: 20, P: 8}).SizeBytes(); got != 896 {
		t.Errorf("ELL(2,20,8) SizeBytes = %d, want 896", got)
	}
	if got := (Config{T: 2, D: 24, P: 8}).SizeBytes(); got != 1024 {
		t.Errorf("ELL(2,24,8) SizeBytes = %d, want 1024", got)
	}
}

func TestPhi(t *testing.T) {
	// φ(k) = min(t+1+⌊(k-1)/2^t⌋, 64-p), equation (11).
	cfg := Config{T: 2, D: 20, P: 8}
	cases := []struct {
		k    int64
		want int
	}{
		{0, 2}, // φ(0) = t (floor of -1/4 is -1)
		{1, 3}, // t+1
		{4, 3}, // still first chunk
		{5, 4}, // second chunk
		{8, 4},
		{9, 5},
		{220, 56}, // t+1+54 = 57 > 56 → capped at 64-p = 56
		{244, 56}, // max update value, capped
	}
	for _, c := range cases {
		if got := cfg.phi(c.k); got != c.want {
			t.Errorf("phi(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

// TestOmegaLemmaB1 verifies Lemma B.1: ω(u) = Σ_{k=u+1}^{kmax} ρ_update(k)
// computed by the closed form matches the direct sum, for every u.
func TestOmegaLemmaB1(t *testing.T) {
	for _, cfg := range []Config{{T: 0, D: 2, P: 10}, {T: 1, D: 9, P: 6}, {T: 2, D: 20, P: 4}, {T: 3, D: 5, P: 12}} {
		kmax := int64(cfg.MaxUpdateValue())
		// Direct suffix sums of ρ_update(k) = 2^-φ(k), accumulated as
		// exact multiples of 2^-(64-p) in a uint64 (top value is 2^62 max).
		suffix := uint64(0)
		scale := uint(64 - cfg.P)
		for u := kmax; u >= 0; u-- {
			if u < kmax {
				suffix += uint64(1) << (scale - uint(cfg.phi(u+1)))
			}
			closed := uint64(cfg.omegaNumerator(u)) << (scale - uint(cfg.phi(u)))
			if closed != suffix {
				t.Fatalf("cfg %+v: ω(%d): closed form %d, direct sum %d", cfg, u, closed, suffix)
			}
		}
		// ω(0) must be exactly 1 (total probability).
		if got := uint64(cfg.omegaNumerator(0)) << (scale - uint(cfg.phi(0))); got != uint64(1)<<scale {
			t.Errorf("cfg %+v: ω(0) scaled = %d, want 2^%d", cfg, got, scale)
		}
	}
}

func TestUpdateValueRange(t *testing.T) {
	for _, cfg := range testConfigs {
		// Extremes: a hash whose only set bits are the low t bits yields
		// the max update value (saturated NLZ, maximal low-bit part);
		// all-ones gives k = 2^t (nlz 0, t bits all 1).
		if got := cfg.updateValue(uint64(1)<<uint(cfg.T) - 1); got != cfg.MaxUpdateValue() {
			t.Errorf("cfg %+v: updateValue(2^t-1) = %d, want %d", cfg, got, cfg.MaxUpdateValue())
		}
		if got, want := cfg.updateValue(0), uint64(64-cfg.P-cfg.T)<<uint(cfg.T)+1; got != want {
			t.Errorf("cfg %+v: updateValue(0) = %d, want %d", cfg, got, want)
		}
		if got := cfg.updateValue(^uint64(0)); got != uint64(1)<<uint(cfg.T) {
			t.Errorf("cfg %+v: updateValue(all ones) = %d, want %d", cfg, got, 1<<uint(cfg.T))
		}
		r := rng(1)
		for n := 0; n < 2000; n++ {
			h := r.Uint64()
			k := cfg.updateValue(h)
			if k < 1 || k > cfg.MaxUpdateValue() {
				t.Fatalf("cfg %+v: update value %d out of [1, %d]", cfg, k, cfg.MaxUpdateValue())
			}
			// The register max field must be able to hold k: k < 2^(6+t).
			if k >= uint64(1)<<uint(6+cfg.T) {
				t.Fatalf("cfg %+v: update value %d does not fit in %d bits", cfg, k, 6+cfg.T)
			}
		}
	}
}

func TestAddIdempotent(t *testing.T) {
	for _, cfg := range testConfigs {
		s := MustNew(cfg)
		r := rng(2)
		hashes := make([]uint64, 300)
		for i := range hashes {
			hashes[i] = r.Uint64()
		}
		for _, h := range hashes {
			s.AddHash(h)
		}
		snapshot := s.RegisterBytes()
		// Re-inserting every element (several times, shuffled) must not
		// change the state.
		for round := 0; round < 3; round++ {
			r.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })
			for _, h := range hashes {
				s.AddHash(h)
			}
		}
		if string(snapshot) != string(s.RegisterBytes()) {
			t.Errorf("cfg %+v: duplicate insertions changed the state", cfg)
		}
	}
}

func TestAddCommutative(t *testing.T) {
	for _, cfg := range testConfigs {
		r := rng(3)
		hashes := make([]uint64, 500)
		for i := range hashes {
			hashes[i] = r.Uint64()
		}
		a := MustNew(cfg)
		for _, h := range hashes {
			a.AddHash(h)
		}
		b := MustNew(cfg)
		r.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })
		for _, h := range hashes {
			b.AddHash(h)
		}
		if string(a.RegisterBytes()) != string(b.RegisterBytes()) {
			t.Errorf("cfg %+v: insertion order changed the state", cfg)
		}
	}
}

// TestMergeEqualsUnifiedStream reproduces the paper's own merge test
// (Section 5): for many pairs of random sketches, merging must give
// exactly the state obtained by inserting the unified element stream into
// one sketch.
func TestMergeEqualsUnifiedStream(t *testing.T) {
	for _, cfg := range testConfigs {
		r := rng(4)
		for trial := 0; trial < 20; trial++ {
			na, nb := r.Intn(400), r.Intn(400)
			a, b, u := MustNew(cfg), MustNew(cfg), MustNew(cfg)
			for i := 0; i < na; i++ {
				h := r.Uint64()
				a.AddHash(h)
				u.AddHash(h)
			}
			for i := 0; i < nb; i++ {
				h := r.Uint64()
				b.AddHash(h)
				u.AddHash(h)
			}
			if err := a.Merge(b); err != nil {
				t.Fatal(err)
			}
			if string(a.RegisterBytes()) != string(u.RegisterBytes()) {
				t.Fatalf("cfg %+v trial %d: merged state differs from unified-stream state", cfg, trial)
			}
		}
	}
}

func TestMergeCommutativeAssociative(t *testing.T) {
	cfg := Config{T: 2, D: 20, P: 4}
	r := rng(5)
	mk := func(n int) *Sketch {
		s := MustNew(cfg)
		for i := 0; i < n; i++ {
			s.AddHash(r.Uint64())
		}
		return s
	}
	a, b, c := mk(100), mk(200), mk(50)

	ab := a.Clone()
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	ba := b.Clone()
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}
	if string(ab.RegisterBytes()) != string(ba.RegisterBytes()) {
		t.Error("merge not commutative")
	}

	abc1 := ab.Clone()
	if err := abc1.Merge(c); err != nil {
		t.Fatal(err)
	}
	bc := b.Clone()
	if err := bc.Merge(c); err != nil {
		t.Fatal(err)
	}
	abc2 := a.Clone()
	if err := abc2.Merge(bc); err != nil {
		t.Fatal(err)
	}
	if string(abc1.RegisterBytes()) != string(abc2.RegisterBytes()) {
		t.Error("merge not associative")
	}
}

func TestMergeRejectsMismatchedConfig(t *testing.T) {
	a := MustNew(Config{T: 2, D: 20, P: 4})
	b := MustNew(Config{T: 2, D: 20, P: 5})
	if err := a.Merge(b); err == nil {
		t.Error("merge accepted different p")
	}
	c := MustNew(Config{T: 1, D: 20, P: 4})
	if err := a.Merge(c); err == nil {
		t.Error("merge accepted different t")
	}
}

func TestMergeIdempotent(t *testing.T) {
	// Merging a sketch with itself must not change it.
	for _, cfg := range testConfigs {
		s := MustNew(cfg)
		r := rng(6)
		for i := 0; i < 300; i++ {
			s.AddHash(r.Uint64())
		}
		before := s.RegisterBytes()
		if err := s.Merge(s.Clone()); err != nil {
			t.Fatal(err)
		}
		if string(before) != string(s.RegisterBytes()) {
			t.Errorf("cfg %+v: self-merge changed the state", cfg)
		}
	}
}

func TestMergeRegisterProperties(t *testing.T) {
	// Property check with random register states built through real
	// update sequences: merge of register values is commutative,
	// associative, idempotent, and monotone (result >= both inputs in the
	// register partial order of "max update value then indicators").
	d := 6
	build := func(seed int64, n int) uint64 {
		r := rng(seed)
		reg := uint64(0)
		for i := 0; i < n; i++ {
			k := uint64(r.Intn(40) + 1)
			reg = updateRegister(reg, k, d)
		}
		return reg
	}
	f := func(sa, sb int64) bool {
		a := build(sa, int(sa%7)+1)
		b := build(sb, int(sb%11)+1)
		ab := MergeRegister(a, b, d)
		ba := MergeRegister(b, a, d)
		if ab != ba {
			return false
		}
		if MergeRegister(a, a, d) != a {
			return false
		}
		// Merged max is the max of the individual maxima.
		if ab>>uint(d) != max64(a>>uint(d), b>>uint(d)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestCloneAndReset(t *testing.T) {
	s := MustNew(Config{T: 2, D: 20, P: 4})
	r := rng(8)
	for i := 0; i < 100; i++ {
		s.AddHash(r.Uint64())
	}
	c := s.Clone()
	if string(c.RegisterBytes()) != string(s.RegisterBytes()) {
		t.Fatal("clone state differs")
	}
	c.AddHash(r.Uint64())
	s.Reset()
	if !s.IsEmpty() {
		t.Error("Reset did not empty the sketch")
	}
	if c.IsEmpty() {
		t.Error("clone was affected by Reset")
	}
}

func TestAddConvenienceMethods(t *testing.T) {
	s1 := MustNew(Config{T: 2, D: 20, P: 6})
	s2 := MustNew(Config{T: 2, D: 20, P: 6})
	s1.Add([]byte("hello"))
	s2.AddString("hello")
	if string(s1.RegisterBytes()) != string(s2.RegisterBytes()) {
		t.Error("Add([]byte) and AddString disagree")
	}
	s3 := MustNew(Config{T: 2, D: 20, P: 6})
	s3.AddUint64(12345)
	if s3.IsEmpty() {
		t.Error("AddUint64 did not modify the sketch")
	}
}

// TestFigure3Example replays the two insertions of Figure 3 (p=2, t=2,
// d=6) and checks the register fields are structurally consistent.
func TestFigure3Example(t *testing.T) {
	cfg := Config{T: 2, D: 6, P: 2}
	s := MustNew(cfg)

	// First insertion: a hash with nlz(a)=3 in the first 60 bits,
	// register index 1, low t bits 10₂ = 2 → k = 3·4+2+1 = 15.
	// Construct: h = 0001...(56 bits)...[idx=01][t bits=10].
	h1 := uint64(0x1)<<60 | uint64(1)<<2 | 2
	s.AddHash(h1)
	if got := s.Register(1) >> 6; got != 15 {
		t.Fatalf("after first insert: u = %d, want 15", got)
	}

	// Second insertion into the same register with a smaller value
	// k = 12 (nlz 2, low bits 11₂ = 3): k = 2·4+3+1 = 12, Δ = -3 →
	// indicator bit d+Δ = 3 is set.
	h2 := uint64(1)<<61 | uint64(1)<<2 | 3
	if got := cfg.updateValue(h2); got != 12 {
		t.Fatalf("constructed hash has update value %d, want 12", got)
	}
	if got := cfg.registerIndex(h2); got != 1 {
		t.Fatalf("constructed hash has register index %d, want 1", got)
	}
	s.AddHash(h2)
	reg := s.Register(1)
	if reg>>6 != 15 {
		t.Errorf("max update value changed: %d", reg>>6)
	}
	if reg&(1<<3) == 0 {
		t.Errorf("indicator bit for k=12 (position 3) not set; register = %b", reg)
	}
}

func TestMemoryFootprintOrdering(t *testing.T) {
	small := MustNew(Config{T: 2, D: 20, P: 4})
	large := MustNew(Config{T: 2, D: 20, P: 10})
	if small.MemoryFootprint() >= large.MemoryFootprint() {
		t.Error("memory footprint not increasing with p")
	}
	if small.SizeBytes() != 256*28/8/16 {
		t.Errorf("p=4 size = %d, want %d", small.SizeBytes(), 16*28/8)
	}
}
