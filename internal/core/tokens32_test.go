package core

import (
	"math"
	"testing"
	"testing/quick"

	"exaloglog/internal/hashing"
)

// TestToken32MatchesTokenSet: the array-backed list must behave exactly
// like the map-backed TokenSet at v=26 — same distinct tokens, same ML
// estimate, same dense sketch.
func TestToken32MatchesTokenSet(t *testing.T) {
	tl := NewToken32List()
	ts, err := NewTokenSet(Token32V)
	if err != nil {
		t.Fatal(err)
	}
	state := uint64(5)
	for i := 0; i < 30000; i++ {
		h := hashing.SplitMix64(&state)
		tl.AddHash(h)
		ts.AddHash(h)
		// 20 % duplicates.
		if i%5 == 0 {
			tl.AddHash(h)
			ts.AddHash(h)
		}
	}
	if tl.Len() != ts.Len() {
		t.Fatalf("Len %d != TokenSet %d", tl.Len(), ts.Len())
	}
	want := ts.Tokens()
	got := tl.Tokens()
	for i := range want {
		if uint64(got[i]) != want[i] {
			t.Fatalf("token %d: %#x != %#x", i, got[i], want[i])
		}
	}
	a, b := tl.EstimateML(), ts.EstimateML()
	if math.Abs(a-b) > 1e-9*b {
		t.Fatalf("EstimateML %g != TokenSet %g", a, b)
	}
	cfg := Config{T: 2, D: 20, P: 10}
	sa, err := tl.ToSketch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ts.ToSketch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sa.NumRegisters(); i++ {
		if sa.Register(i) != sb.Register(i) {
			t.Fatalf("dense register %d differs", i)
		}
	}
}

// TestToken32Dedup: duplicate tokens never inflate Len, regardless of the
// compaction schedule.
func TestToken32Dedup(t *testing.T) {
	err := quick.Check(func(tokens []uint32) bool {
		tl := NewToken32List()
		seen := make(map[uint32]struct{})
		for _, w := range tokens {
			w &= 1<<32 - 1
			tl.AddToken(w)
			tl.AddToken(w)
			seen[w] = struct{}{}
		}
		return tl.Len() == len(seen)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestToken32Merge(t *testing.T) {
	a := NewToken32List()
	b := NewToken32List()
	union := NewToken32List()
	state := uint64(11)
	for i := 0; i < 5000; i++ {
		h := hashing.SplitMix64(&state)
		if i%2 == 0 {
			a.AddHash(h)
		} else {
			b.AddHash(h)
		}
		union.AddHash(h)
	}
	a.Merge(b)
	if a.Len() != union.Len() {
		t.Fatalf("merged Len %d != union %d", a.Len(), union.Len())
	}
	ta, tu := a.Tokens(), union.Tokens()
	for i := range tu {
		if ta[i] != tu[i] {
			t.Fatalf("merged token %d differs", i)
		}
	}
}

func TestToken32Accounting(t *testing.T) {
	tl := NewToken32List()
	state := uint64(3)
	for i := 0; i < 1000; i++ {
		tl.AddHash(hashing.SplitMix64(&state))
	}
	if got, want := tl.SizeBytes(), 4*tl.Len(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
	cfg := Config{T: 2, D: 20, P: 12}
	// Dense sketch is 14336 bytes → break-even at 3584 tokens.
	if got := tl.DenseBreakEven(cfg); got != 3584 {
		t.Errorf("DenseBreakEven = %d, want 3584", got)
	}
}

func TestToken32ToSketchValidation(t *testing.T) {
	tl := NewToken32List()
	if _, err := tl.ToSketch(Config{T: 2, D: 20, P: 25}); err == nil {
		t.Error("p+t > 26 accepted")
	}
	if _, err := tl.ToSketch(Config{T: 9, D: 20, P: 8}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestToken32ZeroValue(t *testing.T) {
	var tl Token32List
	if tl.Len() != 0 || tl.EstimateML() != 0 || tl.SizeBytes() != 0 {
		t.Error("zero-value Token32List not empty")
	}
	tl.AddHash(42)
	if tl.Len() != 1 {
		t.Errorf("Len = %d after one insert", tl.Len())
	}
}

// TestToken32EstimateAccuracy: the paper's Figure 9 shows near-exact
// estimation for v=26 at n ≤ 1e5 (the token PMF is nearly lossless there).
func TestToken32EstimateAccuracy(t *testing.T) {
	tl := NewToken32List()
	state := uint64(77)
	const n = 50000
	for i := 0; i < n; i++ {
		tl.AddHash(hashing.SplitMix64(&state))
	}
	est := tl.EstimateML()
	if rel := math.Abs(est-n) / n; rel > 0.005 {
		t.Fatalf("estimate %.0f, want ≈%d (err %.3f%%)", est, n, 100*rel)
	}
}

// TestToken32ToTokenSetRoundTrip preserves the token multiset.
func TestToken32ToTokenSetRoundTrip(t *testing.T) {
	tl := NewToken32List()
	state := uint64(13)
	for i := 0; i < 2000; i++ {
		tl.AddHash(hashing.SplitMix64(&state))
	}
	ts := tl.ToTokenSet()
	if ts.Len() != tl.Len() {
		t.Fatalf("round-trip Len %d != %d", ts.Len(), tl.Len())
	}
}

func BenchmarkToken32Insert(b *testing.B) {
	tl := NewToken32List()
	state := uint64(1)
	hashes := make([]uint64, 1<<16)
	for i := range hashes {
		hashes[i] = hashing.SplitMix64(&state)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.AddHash(hashes[i&(1<<16-1)])
	}
}

func BenchmarkTokenSetInsert(b *testing.B) {
	ts, _ := NewTokenSet(Token32V)
	state := uint64(1)
	hashes := make([]uint64, 1<<16)
	for i := range hashes {
		hashes[i] = hashing.SplitMix64(&state)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.AddHash(hashes[i&(1<<16-1)])
	}
}
