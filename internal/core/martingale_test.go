package core

import (
	"math"
	"testing"
)

func TestMartingaleRequiresEmptySketch(t *testing.T) {
	s := MustNew(Config{T: 2, D: 16, P: 4})
	s.AddHash(12345)
	if err := s.EnableMartingale(); err == nil {
		t.Error("EnableMartingale accepted a non-empty sketch")
	}
}

func TestMartingaleInitialState(t *testing.T) {
	s := MustNew(Config{T: 2, D: 16, P: 4})
	if err := s.EnableMartingale(); err != nil {
		t.Fatal(err)
	}
	if got := s.StateChangeProbability(); got != 1 {
		t.Errorf("initial μ = %g, want 1", got)
	}
	if got := s.EstimateMartingale(); got != 0 {
		t.Errorf("initial estimate = %g, want 0", got)
	}
}

func TestMartingaleFirstInsert(t *testing.T) {
	// The first insertion changes the state with certainty, so the
	// estimate becomes exactly 1.
	s := MustNew(Config{T: 2, D: 16, P: 4})
	if err := s.EnableMartingale(); err != nil {
		t.Fatal(err)
	}
	s.AddHash(987654321)
	if got := s.EstimateMartingale(); got != 1 {
		t.Errorf("estimate after first insert = %g, want exactly 1", got)
	}
	if mu := s.StateChangeProbability(); mu >= 1 || mu <= 0 {
		t.Errorf("μ after first insert = %g, want in (0,1)", mu)
	}
}

func TestMartingaleMuDecreasing(t *testing.T) {
	s := MustNew(Config{T: 1, D: 9, P: 4})
	if err := s.EnableMartingale(); err != nil {
		t.Fatal(err)
	}
	r := rng(21)
	prev := 1.0
	for i := 0; i < 2000; i++ {
		before := s.changedCount
		s.AddHash(r.Uint64())
		mu := s.StateChangeProbability()
		if s.changedCount != before {
			if mu >= prev {
				t.Fatalf("insert %d: μ did not decrease on state change (%.17g -> %.17g)", i, prev, mu)
			}
		} else if mu != prev {
			t.Fatalf("insert %d: μ changed without state change", i)
		}
		if mu <= 0 {
			t.Fatalf("insert %d: μ = %g not positive", i, mu)
		}
		prev = mu
	}
}

func TestMartingaleAccuracy(t *testing.T) {
	// Martingale estimates should track the true count well; tolerance
	// ≈ 5x theoretical RMSE for ELL(2,16) p=8 (≈ 1.3 %).
	s := MustNew(Config{T: 2, D: 16, P: 8})
	if err := s.EnableMartingale(); err != nil {
		t.Fatal(err)
	}
	r := rng(22)
	checkpoints := map[int]bool{100: true, 1000: true, 10000: true, 50000: true}
	for n := 1; n <= 50000; n++ {
		s.AddHash(r.Uint64())
		if checkpoints[n] {
			got := s.EstimateMartingale()
			if relErr := math.Abs(got-float64(n)) / float64(n); relErr > 0.08 {
				t.Errorf("n=%d: martingale estimate %.1f (rel err %.3f)", n, got, relErr)
			}
		}
	}
}

func TestMartingaleMeanUnbiased(t *testing.T) {
	// Average the estimate over many independent runs at fixed n; the
	// mean must be within a few standard errors of n (unbiasedness).
	const n = 200
	const runs = 400
	cfg := Config{T: 2, D: 16, P: 4}
	sum := 0.0
	for run := 0; run < runs; run++ {
		s := MustNew(cfg)
		if err := s.EnableMartingale(); err != nil {
			t.Fatal(err)
		}
		r := rng(int64(run) * 7919)
		for i := 0; i < n; i++ {
			s.AddHash(r.Uint64())
		}
		sum += s.EstimateMartingale()
	}
	mean := sum / runs
	// Single-run σ ≈ n·sqrt(MVP/((q+d)m)) ≈ 0.085n; mean σ = that/sqrt(runs).
	tol := 4 * 0.085 * n / math.Sqrt(runs)
	if math.Abs(mean-n) > tol {
		t.Errorf("martingale mean over %d runs = %.2f, want %d ± %.2f", runs, mean, n, tol)
	}
}

func TestMartingaleBetterThanML(t *testing.T) {
	// Compare empirical RMSE of martingale vs ML over repeated runs; the
	// theory (Figures 4 vs 5) says martingale has ~25 % smaller variance
	// for ELL(2,16). With limited runs just require it not be worse by
	// more than 20 %.
	const n = 3000
	const runs = 60
	cfg := Config{T: 2, D: 16, P: 6}
	var seMart, seML float64
	for run := 0; run < runs; run++ {
		s := MustNew(cfg)
		if err := s.EnableMartingale(); err != nil {
			t.Fatal(err)
		}
		r := rng(int64(run)*104729 + 1)
		for i := 0; i < n; i++ {
			s.AddHash(r.Uint64())
		}
		em := s.EstimateMartingale()/float64(n) - 1
		el := s.EstimateML()/float64(n) - 1
		seMart += em * em
		seML += el * el
	}
	if seMart > seML*1.2 {
		t.Errorf("martingale squared error %.6f worse than ML %.6f by more than 20%%", seMart/runs, seML/runs)
	}
}

func TestMartingaleIgnoredWhenDisabled(t *testing.T) {
	s := MustNew(Config{T: 2, D: 16, P: 4})
	s.AddHash(1)
	if !math.IsNaN(s.EstimateMartingale()) {
		t.Error("EstimateMartingale should be NaN when not enabled")
	}
}

func TestStateChangesCounter(t *testing.T) {
	s := MustNew(Config{T: 2, D: 20, P: 4})
	s.AddHash(42)
	s.AddHash(42) // duplicate: no change
	if got := s.StateChanges(); got != 1 {
		t.Errorf("StateChanges = %d, want 1", got)
	}
}
