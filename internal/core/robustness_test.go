package core

import (
	"math"
	"testing"
	"testing/quick"
)

// Failure-injection tests: the estimators must stay finite, non-negative
// and terminating on *any* register contents — including states that no
// insertion sequence can produce (e.g. data corrupted in transit and
// accepted by a lenient deserializer).

func TestEstimatorsRobustToArbitraryRegisters(t *testing.T) {
	cfg := Config{T: 2, D: 20, P: 4}
	mask := uint64(1)<<cfg.RegisterWidth() - 1
	maxReg := cfg.MaxUpdateValue()<<uint(cfg.D) | (uint64(1)<<uint(cfg.D) - 1)
	f := func(vals [16]uint64) bool {
		s := MustNew(cfg)
		for i, v := range vals {
			v &= mask
			if v > maxReg {
				v = maxReg // keep u within the decodable range
			}
			s.setRegister(i, v)
		}
		est := s.EstimateML()
		return !math.IsNaN(est) && est >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSolverTerminatesOnAdversarialCoefficients(t *testing.T) {
	// Extreme β spreads and tiny α: the Newton loop must terminate and
	// return something non-negative.
	cases := []Coefficients{
		{Alpha: 1e-300, Beta: []int32{1, 0, 0, 0, 0, 0, 0, 0, 0, 1}, Lo: 3},
		{Alpha: 16, Beta: []int32{1 << 30, 0, 1 << 30}, Lo: 1},
		{Alpha: 1e-12, Beta: []int32{1}, Lo: 60},
		{Alpha: 0.5, Beta: []int32{0, 0, 0, 1}, Lo: 1},
		{Alpha: 8, Beta: []int32{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9}, Lo: 2},
	}
	for i, c := range cases {
		est, iters := SolveMLCounted(c, 16)
		if math.IsNaN(est) || est < 0 {
			t.Errorf("case %d: estimate %v", i, est)
		}
		if iters > 64 {
			t.Errorf("case %d: %d iterations", i, iters)
		}
	}
}

func TestMergeRobustToCorruptIndicatorBits(t *testing.T) {
	// Registers whose indicator bits violate the phantom-bit convention
	// (possible after corruption) must still merge without panicking, and
	// the merged max must be the max of the inputs.
	f := func(a, b uint64) bool {
		d := 6
		a &= 1<<14 - 1
		b &= 1<<14 - 1
		merged := MergeRegister(a, b, d)
		return merged>>uint(d) == max64(a>>uint(d), b>>uint(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUpdateRegisterNeverDecreases(t *testing.T) {
	// The register content is monotone under updates: the max never
	// drops, and set indicator bits are never cleared by further updates
	// with values <= max.
	f := func(r uint64, k uint16) bool {
		d := 8
		r &= 1<<16 - 1
		kk := uint64(k)%200 + 1
		nr := updateRegister(r, kk, d)
		if nr>>uint(d) < r>>uint(d) {
			return false
		}
		if kk <= r>>uint(d) {
			// No new maximum: old bits must be preserved exactly.
			return nr|r == nr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestMartingaleSurvivesSaturation(t *testing.T) {
	// Drive a tiny sketch toward saturation with crafted maximal update
	// values; μ must remain positive (it only reaches 0 at full
	// saturation) and the estimate finite.
	cfg := Config{T: 0, D: 2, P: 2}
	s := MustNew(cfg)
	if err := s.EnableMartingale(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.NumRegisters(); i++ {
		for k := uint64(1); k <= cfg.MaxUpdateValue(); k++ {
			s.AddPair(i, k)
		}
	}
	if mu := s.StateChangeProbability(); mu != 0 {
		t.Errorf("fully saturated sketch has μ = %g, want exactly 0", mu)
	}
	if est := s.EstimateMartingale(); math.IsNaN(est) || est <= 0 {
		t.Errorf("martingale estimate %v after saturation", est)
	}
	if est := s.EstimateMLUncorrected(); !math.IsInf(est, 1) {
		t.Errorf("ML estimate of saturated sketch = %v, want +Inf", est)
	}
}

func TestDeserializedCorruptRegistersStillEstimable(t *testing.T) {
	// Bit-flip a serialized sketch; deserialization accepts it (the
	// payload length and header stay valid) and estimation must not
	// panic or return NaN. (u values beyond MaxUpdateValue can appear;
	// φ caps them at 64-p so ω stays well-defined.)
	s := MustNew(Config{T: 2, D: 20, P: 4})
	fillRandom(s, 1000, 3)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < (len(data)-8)*8; bit += 7 {
		corrupt := append([]byte(nil), data...)
		corrupt[8+bit/8] ^= 1 << uint(bit%8)
		restored, err := FromBinary(corrupt)
		if err != nil {
			continue
		}
		est := restored.EstimateML()
		if math.IsNaN(est) || est < 0 {
			t.Fatalf("bit flip %d: estimate %v", bit, est)
		}
	}
}
