package core

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTokenRoundTripInsertEquivalence is the key sparse-mode property
// (Section 4.3): for any sketch with p+t <= v, inserting the hash
// reconstructed from a token produces exactly the same state as inserting
// the original hash.
func TestTokenRoundTripInsertEquivalence(t *testing.T) {
	cfgs := []Config{
		{T: 2, D: 20, P: 8}, // p+t = 10
		{T: 1, D: 9, P: 9},  // p+t = 10
		{T: 0, D: 2, P: 10}, // p+t = 10
		{T: 2, D: 24, P: 4}, // p+t = 6
	}
	for _, v := range []int{10, 12, 18, 26} {
		for _, cfg := range cfgs {
			if cfg.P+cfg.T > v {
				continue
			}
			direct := MustNew(cfg)
			viaToken := MustNew(cfg)
			r := rng(int64(v) * 17)
			for i := 0; i < 3000; i++ {
				h := r.Uint64()
				direct.AddHash(h)
				viaToken.AddHash(HashFromToken(TokenFromHash(h, v), v))
			}
			if string(direct.RegisterBytes()) != string(viaToken.RegisterBytes()) {
				t.Errorf("v=%d cfg %+v: token round-trip changed the sketch state", v, cfg)
			}
		}
	}
}

// TestTokenReconstructionInvariants: the reconstructed hash preserves the
// low v bits and the NLZ of the upper 64-v bits — exactly the information
// the token encodes.
func TestTokenReconstructionInvariants(t *testing.T) {
	f := func(h uint64, vSeed uint8) bool {
		v := int(vSeed)%26 + 1
		w := TokenFromHash(h, v)
		hr := HashFromToken(w, v)
		mask := uint64(1)<<uint(v) - 1
		if hr&mask != h&mask {
			return false
		}
		nlzOrig := nlz(h | mask)
		nlzRec := nlz(hr | mask)
		return nlzOrig == nlzRec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTokenFixedPoint(t *testing.T) {
	// Token of a reconstructed hash is the same token.
	for _, v := range []int{1, 6, 10, 26, 58} {
		r := rng(int64(v))
		for i := 0; i < 500; i++ {
			w := TokenFromHash(r.Uint64(), v)
			if got := TokenFromHash(HashFromToken(w, v), v); got != w {
				t.Fatalf("v=%d: token %#x round-trips to %#x", v, w, got)
			}
		}
	}
}

func TestTokenSize(t *testing.T) {
	// Tokens fit in v+6 bits.
	for _, v := range []int{1, 8, 26} {
		r := rng(int64(v) + 100)
		limit := uint64(1) << uint(v+6)
		for i := 0; i < 1000; i++ {
			if w := TokenFromHash(r.Uint64(), v); w >= limit {
				t.Fatalf("v=%d: token %#x exceeds %d bits", v, w, v+6)
			}
		}
	}
}

func TestTokenSetBasics(t *testing.T) {
	ts, err := NewTokenSet(10)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 0 || ts.SizeBytes() != 0 {
		t.Error("fresh token set not empty")
	}
	r := rng(200)
	for i := 0; i < 1000; i++ {
		ts.AddHash(r.Uint64())
	}
	if ts.Len() == 0 || ts.Len() > 1000 {
		t.Errorf("token count %d implausible", ts.Len())
	}
	// 16-bit tokens → 2 bytes each.
	if got, want := ts.SizeBytes(), (ts.Len()*16+7)/8; got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
	toks := ts.Tokens()
	for i := 1; i < len(toks); i++ {
		if toks[i-1] >= toks[i] {
			t.Fatal("Tokens() not strictly increasing")
		}
	}
	if _, err := NewTokenSet(0); err == nil {
		t.Error("NewTokenSet accepted v=0")
	}
	if _, err := NewTokenSet(60); err == nil {
		t.Error("NewTokenSet accepted v=60")
	}
}

// TestTokenSetToSketchEquivalence: converting collected tokens to a dense
// sketch gives exactly the state of direct insertion.
func TestTokenSetToSketchEquivalence(t *testing.T) {
	v := 12
	cfg := Config{T: 2, D: 20, P: 8}
	ts, err := NewTokenSet(v)
	if err != nil {
		t.Fatal(err)
	}
	direct := MustNew(cfg)
	r := rng(300)
	for i := 0; i < 5000; i++ {
		h := r.Uint64()
		ts.AddHash(h)
		direct.AddHash(h)
	}
	dense, err := ts.ToSketch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(dense.RegisterBytes()) != string(direct.RegisterBytes()) {
		t.Error("token-set dense conversion differs from direct insertion")
	}
	// p+t > v must be rejected.
	if _, err := ts.ToSketch(Config{T: 2, D: 20, P: 11}); err == nil {
		t.Error("ToSketch accepted p+t > v")
	}
}

func TestTokenSetMerge(t *testing.T) {
	a, _ := NewTokenSet(10)
	b, _ := NewTokenSet(10)
	r := rng(400)
	union := map[uint64]struct{}{}
	for i := 0; i < 500; i++ {
		h := r.Uint64()
		a.AddHash(h)
		union[TokenFromHash(h, 10)] = struct{}{}
	}
	for i := 0; i < 500; i++ {
		h := r.Uint64()
		b.AddHash(h)
		union[TokenFromHash(h, 10)] = struct{}{}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != len(union) {
		t.Errorf("merged token count %d, want %d", a.Len(), len(union))
	}
	c, _ := NewTokenSet(12)
	if err := a.Merge(c); err == nil {
		t.Error("merge accepted different v")
	}
}

// TestTokenMLEstimation verifies Figure 9's setup: estimating directly
// from token sets is nearly unbiased with small error. The paper reports
// error slightly smaller than an ELL sketch with p+t = v.
func TestTokenMLEstimation(t *testing.T) {
	for _, v := range []int{10, 12, 18} {
		for _, n := range []int{100, 1000, 10000} {
			ts, err := NewTokenSet(v)
			if err != nil {
				t.Fatal(err)
			}
			r := rng(int64(v*1000 + n))
			for i := 0; i < n; i++ {
				ts.AddHash(r.Uint64())
			}
			got := ts.EstimateML()
			// Tolerance ~5σ with σ ≈ sqrt(MVP_token/(2^v·tokenbits));
			// loose bound: 5 % at v=10/n=10k and wider for small n.
			tol := 0.12 * float64(n)
			if math.Abs(got-float64(n)) > tol+2 {
				t.Errorf("v=%d n=%d: token ML estimate %.1f", v, n, got)
			}
		}
	}
}

func TestTokenMLEmpty(t *testing.T) {
	ts, _ := NewTokenSet(10)
	if got := ts.EstimateML(); got != 0 {
		t.Errorf("empty token set estimate = %g, want 0", got)
	}
}

// TestTokenCoefficientsAlpha: α = 1 - Σ ρ_token over collected tokens;
// adding all 2^(v+6) possible tokens of a tiny v... instead verify against
// a direct computation of ρ_token (equation (24)).
func TestTokenCoefficientsAlpha(t *testing.T) {
	v := 8
	ts, _ := NewTokenSet(v)
	r := rng(500)
	for i := 0; i < 2000; i++ {
		ts.AddHash(r.Uint64())
	}
	c := ts.MLCoefficients()
	sum := 0.0
	for _, w := range ts.Tokens() {
		j := int(w&63) + v + 1
		if j > 64 {
			j = 64
		}
		sum += math.Exp2(-float64(j))
	}
	if math.Abs(c.Alpha-(1-sum)) > 1e-12 {
		t.Errorf("α = %.17g, want %.17g", c.Alpha, 1-sum)
	}
}

// TestTokenPMFSumsToOne verifies equation (25): Σ_w ρ_token(w) = 1 for
// small v by exhaustive enumeration.
func TestTokenPMFSumsToOne(t *testing.T) {
	for _, v := range []int{1, 2, 4, 6} {
		sum := 0.0
		for w := uint64(0); w < uint64(1)<<uint(v+6); w++ {
			s := int(w & 63)
			if s > 64-v {
				continue // ρ_token = 0
			}
			j := v + 1 + s
			if j > 64 {
				j = 64
			}
			sum += math.Exp2(-float64(j))
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("v=%d: Σρ_token = %.15f, want 1", v, sum)
		}
	}
}
