package core

import (
	"math"
	"math/bits"

	"exaloglog/internal/zeta"
)

// Coefficients holds the sufficient statistics (α, β) of the log-likelihood
// function (15),
//
//	ln L = -(n/m)·α + Σ_u β_u · ln(1 - e^(-n/(m·2^u))),
//
// extracted from register or token states. Beta[j] stores β_{Lo+j}.
type Coefficients struct {
	// Alpha is α ≥ 0; the per-register contributions are exact integer
	// multiples of 2^-(64-p) and are accumulated in 128-bit fixed point,
	// so Alpha carries no summation error beyond one final rounding.
	Alpha float64
	// Beta[j] counts likelihood terms with exponent u = Lo + j.
	Beta []int32
	// Lo is the smallest possible exponent, t+1 for registers (v+1 for
	// hash tokens).
	Lo int
}

// mlCoefficients computes the coefficients of the log-likelihood function
// (15) from the register states, following Algorithm 3. The α' accumulator
// is α·2^(64-p) held as a 128-bit integer (hi, lo); individual
// contributions are bounded by 2^(64-p), so the total is at most 2^64·…
// and never overflows the pair.
func (s *Sketch) mlCoefficients() Coefficients {
	cfg := s.cfg
	lo := cfg.T + 1
	hi := 64 - cfg.P
	beta := make([]int32, hi-lo+1)
	var aHi, aLo uint64

	m := cfg.NumRegisters()
	for i := 0; i < m; i++ {
		r := s.regs.Get(i)
		u := int64(r >> uint(cfg.D))
		var carry uint64
		aLo, carry = bits.Add64(aLo, uint64(cfg.omegaNumerator(u))<<uint(64-cfg.P-cfg.phi(u)), 0)
		aHi += carry
		if u >= 1 {
			beta[cfg.phi(u)-lo]++
			if u >= 2 {
				k := u - int64(cfg.D)
				if k < 1 {
					k = 1
				}
				for ; k < u; k++ {
					j := cfg.phi(k)
					if r&(uint64(1)<<uint(int64(cfg.D)-u+k)) == 0 {
						aLo, carry = bits.Add64(aLo, uint64(1)<<uint(64-cfg.P-j), 0)
						aHi += carry
					} else {
						beta[j-lo]++
					}
				}
			}
		}
	}
	alpha := math.Ldexp(float64(aHi), cfg.P) + math.Ldexp(float64(aLo), cfg.P-64)
	return Coefficients{Alpha: alpha, Beta: beta, Lo: lo}
}

// SolveML finds the maximum-likelihood distinct-count estimate for a
// likelihood of shape (15) with coefficients c and register count m,
// using the Newton iteration of Algorithm 8 (Appendix A). It returns 0 if
// all β are zero (pristine state) and +Inf if α = 0 (fully saturated
// state, which the paper notes occurs only at entirely unrealistic
// distinct counts).
func SolveML(c Coefficients, m float64) float64 {
	est, _ := SolveMLCounted(c, m)
	return est
}

// SolveMLCounted is SolveML plus the number of Newton iterations
// performed. Appendix A reports that the iteration count never exceeded
// 10 in any of the paper's experiments; tests assert the same here.
func SolveMLCounted(c Coefficients, m float64) (float64, int) {
	sigma0 := 0.0
	sigma1 := 0.0
	uMin, uMax := -1, 0
	for j, b := range c.Beta {
		if b > 0 {
			u := c.Lo + j
			if uMin < 0 {
				uMin = u
			}
			uMax = u
			sigma0 += float64(b)
			sigma1 += math.Ldexp(float64(b), -u) // β_j · 2^-j, see (27)
		}
	}
	if uMin < 0 {
		return 0, 0 // all β_j zero: the ML estimate of a pristine state
	}
	if c.Alpha <= 0 {
		return math.Inf(1), 0 // all registers saturated
	}
	sigma1 = math.Ldexp(sigma1, uMax)
	a2u := c.Alpha * math.Ldexp(1, uMax)
	x := sigma1 / a2u
	iterations := 0
	if uMin < uMax {
		// Lower bracket (27); guaranteed f(x0) <= 0 by Lemma B.3.
		x = math.Expm1(math.Log1p(x) * (sigma0 / sigma1))
		for {
			iterations++
			// Sum φ(x) (17) and ψ(x) (28) with the recursions
			// (20)-(22) and (30); all quantities stay in safe ranges.
			lambda := 1.0
			eta := 0.0
			y := x
			u := uMax
			phi := float64(c.Beta[u-c.Lo])
			psi := 0.0
			for {
				u--
				z := 2 / (2 + y)
				lambda *= z
				eta = eta*(2-z) + (1 - z)
				if b := c.Beta[u-c.Lo]; b > 0 {
					phi += float64(b) * lambda
					psi += float64(b) * lambda * eta
				}
				if u <= uMin {
					break
				}
				y *= y + 2
			}
			xp := a2u * x
			if phi <= xp {
				break // f(x) >= 0: converged (or numeric error floor)
			}
			xOld := x
			x *= 1 + (phi-xp)/(psi+xp)
			if x <= xOld {
				break // numerically converged
			}
		}
	}
	return m * math.Ldexp(1, uMax) * math.Log1p(x), iterations
}

// EstimateML returns the maximum-likelihood distinct-count estimate with
// the first-order bias correction of equation (4) applied.
func (s *Sketch) EstimateML() float64 {
	raw := SolveML(s.mlCoefficients(), float64(s.cfg.NumRegisters()))
	if s.biasC == 0 {
		// Cached lazily: Hurwitz zeta evaluation is ~100x the cost of
		// the remaining estimation work.
		s.biasC = s.biasCorrectionConstant()
	}
	return raw / (1 + s.biasC/float64(s.cfg.NumRegisters()))
}

// EstimateMLUncorrected returns the raw ML estimate without bias
// correction (used by tests and the ablation benchmarks).
func (s *Sketch) EstimateMLUncorrected() float64 {
	return SolveML(s.mlCoefficients(), float64(s.cfg.NumRegisters()))
}

// Estimate returns the sketch's best distinct-count estimate: the
// martingale estimate when martingale tracking is enabled (smaller error,
// Section 3.3), and the bias-corrected ML estimate otherwise.
func (s *Sketch) Estimate() float64 {
	if s.martingale {
		return s.martingaleN
	}
	return s.EstimateML()
}

// biasCorrectionConstant computes c of equation (4) with b = 2^(2^-t).
func (s *Sketch) biasCorrectionConstant() float64 {
	return BiasCorrectionConstant(s.cfg.T, s.cfg.D)
}

// BiasCorrectionConstant returns the constant c of the first-order ML bias
// correction (4) for parameters (t, d), with b = 2^(2^-t). The corrected
// estimate is n̂_ML / (1 + c/m). Exposed for the hardcoded fast-path
// variants and estimator tooling.
func BiasCorrectionConstant(t, d int) float64 {
	b := math.Exp2(math.Exp2(-float64(t)))
	y := math.Pow(b, -float64(d)) / (b - 1)
	z2 := zeta.Hurwitz(2, 1+y)
	z3 := zeta.Hurwitz(3, 1+y)
	return math.Log(b) * (1 + 2*y) * z3 / (z2 * z2)
}
