package core

import (
	"encoding/binary"
	"fmt"

	"exaloglog/internal/hashing"
)

// Hybrid is a sketch that starts in sparse mode — collecting (v+6)-bit
// hash tokens with a linearly growing footprint — and transparently
// converts itself to a dense ExaLogLog sketch at the break-even point, as
// proposed in Section 4.3 of the paper. Use it when many sketches are
// kept and most stay almost empty (e.g. one per customer/key).
//
// Estimation works in both modes: sparse mode estimates directly from the
// token set (Algorithm 7), dense mode uses the ML estimator. Conversion
// is lossless — the dense state is identical to direct recording.
type Hybrid struct {
	cfg    Config
	v      int
	tokens *TokenSet // non-nil while sparse
	dense  *Sketch   // non-nil once converted
}

// DefaultTokenV is the default sparse-token parameter: 32-bit tokens,
// compatible with every configuration up to p+t = 26.
const DefaultTokenV = 26

// NewHybrid creates a sparse-mode sketch that will densify into cfg. The
// token parameter is DefaultTokenV; cfg must satisfy p+t <= 26.
func NewHybrid(cfg Config) (*Hybrid, error) {
	return NewHybridWithV(cfg, DefaultTokenV)
}

// NewHybridWithV creates a sparse-mode sketch with an explicit token
// parameter v >= p+t.
func NewHybridWithV(cfg Config, v int) (*Hybrid, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.P+cfg.T > v {
		return nil, fmt.Errorf("exaloglog: tokens with v=%d cannot feed a sketch with p+t=%d", v, cfg.P+cfg.T)
	}
	ts, err := NewTokenSet(v)
	if err != nil {
		return nil, err
	}
	return &Hybrid{cfg: cfg, v: v, tokens: ts}, nil
}

// Config returns the dense-mode configuration.
func (h *Hybrid) Config() Config { return h.cfg }

// IsSparse reports whether the sketch is still in sparse (token) mode.
func (h *Hybrid) IsSparse() bool { return h.dense == nil }

// AddHash inserts an element by its 64-bit hash.
func (h *Hybrid) AddHash(hash uint64) {
	if h.dense != nil {
		h.dense.AddHash(hash)
		return
	}
	h.tokens.AddHash(hash)
	if h.tokens.SizeBytes() >= h.cfg.SizeBytes() {
		h.densify()
	}
}

// AddString inserts a string element.
func (h *Hybrid) AddString(element string) { h.AddHash(hashing.WyString(element, 0)) }

// densify converts the token set to the dense representation.
func (h *Hybrid) densify() {
	s, err := h.tokens.ToSketch(h.cfg)
	if err != nil {
		// Unreachable: v >= p+t is checked at construction.
		panic(err)
	}
	h.dense = s
	h.tokens = nil
}

// Densify forces the conversion to dense mode (idempotent).
func (h *Hybrid) Densify() *Sketch {
	if h.dense == nil {
		h.densify()
	}
	return h.dense
}

// Estimate returns the distinct-count estimate for the current mode.
func (h *Hybrid) Estimate() float64 {
	if h.dense != nil {
		return h.dense.EstimateML()
	}
	return h.tokens.EstimateML()
}

// MemoryFootprint approximates allocated bytes in the current mode. In
// sparse mode the map overhead is charged at 16 bytes per token.
func (h *Hybrid) MemoryFootprint() int {
	if h.dense != nil {
		return h.dense.MemoryFootprint() + 32
	}
	return h.tokens.Len()*16 + 96
}

// SizeBytes returns the serialized payload size in the current mode.
func (h *Hybrid) SizeBytes() int {
	if h.dense != nil {
		return h.dense.SizeBytes()
	}
	return h.tokens.SizeBytes()
}

// Merge folds other into h. Both must target the same dense configuration
// and share v. If both are sparse the token sets merge (staying sparse
// until break-even); otherwise both densify first.
func (h *Hybrid) Merge(other *Hybrid) error {
	if h.cfg != other.cfg || h.v != other.v {
		return fmt.Errorf("exaloglog: cannot merge hybrid (%+v, v=%d) with (%+v, v=%d)", h.cfg, h.v, other.cfg, other.v)
	}
	if h.dense == nil && other.dense == nil {
		if err := h.tokens.Merge(other.tokens); err != nil {
			return err
		}
		if h.tokens.SizeBytes() >= h.cfg.SizeBytes() {
			h.densify()
		}
		return nil
	}
	h.Densify()
	if other.dense != nil {
		return h.dense.Merge(other.dense)
	}
	od, err := other.tokens.ToSketch(other.cfg)
	if err != nil {
		return err
	}
	return h.dense.Merge(od)
}

// Serialization format:
//
//	byte 0     'H'
//	byte 1     mode: 0 sparse, 1 dense
//	byte 2-5   t, d, p, v
//	sparse:    uint32 token count, then tokens packed little-endian in
//	           ceil((v+6)/8) bytes each, ascending
//	dense:     the dense sketch's MarshalBinary output

// MarshalBinary serializes the hybrid sketch in its current mode.
func (h *Hybrid) MarshalBinary() ([]byte, error) {
	head := []byte{'H', 0, byte(h.cfg.T), byte(h.cfg.D), byte(h.cfg.P), byte(h.v)}
	if h.dense != nil {
		head[1] = 1
		body, err := h.dense.MarshalBinary()
		if err != nil {
			return nil, err
		}
		return append(head, body...), nil
	}
	tokens := h.tokens.Tokens()
	tokBytes := (h.v + 6 + 7) / 8
	out := make([]byte, 0, len(head)+4+len(tokens)*tokBytes)
	out = append(out, head...)
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(tokens)))
	out = append(out, buf[:4]...)
	for _, w := range tokens {
		binary.LittleEndian.PutUint64(buf[:], w)
		out = append(out, buf[:tokBytes]...)
	}
	return out, nil
}

// UnmarshalBinary restores a hybrid sketch serialized by MarshalBinary.
func (h *Hybrid) UnmarshalBinary(data []byte) error {
	if len(data) < 6 || data[0] != 'H' {
		return fmt.Errorf("exaloglog: bad hybrid payload")
	}
	cfg := Config{T: int(data[2]), D: int(data[3]), P: int(data[4])}
	v := int(data[5])
	n, err := NewHybridWithV(cfg, v)
	if err != nil {
		return err
	}
	switch data[1] {
	case 1:
		dense, err := FromBinary(data[6:])
		if err != nil {
			return err
		}
		if dense.Config() != cfg {
			return fmt.Errorf("exaloglog: hybrid header %+v disagrees with dense payload %+v", cfg, dense.Config())
		}
		n.dense = dense
		n.tokens = nil
	case 0:
		if len(data) < 10 {
			return fmt.Errorf("exaloglog: hybrid token payload too short")
		}
		count := int(binary.LittleEndian.Uint32(data[6:]))
		tokBytes := (v + 6 + 7) / 8
		pos := 10
		if len(data) != pos+count*tokBytes {
			return fmt.Errorf("exaloglog: hybrid token payload malformed")
		}
		limit := uint64(1) << uint(v+6)
		for i := 0; i < count; i++ {
			var buf [8]byte
			copy(buf[:], data[pos:pos+tokBytes])
			w := binary.LittleEndian.Uint64(buf[:])
			if w >= limit {
				return fmt.Errorf("exaloglog: token %#x exceeds %d bits", w, v+6)
			}
			n.tokens.AddToken(w)
			pos += tokBytes
		}
	default:
		return fmt.Errorf("exaloglog: unknown hybrid mode %d", data[1])
	}
	*h = *n
	return nil
}
