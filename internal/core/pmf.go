package core

import "math"

// This file implements the register probability mass function of
// Section 3.1 and derived quantities (entropy), used by the
// compressibility study (Section 6 / future work) and as a statistical
// oracle in tests.

// RegisterPMF returns the probability of observing register value r after
// n distinct insertions under the Poisson approximation (Section 3.1).
//
// One deviation from the paper's printed formulas: Algorithm 2 leaves the
// "phantom" occurrence bit of the empty register in place (see
// updateRegister), so for 1 <= u <= d the bit at position d-u is always
// set; register values violating that have probability zero. The
// indicator bits for real update values (>= 1) follow exactly the paper's
// product form.
func (c Config) RegisterPMF(r uint64, n float64) float64 {
	m := float64(c.NumRegisters())
	if r == 0 {
		return math.Exp(-n / m)
	}
	u := int64(r >> uint(c.D))
	kmax := int64(c.MaxUpdateValue())
	if u < 1 || u > kmax {
		return 0
	}
	// Phantom bit position d-u for u <= d must be set; bits below it must
	// be zero.
	if u <= int64(c.D) {
		phantom := uint64(1) << uint(int64(c.D)-u)
		if r&phantom == 0 {
			return 0
		}
		if r&(phantom-1) != 0 {
			return 0
		}
	}
	rho := func(k int64) float64 { return math.Exp2(-float64(c.phi(k))) }
	omega := func(u int64) float64 {
		return float64(c.omegaNumerator(u)) * math.Exp2(-float64(c.phi(u)))
	}
	// P(max update value = u, no larger values).
	p := -math.Expm1(-n / m * rho(u))
	p *= math.Exp(-n / m * omega(u))
	// Indicator bits for values u-1 .. max(1, u-d).
	lo := u - int64(c.D)
	if lo < 1 {
		lo = 1
	}
	for k := lo; k < u; k++ {
		set := r&(uint64(1)<<uint(int64(c.D)-u+k)) != 0
		q := -math.Expm1(-n / m * rho(k))
		if set {
			p *= q
		} else {
			p *= 1 - q
		}
	}
	return p
}

// RegisterEntropy computes the Shannon entropy (in bits) of the register
// distribution at distinct count n by enumerating all register values with
// non-negligible probability. It quantifies the compression potential the
// paper's Section 6 points to: entropy × m is the information-theoretic
// lower bound for the state size, compared to the (6+t+d)·m dense bits.
//
// The enumeration is exponential in d, so this is intended for small-d
// configurations and analysis tooling (d <= 16).
func (c Config) RegisterEntropy(n float64) float64 {
	if c.D > 16 {
		panic("exaloglog: RegisterEntropy is exponential in d; use d <= 16")
	}
	h := 0.0
	total := 0.0
	add := func(p float64) {
		total += p
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	add(c.RegisterPMF(0, n))
	kmax := int64(c.MaxUpdateValue())
	for u := int64(1); u <= kmax; u++ {
		// Enumerate the free indicator bits: values u-1 .. max(1, u-d).
		nBits := int64(c.D)
		if u-1 < nBits {
			nBits = u - 1
		}
		base := uint64(u) << uint(c.D)
		if u <= int64(c.D) {
			base |= uint64(1) << uint(int64(c.D)-u) // phantom bit
		}
		for mask := uint64(0); mask < uint64(1)<<uint(nBits); mask++ {
			// Free bits occupy positions d-1 .. d-nBits.
			r := base | mask<<uint(int64(c.D)-u+(u-nBits))
			add(c.RegisterPMF(r, n))
		}
	}
	// total should be ≈ 1; expose gross inconsistencies to callers by
	// normalizing (tests assert closeness separately).
	if total > 0 {
		h /= total
	}
	return h
}
