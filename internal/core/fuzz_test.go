package core

import (
	"math"
	"testing"
)

// Fuzz targets: no input, however malformed, may panic a deserializer or
// produce a sketch whose estimator misbehaves. Each target doubles as a
// regression corpus via the seed inputs below.

func FuzzUnmarshalBinary(f *testing.F) {
	s := MustNew(Config{T: 2, D: 20, P: 4})
	fillRandom(s, 500, 1)
	valid, _ := s.MarshalBinary()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{'E', 'L', 1, 2, 20, 4, 0, 0})
	f.Add([]byte{'E', 'L', 1, 99, 99, 99, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var sk Sketch
		if err := sk.UnmarshalBinary(data); err != nil {
			return
		}
		est := sk.EstimateML()
		if math.IsNaN(est) || est < 0 {
			t.Fatalf("estimate %v from accepted payload", est)
		}
	})
}

func FuzzUnmarshalCompressed(f *testing.F) {
	s := MustNew(Config{T: 1, D: 9, P: 4})
	fillRandom(s, 200, 2)
	valid, _ := s.MarshalCompressed()
	f.Add(valid)
	f.Add([]byte{'E', 'C', 1, 9, 4})
	f.Add([]byte{'E', 'C', 200, 9, 4, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var sk Sketch
		if err := sk.UnmarshalCompressed(data); err != nil {
			return
		}
		// Any accepted payload decodes to a structurally valid register
		// array (widths enforced by construction); estimation must work.
		est := sk.EstimateML()
		if math.IsNaN(est) || est < 0 {
			t.Fatalf("estimate %v from accepted compressed payload", est)
		}
	})
}

func FuzzHybridUnmarshal(f *testing.F) {
	h, _ := NewHybrid(Config{T: 2, D: 20, P: 8})
	r := rng(3)
	for i := 0; i < 50; i++ {
		h.AddHash(r.Uint64())
	}
	sparse, _ := h.MarshalBinary()
	f.Add(sparse)
	for i := 0; i < 5000; i++ {
		h.AddHash(r.Uint64())
	}
	dense, _ := h.MarshalBinary()
	f.Add(dense)
	f.Add([]byte{'H', 0, 2, 20, 8, 26, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var hy Hybrid
		if err := hy.UnmarshalBinary(data); err != nil {
			return
		}
		est := hy.Estimate()
		if math.IsNaN(est) || est < 0 {
			t.Fatalf("estimate %v from accepted hybrid payload", est)
		}
	})
}

func FuzzTokenHashRoundTrip(f *testing.F) {
	f.Add(uint64(0), 10)
	f.Add(^uint64(0), 26)
	f.Add(uint64(0xdeadbeef), 1)
	f.Fuzz(func(t *testing.T, h uint64, v int) {
		if v < TokenMinV || v > TokenMaxV {
			return
		}
		w := TokenFromHash(h, v)
		if w >= uint64(1)<<uint(v+6) {
			t.Fatalf("token %#x exceeds %d bits", w, v+6)
		}
		if TokenFromHash(HashFromToken(w, v), v) != w {
			t.Fatalf("token %#x not a fixed point", w)
		}
	})
}

func FuzzTokenSetUnmarshal(f *testing.F) {
	ts, _ := NewTokenSet(26)
	r := rng(8)
	for i := 0; i < 50; i++ {
		ts.AddHash(r.Uint64())
	}
	valid, _ := ts.MarshalBinary()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{'E', 'T', 1, 26, 0})
	f.Add([]byte{'E', 'T', 1, 99, 3, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := TokenSetFromBinary(data)
		if err != nil {
			return
		}
		est := back.EstimateML()
		if math.IsNaN(est) || est < 0 {
			t.Fatalf("estimate %v from accepted token payload", est)
		}
	})
}
