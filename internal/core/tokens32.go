package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Token32V is the token parameter of Token32List. The paper singles out
// v = 26 as "particularly interesting, because it is big enough to support
// any practical ELL configuration" while tokens fit exactly into 32 bits.
const Token32V = 26

// Token32List collects (26+6)-bit hash tokens in a plain []uint32 — the
// storage layout Section 4.3 recommends: "as the tokens can be stored in a
// plain 32-bit integer array, off-the-shelf sorting algorithms can be used
// for deduplication". Insertions append; deduplication happens lazily by
// sort-and-compact whenever the unsorted tail grows past the sorted
// prefix, giving amortized O(log n) per insertion and 4 bytes per distinct
// token of steady-state memory — about half the footprint of the
// map-backed TokenSet at the same v.
//
// The zero value is ready to use.
type Token32List struct {
	// buf is a sorted, distinct prefix of length sorted followed by an
	// unsorted, possibly-duplicated tail.
	buf    []uint32
	sorted int
}

// NewToken32List returns an empty token list (equivalent to new(Token32List)).
func NewToken32List() *Token32List { return &Token32List{} }

// AddHash converts a 64-bit hash to a 32-bit token and records it.
func (tl *Token32List) AddHash(h uint64) {
	tl.AddToken(uint32(TokenFromHash(h, Token32V)))
}

// AddToken records an already-computed 32-bit token.
func (tl *Token32List) AddToken(w uint32) {
	tl.buf = append(tl.buf, w)
	// Compact when the tail has grown to the size of the sorted prefix
	// (plus a floor so tiny lists don't compact on every insert).
	if tail := len(tl.buf) - tl.sorted; tail >= tl.sorted+64 {
		tl.compact()
	}
}

// compact sorts the whole buffer and removes duplicates.
func (tl *Token32List) compact() {
	sort.Slice(tl.buf, func(i, j int) bool { return tl.buf[i] < tl.buf[j] })
	out := tl.buf[:0]
	for i, w := range tl.buf {
		if i == 0 || w != tl.buf[i-1] {
			out = append(out, w)
		}
	}
	tl.buf = out
	tl.sorted = len(out)
}

// Len returns the number of distinct tokens collected (compacting first).
func (tl *Token32List) Len() int {
	if tl.sorted != len(tl.buf) {
		tl.compact()
	}
	return len(tl.buf)
}

// Tokens returns the distinct tokens in ascending order.
func (tl *Token32List) Tokens() []uint32 {
	tl.Len()
	return append([]uint32(nil), tl.buf...)
}

// SizeBytes returns the steady-state memory of the deduplicated list:
// 4 bytes per distinct token, the paper's sparse-mode accounting for
// v = 26.
func (tl *Token32List) SizeBytes() int { return 4 * tl.Len() }

// Merge adds all tokens of other into tl.
func (tl *Token32List) Merge(other *Token32List) {
	other.Len()
	tl.buf = append(tl.buf, other.buf...)
	tl.compact()
}

// DenseBreakEven returns the number of distinct tokens at which the dense
// representation of cfg becomes smaller than the 32-bit token list.
func (tl *Token32List) DenseBreakEven(cfg Config) int {
	return (cfg.SizeBytes() + 3) / 4
}

// ToSketch converts the token list into a dense ELL sketch with the given
// configuration, which must satisfy p+t <= 26. The result is identical to
// inserting the original elements directly (Section 4.3).
func (tl *Token32List) ToSketch(cfg Config) (*Sketch, error) {
	if cfg.P+cfg.T > Token32V {
		return nil, fmt.Errorf("exaloglog: 32-bit tokens cannot feed a sketch with p+t=%d > %d", cfg.P+cfg.T, Token32V)
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	tl.Len()
	for _, w := range tl.buf {
		s.AddHash(HashFromToken(uint64(w), Token32V))
	}
	return s, nil
}

// ToTokenSet converts to the map-backed TokenSet (same v).
func (tl *Token32List) ToTokenSet() *TokenSet {
	ts, err := NewTokenSet(Token32V)
	if err != nil {
		panic(err) // unreachable: Token32V is in range
	}
	tl.Len()
	for _, w := range tl.buf {
		ts.AddToken(uint64(w))
	}
	return ts
}

// EstimateML estimates the distinct count directly from the token list
// (Section 4.3, Algorithm 7), identical to TokenSet.EstimateML.
func (tl *Token32List) EstimateML() float64 {
	tl.Len()
	beta := make([]int32, 64-Token32V)
	aHi := uint64(1)
	aLo := uint64(0)
	for _, w := range tl.buf {
		j := int(w&63) + Token32V + 1
		if j > 64 {
			j = 64
		}
		beta[j-Token32V-1]++
		var borrow uint64
		aLo, borrow = bits.Sub64(aLo, uint64(1)<<uint(64-j), 0)
		aHi -= borrow
	}
	alpha := math.Ldexp(float64(aHi), 0) + math.Ldexp(float64(aLo), -64)
	return SolveML(Coefficients{Alpha: alpha, Beta: beta, Lo: Token32V + 1}, 1)
}
