package core

import (
	"math"
	"testing"
)

func TestHybridValidation(t *testing.T) {
	if _, err := NewHybrid(Config{T: 2, D: 20, P: 25}); err == nil {
		t.Error("accepted p+t > 26")
	}
	if _, err := NewHybridWithV(Config{T: 2, D: 20, P: 10}, 8); err == nil {
		t.Error("accepted v < p+t")
	}
	if _, err := NewHybrid(Config{T: 9, D: 20, P: 10}); err == nil {
		t.Error("accepted invalid config")
	}
}

func TestHybridStartsSparseAndDensifies(t *testing.T) {
	cfg := Config{T: 2, D: 20, P: 8} // 896 dense bytes
	h, err := NewHybrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsSparse() {
		t.Fatal("fresh hybrid not sparse")
	}
	r := rng(50)
	n := 0
	for h.IsSparse() {
		h.AddHash(r.Uint64())
		n++
		if n > 100000 {
			t.Fatal("never densified")
		}
	}
	// Break-even for 32-bit tokens at 896 bytes ≈ 224 tokens.
	if n < 150 || n > 400 {
		t.Errorf("densified after %d inserts; expected ≈ 224", n)
	}
	// Memory in sparse mode must have been below the dense footprint
	// right up to the switch, and estimates stay sane across it.
	est := h.Estimate()
	if math.Abs(est-float64(n))/float64(n) > 0.25 {
		t.Errorf("estimate %.0f right after densify (n=%d)", est, n)
	}
}

// TestHybridDensifyLossless: the dense state after conversion equals
// direct insertion through tokens (v-truncated hashes).
func TestHybridDensifyLossless(t *testing.T) {
	cfg := Config{T: 2, D: 20, P: 6}
	h, _ := NewHybrid(cfg)
	direct := MustNew(cfg)
	r := rng(51)
	for i := 0; i < 5000; i++ {
		hash := r.Uint64()
		h.AddHash(hash)
		direct.AddHash(HashFromToken(TokenFromHash(hash, DefaultTokenV), DefaultTokenV))
	}
	if h.IsSparse() {
		t.Fatal("still sparse after 5000 inserts at p=6")
	}
	if string(h.Densify().RegisterBytes()) != string(direct.RegisterBytes()) {
		t.Error("hybrid dense state differs from direct token-insertion")
	}
}

func TestHybridSparseEstimate(t *testing.T) {
	h, _ := NewHybrid(Config{T: 2, D: 20, P: 10})
	r := rng(52)
	for i := 0; i < 100; i++ {
		h.AddHash(r.Uint64())
	}
	if !h.IsSparse() {
		t.Fatal("should still be sparse at 100 tokens vs 3584 dense bytes")
	}
	est := h.Estimate()
	if math.Abs(est-100) > 10 {
		t.Errorf("sparse estimate %.1f, want ≈100", est)
	}
	if h.SizeBytes() >= 3584 {
		t.Errorf("sparse size %d not below dense size", h.SizeBytes())
	}
}

func TestHybridMergeSparseSparse(t *testing.T) {
	cfg := Config{T: 2, D: 20, P: 10}
	a, _ := NewHybrid(cfg)
	b, _ := NewHybrid(cfg)
	u, _ := NewHybrid(cfg)
	r := rng(53)
	for i := 0; i < 150; i++ {
		h := r.Uint64()
		a.AddHash(h)
		u.AddHash(h)
	}
	for i := 0; i < 150; i++ {
		h := r.Uint64()
		b.AddHash(h)
		u.AddHash(h)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.IsSparse() {
		t.Error("sparse+sparse below break-even should stay sparse")
	}
	if math.Abs(a.Estimate()-u.Estimate()) > 1e-9 {
		t.Errorf("merged estimate %.2f vs unified %.2f", a.Estimate(), u.Estimate())
	}
}

func TestHybridMergeMixedModes(t *testing.T) {
	cfg := Config{T: 2, D: 20, P: 6}
	sparse, _ := NewHybrid(cfg)
	denseH, _ := NewHybrid(cfg)
	union := MustNew(cfg)
	r := rng(54)
	for i := 0; i < 50; i++ {
		h := r.Uint64()
		sparse.AddHash(h)
		union.AddHash(HashFromToken(TokenFromHash(h, DefaultTokenV), DefaultTokenV))
	}
	for i := 0; i < 5000; i++ {
		h := r.Uint64()
		denseH.AddHash(h)
		union.AddHash(HashFromToken(TokenFromHash(h, DefaultTokenV), DefaultTokenV))
	}
	if sparse.IsSparse() == false || denseH.IsSparse() == true {
		t.Fatal("unexpected modes")
	}
	if err := denseH.Merge(sparse); err != nil {
		t.Fatal(err)
	}
	if string(denseH.Densify().RegisterBytes()) != string(union.RegisterBytes()) {
		t.Error("mixed-mode merge differs from unified token stream")
	}
	other, _ := NewHybrid(Config{T: 2, D: 16, P: 6})
	if err := denseH.Merge(other); err == nil {
		t.Error("merge accepted different config")
	}
}

func TestHybridSerializationBothModes(t *testing.T) {
	cfg := Config{T: 2, D: 20, P: 8}
	// Sparse mode round trip.
	h, _ := NewHybrid(cfg)
	r := rng(55)
	for i := 0; i < 100; i++ {
		h.AddHash(r.Uint64())
	}
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h2 Hybrid
	if err := h2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !h2.IsSparse() || h2.Estimate() != h.Estimate() {
		t.Error("sparse round trip changed state")
	}
	// Dense mode round trip.
	for i := 0; i < 5000; i++ {
		h.AddHash(r.Uint64())
	}
	data, err = h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h3 Hybrid
	if err := h3.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if h3.IsSparse() || h3.Estimate() != h.Estimate() {
		t.Error("dense round trip changed state")
	}
	// Corrupt payloads.
	if err := new(Hybrid).UnmarshalBinary([]byte{'X'}); err == nil {
		t.Error("accepted bad magic")
	}
	if err := new(Hybrid).UnmarshalBinary([]byte{'H', 5, 2, 20, 8, 26}); err == nil {
		t.Error("accepted unknown mode")
	}
	bad := append([]byte(nil), data...)
	bad[1] = 0 // dense payload declared sparse
	if err := new(Hybrid).UnmarshalBinary(bad); err == nil {
		t.Error("accepted inconsistent mode")
	}
}

func TestHybridAddString(t *testing.T) {
	h, _ := NewHybrid(Config{T: 2, D: 20, P: 8})
	h.AddString("a")
	h.AddString("a")
	h.AddString("b")
	if got := h.Estimate(); math.Abs(got-2) > 0.1 {
		t.Errorf("estimate %.2f, want 2", got)
	}
}
