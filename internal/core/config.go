// Package core implements ExaLogLog (ELL), the approximate distinct-counting
// data structure of the paper, together with its maximum-likelihood and
// martingale estimators, merging, reduction, and the sparse hash-token mode.
//
// An ExaLogLog sketch consists of m = 2^p registers of 6+t+d bits. Inserting
// an element hashes it to 64 bits; p bits select a register and the
// remaining bits produce an update value distributed according to the
// paper's approximated distribution (8), which mimics a geometric
// distribution with base b = 2^(2^-t). The first 6+t bits of a register
// store the maximum update value u seen; the remaining d bits record which
// of the update values u-1, ..., u-d have occurred.
//
// The three parameters trade space for accuracy and speed:
//
//   - t: shape of the update distribution. t=2 yields the most
//     space-efficient configurations; t=0 recovers HyperLogLog-family
//     sketches (HLL = ELL(0,0), EHLL = ELL(0,1), ULL = ELL(0,2)).
//   - d: number of indicator bits. The paper's recommended configurations
//     are ELL(2,20) (MVP 3.67, 28-bit registers), ELL(2,24) (MVP 3.78,
//     32-bit registers), ELL(1,9) (MVP 3.90, 16-bit registers) and, for
//     martingale estimation, ELL(2,16) (MVP 2.77, 24-bit registers).
//   - p: precision. The relative standard error scales with 2^(-p/2).
package core

import (
	"fmt"

	"exaloglog/internal/bitpack"
)

// Parameter limits. p >= 2 is required by Algorithm 2 (update values must
// fit into 6+t bits); the upper bounds keep register widths within the
// bit-packed array's capabilities and sketch sizes within memory reason.
const (
	MinP = 2
	MaxP = 26
	MaxT = 6
	// MaxD bounds the register width 6+t+d to bitpack.MaxWidth.
	MaxD = bitpack.MaxWidth - 6
)

// Config describes an ExaLogLog parameterization (t, d, p).
type Config struct {
	// T is the update-value distribution parameter; the distribution
	// approximates a geometric distribution with base 2^(2^-T).
	T int
	// D is the number of indicator bits per register.
	D int
	// P is the precision; the sketch has 2^P registers.
	P int
}

// Validate checks the parameter ranges and their combined constraints.
func (c Config) Validate() error {
	if c.T < 0 || c.T > MaxT {
		return fmt.Errorf("exaloglog: t=%d out of range [0, %d]", c.T, MaxT)
	}
	if c.D < 0 || c.D > MaxD {
		return fmt.Errorf("exaloglog: d=%d out of range [0, %d]", c.D, MaxD)
	}
	if c.P < MinP || c.P > MaxP {
		return fmt.Errorf("exaloglog: p=%d out of range [%d, %d]", c.P, MinP, MaxP)
	}
	if w := c.RegisterWidth(); w > bitpack.MaxWidth {
		return fmt.Errorf("exaloglog: register width 6+t+d = %d exceeds %d bits", w, bitpack.MaxWidth)
	}
	if 64-c.P-c.T < 1 {
		return fmt.Errorf("exaloglog: p+t = %d leaves no bits for the update value", c.P+c.T)
	}
	return nil
}

// NumRegisters returns m = 2^p.
func (c Config) NumRegisters() int { return 1 << uint(c.P) }

// RegisterWidth returns the register size in bits, q+d = 6+t+d.
func (c Config) RegisterWidth() uint { return uint(6 + c.T + c.D) }

// MaxUpdateValue returns the largest possible update value
// (65-p-t)·2^t produced by Algorithm 2 with 64-bit hashes.
func (c Config) MaxUpdateValue() uint64 {
	return uint64(65-c.P-c.T) << uint(c.T)
}

// SizeBytes returns the dense in-memory register array size in bytes,
// ceil(m·(6+t+d)/8) — the paper's space accounting for ELL.
func (c Config) SizeBytes() int {
	return int((uint64(c.NumRegisters())*uint64(c.RegisterWidth()) + 7) / 8)
}

// phi evaluates the exponent function φ(k) of equation (11):
// min(t+1+⌊(k-1)/2^t⌋, 64-p). ρ_update(k) = 2^-φ(k) per equation (10).
// The floor division must round toward -∞ so that φ(0) = t.
func (c Config) phi(k int64) int {
	v := int64(c.T) + 1 + (k-1)>>uint(c.T)
	if cap := int64(64 - c.P); v > cap {
		return int(cap)
	}
	return int(v)
}

// omegaNumerator returns the numerator 2^t·(1-t+φ(u)) - u of ω(u) in
// equation (14), so that ω(u) = omegaNumerator(u) / 2^φ(u). ω(u) is the
// total probability of update values greater than u; ω(0) = 1.
func (c Config) omegaNumerator(u int64) int64 {
	return int64(1)<<uint(c.T)*(1-int64(c.T)+int64(c.phi(u))) - u
}

// hInt returns the per-register contribution to both the α' coefficient of
// Algorithm 3 and the (scaled) state-change probability of the martingale
// estimator: h(r)·m·2^(64-p) = h(r)·2^64, an exact integer
//
//	ω(u)·2^(64-p) + Σ_{k=max(1,u-d)}^{u-1} (1-l_{u-k}) · 2^(64-p-φ(k)),
//
// where u = ⌊r/2^d⌋ and l_j are the indicator bits of r. For the all-zero
// register this is 2^(64-p), and the sum over all m registers is 2^64.
func (c Config) hInt(r uint64) uint64 {
	u := int64(r >> uint(c.D))
	sum := uint64(c.omegaNumerator(u)) << uint(64-c.P-c.phi(u))
	if u >= 2 {
		k := u - int64(c.D)
		if k < 1 {
			k = 1
		}
		for ; k < u; k++ {
			if r&(uint64(1)<<uint(int64(c.D)-u+k)) == 0 {
				sum += uint64(1) << uint(64-c.P-c.phi(k))
			}
		}
	}
	return sum
}

// updateValue computes the update value of Algorithm 2 / equation (9) from
// a 64-bit hash: k = nlz(a)·2^t + (low t bits of h) + 1, where a is h with
// its low p+t bits forced to 1.
func (c Config) updateValue(h uint64) uint64 {
	a := h | (uint64(1)<<uint(c.P+c.T) - 1)
	return uint64(nlz(a))<<uint(c.T) + h&(uint64(1)<<uint(c.T)-1) + 1
}

// registerIndex extracts the register index bits h_{p+t-1} ... h_t.
func (c Config) registerIndex(h uint64) int {
	return int(h >> uint(c.T) & (uint64(1)<<uint(c.P) - 1))
}
