package core

import (
	"fmt"
	"sync/atomic"

	"exaloglog/internal/hashing"
)

// AtomicSketch is a lock-free ExaLogLog sketch for concurrent insertion.
//
// Section 2.4 of the paper singles out the ELL(2,24) configuration because
// its 32-bit registers align exactly with a machine word, making updates
// "convenient for concurrent updates using compare-and-swap instructions".
// This type realizes that: registers live in a []uint32 and every update
// is a CAS loop. Because a register update is monotone (the register value
// lattice is a join-semilattice and updateRegister computes an upper
// bound), concurrent insertions linearize and the final state is exactly
// the state sequential insertion of the same elements would produce.
//
// Estimation and serialization take a Snapshot first; the snapshot is a
// plain Sketch and supports the full API (merge, reduce, ML estimation).
type AtomicSketch struct {
	cfg  Config
	regs []uint32
}

// NewAtomic creates an empty lock-free sketch. The configuration's
// register width 6+t+d must be exactly 32 bits (e.g. T:2, D:24).
func NewAtomic(cfg Config) (*AtomicSketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RegisterWidth() != 32 {
		return nil, fmt.Errorf("exaloglog: atomic sketches need 32-bit registers, got 6+%d+%d = %d bits",
			cfg.T, cfg.D, cfg.RegisterWidth())
	}
	return &AtomicSketch{cfg: cfg, regs: make([]uint32, cfg.NumRegisters())}, nil
}

// Config returns the sketch parameters.
func (s *AtomicSketch) Config() Config { return s.cfg }

// AddHash inserts an element by its 64-bit hash. Safe for concurrent use.
func (s *AtomicSketch) AddHash(h uint64) {
	i := s.cfg.registerIndex(h)
	k := s.cfg.updateValue(h)
	for {
		old := atomic.LoadUint32(&s.regs[i])
		updated := uint32(updateRegister(uint64(old), k, s.cfg.D))
		if updated == old {
			return
		}
		if atomic.CompareAndSwapUint32(&s.regs[i], old, updated) {
			return
		}
		// Lost the race: another writer changed the register. The update
		// is monotone, so retrying against the new value converges.
	}
}

// Add inserts a byte-slice element (hashes with the default hash).
func (s *AtomicSketch) Add(element []byte) { s.AddHash(hashing.Wy64(element, 0)) }

// AddString inserts a string element.
func (s *AtomicSketch) AddString(element string) { s.AddHash(hashing.WyString(element, 0)) }

// Snapshot copies the current state into a regular Sketch. Concurrent
// insertions during the copy may be partially included; the result is
// always a valid sketch state (each register is read atomically).
func (s *AtomicSketch) Snapshot() *Sketch {
	out := MustNew(s.cfg)
	for i := range s.regs {
		if v := atomic.LoadUint32(&s.regs[i]); v != 0 {
			out.setRegister(i, uint64(v))
		}
	}
	return out
}

// Estimate returns the ML distinct-count estimate of a snapshot.
func (s *AtomicSketch) Estimate() float64 {
	return s.Snapshot().EstimateML()
}

// SizeBytes returns the register array size: 4 bytes per register.
func (s *AtomicSketch) SizeBytes() int { return 4 * len(s.regs) }
