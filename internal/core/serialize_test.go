package core

import (
	"testing"
)

func TestSerializationRoundTrip(t *testing.T) {
	for _, cfg := range testConfigs {
		s := MustNew(cfg)
		fillRandom(s, 1234, int64(cfg.P))
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != s.SerializedSizeBytes() {
			t.Errorf("cfg %+v: serialized %d bytes, want %d", cfg, len(data), s.SerializedSizeBytes())
		}
		restored, err := FromBinary(data)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if restored.Config() != cfg {
			t.Errorf("cfg %+v: restored config %+v", cfg, restored.Config())
		}
		if string(restored.RegisterBytes()) != string(s.RegisterBytes()) {
			t.Errorf("cfg %+v: register state lost in round trip", cfg)
		}
		// Estimates must agree exactly.
		if restored.EstimateML() != s.EstimateML() {
			t.Errorf("cfg %+v: estimate changed after round trip", cfg)
		}
	}
}

func TestSerializationSizeAccounting(t *testing.T) {
	// Table 2's ELL rows: serialized register arrays of 896 and 1024
	// bytes for (t=2,d=20,p=8) and (t=2,d=24,p=8).
	s1 := MustNew(Config{T: 2, D: 20, P: 8})
	if got := len(s1.RegisterBytes()); got != 896 {
		t.Errorf("ELL(2,20,8) register bytes = %d, want 896", got)
	}
	s2 := MustNew(Config{T: 2, D: 24, P: 8})
	if got := len(s2.RegisterBytes()); got != 1024 {
		t.Errorf("ELL(2,24,8) register bytes = %d, want 1024", got)
	}
}

func TestUnmarshalRejectsCorruptData(t *testing.T) {
	s := MustNew(Config{T: 2, D: 20, P: 4})
	data, _ := s.MarshalBinary()

	short := data[:4]
	if err := new(Sketch).UnmarshalBinary(short); err == nil {
		t.Error("accepted truncated data")
	}

	badMagic := append([]byte(nil), data...)
	badMagic[0] = 'X'
	if err := new(Sketch).UnmarshalBinary(badMagic); err == nil {
		t.Error("accepted bad magic")
	}

	badVersion := append([]byte(nil), data...)
	badVersion[2] = 99
	if err := new(Sketch).UnmarshalBinary(badVersion); err == nil {
		t.Error("accepted unknown version")
	}

	badParams := append([]byte(nil), data...)
	badParams[5] = 1 // p below MinP
	if err := new(Sketch).UnmarshalBinary(badParams); err == nil {
		t.Error("accepted invalid parameters")
	}

	truncated := data[:len(data)-1]
	if err := new(Sketch).UnmarshalBinary(truncated); err == nil {
		t.Error("accepted truncated register array")
	}
}

func TestUnmarshalResetsMartingale(t *testing.T) {
	s := MustNew(Config{T: 2, D: 16, P: 4})
	if err := s.EnableMartingale(); err != nil {
		t.Fatal(err)
	}
	fillRandom(s, 100, 1)
	data, _ := s.MarshalBinary()
	if err := s.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if s.MartingaleEnabled() {
		t.Error("martingale state must not survive deserialization")
	}
}

func TestMergeSerializedSketches(t *testing.T) {
	// A common distributed pattern: serialize on workers, deserialize and
	// merge on the coordinator.
	cfg := Config{T: 2, D: 20, P: 6}
	r := rng(90)
	worker1, worker2, union := MustNew(cfg), MustNew(cfg), MustNew(cfg)
	for i := 0; i < 1000; i++ {
		h := r.Uint64()
		worker1.AddHash(h)
		union.AddHash(h)
	}
	for i := 0; i < 1500; i++ {
		h := r.Uint64()
		worker2.AddHash(h)
		union.AddHash(h)
	}
	d1, _ := worker1.MarshalBinary()
	d2, _ := worker2.MarshalBinary()
	m1, err := FromBinary(d1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FromBinary(d2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Merge(m2); err != nil {
		t.Fatal(err)
	}
	if string(m1.RegisterBytes()) != string(union.RegisterBytes()) {
		t.Error("serialize→merge differs from unified stream")
	}
}
