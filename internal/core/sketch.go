package core

import (
	"fmt"
	"math/bits"

	"exaloglog/internal/bitpack"
	"exaloglog/internal/hashing"
)

// nlz returns the number of leading zeros of the 64-bit value.
func nlz(v uint64) int { return bits.LeadingZeros64(v) }

// Sketch is an ExaLogLog sketch. It supports constant-time insertion,
// merging of equally-parameterized sketches, reduction to smaller
// parameters, and distinct-count estimation via maximum likelihood or,
// optionally, a martingale estimator.
//
// A Sketch is not safe for concurrent mutation; guard it with a mutex or
// use one sketch per goroutine and Merge.
type Sketch struct {
	cfg  Config
	regs *bitpack.Array

	// Optional martingale (HIP) estimator state, enabled by
	// EnableMartingale. muHi/muLo hold the exact state-change probability
	// scaled by 2^64 as a 128-bit integer (initially exactly 2^64), so the
	// estimator increments are reproducible and free of drift beyond
	// float64 rounding of the accumulated sum.
	martingale   bool
	martingaleN  float64
	muHi, muLo   uint64
	changedCount uint64 // number of state-changing insertions (diagnostics)

	// biasC caches the ML bias-correction constant of equation (4)
	// (lazily computed; it depends only on t and d).
	biasC float64
}

// New creates an empty ExaLogLog sketch with the given configuration.
func New(cfg Config) (*Sketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sketch{
		cfg:  cfg,
		regs: bitpack.New(cfg.NumRegisters(), cfg.RegisterWidth()),
	}
	s.resetMartingale()
	return s, nil
}

// FromRegisters builds a sketch directly from raw register values, which
// must all be valid register states below 2^(6+t+d). It is the bridge from
// the hardcoded fast-path variants (internal/fastell) back to the generic
// sketch with its full merge/reduce/serialize API.
func FromRegisters(cfg Config, regs []uint64) (*Sketch, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if len(regs) != cfg.NumRegisters() {
		return nil, fmt.Errorf("exaloglog: got %d register values, config needs %d", len(regs), cfg.NumRegisters())
	}
	limit := uint64(1) << cfg.RegisterWidth()
	for i, r := range regs {
		if r >= limit {
			return nil, fmt.Errorf("exaloglog: register %d value %d exceeds width %d bits", i, r, cfg.RegisterWidth())
		}
		s.regs.Set(i, r)
	}
	return s, nil
}

// MustNew is New but panics on invalid configuration; intended for
// compile-time-constant configurations.
func MustNew(cfg Config) *Sketch {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Recommended configurations from Section 2.4 of the paper.

// RecommendedML returns the most space-efficient configuration for
// ML estimation, ELL(t=2, d=20): MVP 3.67, 43 % less space than HLL.
func RecommendedML(p int) Config { return Config{T: 2, D: 20, P: p} }

// RecommendedFast returns ELL(t=2, d=24): MVP 3.78, 32-bit registers that
// allow the fastest register access and CAS-friendly alignment.
func RecommendedFast(p int) Config { return Config{T: 2, D: 24, P: p} }

// RecommendedCompact returns ELL(t=1, d=9): MVP 3.90 with 16-bit registers.
func RecommendedCompact(p int) Config { return Config{T: 1, D: 9, P: p} }

// RecommendedMartingale returns ELL(t=2, d=16): MVP 2.77 under martingale
// estimation, 33 % less space than HLL, 24-bit registers.
func RecommendedMartingale(p int) Config { return Config{T: 2, D: 16, P: p} }

// ConfigHLL returns the HyperLogLog special case ELL(0,0).
func ConfigHLL(p int) Config { return Config{T: 0, D: 0, P: p} }

// ConfigEHLL returns the ExtendedHyperLogLog special case ELL(0,1).
func ConfigEHLL(p int) Config { return Config{T: 0, D: 1, P: p} }

// ConfigULL returns the UltraLogLog special case ELL(0,2).
func ConfigULL(p int) Config { return Config{T: 0, D: 2, P: p} }

// Config returns the sketch parameters.
func (s *Sketch) Config() Config { return s.cfg }

// NumRegisters returns m = 2^p.
func (s *Sketch) NumRegisters() int { return s.cfg.NumRegisters() }

// Register returns the raw value of register i (for tests and tooling).
func (s *Sketch) Register(i int) uint64 { return s.regs.Get(i) }

// setRegister overwrites register i (for tests and deserialization).
func (s *Sketch) setRegister(i int, v uint64) { s.regs.Set(i, v) }

// SizeBytes returns the dense register array size in bytes.
func (s *Sketch) SizeBytes() int { return s.regs.SizeBytes() }

// MemoryFootprint returns the approximate total in-memory size in bytes:
// the register array plus fixed struct overhead. This mirrors the paper's
// "total space allocated by the whole data structure" accounting in
// Table 2.
func (s *Sketch) MemoryFootprint() int {
	const structOverhead = 96 // Sketch + bitpack.Array headers, pointers
	return s.regs.SizeBytes() + structOverhead
}

// Reset restores the empty state (and martingale state, if enabled).
func (s *Sketch) Reset() {
	s.regs.Reset()
	s.resetMartingale()
	s.changedCount = 0
}

// Clone returns a deep copy, including martingale state.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.regs = s.regs.Clone()
	return &c
}

// Add inserts an element given as a byte slice. The element is hashed with
// the package's default 64-bit hash (WyHash-style).
func (s *Sketch) Add(element []byte) {
	s.AddHash(hashing.Wy64(element, 0))
}

// AddString inserts a string element without allocating.
func (s *Sketch) AddString(element string) {
	s.AddHash(hashing.WyString(element, 0))
}

// AddUint64 inserts a 64-bit integer element.
func (s *Sketch) AddUint64(element uint64) {
	s.AddHash(hashing.Wy64Uint64(element, 0))
}

// AddHash inserts an element by its 64-bit hash value, implementing
// Algorithm 2 of the paper. The operation is constant-time, branch-light
// and allocation-free. Inserting the same hash again never changes the
// state (idempotency), and insertion order never matters (commutativity).
func (s *Sketch) AddHash(h uint64) {
	i := s.cfg.registerIndex(h)
	k := s.cfg.updateValue(h)
	r := s.regs.Get(i)
	rNew := updateRegister(r, k, s.cfg.D)
	if rNew != r {
		s.noteChange(r, rNew)
		s.regs.Set(i, rNew)
	}
}

// AddPair applies update value k directly to register i, bypassing the
// hash-splitting of Algorithm 2. It is the entry point for the
// waiting-time simulation strategy of Section 5.1, where (register,
// update value) occurrence events are sampled instead of hashes; it
// updates the martingale state exactly like AddHash.
func (s *Sketch) AddPair(i int, k uint64) {
	r := s.regs.Get(i)
	rNew := updateRegister(r, k, s.cfg.D)
	if rNew != r {
		s.noteChange(r, rNew)
		s.regs.Set(i, rNew)
	}
}

// updateRegister applies update value k to register value r with d
// indicator bits (the core of Algorithm 2, implemented verbatim).
//
// On a new maximum the old indicator bits — with the occurrence bit 2^d for
// the previous maximum prepended — are shifted right by the distance delta
// so they keep referring to the same absolute update values. Note that for
// an empty register this leaves a set bit at position d-k that nominally
// marks "update value 0"; Algorithm 2 produces it, it is never read by any
// estimator (Algorithm 3 and h only inspect values >= 1), and keeping it
// preserves exact state-identity with merge (Algorithm 5) and reduction
// (Algorithm 6).
func updateRegister(r, k uint64, d int) uint64 {
	u := r >> uint(d)
	if k > u {
		delta := k - u
		// Go defines x>>s as 0 for s >= 64, so a large delta is safe.
		shifted := (uint64(1)<<uint(d) + r&(uint64(1)<<uint(d)-1)) >> delta
		return k<<uint(d) | shifted
	}
	if k < u && int64(d)+int64(k)-int64(u) >= 0 {
		// Record the occurrence of a smaller update value in range.
		return r | uint64(1)<<uint(int64(d)+int64(k)-int64(u))
	}
	return r
}

// MergeRegister combines two register values with identical parameters
// (Algorithm 5). The result is the register value that direct insertion of
// the union of both update streams would have produced.
func MergeRegister(r, rp uint64, d int) uint64 {
	u := r >> uint(d)
	up := rp >> uint(d)
	switch {
	case u > up && up > 0:
		sh := u - up
		if sh >= 64 {
			return r
		}
		return r | (uint64(1)<<uint(d)+rp&(uint64(1)<<uint(d)-1))>>sh
	case up > u && u > 0:
		sh := up - u
		if sh >= 64 {
			return rp
		}
		return rp | (uint64(1)<<uint(d)+r&(uint64(1)<<uint(d)-1))>>sh
	default:
		return r | rp
	}
}

// Merge folds other into s. Both sketches must have identical parameters;
// use ReduceTo first to align differently-configured sketches (they must
// share the same t). Merging invalidates s's martingale estimate (the
// martingale estimator is only defined for a single insertion stream), so
// the martingale state is disabled on s.
func (s *Sketch) Merge(other *Sketch) error {
	if s.cfg != other.cfg {
		return fmt.Errorf("exaloglog: cannot merge config %+v with %+v; reduce to common parameters first", s.cfg, other.cfg)
	}
	s.martingale = false
	m := s.cfg.NumRegisters()
	for i := 0; i < m; i++ {
		r := s.regs.Get(i)
		rp := other.regs.Get(i)
		if merged := MergeRegister(r, rp, s.cfg.D); merged != r {
			s.regs.Set(i, merged)
		}
	}
	return nil
}

// IsEmpty reports whether no insertion has modified the sketch.
func (s *Sketch) IsEmpty() bool {
	m := s.cfg.NumRegisters()
	for i := 0; i < m; i++ {
		if s.regs.Get(i) != 0 {
			return false
		}
	}
	return true
}
