package core

import (
	"fmt"

	"exaloglog/internal/compress"
)

// Compressed serialization — the Section 6 ("future work") extension.
//
// The paper observes that, according to Figures 6 and 7, much lower MVPs
// are achievable with optimal compression of the register state, and
// suggests entropy coding driven by the known register distribution
// (Section 3.1) as a way to approach the theoretical limit. This file
// implements that: registers are entropy-coded bit by bit with an
// adaptive binary arithmetic coder whose contexts condition on
//
//   - the bit's role (maximum-value field vs indicator field),
//   - for the max field: the bit position and the value of the previously
//     coded (more significant) bits being all-zero or not, which captures
//     the geometric-like distribution of u, and
//   - for indicator bits: the distance j = u - k to the maximum,
//     bucketed, which captures that P(indicator set) depends mainly on j.
//
// No distribution parameters are transmitted: the coder adapts, so the
// result is valid for every n and stays within a few percent of the
// empirical entropy. The format is self-framing (config header + payload).

const (
	// Context layout: max-field bits get 2 contexts per position
	// (prefix-zero / prefix-nonzero); indicator bits get one context per
	// distance bucket.
	maxFieldCtxPerBit = 2
	indicatorBuckets  = 16
)

func (c Config) compressedContexts() int {
	q := 6 + c.T
	return q*maxFieldCtxPerBit + indicatorBuckets
}

// indicatorCtx maps the distance j = u-k (1-based) to its context id.
func (c Config) indicatorCtx(j int64) int {
	q := 6 + c.T
	b := int(j - 1)
	if b >= indicatorBuckets {
		b = indicatorBuckets - 1
	}
	return q*maxFieldCtxPerBit + b
}

// MarshalCompressed serializes the sketch with entropy coding. It is
// substantially smaller than MarshalBinary once the sketch is reasonably
// filled — approaching the compressed-MVP predictions of Figure 6 — at
// the cost of a serialization step that is two orders of magnitude slower
// than the plain register copy (the same trade-off the CPC sketch makes).
func (s *Sketch) MarshalCompressed() ([]byte, error) {
	cfg := s.cfg
	q := 6 + cfg.T
	enc := compress.NewEncoder()
	model := compress.NewModel(cfg.compressedContexts())
	m := cfg.NumRegisters()
	for i := 0; i < m; i++ {
		r := s.regs.Get(i)
		u := r >> uint(cfg.D)
		// Max field, most significant bit first; context switches once a
		// nonzero prefix has been seen.
		prefixNonzero := 0
		for b := q - 1; b >= 0; b-- {
			bit := int(u >> uint(b) & 1)
			enc.EncodeBit(model, b*maxFieldCtxPerBit+prefixNonzero, bit)
			if bit == 1 {
				prefixNonzero = 1
			}
		}
		// Indicator bits for distances j = 1..min(d, u): bit position
		// d-j. (For u = 0 the register is all zero; nothing to code.)
		for j := int64(1); j <= int64(cfg.D) && j <= int64(u); j++ {
			bit := int(r >> uint(int64(cfg.D)-j) & 1)
			enc.EncodeBit(model, cfg.indicatorCtx(j), bit)
		}
	}
	body := enc.Close()
	out := make([]byte, 0, 4+len(body))
	out = append(out, 'E', 'C', byte(cfg.T), byte(cfg.D))
	out = append(out, byte(cfg.P))
	out = append(out, body...)
	return out, nil
}

// UnmarshalCompressed restores a sketch serialized by MarshalCompressed.
func (s *Sketch) UnmarshalCompressed(data []byte) error {
	if len(data) < 5 {
		return fmt.Errorf("exaloglog: compressed data too short")
	}
	if data[0] != 'E' || data[1] != 'C' {
		return fmt.Errorf("exaloglog: bad compressed magic %q", data[:2])
	}
	cfg := Config{T: int(data[2]), D: int(data[3]), P: int(data[4])}
	if err := cfg.Validate(); err != nil {
		return err
	}
	out, err := New(cfg)
	if err != nil {
		return err
	}
	q := 6 + cfg.T
	dec := compress.NewDecoder(data[5:])
	model := compress.NewModel(cfg.compressedContexts())
	m := cfg.NumRegisters()
	for i := 0; i < m; i++ {
		var u uint64
		prefixNonzero := 0
		for b := q - 1; b >= 0; b-- {
			bit := dec.DecodeBit(model, b*maxFieldCtxPerBit+prefixNonzero)
			u = u<<1 | uint64(bit)
			if bit == 1 {
				prefixNonzero = 1
			}
		}
		r := u << uint(cfg.D)
		for j := int64(1); j <= int64(cfg.D) && j <= int64(u); j++ {
			if dec.DecodeBit(model, cfg.indicatorCtx(j)) == 1 {
				r |= uint64(1) << uint(int64(cfg.D)-j)
			}
		}
		if r != 0 {
			out.setRegister(i, r)
		}
	}
	*s = *out
	return nil
}
