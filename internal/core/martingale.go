package core

import (
	"math"
	"math/bits"
)

// EnableMartingale turns on martingale (HIP) estimation for this sketch
// (Section 3.3, Algorithm 4). It must be called on an empty sketch: the
// martingale estimate depends on observing every state change, so it cannot
// be reconstructed retroactively. Martingale estimation yields a smaller
// error (MVP 2.77 for ELL(2,16) vs 3.67 for the best ML configuration) but
// is only valid for a single, unmerged insertion stream; Merge disables it.
func (s *Sketch) EnableMartingale() error {
	if !s.IsEmpty() {
		return errNotEmpty
	}
	s.martingale = true
	s.resetMartingale()
	return nil
}

// MartingaleEnabled reports whether martingale tracking is active.
func (s *Sketch) MartingaleEnabled() bool { return s.martingale }

// EstimateMartingale returns the martingale estimate. It returns NaN if
// martingale tracking is not (or no longer) enabled.
func (s *Sketch) EstimateMartingale() float64 {
	if !s.martingale {
		return math.NaN()
	}
	return s.martingaleN
}

// StateChangeProbability returns the probability μ that inserting one more
// previously unseen element changes the sketch state (equation (23)). For
// an empty sketch μ = 1. The value is reconstructed from the exact 128-bit
// fixed-point accumulator, so it is reproducible across insertion orders.
func (s *Sketch) StateChangeProbability() float64 {
	return math.Ldexp(float64(s.muHi), 0) + math.Ldexp(float64(s.muLo), -64)
}

// resetMartingale restores μ = 1 (scaled: 2^64 as hi=1, lo=0) and a zero
// estimate.
func (s *Sketch) resetMartingale() {
	s.martingaleN = 0
	s.muHi, s.muLo = 1, 0
}

var errNotEmpty = errorString("exaloglog: martingale estimation must be enabled on an empty sketch")

type errorString string

func (e errorString) Error() string { return string(e) }

// noteChange implements Algorithm 4: when a register transitions from r to
// rNew (r < rNew), the estimate grows by 1/μ and μ shrinks by
// h(r) - h(rNew). Both h values are exact dyadic rationals scaled by 2^64
// (see Config.hInt), so μ is maintained without accumulation drift.
func (s *Sketch) noteChange(r, rNew uint64) {
	s.changedCount++
	if !s.martingale {
		return
	}
	mu := math.Ldexp(float64(s.muHi), 64) + float64(s.muLo)
	s.martingaleN += math.Ldexp(1, 64) / mu
	delta := s.cfg.hInt(r) - s.cfg.hInt(rNew)
	var borrow uint64
	s.muLo, borrow = bits.Sub64(s.muLo, delta, 0)
	s.muHi -= borrow
}

// StateChanges returns how many insertions modified the sketch state so
// far (a diagnostic; duplicate and non-informative insertions don't count).
func (s *Sketch) StateChanges() uint64 { return s.changedCount }
