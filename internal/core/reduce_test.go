package core

import (
	"testing"
	"testing/quick"
)

// TestReduceEqualsDirectRecording reproduces the paper's reducibility test
// (Section 5): insert identical elements into sketches with different
// configurations and check the states agree after reduction to common
// parameters. This exercises Algorithm 6 including the NLZ-extension
// branch for saturated update values.
func TestReduceEqualsDirectRecording(t *testing.T) {
	cases := []struct {
		from Config
		d, p int
	}{
		{Config{T: 2, D: 20, P: 8}, 20, 6}, // p-only reduction
		{Config{T: 2, D: 20, P: 8}, 12, 8}, // d-only reduction
		{Config{T: 2, D: 20, P: 8}, 8, 5},  // both
		{Config{T: 2, D: 20, P: 6}, 0, 4},  // drop all indicator bits
		{Config{T: 0, D: 2, P: 9}, 1, 7},   // ULL → EHLL-ish
		{Config{T: 1, D: 9, P: 7}, 9, 3},   // deep p reduction
		{Config{T: 0, D: 0, P: 8}, 0, 6},   // plain HLL reduction
		{Config{T: 3, D: 5, P: 6}, 2, 4},
	}
	for _, c := range cases {
		r := rng(int64(c.from.P)*1000 + int64(c.d)*10 + int64(c.p))
		big := MustNew(c.from)
		small := MustNew(Config{T: c.from.T, D: c.d, P: c.p})
		for i := 0; i < 5000; i++ {
			h := r.Uint64()
			big.AddHash(h)
			small.AddHash(h)
		}
		reduced, err := big.ReduceTo(c.d, c.p)
		if err != nil {
			t.Fatalf("%+v -> d=%d p=%d: %v", c.from, c.d, c.p, err)
		}
		if string(reduced.RegisterBytes()) != string(small.RegisterBytes()) {
			t.Errorf("%+v -> d=%d p=%d: reduced state differs from direct recording", c.from, c.d, c.p)
		}
	}
}

// TestReduceSaturatedNLZ drives the NLZ-saturation branch deterministically
// with crafted hashes whose upper bits are zero (maximal NLZ at the
// original precision).
func TestReduceSaturatedNLZ(t *testing.T) {
	from := Config{T: 2, D: 8, P: 6}
	toP := 3
	big := MustNew(from)
	small := MustNew(Config{T: from.T, D: from.D, P: toP})
	// Hashes with all upper bits zero: h = index<<t | lowbits only.
	for idx := 0; idx < from.NumRegisters(); idx++ {
		for low := uint64(0); low < 4; low++ {
			h := uint64(idx)<<uint(from.T) | low
			big.AddHash(h)
			small.AddHash(h)
		}
	}
	reduced, err := big.ReduceTo(from.D, toP)
	if err != nil {
		t.Fatal(err)
	}
	if string(reduced.RegisterBytes()) != string(small.RegisterBytes()) {
		t.Error("saturated-NLZ reduction differs from direct recording")
	}
}

func TestReduceIdentity(t *testing.T) {
	cfg := Config{T: 2, D: 20, P: 6}
	s := MustNew(cfg)
	fillRandom(s, 1000, 77)
	same, err := s.ReduceTo(cfg.D, cfg.P)
	if err != nil {
		t.Fatal(err)
	}
	if string(same.RegisterBytes()) != string(s.RegisterBytes()) {
		t.Error("identity reduction changed the state")
	}
}

func TestReduceDOnlyIsRightShift(t *testing.T) {
	// Reducing only d right-shifts every register by d-d' bits
	// (Section 4.2).
	cfg := Config{T: 2, D: 20, P: 5}
	s := MustNew(cfg)
	fillRandom(s, 2000, 78)
	red, err := s.ReduceTo(12, cfg.P)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.NumRegisters(); i++ {
		if got, want := red.Register(i), s.Register(i)>>8; got != want {
			t.Fatalf("register %d: reduced %d, want %d", i, got, want)
		}
	}
}

func TestReduceRejectsInvalid(t *testing.T) {
	s := MustNew(Config{T: 2, D: 20, P: 6})
	if _, err := s.ReduceTo(24, 6); err == nil {
		t.Error("accepted d increase")
	}
	if _, err := s.ReduceTo(20, 8); err == nil {
		t.Error("accepted p increase")
	}
	if _, err := s.ReduceTo(-1, 6); err == nil {
		t.Error("accepted negative d")
	}
	if _, err := s.ReduceTo(20, 1); err == nil {
		t.Error("accepted p below MinP")
	}
}

// TestMergeCompatible checks the migration scenario of Section 4.1:
// sketches with equal t but different d and p merge after implicit
// reduction, and the result equals direct recording of the union at the
// common parameters.
func TestMergeCompatible(t *testing.T) {
	r := rng(80)
	a := MustNew(Config{T: 2, D: 20, P: 8})
	b := MustNew(Config{T: 2, D: 16, P: 6})
	union := MustNew(Config{T: 2, D: 16, P: 6})
	for i := 0; i < 3000; i++ {
		h := r.Uint64()
		a.AddHash(h)
		union.AddHash(h)
	}
	for i := 0; i < 2000; i++ {
		h := r.Uint64()
		b.AddHash(h)
		union.AddHash(h)
	}
	merged, err := MergeCompatible(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Config(); got != (Config{T: 2, D: 16, P: 6}) {
		t.Fatalf("merged config = %+v", got)
	}
	if string(merged.RegisterBytes()) != string(union.RegisterBytes()) {
		t.Error("MergeCompatible state differs from direct recording at common parameters")
	}
	if _, err := MergeCompatible(a, MustNew(Config{T: 1, D: 9, P: 6})); err == nil {
		t.Error("MergeCompatible accepted different t")
	}
}

// TestQuickReduceEquivalence drives Algorithm 6 with randomized
// configurations, reduction targets and data, asserting the fundamental
// reducibility property every time: reduce(record(S)) == record'(S).
func TestQuickReduceEquivalence(t *testing.T) {
	f := func(seed int64, tSeed, dSeed, pSeed, dNewSeed, pNewSeed uint8, nSeed uint16) bool {
		tt := int(tSeed) % 3
		d := int(dSeed) % 12
		p := int(pSeed)%6 + MinP
		from := Config{T: tt, D: d, P: p}
		if from.Validate() != nil {
			return true
		}
		dNew := 0
		if d > 0 {
			dNew = int(dNewSeed) % (d + 1)
		}
		pNew := MinP + int(pNewSeed)%(p-MinP+1)
		n := int(nSeed)%3000 + 1

		r := rng(seed)
		big := MustNew(from)
		small := MustNew(Config{T: tt, D: dNew, P: pNew})
		for i := 0; i < n; i++ {
			h := r.Uint64()
			big.AddHash(h)
			small.AddHash(h)
		}
		reduced, err := big.ReduceTo(dNew, pNew)
		if err != nil {
			return false
		}
		return string(reduced.RegisterBytes()) == string(small.RegisterBytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickReduceComposition: reducing in two steps equals reducing in
// one (the reduction operation composes).
func TestQuickReduceComposition(t *testing.T) {
	f := func(seed int64, nSeed uint16) bool {
		cfg := Config{T: 2, D: 20, P: 9}
		s := MustNew(cfg)
		r := rng(seed)
		n := int(nSeed)%5000 + 10
		for i := 0; i < n; i++ {
			s.AddHash(r.Uint64())
		}
		oneStep, err := s.ReduceTo(8, 4)
		if err != nil {
			return false
		}
		mid, err := s.ReduceTo(14, 6)
		if err != nil {
			return false
		}
		twoStep, err := mid.ReduceTo(8, 4)
		if err != nil {
			return false
		}
		return string(oneStep.RegisterBytes()) == string(twoStep.RegisterBytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickReduceMergeCommute: reduce(merge(a,b)) == merge(reduce(a),
// reduce(b)) — reduction is a sketch homomorphism.
func TestQuickReduceMergeCommute(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{T: 1, D: 9, P: 7}
		r := rng(seed)
		a, b := MustNew(cfg), MustNew(cfg)
		for i := 0; i < 800; i++ {
			a.AddHash(r.Uint64())
		}
		for i := 0; i < 1200; i++ {
			b.AddHash(r.Uint64())
		}
		merged := a.Clone()
		if err := merged.Merge(b); err != nil {
			return false
		}
		lhs, err := merged.ReduceTo(4, 4)
		if err != nil {
			return false
		}
		ra, err := a.ReduceTo(4, 4)
		if err != nil {
			return false
		}
		rb, err := b.ReduceTo(4, 4)
		if err != nil {
			return false
		}
		if err := ra.Merge(rb); err != nil {
			return false
		}
		return string(lhs.RegisterBytes()) == string(ra.RegisterBytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestReduceThenEstimate: the reduced sketch must still estimate well
// (it is exactly the lower-precision recording of the same stream).
func TestReduceThenEstimate(t *testing.T) {
	s := MustNew(Config{T: 2, D: 20, P: 10})
	const n = 20000
	fillRandom(s, n, 81)
	red, err := s.ReduceTo(20, 6)
	if err != nil {
		t.Fatal(err)
	}
	got := red.EstimateML()
	if got < n*0.75 || got > n*1.25 {
		t.Errorf("reduced-sketch estimate %.0f too far from %d", got, n)
	}
}
