package core

import (
	"testing"
	"testing/quick"

	"exaloglog/internal/hashing"
)

func TestTokenSetSerializationRoundTrip(t *testing.T) {
	for _, v := range []int{1, 6, 12, 26, 40, 52, 58} {
		ts, err := NewTokenSet(v)
		if err != nil {
			t.Fatal(err)
		}
		state := uint64(v)
		for i := 0; i < 5000; i++ {
			ts.AddHash(hashing.SplitMix64(&state))
		}
		data, err := ts.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := TokenSetFromBinary(data)
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		if back.V() != v || back.Len() != ts.Len() {
			t.Fatalf("v=%d: round trip v=%d len=%d, want v=%d len=%d", v, back.V(), back.Len(), v, ts.Len())
		}
		a, b := ts.Tokens(), back.Tokens()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("v=%d: token %d differs: %#x != %#x", v, i, b[i], a[i])
			}
		}
		// Payload size matches the paper's (v+6)-bit accounting plus the
		// small header.
		want := 4 + uvarintLen(uint64(ts.Len())) + (ts.Len()*(v+6)+7)/8
		if len(data) != want {
			t.Fatalf("v=%d: serialized %d bytes, want %d", v, len(data), want)
		}
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func TestToken32ListSerializationRoundTrip(t *testing.T) {
	tl := NewToken32List()
	state := uint64(9)
	for i := 0; i < 20000; i++ {
		tl.AddHash(hashing.SplitMix64(&state))
	}
	data, err := tl.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Token32List
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Len() != tl.Len() {
		t.Fatalf("round trip len %d != %d", back.Len(), tl.Len())
	}
	a, b := tl.Tokens(), back.Tokens()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("token %d differs", i)
		}
	}
	// Cross-format: a Token32List payload loads as a TokenSet with v=26.
	ts, err := TokenSetFromBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if ts.V() != Token32V || ts.Len() != tl.Len() {
		t.Fatalf("cross-format v=%d len=%d", ts.V(), ts.Len())
	}
	// But a TokenSet payload with v != 26 must be rejected by Token32List.
	other, _ := NewTokenSet(12)
	other.AddHash(42)
	odata, _ := other.MarshalBinary()
	if err := back.UnmarshalBinary(odata); err == nil {
		t.Error("v=12 payload accepted by Token32List")
	}
}

func TestTokenSerializationEmpty(t *testing.T) {
	ts, _ := NewTokenSet(26)
	data, err := ts.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := TokenSetFromBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("empty round trip has %d tokens", back.Len())
	}
}

func TestTokenSerializationCorrupt(t *testing.T) {
	ts, _ := NewTokenSet(26)
	state := uint64(2)
	for i := 0; i < 100; i++ {
		ts.AddHash(hashing.SplitMix64(&state))
	}
	good, _ := ts.MarshalBinary()
	for name, corrupt := range map[string][]byte{
		"empty":       {},
		"short":       good[:3],
		"bad magic":   append([]byte("XX"), good[2:]...),
		"bad version": append([]byte{'E', 'T', 9}, good[3:]...),
		"bad v":       append([]byte{'E', 'T', 1, 99}, good[4:]...),
		"truncated":   good[:len(good)-1],
		"extended":    append(append([]byte{}, good...), 0),
	} {
		if _, err := TokenSetFromBinary(corrupt); err == nil {
			t.Errorf("%s payload accepted", name)
		}
	}
	// Non-ascending payloads (forged) must be rejected: duplicate the
	// first token by zeroing the payload.
	forged := append([]byte{}, good...)
	for i := 5; i < len(forged); i++ {
		forged[i] = 0
	}
	if _, err := TokenSetFromBinary(forged); err == nil {
		t.Error("non-ascending payload accepted")
	}
}

// TestTokenSerializationQuick round-trips random token sets at random v.
func TestTokenSerializationQuick(t *testing.T) {
	err := quick.Check(func(hashes []uint64, vRaw uint8) bool {
		v := int(vRaw)%(TokenMaxV-TokenMinV+1) + TokenMinV
		ts, err := NewTokenSet(v)
		if err != nil {
			return false
		}
		for _, h := range hashes {
			ts.AddHash(h)
		}
		data, err := ts.MarshalBinary()
		if err != nil {
			return false
		}
		back, err := TokenSetFromBinary(data)
		if err != nil {
			return false
		}
		if back.Len() != ts.Len() {
			return false
		}
		a, b := ts.Tokens(), back.Tokens()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTokenSerializationEstimatePreserved: estimates agree exactly after
// a round trip (the token multiset is preserved).
func TestTokenSerializationEstimatePreserved(t *testing.T) {
	ts, _ := NewTokenSet(20)
	state := uint64(4)
	for i := 0; i < 10000; i++ {
		ts.AddHash(hashing.SplitMix64(&state))
	}
	data, _ := ts.MarshalBinary()
	back, err := TokenSetFromBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := ts.EstimateML(), back.EstimateML(); a != b {
		t.Fatalf("estimate changed across serialization: %g != %g", a, b)
	}
}
