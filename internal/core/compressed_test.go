package core

import (
	"testing"

	"exaloglog/internal/mvp"
)

func TestCompressedRoundTrip(t *testing.T) {
	for _, cfg := range testConfigs {
		for _, n := range []int{0, 1, 100, 20000} {
			s := MustNew(cfg)
			fillRandom(s, n, int64(n)+int64(cfg.D)*3)
			data, err := s.MarshalCompressed()
			if err != nil {
				t.Fatal(err)
			}
			var restored Sketch
			if err := restored.UnmarshalCompressed(data); err != nil {
				t.Fatalf("cfg %+v n=%d: %v", cfg, n, err)
			}
			if restored.Config() != cfg {
				t.Errorf("cfg %+v: restored as %+v", cfg, restored.Config())
			}
			if string(restored.RegisterBytes()) != string(s.RegisterBytes()) {
				t.Errorf("cfg %+v n=%d: compressed round trip lost state", cfg, n)
			}
		}
	}
}

func TestCompressedRejectsCorrupt(t *testing.T) {
	if err := new(Sketch).UnmarshalCompressed(nil); err == nil {
		t.Error("accepted empty data")
	}
	if err := new(Sketch).UnmarshalCompressed([]byte{'X', 'C', 2, 20, 8, 0}); err == nil {
		t.Error("accepted bad magic")
	}
	if err := new(Sketch).UnmarshalCompressed([]byte{'E', 'C', 9, 20, 8, 0}); err == nil {
		t.Error("accepted invalid parameters")
	}
}

// TestCompressedSmallerThanDense: the Section 6 claim — once the sketch
// is filled, entropy coding shrinks the state well below the dense
// (6+t+d)-bit registers, toward the compressed-MVP regime of Figure 6.
func TestCompressedSmallerThanDense(t *testing.T) {
	cfg := Config{T: 2, D: 20, P: 10}
	s := MustNew(cfg)
	fillRandom(s, 100000, 9)
	dense := len(s.RegisterBytes())
	comp, err := s.MarshalCompressed()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(comp)) / float64(dense)
	if ratio > 0.85 {
		t.Errorf("compressed/dense = %.3f; entropy coding should save >15%%", ratio)
	}
	// The theoretical headroom (Figure 6 vs Figure 4) is
	// CompressedML/DenseML ≈ 2.36/3.67 ≈ 0.64 of the dense size at this
	// configuration; the adaptive coder cannot beat that.
	theory := mvp.CompressedML(mvp.Base(2), 20) / mvp.DenseML(mvp.Base(2), 8, 20)
	if ratio < theory*0.95 {
		t.Errorf("compressed/dense = %.3f below the theoretical bound %.3f — coder must be broken", ratio, theory)
	}
}

// TestCompressedApproachesEntropyBound compares the measured compressed
// size against the register-distribution entropy (Section 3.1 PMF) for a
// small-d configuration where the entropy is enumerable.
func TestCompressedApproachesEntropyBound(t *testing.T) {
	cfg := Config{T: 0, D: 2, P: 10} // ULL
	const n = 5000
	s := MustNew(cfg)
	fillRandom(s, n, 4)
	comp, err := s.MarshalCompressed()
	if err != nil {
		t.Fatal(err)
	}
	bitsPerReg := float64(len(comp)-5) * 8 / float64(cfg.NumRegisters())
	entropy := cfg.RegisterEntropy(n)
	if bitsPerReg < entropy*0.97 {
		t.Errorf("%.3f coded bits/register below entropy %.3f — impossible", bitsPerReg, entropy)
	}
	if bitsPerReg > entropy*1.35+0.5 {
		t.Errorf("%.3f coded bits/register too far above entropy %.3f", bitsPerReg, entropy)
	}
}

func TestCompressedEmptySketchTiny(t *testing.T) {
	s := MustNew(Config{T: 2, D: 20, P: 12})
	comp, err := s.MarshalCompressed()
	if err != nil {
		t.Fatal(err)
	}
	// 4096 empty registers must code to a tiny fraction of the 14336
	// dense bytes (all-zero bits under one context).
	if len(comp) > 300 {
		t.Errorf("empty sketch compressed to %d bytes", len(comp))
	}
}
