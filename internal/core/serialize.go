package core

import (
	"encoding/binary"
	"fmt"

	"exaloglog/internal/bitpack"
)

// Serialization format: a fixed 8-byte header followed by the packed
// register array. The header is
//
//	bytes 0-1  magic "EL"
//	byte  2    format version (1)
//	byte  3    t
//	byte  4    d
//	byte  5    p
//	bytes 6-7  reserved (zero)
//
// so the total size is 8 + ceil(m·(6+t+d)/8) bytes. The register bytes are
// exactly the dense bit-array; RegisterBytes exposes them alone for
// size-accounting experiments that mirror the paper's Table 2 (which counts
// registers only).
const (
	serializedHeaderSize = 8
	formatVersion        = 1
)

// SerializedSizeBytes returns the length of MarshalBinary's output.
func (s *Sketch) SerializedSizeBytes() int {
	return serializedHeaderSize + s.regs.SizeBytes()
}

// RegisterBytes returns a copy of the raw packed register array,
// ceil(m·(6+t+d)/8) bytes — the paper's serialization-size accounting.
func (s *Sketch) RegisterBytes() []byte {
	return append([]byte(nil), s.regs.Bytes()...)
}

// MarshalBinary serializes the sketch. Serialization is a plain copy of
// the register array plus an 8-byte header; no compression or
// consolidation is performed, which is why it is fast (Section 5.3).
// Martingale state is intentionally not serialized: it is stream-local.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, s.SerializedSizeBytes())
	buf[0], buf[1] = 'E', 'L'
	buf[2] = formatVersion
	buf[3] = byte(s.cfg.T)
	buf[4] = byte(s.cfg.D)
	buf[5] = byte(s.cfg.P)
	binary.LittleEndian.PutUint16(buf[6:], 0)
	copy(buf[serializedHeaderSize:], s.regs.Bytes())
	return buf, nil
}

// UnmarshalBinary deserializes a sketch produced by MarshalBinary,
// replacing the receiver's configuration and state.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < serializedHeaderSize {
		return fmt.Errorf("exaloglog: serialized data too short (%d bytes)", len(data))
	}
	if data[0] != 'E' || data[1] != 'L' {
		return fmt.Errorf("exaloglog: bad magic %q", data[:2])
	}
	if data[2] != formatVersion {
		return fmt.Errorf("exaloglog: unsupported format version %d", data[2])
	}
	cfg := Config{T: int(data[3]), D: int(data[4]), P: int(data[5])}
	if err := cfg.Validate(); err != nil {
		return err
	}
	regs, err := bitpack.FromBytes(data[serializedHeaderSize:], cfg.NumRegisters(), cfg.RegisterWidth())
	if err != nil {
		return err
	}
	s.cfg = cfg
	s.regs = regs
	s.martingale = false
	s.resetMartingale()
	s.changedCount = 0
	return nil
}

// FromBinary constructs a sketch from serialized data.
func FromBinary(data []byte) (*Sketch, error) {
	s := &Sketch{}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}
