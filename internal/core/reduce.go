package core

import (
	"fmt"
	"math/bits"
)

// ReduceTo returns a new sketch with parameters (t, d', p'), d' <= d and
// p' <= p, whose state is identical to what direct recording of the same
// elements into a sketch with the smaller parameters would have produced
// (Algorithm 6). This losslessness is what makes ELL reducible: precision
// can be lowered without breaking mergeability with older records.
//
// The t parameter cannot change; sketches with different t are fundamentally
// incompatible (Section 4.1).
func (s *Sketch) ReduceTo(dNew, pNew int) (*Sketch, error) {
	cfg := s.cfg
	if dNew > cfg.D || dNew < 0 {
		return nil, fmt.Errorf("exaloglog: cannot reduce d from %d to %d", cfg.D, dNew)
	}
	if pNew > cfg.P || pNew < MinP {
		return nil, fmt.Errorf("exaloglog: cannot reduce p from %d to %d", cfg.P, pNew)
	}
	out, err := New(Config{T: cfg.T, D: dNew, P: pNew})
	if err != nil {
		return nil, err
	}

	// a is the smallest update value whose number of leading zeros was
	// saturated at 64-t-p in equation (9); only those update values grow
	// when index bits are reassigned to the NLZ range.
	a := uint64(64-cfg.T-cfg.P)<<uint(cfg.T) + 1
	mNew := out.cfg.NumRegisters()
	sub := 1 << uint(cfg.P-pNew)
	for i := 0; i < mNew; i++ {
		var rNew uint64
		for j := 0; j < sub; j++ {
			r := s.regs.Get(i+j*mNew) >> uint(cfg.D-dNew)
			u := r >> uint(dNew)
			if u >= a {
				// The p-p' dropped index bits equal j; their leading
				// zeros extend the NLZ at the reduced precision, raising
				// every update value >= a of this sub-register by s.
				leading := (cfg.P - pNew) - (64 - bits.LeadingZeros64(uint64(j)))
				sFix := uint64(leading) << uint(cfg.T)
				if leading > 0 {
					// v low indicator bits refer to update values < a,
					// which stay fixed; their offset to the grown maximum
					// increases by s, so they shift right by s.
					v := int64(dNew) + int64(a) - int64(u)
					if v > 0 {
						r = r>>uint64(v)<<uint64(v) + (r&(uint64(1)<<uint64(v)-1))>>sFix
					}
					r += sFix << uint(dNew)
				}
			}
			rNew = MergeRegister(r, rNew, dNew)
		}
		out.regs.Set(i, rNew)
	}
	return out, nil
}

// MergeCompatible merges two sketches that share t but may differ in d and
// p, by first reducing both to the common parameters
// (t, min(d,d'), min(p,p')) as described in Section 4.1. It returns the
// merged sketch; neither input is modified.
func MergeCompatible(a, b *Sketch) (*Sketch, error) {
	if a.cfg.T != b.cfg.T {
		return nil, fmt.Errorf("exaloglog: cannot merge t=%d with t=%d", a.cfg.T, b.cfg.T)
	}
	d := a.cfg.D
	if b.cfg.D < d {
		d = b.cfg.D
	}
	p := a.cfg.P
	if b.cfg.P < p {
		p = b.cfg.P
	}
	ra, err := a.ReduceTo(d, p)
	if err != nil {
		return nil, err
	}
	rb, err := b.ReduceTo(d, p)
	if err != nil {
		return nil, err
	}
	if err := ra.Merge(rb); err != nil {
		return nil, err
	}
	return ra, nil
}
