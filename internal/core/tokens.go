package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Hash tokens implement the sparse mode of Section 4.3: instead of
// allocating the full register array up front, a sketch can collect
// compact (v+6)-bit tokens derived from the 64-bit hash values and convert
// them to a dense sketch only at the break-even point. A token keeps the
// least significant v bits of the hash plus the number of leading zeros of
// the remaining 64-v bits (6 bits), which is sufficient for insertion into
// any ELL sketch with p+t <= v.

// TokenMinV and TokenMaxV bound the token parameter v. v >= 1 makes the
// NLZ fit into 6 bits; v <= 26 keeps tokens within 32 bits, which the
// paper singles out as the practical sweet spot.
const (
	TokenMinV = 1
	TokenMaxV = 58
)

// TokenFromHash compresses a 64-bit hash value into a (v+6)-bit hash token:
// the low v bits of the hash shifted left by 6, plus the NLZ of the
// remaining 64-v bits.
func TokenFromHash(h uint64, v int) uint64 {
	low := h & (uint64(1)<<uint(v) - 1)
	n := bits.LeadingZeros64(h | (uint64(1)<<uint(v) - 1))
	return low<<6 + uint64(n)
}

// HashFromToken reconstructs a representative 64-bit hash value from a
// token (Section 4.3). The reconstruction is not the original hash, but it
// is equivalent for insertion into any ELL sketch with p+t <= v: it has
// the same low v bits and the same NLZ of the upper 64-v bits.
func HashFromToken(w uint64, v int) uint64 {
	s := w & 63
	// 2^(64-s) - 2^v + (w >> 6); uint64 wrap-around handles s = 0.
	return uint64(1)<<(64-s) - uint64(1)<<uint(v) + w>>6
}

// TokenSet collects distinct hash tokens for a given v. The zero value is
// not usable; create instances with NewTokenSet.
type TokenSet struct {
	v      int
	tokens map[uint64]struct{}
}

// NewTokenSet creates an empty token set with parameter v.
func NewTokenSet(v int) (*TokenSet, error) {
	if v < TokenMinV || v > TokenMaxV {
		return nil, fmt.Errorf("exaloglog: token parameter v=%d out of range [%d, %d]", v, TokenMinV, TokenMaxV)
	}
	return &TokenSet{v: v, tokens: make(map[uint64]struct{})}, nil
}

// V returns the token parameter.
func (ts *TokenSet) V() int { return ts.v }

// Len returns the number of distinct tokens collected.
func (ts *TokenSet) Len() int { return len(ts.tokens) }

// AddHash converts a 64-bit hash to a token and records it.
func (ts *TokenSet) AddHash(h uint64) {
	ts.tokens[TokenFromHash(h, ts.v)] = struct{}{}
}

// AddToken records an already-computed token.
func (ts *TokenSet) AddToken(w uint64) {
	ts.tokens[w] = struct{}{}
}

// Tokens returns the collected tokens in ascending order.
func (ts *TokenSet) Tokens() []uint64 {
	out := make([]uint64, 0, len(ts.tokens))
	for w := range ts.tokens {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SizeBytes returns the serialized size of the token collection:
// ceil(len·(v+6)/8) bytes, the sparse-mode space accounting.
func (ts *TokenSet) SizeBytes() int {
	return int((uint64(len(ts.tokens))*uint64(ts.v+6) + 7) / 8)
}

// DenseBreakEven returns the number of tokens at which the dense
// representation of cfg becomes smaller than the token list.
func (ts *TokenSet) DenseBreakEven(cfg Config) int {
	perToken := ts.v + 6
	return (cfg.SizeBytes()*8 + perToken - 1) / perToken
}

// ToSketch converts the token set into a dense ELL sketch with the given
// configuration, which must satisfy p+t <= v. The result is identical to
// inserting the original elements directly (Section 4.3).
func (ts *TokenSet) ToSketch(cfg Config) (*Sketch, error) {
	if cfg.P+cfg.T > ts.v {
		return nil, fmt.Errorf("exaloglog: tokens with v=%d cannot feed a sketch with p+t=%d", ts.v, cfg.P+cfg.T)
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for w := range ts.tokens {
		s.AddHash(HashFromToken(w, ts.v))
	}
	return s, nil
}

// Merge adds all tokens of other (with equal v) into ts.
func (ts *TokenSet) Merge(other *TokenSet) error {
	if ts.v != other.v {
		return fmt.Errorf("exaloglog: cannot merge token sets with v=%d and v=%d", ts.v, other.v)
	}
	for w := range other.tokens {
		ts.tokens[w] = struct{}{}
	}
	return nil
}

// EstimateML estimates the distinct count directly from the token set by
// maximum likelihood (Section 4.3, Algorithm 7). The token log-likelihood
// has the same shape (26) as the register likelihood with m = 1 and
// exponents v+1 .. 64, so the same Newton solver applies.
func (ts *TokenSet) EstimateML() float64 {
	c := ts.MLCoefficients()
	return SolveML(c, 1)
}

// MLCoefficients computes (α, β) from the collected tokens following
// Algorithm 7. α' starts at 2^64 (held as a 128-bit hi/lo pair rather than
// relying on unsigned wrap-around) and each token subtracts 2^(64-j).
func (ts *TokenSet) MLCoefficients() Coefficients {
	beta := make([]int32, 64-ts.v)
	aHi := uint64(1)
	aLo := uint64(0)
	for w := range ts.tokens {
		j := int(w&63) + ts.v + 1
		if j > 64 {
			j = 64
		}
		beta[j-ts.v-1]++
		dec := uint64(1) << uint(64-j)
		var borrow uint64
		aLo, borrow = bits.Sub64(aLo, dec, 0)
		aHi -= borrow
	}
	alpha := math.Ldexp(float64(aHi), 0) + math.Ldexp(float64(aLo), -64)
	return Coefficients{Alpha: alpha, Beta: beta, Lo: ts.v + 1}
}
