package spike

import (
	"math"
	"math/rand"
	"testing"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestNewValidation(t *testing.T) {
	if _, err := New(100); err == nil {
		t.Error("accepted non-power-of-two bucket count")
	}
	if _, err := New(2); err == nil {
		t.Error("accepted too few buckets")
	}
	s, err := New(128)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBuckets() != 128 || s.SizeBytes() != 1024 {
		t.Errorf("buckets=%d size=%d, want 128 and 1024 (Table 2 row)", s.NumBuckets(), s.SizeBytes())
	}
	if s.NumCells() != 2048 {
		t.Errorf("cells=%d, want 2048 (16 per bucket)", s.NumCells())
	}
}

func TestCellPacking(t *testing.T) {
	s, _ := New(4)
	for i := 0; i < s.NumCells(); i++ {
		s.setCell(i, i%16)
	}
	for i := 0; i < s.NumCells(); i++ {
		if got := s.cell(i); got != i%16 {
			t.Fatalf("cell %d = %d, want %d", i, got, i%16)
		}
	}
}

func TestOffsetAdvances(t *testing.T) {
	// With n >> cells, every cell fills and the stepwise offset must
	// advance; estimates stay consistent across the advance.
	s, _ := New(4) // 64 cells
	r := rng(77)
	for i := 0; i < 200000; i++ {
		s.AddHash(r.Uint64())
	}
	if s.Offset() == 0 {
		t.Error("offset never advanced at n >> cells")
	}
	est := s.Estimate()
	if est < 100000 || est > 400000 {
		t.Errorf("estimate %.0f implausible for n=200000", est)
	}
}

func TestUpdateValueDistribution(t *testing.T) {
	// k must follow P(k) = (3/4)·4^-(k-1) (geometric with success 3/4,
	// the distribution SpikeSketch is built on).
	s, _ := New(128)
	r := rng(1)
	const samples = 1 << 18
	counts := map[int]int{}
	for i := 0; i < samples; i++ {
		counts[s.updateValue(r.Uint64())]++
	}
	for k := 1; k <= 5; k++ {
		want := float64(samples) * 0.75 * math.Pow(0.25, float64(k-1))
		got := float64(counts[k])
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("k=%d: got %.0f, want ≈%.0f", k, got, want)
		}
	}
}

func TestSmoothingDropsAboutOneThird(t *testing.T) {
	// The emulated stepwise smoothing must make an empty sketch ignore
	// ≈ 36 % of single-element insertions — the artifact the ExaLogLog
	// paper criticizes (Section 5.2).
	r := rng(2)
	const trials = 20000
	dropped := 0
	for i := 0; i < trials; i++ {
		s, _ := New(128)
		s.AddHash(r.Uint64())
		empty := true
		for _, b := range s.buckets {
			if b != 0 {
				empty = false
				break
			}
		}
		if empty {
			dropped++
		}
	}
	frac := float64(dropped) / trials
	if frac < 0.30 || frac > 0.42 {
		t.Errorf("empty-sketch drop fraction = %.3f, want ≈ 0.36", frac)
	}
}

func TestIdempotentCommutative(t *testing.T) {
	r := rng(3)
	hashes := make([]uint64, 2000)
	for i := range hashes {
		hashes[i] = r.Uint64()
	}
	a, _ := New(64)
	for _, h := range hashes {
		a.AddHash(h)
		a.AddHash(h)
	}
	b, _ := New(64)
	r.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })
	for _, h := range hashes {
		b.AddHash(h)
	}
	for i := range a.buckets {
		if a.buckets[i] != b.buckets[i] {
			t.Fatalf("bucket %d differs after shuffle+duplicates", i)
		}
	}
}

func TestMergeEqualsUnifiedStream(t *testing.T) {
	r := rng(4)
	a, _ := New(128)
	b, _ := New(128)
	u, _ := New(128)
	for i := 0; i < 3000; i++ {
		h := r.Uint64()
		a.AddHash(h)
		u.AddHash(h)
	}
	for i := 0; i < 4000; i++ {
		h := r.Uint64()
		b.AddHash(h)
		u.AddHash(h)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.buckets {
		if a.buckets[i] != u.buckets[i] {
			t.Fatalf("bucket %d: merged %#x, unified %#x", i, a.buckets[i], u.buckets[i])
		}
	}
	c, _ := New(64)
	if err := a.Merge(c); err == nil {
		t.Error("merge accepted different bucket count")
	}
}

func TestEstimateMidRangeAccuracy(t *testing.T) {
	// At n >> 10^4 the smoothing artifact washes out; the paper measures
	// ≈ 2.26 % RMSE at n = 10^6 with 128 buckets. A single run should be
	// well within 5σ ≈ 11 %.
	for _, n := range []int{100000, 1000000} {
		s, _ := New(128)
		r := rng(int64(n))
		for i := 0; i < n; i++ {
			s.AddHash(r.Uint64())
		}
		got := s.Estimate()
		if relErr := math.Abs(got-float64(n)) / float64(n); relErr > 0.12 {
			t.Errorf("n=%d: estimate %.0f (rel err %.3f)", n, got, relErr)
		}
	}
}

func TestEstimateSmallRangeInflatedError(t *testing.T) {
	// Reproduce the paper's criticism quantitatively: across many runs at
	// n = 1, the estimate is 0 (100 % error) roughly 36 % of the time.
	r := rng(8)
	zeros := 0
	const runs = 5000
	for i := 0; i < runs; i++ {
		s, _ := New(128)
		s.AddHash(r.Uint64())
		if s.Estimate() == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / runs
	if frac < 0.28 || frac > 0.44 {
		t.Errorf("P(estimate=0 | n=1) = %.3f, want ≈ 0.36", frac)
	}
}

func TestEstimateEmpty(t *testing.T) {
	s, _ := New(128)
	if got := s.Estimate(); got != 0 {
		t.Errorf("empty estimate = %g, want 0", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	s, _ := New(128)
	r := rng(9)
	for i := 0; i < 10000; i++ {
		s.AddHash(r.Uint64())
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored Sketch
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := range s.buckets {
		if restored.buckets[i] != s.buckets[i] {
			t.Fatalf("bucket %d lost in round trip", i)
		}
	}
	if restored.Estimate() != s.Estimate() {
		t.Error("estimate changed after round trip")
	}
	if err := new(Sketch).UnmarshalBinary([]byte{7, 0}); err == nil {
		t.Error("accepted malformed payload")
	}
}
