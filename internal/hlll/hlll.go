// Package hlll implements a HyperLogLogLog-style sketch, re-created from
// the description in Karppa & Pagh (KDD 2022) and in the ExaLogLog paper's
// related-work section: HyperLogLog register values are stored in 3 bits
// relative to a global base offset, with out-of-range registers kept in a
// sparse exception list. The base is chosen to minimize the exception
// count, which compresses HLL by roughly 40 % but gives up the
// constant-time insert: whenever exceptions accumulate, every register is
// rewritten (O(m)), and on average inserts are far slower than plain HLL —
// the trade-off Table 2 and Figure 11 of the paper illustrate.
//
// The estimator is the original HyperLogLog estimator (with linear
// counting for small ranges), matching the reference implementation; its
// hard estimator switch produces the estimation-error spike around
// n ≈ 2.5m that the paper points out in Figure 10.
package hlll

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"exaloglog/internal/bitpack"
	"exaloglog/internal/hll"
)

// MinP and MaxP bound the precision parameter.
const (
	MinP = 2
	MaxP = 26
)

// regBits is the compressed register width. All 8 relative values 0..7
// are stored inline; registers outside the window live in the exception
// map, which is authoritative (an entry there overrides the 3-bit field).
const (
	regBits = 3
	window  = 1 << regBits // values base .. base+window-1 are inline
)

// Sketch is a HyperLogLogLog-style sketch with 2^p compressed registers.
type Sketch struct {
	p    int
	base uint8          // global offset B
	regs *bitpack.Array // 3-bit values relative to base; 7 = exception
	exc  map[int]uint8  // absolute values for out-of-window registers
	// rebaseAt is the exception count that triggers the next O(m) rebase
	// sweep (with hysteresis so a stable distribution doesn't thrash).
	rebaseAt int
	// rebases counts O(m) sweeps (diagnostics for the performance
	// experiments).
	rebases int
}

// New creates an empty sketch with 2^p registers.
func New(p int) (*Sketch, error) {
	if p < MinP || p > MaxP {
		return nil, fmt.Errorf("hlll: p=%d out of range [%d, %d]", p, MinP, MaxP)
	}
	m := 1 << uint(p)
	return &Sketch{
		p:        p,
		regs:     bitpack.New(m, regBits),
		exc:      make(map[int]uint8),
		rebaseAt: rebaseThreshold(m),
	}, nil
}

// rebaseThreshold is the baseline exception budget: ~3 % of the registers
// (at least 4). Beyond it a rebase sweep attempts to re-center the window.
func rebaseThreshold(m int) int {
	t := m / 32
	if t < 4 {
		t = 4
	}
	return t
}

// Precision returns p.
func (s *Sketch) Precision() int { return s.p }

// NumRegisters returns 2^p.
func (s *Sketch) NumRegisters() int { return 1 << uint(s.p) }

// Rebases returns how many O(m) rebase sweeps have happened (diagnostic).
func (s *Sketch) Rebases() int { return s.rebases }

// Register returns the absolute value of register i.
func (s *Sketch) Register(i int) uint8 {
	if v, ok := s.exc[i]; ok {
		return v
	}
	return s.base + uint8(s.regs.Get(i))
}

// AddHash inserts an element by its 64-bit hash (HLL's Algorithm 1 update
// rule on the compressed representation).
func (s *Sketch) AddHash(h uint64) {
	idx := int(h >> uint(64-s.p))
	masked := h &^ (^uint64(0) << uint(64-s.p))
	k := uint8(bits.LeadingZeros64(masked) - s.p + 1)
	s.update(idx, k)
}

func (s *Sketch) update(idx int, k uint8) {
	if k <= s.Register(idx) {
		return
	}
	s.store(idx, k)
	if len(s.exc) > s.rebaseAt {
		s.rebase()
	}
}

// store writes absolute value k to register idx under the current base.
func (s *Sketch) store(idx int, k uint8) {
	rel := int(k) - int(s.base)
	if rel >= 0 && rel < window {
		s.regs.Set(idx, uint64(rel))
		delete(s.exc, idx)
	} else {
		s.exc[idx] = k
		s.regs.Set(idx, 0) // keep the packed array canonical
	}
}

// rebase chooses the base that minimizes the exception count and rewrites
// all registers — the O(m) step that makes inserts only amortized
// constant.
func (s *Sketch) rebase() {
	m := s.NumRegisters()
	var histo [66]int
	for i := 0; i < m; i++ {
		histo[s.Register(i)]++
	}
	// Pick the window [b, b+6] covering the most registers.
	bestB, bestCover := 0, -1
	cover := 0
	for v := 0; v < window && v < len(histo); v++ {
		cover += histo[v]
	}
	for b := 0; b+window <= len(histo); b++ {
		if cover > bestCover {
			bestCover, bestB = cover, b
		}
		cover -= histo[b]
		if b+window < len(histo) {
			cover += histo[b+window]
		}
	}
	newBase := uint8(bestB)
	if newBase != s.base {
		old := make([]uint8, m)
		for i := 0; i < m; i++ {
			old[i] = s.Register(i)
		}
		s.base = newBase
		for i := 0; i < m; i++ {
			s.store(i, old[i])
		}
		s.rebases++
	}
	// Hysteresis: if the optimal window still leaves many exceptions,
	// accept them and only re-try after they grow substantially.
	s.rebaseAt = rebaseThreshold(m)
	if len(s.exc) >= s.rebaseAt {
		s.rebaseAt = len(s.exc) + len(s.exc)/2 + 4
	}
}

// Merge folds other into s (register-wise maximum of absolute values).
func (s *Sketch) Merge(other *Sketch) error {
	if s.p != other.p {
		return fmt.Errorf("hlll: cannot merge p=%d with p=%d", s.p, other.p)
	}
	for i := 0; i < s.NumRegisters(); i++ {
		if v := other.Register(i); v > 0 {
			s.update(i, v)
		}
	}
	return nil
}

// Estimate returns the original HLL estimator's value.
func (s *Sketch) Estimate() float64 {
	histo := make([]int32, 66-s.p)
	for i := 0; i < s.NumRegisters(); i++ {
		histo[s.Register(i)]++
	}
	return hll.EstimateRawHistogram(histo, s.p)
}

// SizeBytes returns the compressed register array plus exception entries.
func (s *Sketch) SizeBytes() int {
	return s.regs.SizeBytes() + 5*len(s.exc)
}

// MemoryFootprint approximates total allocated bytes including the
// exception map's overhead.
func (s *Sketch) MemoryFootprint() int {
	return s.regs.SizeBytes() + 48 + 16*len(s.exc) + 64
}

// MarshalBinary serializes base, registers and sorted exceptions.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 2+s.regs.SizeBytes()+4+5*len(s.exc))
	out = append(out, byte(s.p), s.base)
	out = append(out, s.regs.Bytes()...)
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(len(s.exc)))
	out = append(out, buf[:]...)
	keys := make([]int, 0, len(s.exc))
	for k := range s.exc {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		binary.LittleEndian.PutUint32(buf[:], uint32(k))
		out = append(out, buf[:]...)
		out = append(out, s.exc[k])
	}
	return out, nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 2 {
		return fmt.Errorf("hlll: data too short")
	}
	p := int(data[0])
	if p < MinP || p > MaxP {
		return fmt.Errorf("hlll: bad precision %d", p)
	}
	m := 1 << uint(p)
	regBytes := (m*regBits + 7) / 8
	need := 2 + regBytes + 4
	if len(data) < need {
		return fmt.Errorf("hlll: data too short for p=%d", p)
	}
	regs, err := bitpack.FromBytes(data[2:2+regBytes], m, regBits)
	if err != nil {
		return err
	}
	nExc := int(binary.LittleEndian.Uint32(data[2+regBytes:]))
	pos := need
	if len(data) != pos+5*nExc {
		return fmt.Errorf("hlll: exception section malformed")
	}
	s.p = p
	s.base = data[1]
	s.regs = regs
	s.exc = make(map[int]uint8, nExc)
	for i := 0; i < nExc; i++ {
		k := int(binary.LittleEndian.Uint32(data[pos:]))
		s.exc[k] = data[pos+4]
		pos += 5
	}
	s.rebaseAt = rebaseThreshold(m)
	if len(s.exc) >= s.rebaseAt {
		s.rebaseAt = len(s.exc) + len(s.exc)/2 + 4
	}
	return nil
}
