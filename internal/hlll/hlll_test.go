package hlll

import (
	"math"
	"math/rand"
	"testing"

	"exaloglog/internal/hll"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestRegistersMatchPlainHLL(t *testing.T) {
	// The compressed representation must be lossless for the maximum
	// values: absolute register values equal a plain HLL's at all times.
	s, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := hll.NewDense8(8)
	r := rng(1)
	for i := 0; i < 50000; i++ {
		h := r.Uint64()
		s.AddHash(h)
		ref.AddHash(h)
		if i%4999 == 0 {
			for j := 0; j < s.NumRegisters(); j++ {
				if s.Register(j) != ref.Register(j) {
					t.Fatalf("after %d inserts, register %d: hlll=%d hll=%d (base=%d)",
						i+1, j, s.Register(j), ref.Register(j), s.base)
				}
			}
		}
	}
	if s.base == 0 {
		t.Error("base never advanced at n >> m")
	}
	if s.Rebases() == 0 {
		t.Error("no rebase sweeps recorded")
	}
}

func TestEstimateAccuracy(t *testing.T) {
	for _, n := range []int{1000, 100000} {
		s, _ := New(10)
		r := rng(int64(n))
		for i := 0; i < n; i++ {
			s.AddHash(r.Uint64())
		}
		got := s.Estimate()
		if relErr := math.Abs(got-float64(n)) / float64(n); relErr > 0.17 {
			t.Errorf("n=%d: estimate %.1f (rel err %.3f)", n, got, relErr)
		}
	}
}

func TestSizeSavingsVsHLL6(t *testing.T) {
	// The selling point: ~40 % less space than 6-bit HLL once filled.
	s, _ := New(11)
	h6, _ := hll.NewDense6(11)
	r := rng(3)
	for i := 0; i < 1000000/2; i++ {
		h := r.Uint64()
		s.AddHash(h)
		h6.AddHash(h)
	}
	ratio := float64(s.SizeBytes()) / float64(h6.SizeBytes())
	if ratio > 0.75 {
		t.Errorf("HLLL size ratio vs 6-bit HLL = %.2f; want < 0.75", ratio)
	}
}

func TestMergeEqualsUnifiedStream(t *testing.T) {
	r := rng(5)
	a, _ := New(7)
	b, _ := New(7)
	u, _ := New(7)
	for i := 0; i < 5000; i++ {
		h := r.Uint64()
		a.AddHash(h)
		u.AddHash(h)
	}
	for i := 0; i < 8000; i++ {
		h := r.Uint64()
		b.AddHash(h)
		u.AddHash(h)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumRegisters(); i++ {
		if a.Register(i) != u.Register(i) {
			t.Fatalf("register %d: merged %d, unified %d", i, a.Register(i), u.Register(i))
		}
	}
	c, _ := New(8)
	if err := a.Merge(c); err == nil {
		t.Error("merge accepted different p")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	s, _ := New(6)
	r := rng(7)
	for i := 0; i < 20000; i++ {
		s.AddHash(r.Uint64())
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored Sketch
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.NumRegisters(); i++ {
		if restored.Register(i) != s.Register(i) {
			t.Fatalf("register %d lost in round trip", i)
		}
	}
	if err := new(Sketch).UnmarshalBinary([]byte{6}); err == nil {
		t.Error("accepted truncated data")
	}
	if err := new(Sketch).UnmarshalBinary([]byte{40, 0, 0}); err == nil {
		t.Error("accepted bad precision")
	}
}

func TestIdempotent(t *testing.T) {
	s, _ := New(6)
	r := rng(9)
	hashes := make([]uint64, 1000)
	for i := range hashes {
		hashes[i] = r.Uint64()
		s.AddHash(hashes[i])
	}
	before := make([]uint8, s.NumRegisters())
	for i := range before {
		before[i] = s.Register(i)
	}
	for _, h := range hashes {
		s.AddHash(h)
	}
	for i := range before {
		if s.Register(i) != before[i] {
			t.Fatalf("duplicate insertion changed register %d", i)
		}
	}
}
