package fastell

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
)

// ELL2420 is a hardcoded ExaLogLog sketch with t=2, d=20: 28-bit registers
// with two registers packed into exactly 7 bytes, the paper's most
// space-efficient recommended configuration (MVP 3.67, Section 2.4:
// "since two registers can be packed into exactly 7 bytes, register access
// is not too complicated"). State semantics are identical to core.Sketch
// with Config{T:2, D:20, P:p}.
type ELL2420 struct {
	p       int
	mask    uint64 // m - 1
	lowMask uint64 // (1 << (p+2)) - 1
	// buf holds m/2 seven-byte groups, each packing registers 2g (low
	// 28 bits) and 2g+1 (high 28 bits) little-endian, plus one padding
	// byte so groups can be accessed with unconditional 8-byte loads.
	buf   []byte
	biasC float64
}

const (
	d20      = 20
	width20  = 28
	mask28   = 1<<width20 - 1
	mask56   = 1<<(2*width20) - 1
	groupLen = 7
)

// New2420 returns an empty hardcoded ELL(2,20) sketch with 2^p registers.
func New2420(p int) (*ELL2420, error) {
	if p < core.MinP || p > core.MaxP {
		return nil, fmt.Errorf("fastell: p=%d out of range [%d, %d]", p, core.MinP, core.MaxP)
	}
	m := 1 << uint(p)
	return &ELL2420{
		p:       p,
		mask:    uint64(m - 1),
		lowMask: uint64(1)<<uint(p+tParam) - 1,
		buf:     make([]byte, m/2*groupLen+1),
		biasC:   core.BiasCorrectionConstant(tParam, d20),
	}, nil
}

// P returns the precision parameter.
func (s *ELL2420) P() int { return s.p }

// NumRegisters returns m = 2^p.
func (s *ELL2420) NumRegisters() int { return int(s.mask) + 1 }

// SizeBytes returns the dense register array size in bytes, m·28/8
// (the single padding byte used for aligned loads is excluded, matching
// the paper's space accounting).
func (s *ELL2420) SizeBytes() int { return len(s.buf) - 1 }

// Add inserts a byte-slice element using the package default hash.
func (s *ELL2420) Add(element []byte) { s.AddHash(hashing.Wy64(element, 0)) }

// AddString inserts a string element without allocating.
func (s *ELL2420) AddString(element string) { s.AddHash(hashing.WyString(element, 0)) }

// AddUint64 inserts a 64-bit integer element.
func (s *ELL2420) AddUint64(element uint64) { s.AddHash(hashing.Wy64Uint64(element, 0)) }

// register reads register i out of its 7-byte group.
func (s *ELL2420) register(i int) uint64 {
	base := (i >> 1) * groupLen
	g := binary.LittleEndian.Uint64(s.buf[base:])
	if i&1 == 0 {
		return g & mask28
	}
	return g >> width20 & mask28
}

// setRegister writes register i into its 7-byte group, leaving the
// neighboring register and the following group untouched.
func (s *ELL2420) setRegister(i int, r uint64) {
	base := (i >> 1) * groupLen
	g := binary.LittleEndian.Uint64(s.buf[base:])
	if i&1 == 0 {
		g = g&^uint64(mask28) | r
	} else {
		g = g&^uint64(mask28<<width20) | r<<width20
	}
	binary.LittleEndian.PutUint64(s.buf[base:], g)
}

// AddHash inserts an element by its 64-bit hash (Algorithm 2 with t=2,
// d=20 constant-folded, on the 7-byte-pair register layout).
func (s *ELL2420) AddHash(h uint64) {
	i := int(h >> tParam & s.mask)
	a := h | s.lowMask
	k := uint64(bits.LeadingZeros64(a))<<tParam + h&tMask + 1
	r := s.register(i)
	u := r >> d20
	switch {
	case k > u:
		delta := k - u
		s.setRegister(i, k<<d20|(1<<d20+r&(1<<d20-1))>>delta)
	case k < u && u-k <= d20:
		s.setRegister(i, r|1<<(d20+k-u))
	}
}

// Merge folds other into s. Both sketches must share p.
func (s *ELL2420) Merge(other *ELL2420) error {
	if s.p != other.p {
		return fmt.Errorf("fastell: cannot merge p=%d with p=%d", s.p, other.p)
	}
	m := s.NumRegisters()
	for i := 0; i < m; i++ {
		r := s.register(i)
		if merged := core.MergeRegister(r, other.register(i), d20); merged != r {
			s.setRegister(i, merged)
		}
	}
	return nil
}

// Estimate returns the bias-corrected maximum-likelihood distinct-count
// estimate.
func (s *ELL2420) Estimate() float64 {
	m := s.NumRegisters()
	c := coefficients(s.p, d20, m, s.register)
	raw := core.SolveML(c, float64(m))
	return raw / (1 + s.biasC/float64(m))
}

// Reset restores the empty state.
func (s *ELL2420) Reset() {
	for i := range s.buf {
		s.buf[i] = 0
	}
}

// Register returns the raw value of register i (for tests and tooling).
func (s *ELL2420) Register(i int) uint64 { return s.register(i) }

// ToSketch converts to a generic core.Sketch with identical state.
func (s *ELL2420) ToSketch() *core.Sketch {
	m := s.NumRegisters()
	vals := make([]uint64, m)
	for i := 0; i < m; i++ {
		vals[i] = s.register(i)
	}
	sk, err := core.FromRegisters(core.Config{T: tParam, D: d20, P: s.p}, vals)
	if err != nil {
		panic(err) // unreachable: register values are width-bounded by construction
	}
	return sk
}

// From2420Sketch converts a generic ELL(2,20) sketch into the hardcoded
// representation. The input must have Config{T:2, D:20}.
func From2420Sketch(sk *core.Sketch) (*ELL2420, error) {
	cfg := sk.Config()
	if cfg.T != tParam || cfg.D != d20 {
		return nil, fmt.Errorf("fastell: sketch has config %+v, need t=2 d=20", cfg)
	}
	s, err := New2420(cfg.P)
	if err != nil {
		return nil, err
	}
	m := s.NumRegisters()
	for i := 0; i < m; i++ {
		s.setRegister(i, sk.Register(i))
	}
	return s, nil
}
