// Package fastell provides hardcoded ExaLogLog variants for the two
// recommended t=2 configurations, ELL(2,24) and ELL(2,20).
//
// The generic sketch in internal/core supports arbitrary (t, d, p) and
// therefore pays for parameterized shifts, masks and a general bit-packed
// register array on every insertion. Section 5.3 of the paper notes that
// "hardcoding these values could potentially further improve its
// performance"; this package is that experiment. Both variants produce
// bit-for-bit the same register states as the generic sketch (verified by
// the cross-validation tests), so they can be converted losslessly with
// ToSketch and then merged, reduced and serialized through the full API.
//
//   - ELL2424 stores its 32-bit registers in a plain []uint32 — the
//     "very fast register access" layout of Section 2.4.
//   - ELL2420 packs two 28-bit registers into exactly 7 bytes — the most
//     space-efficient configuration (MVP 3.67) with the paper's
//     "two registers per 7 bytes" addressing.
//
// The ablation benchmarks (BenchmarkAblationHardcodedInsert and friends)
// quantify the speedup over the generic implementation.
package fastell

import (
	"math"
	"math/bits"

	"exaloglog/internal/core"
)

// Shared constants of the t=2 configurations.
const (
	tParam = 2
	// Update values for t=2: k = nlz(a)·4 + (h&3) + 1, equation (9).
	tMask = 1<<tParam - 1
)

// phi2 is φ(k) of equation (11) hardcoded for t=2:
// min(3 + (k-1)/4, 64-p).
func phi2(k int64, p int) int {
	v := 3 + (k-1)>>2
	if cap := int64(64 - p); v > cap {
		return int(cap)
	}
	return int(v)
}

// omegaNumerator2 is the numerator 2^t·(1-t+φ(u)) - u of ω(u) in equation
// (14) for t=2, i.e. 4·(φ(u)-1) - u.
func omegaNumerator2(u int64, p int) int64 {
	return 4*(int64(phi2(u, p))-1) - u
}

// coefficients accumulates the log-likelihood coefficients (Algorithm 3)
// for a t=2 sketch from a register visitor. d is the indicator-bit count,
// p the precision; next must yield all m = 2^p register values.
func coefficients(p, d int, m int, reg func(i int) uint64) core.Coefficients {
	lo := tParam + 1
	hi := 64 - p
	beta := make([]int32, hi-lo+1)
	var aHi, aLo uint64
	for i := 0; i < m; i++ {
		r := reg(i)
		u := int64(r >> uint(d))
		var carry uint64
		aLo, carry = bits.Add64(aLo, uint64(omegaNumerator2(u, p))<<uint(64-p-phi2(u, p)), 0)
		aHi += carry
		if u >= 1 {
			beta[phi2(u, p)-lo]++
			if u >= 2 {
				k := u - int64(d)
				if k < 1 {
					k = 1
				}
				for ; k < u; k++ {
					j := phi2(k, p)
					if r&(uint64(1)<<uint(int64(d)-u+k)) == 0 {
						aLo, carry = bits.Add64(aLo, uint64(1)<<uint(64-p-j), 0)
						aHi += carry
					} else {
						beta[j-lo]++
					}
				}
			}
		}
	}
	alpha := math.Ldexp(float64(aHi), p) + math.Ldexp(float64(aLo), p-64)
	return core.Coefficients{Alpha: alpha, Beta: beta, Lo: lo}
}
