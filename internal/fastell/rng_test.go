package fastell

import "exaloglog/internal/hashing"

// rng64 is a SplitMix64 stream used to simulate hash values of distinct
// elements in tests (the paper's Section 5.1 methodology).
type rng64 uint64

// Next advances the stream and returns the next pseudo-random hash.
func (r *rng64) Next() uint64 { return hashing.SplitMix64((*uint64)(r)) }
