package fastell

import (
	"math"
	"testing"
	"testing/quick"

	"exaloglog/internal/core"
)

// newGeneric returns a generic core sketch with the given t=2 config.
func newGeneric(t *testing.T, d, p int) *core.Sketch {
	t.Helper()
	s, err := core.New(core.Config{T: 2, D: d, P: p})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestELL2424MatchesGeneric inserts the same random hash stream into the
// hardcoded and the generic implementation and requires bit-identical
// register states at several checkpoints.
func TestELL2424MatchesGeneric(t *testing.T) {
	for _, p := range []int{2, 4, 8, 11} {
		fast, err := New2424(p)
		if err != nil {
			t.Fatal(err)
		}
		gen := newGeneric(t, 24, p)
		rng := rng64(uint64(p) * 7919)
		for n := 1; n <= 50000; n++ {
			h := rng.Next()
			fast.AddHash(h)
			gen.AddHash(h)
			if n == 1 || n == 100 || n == 5000 || n == 50000 {
				for i := 0; i < fast.NumRegisters(); i++ {
					if fast.Register(i) != gen.Register(i) {
						t.Fatalf("p=%d n=%d register %d: fast=%#x generic=%#x", p, n, i, fast.Register(i), gen.Register(i))
					}
				}
			}
		}
	}
}

// TestELL2420MatchesGeneric does the same for the 7-byte-pair layout.
func TestELL2420MatchesGeneric(t *testing.T) {
	for _, p := range []int{2, 4, 8, 11} {
		fast, err := New2420(p)
		if err != nil {
			t.Fatal(err)
		}
		gen := newGeneric(t, 20, p)
		rng := rng64(uint64(p)*7919 + 1)
		for n := 1; n <= 50000; n++ {
			h := rng.Next()
			fast.AddHash(h)
			gen.AddHash(h)
			if n == 1 || n == 100 || n == 5000 || n == 50000 {
				for i := 0; i < fast.NumRegisters(); i++ {
					if fast.Register(i) != gen.Register(i) {
						t.Fatalf("p=%d n=%d register %d: fast=%#x generic=%#x", p, n, i, fast.Register(i), gen.Register(i))
					}
				}
			}
		}
	}
}

// TestEstimateMatchesGeneric checks that the hardcoded coefficient
// extraction and solver produce the same estimate as the generic path.
func TestEstimateMatchesGeneric(t *testing.T) {
	fast24, _ := New2424(8)
	fast20, _ := New2420(8)
	gen24 := newGeneric(t, 24, 8)
	gen20 := newGeneric(t, 20, 8)
	rng := rng64(42)
	for n := 1; n <= 200000; n++ {
		h := rng.Next()
		fast24.AddHash(h)
		fast20.AddHash(h)
		gen24.AddHash(h)
		gen20.AddHash(h)
		if n%50000 != 0 {
			continue
		}
		if a, b := fast24.Estimate(), gen24.EstimateML(); math.Abs(a-b) > 1e-9*b {
			t.Fatalf("n=%d ELL2424 estimate %g != generic %g", n, a, b)
		}
		if a, b := fast20.Estimate(), gen20.EstimateML(); math.Abs(a-b) > 1e-9*b {
			t.Fatalf("n=%d ELL2420 estimate %g != generic %g", n, a, b)
		}
	}
}

// TestToSketchRoundTrip converts fast → generic → fast and requires
// identical registers, and checks the generic conversion is mergeable.
func TestToSketchRoundTrip(t *testing.T) {
	fast, _ := New2420(6)
	rng := rng64(7)
	for n := 0; n < 10000; n++ {
		fast.AddHash(rng.Next())
	}
	gen := fast.ToSketch()
	back, err := From2420Sketch(gen)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fast.NumRegisters(); i++ {
		if fast.Register(i) != back.Register(i) {
			t.Fatalf("round-trip register %d: %#x != %#x", i, fast.Register(i), back.Register(i))
		}
	}

	fast24, _ := New2424(6)
	for n := 0; n < 10000; n++ {
		fast24.AddHash(rng.Next())
	}
	gen24 := fast24.ToSketch()
	back24, err := From2424Sketch(gen24)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fast24.NumRegisters(); i++ {
		if fast24.Register(i) != back24.Register(i) {
			t.Fatalf("round-trip register %d: %#x != %#x", i, fast24.Register(i), back24.Register(i))
		}
	}
}

// TestMergeEqualsUnion: merging two sketches must equal direct insertion
// of the union stream (the paper's merge test methodology, Section 5).
func TestMergeEqualsUnion(t *testing.T) {
	a24, _ := New2424(7)
	b24, _ := New2424(7)
	u24, _ := New2424(7)
	a20, _ := New2420(7)
	b20, _ := New2420(7)
	u20, _ := New2420(7)
	rng := rng64(99)
	for n := 0; n < 20000; n++ {
		h := rng.Next()
		if n%2 == 0 {
			a24.AddHash(h)
			a20.AddHash(h)
		} else {
			b24.AddHash(h)
			b20.AddHash(h)
		}
		u24.AddHash(h)
		u20.AddHash(h)
	}
	if err := a24.Merge(b24); err != nil {
		t.Fatal(err)
	}
	if err := a20.Merge(b20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a24.NumRegisters(); i++ {
		if a24.Register(i) != u24.Register(i) {
			t.Fatalf("ELL2424 merge register %d: %#x != union %#x", i, a24.Register(i), u24.Register(i))
		}
		if a20.Register(i) != u20.Register(i) {
			t.Fatalf("ELL2420 merge register %d: %#x != union %#x", i, a20.Register(i), u20.Register(i))
		}
	}
}

// TestIdempotency: re-inserting any hash never changes the state.
func TestIdempotency(t *testing.T) {
	cfgErr := quick.Check(func(hashes []uint64) bool {
		s, _ := New2420(4)
		for _, h := range hashes {
			s.AddHash(h)
		}
		snapshot := make([]uint64, s.NumRegisters())
		for i := range snapshot {
			snapshot[i] = s.Register(i)
		}
		for _, h := range hashes {
			s.AddHash(h)
		}
		for i := range snapshot {
			if snapshot[i] != s.Register(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if cfgErr != nil {
		t.Fatal(cfgErr)
	}
}

// TestCommutativity: insertion order never matters.
func TestCommutativity(t *testing.T) {
	err := quick.Check(func(hashes []uint64) bool {
		fwd, _ := New2424(4)
		rev, _ := New2424(4)
		for _, h := range hashes {
			fwd.AddHash(h)
		}
		for i := len(hashes) - 1; i >= 0; i-- {
			rev.AddHash(hashes[i])
		}
		for i := 0; i < fwd.NumRegisters(); i++ {
			if fwd.Register(i) != rev.Register(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPackedLayoutIsolation: writing one 28-bit register must never
// disturb its pair neighbor or the adjacent group.
func TestPackedLayoutIsolation(t *testing.T) {
	s, _ := New2420(4)
	m := s.NumRegisters()
	// Set every register to a distinct recognizable value via setRegister.
	for i := 0; i < m; i++ {
		s.setRegister(i, uint64(i+1)<<d20|uint64(i)&(1<<d20-1))
	}
	for i := 0; i < m; i++ {
		want := uint64(i+1)<<d20 | uint64(i)&(1<<d20-1)
		if got := s.register(i); got != want {
			t.Fatalf("register %d: got %#x want %#x", i, got, want)
		}
	}
	// Overwrite register 5 and check only register 5 changed.
	s.setRegister(5, 0xABCDE)
	for i := 0; i < m; i++ {
		want := uint64(i+1)<<d20 | uint64(i)&(1<<d20-1)
		if i == 5 {
			want = 0xABCDE
		}
		if got := s.register(i); got != want {
			t.Fatalf("after write: register %d got %#x want %#x", i, got, want)
		}
	}
}

// TestErrorWithinTheory: the hardcoded variants must reach the theoretical
// estimation error band. Single run, loose 5-sigma style tolerance.
func TestErrorWithinTheory(t *testing.T) {
	const n = 1 << 16
	s, _ := New2420(10)
	rng := rng64(123456)
	for i := 0; i < n; i++ {
		s.AddHash(rng.Next())
	}
	est := s.Estimate()
	relErr := math.Abs(est-n) / n
	// Theoretical stderr sqrt(3.67/(28*1024)) ≈ 1.13 %; allow 5x.
	if relErr > 0.057 {
		t.Fatalf("relative error %.2f%% exceeds 5x theoretical stderr", 100*relErr)
	}
}

// TestInvalidParameters covers constructor and conversion error paths.
func TestInvalidParameters(t *testing.T) {
	if _, err := New2424(1); err == nil {
		t.Error("New2424(1) should fail")
	}
	if _, err := New2420(99); err == nil {
		t.Error("New2420(99) should fail")
	}
	wrong := core.MustNew(core.Config{T: 0, D: 2, P: 6})
	if _, err := From2424Sketch(wrong); err == nil {
		t.Error("From2424Sketch with ULL config should fail")
	}
	if _, err := From2420Sketch(wrong); err == nil {
		t.Error("From2420Sketch with ULL config should fail")
	}
	a, _ := New2424(4)
	b, _ := New2424(5)
	if err := a.Merge(b); err == nil {
		t.Error("merging different p should fail")
	}
	c, _ := New2420(4)
	d, _ := New2420(5)
	if err := c.Merge(d); err == nil {
		t.Error("merging different p should fail")
	}
}

// TestReset restores the pristine state.
func TestReset(t *testing.T) {
	s24, _ := New2424(4)
	s20, _ := New2420(4)
	rng := rng64(5)
	for i := 0; i < 1000; i++ {
		h := rng.Next()
		s24.AddHash(h)
		s20.AddHash(h)
	}
	s24.Reset()
	s20.Reset()
	if got := s24.Estimate(); got != 0 {
		t.Errorf("ELL2424 estimate after reset = %g, want 0", got)
	}
	if got := s20.Estimate(); got != 0 {
		t.Errorf("ELL2420 estimate after reset = %g, want 0", got)
	}
}

// TestSizeAccounting checks the advertised sizes.
func TestSizeAccounting(t *testing.T) {
	s24, _ := New2424(8)
	if got, want := s24.SizeBytes(), 256*4; got != want {
		t.Errorf("ELL2424 SizeBytes = %d, want %d", got, want)
	}
	s20, _ := New2420(8)
	if got, want := s20.SizeBytes(), 256*28/8; got != want {
		t.Errorf("ELL2420 SizeBytes = %d, want %d", got, want)
	}
}
