package fastell

import (
	"testing"

	"exaloglog/internal/core"
)

// The ablation benchmarks quantify the effect of hardcoding t and d
// (Section 5.3: "Hardcoding these values could potentially further improve
// its performance"). Compare the Hardcoded benches against the Generic
// ones at equal configuration.

func benchHashes(n int) []uint64 {
	rng := rng64(2024)
	hs := make([]uint64, n)
	for i := range hs {
		hs[i] = rng.Next()
	}
	return hs
}

func BenchmarkAblationHardcodedInsert2424(b *testing.B) {
	s, _ := New2424(11)
	hs := benchHashes(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddHash(hs[i&(1<<16-1)])
	}
}

func BenchmarkAblationGenericInsert2424(b *testing.B) {
	s := core.MustNew(core.Config{T: 2, D: 24, P: 11})
	hs := benchHashes(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddHash(hs[i&(1<<16-1)])
	}
}

func BenchmarkAblationHardcodedInsert2420(b *testing.B) {
	s, _ := New2420(11)
	hs := benchHashes(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddHash(hs[i&(1<<16-1)])
	}
}

func BenchmarkAblationGenericInsert2420(b *testing.B) {
	s := core.MustNew(core.Config{T: 2, D: 20, P: 11})
	hs := benchHashes(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddHash(hs[i&(1<<16-1)])
	}
}

func BenchmarkAblationHardcodedEstimate2420(b *testing.B) {
	s, _ := New2420(11)
	for _, h := range benchHashes(1 << 20) {
		s.AddHash(h)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Estimate()
	}
}

func BenchmarkAblationGenericEstimate2420(b *testing.B) {
	s := core.MustNew(core.Config{T: 2, D: 20, P: 11})
	for _, h := range benchHashes(1 << 20) {
		s.AddHash(h)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.EstimateML()
	}
}
