package fastell

import (
	"fmt"
	"math/bits"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
)

// ELL2424 is a hardcoded ExaLogLog sketch with t=2, d=24: one 32-bit
// register per slot in a plain []uint32, the layout Section 2.4 recommends
// for the fastest register access (MVP 3.78). State semantics are identical
// to core.Sketch with Config{T:2, D:24, P:p}.
//
// ELL2424 is not safe for concurrent mutation; core.AtomicSketch provides
// the CAS-based concurrent variant of the same configuration.
type ELL2424 struct {
	p       int
	mask    uint64 // m - 1
	lowMask uint64 // (1 << (p+2)) - 1, forces the index/low bits before nlz
	regs    []uint32
	biasC   float64
}

const d24 = 24

// New2424 returns an empty hardcoded ELL(2,24) sketch with 2^p registers.
func New2424(p int) (*ELL2424, error) {
	if p < core.MinP || p > core.MaxP {
		return nil, fmt.Errorf("fastell: p=%d out of range [%d, %d]", p, core.MinP, core.MaxP)
	}
	m := 1 << uint(p)
	return &ELL2424{
		p:       p,
		mask:    uint64(m - 1),
		lowMask: uint64(1)<<uint(p+tParam) - 1,
		regs:    make([]uint32, m),
		biasC:   core.BiasCorrectionConstant(tParam, d24),
	}, nil
}

// P returns the precision parameter.
func (s *ELL2424) P() int { return s.p }

// NumRegisters returns m = 2^p.
func (s *ELL2424) NumRegisters() int { return len(s.regs) }

// SizeBytes returns the register array size in bytes (4 per register).
func (s *ELL2424) SizeBytes() int { return 4 * len(s.regs) }

// Add inserts a byte-slice element using the package default hash.
func (s *ELL2424) Add(element []byte) { s.AddHash(hashing.Wy64(element, 0)) }

// AddString inserts a string element without allocating.
func (s *ELL2424) AddString(element string) { s.AddHash(hashing.WyString(element, 0)) }

// AddUint64 inserts a 64-bit integer element.
func (s *ELL2424) AddUint64(element uint64) { s.AddHash(hashing.Wy64Uint64(element, 0)) }

// AddHash inserts an element by its 64-bit hash (Algorithm 2 with t=2,
// d=24 constant-folded). All shifts are by compile-time constants except
// the data-dependent delta, and the register is a single aligned uint32.
func (s *ELL2424) AddHash(h uint64) {
	i := h >> tParam & s.mask
	a := h | s.lowMask
	k := uint32(bits.LeadingZeros64(a))<<tParam + uint32(h&tMask) + 1
	r := s.regs[i]
	u := r >> d24
	switch {
	case k > u:
		delta := k - u
		var shifted uint32
		if delta < 32 {
			shifted = (1<<d24 + r&(1<<d24-1)) >> delta
		}
		s.regs[i] = k<<d24 | shifted
	case k < u && u-k <= d24:
		s.regs[i] = r | 1<<(d24+k-u)
	}
}

// Merge folds other into s. Both sketches must share p.
func (s *ELL2424) Merge(other *ELL2424) error {
	if s.p != other.p {
		return fmt.Errorf("fastell: cannot merge p=%d with p=%d", s.p, other.p)
	}
	for i, rp := range other.regs {
		r := s.regs[i]
		if merged := mergeRegister32(r, rp); merged != r {
			s.regs[i] = merged
		}
	}
	return nil
}

// mergeRegister32 is Algorithm 5 hardcoded for 32-bit registers with d=24.
func mergeRegister32(r, rp uint32) uint32 {
	u := r >> d24
	up := rp >> d24
	switch {
	case u > up && up > 0:
		sh := u - up
		if sh >= 32 {
			return r
		}
		return r | (1<<d24+rp&(1<<d24-1))>>sh
	case up > u && u > 0:
		sh := up - u
		if sh >= 32 {
			return rp
		}
		return rp | (1<<d24+r&(1<<d24-1))>>sh
	default:
		return r | rp
	}
}

// Estimate returns the bias-corrected maximum-likelihood distinct-count
// estimate (Algorithm 3 + Algorithm 8 + equation (4)).
func (s *ELL2424) Estimate() float64 {
	m := len(s.regs)
	c := coefficients(s.p, d24, m, func(i int) uint64 { return uint64(s.regs[i]) })
	raw := core.SolveML(c, float64(m))
	return raw / (1 + s.biasC/float64(m))
}

// Reset restores the empty state.
func (s *ELL2424) Reset() {
	for i := range s.regs {
		s.regs[i] = 0
	}
}

// Register returns the raw value of register i (for tests and tooling).
func (s *ELL2424) Register(i int) uint64 { return uint64(s.regs[i]) }

// ToSketch converts to a generic core.Sketch with identical state, giving
// access to reduction, serialization and mixed-parameter merging.
func (s *ELL2424) ToSketch() *core.Sketch {
	vals := make([]uint64, len(s.regs))
	for i, r := range s.regs {
		vals[i] = uint64(r)
	}
	sk, err := core.FromRegisters(core.Config{T: tParam, D: d24, P: s.p}, vals)
	if err != nil {
		panic(err) // unreachable: register values are width-bounded by construction
	}
	return sk
}

// From2424Sketch converts a generic ELL(2,24) sketch into the hardcoded
// representation. The input must have Config{T:2, D:24}.
func From2424Sketch(sk *core.Sketch) (*ELL2424, error) {
	cfg := sk.Config()
	if cfg.T != tParam || cfg.D != d24 {
		return nil, fmt.Errorf("fastell: sketch has config %+v, need t=2 d=24", cfg)
	}
	s, err := New2424(cfg.P)
	if err != nil {
		return nil, err
	}
	for i := range s.regs {
		s.regs[i] = uint32(sk.Register(i))
	}
	return s, nil
}
