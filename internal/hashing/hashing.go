// Package hashing provides the 64-bit and 128-bit hash functions used by the
// sketches and benchmarks in this repository.
//
// The paper relies on high-quality 64-bit hashes (WyHash, Komihash,
// PolymurHash are cited as known-good choices) and uses the 128-bit variant
// of Murmur3 for the cross-library performance comparison because Apache
// DataSketches hard-codes it. Both are implemented here from scratch on top
// of the standard library only:
//
//   - Wy64 / WyString: a wyhash-style mum-mixing hash, used as the default
//     hasher for the public API.
//   - SplitMix64: the standard 64-bit mixing sequence, used to derive
//     reproducible pseudo-random hash streams in simulations.
//   - Murmur3_128: MurmurHash3 x64/128, byte-compatible with the reference
//     implementation, used by the performance benchmarks.
package hashing

import (
	"encoding/binary"
	"math/bits"
)

// mum multiplies a and b to a 128-bit product and folds it to 64 bits by
// XORing the halves. This is the core mixing primitive of wyhash.
func mum(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

// wyhash-style secret constants (odd, high-entropy).
const (
	wyp0 = 0xa0761d6478bd642f
	wyp1 = 0xe7037ed1a0b428db
	wyp2 = 0x8ebc6af09c88c6e3
	wyp3 = 0x589965cc75374cc3
)

// Wy64 hashes an arbitrary byte slice with the given seed to a uniformly
// distributed 64-bit value.
func Wy64(data []byte, seed uint64) uint64 {
	n := len(data)
	h := seed ^ wyp0
	switch {
	case n == 0:
		// fall through to finalization
	case n <= 8:
		var lo, hi uint64
		if n >= 4 {
			lo = uint64(binary.LittleEndian.Uint32(data))
			hi = uint64(binary.LittleEndian.Uint32(data[n-4:]))
		} else {
			lo = uint64(data[0])<<16 | uint64(data[n>>1])<<8 | uint64(data[n-1])
		}
		h = mum(lo^wyp1, hi^h)
	case n <= 16:
		h = mum(binary.LittleEndian.Uint64(data)^wyp1, binary.LittleEndian.Uint64(data[n-8:])^h)
	default:
		i := n
		p := data
		for i > 16 {
			h = mum(binary.LittleEndian.Uint64(p)^wyp1, binary.LittleEndian.Uint64(p[8:])^h)
			p = p[16:]
			i -= 16
		}
		h = mum(binary.LittleEndian.Uint64(data[n-16:])^wyp1, binary.LittleEndian.Uint64(data[n-8:])^h)
	}
	return mum(wyp1^uint64(n), h^wyp2)
}

// WyString hashes a string without allocating.
func WyString(s string, seed uint64) uint64 {
	n := len(s)
	h := seed ^ wyp0
	switch {
	case n == 0:
	case n <= 8:
		var lo, hi uint64
		if n >= 4 {
			lo = uint64(le32s(s, 0))
			hi = uint64(le32s(s, n-4))
		} else {
			lo = uint64(s[0])<<16 | uint64(s[n>>1])<<8 | uint64(s[n-1])
		}
		h = mum(lo^wyp1, hi^h)
	case n <= 16:
		h = mum(le64s(s, 0)^wyp1, le64s(s, n-8)^h)
	default:
		i := 0
		for n-i > 16 {
			h = mum(le64s(s, i)^wyp1, le64s(s, i+8)^h)
			i += 16
		}
		h = mum(le64s(s, n-16)^wyp1, le64s(s, n-8)^h)
	}
	return mum(wyp1^uint64(n), h^wyp2)
}

func le32s(s string, i int) uint32 {
	return uint32(s[i]) | uint32(s[i+1])<<8 | uint32(s[i+2])<<16 | uint32(s[i+3])<<24
}

func le64s(s string, i int) uint64 {
	return uint64(le32s(s, i)) | uint64(le32s(s, i+4))<<32
}

// Wy64Uint64 hashes a single 64-bit value. It is the hash used for integer
// keys throughout the examples and simulations.
func Wy64Uint64(v, seed uint64) uint64 {
	return mum(wyp1^8, mum(v^wyp1, v^seed^wyp0)^wyp2)
}

// SplitMix64 advances the state and returns the next value of the SplitMix64
// sequence. It passes BigCrush and is the standard generator for seeding.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finalizer to v without advancing a state.
// It is a fast bijective mixer suitable for turning counters into
// uniformly distributed hash values.
func Mix64(v uint64) uint64 {
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// Murmur3_128 computes MurmurHash3 x64/128 of data with the given seed and
// returns both 64-bit halves. The first return value matches what Apache
// DataSketches uses as its 64-bit hash input.
func Murmur3_128(data []byte, seed uint64) (uint64, uint64) {
	const (
		c1 = 0x87c37b91114253d5
		c2 = 0x4cf5ad432745937f
	)
	h1 := seed
	h2 := seed
	n := len(data)
	nblocks := n / 16

	for i := 0; i < nblocks; i++ {
		k1 := binary.LittleEndian.Uint64(data[i*16:])
		k2 := binary.LittleEndian.Uint64(data[i*16+8:])

		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	tail := data[nblocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}
