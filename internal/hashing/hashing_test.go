package hashing

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

func TestWy64Deterministic(t *testing.T) {
	data := []byte("exaloglog")
	if Wy64(data, 1) != Wy64(data, 1) {
		t.Fatal("Wy64 not deterministic")
	}
	if Wy64(data, 1) == Wy64(data, 2) {
		t.Fatal("Wy64 ignores the seed")
	}
}

func TestWy64LengthSensitivity(t *testing.T) {
	// Hashes of all prefixes of a buffer must be pairwise distinct; a
	// length-mixing bug would collapse some of them.
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i * 37)
	}
	seen := map[uint64]int{}
	for n := 0; n <= len(buf); n++ {
		h := Wy64(buf[:n], 0)
		if prev, dup := seen[h]; dup {
			t.Fatalf("prefix lengths %d and %d collide", prev, n)
		}
		seen[h] = n
	}
}

func TestWyStringMatchesWy64(t *testing.T) {
	cases := []string{"", "a", "ab", "abc", "abcd", "abcdefg", "abcdefgh",
		"abcdefghi", "0123456789abcdef", "0123456789abcdef0123456789abcdefX"}
	for _, s := range cases {
		if WyString(s, 99) != Wy64([]byte(s), 99) {
			t.Errorf("WyString(%q) != Wy64 of the same bytes", s)
		}
	}
}

func TestWy64Uint64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Wy64Uint64(i, 0)
		if seen[h] {
			t.Fatalf("collision at input %d", i)
		}
		seen[h] = true
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the canonical C implementation.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 4096; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
	if Mix64(0) != 0 {
		// SplitMix64's finalizer maps 0 to 0; record that as a known fact
		// so accidental constant changes are caught.
		t.Fatalf("Mix64(0) = %#x, want 0", Mix64(0))
	}
}

func TestMurmur3KnownVectors(t *testing.T) {
	// Vectors cross-checked against the reference MurmurHash3_x64_128.
	cases := []struct {
		in   string
		seed uint64
		h1   uint64
	}{
		{"", 0, 0x0000000000000000},
		{"a", 0, 0x85555565f6597889},
		{"ab", 0, 0x938b11ea16ed1b2e},
		{"hello", 0, 0xcbd8a7b341bd9b02},
		{"hello, world", 0, 0x342fac623a5ebc8e},
		{"The quick brown fox jumps over the lazy dog", 0, 0xe34bbc7bbc071b6c},
	}
	for _, c := range cases {
		h1, _ := Murmur3_128([]byte(c.in), c.seed)
		if h1 != c.h1 {
			t.Errorf("Murmur3_128(%q, %d) h1 = %#016x, want %#016x", c.in, c.seed, h1, c.h1)
		}
	}
}

func TestMurmur3TailLengths(t *testing.T) {
	// All tail lengths 0..31 must hash distinctly and deterministically.
	buf := make([]byte, 32)
	for i := range buf {
		buf[i] = byte(i + 1)
	}
	seen := map[uint64]int{}
	for n := 0; n <= len(buf); n++ {
		h1, h2 := Murmur3_128(buf[:n], 7)
		g1, g2 := Murmur3_128(buf[:n], 7)
		if h1 != g1 || h2 != g2 {
			t.Fatalf("length %d: not deterministic", n)
		}
		if prev, dup := seen[h1]; dup {
			t.Fatalf("lengths %d and %d collide on h1", prev, n)
		}
		seen[h1] = n
	}
}

func TestUniformityOfLeadingBits(t *testing.T) {
	// The sketches consume the hash's leading bits as a register index;
	// verify rough uniformity over 16 buckets with a chi-squared bound.
	const buckets = 16
	const samples = 1 << 16
	var counts [buckets]int
	var buf [8]byte
	for i := 0; i < samples; i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		h := Wy64(buf[:], 0)
		counts[h>>60]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.99th percentile ≈ 44. Anything near that
	// indicates a real bias for a deterministic input set.
	if chi2 > 60 {
		t.Fatalf("leading-bit chi-squared %.1f too large; counts=%v", chi2, counts)
	}
}

func TestLeadingZeroGeometric(t *testing.T) {
	// nlz of the hash drives the update-value distribution; check the
	// geometric(1/2) shape for the first few values.
	const samples = 1 << 18
	var counts [20]int
	for i := 0; i < samples; i++ {
		h := Mix64(uint64(i)*0x9e3779b97f4a7c15 + 1)
		nlz := 0
		for h&(1<<63) == 0 && nlz < 19 {
			nlz++
			h <<= 1
		}
		counts[nlz]++
	}
	for k := 0; k < 8; k++ {
		want := float64(samples) * math.Pow(0.5, float64(k+1))
		got := float64(counts[k])
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("nlz=%d: got %.0f, want ≈%.0f", k, got, want)
		}
	}
}

func BenchmarkWy64_16B(b *testing.B) {
	data := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		_ = Wy64(data, uint64(i))
	}
}

func BenchmarkMurmur3_16B(b *testing.B) {
	data := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(data, uint64(i))
		h1, _ := Murmur3_128(data, 0)
		_ = h1
	}
}

func ExampleWyString() {
	fmt.Println(WyString("hello", 0) == WyString("hello", 0))
	// Output: true
}
