// Package zeta provides the special functions and numerical routines behind
// the paper's theoretical memory-variance-product (MVP) formulas: the
// Hurwitz zeta function ζ(s,a) (Table 1), and an adaptive Simpson
// integrator for the compressed-state integrals in equations (5) and (7).
package zeta

import (
	"fmt"
	"math"
)

// Hurwitz computes the Hurwitz zeta function
//
//	ζ(s, a) = Σ_{u=0}^{∞} (u + a)^{-s}
//
// for s > 1 and a > 0, using direct summation of the first terms followed
// by an Euler–Maclaurin tail correction. The result is accurate to close to
// full float64 precision for the arguments used in this repository
// (s ∈ {2, 3}, a ∈ (1, 2]).
func Hurwitz(s, a float64) float64 {
	if s <= 1 {
		panic(fmt.Sprintf("zeta: Hurwitz requires s > 1, got s=%g", s))
	}
	if a <= 0 {
		panic(fmt.Sprintf("zeta: Hurwitz requires a > 0, got a=%g", a))
	}
	const n = 32 // terms summed directly
	sum := 0.0
	for u := 0; u < n; u++ {
		sum += math.Pow(float64(u)+a, -s)
	}
	x := float64(n) + a
	// Euler–Maclaurin for the tail Σ_{u=n}^∞:
	// ∫_x^∞ f + f(x)/2 + Bernoulli corrections.
	sum += math.Pow(x, 1-s) / (s - 1)
	sum += 0.5 * math.Pow(x, -s)
	// B_2/2! = 1/12, B_4/4! = -1/720, B_6/6! = 1/30240.
	t := s * math.Pow(x, -s-1)
	sum += t / 12
	t *= (s + 1) * (s + 2) / (x * x)
	sum -= t / 720
	t *= (s + 3) * (s + 4) / (x * x)
	sum += t / 30240
	return sum
}

// Integrate computes ∫_a^b f(x) dx by adaptive Simpson quadrature with the
// given absolute error tolerance. f must be finite on (a, b); endpoint
// singularities should be removed by the caller (the MVP integrands are
// continuous after their removable singularities are patched).
func Integrate(f func(float64) float64, a, b, tol float64) float64 {
	fa, fm, fb := f(a), f((a+b)/2), f(b)
	whole := simpson(a, b, fa, fm, fb)
	return adaptive(f, a, b, fa, fm, fb, whole, tol, 50)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptive(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptive(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptive(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// CompressedIntegral evaluates the integral that appears in the
// compressed-state MVP formulas (5) and (7):
//
//	I(y) = ∫_0^1 z^y · (1-z)·ln(1-z) / (z·ln z) dz
//
// with y = b^{-d}/(b-1) > 0. Near z→0 the integrand tends to 0 (it behaves
// like -z^y/ln z). Near z→1 it has an integrable logarithmic singularity:
// ln z ≈ -(1-z), so the integrand grows like -ln(1-z). The upper half is
// therefore integrated after the substitution z = 1-e^{-s}, which turns the
// singularity into a smooth, exponentially decaying integrand.
func CompressedIntegral(y float64) float64 {
	// Lower half, z ∈ (0, 1/2]: substitute z = e^{-s}. The transformed
	// integrand -e^{-sy}·(1-z)·ln(1-z)/s ≈ e^{-s(1+y)}/s is smooth and
	// decays exponentially; truncating at s = 45 leaves a tail < 1e-18.
	fl := func(s float64) float64 {
		z := math.Exp(-s)
		return -math.Exp(-s*y) * (1 - z) * math.Log1p(-z) / s
	}
	lower := Integrate(fl, math.Ln2, 45, 1e-12)
	// Upper half, z ∈ [1/2, 1): substitute z = 1-e^{-s}. This removes the
	// integrable -ln(1-z) singularity at z = 1; the transformed integrand
	// decays like s·e^{-s}.
	fu := func(s float64) float64 {
		ems := math.Exp(-s)
		z := 1 - ems
		// ln z computed as log1p(-e^{-s}): for s ≳ 36, z rounds to 1.0 and
		// a direct math.Log(z) would return 0, poisoning the quotient.
		lnz := math.Log1p(-ems)
		return math.Pow(z, y) * ems * (-s) / (z * lnz) * ems
	}
	upper := Integrate(fu, math.Ln2, 45, 1e-12)
	return lower + upper
}
