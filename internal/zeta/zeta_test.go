package zeta

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestHurwitzKnownValues(t *testing.T) {
	cases := []struct {
		s, a, want float64
	}{
		{2, 1, math.Pi * math.Pi / 6},     // ζ(2) = π²/6
		{2, 2, math.Pi*math.Pi/6 - 1},     // ζ(2,2)
		{2, 0.5, math.Pi * math.Pi / 2},   // ζ(2,1/2) = π²/2
		{2, 1.5, math.Pi*math.Pi/2 - 4},   // ζ(2,3/2)
		{3, 1, 1.2020569031595942854},     // Apéry's constant
		{3, 2, 1.2020569031595942854 - 1}, // ζ(3,2)
		{4, 1, math.Pow(math.Pi, 4) / 90}, // ζ(4)
		// ψ'(5/4) = ψ'(1/4) − 16 with ψ'(1/4) = π² + 8G (G: Catalan).
		{2, 1.25, math.Pi*math.Pi + 8*0.915965594177219015 - 16},
	}
	for _, c := range cases {
		got := Hurwitz(c.s, c.a)
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Hurwitz(%g, %g) = %.15f, want %.15f", c.s, c.a, got, c.want)
		}
	}
}

func TestHurwitzRecurrence(t *testing.T) {
	// ζ(s, a) = ζ(s, a+1) + a^{-s}
	for _, s := range []float64{2, 2.5, 3} {
		for _, a := range []float64{0.25, 0.5, 1, 1.1652, 1.5, 2, 3.7} {
			lhs := Hurwitz(s, a)
			rhs := Hurwitz(s, a+1) + math.Pow(a, -s)
			if !almostEqual(lhs, rhs, 1e-12) {
				t.Errorf("recurrence fails at s=%g a=%g: %.15f vs %.15f", s, a, lhs, rhs)
			}
		}
	}
}

func TestHurwitzMonotonicInA(t *testing.T) {
	prev := math.Inf(1)
	for a := 0.1; a < 5; a += 0.1 {
		v := Hurwitz(2, a)
		if v >= prev {
			t.Fatalf("Hurwitz(2, a) not strictly decreasing at a=%g", a)
		}
		prev = v
	}
}

func TestHurwitzPanics(t *testing.T) {
	for _, c := range []struct{ s, a float64 }{{1, 1}, {0.5, 1}, {2, 0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Hurwitz(%g,%g) did not panic", c.s, c.a)
				}
			}()
			Hurwitz(c.s, c.a)
		}()
	}
}

func TestIntegrateBasics(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 2 }, 0, 3, 6},
		{"linear", func(x float64) float64 { return x }, 0, 1, 0.5},
		{"quadratic", func(x float64) float64 { return x * x }, 0, 2, 8.0 / 3},
		{"sin", math.Sin, 0, math.Pi, 2},
		{"exp", math.Exp, 0, 1, math.E - 1},
		{"reciprocal", func(x float64) float64 { return 1 / x }, 1, math.E, 1},
	}
	for _, c := range cases {
		got := Integrate(c.f, c.a, c.b, 1e-12)
		if !almostEqual(got, c.want, 1e-10) {
			t.Errorf("%s: Integrate = %.12f, want %.12f", c.name, got, c.want)
		}
	}
}

func TestCompressedIntegralProperties(t *testing.T) {
	// I(y) is positive and strictly decreasing in y (larger y damps the
	// integrand by z^y on (0,1)).
	prev := math.Inf(1)
	for _, y := range []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2} {
		v := CompressedIntegral(y)
		if v <= 0 {
			t.Fatalf("I(%g) = %g, want > 0", y, v)
		}
		if v >= prev {
			t.Fatalf("I(y) not decreasing at y=%g", y)
		}
		prev = v
	}
}

func TestCompressedIntegralHLLMartingaleLimit(t *testing.T) {
	// Equation (7) at HLL parameters (b=2, d=0 → y=1) gives an MVP of
	// ≈ 1.98, and the paper's theoretical limit as y→0 is 1.63. Both pin
	// down I(1) and I(0⁺) well enough for a regression check.
	mvp7 := func(y float64) float64 {
		return (1 + (1+y)*CompressedIntegral(y)) / (2 * math.Ln2)
	}
	if got := mvp7(1); !almostEqual(got, 1.98, 0.02) {
		t.Errorf("compressed martingale MVP at y=1: got %.4f, want ≈1.98", got)
	}
	if got := mvp7(1e-9); !almostEqual(got, 1.63, 0.02) {
		t.Errorf("compressed martingale MVP at y→0: got %.4f, want ≈1.63 (theoretical limit)", got)
	}
}
