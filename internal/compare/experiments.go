package compare

import (
	"math"
	"time"

	"exaloglog/internal/hashing"
)

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	Name               string
	RMSE               float64
	MemoryBytes        float64 // average in-memory footprint
	SerializedBytes    float64 // average serialized size
	MVPMemory          float64 // memory bits × RMSE²
	MVPSerialized      float64 // serialized bits × RMSE²
	ConstantTimeInsert bool
}

// Table2 reproduces Table 2: each algorithm sees `runs` independent
// streams of n distinct elements; the RMSE, average memory and
// serialization sizes, and the resulting empirical MVPs are reported.
func Table2(algos []Algorithm, n int, runs int, seed uint64) []Table2Row {
	rows := make([]Table2Row, 0, len(algos))
	for ai, a := range algos {
		var sumSq, memSum, serSum float64
		for run := 0; run < runs; run++ {
			c := a.New()
			state := seed + uint64(ai)*1e9 + uint64(run)*31
			for i := 0; i < n; i++ {
				c.AddHash(hashing.SplitMix64(&state))
			}
			rel := c.Estimate()/float64(n) - 1
			sumSq += rel * rel
			memSum += float64(c.MemoryFootprint())
			serSum += float64(len(c.Serialize()))
		}
		rmse := math.Sqrt(sumSq / float64(runs))
		mem := memSum / float64(runs)
		ser := serSum / float64(runs)
		rows = append(rows, Table2Row{
			Name:               a.Name,
			RMSE:               rmse,
			MemoryBytes:        mem,
			SerializedBytes:    ser,
			MVPMemory:          mem * 8 * rmse * rmse,
			MVPSerialized:      ser * 8 * rmse * rmse,
			ConstantTimeInsert: a.ConstantTimeInsert,
		})
	}
	return rows
}

// Figure10Point is one (algorithm, n) cell of Figure 10.
type Figure10Point struct {
	Name        string
	N           int
	MemoryBytes float64
	MVP         float64
}

// Figure10Ns returns the distinct counts of Figure 10:
// 10, 20, 50, 100, ..., 10^6.
func Figure10Ns() []int {
	var out []int
	for base := 10; base <= 100000; base *= 10 {
		for _, f := range []int{1, 2, 5} {
			out = append(out, base*f)
		}
	}
	return append(out, 1000000)
}

// Figure10 measures the average memory footprint and empirical MVP over
// the distinct-count range of Figure 10. To keep one pass per run, each
// run inserts up to max(ns) elements and snapshots at each n.
func Figure10(algos []Algorithm, ns []int, runs int, seed uint64) []Figure10Point {
	maxN := ns[len(ns)-1]
	points := make([]Figure10Point, 0, len(algos)*len(ns))
	for ai, a := range algos {
		sumSq := make([]float64, len(ns))
		memSum := make([]float64, len(ns))
		for run := 0; run < runs; run++ {
			c := a.New()
			state := seed + uint64(ai)*1e9 + uint64(run)*37
			next := 0
			for i := 1; i <= maxN; i++ {
				c.AddHash(hashing.SplitMix64(&state))
				if next < len(ns) && i == ns[next] {
					rel := c.Estimate()/float64(i) - 1
					sumSq[next] += rel * rel
					memSum[next] += float64(c.MemoryFootprint())
					next++
				}
			}
		}
		for j, n := range ns {
			rmse2 := sumSq[j] / float64(runs)
			mem := memSum[j] / float64(runs)
			points = append(points, Figure10Point{
				Name:        a.Name,
				N:           n,
				MemoryBytes: mem,
				MVP:         mem * 8 * rmse2,
			})
		}
	}
	return points
}

// OpTimings holds the average per-operation times of Figure 11 for one
// algorithm at one n.
type OpTimings struct {
	Name               string
	N                  int
	InsertNs           float64 // per inserted element, incl. hashing
	EstimateNs         float64
	SerializeNs        float64
	MergeNs            float64
	MergeAndEstimateNs float64
}

// Figure11 measures the five operation timings of Figure 11 for each
// algorithm and each n. Elements are random 16-byte keys hashed with
// Murmur3 (128-bit, first half used), exactly as the paper does to level
// the field between libraries. The insert time includes the initial
// allocation of the data structure, which is why small n show higher
// per-element times (as in the paper).
func Figure11(algos []Algorithm, ns []int, repetitions int, seed uint64) []OpTimings {
	maxN := ns[len(ns)-1]
	// Pre-generate the 16-byte keys and their hashes (hash cost is still
	// charged to insert: the adapters take hashes, so we include the
	// Murmur3 evaluation inside the timed loop).
	keys := make([][16]byte, maxN)
	state := seed
	for i := range keys {
		a := hashing.SplitMix64(&state)
		b := hashing.SplitMix64(&state)
		for j := 0; j < 8; j++ {
			keys[i][j] = byte(a >> (8 * j))
			keys[i][8+j] = byte(b >> (8 * j))
		}
	}
	var out []OpTimings
	for _, a := range algos {
		for _, n := range ns {
			reps := repetitions
			// Scale repetitions down for large n to bound runtime.
			if n > 10000 {
				reps = repetitions * 10000 / n
				if reps < 1 {
					reps = 1
				}
			}
			t := OpTimings{Name: a.Name, N: n}

			// Insert: build a fresh sketch from scratch each repetition.
			start := time.Now()
			var built Counter
			for r := 0; r < reps; r++ {
				built = a.New()
				for i := 0; i < n; i++ {
					h, _ := hashing.Murmur3_128(keys[i][:], 0)
					built.AddHash(h)
				}
			}
			t.InsertNs = float64(time.Since(start).Nanoseconds()) / float64(reps) / float64(n)

			// Estimate.
			estReps := reps * 10
			start = time.Now()
			sink := 0.0
			for r := 0; r < estReps; r++ {
				sink += built.Estimate()
			}
			t.EstimateNs = float64(time.Since(start).Nanoseconds()) / float64(estReps)
			_ = sink

			// Serialize.
			serReps := reps * 10
			start = time.Now()
			var serLen int
			for r := 0; r < serReps; r++ {
				serLen += len(built.Serialize())
			}
			t.SerializeNs = float64(time.Since(start).Nanoseconds()) / float64(serReps)
			_ = serLen

			if !a.SupportsMerge {
				t.MergeNs = math.NaN()
				t.MergeAndEstimateNs = math.NaN()
				out = append(out, t)
				continue
			}

			// Merge: both inputs filled with n elements. Merging mutates
			// the receiver, so rebuild a fresh copy per repetition by
			// replaying the second half of the key stream.
			other := a.New()
			for i := 0; i < n; i++ {
				h, _ := hashing.Murmur3_128(keys[maxN-1-i][:], 1)
				other.AddHash(h)
			}
			mergeReps := reps
			prepared := make([]Counter, mergeReps)
			for r := range prepared {
				c := a.New()
				for i := 0; i < n; i++ {
					h, _ := hashing.Murmur3_128(keys[i][:], 0)
					c.AddHash(h)
				}
				prepared[r] = c
			}
			start = time.Now()
			for r := 0; r < mergeReps; r++ {
				if err := prepared[r].Merge(other); err != nil {
					panic(err)
				}
			}
			t.MergeNs = float64(time.Since(start).Nanoseconds()) / float64(mergeReps)

			// Merge + estimate (the merged sketches are already merged;
			// rebuild once more for a fair combined measurement).
			prepared2 := make([]Counter, mergeReps)
			for r := range prepared2 {
				c := a.New()
				for i := 0; i < n; i++ {
					h, _ := hashing.Murmur3_128(keys[i][:], 0)
					c.AddHash(h)
				}
				prepared2[r] = c
			}
			start = time.Now()
			for r := 0; r < mergeReps; r++ {
				if err := prepared2[r].Merge(other); err != nil {
					panic(err)
				}
				sink += prepared2[r].Estimate()
			}
			t.MergeAndEstimateNs = float64(time.Since(start).Nanoseconds()) / float64(mergeReps)
			_ = sink

			out = append(out, t)
		}
	}
	return out
}
