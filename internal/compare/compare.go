// Package compare provides a uniform interface over all distinct-counting
// sketches in this repository and the experiment drivers behind the
// paper's comparative evaluation: Table 2 (space efficiency at ~2 % error),
// Figure 10 (memory and empirical MVP over n) and Figure 11 (operation
// timings).
package compare

import (
	"fmt"

	"exaloglog/internal/core"
	"exaloglog/internal/hll"
	"exaloglog/internal/hlll"
	"exaloglog/internal/pcsa"
	"exaloglog/internal/spike"
)

// Counter is the common interface of all compared sketches. All
// implementations consume pre-computed 64-bit hash values so that hashing
// cost is identical across algorithms (the paper fixes Murmur3 for the
// same reason).
type Counter interface {
	// AddHash inserts an element by its 64-bit hash.
	AddHash(h uint64)
	// Estimate returns the distinct-count estimate.
	Estimate() float64
	// MemoryFootprint returns the approximate allocated bytes.
	MemoryFootprint() int
	// Serialize returns the sketch's serialized form.
	Serialize() []byte
	// Merge folds another instance of the same algorithm into this one.
	Merge(other Counter) error
}

// Algorithm describes one competitor.
type Algorithm struct {
	// Name is the display name used in tables (matches the paper's rows).
	Name string
	// New creates an empty instance.
	New func() Counter
	// ConstantTimeInsert mirrors the paper's Table 2 column.
	ConstantTimeInsert bool
	// SupportsMerge is false only for sketches whose reference
	// implementation lacks a working merge (none here; kept for table
	// completeness).
	SupportsMerge bool
}

// Table2Algorithms returns the paper's Table 2 competitor list with the
// same parameters (each configured for roughly 2 % RMSE at n = 10^6).
func Table2Algorithms() []Algorithm {
	return []Algorithm{
		{Name: "HLL (8-bit, p=11)", New: func() Counter { return newHLL8(11) }, ConstantTimeInsert: true, SupportsMerge: true},
		{Name: "HLL (6-bit, p=11)", New: func() Counter { return newHLL6(11, false) }, ConstantTimeInsert: true, SupportsMerge: true},
		{Name: "HLL (ML estimator, p=11)", New: func() Counter { return newHLL6(11, true) }, ConstantTimeInsert: true, SupportsMerge: true},
		{Name: "HLL (4-bit, p=11)", New: func() Counter { return newHLL4(11) }, ConstantTimeInsert: false, SupportsMerge: true},
		{Name: "CPC-like (compressed PCSA, p=10)", New: func() Counter { return newCPC(10) }, ConstantTimeInsert: false, SupportsMerge: true},
		{Name: "ULL (ML estimator, p=10)", New: func() Counter { return newELL(core.Config{T: 0, D: 2, P: 10}, false) }, ConstantTimeInsert: true, SupportsMerge: true},
		{Name: "HLLL (p=11)", New: func() Counter { return newHLLL(11) }, ConstantTimeInsert: false, SupportsMerge: true},
		{Name: "SpikeSketch-like (128 buckets)", New: func() Counter { return newSpike(128) }, ConstantTimeInsert: true, SupportsMerge: true},
		{Name: "ELL (t=2, d=24, p=8)", New: func() Counter { return newELL(core.Config{T: 2, D: 24, P: 8}, false) }, ConstantTimeInsert: true, SupportsMerge: true},
		{Name: "ELL (t=2, d=20, p=8)", New: func() Counter { return newELL(core.Config{T: 2, D: 20, P: 8}, false) }, ConstantTimeInsert: true, SupportsMerge: true},
	}
}

// Figure11Algorithms returns the algorithm set of Figure 11, including the
// ELL martingale variants and the DataSketches-style HIP-tracking HLL.
func Figure11Algorithms() []Algorithm {
	algos := []Algorithm{
		{Name: "ELL (t=2, d=20, p=8, ML)", New: func() Counter { return newELL(core.Config{T: 2, D: 20, P: 8}, false) }, ConstantTimeInsert: true, SupportsMerge: true},
		{Name: "ELL (t=2, d=24, p=8, ML)", New: func() Counter { return newELL(core.Config{T: 2, D: 24, P: 8}, false) }, ConstantTimeInsert: true, SupportsMerge: true},
		{Name: "ELL (t=2, d=20, p=8, martingale)", New: func() Counter { return newELL(core.Config{T: 2, D: 20, P: 8}, true) }, ConstantTimeInsert: true, SupportsMerge: true},
		{Name: "ELL (t=2, d=24, p=8, martingale)", New: func() Counter { return newELL(core.Config{T: 2, D: 24, P: 8}, true) }, ConstantTimeInsert: true, SupportsMerge: true},
		{Name: "HLL (8-bit, p=11, HIP)", New: func() Counter { return newHIP(11) }, ConstantTimeInsert: true, SupportsMerge: false},
	}
	return append(algos, Table2Algorithms()...)
}

// Figure10Algorithms extends the Table 2 set with the hybrid
// (sparse→dense) ELL sketch, demonstrating the paper's Section 5.2 remark
// that "a sparse mode could also be easily implemented for ELL": its
// memory footprint scales linearly for small n like the DataSketches
// sparse modes do.
func Figure10Algorithms() []Algorithm {
	return append(Table2Algorithms(), Algorithm{
		Name:               "ELL hybrid (sparse, t=2, d=20, p=8)",
		New:                func() Counter { return newHybrid(core.Config{T: 2, D: 20, P: 8}) },
		ConstantTimeInsert: true,
		SupportsMerge:      true,
	})
}

// --- adapters ---

type ellCounter struct {
	s          *core.Sketch
	martingale bool
}

func newELL(cfg core.Config, martingale bool) Counter {
	s := core.MustNew(cfg)
	if martingale {
		if err := s.EnableMartingale(); err != nil {
			panic(err)
		}
	}
	return &ellCounter{s: s, martingale: martingale}
}

func (c *ellCounter) AddHash(h uint64)     { c.s.AddHash(h) }
func (c *ellCounter) Estimate() float64    { return c.s.Estimate() }
func (c *ellCounter) MemoryFootprint() int { return c.s.MemoryFootprint() }
func (c *ellCounter) Serialize() []byte {
	// Register bytes only, matching the paper's serialized-size
	// accounting for ELL.
	return c.s.RegisterBytes()
}
func (c *ellCounter) Merge(other Counter) error {
	o, ok := other.(*ellCounter)
	if !ok {
		return fmt.Errorf("compare: cannot merge %T with %T", c, other)
	}
	return c.s.Merge(o.s)
}

type hybridCounter struct{ h *core.Hybrid }

func newHybrid(cfg core.Config) Counter {
	h, err := core.NewHybrid(cfg)
	if err != nil {
		panic(err)
	}
	return &hybridCounter{h: h}
}

func (c *hybridCounter) AddHash(h uint64)     { c.h.AddHash(h) }
func (c *hybridCounter) Estimate() float64    { return c.h.Estimate() }
func (c *hybridCounter) MemoryFootprint() int { return c.h.MemoryFootprint() }
func (c *hybridCounter) Serialize() []byte {
	b, _ := c.h.MarshalBinary()
	return b
}
func (c *hybridCounter) Merge(other Counter) error {
	o, ok := other.(*hybridCounter)
	if !ok {
		return fmt.Errorf("compare: cannot merge %T with %T", c, other)
	}
	return c.h.Merge(o.h)
}

type hipCounter struct{ h *hll.HIP }

func newHIP(p int) Counter {
	h, err := hll.NewHIP(p)
	if err != nil {
		panic(err)
	}
	return &hipCounter{h: h}
}

func (c *hipCounter) AddHash(h uint64)     { c.h.AddHash(h) }
func (c *hipCounter) Estimate() float64    { return c.h.Estimate() }
func (c *hipCounter) MemoryFootprint() int { return c.h.MemoryFootprint() }
func (c *hipCounter) Serialize() []byte {
	b, _ := c.h.Sketch().MarshalBinary()
	return b
}
func (c *hipCounter) Merge(other Counter) error {
	o, ok := other.(*hipCounter)
	if !ok {
		return fmt.Errorf("compare: cannot merge %T with %T", c, other)
	}
	return c.h.Merge(o.h)
}

type hll6Counter struct {
	s  *hll.Dense6
	ml bool
}

func newHLL6(p int, ml bool) Counter {
	s, err := hll.NewDense6(p)
	if err != nil {
		panic(err)
	}
	return &hll6Counter{s: s, ml: ml}
}

func (c *hll6Counter) AddHash(h uint64) { c.s.AddHash(h) }
func (c *hll6Counter) Estimate() float64 {
	if c.ml {
		return c.s.EstimateML()
	}
	return c.s.Estimate()
}
func (c *hll6Counter) MemoryFootprint() int { return c.s.MemoryFootprint() }
func (c *hll6Counter) Serialize() []byte {
	b, _ := c.s.MarshalBinary()
	return b
}
func (c *hll6Counter) Merge(other Counter) error {
	o, ok := other.(*hll6Counter)
	if !ok {
		return fmt.Errorf("compare: cannot merge %T with %T", c, other)
	}
	return c.s.Merge(o.s)
}

type hll8Counter struct{ s *hll.Dense8 }

func newHLL8(p int) Counter {
	s, err := hll.NewDense8(p)
	if err != nil {
		panic(err)
	}
	return &hll8Counter{s: s}
}

func (c *hll8Counter) AddHash(h uint64)     { c.s.AddHash(h) }
func (c *hll8Counter) Estimate() float64    { return c.s.Estimate() }
func (c *hll8Counter) MemoryFootprint() int { return c.s.MemoryFootprint() }
func (c *hll8Counter) Serialize() []byte {
	b, _ := c.s.MarshalBinary()
	return b
}
func (c *hll8Counter) Merge(other Counter) error {
	o, ok := other.(*hll8Counter)
	if !ok {
		return fmt.Errorf("compare: cannot merge %T with %T", c, other)
	}
	return c.s.Merge(o.s)
}

type hll4Counter struct{ s *hll.Dense4 }

func newHLL4(p int) Counter {
	s, err := hll.NewDense4(p)
	if err != nil {
		panic(err)
	}
	return &hll4Counter{s: s}
}

func (c *hll4Counter) AddHash(h uint64)     { c.s.AddHash(h) }
func (c *hll4Counter) Estimate() float64    { return c.s.Estimate() }
func (c *hll4Counter) MemoryFootprint() int { return c.s.MemoryFootprint() }
func (c *hll4Counter) Serialize() []byte {
	b, _ := c.s.MarshalBinary()
	return b
}
func (c *hll4Counter) Merge(other Counter) error {
	o, ok := other.(*hll4Counter)
	if !ok {
		return fmt.Errorf("compare: cannot merge %T with %T", c, other)
	}
	return c.s.Merge(o.s)
}

// cpcCounter is the CPC-like baseline: a windowed PCSA sketch (compact in
// memory, amortized-constant inserts) whose Serialize path performs the
// expensive entropy-coding compression.
type cpcCounter struct{ s *pcsa.Windowed }

func newCPC(p int) Counter {
	s, err := pcsa.NewWindowed(p)
	if err != nil {
		panic(err)
	}
	return &cpcCounter{s: s}
}

func (c *cpcCounter) AddHash(h uint64)     { c.s.AddHash(h) }
func (c *cpcCounter) Estimate() float64    { return c.s.EstimateML() }
func (c *cpcCounter) MemoryFootprint() int { return c.s.MemoryFootprint() }
func (c *cpcCounter) Serialize() []byte {
	b, _ := c.s.MarshalCompressed()
	return b
}
func (c *cpcCounter) Merge(other Counter) error {
	o, ok := other.(*cpcCounter)
	if !ok {
		return fmt.Errorf("compare: cannot merge %T with %T", c, other)
	}
	return c.s.Merge(o.s)
}

type hlllCounter struct{ s *hlll.Sketch }

func newHLLL(p int) Counter {
	s, err := hlll.New(p)
	if err != nil {
		panic(err)
	}
	return &hlllCounter{s: s}
}

func (c *hlllCounter) AddHash(h uint64)     { c.s.AddHash(h) }
func (c *hlllCounter) Estimate() float64    { return c.s.Estimate() }
func (c *hlllCounter) MemoryFootprint() int { return c.s.MemoryFootprint() }
func (c *hlllCounter) Serialize() []byte {
	b, _ := c.s.MarshalBinary()
	return b
}
func (c *hlllCounter) Merge(other Counter) error {
	o, ok := other.(*hlllCounter)
	if !ok {
		return fmt.Errorf("compare: cannot merge %T with %T", c, other)
	}
	return c.s.Merge(o.s)
}

type spikeCounter struct{ s *spike.Sketch }

func newSpike(buckets int) Counter {
	s, err := spike.New(buckets)
	if err != nil {
		panic(err)
	}
	return &spikeCounter{s: s}
}

func (c *spikeCounter) AddHash(h uint64)     { c.s.AddHash(h) }
func (c *spikeCounter) Estimate() float64    { return c.s.Estimate() }
func (c *spikeCounter) MemoryFootprint() int { return c.s.MemoryFootprint() }
func (c *spikeCounter) Serialize() []byte {
	b, _ := c.s.MarshalBinary()
	return b
}
func (c *spikeCounter) Merge(other Counter) error {
	o, ok := other.(*spikeCounter)
	if !ok {
		return fmt.Errorf("compare: cannot merge %T with %T", c, other)
	}
	return c.s.Merge(o.s)
}
