package compare

import (
	"math"
	"testing"

	"exaloglog/internal/hashing"
)

func TestAllAlgorithmsBasicContract(t *testing.T) {
	for _, a := range Figure11Algorithms() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			c := a.New()
			if got := c.Estimate(); got != 0 {
				t.Errorf("empty estimate = %g, want 0", got)
			}
			state := uint64(7)
			const n = 20000
			for i := 0; i < n; i++ {
				c.AddHash(hashing.SplitMix64(&state))
			}
			est := c.Estimate()
			if relErr := math.Abs(est-n) / n; relErr > 0.25 {
				t.Errorf("estimate %.0f at n=%d (rel err %.3f)", est, n, relErr)
			}
			if c.MemoryFootprint() <= 0 {
				t.Error("nonpositive memory footprint")
			}
			if len(c.Serialize()) == 0 {
				t.Error("empty serialization")
			}
		})
	}
}

func TestMergeContract(t *testing.T) {
	for _, a := range Table2Algorithms() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			x, y := a.New(), a.New()
			state := uint64(13)
			for i := 0; i < 5000; i++ {
				x.AddHash(hashing.SplitMix64(&state))
			}
			for i := 0; i < 5000; i++ {
				y.AddHash(hashing.SplitMix64(&state))
			}
			if err := x.Merge(y); err != nil {
				t.Fatal(err)
			}
			est := x.Estimate()
			if relErr := math.Abs(est-10000) / 10000; relErr > 0.25 {
				t.Errorf("post-merge estimate %.0f, want ≈10000", est)
			}
		})
	}
}

func TestMergeRejectsForeignType(t *testing.T) {
	algos := Table2Algorithms()
	a := algos[0].New()
	b := algos[5].New()
	if err := a.Merge(b); err == nil {
		t.Error("merge across algorithm types must fail")
	}
}

// TestTable2Shape runs a scaled-down Table 2 (smaller n, few runs) and
// checks the paper's qualitative ordering: ELL(2,20) has the best
// in-memory MVP, HLL 8-bit the worst, and the CPC-like sketch has the
// smallest serialized MVP.
func TestTable2Shape(t *testing.T) {
	rows := Table2(Table2Algorithms(), 100000, 60, 1)
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.RMSE <= 0 || math.IsNaN(r.RMSE) {
			t.Errorf("%s: bad RMSE %f", r.Name, r.RMSE)
		}
	}
	ell := byName["ELL (t=2, d=20, p=8)"]
	hll8 := byName["HLL (8-bit, p=11)"]
	hll6 := byName["HLL (6-bit, p=11)"]
	cpc := byName["CPC-like (compressed PCSA, p=10)"]

	if ell.MVPMemory >= hll6.MVPMemory {
		t.Errorf("ELL memory MVP %.2f not better than 6-bit HLL %.2f", ell.MVPMemory, hll6.MVPMemory)
	}
	if hll6.MVPMemory >= hll8.MVPMemory {
		t.Errorf("6-bit HLL MVP %.2f not better than 8-bit %.2f", hll6.MVPMemory, hll8.MVPMemory)
	}
	if cpc.MVPSerialized >= ell.MVPSerialized {
		t.Errorf("CPC-like serialized MVP %.2f should beat ELL %.2f", cpc.MVPSerialized, ell.MVPSerialized)
	}
	// CPC pays in memory: its in-memory MVP must be clearly above its
	// serialized MVP.
	if cpc.MVPMemory < cpc.MVPSerialized*1.5 {
		t.Errorf("CPC-like memory MVP %.2f vs serialized %.2f: expected large gap", cpc.MVPMemory, cpc.MVPSerialized)
	}
}

func TestFigure10Ns(t *testing.T) {
	ns := Figure10Ns()
	if ns[0] != 10 || ns[len(ns)-1] != 1000000 {
		t.Errorf("range %d..%d", ns[0], ns[len(ns)-1])
	}
	for i := 1; i < len(ns); i++ {
		if ns[i] <= ns[i-1] {
			t.Fatal("not increasing")
		}
	}
}

// TestFigure10SpikeArtifact reproduces the paper's headline criticism in
// miniature: the SpikeSketch-like MVP at n=10..20 is far above its
// mid-range value.
func TestFigure10SpikeArtifact(t *testing.T) {
	algos := []Algorithm{}
	for _, a := range Table2Algorithms() {
		if a.Name == "SpikeSketch-like (128 buckets)" {
			algos = append(algos, a)
		}
	}
	if len(algos) != 1 {
		t.Fatal("spike algorithm not found")
	}
	points := Figure10(algos, []int{10, 100000}, 60, 3)
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	small, large := points[0], points[1]
	if small.MVP < 2*large.MVP {
		t.Errorf("spike MVP at n=10 (%.1f) should far exceed mid-range (%.1f)", small.MVP, large.MVP)
	}
}

func TestFigure11SmokeTest(t *testing.T) {
	// One tiny timing pass over two algorithms to validate plumbing; the
	// real run lives in cmd/ell-perf.
	algos := Figure11Algorithms()[:1]
	res := Figure11(algos, []int{100}, 2, 5)
	if len(res) != 1 {
		t.Fatalf("got %d timing rows", len(res))
	}
	r := res[0]
	for name, v := range map[string]float64{
		"insert": r.InsertNs, "estimate": r.EstimateNs,
		"serialize": r.SerializeNs, "merge": r.MergeNs,
		"merge+estimate": r.MergeAndEstimateNs,
	} {
		if v <= 0 {
			t.Errorf("%s timing %f not positive", name, v)
		}
	}
}
