package compare

import (
	"math"
	"testing"
	"testing/quick"

	"exaloglog/internal/hashing"
)

// The distributed-systems invariants of Section 1 of the paper, checked
// uniformly across every algorithm in the comparison: idempotency (adding
// a duplicate never changes the estimate), order-invariance of the
// state-based estimate, and the merge homomorphism estimate(A ∪ B) from
// merged partial sketches. HIP/martingale variants are excluded from the
// order-invariance property — their running estimates legitimately depend
// on the state-change sequence — which the Table 2 set doesn't contain.

func hashesFromSeed(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	state := seed
	for i := range out {
		out[i] = hashing.SplitMix64(&state)
	}
	return out
}

func TestQuickIdempotencyAllAlgorithms(t *testing.T) {
	for _, a := range Table2Algorithms() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			f := func(seed uint64, nSeed uint16) bool {
				n := int(nSeed)%500 + 1
				hs := hashesFromSeed(seed, n)
				c := a.New()
				for _, h := range hs {
					c.AddHash(h)
				}
				before := c.Estimate()
				for _, h := range hs {
					c.AddHash(h)
					c.AddHash(h)
				}
				return c.Estimate() == before
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestQuickOrderInvarianceAllAlgorithms(t *testing.T) {
	for _, a := range Table2Algorithms() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			f := func(seed uint64, nSeed uint16) bool {
				n := int(nSeed)%400 + 2
				hs := hashesFromSeed(seed, n)
				fwd := a.New()
				for _, h := range hs {
					fwd.AddHash(h)
				}
				rev := a.New()
				for i := len(hs) - 1; i >= 0; i-- {
					rev.AddHash(hs[i])
				}
				return fwd.Estimate() == rev.Estimate()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestQuickMergeHomomorphismAllAlgorithms(t *testing.T) {
	for _, a := range Table2Algorithms() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			f := func(seed uint64, splitSeed uint16) bool {
				hs := hashesFromSeed(seed, 600)
				split := int(splitSeed) % len(hs)
				left, right, union := a.New(), a.New(), a.New()
				for i, h := range hs {
					if i < split {
						left.AddHash(h)
					} else {
						right.AddHash(h)
					}
					union.AddHash(h)
				}
				if err := left.Merge(right); err != nil {
					return false
				}
				return left.Estimate() == union.Estimate()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSerializeStableUnderReserialization: serializing twice yields
// identical bytes (no hidden nondeterminism, e.g. map iteration order).
func TestSerializeStableUnderReserialization(t *testing.T) {
	for _, a := range Table2Algorithms() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			c := a.New()
			state := uint64(99)
			for i := 0; i < 30000; i++ {
				c.AddHash(hashing.SplitMix64(&state))
			}
			s1 := c.Serialize()
			s2 := c.Serialize()
			if string(s1) != string(s2) {
				t.Error("serialization not deterministic")
			}
		})
	}
}

// TestEstimatesFiniteAndMonotoneish: estimates grow (weakly, within
// noise) as more distinct elements arrive, and never go negative or
// non-finite.
func TestEstimatesFiniteAndSane(t *testing.T) {
	for _, a := range Figure10Algorithms() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			c := a.New()
			state := uint64(123)
			prev := 0.0
			for _, n := range []int{10, 100, 1000, 10000} {
				for c2 := 0; c2 < n; c2++ {
					c.AddHash(hashing.SplitMix64(&state))
				}
				est := c.Estimate()
				if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
					t.Fatalf("estimate %v at n≈%d", est, n)
				}
				// A 10x increase in the stream must never *reduce* the
				// estimate by more than statistical noise allows.
				if est < prev*0.5 {
					t.Fatalf("estimate dropped from %.1f to %.1f", prev, est)
				}
				prev = est
			}
		})
	}
}
