package geomell

import (
	"math"
	"math/rand"
	"testing"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
	"exaloglog/internal/mvp"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestNewValidation(t *testing.T) {
	if _, err := New(1.0, 2, 8); err == nil {
		t.Error("accepted b=1")
	}
	if _, err := New(8, 2, 8); err == nil {
		t.Error("accepted b=8")
	}
	if _, err := New(2, -1, 8); err == nil {
		t.Error("accepted d=-1")
	}
	if _, err := New(2, 2, 1); err == nil {
		t.Error("accepted p=1")
	}
	s, err := New(math.Pow(2, 0.25), 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegisters() != 256 {
		t.Errorf("m = %d", s.NumRegisters())
	}
	// kmax must cover the 64-bit hash range: b^kmax >= 2^64.
	if float64(s.kmax)*math.Log2(s.b) < 64 {
		t.Errorf("kmax %d too small for exa-scale at b=%g", s.kmax, s.b)
	}
}

func TestGeometricUpdateValueDistribution(t *testing.T) {
	s, _ := New(math.Pow(2, 0.25), 20, 4)
	r := rng(1)
	const samples = 1 << 17
	counts := map[uint64]int{}
	for i := 0; i < samples; i++ {
		counts[s.updateValue(r.Uint64())]++
	}
	// P(K=k) = (b-1)·b^-k for the first several k.
	for k := uint64(1); k <= 12; k++ {
		want := float64(samples) * (s.b - 1) * math.Pow(s.b, -float64(k))
		got := float64(counts[k])
		if math.Abs(got-want) > 5*math.Sqrt(want)+5 {
			t.Errorf("k=%d: got %.0f, want ≈%.0f", k, got, want)
		}
	}
}

func TestIdempotentCommutative(t *testing.T) {
	b := math.Sqrt2
	hashes := make([]uint64, 1000)
	r := rng(2)
	for i := range hashes {
		hashes[i] = r.Uint64()
	}
	x, _ := New(b, 9, 6)
	for _, h := range hashes {
		x.AddHash(h)
		x.AddHash(h)
	}
	y, _ := New(b, 9, 6)
	r.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })
	for _, h := range hashes {
		y.AddHash(h)
	}
	for i := 0; i < x.NumRegisters(); i++ {
		if x.regs.Get(i) != y.regs.Get(i) {
			t.Fatalf("register %d differs", i)
		}
	}
	// Martingale estimates agree on identical multisets only in
	// expectation, not pathwise; just check both are sane.
	for _, est := range []float64{x.EstimateMartingale(), y.EstimateMartingale()} {
		if math.Abs(est-1000)/1000 > 0.3 {
			t.Errorf("martingale estimate %.0f", est)
		}
	}
}

func TestEstimationAccuracy(t *testing.T) {
	s, _ := New(math.Pow(2, 0.25), 20, 8)
	state := uint64(3)
	const n = 50000
	for i := 0; i < n; i++ {
		s.AddHash(hashing.SplitMix64(&state))
	}
	for name, est := range map[string]float64{
		"ML":         s.EstimateML(),
		"martingale": s.EstimateMartingale(),
	} {
		if relErr := math.Abs(est-n) / n; relErr > 0.12 {
			t.Errorf("%s estimate %.0f (rel err %.3f)", name, est, relErr)
		}
	}
}

// TestErrorMatchesELL is the ablation the paper's Section 2.4 assumption
// rests on: the geometric sketch at b = 2^(2^-t) and the ExaLogLog sketch
// at parameter t have (statistically) the same estimation error, because
// distribution (8) approximates (2) chunk-exactly. We compare the
// empirical martingale RMSE of both over matched runs.
func TestErrorMatchesELL(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const runs = 80
	const n = 20000
	const p = 6
	var geomSE, ellSE float64
	for run := 0; run < runs; run++ {
		g, err := New(math.Pow(2, 0.25), 16, p)
		if err != nil {
			t.Fatal(err)
		}
		e := core.MustNew(core.Config{T: 2, D: 16, P: p})
		if err := e.EnableMartingale(); err != nil {
			t.Fatal(err)
		}
		state := uint64(run)*0x100000001b3 + 17
		for i := 0; i < n; i++ {
			h := hashing.SplitMix64(&state)
			g.AddHash(h)
			e.AddHash(hashing.Mix64(h)) // decorrelate streams
		}
		ge := g.EstimateMartingale()/n - 1
		ee := e.EstimateMartingale()/n - 1
		geomSE += ge * ge
		ellSE += ee * ee
	}
	geomRMSE := math.Sqrt(geomSE / runs)
	ellRMSE := math.Sqrt(ellSE / runs)
	theory := mvp.TheoreticalRMSE(2, 16, p, true)
	// Both must match the common theoretical prediction within the
	// 80-run resolution (≈ ±32 % at 4σ).
	for name, got := range map[string]float64{"geometric": geomRMSE, "ELL": ellRMSE} {
		if math.Abs(got-theory)/theory > 0.32 {
			t.Errorf("%s RMSE %.4f vs theory %.4f", name, got, theory)
		}
	}
	if r := geomRMSE / ellRMSE; r < 0.7 || r > 1.4 {
		t.Errorf("geometric/ELL RMSE ratio %.2f; distributions should be statistically equivalent", r)
	}
}

func TestOmegaTelescopes(t *testing.T) {
	s, _ := New(math.Sqrt2, 9, 4)
	for u := uint64(0); u < 30; u++ {
		direct := 0.0
		for k := u + 1; k <= s.kmax; k++ {
			direct += s.rho(k)
		}
		if math.Abs(direct-s.omega(u)) > 1e-9 {
			t.Errorf("ω(%d): closed %.12f direct %.12f", u, s.omega(u), direct)
		}
	}
}

func TestEmptyEstimate(t *testing.T) {
	s, _ := New(math.Sqrt2, 9, 4)
	if got := s.EstimateML(); got != 0 {
		t.Errorf("empty ML estimate %g", got)
	}
	if got := s.EstimateMartingale(); got != 0 {
		t.Errorf("empty martingale estimate %g", got)
	}
}
