// Package geomell implements the generalized sketch of Section 2 with
// exactly geometrically distributed update values (equation (2)) — the
// design ExaLogLog deliberately rejects in favour of the approximated
// distribution (8).
//
// The paper's Section 2.2 argues the exact geometric distribution has two
// practical problems for b ≠ 2: generating update values needs
// floating-point work (or table searches) instead of a few branch-free
// CPU instructions, and ML estimation loses the power-of-two structure
// that collapses the likelihood to the small equation (15). This package
// exists to validate both claims empirically (see the ablation benchmarks
// and tests): its estimation error matches ELL's at the corresponding
// parameters (b = 2^(2^-t)), while insertion is measurably slower and
// estimation needs a generic bisection solver.
package geomell

import (
	"fmt"
	"math"

	"exaloglog/internal/bitpack"
)

// Sketch is a generalized (b, d, p) sketch with geometric update values.
type Sketch struct {
	b    float64
	d, p int
	// q is the number of bits for the maximum update value; kmax the
	// largest representable update value (saturating).
	q    int
	kmax uint64
	regs *bitpack.Array
	// invLogB caches -1/ln(b) for the update-value transform.
	invLogB float64

	// Martingale estimation state (always enabled; the martingale
	// estimator is distribution-agnostic and exact).
	estimate float64
	mu       float64
}

// New creates an empty sketch. b must be in (1, 4]; q is chosen so that
// the operating range matches ELL's exa-scale support: b^(2^q) >= 2^64.
func New(b float64, d, p int) (*Sketch, error) {
	if b <= 1 || b > 4 {
		return nil, fmt.Errorf("geomell: base %g out of (1, 4]", b)
	}
	if p < 2 || p > 20 {
		return nil, fmt.Errorf("geomell: p=%d out of [2, 20]", p)
	}
	if d < 0 || d > 40 {
		return nil, fmt.Errorf("geomell: d=%d out of [0, 40]", d)
	}
	// Update values needed to cover 64-bit hashing: k up to
	// 64/log2(b); q bits must hold it.
	kmax := uint64(math.Ceil(64/math.Log2(b))) + 1
	q := 0
	for uint64(1)<<uint(q) <= kmax {
		q++
	}
	if q+d > bitpack.MaxWidth {
		return nil, fmt.Errorf("geomell: register width %d exceeds %d", q+d, bitpack.MaxWidth)
	}
	return &Sketch{
		b:       b,
		d:       d,
		p:       p,
		q:       q,
		kmax:    kmax,
		regs:    bitpack.New(1<<uint(p), uint(q+d)),
		invLogB: -1 / math.Log(b),
		mu:      1,
	}, nil
}

// NumRegisters returns 2^p.
func (s *Sketch) NumRegisters() int { return 1 << uint(s.p) }

// RegisterWidth returns q+d bits.
func (s *Sketch) RegisterWidth() int { return s.q + s.d }

// rho returns ρ(k) = (b-1)·b^-k with the last value absorbing the tail.
func (s *Sketch) rho(k uint64) float64 {
	if k < s.kmax {
		return (s.b - 1) * math.Pow(s.b, -float64(k))
	}
	return math.Pow(s.b, -float64(s.kmax-1)) // tail mass
}

// omega returns ω(u) = Σ_{k>u} ρ(k) = b^-u (exactly, by the geometric
// telescoping).
func (s *Sketch) omega(u uint64) float64 {
	if u >= s.kmax {
		return 0
	}
	return math.Pow(s.b, -float64(u))
}

// updateValue transforms a uniform hash into a geometric update value:
// K = ceil(-log_b(1-u)) for u ∈ [0,1). This is the floating-point path
// the paper's Section 2.2 describes (and replaces with equation (8)).
func (s *Sketch) updateValue(h uint64) uint64 {
	// Use the hash bits above the register index as a uniform (0, 1].
	u := (float64(h>>uint(s.p)>>11) + 1) / float64(uint64(1)<<uint(53-s.p))
	k := uint64(math.Ceil(math.Log(u) * s.invLogB))
	if k < 1 {
		k = 1
	}
	if k > s.kmax {
		k = s.kmax
	}
	return k
}

// AddHash inserts an element by its 64-bit hash.
func (s *Sketch) AddHash(h uint64) {
	idx := int(h & (uint64(1)<<uint(s.p) - 1))
	k := s.updateValue(h)
	r := s.regs.Get(idx)
	u := r >> uint(s.d)
	var rNew uint64
	if k > u {
		rNew = k<<uint(s.d) | (uint64(1)<<uint(s.d)+r&(uint64(1)<<uint(s.d)-1))>>(k-u)
	} else if k < u && int64(s.d)+int64(k)-int64(u) >= 0 {
		rNew = r | uint64(1)<<uint(int64(s.d)+int64(k)-int64(u))
	} else {
		return
	}
	if rNew == r {
		return
	}
	// Martingale update (Algorithm 4 with the geometric ρ).
	s.estimate += 1 / s.mu
	s.mu -= s.hReg(r) - s.hReg(rNew)
	s.regs.Set(idx, rNew)
}

// hReg is the probability that register value r changes with the next new
// element, times m (i.e. the per-register term of equation (23)).
func (s *Sketch) hReg(r uint64) float64 {
	u := r >> uint(s.d)
	m := float64(s.NumRegisters())
	h := s.omega(u)
	lo := int64(u) - int64(s.d)
	if lo < 1 {
		lo = 1
	}
	for k := lo; k < int64(u); k++ {
		if r&(uint64(1)<<uint(int64(s.d)-int64(u)+k)) == 0 {
			h += s.rho(uint64(k))
		}
	}
	return h / m
}

// EstimateMartingale returns the (unbiased, single-stream) martingale
// estimate.
func (s *Sketch) EstimateMartingale() float64 { return s.estimate }

// EstimateML maximizes the Poisson likelihood by bisection on the score
// function. Unlike ELL's equation (15) the terms have arbitrary real
// exponents — the generic, slower path the paper avoids by design.
func (s *Sketch) EstimateML() float64 {
	m := float64(s.NumRegisters())
	type term struct {
		rate  float64
		count int32
	}
	// Collect seen/unseen statistics per update value.
	seen := map[uint64]int32{}
	var alpha float64 // Σ over unseen mass: ω(u) + unset indicators
	empty := true
	for i := 0; i < s.NumRegisters(); i++ {
		r := s.regs.Get(i)
		u := r >> uint(s.d)
		alpha += s.omega(u)
		if u == 0 {
			continue
		}
		empty = false
		seen[u]++
		lo := int64(u) - int64(s.d)
		if lo < 1 {
			lo = 1
		}
		for k := lo; k < int64(u); k++ {
			if r&(uint64(1)<<uint(int64(s.d)-int64(u)+k)) != 0 {
				seen[uint64(k)]++
			} else {
				alpha += s.rho(uint64(k))
			}
		}
	}
	if empty {
		return 0
	}
	terms := make([]term, 0, len(seen))
	for k, c := range seen {
		terms = append(terms, term{rate: s.rho(k) / m, count: c})
	}
	score := func(n float64) float64 {
		v := -alpha / m
		for _, t := range terms {
			en := math.Exp(-n * t.rate)
			v += float64(t.count) * t.rate * en / (1 - en)
		}
		return v
	}
	lo, hi := 1e-9, 1.0
	for score(hi) > 0 && hi < 1e30 {
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if score(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
