package pcsa

import (
	"math"
	"testing"
)

// TestWindowedMatchesRaw: the windowed representation must be a lossless
// re-encoding — reconstructed bitmaps always equal the raw sketch's.
func TestWindowedMatchesRaw(t *testing.T) {
	w, err := NewWindowed(8)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := New(8)
	r := rng(1)
	for i := 0; i < 300000; i++ {
		h := r.Uint64()
		w.AddHash(h)
		raw.AddHash(h)
		if i%29989 == 0 {
			for j := 0; j < raw.NumRegisters(); j++ {
				if w.Bitmap(j) != raw.Bitmap(j) {
					t.Fatalf("after %d inserts, register %d: windowed %#x raw %#x (offset=%d)",
						i+1, j, w.Bitmap(j), raw.Bitmap(j), w.offset)
				}
			}
		}
	}
	if w.offset == 0 {
		t.Error("offset never advanced at n >> m")
	}
	// Estimates must agree exactly (same bitmaps, same estimator).
	if w.EstimateML() != raw.EstimateML() {
		t.Error("windowed and raw ML estimates differ")
	}
}

func TestWindowedCompact(t *testing.T) {
	// The point of the windowed form: at n >> m it must be much smaller
	// in memory than the 8-bytes-per-register raw form, with few
	// exceptions.
	w, _ := NewWindowed(10)
	raw, _ := New(10)
	r := rng(3)
	for i := 0; i < 1000000; i++ {
		h := r.Uint64()
		w.AddHash(h)
		raw.AddHash(h)
	}
	if w.MemoryFootprint()*2 > raw.MemoryFootprint() {
		t.Errorf("windowed footprint %d not well below raw %d", w.MemoryFootprint(), raw.MemoryFootprint())
	}
	if len(w.exc) > w.NumRegisters()/16 {
		t.Errorf("too many exceptions: %d of %d registers", len(w.exc), w.NumRegisters())
	}
}

func TestWindowedMergeEqualsUnified(t *testing.T) {
	r := rng(5)
	a, _ := NewWindowed(7)
	b, _ := NewWindowed(7)
	u, _ := NewWindowed(7)
	for i := 0; i < 40000; i++ {
		h := r.Uint64()
		a.AddHash(h)
		u.AddHash(h)
	}
	for i := 0; i < 60000; i++ {
		h := r.Uint64()
		b.AddHash(h)
		u.AddHash(h)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumRegisters(); i++ {
		if a.Bitmap(i) != u.Bitmap(i) {
			t.Fatalf("register %d: merged %#x, unified %#x", i, a.Bitmap(i), u.Bitmap(i))
		}
	}
	c, _ := NewWindowed(8)
	if err := a.Merge(c); err == nil {
		t.Error("merge accepted different p")
	}
}

func TestWindowedEstimateAccuracy(t *testing.T) {
	for _, n := range []int{1000, 100000} {
		w, _ := NewWindowed(8)
		r := rng(int64(n))
		for i := 0; i < n; i++ {
			w.AddHash(r.Uint64())
		}
		got := w.EstimateML()
		if relErr := math.Abs(got-float64(n)) / float64(n); relErr > 0.12 {
			t.Errorf("n=%d: estimate %.1f (rel err %.3f)", n, got, relErr)
		}
	}
}

func TestWindowedSerializationRoundTrips(t *testing.T) {
	w, _ := NewWindowed(6)
	r := rng(9)
	for i := 0; i < 50000; i++ {
		w.AddHash(r.Uint64())
	}
	// Fast windowed serialization.
	data, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var w2 Windowed
	if err := w2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// Compressed (CPC-like) serialization.
	comp, err := w.MarshalCompressed()
	if err != nil {
		t.Fatal(err)
	}
	var w3 Windowed
	if err := w3.UnmarshalCompressed(comp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.NumRegisters(); i++ {
		if w2.Bitmap(i) != w.Bitmap(i) {
			t.Fatalf("fast round trip lost register %d", i)
		}
		if w3.Bitmap(i) != w.Bitmap(i) {
			t.Fatalf("compressed round trip lost register %d", i)
		}
	}
	// Compressed must be much smaller than the raw bitmaps (the p=6
	// sketch has little data for the adaptive coder to train on, so the
	// reduction is smaller than the 4x seen at p=10 in pcsa_test.go).
	if len(comp)*2 > 8*w.NumRegisters() {
		t.Errorf("compressed %d bytes vs %d raw", len(comp), 8*w.NumRegisters())
	}
	if err := new(Windowed).UnmarshalBinary([]byte{6}); err == nil {
		t.Error("accepted truncated data")
	}
}

func TestWindowedValidation(t *testing.T) {
	if _, err := NewWindowed(1); err == nil {
		t.Error("accepted p=1")
	}
	if _, err := NewWindowed(21); err == nil {
		t.Error("accepted p=21")
	}
}
