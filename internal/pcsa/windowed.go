package pcsa

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// Windowed is a CPC-style compact in-memory representation of a PCSA
// sketch. Instead of 64 raw bitmap bits per register it keeps a 16-bit
// window starting at a global offset: bits below the offset are implicitly
// one (the offset only advances when that is true for every register), and
// registers with any bit set above the window — or, transiently, irregular
// low bits — are kept whole in a small exception map.
//
// This mirrors the design trade-off of the Apache DataSketches CPC sketch
// that Table 2 of the ExaLogLog paper documents: the in-memory footprint
// is a fraction of the raw bitmaps (≈ 2 bytes per register), but the
// insert operation is only amortized constant, since advancing the offset
// rewrites all registers.
type Windowed struct {
	p      int
	offset int            // bits [0, offset) are implicitly one
	win    []uint16       // bits [offset, offset+16) per register
	exc    map[int]uint64 // full raw bitmaps for irregular registers
	// lowZero counts regular registers whose window bit 0 (= absolute bit
	// `offset`) is still zero; the offset can advance when it reaches
	// zero and no exception has a zero below offset+1.
	lowZero int
}

const windowBits = 16

// NewWindowed creates an empty windowed PCSA sketch with 2^p registers.
func NewWindowed(p int) (*Windowed, error) {
	if p < MinP || p > MaxP {
		return nil, fmt.Errorf("pcsa: p=%d out of range [%d, %d]", p, MinP, MaxP)
	}
	m := 1 << uint(p)
	return &Windowed{
		p:       p,
		win:     make([]uint16, m),
		exc:     make(map[int]uint64),
		lowZero: m,
	}, nil
}

// Precision returns p.
func (s *Windowed) Precision() int { return s.p }

// NumRegisters returns 2^p.
func (s *Windowed) NumRegisters() int { return len(s.win) }

// Bitmap reconstructs the full 64-bit first-hit bitmap of register i.
func (s *Windowed) Bitmap(i int) uint64 {
	if b, ok := s.exc[i]; ok {
		return b
	}
	return uint64(1)<<uint(s.offset) - 1 | uint64(s.win[i])<<uint(s.offset)
}

// setBitmap stores a raw bitmap, choosing the windowed or exception
// representation and maintaining the lowZero counter.
func (s *Windowed) setBitmap(i int, b uint64) {
	_, wasExc := s.exc[i]
	wasLowZero := !wasExc && s.win[i]&1 == 0

	low := uint64(1)<<uint(s.offset) - 1
	fits := b&low == low && b>>uint(s.offset+windowBits) == 0
	if fits {
		s.win[i] = uint16(b >> uint(s.offset))
		if wasExc {
			delete(s.exc, i)
		}
	} else {
		s.exc[i] = b
		s.win[i] = 0
	}

	isLowZero := fits && s.win[i]&1 == 0
	if wasLowZero && !isLowZero {
		s.lowZero--
	} else if !wasLowZero && isLowZero {
		s.lowZero++
	}
	if s.lowZero == 0 {
		s.tryAdvance()
	}
}

// tryAdvance moves the offset forward while every register has all bits
// below the new offset set — the O(m) consolidation step.
func (s *Windowed) tryAdvance() {
	for {
		// All regular registers have window bit 0 set (lowZero == 0);
		// exceptions must also have bit `offset` set to advance.
		if s.lowZero != 0 {
			return
		}
		for _, b := range s.exc {
			if b&(uint64(1)<<uint(s.offset)) == 0 {
				return
			}
		}
		// Advance by one: every register's bit `offset` is set.
		raw := make([]uint64, len(s.win))
		for i := range s.win {
			raw[i] = s.Bitmap(i)
		}
		s.offset++
		s.exc = make(map[int]uint64)
		s.lowZero = 0
		low := uint64(1)<<uint(s.offset) - 1
		for i, b := range raw {
			if b&low == low && b>>uint(s.offset+windowBits) == 0 {
				s.win[i] = uint16(b >> uint(s.offset))
				if s.win[i]&1 == 0 {
					s.lowZero++
				}
			} else {
				s.exc[i] = b
				s.win[i] = 0
			}
		}
		if s.lowZero != 0 {
			return
		}
	}
}

// AddHash inserts an element by its 64-bit hash (same split as Sketch).
func (s *Windowed) AddHash(h uint64) {
	idx := int(h >> uint(64-s.p))
	masked := h &^ (^uint64(0) << uint(64-s.p))
	k := bits.LeadingZeros64(masked) - s.p + 1
	bit := uint64(1) << uint(k-1)
	b := s.Bitmap(idx)
	if b&bit == 0 {
		s.setBitmap(idx, b|bit)
	}
}

// Merge folds other into s (bitwise OR of the reconstructed bitmaps).
func (s *Windowed) Merge(other *Windowed) error {
	if s.p != other.p {
		return fmt.Errorf("pcsa: cannot merge p=%d with p=%d", s.p, other.p)
	}
	for i := range s.win {
		b := s.Bitmap(i) | other.Bitmap(i)
		if b != s.Bitmap(i) {
			s.setBitmap(i, b)
		}
	}
	return nil
}

// EstimateML returns the unified maximum-likelihood estimate (identical to
// Sketch.EstimateML on the reconstructed bitmaps).
func (s *Windowed) EstimateML() float64 {
	return estimateBitmapsML(s.p, len(s.win), s.Bitmap)
}

// MemoryFootprint approximates total allocated bytes: 2 bytes per register
// plus the exception map.
func (s *Windowed) MemoryFootprint() int {
	return 2*len(s.win) + 48 + 24*len(s.exc) + 64
}

// SizeBytes returns the windowed representation's payload size.
func (s *Windowed) SizeBytes() int { return 2*len(s.win) + 9*len(s.exc) + 2 }

// MarshalCompressed serializes the sketch with the entropy coder — the
// expensive, small CPC-like serialization path.
func (s *Windowed) MarshalCompressed() ([]byte, error) {
	raw, err := s.toDense()
	if err != nil {
		return nil, err
	}
	return raw.MarshalCompressed()
}

// UnmarshalCompressed restores a sketch serialized by MarshalCompressed.
func (s *Windowed) UnmarshalCompressed(data []byte) error {
	var raw Sketch
	if err := raw.UnmarshalCompressed(data); err != nil {
		return err
	}
	w, err := NewWindowed(raw.Precision())
	if err != nil {
		return err
	}
	for i := 0; i < raw.NumRegisters(); i++ {
		if b := raw.Bitmap(i); b != 0 {
			w.setBitmap(i, b)
		}
	}
	*s = *w
	return nil
}

// MarshalBinary serializes the windowed form directly (fast path).
func (s *Windowed) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 2+2*len(s.win)+4+12*len(s.exc))
	out = append(out, byte(s.p), byte(s.offset))
	var buf [8]byte
	for _, w := range s.win {
		binary.LittleEndian.PutUint16(buf[:2], w)
		out = append(out, buf[:2]...)
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(s.exc)))
	out = append(out, buf[:4]...)
	keys := make([]int, 0, len(s.exc))
	for k := range s.exc {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		binary.LittleEndian.PutUint32(buf[:4], uint32(k))
		out = append(out, buf[:4]...)
		binary.LittleEndian.PutUint64(buf[:], s.exc[k])
		out = append(out, buf[:]...)
	}
	return out, nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (s *Windowed) UnmarshalBinary(data []byte) error {
	if len(data) < 2 {
		return fmt.Errorf("pcsa: windowed data too short")
	}
	p := int(data[0])
	if p < MinP || p > MaxP {
		return fmt.Errorf("pcsa: bad precision %d", p)
	}
	m := 1 << uint(p)
	need := 2 + 2*m + 4
	if len(data) < need {
		return fmt.Errorf("pcsa: windowed data too short for p=%d", p)
	}
	s.p = p
	s.offset = int(data[1])
	s.win = make([]uint16, m)
	for i := range s.win {
		s.win[i] = binary.LittleEndian.Uint16(data[2+2*i:])
	}
	nExc := int(binary.LittleEndian.Uint32(data[2+2*m:]))
	pos := need
	if len(data) != pos+12*nExc {
		return fmt.Errorf("pcsa: windowed exception section malformed")
	}
	s.exc = make(map[int]uint64, nExc)
	for i := 0; i < nExc; i++ {
		k := int(binary.LittleEndian.Uint32(data[pos:]))
		s.exc[k] = binary.LittleEndian.Uint64(data[pos+4:])
		pos += 12
	}
	s.lowZero = 0
	for i := range s.win {
		if _, isExc := s.exc[i]; !isExc && s.win[i]&1 == 0 {
			s.lowZero++
		}
	}
	return nil
}

// toDense converts to the raw-bitmap representation.
func (s *Windowed) toDense() (*Sketch, error) {
	raw, err := New(s.p)
	if err != nil {
		return nil, err
	}
	for i := range s.win {
		raw.maps[i] = s.Bitmap(i)
	}
	return raw, nil
}
