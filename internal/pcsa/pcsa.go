// Package pcsa implements probabilistic counting with stochastic averaging
// (PCSA, also known as the FM-sketch), the predecessor of HyperLogLog, and
// a CPC-like compressed serialization of it.
//
// A PCSA sketch keeps, per register, the full bitmap of update values
// observed — not just the maximum. Section 2.5 of the ExaLogLog paper notes
// that PCSA (and the CPC sketch built on it) stores exactly the same
// information as an ELL(0, 64) sketch, just encoded differently. Two
// consequences exploited here:
//
//   - the unified maximum-likelihood machinery of the paper applies
//     directly (Section 6 suggests exactly this), and
//   - the bitmap state is highly compressible; entropy-coding the
//     serialized form yields the small serialized MVP that makes CPC
//     attractive, at the cost of an expensive serialization step
//     (Table 2, Section 5.3).
package pcsa

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"exaloglog/internal/compress"
	"exaloglog/internal/core"
)

// MinP and MaxP bound the precision parameter.
const (
	MinP = 2
	MaxP = 20
)

// fmPhi is the correction constant of the original Flajolet-Martin
// estimator: E[R] ≈ log2(φ·n/m) with φ ≈ 0.77351.
const fmPhi = 0.77351

// Sketch is a PCSA sketch with 2^p registers, each a 64-bit first-hit
// bitmap: bit k-1 of register i is set iff update value k has been
// observed for register i.
type Sketch struct {
	p    int
	maps []uint64
}

// New creates an empty PCSA sketch with 2^p registers.
func New(p int) (*Sketch, error) {
	if p < MinP || p > MaxP {
		return nil, fmt.Errorf("pcsa: p=%d out of range [%d, %d]", p, MinP, MaxP)
	}
	return &Sketch{p: p, maps: make([]uint64, 1<<uint(p))}, nil
}

// Precision returns p.
func (s *Sketch) Precision() int { return s.p }

// NumRegisters returns 2^p.
func (s *Sketch) NumRegisters() int { return len(s.maps) }

// AddHash inserts an element by its 64-bit hash. Like HLL's Algorithm 1,
// the top p bits select a register and the update value is the number of
// leading zeros of the remaining bits plus one.
func (s *Sketch) AddHash(h uint64) {
	idx := int(h >> uint(64-s.p))
	masked := h &^ (^uint64(0) << uint(64-s.p))
	k := bits.LeadingZeros64(masked) - s.p + 1 // in [1, 65-p]
	s.maps[idx] |= uint64(1) << uint(k-1)
}

// Bitmap returns the raw bitmap of register i.
func (s *Sketch) Bitmap(i int) uint64 { return s.maps[i] }

// Merge folds other into s (bitwise OR of the bitmaps).
func (s *Sketch) Merge(other *Sketch) error {
	if s.p != other.p {
		return fmt.Errorf("pcsa: cannot merge p=%d with p=%d", s.p, other.p)
	}
	for i, b := range other.maps {
		s.maps[i] |= b
	}
	return nil
}

// EstimateFM returns the classic Flajolet-Martin estimate
// m/φ · 2^(ΣR_i/m), where R_i is the position of the lowest unset bit of
// register i. It is retained for historical comparison; EstimateML is
// uniformly better.
func (s *Sketch) EstimateFM() float64 {
	sum := 0.0
	for _, b := range s.maps {
		sum += float64(bits.TrailingZeros64(^b))
	}
	m := float64(len(s.maps))
	return m / fmPhi * math.Exp2(sum/m)
}

// EstimateML returns the maximum-likelihood estimate computed through the
// unified likelihood shape (15) of the ExaLogLog paper: every bitmap bit k
// contributes β_φ(k) when set and α mass 2^-φ(k) when unset, with
// φ(k) = min(k, 64-p).
func (s *Sketch) EstimateML() float64 {
	return estimateBitmapsML(s.p, len(s.maps), func(i int) uint64 { return s.maps[i] })
}

// estimateBitmapsML is the shared ML estimator over per-register first-hit
// bitmaps, used by both the raw and the windowed representation.
func estimateBitmapsML(p, m int, bitmap func(int) uint64) float64 {
	cap64 := 64 - p
	kmax := 65 - p
	beta := make([]int32, cap64)
	var aLo, aHi uint64
	for i := 0; i < m; i++ {
		b := bitmap(i)
		for k := 1; k <= kmax; k++ {
			phi := k
			if phi > cap64 {
				phi = cap64
			}
			if b&(uint64(1)<<uint(k-1)) != 0 {
				beta[phi-1]++
			} else {
				var carry uint64
				aLo, carry = bits.Add64(aLo, uint64(1)<<uint(cap64-phi), 0)
				aHi += carry
			}
		}
	}
	alpha := math.Ldexp(float64(aHi), p) + math.Ldexp(float64(aLo), p-64)
	return core.SolveML(core.Coefficients{Alpha: alpha, Beta: beta, Lo: 1}, float64(m))
}

// SizeBytes returns the raw in-memory bitmap size: 8 bytes per register.
func (s *Sketch) SizeBytes() int { return 8 * len(s.maps) }

// MemoryFootprint approximates total allocated bytes.
func (s *Sketch) MemoryFootprint() int { return s.SizeBytes() + 48 }

// MarshalBinary serializes the raw bitmaps (fast, uncompressed).
func (s *Sketch) MarshalBinary() ([]byte, error) {
	out := make([]byte, 1+8*len(s.maps))
	out[0] = byte(s.p)
	for i, b := range s.maps {
		binary.LittleEndian.PutUint64(out[1+8*i:], b)
	}
	return out, nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("pcsa: empty data")
	}
	p := int(data[0])
	if p < MinP || p > MaxP || len(data) != 1+8<<uint(p) {
		return fmt.Errorf("pcsa: malformed payload")
	}
	s.p = p
	s.maps = make([]uint64, 1<<uint(p))
	for i := range s.maps {
		s.maps[i] = binary.LittleEndian.Uint64(data[1+8*i:])
	}
	return nil
}

// compressedContexts is the number of adaptive contexts used by the
// entropy coder: one per bit position k (the set-probability of bit k
// depends only on k and n/m, so position is the natural context).
const compressedContexts = 64

// MarshalCompressed serializes the sketch with adaptive entropy coding —
// the CPC-like path. It is much smaller than MarshalBinary near and beyond
// n ≈ m but deliberately expensive (it visits every bit through the range
// coder), mirroring CPC's costly consolidation/compression step that the
// paper's Section 5.3 measures.
func (s *Sketch) MarshalCompressed() ([]byte, error) {
	enc := compress.NewEncoder()
	model := compress.NewModel(compressedContexts)
	kmax := 65 - s.p
	for _, b := range s.maps {
		for k := 1; k <= kmax; k++ {
			enc.EncodeBit(model, k-1, int(b>>uint(k-1)&1))
		}
	}
	body := enc.Close()
	out := make([]byte, 0, 1+len(body))
	out = append(out, byte(s.p))
	out = append(out, body...)
	return out, nil
}

// UnmarshalCompressed restores a sketch serialized by MarshalCompressed.
func (s *Sketch) UnmarshalCompressed(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("pcsa: empty data")
	}
	p := int(data[0])
	if p < MinP || p > MaxP {
		return fmt.Errorf("pcsa: bad precision %d", p)
	}
	dec := compress.NewDecoder(data[1:])
	model := compress.NewModel(compressedContexts)
	s.p = p
	s.maps = make([]uint64, 1<<uint(p))
	kmax := 65 - p
	for i := range s.maps {
		var b uint64
		for k := 1; k <= kmax; k++ {
			if dec.DecodeBit(model, k-1) == 1 {
				b |= uint64(1) << uint(k-1)
			}
		}
		s.maps[i] = b
	}
	return nil
}
