package pcsa

import (
	"math"
	"math/rand"
	"testing"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func fill(s *Sketch, n int, seed int64) {
	r := rng(seed)
	for i := 0; i < n; i++ {
		s.AddHash(r.Uint64())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("accepted p=1")
	}
	if _, err := New(21); err == nil {
		t.Error("accepted p=21")
	}
	s, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegisters() != 256 || s.SizeBytes() != 2048 {
		t.Errorf("m=%d size=%d", s.NumRegisters(), s.SizeBytes())
	}
}

func TestAddSetsExpectedBit(t *testing.T) {
	s, _ := New(4)
	// Hash with top 4 bits = 0101 (register 5) and the next bit set:
	// nlz(masked) = 4 → k = 1 → bit 0.
	h := uint64(0x5)<<60 | uint64(1)<<59
	s.AddHash(h)
	if s.Bitmap(5) != 1 {
		t.Errorf("bitmap(5) = %b, want 1", s.Bitmap(5))
	}
	// Same register, two levels deeper: k = 3 → bit 2.
	h = uint64(0x5)<<60 | uint64(1)<<57
	s.AddHash(h)
	if s.Bitmap(5) != 0b101 {
		t.Errorf("bitmap(5) = %b, want 101", s.Bitmap(5))
	}
}

func TestIdempotentCommutativeMerge(t *testing.T) {
	r := rng(3)
	hashes := make([]uint64, 1000)
	for i := range hashes {
		hashes[i] = r.Uint64()
	}
	a, _ := New(6)
	for _, h := range hashes {
		a.AddHash(h)
		a.AddHash(h)
	}
	b, _ := New(6)
	r.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })
	for _, h := range hashes {
		b.AddHash(h)
	}
	for i := 0; i < a.NumRegisters(); i++ {
		if a.Bitmap(i) != b.Bitmap(i) {
			t.Fatalf("register %d differs", i)
		}
	}
	// Merge equals unified stream.
	c, _ := New(6)
	u, _ := New(6)
	for _, h := range hashes[:500] {
		c.AddHash(h)
		u.AddHash(h)
	}
	d, _ := New(6)
	for _, h := range hashes[500:] {
		d.AddHash(h)
		u.AddHash(h)
	}
	if err := c.Merge(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.NumRegisters(); i++ {
		if c.Bitmap(i) != u.Bitmap(i) {
			t.Fatalf("merged register %d differs from unified", i)
		}
	}
	e, _ := New(7)
	if err := c.Merge(e); err == nil {
		t.Error("merge accepted different p")
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// PCSA ML error ≈ sqrt(ln2 / (2... use a generous 5σ bound of ~10 %
	// at p=8 for ML and a looser one for the classic FM estimator.
	for _, n := range []int{500, 5000, 100000} {
		s, _ := New(8)
		fill(s, n, int64(n))
		ml := s.EstimateML()
		if relErr := math.Abs(ml-float64(n)) / float64(n); relErr > 0.12 {
			t.Errorf("n=%d: ML estimate %.1f (rel err %.3f)", n, ml, relErr)
		}
	}
	// The FM estimator needs n >> m to be in its asymptotic regime.
	s, _ := New(6)
	const n = 200000
	fill(s, n, 99)
	fm := s.EstimateFM()
	if relErr := math.Abs(fm-float64(n)) / float64(n); relErr > 0.25 {
		t.Errorf("FM estimate %.1f (rel err %.3f)", fm, relErr)
	}
}

func TestEstimateEmpty(t *testing.T) {
	s, _ := New(6)
	if got := s.EstimateML(); got != 0 {
		t.Errorf("empty ML estimate = %g, want 0", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	s, _ := New(7)
	fill(s, 3000, 5)
	raw, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r1 Sketch
	if err := r1.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	comp, err := s.MarshalCompressed()
	if err != nil {
		t.Fatal(err)
	}
	var r2 Sketch
	if err := r2.UnmarshalCompressed(comp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.NumRegisters(); i++ {
		if r1.Bitmap(i) != s.Bitmap(i) {
			t.Fatalf("raw round trip lost register %d", i)
		}
		if r2.Bitmap(i) != s.Bitmap(i) {
			t.Fatalf("compressed round trip lost register %d", i)
		}
	}
	if err := new(Sketch).UnmarshalBinary([]byte{7, 1, 2}); err == nil {
		t.Error("accepted truncated raw payload")
	}
}

func TestCompressedSmallerThanRaw(t *testing.T) {
	// The whole point of the CPC-like path: at n ≈ 8m the compressed form
	// must be much smaller than the 8-bytes-per-register raw form, and in
	// the ballpark of the CPC MVP (~2.3 → ~0.3-0.5 bytes/register... we
	// just require at least a 4x reduction).
	s, _ := New(10)
	fill(s, 8*1024, 13)
	raw, _ := s.MarshalBinary()
	comp, _ := s.MarshalCompressed()
	if len(comp)*4 > len(raw) {
		t.Errorf("compressed %d bytes vs raw %d: less than 4x reduction", len(comp), len(raw))
	}
}

func TestCompressedSizeGrowsWithN(t *testing.T) {
	sizes := []int{}
	for _, n := range []int{100, 1000, 10000} {
		s, _ := New(10)
		fill(s, n, int64(n)+77)
		comp, _ := s.MarshalCompressed()
		sizes = append(sizes, len(comp))
	}
	if !(sizes[0] < sizes[1] && sizes[1] < sizes[2]) {
		t.Errorf("compressed sizes %v not increasing with n", sizes)
	}
}

func TestMLBetterThanFM(t *testing.T) {
	const runs = 30
	const n = 30000
	var seFM, seML float64
	for run := 0; run < runs; run++ {
		s, _ := New(6)
		fill(s, n, int64(run)*911+3)
		ef := s.EstimateFM()/n - 1
		em := s.EstimateML()/n - 1
		seFM += ef * ef
		seML += em * em
	}
	if seML > seFM {
		t.Errorf("ML squared error %.6f worse than FM %.6f", seML/runs, seFM/runs)
	}
}
