package mvp

import (
	"math"
	"testing"
)

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f (±%.3g)", name, got, want, tol)
	}
}

func TestBase(t *testing.T) {
	within(t, "Base(0)", Base(0), 2, 1e-15)
	within(t, "Base(1)", Base(1), math.Sqrt2, 1e-15)
	within(t, "Base(2)", Base(2), math.Pow(2, 0.25), 1e-15)
	within(t, "Base(3)", Base(3), math.Pow(2, 0.125), 1e-15)
}

// TestPaperHeadlineMVPs pins the named MVP values from the paper:
// HLL 6.45 (6-bit registers), ULL 4.63 (28 % better), ELL(2,20) 3.67
// (43 % better), ELL(2,24) 3.78, ELL(1,9) 3.90, and the martingale optimum
// ELL(2,16) 2.77 (33 % better than HLL's 4.16).
func TestPaperHeadlineMVPs(t *testing.T) {
	// Special cases of the generalized structure (Section 2.5):
	// HLL = ELL(0,0), EHLL = ELL(0,1), ULL = ELL(0,2).
	within(t, "HLL dense ML MVP", DenseML(2, 6, 0), 6.449, 0.005)
	within(t, "ULL dense ML MVP", DenseML(2, 6, 2), 4.631, 0.005)

	within(t, "ELL(2,20) dense ML MVP", DenseML(Base(2), 8, 20), 3.67, 0.03)
	within(t, "ELL(2,24) dense ML MVP", DenseML(Base(2), 8, 24), 3.78, 0.03)
	within(t, "ELL(1,9) dense ML MVP", DenseML(Base(1), 7, 9), 3.90, 0.03)

	within(t, "HLL martingale MVP", DenseMartingale(2, 6, 0), 4.159, 0.005)
	within(t, "ELL(2,16) martingale MVP", DenseMartingale(Base(2), 8, 16), 2.77, 0.01)
}

// TestHeadlineSavings pins the headline percentages: ELL(2,20) needs 43 %
// less space than 6-bit HLL at equal error; martingale ELL(2,16) saves 33 %.
func TestHeadlineSavings(t *testing.T) {
	hll := DenseML(2, 6, 0)
	ell := DenseML(Base(2), 8, 20)
	saving := 1 - ell/hll
	within(t, "ELL(2,20) space saving vs HLL", saving, 0.43, 0.01)

	hllM := DenseMartingale(2, 6, 0)
	ellM := DenseMartingale(Base(2), 8, 16)
	within(t, "martingale saving vs HLL", 1-ellM/hllM, 0.33, 0.01)
}

// TestFigure4Minima checks the arrows of Figure 4: the minimum of the t=2
// curve is at d=20. For t=1 the curve is nearly flat around d=8-9; the
// paper highlights ELL(1,9) because 6+1+9 = 16-bit registers are
// byte-aligned, so we only require the minimum to fall in that flat region
// and the d=9 point to be within 1 % of it.
func TestFigure4Minima(t *testing.T) {
	c2 := Curve(KindDenseML, 2, 60)
	if min := Minimum(c2); min.X != 20 {
		t.Errorf("t=2 dense-ML minimum at d=%g, want 20", min.X)
	}
	c1 := Curve(KindDenseML, 1, 60)
	min := Minimum(c1)
	if min.X < 8 || min.X > 9 {
		t.Errorf("t=1 dense-ML minimum at d=%g, want 8 or 9", min.X)
	}
	d9 := c1.Points[9].Y
	if d9 > min.Y*1.01 {
		t.Errorf("t=1 d=9 MVP %.4f more than 1%% above minimum %.4f", d9, min.Y)
	}
}

// TestFigure5Minimum checks that the martingale-optimal configuration is
// t=2, d=16 (Figure 5).
func TestFigure5Minimum(t *testing.T) {
	c2 := Curve(KindDenseMartingale, 2, 60)
	if min := Minimum(c2); min.X != 16 {
		t.Errorf("t=2 martingale minimum at d=%g, want 16", min.X)
	}
}

// TestCompressedBounds checks the compressed-state formulas against the
// paper's reference points: HLL's FISH number ≈ 2.9-3.1 (Figure 6 top),
// the compressed martingale value for HLL ≈ 1.98, and the 1.63 limit.
func TestCompressedBounds(t *testing.T) {
	fish := CompressedML(2, 0)
	if fish < 2.8 || fish > 3.2 {
		t.Errorf("HLL FISH number = %.3f, want within [2.8, 3.2]", fish)
	}
	within(t, "HLL compressed martingale MVP", CompressedMartingale(2, 0), 1.98, 0.02)

	// All compressed-ML values must respect the conjectured 1.98 bound.
	for _, tt := range []int{0, 1, 2, 3} {
		for d := 0; d <= 60; d += 5 {
			v := CompressedML(Base(tt), d)
			if v < 1.98-0.02 {
				t.Errorf("CompressedML(t=%d, d=%d) = %.3f violates the 1.98 conjectured bound", tt, d, v)
			}
		}
	}
	// ...and compressed-martingale values the 1.63 limit.
	for _, tt := range []int{0, 1, 2, 3} {
		for d := 0; d <= 60; d += 5 {
			v := CompressedMartingale(Base(tt), d)
			if v < 1.63-0.02 {
				t.Errorf("CompressedMartingale(t=%d, d=%d) = %.3f violates the 1.63 limit", tt, d, v)
			}
		}
	}
}

// TestFigure6PrefersD24 verifies the paper's remark that with compression
// t=2, d=24 is probably more efficient than d=20 or d=16 (Section 2.4).
func TestFigure6PrefersD24(t *testing.T) {
	b := Base(2)
	v16 := CompressedML(b, 16)
	v20 := CompressedML(b, 20)
	v24 := CompressedML(b, 24)
	if !(v24 < v20 && v20 < v16) {
		t.Errorf("compressed MVP ordering: d=16 %.3f, d=20 %.3f, d=24 %.3f; want strictly decreasing", v16, v20, v24)
	}
}

func TestApproximatePMFSumsToOne(t *testing.T) {
	for _, tt := range []int{0, 1, 2, 3} {
		sum := 0.0
		for k := 1; k <= 4096; k++ {
			sum += ApproximatePMF(tt, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("t=%d: ΣρPMF = %.12f, want 1", tt, sum)
		}
	}
}

// TestChunkProbabilityMatch verifies the property below equation (8): each
// chunk of 2^t consecutive update values carries total probability 2^-(c+1)
// under both the geometric and the approximate distribution.
func TestChunkProbabilityMatch(t *testing.T) {
	for _, tt := range []int{0, 1, 2, 3} {
		b := Base(tt)
		w := 1 << uint(tt)
		for c := 0; c < 12; c++ {
			var sg, sa float64
			for k := c*w + 1; k <= c*w+w; k++ {
				sg += GeometricPMF(b, k)
				sa += ApproximatePMF(tt, k)
			}
			want := math.Exp2(-float64(c + 1))
			if math.Abs(sg-want) > 1e-12 {
				t.Errorf("t=%d chunk %d: geometric sum %.15f, want %.15f", tt, c, sg, want)
			}
			if math.Abs(sa-want) > 1e-12 {
				t.Errorf("t=%d chunk %d: approximate sum %.15f, want %.15f", tt, c, sa, want)
			}
		}
	}
}

func TestBiasCorrectionConstantPositive(t *testing.T) {
	for _, tt := range []int{0, 1, 2} {
		for _, d := range []int{0, 2, 9, 16, 20, 24} {
			c := BiasCorrectionConstant(Base(tt), d)
			if c <= 0 || c > 10 {
				t.Errorf("c(t=%d, d=%d) = %.4f out of plausible range", tt, d, c)
			}
		}
	}
}

func TestTheoreticalRMSE(t *testing.T) {
	// ELL(2,20,p=8): RMSE = sqrt(3.67/(28·256)) ≈ 2.26 % — the Table 2 row.
	got := TheoreticalRMSE(2, 20, 8, false)
	within(t, "RMSE ELL(2,20,8)", got, 0.0226, 0.0003)
	// Martingale is always at least as accurate.
	for _, p := range []int{4, 6, 8, 10} {
		ml := TheoreticalRMSE(2, 20, p, false)
		mart := TheoreticalRMSE(2, 20, p, true)
		if mart > ml {
			t.Errorf("p=%d: martingale RMSE %.5f > ML RMSE %.5f", p, mart, ml)
		}
	}
	// Error scales as 2^(-p/2).
	r4 := TheoreticalRMSE(2, 20, 4, false)
	r10 := TheoreticalRMSE(2, 20, 10, false)
	within(t, "RMSE ratio p=4 vs p=10", r4/r10, 8, 1e-9)
}

func TestMemoryForError(t *testing.T) {
	// Figure 1: at 2 % error and MVP 6, memory = 6/0.0004/8 = 1875 bytes.
	within(t, "MemoryForError(6, 2%)", MemoryForError(6, 0.02), 1875, 1e-9)
	series := Figure1([]float64{2, 3, 4, 5, 6, 8})
	if len(series) != 6 {
		t.Fatalf("Figure1 returned %d series, want 6", len(series))
	}
	for _, s := range series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y >= s.Points[i-1].Y {
				t.Fatalf("%s: memory not decreasing with error", s.Label)
			}
		}
	}
}

func TestFigure2Series(t *testing.T) {
	g, a := Figure2(2, 20)
	if len(g.Points) != 20 || len(a.Points) != 20 {
		t.Fatalf("Figure2 lengths: %d, %d; want 20, 20", len(g.Points), len(a.Points))
	}
	// The approximate PMF is a staircase: constant within chunks of 2^t.
	if a.Points[0].Y != a.Points[3].Y {
		t.Error("approximate PMF should be constant over the first chunk of 4 values")
	}
	if a.Points[3].Y == a.Points[4].Y {
		t.Error("approximate PMF should drop between chunks")
	}
}
