// Package mvp implements the paper's theoretical space-efficiency formulas.
//
// The memory-variance product (MVP, equation (1)) is the relative variance
// of an unbiased distinct-count estimate multiplied by the state size in
// bits. For the generalized data structure underlying ExaLogLog the paper
// gives four closed forms, all parameterized by the base b of the update
// value distribution and the number d of extra indicator bits:
//
//	(3) dense registers, efficient unbiased (ML) estimator
//	(5) optimally compressed state, efficient unbiased estimator
//	(6) dense registers, martingale estimator
//	(7) optimally compressed state, martingale estimator
//
// ExaLogLog replaces the geometric update distribution with the
// approximated distribution (8); the two coincide for b = 2^(2^-t), so all
// formulas are evaluated at that base. These functions regenerate Figures
// 1, 2 and 4-7 and predict the RMSE curves of Figure 8.
package mvp

import (
	"fmt"
	"math"

	"exaloglog/internal/zeta"
)

// Base returns the geometric base b = 2^(2^-t) that the approximated update
// value distribution (8) with parameter t mimics.
func Base(t int) float64 {
	if t < 0 {
		panic(fmt.Sprintf("mvp: negative t=%d", t))
	}
	return math.Exp2(math.Exp2(-float64(t)))
}

// y computes the recurring quantity b^(-d)/(b-1).
func y(b float64, d int) float64 {
	return math.Pow(b, -float64(d)) / (b - 1)
}

// DenseML evaluates equation (3): the asymptotic MVP for registers stored
// densely in a bit array and an efficient unbiased estimator meeting the
// Cramér-Rao bound. q is the number of bits for the maximum update value
// (q = 6+t for exa-scale support).
func DenseML(b float64, q, d int) float64 {
	return float64(q+d) * math.Log(b) / zeta.Hurwitz(2, 1+y(b, d))
}

// DenseMartingale evaluates equation (6): the asymptotic MVP for dense
// registers and the martingale (HIP) estimator.
func DenseMartingale(b float64, q, d int) float64 {
	return float64(q+d) * math.Log(b) / 2 * (1 + y(b, d))
}

// CompressedML evaluates equation (5): the asymptotic MVP under optimal
// (Shannon-entropy) compression of the state with an efficient unbiased
// estimator. This is the Fisher-Shannon (FISH) number of the sketch; the
// conjectured lower bound for mergeable, reproducible sketches is 1.98.
func CompressedML(b float64, d int) float64 {
	yy := y(b, d)
	num := 1/(1+yy) + zeta.CompressedIntegral(yy)
	return num / (zeta.Hurwitz(2, 1+yy) * math.Ln2)
}

// CompressedMartingale evaluates equation (7): the asymptotic MVP under
// optimal compression with the martingale estimator. Its lower bound 1.63
// is the theoretical limit for non-mergeable sketches.
func CompressedMartingale(b float64, d int) float64 {
	yy := y(b, d)
	return (1 + (1+yy)*zeta.CompressedIntegral(yy)) / (2 * math.Ln2)
}

// BiasCorrectionConstant evaluates the constant c of equation (4). The
// first-order bias-corrected ML estimate is n̂ = n̂_ML / (1 + c/m).
func BiasCorrectionConstant(b float64, d int) float64 {
	yy := y(b, d)
	z2 := zeta.Hurwitz(2, 1+yy)
	z3 := zeta.Hurwitz(3, 1+yy)
	return math.Log(b) * (1 + 2*yy) * z3 / (z2 * z2)
}

// TheoreticalRMSE returns the relative standard error sqrt(MVP/((q+d)·m))
// predicted for a dense ELL sketch with m = 2^p registers (Section 5.1),
// for either the ML (martingale=false) or martingale estimator.
func TheoreticalRMSE(t, d, p int, martingale bool) float64 {
	b := Base(t)
	q := 6 + t
	var v float64
	if martingale {
		v = DenseMartingale(b, q, d)
	} else {
		v = DenseML(b, q, d)
	}
	m := math.Exp2(float64(p))
	return math.Sqrt(v / (float64(q+d) * m))
}

// MemoryForError returns the state size in bytes needed to reach the given
// relative standard error under a given MVP, following equation (1) and
// Figure 1: bits = MVP / err², bytes = bits/8.
func MemoryForError(mvpValue, relErr float64) float64 {
	return mvpValue / (relErr * relErr) / 8
}

// GeometricPMF returns ρ_update(k) of equation (2): (b-1)·b^-k for k ≥ 1.
func GeometricPMF(b float64, k int) float64 {
	if k < 1 {
		return 0
	}
	return (b - 1) * math.Pow(b, -float64(k))
}

// ApproximatePMF returns ρ_update(k) of equation (8):
// 2^-(t+1+⌊(k-1)/2^t⌋) for k ≥ 1. Chunks of 2^t consecutive update values
// share the total probability 2^-(c+1) with the geometric distribution of
// base 2^(2^-t), which is why (8) approximates (2).
func ApproximatePMF(t, k int) float64 {
	if k < 1 {
		return 0
	}
	return math.Exp2(-float64(t + 1 + (k-1)>>uint(t)))
}

// Point is one (x, y) sample of a generated figure series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points, one line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure1 generates the memory-over-error lines of Figure 1 for the given
// MVPs, sampling relative standard errors between 1% and 5%.
func Figure1(mvps []float64) []Series {
	var out []Series
	for _, v := range mvps {
		s := Series{Label: fmt.Sprintf("MVP = %g", v)}
		for e := 0.010; e <= 0.0501; e += 0.001 {
			s.Points = append(s.Points, Point{X: e * 100, Y: MemoryForError(v, e)})
		}
		out = append(out, s)
	}
	return out
}

// Figure2 generates the PMF comparison of Figure 2 for a given t: the
// geometric distribution with b = 2^(2^-t) against the approximate
// distribution (8), for k = 1..kmax.
func Figure2(t, kmax int) (geometric, approximate Series) {
	b := Base(t)
	geometric.Label = fmt.Sprintf("geometric b=2^(1/%d)", 1<<uint(t-0)/1)
	geometric.Label = fmt.Sprintf("geometric b=%.6g", b)
	approximate.Label = fmt.Sprintf("approximate t=%d", t)
	for k := 1; k <= kmax; k++ {
		geometric.Points = append(geometric.Points, Point{X: float64(k), Y: GeometricPMF(b, k)})
		approximate.Points = append(approximate.Points, Point{X: float64(k), Y: ApproximatePMF(t, k)})
	}
	return geometric, approximate
}

// CurveKind selects which of the four MVP formulas a Figure 4-7 curve uses.
type CurveKind int

const (
	// KindDenseML is Figure 4 (equation 3).
	KindDenseML CurveKind = iota
	// KindDenseMartingale is Figure 5 (equation 6).
	KindDenseMartingale
	// KindCompressedML is Figure 6 (equation 5).
	KindCompressedML
	// KindCompressedMartingale is Figure 7 (equation 7).
	KindCompressedMartingale
)

// Curve computes MVP(d) for d = 0..dmax at parameter t, using q = 6+t and
// b = 2^(2^-t) as in Figures 4-7.
func Curve(kind CurveKind, t, dmax int) Series {
	b := Base(t)
	q := 6 + t
	s := Series{Label: fmt.Sprintf("t=%d", t)}
	for d := 0; d <= dmax; d++ {
		var v float64
		switch kind {
		case KindDenseML:
			v = DenseML(b, q, d)
		case KindDenseMartingale:
			v = DenseMartingale(b, q, d)
		case KindCompressedML:
			v = CompressedML(b, d)
		case KindCompressedMartingale:
			v = CompressedMartingale(b, d)
		default:
			panic(fmt.Sprintf("mvp: unknown curve kind %d", kind))
		}
		s.Points = append(s.Points, Point{X: float64(d), Y: v})
	}
	return s
}

// Minimum returns the point with the smallest Y of a series.
func Minimum(s Series) Point {
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.Y < best.Y {
			best = p
		}
	}
	return best
}
