// Package loadreport defines the JSON document ell-loader emits and
// ell-benchjson folds into BENCH_serving.json as cluster-level rows —
// the shared contract that keeps the two tools decoupled.
package loadreport

// Pkg is the pseudo-package tag loader rows carry inside
// BENCH_serving.json, distinguishing cluster-level load results from
// single-process Go benchmark rows.
const Pkg = "cluster-load"

// Latency is a set of client-observed latency percentiles in
// microseconds. For pipelined workloads the unit observed is one
// pipeline batch round trip, attributed to every command in the batch
// — what a caller awaiting its own reply actually experiences.
type Latency struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// VerbResult is the per-verb slice of the load outcome.
type VerbResult struct {
	Ops    uint64 `json:"ops"`
	Errors uint64 `json:"errors,omitempty"`
}

// Result is one complete loader run: the configuration that produced
// it (so a row in BENCH_serving.json stays self-describing) and the
// measured outcome.
type Result struct {
	Tool  string   `json:"tool"` // "ell-loader"
	Addrs []string `json:"addrs"`
	Conns int      `json:"conns"`
	Depth int      `json:"depth"` // pipeline depth per connection
	Dist  string   `json:"dist"`  // "zipf" or "uniform"
	Keys  int      `json:"keys"`
	Mix   string   `json:"mix"` // e.g. "pfadd=8,pfcount=1,wadd=1"
	Seed  int64    `json:"seed"`
	Route string   `json:"route,omitempty"` // "coordinator" or "single-hop"

	TargetQPS   float64 `json:"target_qps,omitempty"` // 0: max throughput
	DurationSec float64 `json:"duration_sec"`
	WarmupSec   float64 `json:"warmup_sec"`

	Ops         uint64                `json:"ops"`
	Errors      uint64                `json:"errors"`
	AchievedQPS float64               `json:"achieved_qps"`
	LatencyUS   Latency               `json:"latency_us"`
	PerVerb     map[string]VerbResult `json:"per_verb,omitempty"`
}
