package bitpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	for _, w := range []uint{1, 3, 5, 8, 13, 16, 24, 28, 32, 48, 57} {
		a := New(100, w)
		for i := 0; i < a.Len(); i++ {
			if got := a.Get(i); got != 0 {
				t.Fatalf("width %d: fresh array field %d = %d, want 0", w, i, got)
			}
		}
	}
}

func TestSizeBytes(t *testing.T) {
	cases := []struct {
		n    int
		w    uint
		want int
	}{
		{0, 8, 0},
		{1, 8, 1},
		{4, 14, 7},      // paper Figure 3: p=2, t=2, d=6 → 4 registers × 14 bits = 7 bytes
		{256, 28, 896},  // ELL(2,20) p=8 → 896 bytes, Table 2
		{256, 32, 1024}, // ELL(2,24) p=8 → 1024 bytes, Table 2
		{2048, 6, 1536}, // HLL 6-bit p=11 → 1536 bytes
		{3, 3, 2},
	}
	for _, c := range cases {
		if got := New(c.n, c.w).SizeBytes(); got != c.want {
			t.Errorf("SizeBytes(n=%d, w=%d) = %d, want %d", c.n, c.w, got, c.want)
		}
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, w := range []uint{1, 2, 3, 5, 7, 8, 9, 14, 15, 16, 17, 23, 24, 25, 28, 31, 32, 33, 40, 48, 57} {
		n := 257
		a := New(n, w)
		ref := make([]uint64, n)
		mask := uint64(1)<<w - 1
		for iter := 0; iter < 4*n; iter++ {
			i := rng.Intn(n)
			v := rng.Uint64() & mask
			a.Set(i, v)
			ref[i] = v
			// Verify the write landed and did not clobber neighbours.
			for _, j := range []int{i - 1, i, i + 1} {
				if j < 0 || j >= n {
					continue
				}
				if got := a.Get(j); got != ref[j] {
					t.Fatalf("width %d: after Set(%d,%#x), Get(%d) = %#x, want %#x", w, i, v, j, got, ref[j])
				}
			}
		}
		for i := range ref {
			if got := a.Get(i); got != ref[i] {
				t.Fatalf("width %d: final Get(%d) = %#x, want %#x", w, i, got, ref[i])
			}
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []uint{3, 6, 14, 16, 24, 28, 32} {
		a := New(100, w)
		mask := uint64(1)<<w - 1
		for i := 0; i < a.Len(); i++ {
			a.Set(i, rng.Uint64()&mask)
		}
		b, err := FromBytes(append([]byte(nil), a.Bytes()...), a.Len(), w)
		if err != nil {
			t.Fatalf("width %d: FromBytes: %v", w, err)
		}
		for i := 0; i < a.Len(); i++ {
			if a.Get(i) != b.Get(i) {
				t.Fatalf("width %d: round-trip mismatch at %d", w, i)
			}
		}
	}
}

func TestFromBytesLengthMismatch(t *testing.T) {
	if _, err := FromBytes(make([]byte, 5), 10, 6); err == nil {
		t.Fatal("FromBytes accepted a short buffer")
	}
	if _, err := FromBytes(make([]byte, 9), 10, 6); err == nil {
		t.Fatal("FromBytes accepted a long buffer")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(10, 28)
	a.Set(3, 12345)
	c := a.Clone()
	c.Set(3, 54321)
	if a.Get(3) != 12345 {
		t.Fatalf("mutating clone changed original: %d", a.Get(3))
	}
	if c.Get(3) != 54321 {
		t.Fatalf("clone write lost: %d", c.Get(3))
	}
}

func TestReset(t *testing.T) {
	a := New(64, 14)
	for i := 0; i < a.Len(); i++ {
		a.Set(i, uint64(i))
	}
	a.Reset()
	for i := 0; i < a.Len(); i++ {
		if a.Get(i) != 0 {
			t.Fatalf("Reset left field %d = %d", i, a.Get(i))
		}
	}
}

func TestSetPanicsOnOversizedValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set accepted a value wider than the field")
		}
	}()
	New(4, 6).Set(0, 64)
}

func TestGetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get accepted an out-of-range index")
		}
	}()
	New(4, 6).Get(4)
}

func TestQuickSetGet(t *testing.T) {
	// Property: for any width and any value masked to that width, a
	// Set/Get pair is the identity and leaves all other fields intact.
	f := func(widthSeed uint8, idxSeed uint16, v uint64) bool {
		w := uint(widthSeed)%MaxWidth + 1
		n := 33
		i := int(idxSeed) % n
		a := New(n, w)
		v &= uint64(1)<<w - 1
		a.Set(i, v)
		if a.Get(i) != v {
			return false
		}
		for j := 0; j < n; j++ {
			if j != i && a.Get(j) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
