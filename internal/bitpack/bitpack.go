// Package bitpack provides densely packed arrays of fixed-width bit fields.
//
// ExaLogLog registers occupy 6+t+d bits each; for the configurations the
// paper recommends this is 16, 24, 28 or 32 bits. The Array type stores n
// such fields back to back in a byte slice so that the total footprint is
// exactly ceil(n*w/8) bytes, matching the paper's space accounting. Widths
// of 8, 16, 24 and 32 bits use dedicated fast paths; every width from 1 to
// 57 bits is supported through a generic path that never reads past the
// underlying slice.
package bitpack

import (
	"encoding/binary"
	"fmt"
)

// MaxWidth is the largest supported field width in bits. The generic
// accessor reads at most eight consecutive bytes, which caps the width at
// 57 bits (a field may start at bit offset 7 within its first byte).
// All ExaLogLog configurations use at most 6+t+d <= 6+3+61 bits in theory,
// but every practically relevant configuration is far below 57 bits.
const MaxWidth = 57

// Array is a packed array of n fields, each w bits wide. The zero value is
// not usable; create instances with New.
type Array struct {
	bits  []byte
	n     int
	width uint
}

// New returns a packed array of n fields of the given width, all zero.
func New(n int, width uint) *Array {
	if n < 0 {
		panic(fmt.Sprintf("bitpack: negative length %d", n))
	}
	if width == 0 || width > MaxWidth {
		panic(fmt.Sprintf("bitpack: unsupported width %d", width))
	}
	nbits := uint64(n) * uint64(width)
	nbytes := (nbits + 7) / 8
	// The generic accessors load 8 bytes starting at the field's first
	// byte; pad the backing slice so such loads are always in bounds.
	pad := uint64(0)
	if width%8 != 0 || width > 32 {
		pad = 7
	}
	return &Array{
		bits:  make([]byte, nbytes+pad),
		n:     n,
		width: width,
	}
}

// FromBytes reconstructs an Array from the serialized representation
// produced by Bytes. The data is copied.
func FromBytes(data []byte, n int, width uint) (*Array, error) {
	a := New(n, width)
	want := a.SizeBytes()
	if len(data) != want {
		return nil, fmt.Errorf("bitpack: got %d bytes, want %d for %d fields of width %d", len(data), want, n, width)
	}
	copy(a.bits, data)
	return a, nil
}

// Len returns the number of fields.
func (a *Array) Len() int { return a.n }

// Width returns the field width in bits.
func (a *Array) Width() uint { return a.width }

// SizeBytes returns the exact serialized size in bytes: ceil(n*w/8).
func (a *Array) SizeBytes() int {
	return int((uint64(a.n)*uint64(a.width) + 7) / 8)
}

// Bytes returns the packed representation, exactly SizeBytes() long. The
// returned slice aliases the array's storage; callers must copy it before
// mutating the array if they need a stable snapshot.
func (a *Array) Bytes() []byte { return a.bits[:a.SizeBytes()] }

// Clone returns a deep copy of the array.
func (a *Array) Clone() *Array {
	c := &Array{
		bits:  make([]byte, len(a.bits)),
		n:     a.n,
		width: a.width,
	}
	copy(c.bits, a.bits)
	return c
}

// Reset zeroes all fields.
func (a *Array) Reset() {
	for i := range a.bits {
		a.bits[i] = 0
	}
}

// Get returns field i.
func (a *Array) Get(i int) uint64 {
	if uint(i) >= uint(a.n) {
		panic(fmt.Sprintf("bitpack: index %d out of range [0,%d)", i, a.n))
	}
	switch a.width {
	case 8:
		return uint64(a.bits[i])
	case 16:
		return uint64(binary.LittleEndian.Uint16(a.bits[2*i:]))
	case 24:
		off := 3 * i
		return uint64(a.bits[off]) | uint64(a.bits[off+1])<<8 | uint64(a.bits[off+2])<<16
	case 32:
		return uint64(binary.LittleEndian.Uint32(a.bits[4*i:]))
	}
	bitOff := uint64(i) * uint64(a.width)
	byteOff := bitOff >> 3
	shift := uint(bitOff & 7)
	word := binary.LittleEndian.Uint64(a.bits[byteOff:])
	return (word >> shift) & a.mask()
}

// Set stores v into field i. Bits of v above the field width must be zero;
// violating this corrupts neighbouring fields, so Set panics instead.
func (a *Array) Set(i int, v uint64) {
	if uint(i) >= uint(a.n) {
		panic(fmt.Sprintf("bitpack: index %d out of range [0,%d)", i, a.n))
	}
	if v&^a.mask() != 0 {
		panic(fmt.Sprintf("bitpack: value %#x exceeds width %d", v, a.width))
	}
	switch a.width {
	case 8:
		a.bits[i] = byte(v)
		return
	case 16:
		binary.LittleEndian.PutUint16(a.bits[2*i:], uint16(v))
		return
	case 24:
		off := 3 * i
		a.bits[off] = byte(v)
		a.bits[off+1] = byte(v >> 8)
		a.bits[off+2] = byte(v >> 16)
		return
	case 32:
		binary.LittleEndian.PutUint32(a.bits[4*i:], uint32(v))
		return
	}
	bitOff := uint64(i) * uint64(a.width)
	byteOff := bitOff >> 3
	shift := uint(bitOff & 7)
	word := binary.LittleEndian.Uint64(a.bits[byteOff:])
	word &^= a.mask() << shift
	word |= v << shift
	binary.LittleEndian.PutUint64(a.bits[byteOff:], word)
}

func (a *Array) mask() uint64 {
	return (uint64(1) << a.width) - 1
}
