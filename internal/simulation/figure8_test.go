package simulation

import (
	"math"
	"testing"

	"exaloglog/internal/core"
	"exaloglog/internal/mvp"
)

// TestFigure8GridTheoryAgreement validates the central claim of Figure 8
// over the full configuration grid the paper plots: for every
// (t,d) ∈ {(1,9),(2,16),(2,20),(2,24)} and p ∈ {4,6,8,10}, the empirical
// RMSE of both estimators at a mid-range distinct count matches the
// theoretical sqrt(MVP/((q+d)·m)) within the resolution of the run count,
// and the bias is negligible. The fast waiting-time path is exercised for
// every cell (direct limit 2000 << n).
func TestFigure8GridTheoryAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical grid test")
	}
	const runs = 120
	const n = 1e7
	cps := []float64{n}
	for _, cd := range []struct{ t, d int }{{1, 9}, {2, 16}, {2, 20}, {2, 24}} {
		for _, p := range []int{4, 6, 8, 10} {
			cfg := core.Config{T: cd.t, D: cd.d, P: p}
			var ml, mart ErrorStats
			for run := 0; run < runs; run++ {
				seed := uint64(run)*0x9e3779b97f4a7c15 + uint64(p)<<40 + uint64(cd.d)<<32 + 7
				res := RunELL(cfg, cps, 2000, seed, true)
				ml.Add(res[0].ML, n)
				mart.Add(res[0].Martingale, n)
			}
			thML := mvp.TheoreticalRMSE(cd.t, cd.d, p, false)
			thMart := mvp.TheoreticalRMSE(cd.t, cd.d, p, true)
			// χ² resolution: sd(RMSE estimate) ≈ RMSE/sqrt(2·runs) ≈ 6.5 %;
			// allow 4σ ≈ 26 %.
			if got := ml.RMSE(); math.Abs(got-thML)/thML > 0.26 {
				t.Errorf("(t=%d,d=%d,p=%d): ML RMSE %.4f vs theory %.4f", cd.t, cd.d, p, got, thML)
			}
			if got := mart.RMSE(); math.Abs(got-thMart)/thMart > 0.26 {
				t.Errorf("(t=%d,d=%d,p=%d): martingale RMSE %.4f vs theory %.4f", cd.t, cd.d, p, got, thMart)
			}
			if bias := math.Abs(ml.Bias()); bias > thML/2 {
				t.Errorf("(t=%d,d=%d,p=%d): ML bias %.4f vs RMSE %.4f", cd.t, cd.d, p, bias, thML)
			}
			// Martingale must not be worse than ML (Figure 5 vs Figure 4).
			if mart.RMSE() > ml.RMSE()*1.15 {
				t.Errorf("(t=%d,d=%d,p=%d): martingale %.4f worse than ML %.4f", cd.t, cd.d, p, mart.RMSE(), ml.RMSE())
			}
		}
	}
}

// TestFigure8SmallRangeErrorTiny: the paper notes the error is far below
// the asymptote for small n. At n=1 it is dominated by the (tiny)
// single-register reconstruction granularity; at n=10 it is still below
// the asymptotic value.
func TestFigure8SmallRangeErrorTiny(t *testing.T) {
	cfg := core.Config{T: 2, D: 20, P: 8}
	var at1, at10 ErrorStats
	for run := 0; run < 200; run++ {
		res := RunELL(cfg, []float64{1, 10}, 1e6, uint64(run)*13+5, false)
		at1.Add(res[0].ML, 1)
		at10.Add(res[1].ML, 10)
	}
	asymptote := mvp.TheoreticalRMSE(2, 20, 8, false)
	if got := at1.RMSE(); got > asymptote/5 {
		t.Errorf("RMSE at n=1 is %.4f, want far below the asymptote %.4f", got, asymptote)
	}
	if got := at10.RMSE(); got > asymptote {
		t.Errorf("RMSE at n=10 is %.4f, want below the asymptote %.4f", got, asymptote)
	}
}

// TestFigure8ExaScaleErrorDips: the paper observes the error decreases
// slightly at the end of the operating range (~2·10^19). Verify the RMSE
// near the top of the range does not exceed the mid-range value.
func TestFigure8ExaScaleErrorDips(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	cfg := core.Config{T: 2, D: 20, P: 6}
	var mid, top ErrorStats
	cps := []float64{1e12, 5e18}
	for run := 0; run < 150; run++ {
		res := RunELL(cfg, cps, 1000, uint64(run)*29+3, false)
		mid.Add(res[0].ML, res[0].N)
		top.Add(res[1].ML, res[1].N)
	}
	if top.RMSE() > mid.RMSE()*1.1 {
		t.Errorf("RMSE at 5e18 (%.4f) should not exceed mid-range (%.4f)", top.RMSE(), mid.RMSE())
	}
}
