// Package simulation implements the error-simulation methodology of
// Section 5.1 of the paper.
//
// Because good 64-bit hash outputs are indistinguishable from uniform
// random values, inserting n distinct elements is equivalent to inserting
// n random 64-bit values, so no real data sets are needed. Two strategies
// are combined:
//
//   - Direct simulation: generate one random hash per distinct element.
//     Used up to a configurable limit (the paper uses 10^6).
//   - Waiting-time ("fast") simulation: beyond the limit, sample for every
//     (register, update value) pair the geometrically distributed distinct
//     count at which that pair next occurs (success probability
//     ρ_update(k)/m), sort these events, and replay them. Since a pair can
//     modify a register at most once, one event per pair suffices. This
//     allows simulating distinct counts up to 10^21 — the exa-scale range
//     of Figure 8 — in milliseconds per run.
//
// Event times beyond 2^53 lose integer granularity in float64; at those
// scales the granularity loss is many orders of magnitude below the
// waiting-time randomness and has no statistical effect.
package simulation

import (
	"math"
	"sort"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
)

// Result is the pair of estimates measured at one checkpoint of one run.
type Result struct {
	// N is the true distinct count at the checkpoint.
	N float64
	// ML is the bias-corrected maximum-likelihood estimate.
	ML float64
	// Martingale is the martingale estimate (NaN when disabled).
	Martingale float64
}

// Checkpoints returns logarithmically spaced distinct counts from 1 to
// max, with roughly perDecade points per decade (1, 2, 5 pattern for
// perDecade = 3).
func Checkpoints(max float64, perDecade int) []float64 {
	var out []float64
	for decade := 1.0; decade <= max; decade *= 10 {
		for i := 0; i < perDecade; i++ {
			v := decade * math.Pow(10, float64(i)/float64(perDecade))
			v = math.Round(v)
			if v > max {
				break
			}
			if len(out) == 0 || v > out[len(out)-1] {
				out = append(out, v)
			}
		}
	}
	if len(out) == 0 || out[len(out)-1] < max {
		out = append(out, max)
	}
	return out
}

// rng is a SplitMix64-based random source. The seed is passed through the
// SplitMix64 finalizer first: raw seeds that differ by a multiple of the
// golden-ratio increment would otherwise produce overlapping shifts of the
// same stream and silently correlate "independent" runs.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	return &rng{state: hashing.Mix64(seed) ^ seed}
}

func (r *rng) next() uint64 { return hashing.SplitMix64(&r.state) }

// uniform returns a float64 in (0, 1].
func (r *rng) uniform() float64 {
	return (float64(r.next()>>11) + 1) / (1 << 53)
}

// event is one waiting-time event: pair (register, update value) occurring
// at distinct count t.
type event struct {
	t   float64
	reg int32
	k   int32
}

// RunELL simulates one randomized insertion stream into an ExaLogLog
// sketch with the given configuration and returns the ML and (if enabled)
// martingale estimates at every checkpoint. Checkpoints must be ascending.
// Distinct counts up to directLimit are simulated with one random hash per
// element; beyond that the waiting-time strategy is used.
func RunELL(cfg core.Config, checkpoints []float64, directLimit float64, seed uint64, martingale bool) []Result {
	s := core.MustNew(cfg)
	if martingale {
		if err := s.EnableMartingale(); err != nil {
			panic(err)
		}
	}
	r := newRNG(seed)
	out := make([]Result, 0, len(checkpoints))

	maxN := checkpoints[len(checkpoints)-1]
	directEnd := math.Min(maxN, directLimit)

	// Phase 1: direct insertion of random hashes.
	ci := 0
	n := 0.0
	for n < directEnd {
		n++
		s.AddHash(r.next())
		for ci < len(checkpoints) && checkpoints[ci] == n {
			out = append(out, snapshot(s, n, martingale))
			ci++
		}
	}
	if ci >= len(checkpoints) {
		return out
	}

	// Phase 2: waiting-time events. For each (register, update value)
	// pair, the next occurrence after n is geometric with success
	// probability ρ_update(k)/m; by memorylessness this is valid whether
	// or not the pair occurred during phase 1 (re-occurrence of an
	// already-recorded pair cannot change the state).
	m := cfg.NumRegisters()
	kmax := int(cfg.MaxUpdateValue())
	events := make([]event, 0, m*kmax)
	for k := 1; k <= kmax; k++ {
		q := rho(cfg, k) / float64(m)
		lq := math.Log1p(-q)
		for i := 0; i < m; i++ {
			// Geometric waiting time ≥ 1: ceil(ln U / ln(1-q)).
			w := math.Ceil(math.Log(r.uniform()) / lq)
			if w < 1 {
				w = 1
			}
			t := n + w
			if t <= maxN {
				events = append(events, event{t: t, reg: int32(i), k: int32(k)})
			}
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].t < events[b].t })

	ei := 0
	for ci < len(checkpoints) {
		cp := checkpoints[ci]
		for ei < len(events) && events[ei].t <= cp {
			s.AddPair(int(events[ei].reg), uint64(events[ei].k))
			ei++
		}
		out = append(out, snapshot(s, cp, martingale))
		ci++
	}
	return out
}

func snapshot(s *core.Sketch, n float64, martingale bool) Result {
	res := Result{N: n, ML: s.EstimateML(), Martingale: math.NaN()}
	if martingale {
		res.Martingale = s.EstimateMartingale()
	}
	return res
}

// rho evaluates ρ_update(k) of equation (10) for the configuration.
func rho(cfg core.Config, k int) float64 {
	phi := cfg.T + 1 + (k-1)>>uint(cfg.T)
	if cap := 64 - cfg.P; phi > cap {
		phi = cap
	}
	return math.Exp2(-float64(phi))
}

// TokenResult is one checkpoint of a token-set simulation (Figure 9).
type TokenResult struct {
	N        float64
	Estimate float64
	Tokens   int
}

// RunTokens simulates direct insertion into a token set with parameter v
// and returns the ML estimate at every checkpoint (all checkpoints must be
// within direct-simulation reach; Figure 9 uses n ≤ 10^5).
func RunTokens(v int, checkpoints []float64, seed uint64) []TokenResult {
	ts, err := core.NewTokenSet(v)
	if err != nil {
		panic(err)
	}
	r := newRNG(seed)
	out := make([]TokenResult, 0, len(checkpoints))
	ci := 0
	n := 0.0
	maxN := checkpoints[len(checkpoints)-1]
	for n < maxN {
		n++
		ts.AddHash(r.next())
		for ci < len(checkpoints) && checkpoints[ci] == n {
			out = append(out, TokenResult{N: n, Estimate: ts.EstimateML(), Tokens: ts.Len()})
			ci++
		}
	}
	return out
}

// ErrorStats aggregates relative estimation errors across runs at one
// checkpoint.
type ErrorStats struct {
	runs  int
	sum   float64
	sumSq float64
}

// Add records one run's estimate for true count n.
func (e *ErrorStats) Add(estimate, n float64) {
	rel := estimate/n - 1
	e.runs++
	e.sum += rel
	e.sumSq += rel * rel
}

// Merge folds another accumulator into e (for parallel aggregation).
func (e *ErrorStats) Merge(other ErrorStats) {
	e.runs += other.runs
	e.sum += other.sum
	e.sumSq += other.sumSq
}

// Runs returns the number of recorded runs.
func (e *ErrorStats) Runs() int { return e.runs }

// Bias returns the mean relative error.
func (e *ErrorStats) Bias() float64 {
	if e.runs == 0 {
		return math.NaN()
	}
	return e.sum / float64(e.runs)
}

// RMSE returns the root-mean-square relative error.
func (e *ErrorStats) RMSE() float64 {
	if e.runs == 0 {
		return math.NaN()
	}
	return math.Sqrt(e.sumSq / float64(e.runs))
}
