package simulation

import (
	"math"
	"testing"

	"exaloglog/internal/core"
	"exaloglog/internal/mvp"
)

func TestCheckpoints(t *testing.T) {
	cps := Checkpoints(1e6, 3)
	if cps[0] != 1 {
		t.Errorf("first checkpoint %g, want 1", cps[0])
	}
	if cps[len(cps)-1] != 1e6 {
		t.Errorf("last checkpoint %g, want 1e6", cps[len(cps)-1])
	}
	for i := 1; i < len(cps); i++ {
		if cps[i] <= cps[i-1] {
			t.Fatalf("checkpoints not strictly increasing at %d: %v", i, cps[i-1:i+1])
		}
	}
	// Roughly 3 per decade over 6 decades.
	if len(cps) < 15 || len(cps) > 25 {
		t.Errorf("unexpected checkpoint count %d", len(cps))
	}
}

func TestRunELLDirectOnly(t *testing.T) {
	cfg := core.Config{T: 2, D: 20, P: 6}
	cps := []float64{1, 10, 100, 1000}
	res := RunELL(cfg, cps, 1e6, 42, true)
	if len(res) != len(cps) {
		t.Fatalf("got %d results, want %d", len(res), len(cps))
	}
	for i, r := range res {
		if r.N != cps[i] {
			t.Errorf("result %d at n=%g, want %g", i, r.N, cps[i])
		}
		if relErr := math.Abs(r.ML-r.N) / r.N; relErr > 0.5 {
			t.Errorf("n=%g: ML estimate %.1f far off", r.N, r.ML)
		}
		if relErr := math.Abs(r.Martingale-r.N) / r.N; relErr > 0.5 {
			t.Errorf("n=%g: martingale estimate %.1f far off", r.N, r.Martingale)
		}
	}
}

// TestFastSimulationConsistentWithDirect is the core validity check of the
// waiting-time strategy: at the same checkpoint, the RMSE measured with a
// low direct limit (fast path active) must agree with the fully direct
// simulation within statistical tolerance.
func TestFastSimulationConsistentWithDirect(t *testing.T) {
	cfg := core.Config{T: 2, D: 20, P: 4}
	const n = 20000
	const runs = 150
	cps := []float64{n}
	var direct, fast ErrorStats
	for run := 0; run < runs; run++ {
		seed := uint64(run)*2654435761 + 1
		rd := RunELL(cfg, cps, 1e9, seed, false)
		direct.Add(rd[0].ML, n)
		rf := RunELL(cfg, cps, 100, seed+1e6, false)
		fast.Add(rf[0].ML, n)
	}
	rd, rf := direct.RMSE(), fast.RMSE()
	if math.Abs(rd-rf) > 0.5*math.Max(rd, rf) {
		t.Errorf("direct RMSE %.4f vs fast RMSE %.4f disagree", rd, rf)
	}
	// Both must be in the ballpark of the theoretical RMSE.
	theory := mvp.TheoreticalRMSE(2, 20, 4, false)
	for name, got := range map[string]float64{"direct": rd, "fast": rf} {
		if got < theory*0.6 || got > theory*1.6 {
			t.Errorf("%s RMSE %.4f vs theory %.4f", name, got, theory)
		}
	}
}

// TestMartingaleExaScale exercises the fast path far beyond 2^53 to the
// exa-scale and checks estimates stay sane (Figure 8's right edge).
func TestMartingaleExaScale(t *testing.T) {
	cfg := core.Config{T: 2, D: 20, P: 4}
	cps := []float64{1e9, 1e12, 1e15, 1e18}
	var stats [4]ErrorStats
	const runs = 30
	for run := 0; run < runs; run++ {
		res := RunELL(cfg, cps, 1000, uint64(run)*7+3, true)
		for i, r := range res {
			stats[i].Add(r.ML, r.N)
		}
	}
	for i, cp := range cps {
		rmse := stats[i].RMSE()
		// Theoretical RMSE at p=4 is ≈ 9 %; allow wide tolerance for 30
		// runs but catch catastrophic breakage (e.g. float overflow).
		if math.IsNaN(rmse) || rmse > 0.35 {
			t.Errorf("n=%g: RMSE %.4f implausible", cp, rmse)
		}
	}
}

func TestRunTokens(t *testing.T) {
	cps := []float64{10, 100, 1000}
	res := RunTokens(12, cps, 99)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if relErr := math.Abs(r.Estimate-r.N) / r.N; relErr > 0.5 {
			t.Errorf("n=%g: token estimate %.1f", r.N, r.Estimate)
		}
		if r.Tokens <= 0 || float64(r.Tokens) > r.N {
			t.Errorf("n=%g: token count %d out of range", r.N, r.Tokens)
		}
	}
}

func TestErrorStats(t *testing.T) {
	var e ErrorStats
	if !math.IsNaN(e.Bias()) || !math.IsNaN(e.RMSE()) {
		t.Error("empty stats should be NaN")
	}
	e.Add(110, 100) // +10 %
	e.Add(90, 100)  // -10 %
	if got := e.Bias(); math.Abs(got) > 1e-12 {
		t.Errorf("bias = %g, want 0", got)
	}
	if got := e.RMSE(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RMSE = %g, want 0.1", got)
	}
	if e.Runs() != 2 {
		t.Errorf("runs = %d", e.Runs())
	}
}

// TestReproducibility: identical seeds must give identical results.
func TestReproducibility(t *testing.T) {
	cfg := core.Config{T: 1, D: 9, P: 4}
	cps := []float64{100, 10000, 1e8}
	a := RunELL(cfg, cps, 1000, 12345, true)
	b := RunELL(cfg, cps, 1000, 12345, true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ at checkpoint %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRMSEMatchesTheoryAtModeratePrecision is a light version of Figure 8:
// at p=6 and n=10^4 the empirical RMSE over a few hundred runs must match
// the theoretical prediction within ~15 %.
func TestRMSEMatchesTheoryAtModeratePrecision(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	cfg := core.Config{T: 2, D: 20, P: 6}
	const runs = 300
	cps := []float64{10000}
	var ml, mart ErrorStats
	for run := 0; run < runs; run++ {
		res := RunELL(cfg, cps, 500, uint64(run)*31+7, true)
		ml.Add(res[0].ML, res[0].N)
		mart.Add(res[0].Martingale, res[0].N)
	}
	thML := mvp.TheoreticalRMSE(2, 20, 6, false)
	thMart := mvp.TheoreticalRMSE(2, 20, 6, true)
	if got := ml.RMSE(); math.Abs(got-thML)/thML > 0.15 {
		t.Errorf("ML RMSE %.4f vs theory %.4f", got, thML)
	}
	if got := mart.RMSE(); math.Abs(got-thMart)/thMart > 0.15 {
		t.Errorf("martingale RMSE %.4f vs theory %.4f", got, thMart)
	}
	// Bias must be far below the RMSE.
	if bias := math.Abs(ml.Bias()); bias > thML/3 {
		t.Errorf("ML bias %.4f too large vs RMSE %.4f", bias, thML)
	}
}
