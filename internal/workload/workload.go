// Package workload provides deterministic element-stream generators for
// benchmarks and experiments: uniform fresh elements, Zipf-skewed
// duplication, and bursty arrival patterns. Distinct counting is
// insensitive to duplication by construction (idempotency, Section 1 of
// the paper); these generators exist to verify that empirically and to
// drive the harness binaries with realistic streams.
package workload

import (
	"math"

	"exaloglog/internal/hashing"
)

// Stream yields a deterministic sequence of element hashes. NextHash
// returns the hash of the next stream event (which may repeat earlier
// elements, depending on the generator).
type Stream interface {
	NextHash() uint64
}

// Uniform yields a fresh, never-repeating element on every call —
// equivalently, a stream with duplication factor 1.
type Uniform struct {
	state uint64
}

// NewUniform returns a distinct-element stream seeded deterministically.
func NewUniform(seed uint64) *Uniform {
	return &Uniform{state: seed*0x9E3779B97F4A7C15 + 1}
}

// NextHash returns the next element hash.
func (u *Uniform) NextHash() uint64 { return hashing.SplitMix64(&u.state) }

// Zipf yields elements from a finite universe with Zipf(s)-distributed
// popularity: element rank r (1-based) is drawn with probability
// ∝ 1/r^s. Small ranks repeat heavily — the classic skewed workload of
// web caches and event streams.
type Zipf struct {
	state uint64
	// cdf[i] is the cumulative probability of ranks 1..i+1.
	cdf  []float64
	seed uint64
}

// NewZipf returns a Zipf stream over a universe of n elements with
// exponent s > 0.
func NewZipf(seed uint64, n int, s float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{state: seed*0x9E3779B97F4A7C15 + 3, cdf: cdf, seed: seed}
}

// NextHash returns the hash of the next (possibly repeated) element.
func (z *Zipf) NextHash() uint64 {
	u := float64(hashing.SplitMix64(&z.state)>>11) / (1 << 53)
	// Binary search the CDF for the sampled rank.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Hash the rank (with the stream seed) so distinct ranks map to
	// independent 64-bit hashes.
	return hashing.Wy64Uint64(uint64(lo), z.seed)
}

// Universe returns the number of distinct elements the stream can emit.
func (z *Zipf) Universe() int { return len(z.cdf) }

// Bursty yields elements in bursts: each burst picks one element and
// repeats it burstLen times before moving on — the pathological ordering
// for algorithms sensitive to duplicate clustering (ELL is not: the
// stream position of duplicates never matters).
type Bursty struct {
	inner    Stream
	burstLen int
	current  uint64
	left     int
}

// NewBursty wraps a stream so each element repeats burstLen times.
func NewBursty(inner Stream, burstLen int) *Bursty {
	if burstLen < 1 {
		burstLen = 1
	}
	return &Bursty{inner: inner, burstLen: burstLen}
}

// NextHash returns the next event hash.
func (b *Bursty) NextHash() uint64 {
	if b.left == 0 {
		b.current = b.inner.NextHash()
		b.left = b.burstLen
	}
	b.left--
	return b.current
}

// DistinctCounter tracks the exact distinct count of a stream prefix by
// hash (ground truth for experiments; memory grows linearly).
type DistinctCounter struct {
	seen map[uint64]struct{}
}

// NewDistinctCounter returns an empty exact counter.
func NewDistinctCounter() *DistinctCounter {
	return &DistinctCounter{seen: make(map[uint64]struct{})}
}

// Observe records an event hash and returns the running distinct count.
func (d *DistinctCounter) Observe(h uint64) int {
	d.seen[h] = struct{}{}
	return len(d.seen)
}

// Count returns the current exact distinct count.
func (d *DistinctCounter) Count() int { return len(d.seen) }
