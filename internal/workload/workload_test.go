package workload

import (
	"math"
	"testing"
)

func TestUniformNeverRepeats(t *testing.T) {
	u := NewUniform(1)
	seen := make(map[uint64]struct{}, 100000)
	for i := 0; i < 100000; i++ {
		h := u.NextHash()
		if _, dup := seen[h]; dup {
			t.Fatalf("uniform stream repeated at event %d", i)
		}
		seen[h] = struct{}{}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, b := NewUniform(7), NewUniform(7)
	for i := 0; i < 1000; i++ {
		if a.NextHash() != b.NextHash() {
			t.Fatal("uniform stream not deterministic")
		}
	}
	c := NewUniform(8)
	if NewUniform(7).NextHash() == c.NextHash() {
		t.Error("different seeds give identical streams")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(3, 10000, 1.2)
	counts := make(map[uint64]int)
	const events = 200000
	for i := 0; i < events; i++ {
		counts[z.NextHash()]++
	}
	// The most popular element should dominate: for s=1.2 over 10k
	// elements, rank 1 has probability ≈ 1/ζ(1.2-ish) ≈ 15-20 %.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if frac := float64(max) / events; frac < 0.05 {
		t.Errorf("top element frequency %.3f, expected heavy skew", frac)
	}
	// Far fewer distinct elements than events.
	if len(counts) >= events/2 {
		t.Errorf("zipf stream produced %d distinct of %d events", len(counts), events)
	}
	if z.Universe() != 10000 {
		t.Errorf("Universe = %d", z.Universe())
	}
}

func TestZipfCoversUniverse(t *testing.T) {
	// With s close to 0 the distribution is near-uniform: most of a small
	// universe should appear.
	z := NewZipf(5, 100, 0.01)
	seen := make(map[uint64]struct{})
	for i := 0; i < 10000; i++ {
		seen[z.NextHash()] = struct{}{}
	}
	if len(seen) < 95 {
		t.Errorf("near-uniform zipf covered only %d/100 elements", len(seen))
	}
}

func TestBursty(t *testing.T) {
	b := NewBursty(NewUniform(2), 5)
	var prev uint64
	distinct := 0
	for i := 0; i < 100; i++ {
		h := b.NextHash()
		if i%5 == 0 {
			if h == prev {
				t.Fatal("burst boundary repeated the previous element")
			}
			distinct++
		} else if h != prev {
			t.Fatalf("event %d broke its burst", i)
		}
		prev = h
	}
	if distinct != 20 {
		t.Errorf("distinct bursts = %d, want 20", distinct)
	}
	// Degenerate burst length.
	if NewBursty(NewUniform(3), 0).burstLen != 1 {
		t.Error("burstLen floor not applied")
	}
}

func TestDistinctCounter(t *testing.T) {
	d := NewDistinctCounter()
	if d.Observe(1) != 1 || d.Observe(1) != 1 || d.Observe(2) != 2 {
		t.Error("DistinctCounter miscounts")
	}
	if d.Count() != 2 {
		t.Errorf("Count = %d", d.Count())
	}
}

func TestZipfCDFMonotone(t *testing.T) {
	z := NewZipf(1, 1000, 1.0)
	for i := 1; i < len(z.cdf); i++ {
		if z.cdf[i] < z.cdf[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if math.Abs(z.cdf[len(z.cdf)-1]-1) > 1e-12 {
		t.Errorf("CDF does not end at 1: %v", z.cdf[len(z.cdf)-1])
	}
}
