package compress

import (
	"math"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, bits []int, nCtx int, ctxOf func(i int) int) []byte {
	t.Helper()
	enc := NewEncoder()
	m := NewModel(nCtx)
	for i, b := range bits {
		enc.EncodeBit(m, ctxOf(i), b)
	}
	data := enc.Close()

	dec := NewDecoder(data)
	m.Reset()
	for i, want := range bits {
		if got := dec.DecodeBit(m, ctxOf(i)); got != want {
			t.Fatalf("bit %d: decoded %d, want %d", i, got, want)
		}
	}
	return data
}

func TestRoundTripPatterns(t *testing.T) {
	patterns := map[string][]int{
		"empty":     {},
		"single0":   {0},
		"single1":   {1},
		"all-zeros": make([]int, 1000),
		"alternate": func() []int {
			b := make([]int, 999)
			for i := range b {
				b[i] = i & 1
			}
			return b
		}(),
		"all-ones": func() []int {
			b := make([]int, 1000)
			for i := range b {
				b[i] = 1
			}
			return b
		}(),
	}
	for name, bits := range patterns {
		t.Run(name, func(t *testing.T) {
			roundTrip(t, bits, 1, func(int) int { return 0 })
		})
	}
}

func TestRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := r.Intn(5000)
		bias := r.Float64()
		bits := make([]int, n)
		for i := range bits {
			if r.Float64() < bias {
				bits[i] = 1
			}
		}
		roundTrip(t, bits, 4, func(i int) int { return i & 3 })
	}
}

func TestCompressionApproachesEntropy(t *testing.T) {
	// A biased source with P(1) = 0.05 has entropy ≈ 0.286 bits/bit;
	// the adaptive coder should get within ~20 % of that.
	r := rand.New(rand.NewSource(7))
	const n = 100000
	bits := make([]int, n)
	ones := 0
	for i := range bits {
		if r.Float64() < 0.05 {
			bits[i] = 1
			ones++
		}
	}
	data := roundTrip(t, bits, 1, func(int) int { return 0 })
	p := float64(ones) / n
	entropy := -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	idealBytes := entropy * n / 8
	if got := float64(len(data)); got > idealBytes*1.25 {
		t.Errorf("compressed to %d bytes; entropy bound is %.0f", len(data), idealBytes)
	}
	if got := float64(len(data)); got < idealBytes*0.8 {
		t.Errorf("compressed to %d bytes, below the entropy bound %.0f — impossible, coder must be broken", len(data), idealBytes)
	}
}

func TestContextsImprove(t *testing.T) {
	// Interleave a heavily-biased stream (ctx 0) with an unbiased one
	// (ctx 1); with contexts the size should be near (0 + 1)/2 bits/bit,
	// without contexts near the mixed entropy which is larger.
	r := rand.New(rand.NewSource(9))
	const n = 40000
	bits := make([]int, n)
	for i := range bits {
		if i&1 == 0 {
			bits[i] = 0 // deterministic in context 0
		} else if r.Float64() < 0.5 {
			bits[i] = 1
		}
	}
	withCtx := roundTrip(t, bits, 2, func(i int) int { return i & 1 })
	withoutCtx := roundTrip(t, bits, 1, func(int) int { return 0 })
	if len(withCtx) >= len(withoutCtx) {
		t.Errorf("contexts did not help: %d vs %d bytes", len(withCtx), len(withoutCtx))
	}
}

func TestCarryPropagation(t *testing.T) {
	// Stress the carry path: long runs of bits that keep low near
	// 0xff... Use adversarial alternation of very likely/unlikely bits.
	m := NewModel(1)
	enc := NewEncoder()
	r := rand.New(rand.NewSource(11))
	bits := make([]int, 20000)
	for i := range bits {
		// Mostly 0s so prob drifts low, then occasional 1s force wide
		// low jumps that exercise carries.
		if r.Intn(37) == 0 {
			bits[i] = 1
		}
		enc.EncodeBit(m, 0, bits[i])
	}
	data := enc.Close()
	dec := NewDecoder(data)
	m.Reset()
	for i, want := range bits {
		if got := dec.DecodeBit(m, 0); got != want {
			t.Fatalf("carry stress: bit %d decoded %d, want %d", i, got, want)
		}
	}
}

func TestModelAdaptationBounds(t *testing.T) {
	m := NewModel(1)
	for i := 0; i < 10000; i++ {
		m.update(0, 1)
	}
	if m.p[0] > probOne-probMin {
		t.Errorf("probability escaped upper clamp: %d", m.p[0])
	}
	for i := 0; i < 10000; i++ {
		m.update(0, 0)
	}
	if m.p[0] < probMin {
		t.Errorf("probability escaped lower clamp: %d", m.p[0])
	}
}
