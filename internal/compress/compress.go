// Package compress implements a small adaptive binary arithmetic coder.
//
// It is used to study the compressibility of sketch states (Section 6 of
// the paper) and to realize the CPC-like baseline: a PCSA sketch whose
// serialized form is entropy-coded. Bits are coded under per-context
// adaptive probability models, so the output size approaches the empirical
// Shannon entropy of the bit stream without any precomputed tables.
//
// The coder is a conventional 32-bit range coder in the LZMA style (carry
// propagation through a cache byte) with 12-bit probability states adapted
// with shift 5.
package compress

// Probabilities are 12-bit values in (0, 4096), giving P(bit=1) = p/4096.
const (
	probBits  = 12
	probOne   = 1 << probBits
	probInit  = probOne / 2
	adaptRate = 5
	probMin   = 32
)

// Model is a set of adaptive bit-probability contexts. The zero value is
// invalid; create with NewModel.
type Model struct {
	p []uint16
}

// NewModel creates a model with n independent contexts, all initialized to
// probability 1/2.
func NewModel(n int) *Model {
	m := &Model{p: make([]uint16, n)}
	m.Reset()
	return m
}

// Reset restores all contexts to probability 1/2.
func (m *Model) Reset() {
	for i := range m.p {
		m.p[i] = probInit
	}
}

func (m *Model) update(ctx int, bit int) {
	if bit == 1 {
		m.p[ctx] += (probOne - m.p[ctx]) >> adaptRate
	} else {
		m.p[ctx] -= m.p[ctx] >> adaptRate
	}
	// Keep probabilities away from 0 and 1 so both symbols stay codable.
	if m.p[ctx] < probMin {
		m.p[ctx] = probMin
	}
	if m.p[ctx] > probOne-probMin {
		m.p[ctx] = probOne - probMin
	}
}

// Encoder compresses a bit stream. Create with NewEncoder, feed bits with
// EncodeBit, and call Close to flush. The first output byte is a dummy
// zero, as in the classic LZMA range coder.
type Encoder struct {
	low       uint64
	rng       uint32
	cache     uint8
	cacheSize int
	out       []byte
}

// NewEncoder returns a ready encoder.
func NewEncoder() *Encoder {
	return &Encoder{rng: 0xffffffff, cacheSize: 1}
}

// EncodeBit encodes one bit under the model's context ctx.
func (e *Encoder) EncodeBit(m *Model, ctx int, bit int) {
	bound := (e.rng >> probBits) * uint32(m.p[ctx])
	if bit == 1 {
		e.rng = bound
	} else {
		e.low += uint64(bound)
		e.rng -= bound
	}
	m.update(ctx, bit)
	for e.rng < 1<<24 {
		e.shiftLow()
		e.rng <<= 8
	}
}

func (e *Encoder) shiftLow() {
	if uint32(e.low) < 0xff000000 || e.low>>32 != 0 {
		carry := uint8(e.low >> 32)
		b := e.cache
		for {
			e.out = append(e.out, b+carry)
			b = 0xff
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = uint8(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low & 0x00ffffff) << 8
}

// Close flushes the encoder and returns the compressed bytes.
func (e *Encoder) Close() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// Decoder decompresses a bit stream produced by Encoder. The caller must
// use the same model state and context sequence as the encoder.
type Decoder struct {
	rng  uint32
	code uint32
	in   []byte
	pos  int
}

// NewDecoder returns a decoder over data (including the leading dummy
// byte written by the encoder).
func NewDecoder(data []byte) *Decoder {
	d := &Decoder{rng: 0xffffffff, in: data}
	d.next() // dummy byte
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

func (d *Decoder) next() byte {
	if d.pos < len(d.in) {
		b := d.in[d.pos]
		d.pos++
		return b
	}
	return 0
}

// DecodeBit decodes one bit under the model's context ctx.
func (d *Decoder) DecodeBit(m *Model, ctx int) int {
	bound := (d.rng >> probBits) * uint32(m.p[ctx])
	var bit int
	if d.code < bound {
		d.rng = bound
		bit = 1
	} else {
		d.code -= bound
		d.rng -= bound
		bit = 0
	}
	m.update(ctx, bit)
	for d.rng < 1<<24 {
		d.code = d.code<<8 | uint32(d.next())
		d.rng <<= 8
	}
	return bit
}
