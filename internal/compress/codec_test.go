package compress_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"exaloglog/internal/compress"
	"exaloglog/internal/core"
	"exaloglog/window"
)

// sketchBlob returns a serialized dense ML sketch with n distinct elements.
func sketchBlob(t testing.TB, p, n int) []byte {
	t.Helper()
	s, err := core.New(core.RecommendedML(p))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(n)*7919 + int64(p)))
	for i := 0; i < n; i++ {
		s.AddHash(rng.Uint64())
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestCodecRoundTripSketch(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 5000, 200000} {
		blob := sketchBlob(t, 12, n)
		enc := compress.EncodeBlob(blob)
		dec, err := compress.DecodeBlob(enc, len(blob))
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if !bytes.Equal(dec, blob) {
			t.Fatalf("n=%d: round trip mismatch (%d vs %d bytes)", n, len(dec), len(blob))
		}
		if len(enc) > len(blob) {
			t.Fatalf("n=%d: encode grew the blob %d → %d", n, len(blob), len(enc))
		}
		t.Logf("n=%d: %d → %d bytes (%.1f%%)", n, len(blob), len(enc), 100*float64(len(enc))/float64(len(blob)))
	}
}

// TestCodecSparseWins: a near-empty sketch (the common case for per-key
// cluster sketches) must compress dramatically — this ratio is the whole
// point of the wire codec.
func TestCodecSparseWins(t *testing.T) {
	blob := sketchBlob(t, 12, 10)
	enc := compress.EncodeBlob(blob)
	if len(enc)*10 > len(blob) {
		t.Fatalf("10-element p=12 sketch compressed only %d → %d bytes; want ≥10×", len(blob), len(enc))
	}
}

func TestCodecRoundTripWindowBlob(t *testing.T) {
	w, err := window.New(core.RecommendedML(10), time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	for i := 0; i < 500; i++ {
		w.AddString(base.Add(time.Duration(i)*time.Millisecond), fmt.Sprintf("elem-%d", i))
	}
	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	enc := compress.EncodeBlob(blob)
	dec, err := compress.DecodeBlob(enc, len(blob))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, blob) {
		t.Fatal("window blob round trip mismatch")
	}
}

func TestCodecRoundTripArbitrary(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := [][]byte{
		nil,
		{},
		[]byte("hello"),
		[]byte("ELC1 raw data that collides with the codec magic"),
		bytes.Repeat([]byte{0}, 4096),
		bytes.Repeat([]byte("abc"), 1000),
	}
	random := make([]byte, 2048)
	rng.Read(random)
	cases = append(cases, random)
	for i, raw := range cases {
		enc := compress.EncodeBlob(raw)
		dec, err := compress.DecodeBlob(enc, len(raw))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(dec, raw) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

func TestDecodeBlobPassThrough(t *testing.T) {
	raw := []byte("EL not actually compressed")
	dec, err := compress.DecodeBlob(raw, len(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, raw) {
		t.Fatal("uncompressed input must pass through unchanged")
	}
	if _, err := compress.DecodeBlob(raw, len(raw)-1); err == nil {
		t.Fatal("want error when raw input exceeds the limit")
	}
}

func TestDecodeBlobRejectsOversizedClaim(t *testing.T) {
	blob := sketchBlob(t, 12, 100)
	enc := compress.EncodeBlob(blob)
	if !compress.IsCompressed(enc) {
		t.Skip("blob did not compress")
	}
	if _, err := compress.DecodeBlob(enc, len(blob)-1); err == nil {
		t.Fatal("want error when claimed raw length exceeds the limit")
	}
}

func TestDecodeBlobHostile(t *testing.T) {
	cases := [][]byte{
		[]byte("ELC1"),
		[]byte("ELC1\x00"),
		[]byte("ELC1s"),
		[]byte("ELC1s\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"), // huge rawLen
		[]byte("ELC1r\x05ab"), // stored, short payload
		[]byte("ELC1e\x00"),
		[]byte("ELC1z\x08\x03abc"),
		append([]byte("ELC1s\x10"), bytes.Repeat([]byte{0xff}, 64)...),
	}
	for i, data := range cases {
		if _, err := compress.DecodeBlob(data, 1<<20); err == nil {
			// Entropy methods legitimately decode garbage to garbage of
			// the claimed length; anything structured must error.
			if len(data) > 4 && (data[4] == 's' || data[4] == 'r' || data[4] == 0) {
				t.Fatalf("case %d: want error for hostile input %q", i, data)
			}
		}
	}
}

func FuzzCodecDecode(f *testing.F) {
	f.Add([]byte("ELC1s\x10\x02\x00\x01"))
	f.Add(sketchBlob(f, 8, 50))
	f.Add(compress.EncodeBlob(sketchBlob(f, 8, 50)))
	f.Add(compress.EncodeBlob(sketchBlob(f, 12, 100000)))
	f.Add([]byte("ELC1z\xff\x01\xff\x01deadbeef"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Production callers cap decodes in the MB range; the fuzzer uses
		// a smaller cap so hostile entropy containers (which legitimately
		// decode to `limit` garbage bytes) don't throttle exec rate.
		const limit = 64 << 10
		dec, err := compress.DecodeBlob(data, limit)
		if err != nil {
			return
		}
		if len(dec) > limit {
			t.Fatalf("decode exceeded limit: %d > %d", len(dec), limit)
		}
		// Whatever decoded must re-encode and decode to itself: the codec
		// is a bijection on its own output.
		enc := compress.EncodeBlob(dec)
		back, err := compress.DecodeBlob(enc, len(dec))
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if !bytes.Equal(back, dec) {
			t.Fatal("re-encode round trip mismatch")
		}
	})
}

func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ELC1"))
	f.Add(sketchBlob(f, 8, 10))
	f.Fuzz(func(t *testing.T, raw []byte) {
		enc := compress.EncodeBlob(raw)
		dec, err := compress.DecodeBlob(enc, len(raw))
		if err != nil {
			t.Fatalf("decode of own encode failed: %v", err)
		}
		if !bytes.Equal(dec, raw) {
			t.Fatal("round trip mismatch")
		}
	})
}

func BenchmarkCodecEncode(b *testing.B) {
	for _, n := range []int{10, 1000, 100000} {
		blob := sketchBlob(b, 12, n)
		b.Run(fmt.Sprintf("p12_n%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(blob)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				compress.EncodeBlob(blob)
			}
		})
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	for _, n := range []int{10, 1000, 100000} {
		blob := sketchBlob(b, 12, n)
		enc := compress.EncodeBlob(blob)
		b.Run(fmt.Sprintf("p12_n%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(blob)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := compress.DecodeBlob(enc, len(blob)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
