package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"exaloglog/internal/bitpack"
)

// Blob codec: a self-describing container for compressed sketch blobs.
//
// Layout: "ELC1" | method byte | uvarint rawLen | [uvarint midLen] | payload.
// The magic is distinct from every raw blob magic in the system ("EL\x01"
// core sketches, "ELW1" window counters, "ELSS" snapshots), so DecodeBlob
// can sniff it and pass anything else through unchanged — uncompressed
// blobs from old peers keep decoding forever.
//
// Methods form a cheap-first ladder:
//
//	'r'  stored       payload is rawLen raw bytes (only used when raw
//	                  data happens to start with the codec magic and
//	                  must be framed to stay sniffable)
//	's'  sparse       varint-coded nonzero registers of a dense core
//	                  sketch blob; payload re-expands to the exact
//	                  original bytes
//	'e'  entropy      payload is the range coder run over the raw bytes
//	                  under an adaptive order-1 model
//	'z'  sparse+entropy  sparse payload (midLen bytes) further entropy
//	                  coded — midLen is needed to drive the bit decoder
//
// EncodeBlob only emits a container when it is strictly smaller than the
// input, so callers can use it unconditionally; DecodeBlob bounds every
// allocation by the caller's limit before trusting any claimed length
// (mirroring the FromBinary / window pre-allocation clamps).
const (
	codecMagic = "ELC1"

	methodStored        = 'r'
	methodSparse        = 's'
	methodEntropy       = 'e'
	methodSparseEntropy = 'z'

	// maxEntropyInput caps how much data the adaptive coder is asked to
	// chew per blob: it runs at roughly 25–50 MB/s, so 64 KiB keeps the
	// worst-case encode cost in the low milliseconds. Larger blobs still
	// get the (near-free) sparse layer.
	maxEntropyInput = 64 << 10

	// Core sketch header layout (see internal/core/serialize.go): magic
	// "EL", version, t, d, p, two reserved zero bytes.
	coreHeaderSize = 8
)

// ErrCodec is wrapped by every decode failure so callers can distinguish
// a malformed container from other I/O errors.
var ErrCodec = errors.New("compress: bad blob")

// IsCompressed reports whether data carries the codec container magic.
func IsCompressed(data []byte) bool {
	return len(data) >= len(codecMagic) && string(data[:len(codecMagic)]) == codecMagic
}

// entropyModels pools the order-1 context models (64 Ki contexts ≈ 128 KiB
// each) so per-blob encode/decode does not allocate or re-zero them from
// scratch more often than needed.
var entropyModels = sync.Pool{
	New: func() any { return NewModel(256 * 256) },
}

// EncodeBlob compresses a serialized sketch/window blob. The result is
// either a codec container strictly smaller than raw, or raw itself
// (unchanged, zero-copy) when no method wins. The input is never modified.
func EncodeBlob(raw []byte) []byte {
	best := raw
	sparse, sparseOK := sparseEncode(raw)
	if sparseOK {
		if c := container(methodSparse, len(raw), 0, sparse); len(c) < len(best) {
			best = c
		}
	}
	// Entropy layer: only when the cheap layer left meaningful headroom
	// and the input is small enough for the coder's throughput.
	if len(best)*2 > len(raw) {
		in, method := raw, byte(methodEntropy)
		if sparseOK && len(sparse) < len(raw) {
			in, method = sparse, methodSparseEntropy
		}
		if len(in) <= maxEntropyInput {
			enc := entropyEncode(in)
			mid := 0
			if method == methodSparseEntropy {
				mid = len(in)
			}
			if c := container(method, len(raw), mid, enc); len(c) < len(best) {
				best = c
			}
		}
	}
	if len(best) == len(raw) && IsCompressed(raw) {
		// Raw data colliding with the codec magic must be framed so the
		// decoder's sniff stays unambiguous. Sketch blobs never collide
		// (their magics differ); this guards arbitrary callers.
		return container(methodStored, len(raw), 0, raw)
	}
	return best
}

// DecodeBlob reverses EncodeBlob. Input without the codec magic is
// returned unchanged (an uncompressed blob from an old peer). maxLen
// bounds the decoded size: any container claiming more is rejected
// before a single byte is allocated.
func DecodeBlob(data []byte, maxLen int) ([]byte, error) {
	if !IsCompressed(data) {
		if len(data) > maxLen {
			return nil, fmt.Errorf("%w: %d raw bytes exceed limit %d", ErrCodec, len(data), maxLen)
		}
		return data, nil
	}
	rest := data[len(codecMagic):]
	if len(rest) == 0 {
		return nil, fmt.Errorf("%w: truncated header", ErrCodec)
	}
	method := rest[0]
	rest = rest[1:]
	rawLen64, n := binary.Uvarint(rest)
	if n <= 0 || rawLen64 > uint64(maxLen) {
		return nil, fmt.Errorf("%w: bad raw length", ErrCodec)
	}
	rest = rest[n:]
	rawLen := int(rawLen64)
	switch method {
	case methodStored:
		if len(rest) != rawLen {
			return nil, fmt.Errorf("%w: stored payload is %d bytes, want %d", ErrCodec, len(rest), rawLen)
		}
		return rest, nil
	case methodSparse:
		return sparseDecode(rest, rawLen)
	case methodEntropy:
		return entropyDecode(rest, rawLen), nil
	case methodSparseEntropy:
		midLen64, n := binary.Uvarint(rest)
		if n <= 0 || midLen64 > uint64(maxLen) {
			return nil, fmt.Errorf("%w: bad sparse length", ErrCodec)
		}
		sparse := entropyDecode(rest[n:], int(midLen64))
		out, err := sparseDecode(sparse, rawLen)
		if err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown method %q", ErrCodec, method)
	}
}

func container(method byte, rawLen, midLen int, payload []byte) []byte {
	buf := make([]byte, 0, len(codecMagic)+1+2*binary.MaxVarintLen32+len(payload))
	buf = append(buf, codecMagic...)
	buf = append(buf, method)
	buf = binary.AppendUvarint(buf, uint64(rawLen))
	if method == methodSparseEntropy {
		buf = binary.AppendUvarint(buf, uint64(midLen))
	}
	return append(buf, payload...)
}

// sparseGeometry validates a dense core-sketch blob header and returns
// its register geometry. ok is false for anything that is not byte-exactly
// a dense serialized core sketch (wrong magic, nonzero reserved bytes,
// out-of-range parameters, trailing or missing bytes) — sparse coding
// must reproduce the original blob bit for bit, so it only ever touches
// blobs whose entire content is determined by (header, registers).
func sparseGeometry(blob []byte) (m int, w uint, ok bool) {
	if len(blob) < coreHeaderSize || blob[0] != 'E' || blob[1] != 'L' || blob[2] != 1 {
		return 0, 0, false
	}
	if blob[6] != 0 || blob[7] != 0 {
		return 0, 0, false
	}
	t, d, p := int(blob[3]), int(blob[4]), int(blob[5])
	w = uint(6 + t + d)
	if w > bitpack.MaxWidth || p < 1 || p > 26 {
		return 0, 0, false
	}
	m = 1 << p
	if len(blob) != coreHeaderSize+(m*int(w)+7)/8 {
		return 0, 0, false
	}
	return m, w, true
}

// sparseEncode turns a dense core sketch blob into header + uvarint
// nonzero-count + (uvarint index-gap, uvarint value) pairs. It reports
// ok=false when blob is not a dense core sketch or when the sparse form
// cannot win (too many populated registers).
func sparseEncode(blob []byte) ([]byte, bool) {
	m, w, ok := sparseGeometry(blob)
	if !ok {
		return nil, false
	}
	arr, err := bitpack.FromBytes(blob[coreHeaderSize:], m, w)
	if err != nil {
		return nil, false
	}
	nz := 0
	for i := 0; i < m; i++ {
		if arr.Get(i) != 0 {
			nz++
		}
	}
	// Each pair costs ≥2 bytes; bail when the dense form is clearly
	// cheaper so EncodeBlob skips the wasted assembly.
	if coreHeaderSize+1+2*nz >= len(blob) {
		return nil, false
	}
	buf := make([]byte, 0, coreHeaderSize+1+3*nz)
	buf = append(buf, blob[:coreHeaderSize]...)
	buf = binary.AppendUvarint(buf, uint64(nz))
	prev := -1
	for i := 0; i < m; i++ {
		v := arr.Get(i)
		if v == 0 {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(i-prev-1))
		buf = binary.AppendUvarint(buf, v)
		prev = i
	}
	return buf, true
}

// sparseDecode re-expands a sparse payload to the exact dense blob.
// Allocation is bounded by the geometry the (validated) header implies,
// which the caller has already capped via rawLen ≤ maxLen.
func sparseDecode(payload []byte, rawLen int) ([]byte, error) {
	if len(payload) < coreHeaderSize {
		return nil, fmt.Errorf("%w: sparse payload shorter than header", ErrCodec)
	}
	// Re-derive geometry from the embedded header; it must reproduce
	// exactly the claimed raw length or the container is inconsistent.
	hdr := payload[:coreHeaderSize]
	m, w, ok := sparseGeometryForLen(hdr, rawLen)
	if !ok {
		return nil, fmt.Errorf("%w: sparse header inconsistent with raw length %d", ErrCodec, rawLen)
	}
	rest := payload[coreHeaderSize:]
	nz64, n := binary.Uvarint(rest)
	if n <= 0 || nz64 > uint64(m) {
		return nil, fmt.Errorf("%w: bad register count", ErrCodec)
	}
	rest = rest[n:]
	arr := bitpack.New(m, w)
	mask := uint64(1)<<w - 1
	idx := -1
	for k := uint64(0); k < nz64; k++ {
		gap, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated register stream", ErrCodec)
		}
		rest = rest[n:]
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated register value", ErrCodec)
		}
		rest = rest[n:]
		// Bound the gap before converting: a hostile 64-bit gap must not
		// wrap the index negative (bitpack.Set would panic).
		if gap >= uint64(m) {
			return nil, fmt.Errorf("%w: register index out of range", ErrCodec)
		}
		idx += 1 + int(gap)
		if idx >= m {
			return nil, fmt.Errorf("%w: register index out of range", ErrCodec)
		}
		if v == 0 || v&^mask != 0 {
			return nil, fmt.Errorf("%w: register value out of range", ErrCodec)
		}
		arr.Set(idx, v)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(rest))
	}
	out := make([]byte, 0, rawLen)
	out = append(out, hdr...)
	return append(out, arr.Bytes()...), nil
}

// sparseGeometryForLen is sparseGeometry against a caller-supplied total
// blob length (the decoder knows the header and the claimed rawLen but
// does not yet hold the dense bytes).
func sparseGeometryForLen(hdr []byte, rawLen int) (int, uint, bool) {
	// Fabricate the length check by validating header fields directly.
	if hdr[0] != 'E' || hdr[1] != 'L' || hdr[2] != 1 || hdr[6] != 0 || hdr[7] != 0 {
		return 0, 0, false
	}
	t, d, p := int(hdr[3]), int(hdr[4]), int(hdr[5])
	w := uint(6 + t + d)
	if w > bitpack.MaxWidth || p < 1 || p > 26 {
		return 0, 0, false
	}
	m := 1 << p
	if rawLen != coreHeaderSize+(m*int(w)+7)/8 {
		return 0, 0, false
	}
	return m, w, true
}

// entropyEncode runs the range coder over src under an adaptive order-1
// model: each byte is coded as a bit tree whose contexts are selected by
// the previous byte. Deterministic and streaming; the model comes from a
// pool and is reset before use.
func entropyEncode(src []byte) []byte {
	m := entropyModels.Get().(*Model)
	m.Reset()
	e := NewEncoder()
	prev := 0
	for _, b := range src {
		node := 1
		for bit := 7; bit >= 0; bit-- {
			bv := int(b>>uint(bit)) & 1
			e.EncodeBit(m, prev<<8|node, bv)
			node = node<<1 | bv
		}
		prev = int(b)
	}
	entropyModels.Put(m)
	return e.Close()
}

// entropyDecode reverses entropyEncode, producing exactly n bytes. The
// range decoder reads zeros past the end of data, so truncated or hostile
// input yields garbage bytes — never a panic or an oversized allocation
// (n is capped by the caller).
func entropyDecode(data []byte, n int) []byte {
	m := entropyModels.Get().(*Model)
	m.Reset()
	d := NewDecoder(data)
	out := make([]byte, n)
	prev := 0
	for i := range out {
		node := 1
		for bit := 0; bit < 8; bit++ {
			node = node<<1 | d.DecodeBit(m, prev<<8|node)
		}
		b := byte(node)
		out[i] = b
		prev = int(b)
	}
	entropyModels.Put(m)
	return out
}
