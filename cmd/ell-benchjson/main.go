// ell-benchjson converts `go test -bench` text output (stdin) into a
// JSON record (stdout) that is both machine-queryable and
// benchstat-comparable: the parsed per-benchmark numbers sit next to
// the raw benchmark lines, so
//
//	go test -bench . -benchmem ./server/ ./cluster/ | ell-benchjson > BENCH_serving.json
//	jq -r '.raw[]' BENCH_serving.json | benchstat old.txt /dev/stdin
//
// tracks the serving-path perf trajectory across PRs with stock tools.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"` // package the row came from (bench output spans several)
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"` // B/op, allocs/op, ops/s, ...
}

// Report is the whole file.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Raw        []string    `json:"raw"` // verbatim lines, benchstat-consumable
}

func main() {
	report := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(trimmed, "cpu:"); ok {
			report.CPU = strings.TrimSpace(cpu)
		}
		if p, ok := strings.CutPrefix(trimmed, "pkg:"); ok {
			pkg = strings.TrimSpace(p)
		}
		keep := strings.HasPrefix(trimmed, "Benchmark") ||
			strings.HasPrefix(trimmed, "goos:") ||
			strings.HasPrefix(trimmed, "goarch:") ||
			strings.HasPrefix(trimmed, "pkg:") ||
			strings.HasPrefix(trimmed, "cpu:")
		if !keep {
			continue
		}
		report.Raw = append(report.Raw, line)
		if b, ok := parseBenchLine(trimmed); ok {
			b.Pkg = pkg
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ell-benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "ell-benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses "BenchmarkX-8  1000  123 ns/op  0 B/op ..."
// into a Benchmark; ok is false for non-result lines.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The rest comes in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if fields[i+1] == "ns/op" {
			b.NsPerOp = v
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
