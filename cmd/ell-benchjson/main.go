// ell-benchjson converts `go test -bench` text output (stdin) into a
// JSON record (stdout) that is both machine-queryable and
// benchstat-comparable: the parsed per-benchmark numbers sit next to
// the raw benchmark lines, so
//
//	go test -bench . -benchmem ./server/ ./cluster/ | ell-benchjson > BENCH_serving.json
//	jq -r '.raw[]' BENCH_serving.json | benchstat old.txt /dev/stdin
//
// tracks the serving-path perf trajectory across PRs with stock tools.
//
// Beyond stdin it can fold in cluster-level load results and update an
// existing report in place:
//
//	-in BENCH_serving.json   start from an existing report (its rows are kept;
//	                         fresh rows with the same name+pkg replace them)
//	-load load.json          append an ell-loader result as a row tagged
//	                         pkg "cluster-load", with a synthetic
//	                         benchstat-comparable raw line
//	-note "..."              attach a free-form note (e.g. the run's caveats)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"exaloglog/internal/loadreport"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"` // package the row came from (bench output spans several)
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"` // B/op, allocs/op, ops/s, ...
}

// Report is the whole file.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Raw        []string    `json:"raw"` // verbatim lines, benchstat-consumable
}

func main() {
	inPath := flag.String("in", "", "existing report to start from (rows merged, same name+pkg replaced)")
	loadPath := flag.String("load", "", "ell-loader JSON result to append as a cluster-load row")
	note := flag.String("note", "", "free-form note to record in the report")
	flag.Parse()

	report := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	if *inPath != "" {
		data, err := os.ReadFile(*inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ell-benchjson:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &report); err != nil {
			fmt.Fprintf(os.Stderr, "ell-benchjson: parse %s: %v\n", *inPath, err)
			os.Exit(1)
		}
	}
	if *note != "" {
		report.Note = *note
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(trimmed, "cpu:"); ok {
			report.CPU = strings.TrimSpace(cpu)
		}
		if p, ok := strings.CutPrefix(trimmed, "pkg:"); ok {
			pkg = strings.TrimSpace(p)
		}
		keep := strings.HasPrefix(trimmed, "Benchmark") ||
			strings.HasPrefix(trimmed, "goos:") ||
			strings.HasPrefix(trimmed, "goarch:") ||
			strings.HasPrefix(trimmed, "pkg:") ||
			strings.HasPrefix(trimmed, "cpu:")
		if !keep {
			continue
		}
		report.Raw = append(report.Raw, line)
		if b, ok := parseBenchLine(trimmed); ok {
			b.Pkg = pkg
			report.upsert(b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ell-benchjson:", err)
		os.Exit(1)
	}
	if *loadPath != "" {
		b, raw, err := loadRow(*loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ell-benchjson:", err)
			os.Exit(1)
		}
		report.upsert(b)
		report.Raw = append(report.Raw, raw)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "ell-benchjson:", err)
		os.Exit(1)
	}
}

// upsert adds b to the report, replacing an existing row with the same
// name and pkg — what keeps a -in merge from accumulating duplicates
// when a benchmark is re-run.
func (r *Report) upsert(b Benchmark) {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == b.Name && r.Benchmarks[i].Pkg == b.Pkg {
			r.Benchmarks[i] = b
			return
		}
	}
	r.Benchmarks = append(r.Benchmarks, b)
}

// loadRow converts an ell-loader JSON result into a Benchmark row
// tagged pkg "cluster-load" plus a synthetic benchstat-comparable raw
// line (ns/op is the inverse of achieved throughput).
func loadRow(path string) (Benchmark, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Benchmark{}, "", err
	}
	var res loadreport.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return Benchmark{}, "", fmt.Errorf("parse %s: %w", path, err)
	}
	name := fmt.Sprintf("BenchmarkClusterLoad/dist=%s/conns=%d/depth=%d/mix=%s",
		res.Dist, res.Conns, res.Depth, res.Mix)
	if res.Route != "" {
		name += "/route=" + res.Route
	}
	var nsPerOp float64
	if res.AchievedQPS > 0 {
		nsPerOp = 1e9 / res.AchievedQPS
	}
	b := Benchmark{
		Name:       name,
		Pkg:        loadreport.Pkg,
		Iterations: int64(res.Ops),
		NsPerOp:    nsPerOp,
		Metrics: map[string]float64{
			"qps":    res.AchievedQPS,
			"p50-us": float64(res.LatencyUS.P50),
			"p90-us": float64(res.LatencyUS.P90),
			"p99-us": float64(res.LatencyUS.P99),
			"max-us": float64(res.LatencyUS.Max),
			"errors": float64(res.Errors),
		},
	}
	raw := fmt.Sprintf("%s \t%d\t%.1f ns/op\t%.0f qps\t%d p50-us\t%d p99-us",
		name, res.Ops, nsPerOp, res.AchievedQPS, res.LatencyUS.P50, res.LatencyUS.P99)
	return b, raw, nil
}

// parseBenchLine parses "BenchmarkX-8  1000  123 ns/op  0 B/op ..."
// into a Benchmark; ok is false for non-result lines.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The rest comes in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if fields[i+1] == "ns/op" {
			b.NsPerOp = v
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
