// Command ell-sql is an interactive shell for the aggdb distinct-count
// engine: it loads a TSV file into a partitioned columnar table and
// answers SELECT ... COUNT(DISTINCT ...) queries on ExaLogLog sketches.
//
// Usage:
//
//	ell-sql -table events.tsv            # first line: name:type headers
//	ell-sql -demo                        # built-in demo table
//
// The TSV header declares the schema, e.g. "country:string\tday:int\tuser:int".
// Queries are read line by line from stdin:
//
//	SELECT country, APPROX_COUNT_DISTINCT(user) FROM t WHERE day < 5 GROUP BY country
//
// Append EXACT to a query to run the exact hash-set engine instead.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"exaloglog/aggdb"
)

func main() {
	tablePath := flag.String("table", "", "TSV file with name:type header (string|int)")
	demo := flag.Bool("demo", false, "load a built-in demo table instead of a file")
	precision := flag.Int("p", 12, "sketch precision for approximate queries")
	parts := flag.Int("partitions", 8, "number of table partitions")
	flag.Parse()

	var (
		table *aggdb.Table
		err   error
	)
	switch {
	case *demo:
		table, err = demoTable(*parts)
	case *tablePath != "":
		table, err = loadTSV(*tablePath, *parts)
	default:
		fmt.Fprintln(os.Stderr, "need -table <file.tsv> or -demo")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("table t: %d rows, %d partitions; schema:", table.NumRows(), table.NumPartitions())
	for _, c := range table.Schema() {
		fmt.Printf(" %s:%s", c.Name, strings.ToLower(c.Type.String()))
	}
	fmt.Println("\nenter queries (FROM t), ctrl-d to exit")

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("ell-sql> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		query := strings.TrimSpace(in.Text())
		if query == "" {
			continue
		}
		res, err := table.ExecuteSQL("t", query, *precision)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Print(res.Format())
	}
}

// demoTable builds the web-events table used across the examples.
func demoTable(parts int) (*aggdb.Table, error) {
	table, err := aggdb.NewTable(aggdb.Schema{
		{Name: "country", Type: aggdb.TypeString},
		{Name: "day", Type: aggdb.TypeInt},
		{Name: "user", Type: aggdb.TypeInt},
	}, parts)
	if err != nil {
		return nil, err
	}
	countries := []string{"at", "de", "us", "jp"}
	user := 0
	for ci, c := range countries {
		for u := 0; u < (ci+1)*5000; u++ {
			for visit := 0; visit < 3; visit++ {
				if err := table.Append(c, (u+visit)%7, user); err != nil {
					return nil, err
				}
			}
			user++
		}
	}
	return table, nil
}

// loadTSV reads a TSV whose header line declares "name:type" columns.
func loadTSV(path string, parts int) (*aggdb.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("ell-sql: %s is empty", path)
	}
	var schema aggdb.Schema
	for _, h := range strings.Split(sc.Text(), "\t") {
		name, typ, ok := strings.Cut(h, ":")
		if !ok {
			return nil, fmt.Errorf("ell-sql: header field %q is not name:type", h)
		}
		switch strings.ToLower(typ) {
		case "string":
			schema = append(schema, aggdb.Column{Name: name, Type: aggdb.TypeString})
		case "int":
			schema = append(schema, aggdb.Column{Name: name, Type: aggdb.TypeInt})
		default:
			return nil, fmt.Errorf("ell-sql: unsupported type %q (string|int)", typ)
		}
	}
	table, err := aggdb.NewTable(schema, parts)
	if err != nil {
		return nil, err
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != len(schema) {
			return nil, fmt.Errorf("ell-sql: line %d has %d fields, want %d", lineNo, len(fields), len(schema))
		}
		row := make([]any, len(fields))
		for i, v := range fields {
			if schema[i].Type == aggdb.TypeString {
				row[i] = v
				continue
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("ell-sql: line %d column %s: %v", lineNo, schema[i].Name, err)
			}
			row[i] = n
		}
		if err := table.Append(row...); err != nil {
			return nil, fmt.Errorf("ell-sql: line %d: %v", lineNo, err)
		}
	}
	return table, sc.Err()
}
