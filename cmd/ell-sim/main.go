// Command ell-sim regenerates the simulation figures of the ExaLogLog
// paper:
//
//	Figure 8: relative bias and RMSE of the ML and martingale estimators
//	          for (t,d) ∈ {(1,9),(2,16),(2,20),(2,24)} and p ∈ {4,6,8,10},
//	          for distinct counts up to 10^21 (exa-scale).
//	Figure 9: relative bias and RMSE when estimating directly from sets of
//	          hash tokens, v ∈ {6,8,10,12,18,26}, n up to 10^5.
//
// The paper uses 100 000 simulation runs; the default here is smaller so
// the full sweep finishes in minutes — pass -runs to scale up.
//
// Output is TSV on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"exaloglog/internal/core"
	"exaloglog/internal/mvp"
	"exaloglog/internal/simulation"
)

func main() {
	figure := flag.String("figure", "all", "figure to regenerate: 8, 9 or all")
	runs := flag.Int("runs", 1000, "simulation runs per configuration (paper: 100000)")
	directLimit := flag.Float64("direct", 1e6, "distinct-count limit for direct simulation before switching to the waiting-time strategy")
	maxN := flag.Float64("maxn", 1e21, "largest simulated distinct count for figure 8")
	seed := flag.Uint64("seed", 0x9e3779b97f4a7c15, "base random seed")
	flag.Parse()

	switch *figure {
	case "8":
		figure8(*runs, *directLimit, *maxN, *seed)
	case "9":
		figure9(*runs, *seed)
	case "all":
		figure8(*runs, *directLimit, *maxN, *seed)
		figure9(*runs, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		os.Exit(2)
	}
}

func figure8(runs int, directLimit, maxN float64, seed uint64) {
	fmt.Println("# Figure 8: relative bias and RMSE of ML and martingale estimation")
	fmt.Println("figure\tt\td\tp\tn\tml_bias\tml_rmse\tml_theory\tmart_bias\tmart_rmse\tmart_theory")
	configs := []struct{ t, d int }{{1, 9}, {2, 16}, {2, 20}, {2, 24}}
	checkpoints := simulation.Checkpoints(maxN, 3)
	for _, c := range configs {
		for _, p := range []int{4, 6, 8, 10} {
			cfg := core.Config{T: c.t, D: c.d, P: p}
			mlStats := make([]simulation.ErrorStats, len(checkpoints))
			martStats := make([]simulation.ErrorStats, len(checkpoints))

			var mu sync.Mutex
			var wg sync.WaitGroup
			workers := runtime.GOMAXPROCS(0)
			perWorker := (runs + workers - 1) / workers
			for w := 0; w < workers; w++ {
				first := w * perWorker
				count := perWorker
				if first+count > runs {
					count = runs - first
				}
				if count <= 0 {
					continue
				}
				wg.Add(1)
				go func(first, count int) {
					defer wg.Done()
					localML := make([]simulation.ErrorStats, len(checkpoints))
					localMart := make([]simulation.ErrorStats, len(checkpoints))
					for r := 0; r < count; r++ {
						runSeed := seed + uint64(first+r)*0x100000001b3 + uint64(p)<<32 + uint64(c.t*100+c.d)
						res := simulation.RunELL(cfg, checkpoints, directLimit, runSeed, true)
						for i, pt := range res {
							localML[i].Add(pt.ML, pt.N)
							localMart[i].Add(pt.Martingale, pt.N)
						}
					}
					mu.Lock()
					for i := range checkpoints {
						mlStats[i].Merge(localML[i])
						martStats[i].Merge(localMart[i])
					}
					mu.Unlock()
				}(first, count)
			}
			wg.Wait()

			thML := mvp.TheoreticalRMSE(c.t, c.d, p, false)
			thMart := mvp.TheoreticalRMSE(c.t, c.d, p, true)
			for i, cp := range checkpoints {
				fmt.Printf("8\t%d\t%d\t%d\t%.6g\t%+.5f\t%.5f\t%.5f\t%+.5f\t%.5f\t%.5f\n",
					c.t, c.d, p, cp,
					mlStats[i].Bias(), mlStats[i].RMSE(), thML,
					martStats[i].Bias(), martStats[i].RMSE(), thMart)
			}
		}
	}
}

func figure9(runs int, seed uint64) {
	fmt.Println("# Figure 9: bias and RMSE of ML estimation from hash-token sets")
	fmt.Println("figure\tv\ttoken_bits\tn\tbias\trmse")
	checkpoints := simulation.Checkpoints(1e5, 3)
	for _, v := range []int{6, 8, 10, 12, 18, 26} {
		stats := make([]simulation.ErrorStats, len(checkpoints))
		for r := 0; r < runs; r++ {
			res := simulation.RunTokens(v, checkpoints, seed+uint64(r)*2654435761+uint64(v)<<40)
			for i, pt := range res {
				stats[i].Add(pt.Estimate, pt.N)
			}
		}
		for i, cp := range checkpoints {
			fmt.Printf("9\t%d\t%d\t%.6g\t%+.5f\t%.5f\n", v, v+6, cp, stats[i].Bias(), stats[i].RMSE())
		}
	}
}
