// Command ell-entropy runs the compressibility study that Section 6 of the
// ExaLogLog paper outlines as future work: it compares, per configuration
// and distinct count,
//
//   - the dense register size (6+t+d bits/register),
//   - the Shannon entropy of the register distribution (Section 3.1 PMF),
//     i.e. the information-theoretic lower bound for lossless compression,
//   - the size actually achieved by this repository's adaptive arithmetic
//     coder (Sketch.MarshalCompressed), and
//   - the theoretical compressed-MVP ratio of Figure 6 for reference.
//
// Output is TSV on stdout.
package main

import (
	"flag"
	"fmt"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
	"exaloglog/internal/mvp"
)

func main() {
	runs := flag.Int("runs", 10, "sketches averaged per measurement")
	seed := flag.Uint64("seed", 7, "base random seed")
	flag.Parse()

	fmt.Println("# Section 6 compressibility study")
	fmt.Println("t\td\tp\tn\tdense_bits_per_reg\tentropy_bits_per_reg\tcoded_bits_per_reg\tfig6_ratio")
	configs := []core.Config{
		{T: 0, D: 2, P: 10},  // ULL, the case the paper reports compresses well
		{T: 1, D: 9, P: 10},  // 16-bit registers
		{T: 2, D: 16, P: 10}, // 24-bit registers
		{T: 2, D: 20, P: 10}, // the recommended ML configuration
	}
	for _, cfg := range configs {
		dense := float64(cfg.RegisterWidth())
		b := mvp.Base(cfg.T)
		fig6 := mvp.CompressedML(b, cfg.D) / mvp.DenseML(b, 6+cfg.T, cfg.D)
		for _, n := range []int{100, 1000, 10000, 100000, 1000000} {
			coded := 0.0
			for r := 0; r < *runs; r++ {
				s := core.MustNew(cfg)
				state := *seed + uint64(r)*2654435761 + uint64(n)
				for i := 0; i < n; i++ {
					s.AddHash(hashing.SplitMix64(&state))
				}
				comp, err := s.MarshalCompressed()
				if err != nil {
					panic(err)
				}
				coded += float64(len(comp)-5) * 8 / float64(cfg.NumRegisters())
			}
			coded /= float64(*runs)
			entropy := "-"
			if cfg.D <= 16 {
				entropy = fmt.Sprintf("%.3f", cfg.RegisterEntropy(float64(n)))
			}
			fmt.Printf("%d\t%d\t%d\t%d\t%.0f\t%s\t%.3f\t%.3f\n",
				cfg.T, cfg.D, cfg.P, n, dense, entropy, coded, fig6)
		}
	}
}
