// Command distinct approximately counts distinct lines on stdin using an
// ExaLogLog sketch — a minimal end-to-end application of the library.
//
//	$ seq 1 1000000 | shuf -r -n 10000000 | distinct -p 14
//	≈ 1000123 distinct lines (0.31 % standard error, 57344 bytes)
//
// With -exact it also prints the true count (memory permitting) for
// comparison, and -martingale switches to the lower-error martingale
// estimator for this single-stream use case.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"exaloglog"
	"exaloglog/internal/mvp"
)

func main() {
	p := flag.Int("p", 12, "precision: 2^p registers; standard error halves per +2")
	martingale := flag.Bool("martingale", false, "use the martingale estimator (single-stream, lower error)")
	exact := flag.Bool("exact", false, "also compute the exact count in memory for comparison")
	flag.Parse()

	var sketch *exaloglog.Sketch
	var stdErr float64
	if *martingale {
		sketch = exaloglog.NewMartingale(*p)
		stdErr = mvp.TheoreticalRMSE(2, 16, *p, true)
	} else {
		sketch = exaloglog.New(*p)
		stdErr = mvp.TheoreticalRMSE(2, 20, *p, false)
	}

	var exactSet map[string]struct{}
	if *exact {
		exactSet = make(map[string]struct{})
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lines := 0
	for scanner.Scan() {
		line := scanner.Text()
		sketch.AddString(line)
		if exactSet != nil {
			exactSet[line] = struct{}{}
		}
		lines++
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "distinct: %v\n", err)
		os.Exit(1)
	}

	est := sketch.Estimate()
	fmt.Printf("≈ %.0f distinct lines (of %d total; %.2f %% standard error, %d bytes of sketch)\n",
		est, lines, stdErr*100, sketch.SizeBytes())
	if exactSet != nil {
		exactN := len(exactSet)
		relErr := 0.0
		if exactN > 0 {
			relErr = (est - float64(exactN)) / float64(exactN) * 100
		}
		fmt.Printf("exactly %d distinct lines (estimate off by %+.2f %%)\n", exactN, relErr)
	}
}
