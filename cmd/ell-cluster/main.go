// Command ell-cluster administers a sketch cluster (see the cluster
// package) through any member node.
//
// Usage:
//
//	ell-cluster [-addr 127.0.0.1:7700] <command> [args]
//
// Commands:
//
//	info                  show the contacted node's view of the cluster
//	map                   print the cluster map (epoch, version, coordinator, replicas, members)
//	health                show the contacted node's failure-detector view (alive/suspect per
//	                      member) plus every member's cluster-layer counters
//	stats [all]           per-verb serving stats (calls, errors, bytes, p50/p99 latency) and
//	                      cluster counters of the contacted node — or of every member with "all"
//	join <id> <addr>      add node <id> at <addr> to the cluster (epoch-fenced)
//	leave <id>            remove node <id> (survivors re-replicate its keys)
//	sync                  one anti-entropy round: pull peer maps, adopt/spread the newest
//	rebalance             re-push the contacted node's sketches to their owners (repair)
//	add <key> <el>...     PFADD routed to the key's owners
//	count <key>...        cluster-wide union distinct count
//	wadd <key> <ts> <el>...  WADD routed to the key's owners (ts in unix ms)
//	wcount <key> <window> [ts]  windowed distinct count, slot-wise merged
//	winfo <key>           merged ring info (geometry, latest, dropped)
//	keys                  list all keys cluster-wide
//	ping                  check liveness of the contacted node
//
// Example — grow a cluster from one seed and count through any node:
//
//	elld -node-id n1 -addr :7700 &
//	elld -node-id n2 -addr :7701 -join 127.0.0.1:7700 &
//	ell-cluster -addr 127.0.0.1:7701 add visits alice bob
//	ell-cluster -addr 127.0.0.1:7700 count visits
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"exaloglog/cluster"
	"exaloglog/server"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ell-cluster [-addr host:port] info|map|health|stats [all]|join <id> <addr>|leave <id>|sync|rebalance|add <key> <el>...|count <key>...|wadd <key> <ts> <el>...|wcount <key> <window> [ts]|winfo <key>|keys|ping")
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "address of any cluster node")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	c, err := server.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	cmd, rest := strings.ToLower(args[0]), args[1:]
	switch cmd {
	case "info":
		reply := mustDo(c, "CLUSTER", "INFO")
		fmt.Println(strings.ReplaceAll(reply, " ", "\n"))
	case "map":
		reply := mustDo(c, "CLUSTER", "MAP")
		m, err := cluster.DecodeMap(strings.Fields(reply))
		if err != nil {
			log.Fatalf("malformed map reply %q: %v", reply, err)
		}
		coord := m.Coordinator
		if coord == "" {
			coord = "(none)"
		}
		fmt.Printf("epoch       %d\nversion     %d\ncoordinator %s\nreplicas    %d\n",
			m.Epoch, m.Version, coord, m.Replicas)
		for _, mem := range m.Members() {
			fmt.Printf("node        %-12s %s\n", mem.ID, mem.Addr)
		}
	case "health":
		reply := mustDo(c, "CLUSTER", "HEALTH")
		for _, tok := range strings.Fields(reply) {
			// Member rows are "<id>=<state>,k=v,...": the id cannot
			// contain '=' (validID), so the first '=' splits cleanly.
			id, fields, ok := strings.Cut(tok, "=")
			if !ok {
				fmt.Println(tok)
				continue
			}
			fmt.Printf("%-12s %s\n", id, strings.ReplaceAll(fields, ",", " "))
		}
		// Append every member's cluster-layer counters (best-effort: an
		// unreachable member shows an err= row, the detector rows above
		// still stand). These polls run through each node's peer pool,
		// so watching health is itself liveness evidence.
		if reply, err := c.Do("CLUSTER", "STATS", "ALL"); err == nil {
			fmt.Println()
			fmt.Println("per-node stats:")
			for _, row := range strings.Split(reply, "; ") {
				if strings.HasPrefix(row, "node=") {
					fmt.Println(row)
				}
			}
		}
	case "stats":
		parts := []string{"CLUSTER", "STATS"}
		switch {
		case len(rest) == 1 && strings.EqualFold(rest[0], "all"):
			parts = append(parts, "ALL")
		case len(rest) != 0:
			usage()
		}
		// The wire reply is one folded line (newlines → "; ", the
		// protocol's one-reply-one-line rule); unfold for humans.
		for _, row := range strings.Split(mustDo(c, parts...), "; ") {
			fmt.Println(row)
			if line := compressionSummary(row); line != "" {
				fmt.Println(line)
			}
		}
	case "join":
		if len(rest) != 2 {
			usage()
		}
		printMutation(mustDo(c, "CLUSTER", "JOIN", rest[0], rest[1]))
	case "leave":
		if len(rest) != 1 {
			usage()
		}
		printMutation(mustDo(c, "CLUSTER", "LEAVE", rest[0]))
	case "sync":
		fmt.Println(mustDo(c, "CLUSTER", "SYNC"))
	case "rebalance":
		fmt.Println(mustDo(c, "CLUSTER", "REBALANCE"))
	case "add":
		if len(rest) < 2 {
			usage()
		}
		changed, err := c.PFAdd(rest[0], rest[1:]...)
		if c2 := redialMoved(err); c2 != nil {
			changed, err = c2.PFAdd(rest[0], rest[1:]...)
			c2.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("changed=%v\n", changed)
	case "count":
		if len(rest) < 1 {
			usage()
		}
		n, err := c.PFCount(rest...)
		if c2 := redialMoved(err); c2 != nil {
			n, err = c2.PFCount(rest...)
			c2.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(n)
	case "wadd":
		if len(rest) < 3 {
			usage()
		}
		reply := mustDo(c, append([]string{"WADD"}, rest...)...)
		fmt.Printf("accepted=%s\n", reply)
	case "wcount":
		if len(rest) != 2 && len(rest) != 3 {
			usage()
		}
		fmt.Println(mustDo(c, append([]string{"WCOUNT"}, rest...)...))
	case "winfo":
		if len(rest) != 1 {
			usage()
		}
		for _, tok := range strings.Fields(mustDo(c, "WINFO", rest[0])) {
			fmt.Println(tok)
		}
	case "keys":
		keys, err := c.Keys()
		if err != nil {
			log.Fatal(err)
		}
		for _, k := range keys {
			fmt.Println(k)
		}
	case "ping":
		if err := c.Ping(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("PONG")
	default:
		usage()
	}
}

// printMutation renders a JOIN/LEAVE reply. A mutation can lose to a
// concurrent one under the epoch order; the reply then starts with
// SUPERSEDED and carries the winning map's (epoch, version,
// coordinator) so the operator sees WHAT won instead of a silent no-op.
// compressionSummary derives the transfer codec's achieved reduction
// from a node's cluster-counter row: precompress bytes vs bytes that
// actually hit the wire. Returns "" until the node has framed at least
// one compressed transfer (both counters zero), or for non-counter
// rows.
func compressionSummary(row string) string {
	if !strings.HasPrefix(row, "node=") {
		return ""
	}
	vals := make(map[string]uint64)
	for _, f := range strings.Fields(row) {
		if k, v, ok := strings.Cut(f, "="); ok {
			if n, err := strconv.ParseUint(v, 10, 64); err == nil {
				vals[k] = n
			}
		}
	}
	pre, wire := vals["xfer_bytes_precompress"], vals["xfer_bytes_wire"]
	if pre == 0 || wire == 0 {
		return ""
	}
	return fmt.Sprintf("  xfer compression: %d -> %d bytes (%.2fx)",
		pre, wire, float64(pre)/float64(wire))
}

func printMutation(reply string) {
	if rest, ok := strings.CutPrefix(reply, "SUPERSEDED"); ok {
		fmt.Printf("superseded: a concurrent membership change won (%s); inspect 'map' and re-issue if still wanted\n",
			strings.TrimSpace(rest))
		os.Exit(1)
	}
	fmt.Println(reply)
}

func mustDo(c *server.Client, parts ...string) string {
	reply, err := c.Do(parts...)
	if c2 := redialMoved(err); c2 != nil {
		reply, err = c2.Do(parts...)
		c2.Close()
	}
	if err != nil {
		log.Fatal(err)
	}
	return reply
}

// redialMoved dials the owner a -MOVED redirect names, or returns nil
// for any other outcome. Strict-routing nodes (elld -strict-routing)
// bounce misrouted single-key data commands instead of forwarding, so
// the CLI follows one redirect — enough against a stable map; a second
// bounce surfaces as the error it is.
func redialMoved(err error) *server.Client {
	mv, ok := server.AsMoved(err)
	if !ok {
		return nil
	}
	c2, derr := server.Dial(mv.Addr)
	if derr != nil {
		log.Fatalf("following MOVED to %s (%s): %v", mv.NodeID, mv.Addr, derr)
	}
	fmt.Fprintf(os.Stderr, "ell-cluster: redirected to owner %s at %s\n", mv.NodeID, mv.Addr)
	return c2
}
