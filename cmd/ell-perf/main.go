// Command ell-perf regenerates the performance comparison of Figure 11:
// average execution times for insert, estimate, serialize, merge, and
// combined merge+estimate, for n ∈ {10, 20, 50, ..., 10^6} random 16-byte
// elements hashed with Murmur3 (the hash the paper fixes across all
// libraries).
//
// Absolute numbers differ from the paper's Java/C++ testbed; the claims
// that reproduce are relative: ELL inserts are constant-time and in the
// same league as HLL, CPC-like serialization is an order of magnitude
// slower than ELL's plain copy, and HLLL pays for its compression on
// inserts.
package main

import (
	"flag"
	"fmt"

	"exaloglog/internal/compare"
)

func main() {
	reps := flag.Int("reps", 20, "timing repetitions for small n (scaled down for large n)")
	maxN := flag.Int("maxn", 1000000, "largest distinct count")
	seed := flag.Uint64("seed", 42, "random seed for the element keys")
	flag.Parse()

	var ns []int
	for base := 10; base <= *maxN/10; base *= 10 {
		for _, f := range []int{1, 2, 5} {
			if v := base * f; v <= *maxN {
				ns = append(ns, v)
			}
		}
	}
	ns = append(ns, *maxN)

	fmt.Println("# Figure 11: average operation times (ns)")
	fmt.Println("algorithm\tn\tinsert_ns\testimate_ns\tserialize_ns\tmerge_ns\tmerge_estimate_ns")
	res := compare.Figure11(compare.Figure11Algorithms(), ns, *reps, *seed)
	for _, r := range res {
		fmt.Printf("%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			r.Name, r.N, r.InsertNs, r.EstimateNs, r.SerializeNs, r.MergeNs, r.MergeAndEstimateNs)
	}
}
