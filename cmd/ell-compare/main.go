// Command ell-compare regenerates the comparative space-efficiency results
// of the ExaLogLog paper:
//
//	Table 2:   RMSE, memory and serialized sizes, and empirical MVPs of
//	           all algorithms at ~2 % target error after n = 10^6 inserts.
//	Figure 10: average memory footprint and empirical MVP over
//	           n ∈ {10, 20, 50, ..., 10^6}.
//
// The paper uses 1 million simulation runs; the default here is far
// smaller so a full reproduction finishes in minutes — scale with -runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"exaloglog/internal/compare"
)

func main() {
	what := flag.String("experiment", "all", "experiment to run: table2, figure10 or all")
	n := flag.Int("n", 1000000, "distinct count for table 2")
	runs := flag.Int("runs", 20, "simulation runs (paper: 1000000)")
	seed := flag.Uint64("seed", 1, "base random seed")
	flag.Parse()

	switch *what {
	case "table2":
		table2(*n, *runs, *seed)
	case "figure10":
		figure10(*runs, *seed)
	case "all":
		table2(*n, *runs, *seed)
		figure10(*runs, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *what)
		os.Exit(2)
	}
}

func table2(n, runs int, seed uint64) {
	fmt.Printf("# Table 2: space-efficiency comparison at n=%d over %d runs\n", n, runs)
	fmt.Println("# sorted by in-memory MVP (descending), as in the paper")
	fmt.Printf("%-36s %8s %10s %12s %10s %12s %8s\n",
		"algorithm", "rmse", "memory_B", "serialized_B", "mvp_mem", "mvp_serial", "O(1)ins")
	rows := compare.Table2(compare.Table2Algorithms(), n, runs, seed)
	// Sort by in-memory MVP descending (paper sorts ascending by MVP;
	// keep its visual order: worst first ... actually the paper sorts by
	// in-memory MVP with the best, ELL, at the bottom).
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].MVPMemory > rows[i].MVPMemory {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	for _, r := range rows {
		ct := "-"
		if r.ConstantTimeInsert {
			ct = "yes"
		}
		fmt.Printf("%-36s %7.2f%% %10.0f %12.0f %10.2f %12.2f %8s\n",
			r.Name, r.RMSE*100, r.MemoryBytes, r.SerializedBytes, r.MVPMemory, r.MVPSerialized, ct)
	}
	fmt.Println("# conjectured lower bound: MVP 1.98")
}

func figure10(runs int, seed uint64) {
	fmt.Printf("# Figure 10: memory footprint and empirical MVP vs n over %d runs\n", runs)
	fmt.Println("algorithm\tn\tmemory_bytes\tempirical_mvp")
	points := compare.Figure10(compare.Figure10Algorithms(), compare.Figure10Ns(), runs, seed)
	for _, p := range points {
		fmt.Printf("%s\t%d\t%.0f\t%.2f\n", p.Name, p.N, p.MemoryBytes, p.MVP)
	}
}
