// Command ell-loader drives a configurable load mix against a sketch
// cluster (or a single elld) and reports achieved throughput and
// client-observed latency percentiles as JSON — the cluster-level
// counterpart to the single-process Go benchmarks, feeding
// BENCH_serving.json through ell-benchjson's -load flag.
//
// Target selection: -addrs takes a comma-separated list of running
// nodes (connections round-robin across them), or -self N spins up an
// N-node in-process cluster first — the self-contained mode the
// Makefile loadtest smoke uses.
//
// Workload shape: -conns pipelined connections, each sending batches of
// -depth commands drawn from the -mix weights (pfadd/pfcount/wadd/
// wcount) over -keys keys picked by -dist (zipf or uniform). -qps caps
// total throughput (0 = max). The first -warmup of the run is driven
// but not measured.
//
// Routing: by default each connection talks to one node, which
// forwards on the client's behalf (coordinator mode). -single-hop
// instead drives cluster.ClusterClient batches — keys are hashed
// locally and every command goes straight to an owner, the smart-
// client path. With -self the nodes then run strict routing, so the
// measured path is honest single-hop (a misroute would bounce, not
// silently forward). The JSON result records the route, and the
// Makefile loadtest emits one row per route so the latency win is
// recorded, not asserted.
//
// TTL churn: -ttl arms an expiry deadline on every key a pfadd
// touches — the EXPIRE rides in the same pipeline batch — so a long
// run continuously creates and expires keys, the workload that
// exercises lazy expiry, the background sweep and the memory
// watermark under load (pair with elld -default-ttl / -mem-high).
//
//	ell-loader -self 3 -conns 4 -depth 32 -duration 10s -mix pfadd=8,pfcount=1,wadd=1 -dist zipf
//	ell-loader -self 3 -single-hop -conns 4 -depth 32 -duration 10s
//	ell-loader -self 3 -ttl 2s -duration 30s -mix pfadd=4,pfcount=1
//	ell-loader -addrs 127.0.0.1:7700,127.0.0.1:7701 -qps 5000 -out load.json
//
// Latency is observed per pipeline batch round trip and attributed to
// every command in the batch — what a caller awaiting its own reply
// experiences. Errors never abort the run; they are counted per verb.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"exaloglog/cluster"
	"exaloglog/internal/core"
	"exaloglog/internal/loadreport"
	"exaloglog/server"
)

func main() {
	addrs := flag.String("addrs", "", "comma-separated node addresses to load (alternative to -self)")
	self := flag.Int("self", 0, "spin up an in-process cluster of this many nodes instead of -addrs")
	replicas := flag.Int("replicas", 2, "replica factor of the -self cluster")
	p := flag.Int("p", 12, "sketch precision of the -self cluster")
	conns := flag.Int("conns", 4, "concurrent pipelined connections")
	depth := flag.Int("depth", 32, "commands per pipeline batch")
	duration := flag.Duration("duration", 10*time.Second, "measured load duration")
	warmup := flag.Duration("warmup", time.Second, "unmeasured warmup before the clock starts")
	keys := flag.Int("keys", 1000, "size of the key space")
	keyPrefix := flag.String("key-prefix", "lk", "key name prefix")
	dist := flag.String("dist", "zipf", "key distribution: zipf or uniform")
	zipfS := flag.Float64("zipf-s", 1.1, "zipf s parameter (>1; larger = more skew)")
	zipfV := flag.Float64("zipf-v", 1, "zipf v parameter (>=1)")
	mix := flag.String("mix", "pfadd=8,pfcount=1,wadd=1", "verb mix as verb=weight[,verb=weight...]; verbs: pfadd, pfcount, wadd, wcount")
	qps := flag.Float64("qps", 0, "target total commands/second (0 = max throughput)")
	elements := flag.Int("elements", 2, "elements per pfadd/wadd command")
	seed := flag.Int64("seed", 1, "base RNG seed (per-connection streams derive from it)")
	singleHop := flag.Bool("single-hop", false, "route each command straight to an owner via the smart client (with -self, nodes run strict routing)")
	ttl := flag.Duration("ttl", 0, "churn mode: arm this expiry TTL on every pfadd'd key, in the same batch (0 disables)")
	out := flag.String("out", "", "write the JSON result here instead of stdout")
	flag.Parse()

	specs, err := parseMix(*mix)
	if err != nil {
		log.Fatal("ell-loader: ", err)
	}
	if *conns < 1 || *depth < 1 || *keys < 1 || *elements < 1 {
		log.Fatal("ell-loader: -conns, -depth, -keys and -elements must be >= 1")
	}
	if *dist != "zipf" && *dist != "uniform" {
		log.Fatalf("ell-loader: unknown -dist %q (want zipf or uniform)", *dist)
	}

	var targets []string
	if *self > 0 {
		nodes, stop, err := startSelfCluster(*self, *replicas, *p, *singleHop)
		if err != nil {
			log.Fatal("ell-loader: ", err)
		}
		defer stop()
		targets = nodes
	} else {
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				targets = append(targets, a)
			}
		}
	}
	if len(targets) == 0 {
		log.Fatal("ell-loader: no targets: set -addrs or -self")
	}

	cfg := workerConfig{
		specs: specs, depth: *depth, keys: *keys, keyPrefix: *keyPrefix,
		dist: *dist, zipfS: *zipfS, zipfV: *zipfV, elements: *elements,
		singleHop: *singleHop, ttl: *ttl,
	}
	if *qps > 0 {
		// Per-connection pacing: each connection owns an equal share of
		// the target and spaces its batches accordingly.
		cfg.batchEvery = time.Duration(float64(*depth) / (*qps / float64(*conns)) * float64(time.Second))
	}

	warmupEnd := time.Now().Add(*warmup)
	end := warmupEnd.Add(*duration)
	stats := make([]*workerStats, *conns)
	var wg sync.WaitGroup
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i] = runWorker(targets, i, *seed+int64(i)*104729, cfg, warmupEnd, end)
		}(i)
	}
	wg.Wait()

	res := aggregate(stats, specs)
	res.Addrs, res.Conns, res.Depth = targets, *conns, *depth
	res.Dist, res.Keys, res.Mix, res.Seed = *dist, *keys, *mix, *seed
	res.Route = "coordinator"
	if *singleHop {
		res.Route = "single-hop"
	}
	res.TargetQPS, res.DurationSec, res.WarmupSec = *qps, duration.Seconds(), warmup.Seconds()
	if duration.Seconds() > 0 {
		res.AchievedQPS = float64(res.Ops) / duration.Seconds()
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal("ell-loader: ", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		log.Fatal("ell-loader: ", err)
	}
	fmt.Fprintf(os.Stderr, "ell-loader: %s route: %d ops in %v: %.0f cmd/s, p50=%dµs p99=%dµs max=%dµs, %d errors\n",
		res.Route, res.Ops, *duration, res.AchievedQPS, res.LatencyUS.P50, res.LatencyUS.P99, res.LatencyUS.Max, res.Errors)
}

// verbSpec is one weighted entry of the -mix.
type verbSpec struct {
	name   string
	weight int
}

// parseMix parses "pfadd=8,pfcount=1" into weighted verb specs.
func parseMix(s string) ([]verbSpec, error) {
	var specs []verbSpec
	for _, part := range strings.Split(s, ",") {
		name, ws, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want verb=weight)", part)
		}
		w, err := strconv.Atoi(ws)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -mix weight in %q", part)
		}
		name = strings.ToLower(name)
		switch name {
		case "pfadd", "pfcount", "wadd", "wcount":
		default:
			return nil, fmt.Errorf("unknown -mix verb %q", name)
		}
		specs = append(specs, verbSpec{name, w})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty -mix")
	}
	return specs, nil
}

// workerConfig is the per-connection slice of the workload shape.
type workerConfig struct {
	specs        []verbSpec
	depth        int
	keys         int
	keyPrefix    string
	dist         string
	zipfS, zipfV float64
	elements     int
	singleHop    bool          // route via cluster.ClusterClient instead of one coordinator
	ttl          time.Duration // >0: churn mode, EXPIRE follows every pfadd in-batch
	batchEvery   time.Duration // 0: no pacing (max throughput)
}

// opBatch is the slice of batching API the workload needs, satisfied by
// both a coordinator pipeline and a smart-client batch so runWorker is
// route-agnostic.
type opBatch interface {
	PFAdd(key string, elements ...string)
	PFCount(key string)
	WAdd(key string, tsMillis int64, elements ...string)
	WCount(key string, win time.Duration)
	Expire(key string, ttl time.Duration)
	Exec() ([]server.Result, error)
}

// pipeBatch adapts server.Pipeline to opBatch: the pipeline's PFCount
// is variadic (the server verb takes several keys), the workload always
// counts one.
type pipeBatch struct{ *server.Pipeline }

func (p pipeBatch) PFCount(key string) { p.Pipeline.PFCount(key) }

// driver owns one worker's connection state: hand out batches, drop the
// connection after a transport failure so the next batch() redials.
type driver interface {
	batch() (opBatch, error)
	fail()
	close()
}

// coordDriver is the classic route: one pipelined connection to one
// node, which forwards to owners on the client's behalf.
type coordDriver struct {
	addr string
	c    *server.Client
}

func (d *coordDriver) batch() (opBatch, error) {
	if d.c == nil {
		c, err := server.Dial(d.addr)
		if err != nil {
			return nil, err
		}
		d.c = c
	}
	return pipeBatch{d.c.Pipeline()}, nil
}

func (d *coordDriver) fail() { d.close(); d.c = nil }

func (d *coordDriver) close() {
	if d.c != nil {
		d.c.Close()
	}
}

// singleHopDriver is the smart-client route: keys hashed locally,
// commands sent straight to an owner over per-node connections.
type singleHopDriver struct {
	targets []string
	cc      *cluster.ClusterClient
}

func (d *singleHopDriver) batch() (opBatch, error) {
	if d.cc == nil {
		cc, err := cluster.DialCluster(d.targets...)
		if err != nil {
			return nil, err
		}
		d.cc = cc
	}
	return d.cc.Batch(), nil
}

func (d *singleHopDriver) fail() { d.close(); d.cc = nil }

func (d *singleHopDriver) close() {
	if d.cc != nil {
		d.cc.Close()
	}
}

// workerStats is one connection's measured outcome. The histogram is
// the server package's LatencyHist, reused client-side.
type workerStats struct {
	hist     server.LatencyHist
	ops      uint64
	errs     uint64
	verbOps  []uint64 // indexed like cfg.specs
	verbErrs []uint64
}

// runWorker drives one connection's worth of load until end, recording
// only after warmupEnd. Transport errors redial and keep going — the
// run measures the cluster, it must not die with it. Coordinator mode
// pins the worker to targets[idx%len]; single-hop mode routes every
// command itself from the full target list.
func runWorker(targets []string, idx int, seed int64, cfg workerConfig, warmupEnd, end time.Time) *workerStats {
	st := &workerStats{
		verbOps:  make([]uint64, len(cfg.specs)),
		verbErrs: make([]uint64, len(cfg.specs)),
	}
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if cfg.dist == "zipf" {
		zipf = rand.NewZipf(rng, cfg.zipfS, cfg.zipfV, uint64(cfg.keys-1))
	}
	totalWeight := 0
	for _, sp := range cfg.specs {
		totalWeight += sp.weight
	}
	pickVerb := func() int {
		r := rng.Intn(totalWeight)
		for i, sp := range cfg.specs {
			if r -= sp.weight; r < 0 {
				return i
			}
		}
		return len(cfg.specs) - 1
	}
	pickKey := func() string {
		if zipf != nil {
			return cfg.keyPrefix + strconv.FormatUint(zipf.Uint64(), 10)
		}
		return cfg.keyPrefix + strconv.Itoa(rng.Intn(cfg.keys))
	}
	elems := make([]string, cfg.elements)
	elemSeq := 0
	fillElems := func() {
		for i := range elems {
			elemSeq++
			elems[i] = "e" + strconv.FormatInt(seed, 36) + "-" + strconv.Itoa(elemSeq)
		}
	}

	var d driver
	if cfg.singleHop {
		d = &singleHopDriver{targets: targets}
	} else {
		d = &coordDriver{addr: targets[idx%len(targets)]}
	}
	defer d.close()
	// slots maps each queued command (and so each result) back to its
	// mix verb; churn mode appends an extra EXPIRE slot per pfadd.
	slots := make([]int, 0, cfg.depth*2)
	next := time.Now()
	for time.Now().Before(end) {
		pl, err := d.batch()
		if err != nil {
			st.errs++
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if cfg.batchEvery > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(cfg.batchEvery)
		}
		slots = slots[:0]
		for j := 0; j < cfg.depth; j++ {
			vi := pickVerb()
			slots = append(slots, vi)
			key := pickKey()
			switch cfg.specs[vi].name {
			case "pfadd":
				fillElems()
				pl.PFAdd(key, elems...)
				if cfg.ttl > 0 {
					// Churn: the key expires cfg.ttl after this batch
					// lands, continuously recycling the keyspace.
					pl.Expire(key, cfg.ttl)
					slots = append(slots, vi)
				}
			case "pfcount":
				pl.PFCount(key)
			case "wadd":
				fillElems()
				pl.WAdd("w"+key, time.Now().UnixMilli(), elems...)
			case "wcount":
				pl.WCount("w"+key, 30*time.Second)
			}
		}
		t0 := time.Now()
		results, err := pl.Exec()
		lat := time.Since(t0)
		measured := t0.After(warmupEnd)
		if err != nil {
			// Transport failure: the whole batch is lost; redial.
			if measured {
				st.errs++
			}
			d.fail()
			continue
		}
		if !measured {
			continue
		}
		for j, r := range results {
			st.hist.Observe(lat)
			st.ops++
			st.verbOps[slots[j]]++
			if r.Err != nil {
				st.errs++
				st.verbErrs[slots[j]]++
			}
		}
	}
	return st
}

// aggregate folds the per-connection stats into one Result.
func aggregate(stats []*workerStats, specs []verbSpec) *loadreport.Result {
	var hist server.LatencyHist
	res := &loadreport.Result{Tool: "ell-loader", PerVerb: make(map[string]loadreport.VerbResult)}
	for _, st := range stats {
		if st == nil {
			continue
		}
		hist.Merge(&st.hist)
		res.Ops += st.ops
		res.Errors += st.errs
		for i, sp := range specs {
			v := res.PerVerb[sp.name]
			v.Ops += st.verbOps[i]
			v.Errors += st.verbErrs[i]
			res.PerVerb[sp.name] = v
		}
	}
	res.LatencyUS = loadreport.Latency{
		P50: hist.Quantile(0.50).Microseconds(),
		P90: hist.Quantile(0.90).Microseconds(),
		P99: hist.Quantile(0.99).Microseconds(),
		Max: hist.Max().Microseconds(),
	}
	return res
}

// startSelfCluster boots an n-node in-process cluster and returns its
// addresses plus a shutdown func — the zero-setup mode for smoke tests.
// With strict set, nodes bounce misrouted data commands with -MOVED so
// a single-hop run measures genuine owner-direct latency.
func startSelfCluster(n, replicas, p int, strict bool) ([]string, func(), error) {
	cfg := core.RecommendedML(p)
	if replicas > n {
		replicas = n
	}
	var nodes []*cluster.Node
	stop := func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}
	for i := 0; i < n; i++ {
		nd, err := cluster.NewNode("ld"+strconv.Itoa(i), cfg, replicas)
		if err != nil {
			stop()
			return nil, nil, err
		}
		nd.SetStrictRouting(strict)
		if err := nd.Start("127.0.0.1:0"); err != nil {
			stop()
			return nil, nil, err
		}
		nodes = append(nodes, nd)
		if i > 0 {
			if err := nd.Join(nodes[0].Addr()); err != nil {
				stop()
				return nil, nil, err
			}
		}
	}
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.Addr()
	}
	fmt.Fprintf(os.Stderr, "ell-loader: self-cluster of %d nodes (replicas=%d) at %s\n",
		n, replicas, strings.Join(addrs, " "))
	return addrs, stop, nil
}
