// Command ell-ext runs the extension experiments built on top of the
// paper reproduction — the application subsystems of the packages
// exaloglog/graph, exaloglog/window, exaloglog/similarity and
// internal/fastell. These go beyond the paper's own evaluation; each
// experiment prints a TSV table, consistent with the other cmd/ binaries.
//
// Experiments:
//
//	-experiment anf        HyperANF neighborhood function vs exact BFS
//	-experiment hardcoded  generic vs hardcoded ELL insert cost (Section 5.3 remark)
//	-experiment overlap    inclusion–exclusion error vs true Jaccard
//	-experiment window     sliding-window estimate vs exact sliding count
//	-experiment skew       estimation error under duplication skew (negative control)
//	-experiment all        everything above
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"exaloglog/graph"
	"exaloglog/internal/core"
	"exaloglog/internal/fastell"
	"exaloglog/internal/hashing"
	"exaloglog/internal/workload"
	"exaloglog/similarity"
	"exaloglog/window"
)

func main() {
	experiment := flag.String("experiment", "all", "anf | hardcoded | overlap | window | skew | all")
	flag.Parse()

	switch *experiment {
	case "anf":
		runANF()
	case "hardcoded":
		runHardcoded()
	case "overlap":
		runOverlap()
	case "window":
		runWindow()
	case "skew":
		runSkew()
	case "all":
		runANF()
		fmt.Println()
		runHardcoded()
		fmt.Println()
		runOverlap()
		fmt.Println()
		runWindow()
		fmt.Println()
		runSkew()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// runANF compares the HyperANF estimate against exact BFS on a
// preferential-attachment graph.
func runANF() {
	fmt.Println("# EXT-1: HyperANF neighborhood function vs exact (PA graph, 2000 nodes, k=3, ELL(2,20,8))")
	fmt.Println("r\tapprox_N\texact_N\trel_err_pct")
	g := graph.PreferentialAttachment(2000, 3, 42)
	res, err := graph.ApproxNeighborhood(g, core.Config{T: 2, D: 20, P: 8}, graph.Options{})
	if err != nil {
		panic(err)
	}
	exact := graph.ExactNeighborhood(g, 0)
	for r := 0; r < len(res.N) && r < len(exact); r++ {
		fmt.Printf("%d\t%.0f\t%.0f\t%+.2f\n", r, res.N[r], exact[r], (res.N[r]/exact[r]-1)*100)
	}
	fmt.Printf("# effective diameter (90%%): approx %.2f\n", res.EffectiveDiameter(0.9))
}

// runHardcoded times generic vs hardcoded inserts (Section 5.3:
// "hardcoding these values could potentially further improve its
// performance").
func runHardcoded() {
	fmt.Println("# EXT-2: generic vs hardcoded insert cost, p=11 (Section 5.3 remark)")
	fmt.Println("variant\tns_per_insert")
	const rounds = 1 << 22
	state := uint64(7)
	hashes := make([]uint64, 1<<16)
	for i := range hashes {
		hashes[i] = hashing.SplitMix64(&state)
	}
	mask := len(hashes) - 1

	gen20 := core.MustNew(core.Config{T: 2, D: 20, P: 11})
	gen24 := core.MustNew(core.Config{T: 2, D: 24, P: 11})
	fast20, _ := fastell.New2420(11)
	fast24, _ := fastell.New2424(11)

	timeIt := func(name string, f func(h uint64)) {
		start := time.Now()
		for i := 0; i < rounds; i++ {
			f(hashes[i&mask])
		}
		fmt.Printf("%s\t%.2f\n", name, float64(time.Since(start).Nanoseconds())/rounds)
	}
	timeIt("generic ELL(2,20)", gen20.AddHash)
	timeIt("hardcoded ELL(2,20)", fast20.AddHash)
	timeIt("generic ELL(2,24)", gen24.AddHash)
	timeIt("hardcoded ELL(2,24)", fast24.AddHash)
}

// runOverlap sweeps the true Jaccard similarity and reports the
// inclusion–exclusion estimation error, illustrating that the relative
// intersection error grows as the overlap shrinks.
func runOverlap() {
	fmt.Println("# EXT-3: inclusion–exclusion error vs true overlap (|A|=|B|=100000, p=12)")
	fmt.Println("true_jaccard\test_jaccard\tjaccard_err_abs\tintersection_rel_err_pct")
	const n = 100000
	for _, overlapFrac := range []float64{0.5, 0.2, 0.1, 0.05, 0.02, 0.01} {
		overlap := int(overlapFrac * n)
		a := core.MustNew(core.RecommendedML(12))
		b := core.MustNew(core.RecommendedML(12))
		for i := 0; i < n; i++ {
			a.AddUint64(uint64(i))
			b.AddUint64(uint64(i + n - overlap))
		}
		e, err := similarity.Analyze(a, b)
		if err != nil {
			panic(err)
		}
		trueJ := float64(overlap) / float64(2*n-overlap)
		relErr := math.NaN()
		if overlap > 0 {
			relErr = (e.Intersection/float64(overlap) - 1) * 100
		}
		fmt.Printf("%.4f\t%.4f\t%.4f\t%+.1f\n", trueJ, e.Jaccard, math.Abs(e.Jaccard-trueJ), relErr)
	}
}

// runSkew is the negative control: the estimation error must be a
// function of the distinct count only — duplication factor, popularity
// skew and duplicate clustering must not matter (idempotency +
// commutativity, Section 1).
func runSkew() {
	fmt.Println("# EXT-5: estimate vs exact under duplication skew (1e6 events, ELL(2,20,12))")
	fmt.Println("workload\tevents\texact_distinct\testimate\trel_err_pct")
	type namedStream struct {
		name string
		s    workload.Stream
	}
	for _, ns := range []namedStream{
		{"uniform (no duplicates)", workload.NewUniform(1)},
		{"zipf s=1.0 over 200k", workload.NewZipf(2, 200000, 1.0)},
		{"zipf s=1.5 over 200k", workload.NewZipf(3, 200000, 1.5)},
		{"bursty x100 uniform", workload.NewBursty(workload.NewUniform(4), 100)},
	} {
		sketch := core.MustNew(core.RecommendedML(12))
		exact := workload.NewDistinctCounter()
		const events = 1000000
		for i := 0; i < events; i++ {
			h := ns.s.NextHash()
			sketch.AddHash(h)
			exact.Observe(h)
		}
		est := sketch.EstimateML()
		truth := float64(exact.Count())
		fmt.Printf("%s\t%d\t%d\t%.0f\t%+.2f\n", ns.name, events, exact.Count(), est, (est/truth-1)*100)
	}
}

// runWindow replays a stream with a moving distinct-value population and
// compares sliding-window estimates with exact sliding counts.
func runWindow() {
	fmt.Println("# EXT-4: sliding-window estimate vs exact (60 slices x 1s, ELL(2,20,11))")
	fmt.Println("minute\twindow_s\testimate\texact\trel_err_pct")
	c, err := window.New(core.RecommendedML(11), time.Second, 60)
	if err != nil {
		panic(err)
	}
	base := time.Date(2026, 6, 13, 0, 0, 0, 0, time.UTC)
	state := uint64(99)
	// Each second: 500 distinct values drawn from a window-dependent
	// population (values rotate every 30 s, so the 60 s window holds
	// ≈ 2 populations).
	type obs struct {
		slice int64
		v     uint64
	}
	var log []obs
	for sec := 0; sec < 180; sec++ {
		ts := base.Add(time.Duration(sec) * time.Second)
		epoch := uint64(sec / 30)
		for i := 0; i < 500; i++ {
			v := epoch<<32 | hashing.SplitMix64(&state)%15000
			c.AddUint64(ts, v)
			log = append(log, obs{int64(sec), v})
		}
		if (sec+1)%60 != 0 {
			continue
		}
		for _, w := range []int64{10, 30, 60} {
			exactSet := make(map[uint64]struct{})
			for _, o := range log {
				if o.slice > int64(sec)-w && o.slice <= int64(sec) {
					exactSet[o.v] = struct{}{}
				}
			}
			got := c.Estimate(ts, time.Duration(w)*time.Second)
			exact := float64(len(exactSet))
			fmt.Printf("%d\t%d\t%.0f\t%.0f\t%+.2f\n", (sec+1)/60, w, got, exact, (got/exact-1)*100)
		}
	}
}
