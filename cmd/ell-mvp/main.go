// Command ell-mvp regenerates the analytic figures of the ExaLogLog paper:
//
//	Figure 1: memory over relative standard error for MVPs 2..8
//	Figure 2: geometric vs approximated update-value PMFs (t = 1, 2)
//	Figure 4: MVP (3) vs d    — dense registers, ML estimator
//	Figure 5: MVP (6) vs d    — dense registers, martingale estimator
//	Figure 6: MVP (5) vs d    — compressed state, ML estimator
//	Figure 7: MVP (7) vs d    — compressed state, martingale estimator
//
// Output is TSV on stdout, one row per point, suitable for plotting.
//
// Usage:
//
//	ell-mvp -figure 4
//	ell-mvp -figure all
package main

import (
	"flag"
	"fmt"
	"os"

	"exaloglog/internal/mvp"
)

func main() {
	figure := flag.String("figure", "all", "figure to regenerate: 1, 2, 4, 5, 6, 7 or all")
	dmax := flag.Int("dmax", 60, "largest d for the MVP curves")
	flag.Parse()

	switch *figure {
	case "1":
		figure1()
	case "2":
		figure2()
	case "4":
		figureCurves(4, mvp.KindDenseML, *dmax)
	case "5":
		figureCurves(5, mvp.KindDenseMartingale, *dmax)
	case "6":
		figureCurves(6, mvp.KindCompressedML, *dmax)
	case "7":
		figureCurves(7, mvp.KindCompressedMartingale, *dmax)
	case "all":
		figure1()
		figure2()
		for _, f := range []struct {
			id   int
			kind mvp.CurveKind
		}{{4, mvp.KindDenseML}, {5, mvp.KindDenseMartingale}, {6, mvp.KindCompressedML}, {7, mvp.KindCompressedMartingale}} {
			figureCurves(f.id, f.kind, *dmax)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		os.Exit(2)
	}
}

func figure1() {
	fmt.Println("# Figure 1: memory (bytes) over relative standard error (%)")
	fmt.Println("figure\tmvp\trel_err_pct\tmemory_bytes")
	for _, s := range mvp.Figure1([]float64{2, 3, 4, 5, 6, 8}) {
		for _, p := range s.Points {
			fmt.Printf("1\t%s\t%.1f\t%.1f\n", s.Label, p.X, p.Y)
		}
	}
}

func figure2() {
	fmt.Println("# Figure 2: update-value PMFs, geometric (2) vs approximate (8)")
	fmt.Println("figure\tt\tk\tgeometric\tapproximate")
	for _, t := range []int{1, 2} {
		g, a := mvp.Figure2(t, 21)
		for i := range g.Points {
			fmt.Printf("2\t%d\t%d\t%.9f\t%.9f\n", t, i+1, g.Points[i].Y, a.Points[i].Y)
		}
	}
}

func figureCurves(id int, kind mvp.CurveKind, dmax int) {
	names := map[int]string{
		4: "dense registers, efficient (ML) estimator — eq. (3)",
		5: "dense registers, martingale estimator — eq. (6)",
		6: "compressed state, efficient (ML) estimator — eq. (5)",
		7: "compressed state, martingale estimator — eq. (7)",
	}
	fmt.Printf("# Figure %d: MVP vs d — %s\n", id, names[id])
	fmt.Println("figure\tt\td\tmvp")
	for _, t := range []int{0, 1, 2, 3} {
		c := mvp.Curve(kind, t, dmax)
		for _, p := range c.Points {
			fmt.Printf("%d\t%d\t%.0f\t%.4f\n", id, t, p.X, p.Y)
		}
		min := mvp.Minimum(c)
		fmt.Printf("# figure %d t=%d minimum: d=%.0f MVP=%.4f\n", id, t, min.X, min.Y)
	}
	// Named reference points of the paper.
	if kind == mvp.KindDenseML {
		fmt.Printf("# reference: HLL=ELL(0,0) %.3f, EHLL=ELL(0,1) %.3f, ULL=ELL(0,2) %.3f, ELL(1,9) %.3f, ELL(2,16) %.3f, ELL(2,20) %.3f, ELL(2,24) %.3f\n",
			mvp.DenseML(mvp.Base(0), 6, 0),
			mvp.DenseML(mvp.Base(0), 6, 1),
			mvp.DenseML(mvp.Base(0), 6, 2),
			mvp.DenseML(mvp.Base(1), 7, 9),
			mvp.DenseML(mvp.Base(2), 8, 16),
			mvp.DenseML(mvp.Base(2), 8, 20),
			mvp.DenseML(mvp.Base(2), 8, 24))
	}
}
