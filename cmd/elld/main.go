// Command elld serves ExaLogLog sketches over TCP with Redis-style
// PFADD / PFCOUNT / PFMERGE commands — the "approximate distinct counting
// as a data-store command" scenario of the paper's introduction — plus
// the sliding-window verbs WADD / WCOUNT / WINFO (port-scan/DDoS-style
// distinct counting over time windows, the introduction's other
// motivating workload).
//
// Usage:
//
//	elld [-addr 127.0.0.1:7700] [-p 12] [-snapshot file] \
//	     [-window-slice 1s] [-window-slices 60] [-metrics-addr 127.0.0.1:9100] \
//	     [-default-ttl 0] [-mem-high 0] [-mem-low 0] [-sweep-interval 10s]
//	elld -node-id n1 [-replicas 2] [-join host:port] \
//	     [-gossip-interval 1s] [-suspect-after 5] \
//	     [-strict-routing] [-peer-timeout 5s] \
//	     [-xfer-batch 64] [-xfer-window 8] [-xfer-compress=true] \
//	     [-sync-digest-interval 30s]                 # cluster mode
//
// -metrics-addr serves Prometheus-text metrics at /metrics: per-verb
// call counts, error counts, bytes and latency histograms (see the
// STATS verb), plus — in cluster mode — the gossip/eviction/batching/
// rebalance counters of CLUSTER STATS.
//
// -window-slice and -window-slices set the ring geometry of keys
// created by WADD: windows are answerable up to slice·slices back, at
// slice-granular edges. Every node of one cluster must use the same
// geometry (like -p).
//
// With -node-id set, elld runs as a member of a sharded, replicated
// sketch cluster (see the cluster package): keys are routed to owner
// nodes by consistent hashing, counts scatter-gather serialized sketches,
// and -join adds this node to an existing cluster via any member.
//
// Cluster nodes run a gossip failure detector: every -gossip-interval
// the node exchanges heartbeat digests with a few peers, suspects any
// member silent for -suspect-after intervals, and — once a quorum of
// members agrees — evicts it with an epoch-fenced automatic LEAVE, so
// a dead node leaves the map without operator action. -gossip-interval
// 0 disables the detector (membership then changes only by operator
// command and anti-entropy sync).
//
// -peer-timeout bounds every node-to-node command (forwards,
// scatter-gather, gossip, bulk transfer) with an I/O deadline: a
// black-holed peer fails fast as a transport error and feeds the
// failure detector instead of hanging an operation forever.
// -xfer-batch and -xfer-window tune the streaming bulk-transfer
// transport that rebalance and sync move sketches over (keys per
// frame, unacked frames in flight; see the cluster package).
// -xfer-compress (default on) runs transfer frames through the
// sketch-aware wire codec when the receiver negotiates support; turn
// it off to debug with byte-identical ELX2 frames. Old peers that
// never negotiate compression get uncompressed frames either way.
//
// -sync-digest-interval runs periodic digest anti-entropy on top of
// the map sync: each round the node exchanges per-shard content
// digests with its peers and re-ships only the keys that actually
// diverge — O(shards) messages on a converged cluster, instead of
// probing every key. 0 disables digest rounds (map-level sync still
// runs).
//
// Keyspace lifecycle: -default-ttl stamps every key created from then
// on with an absolute expiry deadline (creation + TTL); EXPIRE/PERSIST
// override it per key. Expired keys are collected lazily on access and
// by a background sweep every -sweep-interval (0 disables the sweep;
// lazy expiry still applies). -mem-high/-mem-low arm the memory
// watermark: when approximate resident sketch bytes exceed -mem-high,
// the sweep evicts the coldest keys until resident bytes drop to
// -mem-low. In cluster mode deadlines are replicated as absolute
// instants, so every replica expires a key at the same moment.
//
// -strict-routing makes the node answer misrouted single-key data
// commands with a -MOVED redirect instead of forwarding to the owners
// — the serving mode for smart clients (cluster.ClusterClient,
// ell-loader -single-hop) that hash keys locally and expect one-hop
// latency. Coordinator-style clients can keep using non-strict nodes
// of the same cluster; the flag is per node.
//
// On SIGINT/SIGTERM elld takes a final snapshot (when -snapshot is set)
// before closing the listener, so a restarted node loses nothing. The
// snapshot also records the cluster map, so a cluster node restarted
// with the same -snapshot rejoins its cluster automatically — no -join
// needed after the first start.
//
// Try it with netcat:
//
//	$ printf 'PFADD visits alice bob\nPFCOUNT visits\nQUIT\n' | nc 127.0.0.1 7700
//	:1
//	:2
//	+BYE
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"exaloglog/cluster"
	"exaloglog/internal/core"
	"exaloglog/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	p := flag.Int("p", 12, "sketch precision (2^p registers, ELL(2,20) configuration)")
	snapshot := flag.String("snapshot", "", "snapshot file: loaded at startup if present, written by the SAVE command and on shutdown")
	nodeID := flag.String("node-id", "", "cluster node ID; non-empty enables cluster mode")
	join := flag.String("join", "", "address of any member of an existing cluster to join (cluster mode)")
	replicas := flag.Int("replicas", 2, "number of nodes holding each key (cluster mode)")
	gossipInterval := flag.Duration("gossip-interval", time.Second, "failure-detector gossip period, 0 disables (cluster mode)")
	suspectAfter := flag.Int("suspect-after", 5, "gossip intervals a silent member survives before suspicion (cluster mode)")
	strictRouting := flag.Bool("strict-routing", false, "answer misrouted single-key data commands with -MOVED instead of forwarding (cluster mode, for smart clients)")
	peerTimeout := flag.Duration("peer-timeout", 5*time.Second, "I/O deadline per node-to-node command and transfer frame, 0 disables (cluster mode)")
	xferBatch := flag.Int("xfer-batch", 64, "keys per bulk-transfer frame (cluster mode)")
	xferWindow := flag.Int("xfer-window", 8, "unacked bulk-transfer frames in flight (cluster mode)")
	xferCompress := flag.Bool("xfer-compress", true, "compress bulk-transfer frames with the sketch wire codec when the receiver supports it (cluster mode)")
	syncDigestInterval := flag.Duration("sync-digest-interval", 30*time.Second, "period of digest anti-entropy rounds repairing diverged replicas, 0 disables (cluster mode)")
	windowSlice := flag.Duration("window-slice", time.Second, "slice duration of WADD-created sliding-window keys")
	windowSlices := flag.Int("window-slices", 60, "number of slices in WADD-created rings (max window = slice x slices)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus-text /metrics on this address (empty disables)")
	defaultTTL := flag.Duration("default-ttl", 0, "expiry deadline stamped on every created key (0 disables); EXPIRE/PERSIST override per key")
	memHigh := flag.Int64("mem-high", 0, "resident sketch bytes that trigger cold-key eviction (0 disables)")
	memLow := flag.Int64("mem-low", 0, "resident sketch bytes eviction drains down to")
	sweepInterval := flag.Duration("sweep-interval", 10*time.Second, "period of the background expiry sweep and watermark check (0 disables)")
	flag.Parse()

	cfg := core.RecommendedML(*p)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lc := lifecycleOpts{
		defaultTTL: *defaultTTL, memHigh: *memHigh, memLow: *memLow,
		sweepInterval: *sweepInterval,
	}
	if *nodeID != "" {
		runCluster(ctx, cfg, *addr, *snapshot, *nodeID, *join, *replicas, *gossipInterval, *suspectAfter, *windowSlice, *windowSlices, *metricsAddr, *strictRouting, *peerTimeout, *xferBatch, *xferWindow, *xferCompress, *syncDigestInterval, lc)
		return
	}
	if *strictRouting {
		log.Fatal("-strict-routing requires cluster mode (-node-id)")
	}

	store, err := server.NewStore(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.SetWindowConfig(*windowSlice, *windowSlices); err != nil {
		log.Fatal(err)
	}
	lc.apply(ctx, store)
	loadSnapshot(store, *snapshot)
	srv := server.NewServer(store)
	srv.SetSnapshotPath(*snapshot)
	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	if closeMetrics := startMetrics(*metricsAddr, srv.WriteMetrics); closeMetrics != nil {
		defer closeMetrics()
	}
	fmt.Printf("elld listening on %s (ELL t=2 d=20 p=%d, %d bytes per sketch)\n",
		srv.Addr(), *p, cfg.SizeBytes())

	<-ctx.Done()
	fmt.Println("shutting down")
	// Close first: it stops the listener and waits for in-flight
	// connections, so the final snapshot cannot miss a racing write.
	if err := srv.Close(); err != nil {
		log.Print(err)
	}
	saveSnapshot(store, *snapshot)
}

// lifecycleOpts bundles the keyspace-lifecycle flags: default TTL,
// memory watermarks, and the background sweep period.
type lifecycleOpts struct {
	defaultTTL      time.Duration
	memHigh, memLow int64
	sweepInterval   time.Duration
}

// apply configures the store's lifecycle knobs (before it serves) and,
// when a sweep interval is set, starts the background sweeper: each
// tick collects a sample of due keys per shard and, above the high
// watermark, evicts cold keys down to the low one. Lazy expiry on
// access works regardless — the sweep only bounds how long an untouched
// expired key can linger.
func (o lifecycleOpts) apply(ctx context.Context, store *server.Store) {
	if o.defaultTTL > 0 {
		store.SetDefaultTTL(o.defaultTTL)
	}
	if o.memHigh > 0 {
		store.SetMemoryWatermarks(o.memHigh, o.memLow)
	}
	if o.sweepInterval <= 0 {
		return
	}
	go func() {
		ticker := time.NewTicker(o.sweepInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				store.Sweep(128)
			}
		}
	}()
}

func runCluster(ctx context.Context, cfg core.Config, addr, snapshot, nodeID, join string, replicas int, gossipInterval time.Duration, suspectAfter int, windowSlice time.Duration, windowSlices int, metricsAddr string, strictRouting bool, peerTimeout time.Duration, xferBatch, xferWindow int, xferCompress bool, syncDigestInterval time.Duration, lc lifecycleOpts) {
	node, err := cluster.NewNode(nodeID, cfg, replicas)
	if err != nil {
		log.Fatal(err)
	}
	if err := node.Store().SetWindowConfig(windowSlice, windowSlices); err != nil {
		log.Fatal(err)
	}
	lc.apply(ctx, node.Store())
	node.SetGossipConfig(cluster.GossipConfig{SuspectAfter: suspectAfter})
	node.SetStrictRouting(strictRouting)
	node.SetPeerTimeout(peerTimeout)
	node.SetTransferConfig(cluster.TransferConfig{
		BatchKeys:  xferBatch,
		Window:     xferWindow,
		Timeout:    peerTimeout,
		NoCompress: !xferCompress,
	})
	loadSnapshot(node.Store(), snapshot)
	node.SetSnapshotPath(snapshot)
	if err := node.Start(addr); err != nil {
		log.Fatal(err)
	}
	if closeMetrics := startMetrics(metricsAddr, func(w io.Writer) {
		// One scrape covers both layers: per-verb server stats, then
		// the cluster counters (gossip, evictions, batching, rebalance).
		node.Server().WriteMetrics(w)
		node.WriteMetrics(w)
	}); closeMetrics != nil {
		defer closeMetrics()
	}
	fmt.Printf("elld node %s listening on %s (cluster mode, replicas=%d, p=%d)\n",
		nodeID, node.Addr(), replicas, cfg.P)
	switch {
	case join != "":
		if err := node.Join(join); err != nil {
			node.Close()
			log.Fatal(err)
		}
		m := node.Map()
		fmt.Printf("joined cluster via %s (map e%d v%d, %d nodes)\n", join, m.Epoch, m.Version, m.Len())
	case node.Map().Len() > 1:
		// The snapshot recorded a multi-node cluster: self-heal back
		// into it without any -join seed. Unreachable peers are not
		// fatal — the periodic sync keeps retrying.
		if err := node.Rejoin(); err != nil {
			log.Printf("rejoin (will keep syncing): %v", err)
		} else {
			m := node.Map()
			fmt.Printf("rejoined cluster from snapshot (map e%d v%d, %d nodes)\n", m.Epoch, m.Version, m.Len())
		}
	}

	// Anti-entropy: periodically pull peer maps and adopt/spread the
	// newest, so missed SETMAP broadcasts (partitions, restarts) heal
	// without operator action.
	go func() {
		ticker := time.NewTicker(5 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				node.Sync() // best-effort; unreachable peers retry next tick
			}
		}
	}()

	// Replica anti-entropy: each round exchanges per-shard content
	// digests with the peers and re-ships only keys that diverge, so a
	// converged cluster pays O(shards) messages, not O(keys).
	if syncDigestInterval > 0 {
		go func() {
			ticker := time.NewTicker(syncDigestInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := node.DigestSync(); err != nil {
						log.Printf("digest sync (will retry): %v", err)
					}
				}
			}
		}()
	}

	// Failure detection: each tick is one gossip round (heartbeat
	// exchange, suspicion, quorum-gated auto-LEAVE). The detector
	// itself is clockless — this ticker IS its clock, which is also
	// what lets the test harness drive it deterministically.
	if gossipInterval > 0 {
		go func() {
			ticker := time.NewTicker(gossipInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					for _, id := range node.Gossip() {
						log.Printf("gossip: auto-evicted unresponsive node %s", id)
					}
				}
			}
		}()
	}

	<-ctx.Done()
	fmt.Println("shutting down")
	// Close first so in-flight writes land before the final snapshot.
	if err := node.Close(); err != nil {
		log.Print(err)
	}
	saveSnapshot(node.Store(), snapshot)
}

// startMetrics serves Prometheus-text metrics at http://addr/metrics,
// rendered by write on every scrape. It returns a shutdown func, or nil
// when addr is empty (metrics disabled). A bind failure is fatal — an
// operator who asked for metrics should not silently fly blind.
func startMetrics(addr string, write func(io.Writer)) func() {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("metrics listener: %v", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		write(w)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Printf("metrics at http://%s/metrics\n", ln.Addr())
	return func() { srv.Close() }
}

// loadSnapshot restores store from path if it exists; a missing file is
// a fresh start, any other failure is fatal.
func loadSnapshot(store *server.Store, path string) {
	if path == "" {
		return
	}
	switch err := store.LoadFile(path); {
	case err == nil:
		fmt.Printf("loaded %d sketches from %s\n", store.Len(), path)
	case os.IsNotExist(err):
		fmt.Printf("snapshot %s not found, starting empty\n", path)
	default:
		log.Fatal(err)
	}
}

// saveSnapshot writes a final snapshot on shutdown so a restart loses
// nothing.
func saveSnapshot(store *server.Store, path string) {
	if path == "" {
		return
	}
	if err := store.SaveFile(path); err != nil {
		log.Printf("final snapshot: %v", err)
		return
	}
	fmt.Printf("saved %d sketches to %s\n", store.Len(), path)
}
