// Command elld serves ExaLogLog sketches over TCP with Redis-style
// PFADD / PFCOUNT / PFMERGE commands — the "approximate distinct counting
// as a data-store command" scenario of the paper's introduction.
//
// Usage:
//
//	elld [-addr 127.0.0.1:7700] [-p 12]
//
// Try it with netcat:
//
//	$ printf 'PFADD visits alice bob\nPFCOUNT visits\nQUIT\n' | nc 127.0.0.1 7700
//	:1
//	:2
//	+BYE
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"exaloglog/internal/core"
	"exaloglog/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	p := flag.Int("p", 12, "sketch precision (2^p registers, ELL(2,20) configuration)")
	snapshot := flag.String("snapshot", "", "snapshot file: loaded at startup if present, written by the SAVE command")
	flag.Parse()

	store, err := server.NewStore(core.RecommendedML(*p))
	if err != nil {
		log.Fatal(err)
	}
	if *snapshot != "" {
		switch err := store.LoadFile(*snapshot); {
		case err == nil:
			fmt.Printf("loaded %d sketches from %s\n", store.Len(), *snapshot)
		case os.IsNotExist(err):
			fmt.Printf("snapshot %s not found, starting empty\n", *snapshot)
		default:
			log.Fatal(err)
		}
	}
	srv := server.NewServer(store)
	srv.SetSnapshotPath(*snapshot)
	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elld listening on %s (ELL t=2 d=20 p=%d, %d bytes per sketch)\n",
		srv.Addr(), *p, core.RecommendedML(*p).SizeBytes())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Println("shutting down")
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
