package similarity

import (
	"math"
	"testing"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
)

// buildPair returns sketches over [0, na) and [na-overlap, na-overlap+nb).
func buildPair(t *testing.T, p, na, nb, overlap int) (*core.Sketch, *core.Sketch) {
	t.Helper()
	a := core.MustNew(core.RecommendedML(p))
	b := core.MustNew(core.RecommendedML(p))
	for i := 0; i < na; i++ {
		a.AddUint64(uint64(i))
	}
	start := na - overlap
	for i := start; i < start+nb; i++ {
		b.AddUint64(uint64(i))
	}
	return a, b
}

func TestAnalyzeKnownOverlap(t *testing.T) {
	const na, nb, overlap = 40000, 30000, 10000
	a, b := buildPair(t, 12, na, nb, overlap)
	e, err := Analyze(a, b)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64 // relative
	}{
		{"CountA", e.CountA, na, 0.03},
		{"CountB", e.CountB, nb, 0.03},
		{"Union", e.Union, na + nb - overlap, 0.03},
		{"Intersection", e.Intersection, overlap, 0.25},
		{"Jaccard", e.Jaccard, float64(overlap) / float64(na+nb-overlap), 0.25},
		{"ContainmentAinB", e.ContainmentAinB, float64(overlap) / na, 0.25},
		{"ContainmentBinA", e.ContainmentBinA, float64(overlap) / nb, 0.25},
	}
	for _, c := range checks {
		if rel := math.Abs(c.got-c.want) / c.want; rel > c.tol {
			t.Errorf("%s = %.4g, want %.4g (err %.1f%%)", c.name, c.got, c.want, 100*rel)
		}
	}
	if e.Sigma <= 0 || e.JaccardError() <= 0 {
		t.Errorf("error guidance not populated: %+v", e)
	}
}

func TestIdenticalSets(t *testing.T) {
	a, _ := buildPair(t, 11, 20000, 1, 0)
	e, err := Analyze(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Jaccard-1) > 1e-9 {
		t.Errorf("Jaccard of identical sketches = %g, want exactly 1", e.Jaccard)
	}
	if e.ContainmentAinB != 1 || e.ContainmentBinA != 1 {
		t.Errorf("containment of identical sketches = %g/%g", e.ContainmentAinB, e.ContainmentBinA)
	}
}

func TestDisjointSets(t *testing.T) {
	a, b := buildPair(t, 12, 20000, 20000, 0)
	e, err := Analyze(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// True Jaccard 0; estimate noise is bounded by a few σ.
	if e.Jaccard > 4*e.Sigma {
		t.Errorf("disjoint Jaccard = %g, beyond noise band %g", e.Jaccard, 4*e.Sigma)
	}
}

func TestEmptyAndNil(t *testing.T) {
	a := core.MustNew(core.RecommendedML(8))
	b := core.MustNew(core.RecommendedML(8))
	e, err := Analyze(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if e.Union != 0 || e.Jaccard != 0 || e.Intersection != 0 {
		t.Errorf("empty analysis %+v", e)
	}
	if _, err := Analyze(nil, b); err == nil {
		t.Error("nil sketch accepted")
	}
	if _, err := Analyze(a, nil); err == nil {
		t.Error("nil sketch accepted")
	}
}

func TestMixedParameters(t *testing.T) {
	// Same t, different d and p: must align by reduction.
	a := core.MustNew(core.Config{T: 2, D: 24, P: 12})
	b := core.MustNew(core.Config{T: 2, D: 20, P: 10})
	for i := 0; i < 10000; i++ {
		a.AddUint64(uint64(i))
		b.AddUint64(uint64(i + 5000))
	}
	e, err := Analyze(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(e.Union-15000) / 15000; rel > 0.08 {
		t.Errorf("mixed-parameter union %.0f, want ≈15000", e.Union)
	}
	// Different t cannot be combined.
	c := core.MustNew(core.Config{T: 0, D: 2, P: 10})
	c.AddUint64(1)
	if _, err := Analyze(a, c); err == nil {
		t.Error("different t accepted")
	}
}

func TestClamping(t *testing.T) {
	// With tiny sketches the raw inclusion–exclusion can go negative or
	// exceed min(|A|,|B|); outputs must stay in their domains.
	state := uint64(9)
	for trial := 0; trial < 50; trial++ {
		a := core.MustNew(core.RecommendedML(4))
		b := core.MustNew(core.RecommendedML(4))
		for i := 0; i < 200; i++ {
			a.AddHash(hashing.SplitMix64(&state))
			b.AddHash(hashing.SplitMix64(&state))
		}
		e, err := Analyze(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if e.Intersection < 0 || e.Intersection > math.Min(e.CountA, e.CountB)+1e-9 {
			t.Fatalf("intersection %g outside [0, min]", e.Intersection)
		}
		if e.Jaccard < 0 || e.Jaccard > 1 {
			t.Fatalf("Jaccard %g outside [0, 1]", e.Jaccard)
		}
		if e.ContainmentAinB < 0 || e.ContainmentAinB > 1 || e.ContainmentBinA < 0 || e.ContainmentBinA > 1 {
			t.Fatalf("containment outside [0, 1]: %+v", e)
		}
	}
}

func TestConvenienceWrappers(t *testing.T) {
	a, b := buildPair(t, 12, 30000, 30000, 15000)
	u, err := UnionCount(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(u-45000) / 45000; rel > 0.03 {
		t.Errorf("UnionCount %.0f, want ≈45000", u)
	}
	inter, err := IntersectionCount(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(inter-15000) / 15000; rel > 0.2 {
		t.Errorf("IntersectionCount %.0f, want ≈15000", inter)
	}
	j, err := Jaccard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-1.0/3) > 0.08 {
		t.Errorf("Jaccard %.3f, want ≈0.333", j)
	}
}

func TestUnionAll(t *testing.T) {
	sketches := make([]*core.Sketch, 5)
	for i := range sketches {
		sketches[i] = core.MustNew(core.RecommendedML(11))
		// Overlapping ranges: shard i covers [i·5000, i·5000+10000).
		for v := i * 5000; v < i*5000+10000; v++ {
			sketches[i].AddUint64(uint64(v))
		}
	}
	got, err := UnionAll(sketches...)
	if err != nil {
		t.Fatal(err)
	}
	want := 30000.0 // [0, 30000)
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("UnionAll %.0f, want ≈%.0f", got, want)
	}
	// Degenerate inputs.
	if n, err := UnionAll(); err != nil || n != 0 {
		t.Errorf("UnionAll() = %g, %v", n, err)
	}
	if n, err := UnionAll(nil, nil); err != nil || n != 0 {
		t.Errorf("UnionAll(nil, nil) = %g, %v", n, err)
	}
}
