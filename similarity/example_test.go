package similarity_test

import (
	"fmt"

	"exaloglog"
	"exaloglog/similarity"
)

// Estimate how much two large audiences overlap without storing either.
func ExampleAnalyze() {
	a := exaloglog.New(14)
	b := exaloglog.New(14)
	for u := 0; u < 100000; u++ {
		a.AddUint64(uint64(u))
	}
	for u := 80000; u < 180000; u++ {
		b.AddUint64(uint64(u))
	}
	e, err := similarity.Analyze(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("union within 2%% of 180000: %v\n", e.Union > 176400 && e.Union < 183600)
	fmt.Printf("overlap within 10%% of 20000: %v\n", e.Intersection > 18000 && e.Intersection < 22000)
	// Output:
	// union within 2% of 180000: true
	// overlap within 10% of 20000: true
}

// Deduplicated reach across many shards is a single merge chain.
func ExampleUnionAll() {
	shards := make([]*exaloglog.Sketch, 4)
	for i := range shards {
		shards[i] = exaloglog.New(12)
		for u := 0; u < 5000; u++ {
			shards[i].AddUint64(uint64(u)) // every shard saw the same users
		}
	}
	total, err := similarity.UnionAll(shards...)
	if err != nil {
		panic(err)
	}
	fmt.Printf("within 3%% of 5000: %v\n", total > 4850 && total < 5150)
	// Output:
	// within 3% of 5000: true
}
