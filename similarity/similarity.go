// Package similarity estimates set relationships — union, intersection,
// Jaccard similarity, containment — from ExaLogLog sketches.
//
// The union count is exact in sketch terms: merging two ELL sketches
// yields the very sketch the union stream would have produced (Section 4.1
// of the paper), so the union estimate carries the ordinary single-sketch
// error. Intersection-derived quantities use inclusion–exclusion,
// |A∩B| = |A| + |B| − |A∪B|, whose absolute error is the combined error
// of three estimates: the *relative* error of the intersection therefore
// grows as the true intersection shrinks relative to the union. The
// rule of thumb: with per-sketch relative standard error σ, the Jaccard
// estimate j carries an absolute error of roughly σ·√3·(1+j); trusting
// fine distinctions below j ≈ 3σ is not meaningful. SizeBounds quantifies
// this per call.
package similarity

import (
	"fmt"
	"math"

	"exaloglog/internal/core"
)

// Estimates summarizes the relationship of two sketched sets A and B.
type Estimates struct {
	// CountA and CountB are the individual distinct-count estimates.
	CountA, CountB float64
	// Union estimates |A ∪ B| (lossless sketch merge).
	Union float64
	// Intersection estimates |A ∩ B| by inclusion–exclusion, clamped to
	// [0, min(CountA, CountB)].
	Intersection float64
	// Jaccard estimates |A∩B| / |A∪B| in [0, 1].
	Jaccard float64
	// ContainmentAinB estimates |A∩B| / |A|: how much of A lies in B.
	ContainmentAinB float64
	// ContainmentBinA estimates |A∩B| / |B|.
	ContainmentBinA float64
	// Sigma is the per-sketch relative standard error used for the
	// error guidance below (the larger of the two inputs' errors).
	Sigma float64
}

// JaccardError returns the approximate absolute standard error of the
// Jaccard estimate: σ·√3·(1 + j). Differences in Jaccard below ~2x this
// value are noise.
func (e Estimates) JaccardError() float64 {
	return e.Sigma * math.Sqrt(3) * (1 + e.Jaccard)
}

// Analyze estimates all set relationships between the streams recorded by
// a and b. The inputs are not modified; they must share the t-parameter
// (differing d and p are aligned by reduction, Section 4.1).
func Analyze(a, b *core.Sketch) (Estimates, error) {
	if a == nil || b == nil {
		return Estimates{}, fmt.Errorf("similarity: nil sketch")
	}
	union, err := core.MergeCompatible(a, b)
	if err != nil {
		return Estimates{}, err
	}
	e := Estimates{
		CountA: a.Estimate(),
		CountB: b.Estimate(),
		Union:  union.Estimate(),
	}
	sa, sb := a.RelativeStandardError(), b.RelativeStandardError()
	e.Sigma = math.Max(sa, sb)

	inter := e.CountA + e.CountB - e.Union
	if lim := math.Min(e.CountA, e.CountB); inter > lim {
		inter = lim
	}
	if inter < 0 {
		inter = 0
	}
	e.Intersection = inter
	if e.Union > 0 {
		e.Jaccard = inter / e.Union
	}
	if e.CountA > 0 {
		e.ContainmentAinB = math.Min(1, inter/e.CountA)
	}
	if e.CountB > 0 {
		e.ContainmentBinA = math.Min(1, inter/e.CountB)
	}
	return e, nil
}

// UnionCount estimates |A ∪ B| without computing the full analysis.
func UnionCount(a, b *core.Sketch) (float64, error) {
	u, err := core.MergeCompatible(a, b)
	if err != nil {
		return 0, err
	}
	return u.Estimate(), nil
}

// IntersectionCount estimates |A ∩ B| by inclusion–exclusion. See the
// package documentation for the error characteristics.
func IntersectionCount(a, b *core.Sketch) (float64, error) {
	e, err := Analyze(a, b)
	if err != nil {
		return 0, err
	}
	return e.Intersection, nil
}

// Jaccard estimates the Jaccard similarity |A∩B| / |A∪B|.
func Jaccard(a, b *core.Sketch) (float64, error) {
	e, err := Analyze(a, b)
	if err != nil {
		return 0, err
	}
	return e.Jaccard, nil
}

// UnionAll merges any number of sketches (sharing t) and returns the
// union's distinct-count estimate. Nil and empty inputs are skipped; zero
// usable inputs estimate 0.
func UnionAll(sketches ...*core.Sketch) (float64, error) {
	var acc *core.Sketch
	for _, s := range sketches {
		if s == nil {
			continue
		}
		if acc == nil {
			acc = s.Clone()
			continue
		}
		merged, err := core.MergeCompatible(acc, s)
		if err != nil {
			return 0, err
		}
		acc = merged
	}
	if acc == nil {
		return 0, nil
	}
	return acc.Estimate(), nil
}
